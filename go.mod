module dwmaxerr

go 1.24
