package greedy

// Naive O(n^2)-per-run reference implementations of GreedyAbs and GreedyRel
// that maintain explicit per-leaf signed errors and evaluate Equations 7
// and 10 by scanning leaves. The optimized implementations must reproduce
// their deletion orders and recorded errors.

import (
	"math"
)

// naiveTree interprets a heap-layout coefficient slice as an error
// (sub-)tree, mirroring the semantics of Options.
type naiveTree struct {
	w       []float64
	n       int
	hasRoot bool
	err     []float64 // signed accumulated error per leaf
	alive   map[int]bool
}

func newNaiveTree(w []float64, opts Options) *naiveTree {
	n := len(w)
	t := &naiveTree{w: w, n: n, hasRoot: opts.HasRoot, err: make([]float64, n), alive: map[int]bool{}}
	for j := range t.err {
		t.err[j] = opts.InitialErr
	}
	start := 1
	if opts.HasRoot {
		start = 0
	}
	if n == 1 {
		if opts.HasRoot {
			t.alive[0] = true
		}
		return t
	}
	for i := start; i < n; i++ {
		t.alive[i] = true
	}
	return t
}

// sign returns delta_{jk}: +1 if leaf j is in the left sub-tree of node k
// (or k == 0), -1 if right, 0 if outside.
func (t *naiveTree) sign(j, k int) int {
	if k == 0 {
		return 1
	}
	// Node k covers leaves [first, last).
	level := 0
	for 1<<(level+1) <= k {
		level++
	}
	support := t.n >> uint(level)
	first := (k - 1<<uint(level)) * support
	if j < first || j >= first+support {
		return 0
	}
	if support == 1 {
		// Can't happen: internal nodes cover >= 2 leaves when n >= 2.
		return 1
	}
	if j < first+support/2 {
		return 1
	}
	return -1
}

// ma evaluates Equation 7 (or 10 when den != nil) for node k.
func (t *naiveTree) ma(k int, den []float64) float64 {
	m := math.Inf(-1)
	for j := 0; j < t.n; j++ {
		s := t.sign(j, k)
		if s == 0 {
			continue
		}
		v := math.Abs(t.err[j] - float64(s)*t.w[k])
		if den != nil {
			v /= den[j]
		}
		if v > m {
			m = v
		}
	}
	return m
}

func (t *naiveTree) removeNode(k int) {
	delete(t.alive, k)
	for j := 0; j < t.n; j++ {
		if s := t.sign(j, k); s != 0 {
			t.err[j] -= float64(s) * t.w[k]
		}
	}
}

func (t *naiveTree) globalMax(den []float64) float64 {
	var m float64
	for j, e := range t.err {
		v := math.Abs(e)
		if den != nil {
			v /= den[j]
		}
		if v > m {
			m = v
		}
	}
	return m
}

// naiveRun replicates RunAbs (den == nil) or RunRel (den != nil).
func naiveRun(w []float64, den []float64, opts Options) []Step {
	t := newNaiveTree(w, opts)
	var steps []Step
	for len(t.alive) > 0 {
		best, bestMA := -1, math.Inf(1)
		for k := 0; k < t.n; k++ {
			if !t.alive[k] {
				continue
			}
			if ma := t.ma(k, den); ma < bestMA {
				bestMA, best = ma, k
			}
		}
		t.removeNode(best)
		steps = append(steps, Step{Index: best, Err: t.globalMax(den)})
	}
	return steps
}
