package greedy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dwmaxerr/internal/wavelet"
)

// TestRunAbsPropertyVsNaive fuzzes RunAbs against the naive reference over
// random trees, sizes, root modes and incoming errors.
func TestRunAbsPropertyVsNaive(t *testing.T) {
	f := func(seed int64, logn uint8, hasRoot bool, e0 int8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + logn%5) // 2..32
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.NormFloat64() * 40)
		}
		w, err := wavelet.Transform(data)
		if err != nil {
			return false
		}
		opts := Options{HasRoot: hasRoot, InitialErr: float64(e0)}
		got, err := RunAbs(w, opts)
		if err != nil {
			return false
		}
		want := naiveRun(w, nil, opts)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Index != want[i].Index {
				return false
			}
			if math.Abs(got[i].Err-want[i].Err) > 1e-9*(1+math.Abs(want[i].Err)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestStepErrorsNeverBelowIncomingMagnitude: deletions shift sub-tree
// halves in opposite directions, so the global maximum error can never
// fall below the magnitude of a uniform incoming error.
func TestStepErrorsNeverBelowIncomingMagnitude(t *testing.T) {
	f := func(seed int64, e0raw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(5))
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.NormFloat64() * 10
		}
		e0 := float64(e0raw)
		steps, err := RunAbs(w, Options{HasRoot: false, InitialErr: e0})
		if err != nil {
			return false
		}
		for _, st := range steps {
			if st.Err < math.Abs(e0)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestBestTailWithinBudgetProperty: the retained set never exceeds the
// budget and always matches a suffix of the deletion order.
func TestBestTailWithinBudgetProperty(t *testing.T) {
	f := func(seed int64, budgetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(5))
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 25
		}
		w, _ := wavelet.Transform(data)
		steps, err := RunAbs(w, Options{HasRoot: true})
		if err != nil {
			return false
		}
		budget := 1 + int(budgetRaw)%n
		dels, _, retained := BestTail(steps, budget, 0)
		if len(retained) > budget {
			return false
		}
		if dels+len(retained) != len(steps) {
			return false
		}
		for i, idx := range retained {
			if steps[dels+i].Index != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestRunRelStepsMatchSynopsisStates: every prefix of the deletion order
// corresponds to an actual synopsis whose measured relative error equals
// the recorded step error.
func TestRunRelStepsMatchSynopsisStates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 16
	data := make([]float64, n)
	for i := range data {
		data[i] = 10 + rng.Float64()*200
	}
	w, _ := wavelet.Transform(data)
	den := Denominators(data, 1)
	steps, err := RunRel(w, den, Options{HasRoot: true})
	if err != nil {
		t.Fatal(err)
	}
	removed := map[int]bool{}
	for _, st := range steps {
		removed[st.Index] = true
		// Reconstruct with the surviving coefficients.
		dense := make([]float64, n)
		for i, c := range w {
			if !removed[i] {
				dense[i] = c
			}
		}
		rec := make([]float64, n)
		wavelet.InverseInto(rec, dense)
		var maxRel float64
		for i := range data {
			r := math.Abs(rec[i]-data[i]) / den[i]
			if r > maxRel {
				maxRel = r
			}
		}
		if math.Abs(maxRel-st.Err) > 1e-8*(1+maxRel) {
			t.Fatalf("after removing %d: recorded %g, actual %g", st.Index, st.Err, maxRel)
		}
	}
}
