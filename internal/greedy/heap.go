package greedy

// indexHeap is an indexed binary min-heap over node indices keyed by
// float64 priorities, with deterministic tie-breaking on the node index.
// It supports the decrease/increase-key ("fix") and arbitrary removal
// operations the greedy algorithms need when a coefficient deletion changes
// the MA/MR priority of its ancestors and descendants (Section 5.1).
type indexHeap struct {
	keys []float64 // priority per node index (sparse, indexed by node id)
	heap []int     // heap of node indices
	pos  []int     // pos[node] = position in heap, -1 if absent
}

// newIndexHeap returns a heap able to hold node indices < capacity.
func newIndexHeap(capacity int) *indexHeap {
	h := &indexHeap{
		keys: make([]float64, capacity),
		pos:  make([]int, capacity),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *indexHeap) less(a, b int) bool {
	ka, kb := h.keys[a], h.keys[b]
	if ka != kb {
		return ka < kb
	}
	return a < b
}

// Len returns the number of queued nodes.
func (h *indexHeap) Len() int { return len(h.heap) }

// Contains reports whether node i is queued.
func (h *indexHeap) Contains(i int) bool { return h.pos[i] >= 0 }

// Key returns the current priority of node i (meaningful only if queued).
func (h *indexHeap) Key(i int) float64 { return h.keys[i] }

// Push inserts node i with the given key. i must not already be queued.
func (h *indexHeap) Push(i int, key float64) {
	h.keys[i] = key
	h.pos[i] = len(h.heap)
	h.heap = append(h.heap, i)
	h.up(len(h.heap) - 1)
}

// PopMin removes and returns the node with the smallest key.
func (h *indexHeap) PopMin() int {
	top := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top
}

// Fix updates node i's key and restores the heap invariant. No-op if i is
// not queued.
func (h *indexHeap) Fix(i int, key float64) {
	p := h.pos[i]
	if p < 0 {
		return
	}
	old := h.keys[i]
	h.keys[i] = key
	if key < old {
		h.up(p)
	} else if key > old {
		h.down(p)
	}
}

// Remove deletes node i from the heap if present.
func (h *indexHeap) Remove(i int) {
	p := h.pos[i]
	if p < 0 {
		return
	}
	last := len(h.heap) - 1
	h.swap(p, last)
	h.heap = h.heap[:last]
	h.pos[i] = -1
	if p < last {
		h.down(p)
		h.up(h.pos[h.heap[p]])
	}
}

func (h *indexHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *indexHeap) up(p int) {
	for p > 0 {
		parent := (p - 1) / 2
		if !h.less(h.heap[p], h.heap[parent]) {
			break
		}
		h.swap(p, parent)
		p = parent
	}
}

func (h *indexHeap) down(p int) {
	n := len(h.heap)
	for {
		l, r := 2*p+1, 2*p+2
		smallest := p
		if l < n && h.less(h.heap[l], h.heap[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.heap[r], h.heap[smallest]) {
			smallest = r
		}
		if smallest == p {
			return
		}
		h.swap(p, smallest)
		p = smallest
	}
}
