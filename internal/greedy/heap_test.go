package greedy

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexHeapBasicOrder(t *testing.T) {
	h := newIndexHeap(8)
	keys := []float64{5, 1, 3, 2, 4}
	for i, k := range keys {
		h.Push(i, k)
	}
	want := []int{1, 3, 2, 4, 0}
	for _, w := range want {
		if got := h.PopMin(); got != w {
			t.Fatalf("PopMin = %d, want %d", got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty")
	}
}

func TestIndexHeapTieBreakByIndex(t *testing.T) {
	h := newIndexHeap(4)
	h.Push(3, 1)
	h.Push(1, 1)
	h.Push(2, 1)
	if got := h.PopMin(); got != 1 {
		t.Fatalf("tie broke to %d, want 1", got)
	}
	if got := h.PopMin(); got != 2 {
		t.Fatalf("tie broke to %d, want 2", got)
	}
}

func TestIndexHeapFixAndRemove(t *testing.T) {
	h := newIndexHeap(8)
	for i := 0; i < 6; i++ {
		h.Push(i, float64(i))
	}
	h.Fix(5, -1) // becomes the minimum
	if got := h.PopMin(); got != 5 {
		t.Fatalf("after decrease: PopMin = %d", got)
	}
	h.Fix(0, 100) // becomes the maximum
	h.Remove(2)
	if h.Contains(2) {
		t.Fatal("removed node still contained")
	}
	h.Remove(2) // double remove is a no-op
	h.Fix(2, 0) // fix of absent node is a no-op
	want := []int{1, 3, 4, 0}
	for _, w := range want {
		if got := h.PopMin(); got != w {
			t.Fatalf("PopMin = %d, want %d", got, w)
		}
	}
}

func TestIndexHeapAgainstSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		h := newIndexHeap(n)
		type node struct {
			id  int
			key float64
		}
		live := map[int]float64{}
		for i := 0; i < n; i++ {
			k := float64(rng.Intn(20))
			h.Push(i, k)
			live[i] = k
		}
		// Random mutations.
		for op := 0; op < 40; op++ {
			id := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				if _, ok := live[id]; ok {
					k := float64(rng.Intn(20))
					h.Fix(id, k)
					live[id] = k
				}
			case 1:
				h.Remove(id)
				delete(live, id)
			case 2:
				if _, ok := live[id]; !ok {
					k := float64(rng.Intn(20))
					h.Push(id, k)
					live[id] = k
				}
			}
		}
		// Drain and compare with a sort.
		var want []node
		for id, k := range live {
			want = append(want, node{id, k})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].key != want[j].key {
				return want[i].key < want[j].key
			}
			return want[i].id < want[j].id
		})
		if h.Len() != len(want) {
			return false
		}
		for _, w := range want {
			if h.PopMin() != w.id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexHeapKeyAccessor(t *testing.T) {
	h := newIndexHeap(2)
	h.Push(1, 7.5)
	if h.Key(1) != 7.5 {
		t.Fatalf("Key = %g", h.Key(1))
	}
}
