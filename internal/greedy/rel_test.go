package greedy

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

func TestEnvelopeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(12)
		lines := make([]line, k)
		for i := range lines {
			lines[i] = line{rng.NormFloat64() * 3, rng.NormFloat64() * 10}
		}
		cp := make([]line, k)
		copy(cp, lines)
		env := buildEnvelope(cp)
		for q := 0; q < 30; q++ {
			x := rng.NormFloat64() * 20
			want := math.Inf(-1)
			for _, l := range lines {
				want = math.Max(want, l.m*x+l.b)
			}
			got := env.eval(x)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d: eval(%g) = %g, want %g (lines %v)", trial, x, got, want, lines)
			}
		}
	}
}

func TestEnvelopeShifted(t *testing.T) {
	lines := []line{{1, 0}, {-1, 0}, {0.5, 3}}
	cp := make([]line, len(lines))
	copy(cp, lines)
	env := buildEnvelope(cp)
	s := 2.5
	sh := env.shifted(s)
	for _, x := range []float64{-10, -1, 0, 0.3, 5, 42} {
		if math.Abs(sh.eval(x)-env.eval(x+s)) > 1e-12 {
			t.Fatalf("shifted eval mismatch at %g", x)
		}
	}
}

func TestMergeEnvelopes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		mk := func(k int) ([]line, envelope) {
			lines := make([]line, k)
			for i := range lines {
				lines[i] = line{rng.NormFloat64() * 2, rng.NormFloat64() * 5}
			}
			cp := make([]line, k)
			copy(cp, lines)
			return lines, buildEnvelope(cp)
		}
		la, ea := mk(1 + rng.Intn(8))
		lb, eb := mk(1 + rng.Intn(8))
		merged := mergeEnvelopes(ea.materialize(0), eb.materialize(0))
		all := append(append([]line{}, la...), lb...)
		for q := 0; q < 20; q++ {
			x := rng.NormFloat64() * 15
			want := math.Inf(-1)
			for _, l := range all {
				want = math.Max(want, l.m*x+l.b)
			}
			if got := merged.eval(x); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("merged eval(%g) = %g, want %g", x, got, want)
			}
		}
	}
}

func TestEnvelopeEmptyAndDuplicateSlopes(t *testing.T) {
	if v := (envelope{}).eval(3); !math.IsInf(v, -1) {
		t.Fatalf("empty envelope eval = %g", v)
	}
	env := buildEnvelope([]line{{1, 2}, {1, 5}, {1, -3}})
	if got := env.eval(10); got != 15 {
		t.Fatalf("duplicate slopes: eval(10) = %g, want 15", got)
	}
	if len(env.ls) != 1 {
		t.Fatalf("duplicate slopes not deduped: %v", env.ls)
	}
}

func TestRunRelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		n := 1 << (1 + rng.Intn(4)) // 2..16
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()*50 + 10
		}
		w, _ := wavelet.Transform(data)
		den := Denominators(data, 1)
		for _, opts := range []Options{
			{HasRoot: true},
			{HasRoot: false},
			{HasRoot: true, InitialErr: rng.NormFloat64() * 5},
		} {
			got, err := RunRel(w, den, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveRun(w, den, opts)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d steps, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].Index != want[i].Index {
					t.Fatalf("trial %d opts %+v step %d: removed %d, naive removed %d\n got %v\nwant %v",
						trial, opts, i, got[i].Index, want[i].Index, stepIndices(got), stepIndices(want))
				}
				if math.Abs(got[i].Err-want[i].Err) > 1e-7*(1+math.Abs(want[i].Err)) {
					t.Fatalf("trial %d step %d: err %g, naive %g", trial, i, got[i].Err, want[i].Err)
				}
			}
		}
	}
}

func TestRunRelValidatesInput(t *testing.T) {
	if _, err := RunRel(make([]float64, 4), make([]float64, 2), Options{}); err == nil {
		t.Fatal("want denominator length error")
	}
	if _, err := RunRel(make([]float64, 3), make([]float64, 3), Options{}); err == nil {
		t.Fatal("want power-of-two error")
	}
}

func TestRunRelSizeOne(t *testing.T) {
	steps, err := RunRel([]float64{6}, []float64{2}, Options{HasRoot: true})
	if err != nil || len(steps) != 1 || steps[0].Err != 3 {
		t.Fatalf("steps=%v err=%v", steps, err)
	}
}

func TestSynopsisRelConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 12; trial++ {
		n := 1 << (2 + rng.Intn(5))
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()*1000 + 1
		}
		b := 1 + rng.Intn(n/2)
		s, reported, err := SynopsisRel(data, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Size() > b {
			t.Fatalf("size %d > %d", s.Size(), b)
		}
		actual := synopsis.MaxRelError(s, data, 1)
		if math.Abs(actual-reported) > 1e-6*(1+reported) {
			t.Fatalf("trial %d: reported %g actual %g", trial, reported, actual)
		}
	}
}

func TestSynopsisRelRespectsSanityBound(t *testing.T) {
	// With a huge sanity bound, relative error ~ absolute/sanity, so the
	// relative greedy should agree with the absolute greedy's choice.
	data := []float64{10, 12, 9, 200, 11, 10, 13, 12}
	sAbs, errAbs, _ := SynopsisAbs(data, 3)
	sRel, errRel, err := SynopsisRel(data, 3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(errRel*1e9-errAbs) > 1e-3 {
		t.Fatalf("huge sanity: rel %g * 1e9 != abs %g", errRel, errAbs)
	}
	ia, ir := indicesOf(sAbs), indicesOf(sRel)
	if len(ia) != len(ir) {
		t.Fatalf("different sizes: %v vs %v", ia, ir)
	}
	for i := range ia {
		if ia[i] != ir[i] {
			t.Fatalf("different synopses: %v vs %v", ia, ir)
		}
	}
}

func indicesOf(s *synopsis.Synopsis) []int {
	idx := make([]int, 0, s.Size())
	for _, term := range s.Terms {
		idx = append(idx, term.Index)
	}
	sort.Ints(idx)
	return idx
}

func TestSynopsisRelBudgetValidation(t *testing.T) {
	if _, _, err := SynopsisRel(paperData, 0, 1); err == nil {
		t.Fatal("want budget error")
	}
}

func TestDenominators(t *testing.T) {
	den := Denominators([]float64{-5, 0.1, 0, 3}, 1)
	want := []float64{5, 1, 1, 3}
	for i := range want {
		if den[i] != want[i] {
			t.Fatalf("den = %v, want %v", den, want)
		}
	}
}
