package greedy

import (
	"math"
	"sort"

	"dwmaxerr/internal/wavelet"
)

// GreedyRel (Section 5.4) discards, at each step, the coefficient with the
// minimum maximum potential *relative* error MR_k (Equation 10). The
// denominator max(|d_j|, S) differs per leaf, so the four-extremes trick of
// GreedyAbs cannot represent MR. Instead every internal node maintains
// upper envelopes ("convex hull trick") of the lines
//
//	(err_j + x) / den_j   and   -(err_j + x) / den_j
//
// over the leaves of its left and right sub-trees, as functions of a
// pending uniform error shift x. Deleting c_k shifts entire sub-trees
// uniformly (lazy shift accumulator per node, O(log) envelope queries to
// refresh MR) and invalidates only the envelopes of k itself and its
// ancestors, which are rebuilt by merging children envelopes.

// line is y = m*x + b.
type line struct{ m, b float64 }

// crossX returns the abscissa where b overtakes a; requires a.m < b.m.
func crossX(a, b line) float64 {
	return (a.b - b.b) / (b.m - a.m)
}

// envelope is the upper envelope of a set of lines: ls in strictly
// increasing slope order, xs[i] the abscissa from which ls[i] is maximal
// (xs[0] = -Inf).
type envelope struct {
	ls []line
	xs []float64
}

// buildEnvelope constructs the upper envelope from arbitrary lines.
// The input slice is sorted in place.
func buildEnvelope(lines []line) envelope {
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].m != lines[j].m {
			return lines[i].m < lines[j].m
		}
		return lines[i].b > lines[j].b
	})
	return scanEnvelope(lines)
}

// scanEnvelope assumes lines sorted by (m asc, b desc) and builds the hull.
func scanEnvelope(lines []line) envelope {
	var ls []line
	for _, l := range lines {
		if len(ls) > 0 && ls[len(ls)-1].m == l.m {
			continue // same slope, lower or equal intercept: dominated
		}
		for len(ls) >= 2 {
			a, b := ls[len(ls)-2], ls[len(ls)-1]
			if crossX(a, l) <= crossX(a, b) {
				ls = ls[:len(ls)-1]
				continue
			}
			break
		}
		ls = append(ls, l)
	}
	e := envelope{ls: ls, xs: make([]float64, len(ls))}
	if len(ls) > 0 {
		e.xs[0] = math.Inf(-1)
		for i := 1; i < len(ls); i++ {
			e.xs[i] = crossX(ls[i-1], ls[i])
		}
	}
	return e
}

// eval returns the envelope value at x, or -Inf if empty.
func (e envelope) eval(x float64) float64 {
	if len(e.ls) == 0 {
		return math.Inf(-1)
	}
	i := sort.SearchFloat64s(e.xs, x)
	// xs[i-1] <= x < xs[i] would need i-1; SearchFloat64s returns first
	// index with xs[idx] >= x.
	if i == len(e.xs) || e.xs[i] > x {
		i--
	}
	if i < 0 {
		i = 0
	}
	return e.ls[i].m*x + e.ls[i].b
}

// materialize returns the envelope's lines with a pending shift folded in:
// the result evaluated at x equals e evaluated at x+shift. Line order (by
// slope) and hull membership are preserved.
func (e envelope) materialize(shift float64) []line {
	out := make([]line, len(e.ls))
	for i, l := range e.ls {
		out[i] = line{l.m, l.b + l.m*shift}
	}
	return out
}

// shifted returns the envelope with the pending shift folded in.
func (e envelope) shifted(shift float64) envelope {
	out := envelope{ls: e.materialize(shift), xs: make([]float64, len(e.xs))}
	for i, x := range e.xs {
		out.xs[i] = x - shift
	}
	return out
}

// mergeEnvelopes builds the upper envelope of two materialized line lists
// (each already sorted by slope).
func mergeEnvelopes(a, b []line) envelope {
	merged := make([]line, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].m < b[j].m || (a[i].m == b[j].m && a[i].b >= b[j].b) {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	return scanEnvelope(merged)
}

// relNode holds the per-node envelope state.
type relNode struct {
	lp, ln, rp, rn envelope // left/right × positive/negative envelopes
	shift          float64  // pending uniform err shift for this sub-tree
}

type relState struct {
	w       []float64
	n       int
	hasRoot bool
	nodes   []relNode
	heap    *indexHeap
}

// RunRel executes GreedyRel over the error (sub-)tree with coefficients w
// in heap layout. den[j] is the per-leaf denominator max(|d_j|, sanity);
// len(den) == len(w). opts.InitialErr seeds every leaf's signed error. The
// recorded Step.Err values are global maximum relative errors.
func RunRel(w []float64, den []float64, opts Options) ([]Step, error) {
	n := len(w)
	if !wavelet.IsPowerOfTwo(n) {
		return nil, wavelet.ErrNotPowerOfTwo
	}
	if len(den) != n {
		return nil, errDenLen
	}
	if n == 1 {
		if !opts.HasRoot {
			return nil, nil
		}
		return []Step{{0, math.Abs(opts.InitialErr-w[0]) / den[0]}}, nil
	}
	r := &relState{w: w, n: n, hasRoot: opts.HasRoot, nodes: make([]relNode, n)}
	r.init(den, opts.InitialErr)
	steps := make([]Step, 0, r.heap.Len())
	for r.heap.Len() > 0 {
		k := r.heap.PopMin()
		r.remove(k)
		steps = append(steps, Step{Index: k, Err: r.globalMax()})
	}
	return steps, nil
}

var errDenLen = errorString("greedy: denominator slice length must equal coefficient length")

type errorString string

func (e errorString) Error() string { return string(e) }

func (r *relState) init(den []float64, e0 float64) {
	n := r.n
	// Lowest internal nodes (n/2..n-1) have data leaves 2i-n and 2i-n+1.
	for i := n - 1; i >= n/2; i-- {
		dl, dr := den[2*i-n], den[2*i-n+1]
		r.nodes[i].lp = buildEnvelope([]line{{1 / dl, e0 / dl}})
		r.nodes[i].ln = buildEnvelope([]line{{-1 / dl, -e0 / dl}})
		r.nodes[i].rp = buildEnvelope([]line{{1 / dr, e0 / dr}})
		r.nodes[i].rn = buildEnvelope([]line{{-1 / dr, -e0 / dr}})
	}
	for i := n/2 - 1; i >= 1; i-- {
		r.rebuild(i)
	}
	if r.hasRoot {
		r.rebuildRoot()
	}
	r.heap = newIndexHeap(n)
	start := 1
	if r.hasRoot {
		start = 0
	}
	for i := start; i < n; i++ {
		r.heap.Push(i, r.mr(i))
	}
}

// rebuild recomputes node i's envelopes by merging its children's
// (materializing their pending shifts) and clears i's own shift.
func (r *relState) rebuild(i int) {
	l, rr := &r.nodes[2*i], &r.nodes[2*i+1]
	r.nodes[i].lp = mergeEnvelopes(l.lp.materialize(l.shift), l.rp.materialize(l.shift))
	r.nodes[i].ln = mergeEnvelopes(l.ln.materialize(l.shift), l.rn.materialize(l.shift))
	r.nodes[i].rp = mergeEnvelopes(rr.lp.materialize(rr.shift), rr.rp.materialize(rr.shift))
	r.nodes[i].rn = mergeEnvelopes(rr.ln.materialize(rr.shift), rr.rn.materialize(rr.shift))
	r.nodes[i].shift = 0
}

// rebuildRoot refreshes node 0's all-leaves envelopes from node 1.
func (r *relState) rebuildRoot() {
	l := &r.nodes[1]
	r.nodes[0].lp = mergeEnvelopes(l.lp.materialize(l.shift), l.rp.materialize(l.shift))
	r.nodes[0].ln = mergeEnvelopes(l.ln.materialize(l.shift), l.rn.materialize(l.shift))
	r.nodes[0].shift = 0
}

// mr computes Equation 10 for node k via envelope queries.
func (r *relState) mr(k int) float64 {
	nd := &r.nodes[k]
	c := r.w[k]
	if k == 0 {
		x := nd.shift - c
		return math.Max(nd.lp.eval(x), nd.ln.eval(x))
	}
	xl, xr := nd.shift-c, nd.shift+c
	m := math.Max(nd.lp.eval(xl), nd.ln.eval(xl))
	return math.Max(m, math.Max(nd.rp.eval(xr), nd.rn.eval(xr)))
}

// remove deletes coefficient k, lazily shifting descendant sub-trees and
// rebuilding ancestor envelopes.
func (r *relState) remove(k int) {
	c := r.w[k]
	if k == 0 {
		r.nodes[0].shift -= c
		if r.n > 1 {
			r.shiftSub(1, -c)
		}
		return
	}
	// k's own sides diverge: fold the per-side shifts into fresh
	// envelopes so ancestors can keep merging them uniformly.
	nd := &r.nodes[k]
	sl, sr := nd.shift-c, nd.shift+c
	nd.lp = nd.lp.shifted(sl)
	nd.ln = nd.ln.shifted(sl)
	nd.rp = nd.rp.shifted(sr)
	nd.rn = nd.rn.shifted(sr)
	nd.shift = 0
	if 2*k < r.n {
		r.shiftSub(2*k, -c)
		r.shiftSub(2*k+1, +c)
	}
	for p := k / 2; p >= 1; p /= 2 {
		r.rebuild(p)
		if r.heap.Contains(p) {
			r.heap.Fix(p, r.mr(p))
		}
	}
	if r.hasRoot {
		r.rebuildRoot()
		if r.heap.Contains(0) {
			r.heap.Fix(0, r.mr(0))
		}
	}
}

// shiftSub adds a uniform error shift to the sub-tree rooted at i and
// refreshes descendant MR heap keys (each an O(log) envelope query).
func (r *relState) shiftSub(i int, delta float64) {
	if i >= r.n {
		return
	}
	r.nodes[i].shift += delta
	if r.heap.Contains(i) {
		r.heap.Fix(i, r.mr(i))
	}
	r.shiftSub(2*i, delta)
	r.shiftSub(2*i+1, delta)
}

// globalMax returns the current maximum relative error over all leaves.
func (r *relState) globalMax() float64 {
	if r.hasRoot {
		nd := &r.nodes[0]
		return math.Max(0, math.Max(nd.lp.eval(nd.shift), nd.ln.eval(nd.shift)))
	}
	nd := &r.nodes[1]
	x := nd.shift
	m := math.Max(nd.lp.eval(x), nd.ln.eval(x))
	return math.Max(0, math.Max(m, math.Max(nd.rp.eval(x), nd.rn.eval(x))))
}
