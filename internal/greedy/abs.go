// Package greedy implements the centralized greedy thresholding algorithms
// of Karras & Mamoulis that the paper builds on (Section 5.1):
//
//   - GreedyAbs, minimizing the maximum absolute reconstruction error: each
//     step discards the live coefficient with the smallest maximum potential
//     absolute error MA_k (Equations 7–8), maintained via four signed-error
//     extremes per error-tree node and an indexed min-heap.
//   - GreedyRel (Section 5.4), minimizing the maximum relative error with a
//     sanity bound: MA's four-quantity trick fails under per-leaf
//     denominators (Equation 10), so each node instead maintains upper
//     envelopes of the lines ±(err_j + x)/den_j over its leaves, with lazy
//     uniform shifts for whole-subtree updates.
//
// Both run the deletion loop to the empty tree and record, for every step,
// the discarded node and the global maximum error after the deletion. The
// paper exploits this full order twice: centralized thresholding keeps the
// best of the last B+1 states (the error is not monotone in the number of
// deletions), and DGreedyAbs emits the order as error-bucket histograms.
package greedy

import (
	"fmt"
	"math"

	"dwmaxerr/internal/wavelet"
)

// Step records one greedy deletion: the error-tree node index removed and
// the global maximum error (absolute or relative, depending on the run)
// over all data values after the removal.
type Step struct {
	Index int
	Err   float64
}

// Options configures a greedy run.
type Options struct {
	// InitialErr is a uniform signed accumulated error applied to every
	// data leaf before the run — the "incoming error" a base sub-tree
	// inherits from deleted root-sub-tree coefficients (Section 5.2).
	InitialErr float64
	// HasRoot states that w[0] is the overall-average coefficient c_0 and
	// participates in thresholding. When false, w describes a detail-only
	// sub-tree whose index 0 is unused (base sub-trees in Figure 4).
	HasRoot bool
}

// RunAbs executes GreedyAbs over the error (sub-)tree with coefficients w
// in heap layout (len a power of two) and returns the full deletion order.
// w is not modified.
func RunAbs(w []float64, opts Options) ([]Step, error) {
	n := len(w)
	if !wavelet.IsPowerOfTwo(n) {
		return nil, wavelet.ErrNotPowerOfTwo
	}
	if n == 1 {
		if !opts.HasRoot {
			return nil, nil // a detail-only tree of size 1 has no nodes
		}
		// Only c_0 exists: removing it leaves error |InitialErr - ... |;
		// err after removal = InitialErr - c_0 on the single leaf.
		return []Step{{0, math.Abs(opts.InitialErr - w[0])}}, nil
	}
	a := &absState{w: w, n: n, hasRoot: opts.HasRoot}
	a.init(opts.InitialErr)
	steps := make([]Step, 0, a.heap.Len())
	for a.heap.Len() > 0 {
		k := a.heap.PopMin()
		a.remove(k)
		steps = append(steps, Step{Index: k, Err: a.globalMax()})
	}
	return steps, nil
}

// absState carries the four signed-error extremes per internal node
// (max/min over the left and right leaves, Section 5.1) plus the heap of
// live coefficients keyed by MA.
type absState struct {
	w       []float64
	n       int
	hasRoot bool
	// Signed-error extremes per node. For node 0 the "left" side covers
	// all leaves and the right side is empty (sentinels).
	maxL, minL, maxR, minR []float64
	heap                   *indexHeap
}

func (a *absState) init(e0 float64) {
	n := a.n
	a.maxL = make([]float64, n)
	a.minL = make([]float64, n)
	a.maxR = make([]float64, n)
	a.minR = make([]float64, n)
	for i := 1; i < n; i++ {
		a.maxL[i], a.minL[i], a.maxR[i], a.minR[i] = e0, e0, e0, e0
	}
	a.heap = newIndexHeap(n)
	start := 1
	if a.hasRoot {
		start = 0
		a.maxL[0], a.minL[0] = e0, e0
		a.maxR[0], a.minR[0] = math.Inf(-1), math.Inf(1)
	}
	for i := start; i < n; i++ {
		a.heap.Push(i, a.ma(i))
	}
}

// ma computes Equation 8 for node k from its four extremes.
func (a *absState) ma(k int) float64 {
	c := a.w[k]
	m := math.Inf(-1)
	if !math.IsInf(a.maxL[k], -1) {
		m = math.Max(m, math.Max(math.Abs(a.maxL[k]-c), math.Abs(a.minL[k]-c)))
	}
	if !math.IsInf(a.maxR[k], -1) {
		m = math.Max(m, math.Max(math.Abs(a.maxR[k]+c), math.Abs(a.minR[k]+c)))
	}
	return m
}

// remove deletes coefficient k: shift the signed errors of its left (right)
// leaves down (up) by c_k, refresh descendant MA values, and re-derive the
// extremes of every ancestor.
func (a *absState) remove(k int) {
	c := a.w[k]
	if k == 0 {
		// c_0 contributes +c to every reconstruction; removal shifts all
		// errors by -c.
		a.maxL[0] -= c
		a.minL[0] -= c
		if a.n > 1 {
			a.shift(1, -c)
		}
		return
	}
	a.maxL[k] -= c
	a.minL[k] -= c
	a.maxR[k] += c
	a.minR[k] += c
	if 2*k < a.n {
		a.shift(2*k, -c)
		a.shift(2*k+1, +c)
	}
	if a.heap.Contains(k) {
		a.heap.Fix(k, a.ma(k))
	}
	a.updateAncestors(k)
}

// shift applies a uniform signed-error shift to the whole sub-tree rooted
// at node i (all four extremes of every internal node move together).
func (a *absState) shift(i int, delta float64) {
	if i >= a.n {
		return
	}
	a.maxL[i] += delta
	a.minL[i] += delta
	a.maxR[i] += delta
	a.minR[i] += delta
	if a.heap.Contains(i) {
		a.heap.Fix(i, a.ma(i))
	}
	a.shift(2*i, delta)
	a.shift(2*i+1, delta)
}

// updateAncestors re-derives the extremes of k's ancestors from their
// children and refreshes their heap keys.
func (a *absState) updateAncestors(k int) {
	for p := k / 2; p >= 1; p /= 2 {
		l, r := 2*p, 2*p+1
		a.maxL[p] = math.Max(a.maxL[l], a.maxR[l])
		a.minL[p] = math.Min(a.minL[l], a.minR[l])
		a.maxR[p] = math.Max(a.maxL[r], a.maxR[r])
		a.minR[p] = math.Min(a.minL[r], a.minR[r])
		if a.heap.Contains(p) {
			a.heap.Fix(p, a.ma(p))
		}
	}
	if a.hasRoot {
		a.maxL[0] = math.Max(a.maxL[1], a.maxR[1])
		a.minL[0] = math.Min(a.minL[1], a.minR[1])
		if a.heap.Contains(0) {
			a.heap.Fix(0, a.ma(0))
		}
	}
}

// globalMax returns the current maximum absolute error over all leaves.
func (a *absState) globalMax() float64 {
	if a.n == 1 {
		return math.Max(math.Abs(a.maxL[0]), math.Abs(a.minL[0]))
	}
	m := math.Max(math.Abs(a.maxL[1]), math.Abs(a.minL[1]))
	return math.Max(m, math.Max(math.Abs(a.maxR[1]), math.Abs(a.minR[1])))
}

// BestTail examines the tail states of a full deletion order per Section
// 5.1: among the states with at most budget coefficients left (i.e. at
// least total-budget deletions applied, where total = len(steps)), it
// returns the number of deletions t minimizing the recorded error, the
// error itself, and the retained node indices steps[t:]. initialErr is the
// global error of the zero-deletions state (|InitialErr| for uniform
// offsets; 0 for a fresh tree). Ties prefer more deletions (a smaller
// synopsis at equal error).
func BestTail(steps []Step, budget int, initialErr float64) (deletions int, err float64, retained []int) {
	total := len(steps)
	tMin := total - budget
	if tMin < 0 {
		tMin = 0
	}
	bestT, bestErr := -1, math.Inf(1)
	for t := tMin; t <= total; t++ {
		var e float64
		if t == 0 {
			e = math.Abs(initialErr)
		} else {
			e = steps[t-1].Err
		}
		if e <= bestErr {
			bestErr = e
			bestT = t
		}
	}
	retained = make([]int, 0, total-bestT)
	for _, s := range steps[bestT:] {
		retained = append(retained, s.Index)
	}
	return bestT, bestErr, retained
}

// validateBudget reports a descriptive error for non-positive budgets.
func validateBudget(b int) error {
	if b < 1 {
		return fmt.Errorf("greedy: budget %d < 1", b)
	}
	return nil
}
