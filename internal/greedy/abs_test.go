package greedy

import (
	"math"
	"math/rand"
	"testing"

	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

var paperData = []float64{5, 5, 0, 26, 1, 3, 14, 2}

func randVec(rng *rand.Rand, n int, scale float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
	return v
}

func TestRunAbsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 1 << (1 + rng.Intn(5)) // 2..32
		data := randVec(rng, n, 50)
		w, _ := wavelet.Transform(data)
		for _, opts := range []Options{
			{HasRoot: true},
			{HasRoot: false},
			{HasRoot: true, InitialErr: rng.NormFloat64() * 10},
			{HasRoot: false, InitialErr: rng.NormFloat64() * 10},
		} {
			got, err := RunAbs(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveRun(w, nil, opts)
			if len(got) != len(want) {
				t.Fatalf("trial %d opts %+v: %d steps, want %d", trial, opts, len(got), len(want))
			}
			for i := range got {
				if got[i].Index != want[i].Index {
					t.Fatalf("trial %d opts %+v step %d: removed %d, naive removed %d",
						trial, opts, i, got[i].Index, want[i].Index)
				}
				if math.Abs(got[i].Err-want[i].Err) > 1e-9*(1+math.Abs(want[i].Err)) {
					t.Fatalf("trial %d step %d: err %g, naive %g", trial, i, got[i].Err, want[i].Err)
				}
			}
		}
	}
}

func TestRunAbsPaperRootSubtreeOrder(t *testing.T) {
	// Section 5.2: on the root sub-tree {c0,c1,c2,c3} of Figure 1 (i.e. the
	// 4-value vector of pair averages [5,13,2,8]), GreedyAbs discards in
	// the order [c1, c3, c2, c0].
	means := []float64{5, 13, 2, 8}
	w, _ := wavelet.Transform(means)
	steps, err := RunAbs(w, Options{HasRoot: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 2, 0}
	for i, s := range steps {
		if s.Index != want[i] {
			t.Fatalf("order = %v, want %v", stepIndices(steps), want)
		}
	}
}

func stepIndices(steps []Step) []int {
	idx := make([]int, len(steps))
	for i, s := range steps {
		idx[i] = s.Index
	}
	return idx
}

func TestRunAbsRemovesAllCoefficients(t *testing.T) {
	w, _ := wavelet.Transform(paperData)
	steps, _ := RunAbs(w, Options{HasRoot: true})
	if len(steps) != len(w) {
		t.Fatalf("steps = %d, want %d", len(steps), len(w))
	}
	seen := map[int]bool{}
	for _, s := range steps {
		if seen[s.Index] {
			t.Fatalf("node %d removed twice", s.Index)
		}
		seen[s.Index] = true
	}
	// Final state: all coefficients gone; error = max |d_i|.
	var wantFinal float64
	for _, d := range paperData {
		wantFinal = math.Max(wantFinal, math.Abs(d))
	}
	if got := steps[len(steps)-1].Err; math.Abs(got-wantFinal) > 1e-12 {
		t.Fatalf("final error = %g, want %g", got, wantFinal)
	}
}

func TestRunAbsZeroCoefficientsRemovedFree(t *testing.T) {
	// A constant vector has all-zero details; removing them must not incur
	// error, and the overall average goes last.
	data := []float64{4, 4, 4, 4, 4, 4, 4, 4}
	w, _ := wavelet.Transform(data)
	steps, _ := RunAbs(w, Options{HasRoot: true})
	for i := 0; i < len(steps)-1; i++ {
		if steps[i].Err != 0 {
			t.Fatalf("step %d err = %g, want 0", i, steps[i].Err)
		}
	}
	last := steps[len(steps)-1]
	if last.Index != 0 || last.Err != 4 {
		t.Fatalf("last step = %+v, want remove node 0 with err 4", last)
	}
}

func TestRunAbsSizeOne(t *testing.T) {
	steps, err := RunAbs([]float64{7}, Options{HasRoot: true})
	if err != nil || len(steps) != 1 || steps[0].Index != 0 || steps[0].Err != 7 {
		t.Fatalf("steps=%v err=%v", steps, err)
	}
	steps, err = RunAbs([]float64{7}, Options{HasRoot: false})
	if err != nil || len(steps) != 0 {
		t.Fatalf("detail-only singleton: steps=%v err=%v", steps, err)
	}
	if _, err := RunAbs(make([]float64, 3), Options{}); err == nil {
		t.Fatal("want error for non-power-of-two")
	}
}

func TestBestTail(t *testing.T) {
	steps := []Step{{5, 3}, {4, 1}, {3, 2}, {2, 9}, {1, 4}, {0, 10}}
	// budget 4 => t in [2,6]; errors at t=2..6: 2,9,4,10... wait t=2 -> steps[1].Err=1? No:
	// E_t = steps[t-1].Err: E_2=1, E_3=2, E_4=9, E_5=4, E_6=10. Min is t=2, err 1.
	dels, err, retained := BestTail(steps, 4, 0)
	if dels != 2 || err != 1 {
		t.Fatalf("dels=%d err=%g", dels, err)
	}
	if len(retained) != 4 || retained[0] != 3 || retained[3] != 0 {
		t.Fatalf("retained = %v", retained)
	}
	// budget >= total: zero deletions with initial error 0 wins.
	dels, err, retained = BestTail(steps, 10, 0)
	if dels != 0 || err != 0 || len(retained) != 6 {
		t.Fatalf("budget>=total: dels=%d err=%g retained=%v", dels, err, retained)
	}
	// budget 1: t in [5,6]: E_5=4, E_6=10.
	dels, err, retained = BestTail(steps, 1, 0)
	if dels != 5 || err != 4 || len(retained) != 1 || retained[0] != 0 {
		t.Fatalf("budget 1: dels=%d err=%g retained=%v", dels, err, retained)
	}
}

func TestBestTailPrefersSmallerSynopsisOnTies(t *testing.T) {
	steps := []Step{{3, 5}, {2, 5}, {1, 5}}
	dels, err, retained := BestTail(steps, 3, 5)
	if dels != 3 || err != 5 || len(retained) != 0 {
		t.Fatalf("dels=%d err=%g retained=%v", dels, err, retained)
	}
}

func TestSynopsisAbsAchievedErrorIsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 << (2 + rng.Intn(6)) // 4..128
		data := randVec(rng, n, 100)
		b := 1 + rng.Intn(n)
		s, reported, err := SynopsisAbs(data, b)
		if err != nil {
			t.Fatal(err)
		}
		if s.Size() > b {
			t.Fatalf("size %d > budget %d", s.Size(), b)
		}
		actual := synopsis.MaxAbsError(s, data)
		if math.Abs(actual-reported) > 1e-6*(1+reported) {
			t.Fatalf("trial %d: reported %g, actual %g", trial, reported, actual)
		}
	}
}

func TestSynopsisAbsNeverWorseThanDroppingNothing(t *testing.T) {
	data := paperData
	s, errAll, err := SynopsisAbs(data, len(data))
	if err != nil {
		t.Fatal(err)
	}
	// c4 of the paper example is zero, so the full synopsis has 7 terms.
	if errAll != 0 || s.Size() != 7 {
		t.Fatalf("full budget: err=%g size=%d", errAll, s.Size())
	}
}

func TestSynopsisAbsCloseToOptimal(t *testing.T) {
	// Exhaustive optimal restricted synopsis on tiny inputs: greedy must be
	// within a small factor (and never better than optimal).
	rng := rand.New(rand.NewSource(8))
	n, b := 8, 3
	var worst float64
	for trial := 0; trial < 30; trial++ {
		data := randVec(rng, n, 40)
		w, _ := wavelet.Transform(data)
		_, greedyErr, err := SynopsisAbs(data, b)
		if err != nil {
			t.Fatal(err)
		}
		opt := math.Inf(1)
		var comb func(start int, chosen []int)
		comb = func(start int, chosen []int) {
			if len(chosen) <= b {
				s := synopsis.FromIndices(w, chosen)
				if e := synopsis.MaxAbsError(s, data); e < opt {
					opt = e
				}
			}
			if len(chosen) == b {
				return
			}
			for i := start; i < n; i++ {
				comb(i+1, append(chosen, i))
			}
		}
		comb(0, nil)
		if greedyErr < opt-1e-9 {
			t.Fatalf("trial %d: greedy %g beat exhaustive optimum %g", trial, greedyErr, opt)
		}
		if ratio := greedyErr / math.Max(opt, 1e-12); ratio > worst {
			worst = ratio
		}
	}
	if worst > 3.0 {
		t.Fatalf("greedy/optimal ratio reached %g; expected near-optimal behavior", worst)
	}
}

func TestSynopsisAbsBudgetValidation(t *testing.T) {
	if _, _, err := SynopsisAbs(paperData, 0); err == nil {
		t.Fatal("want error for budget 0")
	}
	if _, _, err := SynopsisAbs([]float64{1, 2, 3}, 1); err == nil {
		t.Fatal("want error for non-power-of-two data")
	}
}

func TestRunAbsDetailSubtreeWithIncomingError(t *testing.T) {
	// A base sub-tree with a uniform incoming error e0 behaves like a tree
	// whose leaves all start with signed error e0: the first recorded
	// errors must never drop below what removing nothing yields if e0
	// dominates all coefficients.
	w := []float64{0, 0.5, 0.25, -0.25} // detail-only sub-tree, index 0 unused
	steps, err := RunAbs(w, Options{HasRoot: false, InitialErr: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	for _, s := range steps {
		if s.Err < 99 || s.Err > 101 {
			t.Fatalf("step err %g should stay near the incoming error 100", s.Err)
		}
	}
}

func BenchmarkRunAbs(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		rng := rand.New(rand.NewSource(1))
		data := randVec(rng, n, 1000)
		w, _ := wavelet.Transform(data)
		b.Run(sizeLabel(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunAbs(w, Options{HasRoot: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeLabel(n int) string {
	if n >= 1<<16 {
		return "64K"
	}
	return "4K"
}
