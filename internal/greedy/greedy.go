package greedy

import (
	"math"

	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// SynopsisAbs runs the centralized GreedyAbs algorithm end-to-end: Haar
// transform of data, full greedy deletion order, best-tail selection among
// the states retaining at most budget coefficients, and synopsis
// construction. It returns the synopsis and the achieved maximum absolute
// error. data length must be a power of two and budget >= 1.
func SynopsisAbs(data []float64, budget int) (*synopsis.Synopsis, float64, error) {
	if err := validateBudget(budget); err != nil {
		return nil, 0, err
	}
	w, err := wavelet.Transform(data)
	if err != nil {
		return nil, 0, err
	}
	steps, err := RunAbs(w, Options{HasRoot: true})
	if err != nil {
		return nil, 0, err
	}
	_, maxErr, retained := BestTail(steps, budget, 0)
	return synopsis.FromIndices(w, retained), maxErr, nil
}

// SynopsisRel runs the centralized GreedyRel algorithm end-to-end for the
// maximum relative error metric with the given sanity bound (Section 5.4).
// It returns the synopsis and the achieved maximum relative error.
func SynopsisRel(data []float64, budget int, sanity float64) (*synopsis.Synopsis, float64, error) {
	if err := validateBudget(budget); err != nil {
		return nil, 0, err
	}
	if sanity <= 0 {
		sanity = 1
	}
	w, err := wavelet.Transform(data)
	if err != nil {
		return nil, 0, err
	}
	den := Denominators(data, sanity)
	steps, err := RunRel(w, den, Options{HasRoot: true})
	if err != nil {
		return nil, 0, err
	}
	_, maxErr, retained := BestTail(steps, budget, 0)
	return synopsis.FromIndices(w, retained), maxErr, nil
}

// Denominators returns the per-leaf relative-error denominators
// max(|d_j|, sanity) of Equation 3/10.
func Denominators(data []float64, sanity float64) []float64 {
	den := make([]float64, len(data))
	for i, d := range data {
		den[i] = math.Max(math.Abs(d), sanity)
	}
	return den
}
