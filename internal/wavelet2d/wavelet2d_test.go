package wavelet2d

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(t *testing.T, rng *rand.Rand, rows, cols int, scale float64) *Matrix {
	t.Helper()
	m, err := NewMatrix(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		m.Data[i] = math.Trunc(rng.NormFloat64() * scale)
	}
	return m
}

func TestTransformInverseRoundTrip(t *testing.T) {
	f := func(seed int64, lr, lc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 << (lr % 6)
		cols := 1 << (lc % 6)
		m, err := NewMatrix(rows, cols)
		if err != nil {
			return false
		}
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * 100
		}
		w, err := Transform(m)
		if err != nil {
			return false
		}
		back, err := Inverse(w)
		if err != nil {
			return false
		}
		for i := range m.Data {
			if math.Abs(back.Data[i]-m.Data[i]) > 1e-8*(1+math.Abs(m.Data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformConstantMatrix(t *testing.T) {
	m, _ := NewMatrix(4, 8)
	for i := range m.Data {
		m.Data[i] = 6
	}
	w, err := Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	if w.At(0, 0) != 6 {
		t.Fatalf("overall average = %g", w.At(0, 0))
	}
	for i := range w.Data {
		if i != 0 && w.Data[i] != 0 {
			t.Fatalf("detail %d = %g", i, w.Data[i])
		}
	}
}

func TestMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(3, 4); err == nil {
		t.Fatal("non-power-of-two rows accepted")
	}
	if _, err := NewMatrix(4, 5); err == nil {
		t.Fatal("non-power-of-two cols accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := FromRows([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil || m.At(1, 0) != 3 {
		t.Fatalf("FromRows: %v %v", m, err)
	}
}

func TestPointReconstructionMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := randMatrix(t, rng, 8, 16, 50)
	w, _ := Transform(data)
	// Sparse synopsis with random terms.
	s := &Synopsis{Rows: 8, Cols: 16}
	for i := 0; i < 8; i++ {
		for j := 0; j < 16; j++ {
			if rng.Intn(3) == 0 {
				s.Terms = append(s.Terms, Term{i, j, w.At(i, j)})
			}
		}
	}
	ev := NewEvaluator(s)
	rec, err := ev.ReconstructAll()
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 16; y++ {
			if math.Abs(ev.Point(x, y)-rec.At(x, y)) > 1e-9 {
				t.Fatalf("point (%d,%d): %g vs %g", x, y, ev.Point(x, y), rec.At(x, y))
			}
		}
	}
}

func TestFullSynopsisIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := randMatrix(t, rng, 8, 8, 30)
	w, _ := Transform(data)
	s := Conventional(w, 64)
	e, err := Evaluate(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxAbs > 1e-9 || e.L2 > 1e-9 {
		t.Fatalf("full synopsis not exact: %+v", e)
	}
}

func TestRectSumMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 8, 16
		data := &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
		for i := range data.Data {
			data.Data[i] = rng.NormFloat64() * 20
		}
		w, err := Transform(data)
		if err != nil {
			return false
		}
		s := Conventional(w, rows*cols) // exact synopsis
		ev := NewEvaluator(s)
		x1 := rng.Intn(rows)
		x2 := x1 + rng.Intn(rows-x1)
		y1 := rng.Intn(cols)
		y2 := y1 + rng.Intn(cols-y1)
		var want float64
		for x := x1; x <= x2; x++ {
			for y := y1; y <= y2; y++ {
				want += data.At(x, y)
			}
		}
		got := ev.RectSum(x1, x2, y1, y2)
		return math.Abs(got-want) < 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRectSumApproximationConsistent(t *testing.T) {
	// For a lossy synopsis, RectSum must equal the sum over the
	// reconstructed matrix.
	rng := rand.New(rand.NewSource(11))
	data := randMatrix(t, rng, 16, 16, 100)
	w, _ := Transform(data)
	s := Conventional(w, 40)
	ev := NewEvaluator(s)
	rec, _ := ev.ReconstructAll()
	for trial := 0; trial < 30; trial++ {
		x1, y1 := rng.Intn(16), rng.Intn(16)
		x2, y2 := x1+rng.Intn(16-x1), y1+rng.Intn(16-y1)
		var want float64
		for x := x1; x <= x2; x++ {
			for y := y1; y <= y2; y++ {
				want += rec.At(x, y)
			}
		}
		got := ev.RectSum(x1, x2, y1, y2)
		if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
			t.Fatalf("rect (%d,%d)x(%d,%d): %g vs %g", x1, x2, y1, y2, got, want)
		}
	}
}

func TestConventionalReducesL2Monotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := randMatrix(t, rng, 16, 16, 100)
	w, _ := Transform(data)
	prev := math.Inf(1)
	for _, b := range []int{4, 16, 64, 256} {
		s := Conventional(w, b)
		e, err := Evaluate(s, data)
		if err != nil {
			t.Fatal(err)
		}
		if e.L2 > prev+1e-9 {
			t.Fatalf("B=%d: L2 %g worse than smaller budget's %g", b, e.L2, prev)
		}
		prev = e.L2
	}
}

func TestEvaluateShapeMismatch(t *testing.T) {
	a, _ := NewMatrix(4, 4)
	s := &Synopsis{Rows: 8, Cols: 4}
	if _, err := Evaluate(s, a); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestSignificanceOrdering(t *testing.T) {
	// A coefficient at a coarser level (smaller indices) with the same
	// magnitude is more significant.
	if Significance(0, 0, 5) <= Significance(4, 4, 5) {
		t.Fatal("coarse coefficient should dominate")
	}
}
