// Package wavelet2d extends the Haar machinery to two-dimensional data —
// the multidimensional-aggregate setting of Vitter & Wang that the paper
// cites ([31]) as a driving application of wavelet synopses. It implements
// the standard (separable) 2D Haar decomposition, the conventional 2D
// synopsis under the tensor significance ordering, and O(log² N) point and
// rectangle-sum queries against sparse synopses.
//
// Data is an R×C matrix (both powers of two). The decomposition first
// transforms every row, then every column of the row coefficients; a 2D
// coefficient at (i, j) is the tensor product of the 1D basis vectors i
// (vertical) and j (horizontal), so a cell reconstructs as
//
//	a[x][y] = Σ_{i,j} δ_{x,i} · δ_{y,j} · w[i][j]
//
// with δ the 1D error-tree path signs.
package wavelet2d

import (
	"fmt"
	"math"
	"sort"

	"dwmaxerr/internal/wavelet"
)

// Matrix is a dense row-major R×C matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates an R×C matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if !wavelet.IsPowerOfTwo(rows) || !wavelet.IsPowerOfTwo(cols) {
		return nil, fmt.Errorf("wavelet2d: dimensions %dx%d must be powers of two", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// FromRows builds a matrix from row slices of equal power-of-two length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("wavelet2d: empty input")
	}
	m, err := NewMatrix(len(rows), len(rows[0]))
	if err != nil {
		return nil, err
	}
	for r, row := range rows {
		if len(row) != m.Cols {
			return nil, fmt.Errorf("wavelet2d: row %d has %d values, want %d", r, len(row), m.Cols)
		}
		copy(m.Data[r*m.Cols:], row)
	}
	return m, nil
}

// At returns the element at row x, column y.
func (m *Matrix) At(x, y int) float64 { return m.Data[x*m.Cols+y] }

// Set assigns the element at row x, column y.
func (m *Matrix) Set(x, y int, v float64) { m.Data[x*m.Cols+y] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Transform computes the standard 2D Haar decomposition in place-safe
// fashion and returns the coefficient matrix (same shape).
func Transform(m *Matrix) (*Matrix, error) {
	out := m.Clone()
	buf := make([]float64, max(out.Rows, out.Cols))
	// Rows first.
	for r := 0; r < out.Rows; r++ {
		row := out.Data[r*out.Cols : (r+1)*out.Cols]
		wavelet.TransformInto(buf[:out.Cols], row)
		copy(row, buf[:out.Cols])
	}
	// Then columns.
	col := make([]float64, out.Rows)
	for c := 0; c < out.Cols; c++ {
		for r := 0; r < out.Rows; r++ {
			col[r] = out.At(r, c)
		}
		wavelet.TransformInto(buf[:out.Rows], col)
		for r := 0; r < out.Rows; r++ {
			out.Set(r, c, buf[r])
		}
	}
	return out, nil
}

// Inverse reconstructs the data matrix from a coefficient matrix.
func Inverse(w *Matrix) (*Matrix, error) {
	out := w.Clone()
	buf := make([]float64, max(out.Rows, out.Cols))
	// Invert columns first (reverse order of Transform).
	col := make([]float64, out.Rows)
	for c := 0; c < out.Cols; c++ {
		for r := 0; r < out.Rows; r++ {
			col[r] = out.At(r, c)
		}
		wavelet.InverseInto(buf[:out.Rows], col)
		for r := 0; r < out.Rows; r++ {
			out.Set(r, c, buf[r])
		}
	}
	for r := 0; r < out.Rows; r++ {
		row := out.Data[r*out.Cols : (r+1)*out.Cols]
		wavelet.InverseInto(buf[:out.Cols], row)
		copy(row, buf[:out.Cols])
	}
	return out, nil
}

// Term is one retained 2D coefficient.
type Term struct {
	I, J  int // vertical (row-dimension) and horizontal coefficient indices
	Value float64
}

// Synopsis is a sparse 2D wavelet synopsis.
type Synopsis struct {
	Rows, Cols int
	Terms      []Term
}

// Significance returns the 2D significance |v| / sqrt(2^(level_i+level_j)),
// the tensor analogue of the 1D ordering; retaining the top B minimizes
// the L2 error.
func Significance(i, j int, v float64) float64 {
	return math.Abs(v) / math.Sqrt(float64(int(1)<<uint(wavelet.Level(i)+wavelet.Level(j))))
}

// Conventional retains the B coefficients of greatest 2D significance.
func Conventional(w *Matrix, budget int) *Synopsis {
	type cand struct {
		i, j int
		v    float64
		sig  float64
	}
	var cands []cand
	for i := 0; i < w.Rows; i++ {
		for j := 0; j < w.Cols; j++ {
			if v := w.At(i, j); v != 0 {
				cands = append(cands, cand{i, j, v, Significance(i, j, v)})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].sig != cands[b].sig {
			return cands[a].sig > cands[b].sig
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	if budget > len(cands) {
		budget = len(cands)
	}
	s := &Synopsis{Rows: w.Rows, Cols: w.Cols}
	for _, c := range cands[:budget] {
		s.Terms = append(s.Terms, Term{I: c.i, J: c.j, Value: c.v})
	}
	return s
}

// Size returns the number of retained terms.
func (s *Synopsis) Size() int { return len(s.Terms) }

// Evaluator answers queries against a 2D synopsis.
type Evaluator struct {
	s *Synopsis
}

// NewEvaluator builds a query evaluator.
func NewEvaluator(s *Synopsis) *Evaluator { return &Evaluator{s: s} }

// Point reconstructs cell (x, y) from the retained terms: O(terms) with
// early sign tests, O(log²) when terms are path-indexed (the sparse-map
// walk below checks only coefficients whose supports contain the cell).
func (e *Evaluator) Point(x, y int) float64 {
	var v float64
	for _, t := range e.s.Terms {
		si := pathSign(e.s.Rows, x, t.I)
		if si == 0 {
			continue
		}
		sj := pathSign(e.s.Cols, y, t.J)
		if sj == 0 {
			continue
		}
		v += float64(si*sj) * t.Value
	}
	return v
}

// RectSum returns the approximate sum over rows [x1,x2] × cols [y1,y2]
// using the separable range-count identity: each term contributes
// value · rangeCount_rows(i) · rangeCount_cols(j).
func (e *Evaluator) RectSum(x1, x2, y1, y2 int) float64 {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	var sum float64
	for _, t := range e.s.Terms {
		ci := rangeCount(e.s.Rows, t.I, x1, x2)
		if ci == 0 {
			continue
		}
		cj := rangeCount(e.s.Cols, t.J, y1, y2)
		if cj == 0 {
			continue
		}
		sum += float64(ci) * float64(cj) * t.Value
	}
	return sum
}

// ReconstructAll materializes the full approximate matrix.
func (e *Evaluator) ReconstructAll() (*Matrix, error) {
	w, err := NewMatrix(e.s.Rows, e.s.Cols)
	if err != nil {
		return nil, err
	}
	for _, t := range e.s.Terms {
		w.Set(t.I, t.J, t.Value)
	}
	return Inverse(w)
}

// Errors measures a 2D synopsis against the original matrix.
type Errors struct {
	L2     float64
	MaxAbs float64
}

// Evaluate computes the error metrics of s against data.
func Evaluate(s *Synopsis, data *Matrix) (Errors, error) {
	if s.Rows != data.Rows || s.Cols != data.Cols {
		return Errors{}, fmt.Errorf("wavelet2d: shape mismatch %dx%d vs %dx%d", s.Rows, s.Cols, data.Rows, data.Cols)
	}
	rec, err := NewEvaluator(s).ReconstructAll()
	if err != nil {
		return Errors{}, err
	}
	var e Errors
	var sq float64
	for i, v := range data.Data {
		d := math.Abs(rec.Data[i] - v)
		sq += d * d
		if d > e.MaxAbs {
			e.MaxAbs = d
		}
	}
	e.L2 = math.Sqrt(sq / float64(len(data.Data)))
	return e, nil
}

// pathSign is the 1D delta_{x,i} factor.
func pathSign(n, x, i int) int {
	if i == 0 {
		return 1
	}
	first, last := wavelet.CoefficientSupport(n, i)
	if x < first || x >= last {
		return 0
	}
	if x < first+(last-first)/2 {
		return 1
	}
	return -1
}

// rangeCount is the 1D signed leaf-count factor of a coefficient over an
// inclusive range: +count of covered left leaves, -count of covered right
// leaves; node 0 counts every covered leaf positively.
func rangeCount(n, i, lo, hi int) int {
	if i == 0 {
		return hi - lo + 1
	}
	first, last := wavelet.CoefficientSupport(n, i)
	mid := first + (last-first)/2
	return overlap(lo, hi, first, mid-1) - overlap(lo, hi, mid, last-1)
}

func overlap(a, b, c, d int) int {
	lo, hi := a, b
	if c > lo {
		lo = c
	}
	if d < hi {
		hi = d
	}
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}
