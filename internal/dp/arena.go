package dp

// Flat arena allocation for the DP tables. A solve touches one Row (or
// HPRow) per error-tree node, each holding O(ε/δ) cells indexed by the
// quantized incoming value — thousands of small slices when allocated
// individually. The arenas below carve those slices out of large chunks
// instead, the same discipline internal/mr applies to its shuffle buffers:
// one backing allocation amortizes many rows, the chunk is dropped
// wholesale when the solve's rows go out of scope, and the garbage
// collector scans a handful of pointers instead of 2N.
//
// Arenas are single-solve scratch: rows returned to callers alias the
// chunks, so an arena must never be recycled while its rows are live.
// Every alloc returns fresh zeroed memory (chunks are never reused), which
// LeafRow's zero-cost cells rely on.

// arenaChunkCells is the default chunk size (cells, not bytes). Large
// enough that a typical solve needs a handful of chunks; small enough
// that tiny solves don't over-commit.
const arenaChunkCells = 1 << 15

// rowArena hands out zeroed int32 slices (Row.Count/Choice, HPRow tables)
// from chunked backing arrays. The zero value is ready to use; a nil
// arena degrades to plain make, so arena-aware code paths need no
// branching at call sites.
type rowArena struct {
	free []int32
}

// alloc returns a zeroed slice of n cells with capacity clamped to n, so
// appends by callers can never bleed into a neighbouring row.
func (a *rowArena) alloc(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	if n > len(a.free) {
		size := arenaChunkCells
		if n > size {
			size = n
		}
		a.free = make([]int32, size)
	}
	s := a.free[:n:n]
	a.free = a.free[n:]
	return s
}

// floatArena is rowArena for float64 cells (the GK row's per-budget error
// vectors).
type floatArena struct {
	free []float64
}

func (a *floatArena) alloc(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if n > len(a.free) {
		size := arenaChunkCells
		if n > size {
			size = n
		}
		a.free = make([]float64, size)
	}
	s := a.free[:n:n]
	a.free = a.free[n:]
	return s
}
