package dp

import (
	"math"
	"math/rand"
	"testing"
)

func measureHP(h *HPSolution, data []float64) float64 {
	rec := h.Reconstruct()
	var m float64
	for i, d := range data {
		m = math.Max(m, math.Abs(rec[i]-d))
	}
	return m
}

func TestHaarPlusErrorBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 1 << (1 + rng.Intn(6))
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 200)
		}
		eps := 3 + rng.Float64()*25
		h, ok, err := HaarPlus(data, Params{Epsilon: eps, Delta: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d infeasible at ε=%g", trial, eps)
		}
		if got := measureHP(h, data); got > eps+1e-9 {
			t.Fatalf("trial %d: error %g > ε %g", trial, got, eps)
		}
		// The retained-term count must equal the number of stored offsets.
		count := 0
		for _, ab := range h.nodes {
			count += int(hpCost(int(math.Round(ab[0])), int(math.Round(ab[1]))))
		}
		if h.C0 != 0 {
			count++
		}
		if count != h.Size {
			t.Fatalf("trial %d: stored terms %d != reported size %d", trial, count, h.Size)
		}
	}
}

func TestHaarPlusNeverWorseThanMinHaarSpace(t *testing.T) {
	// Haar+ generalizes unrestricted plain-Haar synopses (the head
	// coefficients alone are exactly the Haar dictionary), so at equal
	// (ε, δ) it never needs more terms.
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 15; trial++ {
		n := 1 << (2 + rng.Intn(4))
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 150)
		}
		p := Params{Epsilon: 4 + rng.Float64()*20, Delta: 1}
		mhs, okM, err := MinHaarSpace(data, p)
		if err != nil {
			t.Fatal(err)
		}
		hp, okH, err := HaarPlus(data, p)
		if err != nil {
			t.Fatal(err)
		}
		if okM && !okH {
			t.Fatalf("trial %d: Haar+ infeasible where plain Haar is not", trial)
		}
		if !okM {
			continue
		}
		if hp.Size > mhs.Size {
			t.Fatalf("trial %d: Haar+ used %d terms > plain Haar's %d", trial, hp.Size, mhs.Size)
		}
	}
}

func TestHaarPlusStrictImprovementExists(t *testing.T) {
	// A localized spike: plain Haar must spend log N coefficients on the
	// spike's path, Haar+ fixes it with a single supplementary term near
	// the leaf. Find a case where Haar+ is strictly smaller.
	data := make([]float64, 32)
	data[13] = 1000
	p := Params{Epsilon: 1, Delta: 1}
	mhs, okM, err := MinHaarSpace(data, p)
	if err != nil || !okM {
		t.Fatalf("plain: %v %v", okM, err)
	}
	hp, okH, err := HaarPlus(data, p)
	if err != nil || !okH {
		t.Fatalf("haar+: %v %v", okH, err)
	}
	if hp.Size >= mhs.Size {
		t.Fatalf("expected strict improvement on a spike: Haar+ %d vs plain %d", hp.Size, mhs.Size)
	}
	if hp.Size != 1 {
		t.Fatalf("a single supplementary term should fix one spike, used %d", hp.Size)
	}
}

func TestHaarPlusMonotoneInEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := make([]float64, 32)
	for i := range data {
		data[i] = math.Trunc(rng.Float64() * 300)
	}
	prev := math.MaxInt32
	for _, eps := range []float64{2, 5, 10, 30, 80} {
		h, ok, err := HaarPlus(data, Params{Epsilon: eps, Delta: 1})
		if err != nil || !ok {
			t.Fatalf("ε=%g: %v %v", eps, ok, err)
		}
		if h.Size > prev {
			t.Fatalf("ε=%g: size %d grew from %d", eps, h.Size, prev)
		}
		prev = h.Size
	}
}

func TestHaarPlusSingleValueAndValidation(t *testing.T) {
	h, ok, err := HaarPlus([]float64{9}, Params{Epsilon: 1, Delta: 1})
	if err != nil || !ok || h.Size != 1 || h.Reconstruct()[0] != 9 {
		t.Fatalf("h=%+v ok=%v err=%v", h, ok, err)
	}
	if _, _, err := HaarPlus(make([]float64, 3), Params{Epsilon: 1, Delta: 1}); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, _, err := HaarPlus(make([]float64, 4), Params{}); err == nil {
		t.Fatal("zero delta accepted")
	}
}

func TestHaarPlusBudgetBeatsOrMatchesIndirectHaar(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 8; trial++ {
		n := 32
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 400)
		}
		b := 3 + rng.Intn(6)
		hp, hpErr, err := HaarPlusBudget(data, b, 2)
		if err != nil {
			t.Fatal(err)
		}
		if hp.Size > b {
			t.Fatalf("trial %d: %d terms > budget %d", trial, hp.Size, b)
		}
		ih, err := IndirectHaar(data, b, 2)
		if err != nil {
			t.Fatal(err)
		}
		// The richer dictionary should not lose by more than grid slack.
		if hpErr > ih.MaxAbs+4 {
			t.Fatalf("trial %d: Haar+ %g much worse than plain %g", trial, hpErr, ih.MaxAbs)
		}
	}
}

func TestHaarPlusBudgetValidation(t *testing.T) {
	if _, _, err := HaarPlusBudget(make([]float64, 4), 0, 1); err == nil {
		t.Fatal("budget 0 accepted")
	}
}

func BenchmarkHaarPlus(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 256)
	for i := range data {
		data[i] = math.Trunc(rng.Float64() * 500)
	}
	p := Params{Epsilon: 50, Delta: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := HaarPlus(data, p); err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkGKOptimal(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 64)
	for i := range data {
		data[i] = math.Trunc(rng.Float64() * 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GKOptimal(data, 8); err != nil {
			b.Fatal(err)
		}
	}
}
