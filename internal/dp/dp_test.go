package dp

import (
	"math"
	"math/rand"
	"testing"

	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Epsilon: 1, Delta: 0}).Validate(); err == nil {
		t.Error("delta 0 accepted")
	}
	if err := (Params{Epsilon: -1, Delta: 1}).Validate(); err == nil {
		t.Error("negative epsilon accepted")
	}
	if err := (Params{Epsilon: 1, Delta: 0.5}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestGridRoundTrip(t *testing.T) {
	p := Params{Epsilon: 10, Delta: 0.5}
	for _, v := range []float64{0, 1, -3.25, 7.499, 1000} {
		g := p.Grid(v)
		if math.Abs(p.Value(g)-v) > p.Delta/2+1e-12 {
			t.Errorf("grid round trip of %g: %g", v, p.Value(g))
		}
	}
}

func TestLeafRowWindow(t *testing.T) {
	p := Params{Epsilon: 2, Delta: 1}
	r := LeafRow(5, p)
	if r.Lo != 3 || r.Hi() != 7 {
		t.Fatalf("window [%d,%d], want [3,7]", r.Lo, r.Hi())
	}
	for g := 3; g <= 7; g++ {
		if r.At(g) != 0 {
			t.Fatalf("At(%d) = %d", g, r.At(g))
		}
	}
	if r.At(2) != Infeasible || r.At(8) != Infeasible {
		t.Fatal("outside window must be infeasible")
	}
	// δ > 2ε: empty window.
	// δ > 2ε with no grid point in [5.3, 5.7]: empty window.
	empty := LeafRow(5.5, Params{Epsilon: 0.2, Delta: 1})
	if empty.Feasible() || len(empty.Count) != 0 {
		t.Fatalf("expected empty infeasible row, got %+v", empty)
	}
}

func TestCombineRowsSimplePair(t *testing.T) {
	// Leaves 4 and 8, ε=1, δ=1. Mean 6; window [5,7]. With incoming 6, a
	// coefficient z must satisfy |6+z-4|<=1 and |6-z-8|<=1: z in [-3,-1]
	// and z in [-3,-1] -> cost 1.
	p := Params{Epsilon: 1, Delta: 1}
	row := CombineRows(LeafRow(4, p), LeafRow(8, p), p)
	if row.Lo > 6 || row.Hi() < 6 {
		t.Fatalf("window [%d,%d] misses mean", row.Lo, row.Hi())
	}
	if got := row.At(6); got != 1 {
		t.Fatalf("count at mean = %d, want 1", got)
	}
	if z := row.ChoiceAt(6); z > -1 || z < -3 {
		t.Fatalf("choice at mean = %d, want in [-3,-1]", z)
	}
	// Close leaves need no coefficient.
	row2 := CombineRows(LeafRow(5, p), LeafRow(6, p), p)
	g := p.Grid(5.5)
	if got := row2.At(g); got != 0 {
		t.Fatalf("close pair count = %d, want 0", got)
	}
	if row2.ChoiceAt(g) != 0 {
		t.Fatal("close pair should prefer z=0")
	}
}

func TestMinHaarSpaceErrorBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 << (1 + rng.Intn(6)) // 2..64
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 100)
		}
		eps := 2 + rng.Float64()*20
		p := Params{Epsilon: eps, Delta: 1}
		sol, ok, err := MinHaarSpace(data, p)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: infeasible at ε=%g δ=1", trial, eps)
		}
		if got := synopsis.MaxAbsError(sol.Synopsis, data); got > eps+1e-9 {
			t.Fatalf("trial %d: error %g > ε %g", trial, got, eps)
		}
		if sol.Size != sol.Synopsis.Size() {
			t.Fatalf("size mismatch: %d vs %d", sol.Size, sol.Synopsis.Size())
		}
	}
}

func TestMinHaarSpaceExactRepresentation(t *testing.T) {
	// With a tight ε and data whose Haar coefficients are on-grid, the
	// minimum exact unrestricted representation retains exactly the
	// nonzero Haar coefficients.
	data := []float64{5, 5, 0, 26, 1, 3, 14, 2} // paper example, 7 nonzero coefficients
	p := Params{Epsilon: 0.2, Delta: 0.5}
	sol, ok, err := MinHaarSpace(data, p)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if sol.Size != 7 {
		t.Fatalf("size = %d, want 7", sol.Size)
	}
	if e := synopsis.MaxAbsError(sol.Synopsis, data); e > 0.2 {
		t.Fatalf("error %g", e)
	}
}

func TestMinHaarSpaceMonotoneInEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := make([]float64, 32)
	for i := range data {
		data[i] = math.Trunc(rng.Float64() * 200)
	}
	prev := math.MaxInt32
	for _, eps := range []float64{2, 5, 10, 20, 50, 100} {
		sol, ok, err := MinHaarSpace(data, Params{Epsilon: eps, Delta: 1})
		if err != nil || !ok {
			t.Fatalf("ε=%g: ok=%v err=%v", eps, ok, err)
		}
		if sol.Size > prev {
			t.Fatalf("ε=%g needs %d coefficients, more than %d at smaller ε", eps, sol.Size, prev)
		}
		prev = sol.Size
	}
}

func TestMinHaarSpaceBeatsOrMatchesRestrictedGreedy(t *testing.T) {
	// If GreedyAbs achieves error e with k coefficients, then MinHaarSpace
	// at a slightly inflated bound (covering grid rounding of each of the
	// log2(n)+1 path coefficients) must need at most k coefficients.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 32
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 500)
		}
		b := 4 + rng.Intn(8)
		gs, gErr, err := greedy.SynopsisAbs(data, b)
		if err != nil {
			t.Fatal(err)
		}
		delta := 1.0
		slack := (float64(wavelet.Log2(n)) + 1) * delta / 2
		sol, ok, err := MinHaarSpace(data, Params{Epsilon: gErr + slack, Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d infeasible", trial)
		}
		if sol.Size > gs.Size() {
			t.Fatalf("trial %d: DP used %d > greedy's %d at ε=%g+%g",
				trial, sol.Size, gs.Size(), gErr, slack)
		}
	}
}

func TestMinHaarSpaceSingleValue(t *testing.T) {
	sol, ok, err := MinHaarSpace([]float64{7}, Params{Epsilon: 1, Delta: 1})
	if err != nil || !ok || sol.Size != 1 {
		t.Fatalf("sol=%+v ok=%v err=%v", sol, ok, err)
	}
	sol, ok, err = MinHaarSpace([]float64{0.5}, Params{Epsilon: 1, Delta: 1})
	if err != nil || !ok || sol.Size != 0 {
		t.Fatalf("within ε of zero: sol=%+v ok=%v err=%v", sol, ok, err)
	}
}

func TestMinHaarSpaceInfeasibleGrid(t *testing.T) {
	// δ far larger than 2ε leaves leaf windows empty.
	_, ok, err := MinHaarSpace([]float64{3, 9, 27, 81}, Params{Epsilon: 0.1, Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected infeasible")
	}
}

func TestMinHaarSpaceRejectsBadInput(t *testing.T) {
	if _, _, err := MinHaarSpace(make([]float64, 3), Params{Epsilon: 1, Delta: 1}); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, _, err := MinHaarSpace(make([]float64, 4), Params{Epsilon: 1, Delta: 0}); err == nil {
		t.Error("zero delta accepted")
	}
}

func TestSolveTreeRejectsBadLeafCount(t *testing.T) {
	if _, err := SolveTree(make([]Row, 3), Params{Epsilon: 1, Delta: 1}); err == nil {
		t.Error("3 leaves accepted")
	}
	if _, err := SolveTree(make([]Row, 1), Params{Epsilon: 1, Delta: 1}); err == nil {
		t.Error("1 leaf accepted")
	}
}

func TestIndirectHaarRespectsBudgetAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		n := 1 << (3 + rng.Intn(4)) // 8..64
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 1000)
		}
		b := 2 + rng.Intn(n/4)
		res, err := IndirectHaar(data, b, 4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Synopsis.Size() > b {
			t.Fatalf("trial %d: size %d > budget %d", trial, res.Synopsis.Size(), b)
		}
		actual := synopsis.MaxAbsError(res.Synopsis, data)
		if math.Abs(actual-res.MaxAbs) > 1e-9 {
			t.Fatalf("reported %g actual %g", res.MaxAbs, actual)
		}
		// Never worse than the conventional synopsis (the initial bound).
		w, _ := wavelet.Transform(data)
		conv := synopsis.MaxAbsError(synopsis.Conventional(w, b), data)
		if res.MaxAbs > conv+1e-9 {
			t.Fatalf("trial %d: indirect %g worse than conventional %g", trial, res.MaxAbs, conv)
		}
	}
}

func TestIndirectHaarFullBudgetIsExact(t *testing.T) {
	data := []float64{5, 5, 0, 26, 1, 3, 14, 2}
	res, err := IndirectHaar(data, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbs != 0 || res.Synopsis.Size() != 7 {
		t.Fatalf("res = %+v size=%d", res, res.Synopsis.Size())
	}
	if _, err := IndirectHaar(data, 0, 1); err == nil {
		t.Fatal("budget 0 accepted")
	}
}

func TestIndirectHaarImprovesWithBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	data := make([]float64, 64)
	for i := range data {
		data[i] = math.Trunc(rng.Float64() * 1000)
	}
	prev := math.Inf(1)
	for _, b := range []int{2, 4, 8, 16, 32} {
		res, err := IndirectHaar(data, b, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxAbs > prev+1e-9 {
			t.Fatalf("B=%d: error %g worse than smaller budget's %g", b, res.MaxAbs, prev)
		}
		prev = res.MaxAbs
	}
}

func TestCollectChoicesLeafIncomingIsConsistent(t *testing.T) {
	// The incoming values handed to leaves must reconstruct each data value
	// within ε.
	data := []float64{10, 14, 3, 3, 22, 25, 8, 1}
	p := Params{Epsilon: 3, Delta: 1}
	leaves := make([]Row, len(data))
	for i, d := range data {
		leaves[i] = LeafRow(d, p)
	}
	rows, err := SolveTree(leaves, p)
	if err != nil {
		t.Fatal(err)
	}
	root := FinishRoot(rows[1], p)
	if !root.Feasible {
		t.Fatal("infeasible")
	}
	got := make([]float64, len(data))
	CollectChoices(rows, root.C0Grid, nil, func(pos, g int) {
		got[pos] = p.Value(g)
	})
	for i, d := range data {
		if math.Abs(got[i]-d) > p.Epsilon+1e-9 {
			t.Fatalf("leaf %d incoming %g vs data %g exceeds ε", i, got[i], d)
		}
	}
}

func TestKthLargestAbs(t *testing.T) {
	w := []float64{3, -7, 1, 0, 5}
	for k, want := range map[int]float64{1: 7, 2: 5, 3: 3, 4: 1, 5: 0, 6: 0} {
		if got := kthLargestAbs(w, k); got != want {
			t.Errorf("kthLargestAbs(%d) = %g, want %g", k, got, want)
		}
	}
}

func BenchmarkMinHaarSpace(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 1<<10)
	for i := range data {
		data[i] = math.Trunc(rng.Float64() * 1000)
	}
	p := Params{Epsilon: 100, Delta: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := MinHaarSpace(data, p); err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}
