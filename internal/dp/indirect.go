package dp

import (
	"fmt"
	"math"

	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// IndirectStats reports how a binary search over ε converged.
type IndirectStats struct {
	Probes int     // MinHaarSpace invocations
	ELow   float64 // initial lower bound: the (B+1)-largest |coefficient|
	EHigh  float64 // initial upper bound: max_abs of the conventional synopsis
}

// IndirectResult is the answer of an IndirectHaar run.
type IndirectResult struct {
	Synopsis *synopsis.Synopsis
	MaxAbs   float64 // actual maximum absolute error of Synopsis
	Stats    IndirectStats
}

// Prober abstracts one MinHaarSpace execution at a given ε, so the
// centralized algorithm and the distributed DIndirectHaar share the same
// binary-search driver (Algorithm 2). Implementations must be
// deterministic.
type Prober interface {
	// Probe solves Problem 2 at the given ε and returns the synopsis, or
	// feasible=false when the quantization admits no solution.
	Probe(epsilon float64) (*synopsis.Synopsis, bool, error)
}

// centralProber runs the in-memory MinHaarSpace.
type centralProber struct {
	data  []float64
	delta float64
}

// Probe implements Prober.
func (c centralProber) Probe(epsilon float64) (*synopsis.Synopsis, bool, error) {
	sol, ok, err := MinHaarSpace(c.data, Params{Epsilon: epsilon, Delta: c.delta})
	if err != nil || !ok {
		return nil, false, err
	}
	return sol.Synopsis, true, nil
}

// SearchEnv supplies the binary search with its initial bounds, a starting
// feasible synopsis, and an error oracle — so that the centralized and
// distributed algorithms share one driver. The distributed DIndirectHaar
// fills these from the two extra jobs Algorithm 2 describes.
type SearchEnv struct {
	ELow    float64            // e_l: the (B+1)-largest |coefficient|
	EHigh   float64            // e_u: max_abs of the conventional B-term synopsis
	Initial *synopsis.Synopsis // the conventional synopsis (initial best)
	// Eval returns the actual maximum absolute error of a synopsis.
	Eval func(*synopsis.Synopsis) (float64, error)
}

// IndirectHaar answers Problem 1 centrally: find a synopsis of at most
// budget coefficients minimizing the maximum absolute error, by binary
// search over the error bound with MinHaarSpace probes (Algorithm 2).
// delta is the quantization step δ.
func IndirectHaar(data []float64, budget int, delta float64) (IndirectResult, error) {
	w, err := wavelet.Transform(data)
	if err != nil {
		return IndirectResult{}, err
	}
	return IndirectSearch(centralProber{data: data, delta: delta}, data, w, budget, delta)
}

// IndirectSearch is the centralized entry point: it derives the search
// environment from the in-memory coefficient vector w and data, then runs
// the shared driver.
func IndirectSearch(pr Prober, data, w []float64, budget int, delta float64) (IndirectResult, error) {
	if budget < 1 {
		return IndirectResult{}, fmt.Errorf("dp: budget %d < 1", budget)
	}
	nonzero := 0
	for _, c := range w {
		if c != 0 {
			nonzero++
		}
	}
	if budget >= nonzero {
		// Everything fits: exact representation.
		idx := make([]int, 0, nonzero)
		for i, c := range w {
			if c != 0 {
				idx = append(idx, i)
			}
		}
		return IndirectResult{Synopsis: synopsis.FromIndices(w, idx)}, nil
	}
	conv := synopsis.Conventional(w, budget)
	env := SearchEnv{
		ELow:    kthLargestAbs(w, budget+1),
		EHigh:   synopsis.MaxAbsError(conv, data),
		Initial: conv,
		Eval: func(s *synopsis.Synopsis) (float64, error) {
			return synopsis.MaxAbsError(s, data), nil
		},
	}
	return SearchWithEnv(pr, env, budget, delta)
}

// SearchWithEnv runs the binary search of Algorithm 2 against an abstract
// environment.
func SearchWithEnv(pr Prober, env SearchEnv, budget int, delta float64) (IndirectResult, error) {
	if budget < 1 {
		return IndirectResult{}, fmt.Errorf("dp: budget %d < 1", budget)
	}
	eLow, eHigh := env.ELow, env.EHigh
	st := IndirectStats{ELow: eLow, EHigh: eHigh}

	best := env.Initial
	bestErr := eHigh
	bestSize := best.Size()

	lo, hi := eLow, eHigh
	if lo > hi {
		lo = hi
	}
	record := func(s *synopsis.Synopsis) (float64, error) {
		e, err := env.Eval(s)
		if err != nil {
			return 0, err
		}
		if e < bestErr-1e-12 || (e <= bestErr+1e-12 && s.Size() < bestSize) {
			best, bestErr, bestSize = s, e, s.Size()
		}
		return e, nil
	}

	const maxProbes = 64
	for st.Probes < maxProbes && hi-lo > delta/4 {
		mid := (lo + hi) / 2
		st.Probes++
		s, ok, err := pr.Probe(mid)
		if err != nil {
			return IndirectResult{}, err
		}
		if !ok {
			// Quantization infeasible at this ε: need a larger bound.
			lo = mid
			continue
		}
		size := s.Size()
		if size > budget {
			lo = mid
			continue
		}
		eBar, err := record(s)
		if err != nil {
			return IndirectResult{}, err
		}
		if size == budget {
			break
		}
		// Fewer than budget coefficients sufficed; try to beat the error
		// actually achieved (line 9 of Algorithm 2).
		tighter := eBar - delta
		if tighter <= 0 {
			break
		}
		st.Probes++
		s2, ok2, err := pr.Probe(tighter)
		if err != nil {
			return IndirectResult{}, err
		}
		if !ok2 || s2.Size() > budget {
			break // current solution is (grid-)optimal
		}
		if _, err := record(s2); err != nil {
			return IndirectResult{}, err
		}
		hi = math.Min(eBar, tighter)
		if hi < lo {
			lo = 0
		}
	}
	if best == nil {
		return IndirectResult{}, fmt.Errorf("dp: no feasible synopsis found")
	}
	return IndirectResult{Synopsis: best, MaxAbs: bestErr, Stats: st}, nil
}

// kthLargestAbs returns the k-th largest absolute value in w (1-based),
// or 0 when k exceeds len(w). Quickselect with median-of-three pivots:
// expected O(n) against the O(n log n) full sort this bound used to pay
// on every IndirectHaar call.
func kthLargestAbs(w []float64, k int) float64 {
	if k > len(w) {
		return 0
	}
	mags := make([]float64, len(w))
	for i, c := range w {
		mags[i] = math.Abs(c)
	}
	lo, hi := 0, len(mags)-1
	target := k - 1 // select the target-th element in descending order
	for lo < hi {
		// Median-of-three pivot, moved to mags[hi].
		mid := lo + (hi-lo)/2
		if mags[lo] < mags[mid] {
			mags[lo], mags[mid] = mags[mid], mags[lo]
		}
		if mags[lo] < mags[hi] {
			mags[lo], mags[hi] = mags[hi], mags[lo]
		}
		if mags[hi] < mags[mid] {
			mags[hi], mags[mid] = mags[mid], mags[hi]
		}
		pivot := mags[hi]
		i := lo
		for j := lo; j < hi; j++ {
			if mags[j] > pivot {
				mags[i], mags[j] = mags[j], mags[i]
				i++
			}
		}
		mags[i], mags[hi] = mags[hi], mags[i]
		switch {
		case i == target:
			return mags[i]
		case i < target:
			lo = i + 1
		default:
			hi = i - 1
		}
	}
	return mags[target]
}
