package dp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dwmaxerr/internal/synopsis"
)

// TestArenaAllocIsolation: slices carved from one arena never alias and
// arrive zeroed, across sizes spanning chunk boundaries.
func TestArenaAllocIsolation(t *testing.T) {
	a := &rowArena{}
	sizes := []int{1, 7, arenaChunkCells - 1, 3, arenaChunkCells + 5, 2}
	slices := make([][]int32, len(sizes))
	for i, sz := range sizes {
		s := a.alloc(sz)
		if len(s) != sz || cap(s) != sz {
			t.Fatalf("alloc(%d): len=%d cap=%d", sz, len(s), cap(s))
		}
		for j := range s {
			if s[j] != 0 {
				t.Fatalf("alloc(%d): cell %d not zeroed", sz, j)
			}
			s[j] = int32(i + 1) // brand the slice
		}
		slices[i] = s
	}
	for i, s := range slices {
		for j, v := range s {
			if v != int32(i+1) {
				t.Fatalf("slice %d cell %d clobbered: got %d", i, j, v)
			}
		}
	}
	var nilArena *rowArena
	if s := nilArena.alloc(4); len(s) != 4 {
		t.Fatalf("nil arena alloc failed")
	}
	var nilFloats *floatArena
	if s := nilFloats.alloc(4); len(s) != 4 {
		t.Fatalf("nil float arena alloc failed")
	}
}

// TestMaxWindowDefaultExact: a cap at least as wide as the widest exact
// window must reproduce the uncapped solution exactly — the
// exactness-preserving default, phrased as a property over random inputs.
func TestMaxWindowDefaultExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(4))
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 100)
		}
		exact := Params{Epsilon: 5 + rng.Float64()*20, Delta: 1}
		generous := exact
		// Widest possible window: the full ε-span plus slack.
		generous.MaxWindow = 2*int(exact.Epsilon/exact.Delta) + 3
		se, oke, err := MinHaarSpace(data, exact)
		if err != nil {
			return false
		}
		sg, okg, err := MinHaarSpace(data, generous)
		if err != nil {
			return false
		}
		if oke != okg {
			return false
		}
		if !oke {
			return true
		}
		if se.Size != sg.Size || len(se.Synopsis.Terms) != len(sg.Synopsis.Terms) {
			return false
		}
		for i, term := range se.Synopsis.Terms {
			if sg.Synopsis.Terms[i] != term {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxWindowCappedStaysSound: with a tight cap the DP may spend more
// coefficients or give up, but any solution it does return still meets
// the error bound — clipping windows removes candidates, never validity.
func TestMaxWindowCappedStaysSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(4))
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 100)
		}
		p := Params{Epsilon: 5 + rng.Float64()*20, Delta: 1, MaxWindow: 1 + rng.Intn(4)}
		sol, ok, err := MinHaarSpace(data, p)
		if err != nil {
			return false
		}
		if !ok {
			return true // infeasibility under a cap is allowed
		}
		return synopsis.MaxAbsError(sol.Synopsis, data) <= p.Epsilon+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveTreeArenaAllocBound: the arena keeps a solve's allocation count
// independent of the node count — a handful of chunks instead of two
// slices per node.
func TestSolveTreeArenaAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short race harnesses")
	}
	p := Params{Epsilon: 8, Delta: 1}
	rng := rand.New(rand.NewSource(7))
	const s = 256
	leaves := make([]Row, s)
	for i := range leaves {
		leaves[i] = LeafRow(math.Trunc(rng.Float64()*40), p)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolveTree(leaves, p); err != nil {
			t.Fatal(err)
		}
	})
	// s-1 = 255 combines would cost >= 510 allocations row-by-row; the
	// arena needs the rows slice, the arena header, and a few chunks.
	if allocs > 20 {
		t.Fatalf("SolveTree over %d leaves made %.0f allocations, want <= 20", s, allocs)
	}
}

// TestKthLargestAbsMatchesSort: quickselect agrees with the sorted
// definition for every k, including duplicates and zeros.
func TestKthLargestAbsMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		w := make([]float64, n)
		for i := range w {
			// Small integer magnitudes force duplicate values.
			w[i] = float64(rng.Intn(9)-4) / 2
		}
		mags := make([]float64, n)
		for i, c := range w {
			mags[i] = math.Abs(c)
		}
		for i := range mags {
			for j := i + 1; j < len(mags); j++ {
				if mags[j] > mags[i] {
					mags[i], mags[j] = mags[j], mags[i]
				}
			}
		}
		for k := 1; k <= n+1; k++ {
			want := 0.0
			if k <= n {
				want = mags[k-1]
			}
			if got := kthLargestAbs(w, k); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
