package dp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dwmaxerr/internal/synopsis"
)

// TestCombineRowsAssociativeStructure: solving a 4-leaf tree directly must
// equal combining two 2-leaf solutions — the decomposition property the
// Section 4 framework rests on.
func TestCombineRowsAssociativeStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{Epsilon: 5 + rng.Float64()*20, Delta: 1}
		leaves := make([]Row, 4)
		for i := range leaves {
			leaves[i] = LeafRow(math.Trunc(rng.Float64()*100), p)
		}
		rows, err := SolveTree(leaves, p)
		if err != nil {
			return false
		}
		left := CombineRows(leaves[0], leaves[1], p)
		right := CombineRows(leaves[2], leaves[3], p)
		root := CombineRows(left, right, p)
		if root.Lo != rows[1].Lo || len(root.Count) != len(rows[1].Count) {
			return false
		}
		for i := range root.Count {
			if root.Count[i] != rows[1].Count[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRowCountsMonotoneInEpsilon: relaxing ε can only shrink (or keep) the
// count at every shared incoming value.
func TestRowCountsMonotoneInEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		data := make([]float64, 8)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 100)
		}
		tight := Params{Epsilon: 5, Delta: 1}
		loose := Params{Epsilon: 15, Delta: 1}
		build := func(p Params) Row {
			leaves := make([]Row, len(data))
			for i, d := range data {
				leaves[i] = LeafRow(d, p)
			}
			rows, err := SolveTree(leaves, p)
			if err != nil {
				t.Fatal(err)
			}
			return rows[1]
		}
		rt, rl := build(tight), build(loose)
		for g := rt.Lo; g <= rt.Hi(); g++ {
			if rl.At(g) > rt.At(g) {
				t.Fatalf("trial %d: loose count %d > tight %d at v=%d", trial, rl.At(g), rt.At(g), g)
			}
		}
	}
}

// TestMinHaarSpaceOptimalOnGridExhaustive compares MinHaarSpace against an
// exhaustive search over unrestricted grid synopses on tiny inputs: which
// subsets of nodes get nonzero grid values such that the error bound holds
// with the fewest nonzeros.
func TestMinHaarSpaceOptimalOnGridExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := Params{Epsilon: 6, Delta: 2}
	for trial := 0; trial < 8; trial++ {
		data := make([]float64, 4)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 40)
		}
		sol, ok, err := MinHaarSpace(data, p)
		if err != nil {
			t.Fatal(err)
		}
		best := exhaustiveGridMin(data, p, t)
		if !ok {
			if best >= 0 {
				t.Fatalf("trial %d: DP infeasible but exhaustive found %d", trial, best)
			}
			continue
		}
		if best < 0 {
			t.Fatalf("trial %d: DP found %d but exhaustive infeasible", trial, sol.Size)
		}
		if sol.Size != best {
			t.Fatalf("trial %d (%v): DP size %d, exhaustive optimal %d", trial, data, sol.Size, best)
		}
	}
}

// exhaustiveGridMin brute-forces the minimum number of nonzero grid-valued
// coefficients achieving max_abs <= ε for a 4-value vector, or -1.
func exhaustiveGridMin(data []float64, p Params, t *testing.T) int {
	t.Helper()
	n := len(data)
	// Candidate grid values per coefficient: generous bounded range.
	var maxAbs float64
	for _, d := range data {
		maxAbs = math.Max(maxAbs, math.Abs(d))
	}
	gridMax := p.Grid(maxAbs + p.Epsilon)
	best := -1
	w := make([]float64, n)
	var rec func(i int, nonzero int)
	check := func(nonzero int) {
		// Inverse transform of the 4-value error tree.
		vals := []float64{
			w[0] + w[1] + w[2],
			w[0] + w[1] - w[2],
			w[0] - w[1] + w[3],
			w[0] - w[1] - w[3],
		}
		for i, v := range vals {
			if math.Abs(v-data[i]) > p.Epsilon+1e-9 {
				return
			}
		}
		if best < 0 || nonzero < best {
			best = nonzero
		}
	}
	rec = func(i, nonzero int) {
		if best >= 0 && nonzero >= best {
			return
		}
		if i == n {
			check(nonzero)
			return
		}
		w[i] = 0
		rec(i+1, nonzero)
		for g := -gridMax; g <= gridMax; g++ {
			if g == 0 {
				continue
			}
			w[i] = p.Value(g)
			rec(i+1, nonzero+1)
		}
		w[i] = 0
	}
	rec(0, 0)
	return best
}

// TestIndirectHaarNeverBeatsGridOptimum: the binary search returns a
// synopsis whose size respects the budget and whose error is achievable.
func TestIndirectHaarErrorIsAchievedByReportedSynopsis(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(3))
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 200)
		}
		b := 1 + rng.Intn(n/2)
		res, err := IndirectHaar(data, b, 2)
		if err != nil {
			return false
		}
		if res.Synopsis.Size() > b {
			return false
		}
		actual := synopsis.MaxAbsError(res.Synopsis, data)
		return math.Abs(actual-res.MaxAbs) < 1e-9*(1+actual)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
