// Package dp implements the dynamic-programming side of the paper: the
// MinHaarSpace algorithm of Karras, Sacharidis & Mamoulis for the dual
// Problem 2 (given an error bound ε, retain the fewest unrestricted Haar
// coefficients such that every value reconstructs within ε), and the
// IndirectHaar driver that answers Problem 1 by binary search over ε
// (Section 3, Algorithm 2). The row/combine decomposition below is exactly
// what the paper's Section 4 framework parallelizes: a DP row M[j] is
// computed per error-tree node from its children's rows, so sub-trees can
// be solved independently and only local-root rows cross layer boundaries.
//
// Incoming values are quantized to multiples of δ. The candidate window for
// node j is [μ_j − ε, μ_j + ε] where μ_j is the mean of the data under j:
// in any solution with error ≤ ε, the average reconstruction under j equals
// the incoming value (detail coefficients are zero-mean over their
// support), and it must be within ε of the data average. Row size is thus
// O(ε/δ), matching the communication bound of Equation 6.
package dp

import (
	"errors"
	"fmt"
	"math"
)

// Infeasible marks a (node, incoming value) combination that cannot meet
// the error bound. It is large enough that two infeasible children plus one
// retained coefficient never overflow int32.
const Infeasible int32 = math.MaxInt32 / 4

// Params configures a MinHaarSpace run.
type Params struct {
	// Epsilon is the maximum absolute error bound of Problem 2.
	Epsilon float64
	// Delta is the quantization step δ > 0 of the incoming-value and
	// coefficient-value grids. Coarser δ is faster but may miss solutions.
	Delta float64
	// MaxWindow caps the number of quantized incoming values a DP row may
	// hold. 0 (the default) is exact: every grid point of [mean-ε, mean+ε]
	// is considered, the full O(ε/δ) window of the paper. A positive cap
	// clips each window symmetrically around the quantized mean, bounding
	// per-row memory and combine time at (MaxWindow)² while remaining
	// sound: clipping only removes candidate incoming values, so any
	// solution the capped DP returns still meets the error bound — it may
	// just use more coefficients or report infeasible where the exact DP
	// would not.
	MaxWindow int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Delta <= 0 {
		return errors.New("dp: delta must be positive")
	}
	if p.Epsilon < 0 {
		return errors.New("dp: epsilon must be non-negative")
	}
	return nil
}

// Grid returns the grid index of value v.
func (p Params) Grid(v float64) int {
	return int(math.Round(v / p.Delta))
}

// Value returns the value of grid index g.
func (p Params) Value(g int) float64 {
	return float64(g) * p.Delta
}

// window returns the inclusive grid range covering [mean-ε, mean+ε].
// Empty windows (lo > hi) arise when δ > 2ε and signal infeasibility.
func (p Params) window(mean float64) (lo, hi int) {
	return p.rangeWindow(mean, mean)
}

// rangeWindow returns the inclusive grid range covering [minV-ε, maxV+ε],
// clipped to MaxWindow cells around the quantized midpoint when the cap is
// set. window is the minV == maxV case; Haar+ rows span the full leaf
// range.
func (p Params) rangeWindow(minV, maxV float64) (lo, hi int) {
	lo = int(math.Ceil((minV-p.Epsilon)/p.Delta - 1e-9))
	hi = int(math.Floor((maxV+p.Epsilon)/p.Delta + 1e-9))
	if p.MaxWindow > 0 && hi-lo+1 > p.MaxWindow {
		c := p.Grid((minV + maxV) / 2)
		nlo := c - (p.MaxWindow-1)/2
		nhi := nlo + p.MaxWindow - 1
		if nlo < lo {
			nlo, nhi = lo, lo+p.MaxWindow-1
		} else if nhi > hi {
			nlo, nhi = hi-p.MaxWindow+1, hi
		}
		lo, hi = nlo, nhi
	}
	return lo, hi
}

// Row is the DP row M[j] of one error-tree node: for every candidate
// incoming grid value v in [Lo, Lo+len(Count)), Count holds the minimum
// number of retained coefficients in the sub-tree below, and Choice the
// grid value of the coefficient assigned at the node (0 = not retained)
// achieving it. Mean is the data mean of the sub-tree, needed to place the
// parent's window. A Row with empty Count is wholly infeasible.
type Row struct {
	Mean   float64
	Lo     int
	Count  []int32
	Choice []int32
}

// Hi returns the highest grid index of the row (Lo-1 when empty).
func (r Row) Hi() int { return r.Lo + len(r.Count) - 1 }

// At returns the count at grid index g, or Infeasible outside the window.
func (r Row) At(g int) int32 {
	if g < r.Lo || g > r.Hi() {
		return Infeasible
	}
	return r.Count[g-r.Lo]
}

// ChoiceAt returns the coefficient grid value chosen at incoming value g.
func (r Row) ChoiceAt(g int) int32 {
	if g < r.Lo || g > r.Hi() {
		return 0
	}
	return r.Choice[g-r.Lo]
}

// Feasible reports whether any incoming value admits a solution.
func (r Row) Feasible() bool {
	for _, c := range r.Count {
		if c < Infeasible {
			return true
		}
	}
	return false
}

// LeafRow builds the row of a data leaf with value d: zero cost wherever
// the incoming value reconstructs d within ε.
func LeafRow(d float64, p Params) Row {
	return leafRowIn(nil, d, p)
}

// leafRowIn is LeafRow carving its cells from the arena (nil falls back
// to make).
func leafRowIn(a *rowArena, d float64, p Params) Row {
	lo, hi := p.window(d)
	if lo > hi {
		return Row{Mean: d, Lo: lo}
	}
	return Row{
		Mean:   d,
		Lo:     lo,
		Count:  a.alloc(hi - lo + 1),
		Choice: a.alloc(hi - lo + 1),
	}
}

// CombineRows computes the row of an internal node from its children's
// rows: M[j](v) = min over coefficient values z of cost(z) + M_L(v+z) +
// M_R(v-z), with cost(0)=0 and cost(z≠0)=1. z=0 is preferred on ties, then
// the smallest z in iteration order, making results deterministic.
func CombineRows(left, right Row, p Params) Row {
	return combineRowsIn(nil, left, right, p)
}

// combineRowsIn is CombineRows carving the output row from the arena.
func combineRowsIn(a *rowArena, left, right Row, p Params) Row {
	mean := (left.Mean + right.Mean) / 2
	lo, hi := p.window(mean)
	if lo > hi || len(left.Count) == 0 || len(right.Count) == 0 {
		return Row{Mean: mean, Lo: lo}
	}
	out := Row{
		Mean:   mean,
		Lo:     lo,
		Count:  a.alloc(hi - lo + 1),
		Choice: a.alloc(hi - lo + 1),
	}
	for g := lo; g <= hi; g++ {
		best, bestZ := Infeasible, int32(0)
		// v+z in [left.Lo, left.Hi] and v-z in [right.Lo, right.Hi].
		zlo := max(left.Lo-g, g-right.Hi())
		zhi := min(left.Hi()-g, g-right.Lo)
		if zlo <= 0 && 0 <= zhi {
			if c := left.At(g) + right.At(g); c < best {
				best, bestZ = c, 0
			}
		}
		for z := zlo; z <= zhi; z++ {
			if z == 0 {
				continue
			}
			if c := 1 + left.At(g+z) + right.At(g-z); c < best {
				best, bestZ = c, int32(z)
			}
		}
		out.Count[g-lo] = best
		out.Choice[g-lo] = bestZ
	}
	return out
}

// RootResult is the outcome of finishing the DP at the error-tree root:
// the choice of the overall-average coefficient c_0.
type RootResult struct {
	Count    int32 // total retained coefficients including c_0
	C0Grid   int   // grid value assigned to c_0 (0 = not retained)
	Feasible bool
}

// FinishRoot selects c_0 given the row of node 1 (whose incoming value is
// exactly the value of c_0, or 0 when c_0 is dropped).
func FinishRoot(row Row, p Params) RootResult {
	best, bestG := Infeasible, 0
	if c := row.At(0); c < best {
		best, bestG = c, 0
	}
	for g := row.Lo; g <= row.Hi(); g++ {
		if g == 0 {
			continue
		}
		if c := 1 + row.At(g); c < best {
			best, bestG = c, g
		}
	}
	if best >= Infeasible {
		return RootResult{Feasible: false}
	}
	return RootResult{Count: best, C0Grid: bestG, Feasible: true}
}

// SolveTree computes the rows of every internal node of a complete
// sub-tree, bottom-up, given the rows of its 2^h leaf positions. The
// result is in local heap layout: index 1 is the sub-tree root, node i has
// children 2i and 2i+1, and the children of the lowest internal level are
// the provided leaf rows. Index 0 is unused. len(leaves) must be a power
// of two >= 2.
func SolveTree(leaves []Row, p Params) ([]Row, error) {
	return solveTreeIn(&rowArena{}, leaves, p)
}

// solveTreeIn is SolveTree with all row cells carved from one arena — the
// flat (node, quantized incoming value) table backing a solve.
func solveTreeIn(a *rowArena, leaves []Row, p Params) ([]Row, error) {
	s := len(leaves)
	if s < 2 || s&(s-1) != 0 {
		return nil, fmt.Errorf("dp: SolveTree needs a power-of-two number of leaves >= 2, got %d", s)
	}
	rows := make([]Row, s)
	for i := s - 1; i >= s/2; i-- {
		rows[i] = combineRowsIn(a, leaves[2*i-s], leaves[2*i-s+1], p)
	}
	for i := s/2 - 1; i >= 1; i-- {
		rows[i] = combineRowsIn(a, rows[2*i], rows[2*i+1], p)
	}
	return rows, nil
}
