package dp

import (
	"math"
	"math/rand"
	"testing"

	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// exhaustiveRestrictedMin brute-forces the optimal restricted synopsis of
// at most b of the true Haar coefficients.
func exhaustiveRestrictedMin(data []float64, b int, t *testing.T) float64 {
	t.Helper()
	w, err := wavelet.Transform(data)
	if err != nil {
		t.Fatal(err)
	}
	n := len(w)
	best := math.Inf(1)
	var comb func(start int, chosen []int)
	comb = func(start int, chosen []int) {
		s := synopsis.FromIndices(w, chosen)
		if e := synopsis.MaxAbsError(s, data); e < best {
			best = e
		}
		if len(chosen) == b {
			return
		}
		for i := start; i < n; i++ {
			comb(i+1, append(chosen, i))
		}
	}
	comb(0, nil)
	return best
}

func TestGKOptimalMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 1 << (1 + rng.Intn(3)) // 2..8
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.NormFloat64() * 30)
		}
		b := rng.Intn(n + 1)
		syn, got, err := GKOptimal(data, b)
		if err != nil {
			t.Fatal(err)
		}
		want := exhaustiveRestrictedMin(data, b, t)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (n=%d b=%d data=%v): GK %g, exhaustive %g", trial, n, b, data, got, want)
		}
		if syn.Size() > b {
			t.Fatalf("trial %d: synopsis size %d > %d", trial, syn.Size(), b)
		}
		actual := synopsis.MaxAbsError(syn, data)
		if math.Abs(actual-got) > 1e-9*(1+got) {
			t.Fatalf("trial %d: reported %g but synopsis achieves %g", trial, got, actual)
		}
	}
}

func TestGKOptimalEdgeCases(t *testing.T) {
	syn, e, err := GKOptimal([]float64{7}, 1)
	if err != nil || e != 0 || syn.Size() != 1 {
		t.Fatalf("n=1 b=1: %v %g %d", err, e, syn.Size())
	}
	syn, e, err = GKOptimal([]float64{7}, 0)
	if err != nil || e != 7 || syn.Size() != 0 {
		t.Fatalf("n=1 b=0: %v %g %d", err, e, syn.Size())
	}
	if _, _, err := GKOptimal(make([]float64, 3), 1); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, _, err := GKOptimal(make([]float64, 4), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, _, err := GKOptimal(make([]float64, 1<<13), 4); err == nil {
		t.Fatal("oracle size guard missing")
	}
}

func TestGreedyAbsQualityVsGKOptimal(t *testing.T) {
	// The paper accepts GreedyAbs's "loosened quality guarantees" because
	// it stays close to optimal in practice (Section 3); quantify that
	// against the exact restricted optimum.
	rng := rand.New(rand.NewSource(29))
	var worst float64
	for trial := 0; trial < 20; trial++ {
		n := 16
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 200)
		}
		b := 2 + rng.Intn(6)
		_, gkErr, err := GKOptimal(data, b)
		if err != nil {
			t.Fatal(err)
		}
		_, grErr, err := greedy.SynopsisAbs(data, b)
		if err != nil {
			t.Fatal(err)
		}
		if grErr < gkErr-1e-9 {
			t.Fatalf("trial %d: greedy %g beat the optimal %g", trial, grErr, gkErr)
		}
		if gkErr > 0 {
			if r := grErr / gkErr; r > worst {
				worst = r
			}
		}
	}
	if worst > 2.5 {
		t.Fatalf("greedy/optimal ratio reached %g", worst)
	}
}

func TestIndirectHaarUnrestrictedBeatsRestrictedOptimum(t *testing.T) {
	// Unrestricted coefficients can only improve on the restricted optimum
	// (up to grid slack).
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 16
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.Float64() * 100)
		}
		b := 2 + rng.Intn(4)
		_, gkErr, err := GKOptimal(data, b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := IndirectHaar(data, b, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		slack := 0.25 * float64(wavelet.Log2(n)+2)
		if res.MaxAbs > gkErr+slack {
			t.Fatalf("trial %d: unrestricted %g worse than restricted optimum %g (+grid slack %g)",
				trial, res.MaxAbs, gkErr, slack)
		}
	}
}

func TestGKRowCombineMatchesDirectSolve(t *testing.T) {
	// The framework's decomposition property for the GK DP: combining the
	// children's rows must reproduce the parent's row (Figure 2).
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 15; trial++ {
		n := 8
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.NormFloat64() * 20)
		}
		w, _ := wavelet.Transform(data)
		maxB := 4
		// Incoming values reachable at node 2 and node 3 given parent
		// incoming values es at node 1.
		es := []float64{0, -w[0], 3.5}
		childEs := map[float64]bool{}
		for _, e := range es {
			childEs[e] = true
			childEs[e-w[1]] = true
			childEs[e+w[1]] = true
		}
		var childList []float64
		for e := range childEs {
			childList = append(childList, e)
		}
		left := GKSubtreeRow(w, 2, childList, maxB)
		right := GKSubtreeRow(w, 3, childList, maxB)
		combined := CombineGKRows(left, right, w[1], es, maxB)
		direct := GKSubtreeRow(w, 1, es, maxB)
		for _, e := range es {
			for b := 0; b <= maxB; b++ {
				got, want := combined.Err[e][b], direct.Err[e][b]
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
					t.Fatalf("trial %d e=%g b=%d: combined %g != direct %g", trial, e, b, got, want)
				}
			}
		}
	}
}

func TestGKRowBytesGrowWithBudget(t *testing.T) {
	// The budget index inflates GK rows — the paper's motivation for
	// MinHaarSpace (Sections 3-4).
	data := []float64{4, 8, 15, 16, 23, 42, 8, 4}
	w, _ := wavelet.Transform(data)
	small := GKSubtreeRow(w, 1, []float64{0}, 2)
	large := GKSubtreeRow(w, 1, []float64{0}, 64)
	if large.RowBytes() <= small.RowBytes() {
		t.Fatalf("row bytes: B=64 %d <= B=2 %d", large.RowBytes(), small.RowBytes())
	}
}
