package dp

import (
	"fmt"
	"math"

	"dwmaxerr/internal/wavelet"
)

// The Haar+ tree of Karras & Mamoulis (ICDE 2007) — reference [23] of the
// paper. Each internal error-tree node is replaced by a triad: the classic
// head coefficient (adds +z to the left sub-tree and -z to the right) plus
// two supplementary coefficients that each add their value to one sub-tree
// only. A synopsis in this dictionary can place corrections exactly where
// needed, so at equal budget it is at least as accurate as any
// (unrestricted) plain-Haar synopsis.
//
// For the dual Problem 2 the DP per node chooses the offset pair (a, b)
// handed to the left and right children. Realizing (a, b) costs
//
//	0 terms  if a = b = 0
//	1 term   if b = -a (head), b = 0 (left supplementary) or a = 0 (right)
//	2 terms  otherwise (head/supplementary combination)
//
// so the combine step scans cost classes instead of triples, keeping the
// per-node work at O((ε/δ)²) like MinHaarSpace.

// HPRow is the Haar+ DP row: minimal term count per incoming grid value,
// with the chosen child offsets for reconstruction. Unlike MinHaarSpace's
// mean±ε window, the Haar+ incoming value can sit anywhere in
// [min leaf - ε, max leaf + ε]: supplementary coefficients are not
// zero-mean over their support, so the subtree average does not pin the
// incoming value. This is why the Haar+ complexity carries the full value
// range Δ (Section 3 of the paper: O((Δ/δ)² N B)).
type HPRow struct {
	MinLeaf, MaxLeaf float64
	Lo               int
	Count            []int32
	ChoiceA, ChoiceB []int32 // offsets (grid steps) handed to left/right
}

// Hi returns the highest grid index of the row.
func (r HPRow) Hi() int { return r.Lo + len(r.Count) - 1 }

// At returns the count at grid value g.
func (r HPRow) At(g int) int32 {
	if g < r.Lo || g > r.Hi() {
		return Infeasible
	}
	return r.Count[g-r.Lo]
}

// hpLeaf builds a data leaf's row, carving its cells from the arena.
func hpLeaf(a *rowArena, d float64, p Params) HPRow {
	lo, hi := p.window(d)
	if lo > hi {
		return HPRow{MinLeaf: d, MaxLeaf: d, Lo: lo}
	}
	size := hi - lo + 1
	return HPRow{MinLeaf: d, MaxLeaf: d, Lo: lo, Count: a.alloc(size), ChoiceA: a.alloc(size), ChoiceB: a.alloc(size)}
}

// hpCost returns the number of Haar+ terms needed for offset pair (a, b).
func hpCost(a, b int) int32 {
	switch {
	case a == 0 && b == 0:
		return 0
	case b == -a || b == 0 || a == 0:
		return 1
	default:
		return 2
	}
}

// hpCombine computes the parent row from children rows, carving the
// output cells from the arena.
func hpCombine(a *rowArena, left, right HPRow, p Params) HPRow {
	minLeaf := math.Min(left.MinLeaf, right.MinLeaf)
	maxLeaf := math.Max(left.MaxLeaf, right.MaxLeaf)
	lo, hi := p.rangeWindow(minLeaf, maxLeaf)
	if lo > hi || len(left.Count) == 0 || len(right.Count) == 0 {
		return HPRow{MinLeaf: minLeaf, MaxLeaf: maxLeaf, Lo: lo}
	}
	size := hi - lo + 1
	out := HPRow{MinLeaf: minLeaf, MaxLeaf: maxLeaf, Lo: lo, Count: a.alloc(size), ChoiceA: a.alloc(size), ChoiceB: a.alloc(size)}

	// Global minima of each child row (value and grid index), with the
	// runner-up to answer "minimum excluding one index" queries.
	minL1, argL1, minL2, argL2 := rowMins(left.Count, left.Lo)
	minR1, argR1, minR2, argR2 := rowMins(right.Count, right.Lo)
	minExcluding := func(m1 int32, a1 int, m2 int32, a2, excluded int) (int32, int) {
		if a1 != excluded {
			return m1, a1
		}
		return m2, a2
	}

	for g := lo; g <= hi; g++ {
		best, bestA, bestB := Infeasible, int32(0), int32(0)
		consider := func(c int32, a, b int) {
			if c < best {
				best, bestA, bestB = c, int32(a), int32(b)
			}
		}
		// Cost 0.
		consider(left.At(g)+right.At(g), 0, 0)
		// Cost 1, head: b = -a, scan a (over the left window).
		for ga := left.Lo; ga <= left.Hi(); ga++ {
			a := ga - g
			if a == 0 {
				continue
			}
			consider(1+left.At(ga)+right.At(g-a), a, -a)
		}
		// Cost 1, left supplementary: b = 0, take the best left cell != g.
		if lv, la := minExcluding(minL1, argL1, minL2, argL2, g); lv < Infeasible && la >= left.Lo {
			consider(1+lv+right.At(g), la-g, 0)
		}
		// Cost 1, right supplementary: a = 0.
		if rv, ra := minExcluding(minR1, argR1, minR2, argR2, g); rv < Infeasible && ra >= right.Lo {
			consider(1+rv+left.At(g), 0, ra-g)
		}
		// Cost 2: independent best cells.
		if minL1 < Infeasible && minR1 < Infeasible {
			consider(2+minL1+minR1, argL1-g, argR1-g)
		}
		out.Count[g-lo] = best
		out.ChoiceA[g-lo] = bestA
		out.ChoiceB[g-lo] = bestB
	}
	return out
}

// rowMins returns the smallest and second-smallest counts of a row with
// their grid indices (Infeasible when absent).
func rowMins(counts []int32, lo int) (m1 int32, a1 int, m2 int32, a2 int) {
	m1, m2 = Infeasible, Infeasible
	a1, a2 = lo-1, lo-1
	for i, c := range counts {
		switch {
		case c < m1:
			m2, a2 = m1, a1
			m1, a1 = c, lo+i
		case c < m2:
			m2, a2 = c, lo+i
		}
	}
	return m1, a1, m2, a2
}

// HPSolution is a Haar+ synopsis: the selected per-node offset pairs. It
// lives in the Haar+ dictionary, so it reconstructs data directly rather
// than through plain wavelet coefficients.
type HPSolution struct {
	N     int
	Size  int     // number of retained Haar+ terms
	C0    float64 // root coefficient value (0 if dropped)
	nodes map[int][2]float64
}

// Reconstruct materializes the approximate data vector.
func (h *HPSolution) Reconstruct() []float64 {
	out := make([]float64, h.N)
	var walk func(node int, incoming float64)
	walk = func(node int, incoming float64) {
		if node >= h.N {
			out[node-h.N] = incoming
			return
		}
		ab := h.nodes[node]
		walk(2*node, incoming+ab[0])
		walk(2*node+1, incoming+ab[1])
	}
	if h.N == 1 {
		out[0] = h.C0
		return out
	}
	walk(1, h.C0)
	return out
}

// HaarPlus solves Problem 2 over the Haar+ dictionary: the smallest number
// of Haar+ terms keeping every value within p.Epsilon, on the δ grid.
func HaarPlus(data []float64, p Params) (sol *HPSolution, feasible bool, err error) {
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	n := len(data)
	if !wavelet.IsPowerOfTwo(n) {
		return nil, false, wavelet.ErrNotPowerOfTwo
	}
	if n == 1 {
		s, ok, err := solveSingle(data[0], p)
		if err != nil || !ok {
			return nil, ok, err
		}
		h := &HPSolution{N: 1, Size: s.Size, nodes: map[int][2]float64{}}
		if s.Size > 0 {
			h.C0 = s.Synopsis.Terms[0].Value
		}
		return h, true, nil
	}
	arena := &rowArena{}
	rows := make([]HPRow, n)
	for i := n - 1; i >= n/2; i-- {
		rows[i] = hpCombine(arena, hpLeaf(arena, data[2*i-n], p), hpLeaf(arena, data[2*i-n+1], p), p)
	}
	for i := n/2 - 1; i >= 1; i-- {
		rows[i] = hpCombine(arena, rows[2*i], rows[2*i+1], p)
	}
	// Root: choose c0 (incoming value of node 1).
	best, bestG := Infeasible, 0
	if c := rows[1].At(0); c < best {
		best, bestG = c, 0
	}
	for g := rows[1].Lo; g <= rows[1].Hi(); g++ {
		if g == 0 {
			continue
		}
		if c := 1 + rows[1].At(g); c < best {
			best, bestG = c, g
		}
	}
	if best >= Infeasible {
		return nil, false, nil
	}
	h := &HPSolution{N: n, Size: int(best), C0: p.Value(bestG), nodes: map[int][2]float64{}}
	var walk func(node, g int)
	walk = func(node, g int) {
		if node >= n {
			return
		}
		r := rows[node]
		a := int(r.ChoiceA[g-r.Lo])
		b := int(r.ChoiceB[g-r.Lo])
		if a != 0 || b != 0 {
			h.nodes[node] = [2]float64{p.Value(a), p.Value(b)}
		}
		walk(2*node, g+a)
		walk(2*node+1, g+b)
	}
	walk(1, bestG)
	return h, true, nil
}

// HaarPlusBudget answers Problem 1 over the Haar+ dictionary by binary
// search (the IndirectHaar pattern): the best achievable maximum absolute
// error with at most budget Haar+ terms, on the δ grid.
func HaarPlusBudget(data []float64, budget int, delta float64) (*HPSolution, float64, error) {
	if budget < 1 {
		return nil, 0, fmt.Errorf("dp: budget %d < 1", budget)
	}
	if !wavelet.IsPowerOfTwo(len(data)) {
		return nil, 0, wavelet.ErrNotPowerOfTwo
	}
	var maxAbs float64
	for _, d := range data {
		maxAbs = math.Max(maxAbs, math.Abs(d))
	}
	lo, hi := 0.0, maxAbs // ε = max|d| is always feasible with 0 terms
	var best *HPSolution
	bestErr := math.Inf(1)
	measure := func(h *HPSolution) float64 {
		rec := h.Reconstruct()
		var m float64
		for i, d := range data {
			m = math.Max(m, math.Abs(rec[i]-d))
		}
		return m
	}
	for iter := 0; iter < 48 && hi-lo > delta/4; iter++ {
		mid := (lo + hi) / 2
		h, ok, err := HaarPlus(data, Params{Epsilon: mid, Delta: delta})
		if err != nil {
			return nil, 0, err
		}
		if !ok || h.Size > budget {
			lo = mid
			continue
		}
		if e := measure(h); e < bestErr {
			best, bestErr = h, e
		}
		hi = mid
	}
	if best == nil {
		// Fall back to the everything-zero solution.
		h, ok, err := HaarPlus(data, Params{Epsilon: maxAbs + delta, Delta: delta})
		if err != nil || !ok {
			return nil, 0, fmt.Errorf("dp: HaarPlusBudget found no solution: %v", err)
		}
		best, bestErr = h, measure(h)
	}
	return best, bestErr, nil
}
