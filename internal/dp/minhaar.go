package dp

import (
	"fmt"

	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// Solution is the output of a MinHaarSpace run: an unrestricted wavelet
// synopsis meeting the error bound with the fewest retained coefficients
// found on the quantization grid.
type Solution struct {
	Synopsis *synopsis.Synopsis
	Size     int
}

// MinHaarSpace solves Problem 2 centrally over the full data vector: it
// returns the smallest grid-quantized synopsis whose maximum absolute
// error is at most p.Epsilon, or feasible=false when the quantization
// grid admits no solution (e.g. δ > 2ε).
func MinHaarSpace(data []float64, p Params) (sol Solution, feasible bool, err error) {
	if err := p.Validate(); err != nil {
		return Solution{}, false, err
	}
	n := len(data)
	if !wavelet.IsPowerOfTwo(n) {
		return Solution{}, false, wavelet.ErrNotPowerOfTwo
	}
	if n == 1 {
		return solveSingle(data[0], p)
	}
	arena := &rowArena{}
	leaves := make([]Row, n)
	for i, d := range data {
		leaves[i] = leafRowIn(arena, d, p)
	}
	rows, err := solveTreeIn(arena, leaves, p)
	if err != nil {
		return Solution{}, false, err
	}
	root := FinishRoot(rows[1], p)
	if !root.Feasible {
		return Solution{}, false, nil
	}
	s := synopsis.New(n)
	if root.C0Grid != 0 {
		s.Terms = append(s.Terms, synopsis.Coefficient{Index: 0, Value: p.Value(root.C0Grid)})
	}
	reconstructInto(s, rows, 1, root.C0Grid, p)
	s.Normalize()
	return Solution{Synopsis: s, Size: s.Size()}, true, nil
}

func solveSingle(d float64, p Params) (Solution, bool, error) {
	s := synopsis.New(1)
	g := p.Grid(d)
	if abs(d) <= p.Epsilon {
		return Solution{Synopsis: s, Size: 0}, true, nil
	}
	if abs(p.Value(g)-d) > p.Epsilon {
		return Solution{}, false, nil
	}
	s.Terms = append(s.Terms, synopsis.Coefficient{Index: 0, Value: p.Value(g)})
	return Solution{Synopsis: s, Size: 1}, true, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// reconstructInto descends the rows of a solved tree from local node i with
// incoming grid value g, appending retained coefficients to s. rows is in
// local heap layout over 2^h leaves; node indices in s are the same local
// indices (callers remap for sub-trees).
func reconstructInto(s *synopsis.Synopsis, rows []Row, i, g int, p Params) {
	z := int(rows[i].ChoiceAt(g))
	if z != 0 {
		s.Terms = append(s.Terms, synopsis.Coefficient{Index: i, Value: p.Value(z)})
	}
	if 2*i < len(rows) {
		reconstructInto(s, rows, 2*i, g+z, p)
		reconstructInto(s, rows, 2*i+1, g-z, p)
	}
}

// CollectChoices walks a solved sub-tree exactly like reconstructInto but
// reports, for each leaf position of the sub-tree, the incoming grid value
// handed down to it — the interface between layers in the distributed
// top-down pass (Section 4). retained receives (local node, grid value)
// pairs for the coefficients kept inside this sub-tree.
func CollectChoices(rows []Row, rootIncoming int, retained func(local int, z int32), leafIncoming func(leafPos int, g int)) {
	var walk func(i, g int)
	size := len(rows)
	walk = func(i, g int) {
		z := int(rows[i].ChoiceAt(g))
		if z != 0 && retained != nil {
			retained(i, int32(z))
		}
		if 2*i < size {
			walk(2*i, g+z)
			walk(2*i+1, g-z)
		} else {
			if leafIncoming != nil {
				leafIncoming(2*i-size, g+z)
				leafIncoming(2*i-size+1, g-z)
			}
		}
	}
	walk(1, rootIncoming)
}

// Describe returns a short human-readable summary of the parameters.
func (p Params) Describe() string {
	return fmt.Sprintf("ε=%g δ=%g (ε/δ=%.1f)", p.Epsilon, p.Delta, p.Epsilon/p.Delta)
}
