package dp

import (
	"fmt"
	"math"

	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// The deterministic dynamic program of Garofalakis & Kumar ("Deterministic
// wavelet thresholding for maximum-error metrics", PODS 2004) — reference
// [13] of the paper. It solves Problem 1 exactly for *restricted* synopses
// (retained coefficients keep their Haar values): for every error-tree
// node j, incoming signed error e (the accumulated effect of the dropped
// ancestors) and budget b, it computes the minimum achievable maximum
// absolute error in the sub-tree.
//
// Its complexity — O(N² B log B) time and rows indexed by both incoming
// value and budget — is exactly why the paper turns to the dual-problem
// MinHaarSpace instead (Section 3): the budget index makes the DP rows
// huge, and Section 4 shows the communication of a parallelized version
// inherits that factor. The implementation here serves two purposes: it is
// the exact-optimum oracle used by the test suite to measure the greedy
// algorithms' quality, and GKRow/CombineGKRows expose the row/combine
// decomposition so the Section 4 framework demonstrably applies to it too
// (see dist.DGK).
//
// Transition (drop shifts the children's incoming error by ∓c_j, keep
// spends one coefficient):
//
//	M[j](e, b) = min(
//	    min_{bl+br=b-1} max(M[2j](e, bl),     M[2j+1](e, br)),      // keep c_j
//	    min_{bl+br=b}   max(M[2j](e-c_j, bl), M[2j+1](e+c_j, br)),  // drop c_j
//	)
//
// with M at a data leaf = |e|.

// gkSolver memoizes the recursion over the error tree.
type gkSolver struct {
	w    []float64
	n    int
	memo map[gkKey]gkVal
}

type gkKey struct {
	node int
	e    float64
	b    int
}

type gkVal struct {
	err  float64
	keep bool
	bl   int // budget given to the left child under the chosen action
}

// GKOptimal solves Problem 1 exactly for restricted synopses. It is
// exponential in the tree depth through the number of reachable incoming
// values (O(2^depth) per node), so it is intended for small N — the test
// oracle regime. Returns the optimal synopsis and its maximum absolute
// error.
func GKOptimal(data []float64, budget int) (*synopsis.Synopsis, float64, error) {
	n := len(data)
	if !wavelet.IsPowerOfTwo(n) {
		return nil, 0, wavelet.ErrNotPowerOfTwo
	}
	if budget < 0 {
		return nil, 0, fmt.Errorf("dp: negative budget %d", budget)
	}
	if n > 1<<12 {
		return nil, 0, fmt.Errorf("dp: GKOptimal is an oracle for small inputs (n=%d too large)", n)
	}
	w, err := wavelet.Transform(data)
	if err != nil {
		return nil, 0, err
	}
	s := &gkSolver{w: w, n: n, memo: map[gkKey]gkVal{}}

	// Root: keep or drop c_0.
	syn := synopsis.New(n)
	if n == 1 {
		if budget >= 1 && w[0] != 0 {
			syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: 0, Value: w[0]})
			return syn, 0, nil
		}
		return syn, math.Abs(data[0]), nil
	}
	dropErr := s.solve(1, -w[0], budget)
	keepErr := math.Inf(1)
	if budget >= 1 {
		keepErr = s.solve(1, 0, budget-1)
	}
	var best float64
	if keepErr <= dropErr {
		best = keepErr
		syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: 0, Value: w[0]})
		s.reconstruct(1, 0, budget-1, syn)
	} else {
		best = dropErr
		s.reconstruct(1, -w[0], budget, syn)
	}
	syn.Normalize()
	return syn, best, nil
}

// solve returns the minimal max-abs error in the sub-tree rooted at node
// with incoming signed error e and budget b.
func (s *gkSolver) solve(node int, e float64, b int) float64 {
	if node >= s.n {
		return math.Abs(e) // data leaf
	}
	if b < 0 {
		return math.Inf(1)
	}
	// Cap the budget at the sub-tree size: extra budget can't help.
	if size := subtreeNodes(s.n, node); b > size {
		b = size
	}
	key := gkKey{node, e, b}
	if v, ok := s.memo[key]; ok {
		return v.err
	}
	v := gkVal{err: math.Inf(1)}
	c := s.w[node]
	l, r := 2*node, 2*node+1
	// Keep c_j: one coefficient spent, children inherit e unchanged.
	if b >= 1 {
		for bl := 0; bl <= b-1; bl++ {
			errK := math.Max(s.solve(l, e, bl), s.solve(r, e, b-1-bl))
			if errK < v.err {
				v = gkVal{err: errK, keep: true, bl: bl}
			}
		}
	}
	// Drop c_j: left leaves shift by -c, right by +c.
	for bl := 0; bl <= b; bl++ {
		errD := math.Max(s.solve(l, e-c, bl), s.solve(r, e+c, b-bl))
		if errD < v.err {
			v = gkVal{err: errD, keep: false, bl: bl}
		}
	}
	s.memo[key] = v
	return v.err
}

// reconstruct re-walks the memoized choices, appending kept coefficients.
func (s *gkSolver) reconstruct(node int, e float64, b int, syn *synopsis.Synopsis) {
	if node >= s.n || b < 0 {
		return
	}
	if size := subtreeNodes(s.n, node); b > size {
		b = size
	}
	v, ok := s.memo[gkKey{node, e, b}]
	if !ok {
		return
	}
	c := s.w[node]
	if v.keep {
		if c != 0 {
			syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: node, Value: c})
		}
		s.reconstruct(2*node, e, v.bl, syn)
		s.reconstruct(2*node+1, e, b-1-v.bl, syn)
		return
	}
	s.reconstruct(2*node, e-c, v.bl, syn)
	s.reconstruct(2*node+1, e+c, b-v.bl, syn)
}

// subtreeNodes returns the number of internal (coefficient) nodes in the
// sub-tree rooted at node.
func subtreeNodes(n, node int) int {
	if node >= n {
		return 0
	}
	// A complete sub-tree over L data leaves contains L-1 coefficient
	// nodes (the node itself plus its internal descendants).
	first, last := wavelet.CoefficientSupport(n, node)
	return last - first - 1
}

// GKRow is the DP row of the Garofalakis-Kumar algorithm for one sub-tree
// root: for each reachable incoming error and each budget 0..B, the
// minimal max-abs error below. It is the M-row Section 4's framework would
// ship between layers — note it is indexed by *budget as well as incoming
// value*, which is precisely the |M[j]| = O(B·#values) blow-up the paper
// cites as motivation for switching to the dual problem.
type GKRow struct {
	// Err[e][b] = minimal error with incoming error e and budget b.
	Err map[float64][]float64
}

// GKSubtreeRow computes the row of the sub-tree rooted at the given node
// of a full tree over data, for the incoming-error values in es and
// budgets 0..maxB.
func GKSubtreeRow(w []float64, node int, es []float64, maxB int) GKRow {
	s := &gkSolver{w: w, n: len(w), memo: map[gkKey]gkVal{}}
	row := GKRow{Err: make(map[float64][]float64, len(es))}
	// One flat (incoming value, budget) table backs every vector: the GK
	// row is the budget-indexed M-row the paper contrasts with
	// MinHaarSpace's, and the arena keeps it one allocation.
	arena := &floatArena{}
	for _, e := range es {
		vals := arena.alloc(maxB + 1)
		for b := 0; b <= maxB; b++ {
			vals[b] = s.solve(node, e, b)
		}
		row.Err[e] = vals
	}
	return row
}

// CombineGKRows combines children rows into the parent's row for the given
// parent coefficient value — the framework's combine step (Figure 2: the
// paper draws exactly this budget-split scan). The children rows must
// cover the incoming values e±c for every parent incoming value e.
func CombineGKRows(left, right GKRow, c float64, es []float64, maxB int) GKRow {
	out := GKRow{Err: make(map[float64][]float64, len(es))}
	arena := &floatArena{}
	lookup := func(r GKRow, e float64, b int) float64 {
		vals, ok := r.Err[e]
		if !ok || b < 0 {
			return math.Inf(1)
		}
		if b >= len(vals) {
			b = len(vals) - 1
		}
		return vals[b]
	}
	for _, e := range es {
		vals := arena.alloc(maxB + 1)
		for b := 0; b <= maxB; b++ {
			best := math.Inf(1)
			for bl := 0; bl <= b-1; bl++ {
				if v := math.Max(lookup(left, e, bl), lookup(right, e, b-1-bl)); v < best {
					best = v
				}
			}
			for bl := 0; bl <= b; bl++ {
				if v := math.Max(lookup(left, e-c, bl), lookup(right, e+c, b-bl)); v < best {
					best = v
				}
			}
			vals[b] = best
		}
		out.Err[e] = vals
	}
	return out
}

// RowBytes estimates the in-memory/shipped size of a GK row — used by the
// communication experiment contrasting Equation 6's |M[j]| term across DP
// algorithms.
func (r GKRow) RowBytes() int {
	total := 0
	for _, vals := range r.Err {
		total += 8 + 8*len(vals)
	}
	return total
}

// GKReconstruct solves the sub-tree rooted at local heap index node of the
// coefficient slice w, with incoming error e and budget b, and returns the
// retained local coefficients — the re-entry step of the distributed GK's
// top-down pass.
func GKReconstruct(w []float64, node int, e float64, b int) ([]synopsis.Coefficient, error) {
	n := len(w)
	if !wavelet.IsPowerOfTwo(n) {
		return nil, wavelet.ErrNotPowerOfTwo
	}
	s := &gkSolver{w: w, n: n, memo: map[gkKey]gkVal{}}
	s.solve(node, e, b)
	syn := synopsis.New(n)
	s.reconstruct(node, e, b, syn)
	return syn.Terms, nil
}
