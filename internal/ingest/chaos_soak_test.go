package ingest

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/synopsis"
)

func synopsisBytes(t *testing.T, s *synopsis.Synopsis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestChaosKillResumeByteIdentical is the end-to-end crash drill
// the subsystem exists for: an ingest node with a file-backed checkpoint
// is killed mid-window by an injected fault, a fresh incarnation resumes
// over the same directory, the source replays from the durable frontier,
// and the final synopsis is BYTE-identical (serialized form) to a run
// that never died. Chaos stays enabled through the replay to prove the
// absolute-hit-indexed rule does not re-fire across the resume.
func TestIngestChaosKillResumeByteIdentical(t *testing.T) {
	const window, block, budget = 256, 32, 24
	data := truncData(53, 5*window)

	// Fault-free reference run over its own directory.
	refStore, err := dist.NewFileCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(Config{Window: window, Block: block, Budget: budget, Store: refStore})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, ref, data)
	ref.Sync()
	wantSnap := ref.Snapshot()
	want := synopsisBytes(t, wantSnap.Syn)
	ref.Close()

	// Faulty run: the 600th push is killed — mid-window (block 18 of 40)
	// and mid-block (value 24 of 32), the worst-case crash point.
	if err := chaos.EnableSpec("7,ingest.push:error#600"); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()

	dir := t.TempDir()
	store, err := dist.NewFileCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: window, Block: block, Budget: budget, Store: store}
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var killed int = -1
	for i, v := range data {
		if err := g1.Push(v); err != nil {
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("push %d: %v, want injected fault", i, err)
			}
			killed = i
			break
		}
	}
	if killed != 599 {
		t.Fatalf("fault fired at push %d, want 599", killed)
	}
	g1.Close() // the process dies; Close only reaps the goroutine

	// A fresh incarnation over the same directory resumes from the last
	// durable block boundary.
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	durable := g2.Durable()
	if durable%block != 0 {
		t.Fatalf("Durable = %d not block-aligned", durable)
	}
	if want := int64(killed / block * block); durable != want {
		t.Fatalf("Durable = %d, want %d (last boundary below kill at %d)", durable, want, killed)
	}
	// The recovered node answers queries before any replayed value.
	pre := g2.Snapshot()
	if pre == nil {
		t.Fatal("no snapshot after resume")
	}
	if v := pre.Ev.Point(0); math.IsNaN(v) {
		t.Fatal("recovered snapshot answers NaN")
	}

	// Replay from the durable frontier — chaos still enabled; the rule's
	// absolute hit index was consumed before the kill, so it cannot
	// re-fire and double-kill the replacement.
	pushAll(t, g2, data[durable:])
	g2.Sync()
	gotSnap := g2.Snapshot()
	if g2.Seen() != int64(len(data)) {
		t.Fatalf("Seen = %d after replay, want %d", g2.Seen(), len(data))
	}
	if gotSnap.Start != wantSnap.Start || gotSnap.N != wantSnap.N {
		t.Fatalf("window mismatch: got [%d,+%d), want [%d,+%d)",
			gotSnap.Start, gotSnap.N, wantSnap.Start, wantSnap.N)
	}
	got := synopsisBytes(t, gotSnap.Syn)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed synopsis differs from fault-free run:\n got %d bytes %x\nwant %d bytes %x",
			len(got), got[:min(32, len(got))], len(want), want[:min(32, len(want))])
	}
	// Guard against the vacuous pass: the synopsis actually holds terms.
	if len(gotSnap.Syn.Terms) != budget {
		t.Fatalf("synopsis holds %d terms, want %d", len(gotSnap.Syn.Terms), budget)
	}
	for _, term := range gotSnap.Syn.Terms {
		if math.IsNaN(term.Value) {
			t.Fatalf("NaN coefficient at %d", term.Index)
		}
	}
}
