package ingest

import (
	"testing"
	"time"
)

// TestEstimateWarmup pins the warm-up ETA contract: zero before any
// data (nothing to extrapolate) and after the first publish (not
// warming up); in between, at least remaining×observed-interarrival.
func TestEstimateWarmup(t *testing.T) {
	g, err := New(Config{Window: 8, Block: 4, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if est := g.EstimateWarmup(); est != 0 {
		t.Fatalf("estimate before any data = %v, want 0", est)
	}
	if err := g.Push(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	est := g.EstimateWarmup()
	// 3 values remain at an observed rate of >= 10ms per value.
	if est < 30*time.Millisecond {
		t.Fatalf("estimate after 1/4 values = %v, want >= 30ms", est)
	}
	for _, v := range []float64{2, 3, 4} {
		if err := g.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	g.Sync()
	if est := g.EstimateWarmup(); est != 0 {
		t.Fatalf("estimate after first publish = %v, want 0", est)
	}
}
