// Package ingest maintains a queryable wavelet synopsis while values
// arrive — the streaming counterpart of the batch builders, in the style
// of Guha & Harb's one-pass wavelet maintenance adapted to the serving
// tier's needs.
//
// The stream is cut into fixed-size blocks (power-of-two values each).
// Each block is transformed one value at a time by a wavelet.Streamer in
// O(log block) memory; its detail coefficients are retained (all of them,
// or the top-k by significance — per-block retention by local
// significance equals retention by global significance, because every
// detail of a block sits the same number of levels below the window root)
// together with the block average. The last window/block completed blocks
// form a ring; on every completed block an epoch rebuild re-thresholds
// the window in the background: the upper tree is recomputed from the
// block averages (a transform over window/block values), block details
// are mapped to global error-tree indices, and the top-budget candidates
// become the published synopsis. The publish is an atomic pointer swap —
// readers never block on writers, and a reader always sees a complete,
// immutable snapshot that is at most a few blocks stale (exactly one
// block when rebuilds keep up; the background goroutine coalesces
// rebuild requests, so staleness under a push burst is bounded by the
// blocks completed during one rebuild).
//
// With Config.Store set, every completed block is persisted through a
// dist.CheckpointStore before it becomes part of the window, so an ingest
// node killed mid-window resumes from the last durable block boundary:
// New reloads the ring, republishes, and Durable tells the upstream
// source where to restart the stream. A resumed node's synopsis is
// byte-identical to a never-killed one fed the same values.
package ingest

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("ingest: ingestor is closed")

// Config parameterizes an Ingestor.
type Config struct {
	// Window is the number of values the published synopsis covers (a
	// power of two). Queries answer over the most recent complete window.
	Window int
	// Block is the number of values per ingest block (a power of two
	// dividing Window; 0 picks Window/8, floored at 1). Smaller blocks
	// mean fresher synopses and finer-grained durability, at more rebuild
	// and checkpoint work.
	Block int
	// Budget is the number of coefficients retained in the published
	// synopsis (>= 1).
	Budget int
	// BlockBudget caps the candidate detail coefficients retained per
	// block. 0 retains every non-zero detail, which makes the published
	// synopsis exactly the conventional (L2-optimal) synopsis of the
	// window; a positive cap trades that exactness for O(BlockBudget)
	// state per block.
	BlockBudget int
	// Store, when non-nil, persists completed blocks so the ingestor
	// resumes after a kill. Scope one store (one FileCheckpoint dir) to
	// one stream, exactly like the dist pipeline checkpoints.
	Store dist.CheckpointStore
	// Name identifies the stream inside the Store's keyspace (default
	// "stream").
	Name string
}

func (c *Config) defaults() error {
	if !wavelet.IsPowerOfTwo(c.Window) || c.Window < 2 {
		return fmt.Errorf("ingest: window %d must be a power of two >= 2", c.Window)
	}
	if c.Block == 0 {
		c.Block = c.Window / 8
		if c.Block < 1 {
			c.Block = 1
		}
	}
	if !wavelet.IsPowerOfTwo(c.Block) || c.Block > c.Window {
		return fmt.Errorf("ingest: block %d must be a power of two <= window %d", c.Block, c.Window)
	}
	if c.Budget < 1 {
		return fmt.Errorf("ingest: budget %d < 1", c.Budget)
	}
	if c.BlockBudget < 0 {
		return fmt.Errorf("ingest: block budget %d < 0", c.BlockBudget)
	}
	if c.Name == "" {
		c.Name = "stream"
	}
	return nil
}

// Snapshot is one published epoch: an immutable synopsis over the most
// recent complete window, with a ready evaluator for O(log N) queries.
type Snapshot struct {
	// Syn is the synopsis; Ev answers point/range queries against it.
	Syn *synopsis.Synopsis
	Ev  *synopsis.Evaluator
	// Epoch counts publishes since the ingestor started (1-based).
	Epoch int64
	// Start is the absolute stream position of the window's first value.
	Start int64
	// N is the number of values the window covers (Syn.N).
	N int
}

// blockRec is one completed block: its position in the stream, its
// average, and its retained local detail coefficients (index-sorted).
// Immutable once built.
type blockRec struct {
	seq int64
	avg float64
	idx []int
	val []float64
}

// curBlock is the block currently filling.
type curBlock struct {
	streamer *wavelet.Streamer
	topk     *wavelet.TopK // nil when BlockBudget == 0
	idx      []int         // BlockBudget == 0: every non-zero detail, emit order
	val      []float64
	avg      float64
}

// Ingestor maintains the synopsis of a live stream. Push may be called
// concurrently; Snapshot is wait-free.
type Ingestor struct {
	cfg Config
	r   int // window capacity in blocks

	mu        sync.Mutex
	cur       *curBlock  // guarded by mu
	blocks    []blockRec // guarded by mu — ring of the last <= r completed blocks
	seen      int64      // guarded by mu — values pushed since stream start
	firstPush time.Time  // guarded by mu — when the first value arrived
	nextSeq   int64      // guarded by mu — next block sequence number
	gen       int64      // guarded by mu — completed-block generation counter
	published int64      // guarded by mu — generation covered by the live snapshot
	failed    error      // guarded by mu — sticky checkpoint-write failure
	closed    bool       // guarded by mu
	pubCond   *sync.Cond

	snap   atomic.Pointer[Snapshot]
	epochs int64 // owned by the publisher goroutine
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
}

// New builds an ingestor. When cfg.Store already holds state for
// cfg.Name (a prior incarnation was killed), the ingestor resumes from
// the last durable block: the ring is reloaded, a snapshot is published
// immediately, and Durable reports the stream position the source must
// replay from.
func New(cfg Config) (*Ingestor, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	g := &Ingestor{
		cfg:    cfg,
		r:      cfg.Window / cfg.Block,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	g.pubCond = sync.NewCond(&g.mu)
	g.mu.Lock()
	if cfg.Store != nil {
		if err := g.resumeLocked(); err != nil {
			g.mu.Unlock()
			return nil, err
		}
	}
	if err := g.resetCurLocked(); err != nil {
		g.mu.Unlock()
		return nil, err
	}
	resumed := len(g.blocks) > 0
	g.mu.Unlock()
	if resumed {
		// Publish the recovered window synchronously so the node answers
		// queries the moment it is back, before any new value arrives.
		g.publish()
	}
	go g.publisher()
	return g, nil
}

// resetCurLocked starts a fresh filling block. Caller holds mu.
func (g *Ingestor) resetCurLocked() error {
	cur := &curBlock{}
	if g.cfg.BlockBudget > 0 {
		tk, err := wavelet.NewTopK(g.cfg.BlockBudget)
		if err != nil {
			return err
		}
		cur.topk = tk
	}
	s, err := wavelet.NewStreamer(g.cfg.Block, func(index int, v float64) {
		if index == 0 {
			cur.avg = v
			return
		}
		if cur.topk != nil {
			cur.topk.Offer(index, v)
			return
		}
		if v != 0 {
			cur.idx = append(cur.idx, index)
			cur.val = append(cur.val, v)
		}
	})
	if err != nil {
		return err
	}
	cur.streamer = s
	g.cur = cur
	return nil
}

// Push consumes the next stream value. It is safe for concurrent use;
// values are ordered by lock acquisition. A returned error means the
// value was NOT ingested (an injected fault, a checkpoint-write failure,
// or a closed ingestor) — the caller decides whether to retry or die.
func (g *Ingestor) Push(v float64) error {
	switch act := chaos.Point(chaosIngestPush); act.Kind {
	case chaos.Fail, chaos.Partial:
		return act.Err
	case chaos.Delay:
		time.Sleep(act.Sleep)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	if g.failed != nil {
		return g.failed
	}
	if err := g.cur.streamer.Push(v); err != nil {
		return err
	}
	if g.firstPush.IsZero() {
		g.firstPush = time.Now()
	}
	g.seen++
	if g.cur.streamer.Seen() == g.cfg.Block {
		return g.finalizeBlockLocked()
	}
	return nil
}

// finalizeBlockLocked completes the filling block: finishes its
// transform, persists it, admits it to the ring and wakes the publisher.
// Caller holds mu.
func (g *Ingestor) finalizeBlockLocked() error {
	if err := g.cur.streamer.Finish(); err != nil {
		return fmt.Errorf("ingest: block transform: %w", err)
	}
	rec := blockRec{seq: g.nextSeq, avg: g.cur.avg}
	if g.cur.topk != nil {
		rec.idx, rec.val = g.cur.topk.Pairs()
	} else {
		rec.idx = append([]int(nil), g.cur.idx...)
		rec.val = append([]float64(nil), g.cur.val...)
		sortPairs(rec.idx, rec.val)
	}
	if g.cfg.Store != nil {
		// Persist before admitting: a block in the ring is always
		// durable, so Durable never overstates what a resume recovers. A
		// write failure poisons the ingestor — continuing would let the
		// durable frontier silently fall behind the published window.
		if err := putBlock(g.cfg, rec); err != nil {
			g.failed = fmt.Errorf("ingest: checkpoint block %d: %w", rec.seq, err)
			return g.failed
		}
	}
	g.nextSeq++
	g.blocks = append(g.blocks, rec)
	if len(g.blocks) > g.r {
		g.blocks = append(g.blocks[:0], g.blocks[1:]...)
	}
	g.gen++
	select {
	case g.notify <- struct{}{}:
	default: // a rebuild is already pending; it will see this block too
	}
	return g.resetCurLocked()
}

// publisher is the background re-thresholding loop: one goroutine,
// coalescing wake-ups, swapping finished snapshots in atomically.
func (g *Ingestor) publisher() {
	defer close(g.done)
	for {
		select {
		case <-g.notify:
			g.publish()
		case <-g.stop:
			// Drain a pending rebuild so Close leaves the snapshot
			// covering every completed block.
			select {
			case <-g.notify:
				g.publish()
			default:
			}
			return
		}
	}
}

// publish rebuilds the window synopsis from the current ring and swaps
// it in. Called only from the publisher goroutine (and once from New on
// resume, before the goroutine starts).
func (g *Ingestor) publish() {
	g.mu.Lock()
	gen := g.gen
	blocks := append([]blockRec(nil), g.blocks...)
	g.mu.Unlock()
	if len(blocks) > 0 {
		g.epochs++
		g.snap.Store(buildSnapshot(g.cfg, blocks, g.epochs))
	}
	g.mu.Lock()
	g.published = gen
	g.mu.Unlock()
	g.pubCond.Broadcast()
}

// buildSnapshot re-thresholds one window: upper tree from block
// averages, block details mapped to global indices, top-budget retained
// with the conventional tie-break.
func buildSnapshot(cfg Config, blocks []blockRec, epoch int64) *Snapshot {
	// The window is the largest power-of-two suffix of the ring, so the
	// synopsis always covers a well-formed error tree (during warm-up
	// fewer blocks than the full window have completed).
	p := 1
	for p*2 <= len(blocks) {
		p *= 2
	}
	use := blocks[len(blocks)-p:]
	n := p * cfg.Block
	avgs := make([]float64, p)
	for i, b := range use {
		avgs[i] = b.avg
	}
	// Pairwise averaging of block averages equals averaging the
	// underlying values (the transform is unnormalized), so top[i] for
	// i < p IS the window tree's coefficient i.
	top, err := wavelet.Transform(avgs)
	if err != nil {
		panic(fmt.Sprintf("ingest: upper transform over %d averages: %v", p, err))
	}
	topk, err := wavelet.NewTopK(cfg.Budget)
	if err != nil {
		panic(fmt.Sprintf("ingest: window top-k: %v", err))
	}
	topk.Offer(0, top[0])
	for i := 1; i < p; i++ {
		topk.Offer(i, top[i])
	}
	for c, b := range use {
		for k, li := range b.idx {
			topk.Offer(wavelet.GlobalIndex(n, cfg.Block, c, li), b.val[k])
		}
	}
	idx, vals := topk.Pairs()
	syn := synopsis.New(n)
	for i := range idx {
		syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: idx[i], Value: vals[i]})
	}
	return &Snapshot{
		Syn:   syn,
		Ev:    synopsis.NewEvaluator(syn),
		Epoch: epoch,
		Start: use[0].seq * int64(cfg.Block),
		N:     n,
	}
}

// Snapshot returns the most recently published epoch, or nil before the
// first block completes. Wait-free; the result is immutable.
func (g *Ingestor) Snapshot() *Snapshot { return g.snap.Load() }

// Sync blocks until the published snapshot covers every block completed
// before the call — the quiescence barrier tests and drains use. It does
// not wait for a partially-filled block (that data is not yet part of
// any window).
func (g *Ingestor) Sync() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.published < g.gen && !g.closed {
		g.pubCond.Wait()
	}
}

// Seen returns the number of values pushed over the stream's lifetime,
// including values replayed after a resume.
func (g *Ingestor) Seen() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seen
}

// Blocks returns the number of blocks completed over the stream's
// lifetime.
func (g *Ingestor) Blocks() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nextSeq
}

// EstimateWarmup estimates how long until the first snapshot publishes,
// by extrapolating the observed arrival rate over the values still
// missing from the first block. Zero means "not warming up": a snapshot
// already exists, or nothing has arrived yet to extrapolate from. The
// serving tier turns this into Retry-After hints, so a slow stream
// tells clients to come back in minutes, not to hammer every second.
func (g *Ingestor) EstimateWarmup() time.Duration {
	if g.snap.Load() != nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seen == 0 || g.firstPush.IsZero() {
		return 0
	}
	remaining := int64(g.cfg.Block) - g.seen
	if remaining <= 0 {
		// The first block is complete; its publish is already in flight.
		return 0
	}
	elapsed := time.Since(g.firstPush)
	return time.Duration(float64(elapsed) * float64(remaining) / float64(g.seen))
}

// Durable returns the stream position up to which values survive a kill:
// after a crash, New resumes from checkpointed blocks and the source
// must replay the stream from this position. Zero without a Store.
func (g *Ingestor) Durable() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.Store == nil {
		return 0
	}
	return g.nextSeq * int64(g.cfg.Block)
}

// Close stops the background publisher after letting it drain, then
// releases Sync waiters. Push fails with ErrClosed afterwards. The last
// published snapshot remains readable. Values in a partially-filled
// block are dropped (they were never part of a window; with a Store they
// are below the Durable frontier, so a successor replays them).
func (g *Ingestor) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	close(g.stop)
	<-g.done
	g.pubCond.Broadcast()
	return nil
}

// sortPairs co-sorts (idx, val) by ascending index.
func sortPairs(idx []int, val []float64) {
	sort.Sort(&pairSorter{idx: idx, val: val})
}

type pairSorter struct {
	idx []int
	val []float64
}

func (p *pairSorter) Len() int           { return len(p.idx) }
func (p *pairSorter) Less(i, j int) bool { return p.idx[i] < p.idx[j] }
func (p *pairSorter) Swap(i, j int) {
	p.idx[i], p.idx[j] = p.idx[j], p.idx[i]
	p.val[i], p.val[j] = p.val[j], p.val[i]
}
