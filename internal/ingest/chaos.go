package ingest

// Chaos point names owned by this package. Specs reference them as e.g.
// "ingest.push:drop#9" to kill an ingest node mid-window.
const (
	// chaosIngestPush fires on every Push before the value is ingested.
	// Fail/Partial reject the value with the injected error (the caller's
	// signal to die or retry); Delay slows the producer.
	chaosIngestPush = "ingest.push"
)
