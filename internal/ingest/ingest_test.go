package ingest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// truncData generates integral-valued test data: pairwise averages of
// integers are exact in float64 for the depths used here, so bitwise
// comparisons against the batch transform are meaningful.
func truncData(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Trunc(rng.NormFloat64() * 100)
	}
	return data
}

func pushAll(t *testing.T, g *Ingestor, data []float64) {
	t.Helper()
	for i, v := range data {
		if err := g.Push(v); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
}

// TestIngestExactMatchesConventional pins the exactness contract: with
// BlockBudget == 0 the published synopsis is term-for-term the
// conventional (L2-optimal) synopsis of the window, including the
// tie-break — the streaming path changes when the synopsis is built, not
// what it contains.
func TestIngestExactMatchesConventional(t *testing.T) {
	const window, block, budget = 64, 8, 10
	data := truncData(17, 3*window+block) // slides past warm-up, ends block-aligned
	g, err := New(Config{Window: window, Block: block, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	pushAll(t, g, data)
	g.Sync()

	snap := g.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot after full window")
	}
	if snap.N != window {
		t.Fatalf("snapshot N = %d, want %d", snap.N, window)
	}
	wantStart := int64(len(data) - window)
	if snap.Start != wantStart {
		t.Fatalf("snapshot Start = %d, want %d", snap.Start, wantStart)
	}
	w, err := wavelet.Transform(data[wantStart:])
	if err != nil {
		t.Fatal(err)
	}
	want := synopsis.Conventional(w, budget)
	if !reflect.DeepEqual(snap.Syn.Terms, want.Terms) {
		t.Fatalf("streamed window synopsis\n%+v\nwant conventional\n%+v", snap.Syn.Terms, want.Terms)
	}
	// The evaluator answers against the same terms.
	for k := 0; k < window; k++ {
		if got, wantV := snap.Ev.Point(k), synopsis.NewEvaluator(want).Point(k); got != wantV {
			t.Fatalf("point %d: %g vs %g", k, got, wantV)
		}
	}
}

// TestIngestWarmup walks the window growth: with b completed blocks the
// snapshot covers the largest power-of-two suffix, so queries are
// answerable long before the first full window.
func TestIngestWarmup(t *testing.T) {
	const window, block = 64, 8
	data := truncData(5, window)
	g, err := New(Config{Window: window, Block: block, Budget: window})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if g.Snapshot() != nil {
		t.Fatal("snapshot before any block completed")
	}
	for b := 1; b <= window/block; b++ {
		pushAll(t, g, data[(b-1)*block:b*block])
		g.Sync()
		snap := g.Snapshot()
		if snap == nil {
			t.Fatalf("no snapshot after %d blocks", b)
		}
		p := 1
		for p*2 <= b {
			p *= 2
		}
		if snap.N != p*block {
			t.Fatalf("after %d blocks: N = %d, want %d", b, snap.N, p*block)
		}
		if want := int64((b - p) * block); snap.Start != want {
			t.Fatalf("after %d blocks: Start = %d, want %d", b, snap.Start, want)
		}
		if snap.Epoch < int64(b) {
			t.Fatalf("after %d blocks: epoch %d regressed", b, snap.Epoch)
		}
		// Each warm-up snapshot is itself exact over its window.
		w, _ := wavelet.Transform(data[snap.Start : snap.Start+int64(snap.N)])
		want := synopsis.Conventional(w, window)
		if !reflect.DeepEqual(snap.Syn.Terms, want.Terms) {
			t.Fatalf("after %d blocks: synopsis diverges from conventional", b)
		}
	}
}

// TestIngestBlockBudget pins the bounded-state mode: per-block retention
// caps candidate coefficients, the published synopsis stays within
// Budget, and queries still answer.
func TestIngestBlockBudget(t *testing.T) {
	const window, block = 64, 8
	data := truncData(23, 2*window)
	g, err := New(Config{Window: window, Block: block, Budget: 12, BlockBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	pushAll(t, g, data)
	g.Sync()
	snap := g.Snapshot()
	if snap == nil || snap.N != window {
		t.Fatalf("snapshot %+v", snap)
	}
	if len(snap.Syn.Terms) > 12 {
		t.Fatalf("retained %d terms, budget 12", len(snap.Syn.Terms))
	}
	snap.Ev.Point(0)
	snap.Ev.RangeSum(0, window-1)
}

// TestIngestResume pins crash recovery on the in-memory store: a new
// incarnation over the same store reports the durable frontier, and after
// the source replays from it the synopsis is byte-identical to an
// uninterrupted run.
func TestIngestResume(t *testing.T) {
	const window, block = 64, 8
	store := dist.NewMemCheckpoint()
	cfg := Config{Window: window, Block: block, Budget: 10, Store: store, Name: "t"}
	data := truncData(29, 3*window)

	// Uninterrupted reference run (no store — durability must not change
	// the synopsis).
	ref, err := New(Config{Window: window, Block: block, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, ref, data)
	ref.Sync()
	want := ref.Snapshot()
	ref.Close()

	// First incarnation dies mid-window, mid-block.
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	killAt := 2*window + block + 3 // 3 values into a block
	pushAll(t, g1, data[:killAt])
	g1.Close()

	// Second incarnation resumes: durable frontier is the last completed
	// block boundary, below the kill point.
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	durable := g2.Durable()
	if want := int64(2*window + block); durable != want {
		t.Fatalf("Durable = %d, want %d", durable, want)
	}
	if g2.Seen() != durable {
		t.Fatalf("Seen = %d after resume, want %d", g2.Seen(), durable)
	}
	// The recovered window answers queries immediately.
	if snap := g2.Snapshot(); snap == nil || snap.N != window {
		t.Fatalf("recovered snapshot %+v", snap)
	}
	// Replay from the durable frontier and catch up.
	pushAll(t, g2, data[durable:])
	g2.Sync()
	got := g2.Snapshot()
	if got.N != want.N || got.Start != want.Start || !reflect.DeepEqual(got.Syn.Terms, want.Syn.Terms) {
		t.Fatalf("resumed synopsis diverges:\n%+v\nwant\n%+v", got, want)
	}
}

// TestIngestResumeShapeMismatch pins the keyspace scoping: records from
// one shape are invisible to another, so a reconfigured node starts
// fresh instead of resuming a torn window.
func TestIngestResumeShapeMismatch(t *testing.T) {
	store := dist.NewMemCheckpoint()
	g1, err := New(Config{Window: 64, Block: 8, Budget: 8, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, g1, truncData(31, 64))
	g1.Close()

	g2, err := New(Config{Window: 64, Block: 16, Budget: 8, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if d := g2.Durable(); d != 0 {
		t.Fatalf("resumed %d values across a shape change", d)
	}
}

// failStore passes puts through until a trigger, then fails every write.
type failStore struct {
	inner     dist.CheckpointStore
	mu        sync.Mutex
	puts      int
	failAfter int
}

func (s *failStore) Get(key string) ([]byte, bool, error) { return s.inner.Get(key) }

func (s *failStore) Put(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.puts > s.failAfter {
		return fmt.Errorf("failStore: put %d rejected", s.puts)
	}
	return s.inner.Put(key, payload)
}

// TestIngestCheckpointFailurePoisons pins the durability contract: once
// a block fails to persist, the ingestor refuses further values rather
// than letting the durable frontier silently fall behind.
func TestIngestCheckpointFailurePoisons(t *testing.T) {
	fs := &failStore{inner: dist.NewMemCheckpoint(), failAfter: 4} // 2 blocks = 4 puts
	g, err := New(Config{Window: 64, Block: 8, Budget: 8, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	data := truncData(37, 64)
	var pushErr error
	for _, v := range data {
		if pushErr = g.Push(v); pushErr != nil {
			break
		}
	}
	if pushErr == nil {
		t.Fatal("checkpoint failure not surfaced")
	}
	if err := g.Push(1); !errors.Is(err, pushErr) && err.Error() != pushErr.Error() {
		t.Fatalf("poison not sticky: %v then %v", pushErr, err)
	}
	if d := g.Durable(); d != 16 {
		t.Fatalf("Durable = %d after failed third block, want 16", d)
	}
}

// TestIngestValidation sweeps Config rejection.
func TestIngestValidation(t *testing.T) {
	bad := []Config{
		{Window: 0, Budget: 1},
		{Window: 3, Budget: 1},
		{Window: 64, Block: 3, Budget: 1},
		{Window: 64, Block: 128, Budget: 1},
		{Window: 64, Block: 8, Budget: 0},
		{Window: 64, Block: 8, Budget: 1, BlockBudget: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	g, err := New(Config{Window: 16, Budget: 1}) // Block defaults to 2
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
}

// TestIngestClose pins the shutdown contract: Push after Close fails,
// double Close is fine, and the last snapshot stays readable.
func TestIngestClose(t *testing.T) {
	g, err := New(Config{Window: 16, Block: 4, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, g, truncData(41, 16))
	g.Sync()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Push(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after Close: %v, want ErrClosed", err)
	}
	if snap := g.Snapshot(); snap == nil || snap.N != 16 {
		t.Fatal("snapshot lost on Close")
	}
}

// TestIngestConcurrentPushQuery races one producer against readers —
// meaningful under -race: readers must always see either nil or a
// complete immutable snapshot while blocks complete and epochs swap.
func TestIngestConcurrentPushQuery(t *testing.T) {
	const window, block = 256, 32
	g, err := New(Config{Window: window, Block: block, Budget: 24})
	if err != nil {
		t.Fatal(err)
	}
	data := truncData(43, 8*window)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			k := r
			for {
				select {
				case <-done:
					return
				default:
				}
				if snap := g.Snapshot(); snap != nil {
					snap.Ev.Point(k % snap.N)
					snap.Ev.RangeSum(0, snap.N-1)
					if len(snap.Syn.Terms) > 24 {
						t.Errorf("snapshot with %d terms", len(snap.Syn.Terms))
						return
					}
				}
				k++
			}
		}(r)
	}
	pushAll(t, g, data)
	g.Sync()
	close(done)
	wg.Wait()
	if g.Seen() != int64(len(data)) {
		t.Fatalf("Seen = %d, want %d", g.Seen(), len(data))
	}
	// Coalescing means epochs <= blocks, but the final Sync guarantees the
	// last snapshot covers every completed block.
	if snap := g.Snapshot(); snap == nil || snap.Start != int64(len(data)-window) {
		t.Fatalf("final snapshot %+v does not cover the last window", snap)
	}
	g.Close()
}
