package ingest

import (
	"fmt"
	"math"

	"dwmaxerr/internal/mr"
)

// Block durability. Each completed block is one checkpoint record; a
// small head record names the newest block. Resume reads the head, walks
// backwards collecting up to a window of contiguous blocks, and rebuilds
// the ring — the per-block records are exactly the state the ring held,
// so the resumed synopsis is byte-identical to the pre-kill one.
//
// Keys encode the shape parameters (window, block, block budget) the
// same way the dist pipeline keys encode theirs: a record is only
// replayed into an ingestor with the identical shape, so a config change
// reads as a fresh stream rather than a corrupt resume. Like the dist
// stores, one store must be scoped to one stream.
//
// Payloads carry their own "DWIG" magic + version envelope (the dist
// "DWCK" seal is private to that package, and ingest records have a
// different lifecycle anyway — they are overwritten as the window
// slides, not written once).

const ckVersion = 1

var ckMagic = [4]byte{'D', 'W', 'I', 'G'}

func seal(body []byte) []byte {
	out := make([]byte, 0, 5+len(body))
	out = append(out, ckMagic[:]...)
	out = append(out, ckVersion)
	return append(out, body...)
}

func open(payload []byte) ([]byte, error) {
	if len(payload) < 5 || [4]byte(payload[:4]) != ckMagic {
		return nil, fmt.Errorf("ingest: bad checkpoint magic")
	}
	if v := payload[4]; v != ckVersion {
		return nil, fmt.Errorf("ingest: checkpoint version %d, want %d", v, ckVersion)
	}
	return payload[5:], nil
}

// keyPrefix scopes every record to the stream name and ingest shape.
func keyPrefix(cfg Config) string {
	return fmt.Sprintf("ingest/%s/w%d/s%d/kb%d", cfg.Name, cfg.Window, cfg.Block, cfg.BlockBudget)
}

func blockKey(cfg Config, seq int64) string {
	return fmt.Sprintf("%s/block/%d", keyPrefix(cfg), seq)
}

func headKey(cfg Config) string {
	return keyPrefix(cfg) + "/head"
}

// putBlock persists one completed block, then advances the head. Head
// last: a crash between the two writes leaves the head naming the
// previous block, and the resume simply replays this block's values.
func putBlock(cfg Config, rec blockRec) error {
	body := mr.AppendUint64(nil, uint64(rec.seq))
	body = mr.AppendUint64(body, math.Float64bits(rec.avg))
	body = mr.AppendUint64(body, uint64(len(rec.idx)))
	for k, li := range rec.idx {
		body = mr.AppendUint64(body, uint64(li))
		body = mr.AppendUint64(body, math.Float64bits(rec.val[k]))
	}
	if err := cfg.Store.Put(blockKey(cfg, rec.seq), seal(body)); err != nil {
		return err
	}
	return cfg.Store.Put(headKey(cfg), seal(mr.AppendUint64(nil, uint64(rec.seq))))
}

// getBlock loads one block record; ok is false when the key is absent. A
// present but unreadable record is an error — silently skipping it would
// resume from a torn window.
func getBlock(cfg Config, seq int64) (blockRec, bool, error) {
	payload, ok, err := cfg.Store.Get(blockKey(cfg, seq))
	if err != nil || !ok {
		return blockRec{}, false, err
	}
	body, err := open(payload)
	if err != nil {
		return blockRec{}, false, err
	}
	c := &cursor{buf: body}
	rec := blockRec{seq: int64(c.u64()), avg: math.Float64frombits(c.u64())}
	count := c.u64()
	if c.err == nil && count > uint64(len(body)/16+1) {
		c.err = fmt.Errorf("ingest: implausible block pair count %d", count)
	}
	for i := uint64(0); i < count && c.err == nil; i++ {
		li := c.u64()
		bits := c.u64()
		if c.err != nil {
			break
		}
		rec.idx = append(rec.idx, int(li))
		rec.val = append(rec.val, math.Float64frombits(bits))
	}
	if c.err == nil && c.off != len(body) {
		c.err = fmt.Errorf("ingest: trailing bytes in block record")
	}
	if c.err == nil && rec.seq != seq {
		c.err = fmt.Errorf("ingest: block record %d stored under key %d", rec.seq, seq)
	}
	if c.err != nil {
		return blockRec{}, false, fmt.Errorf("ingest: block %d: %w", seq, c.err)
	}
	return rec, true, nil
}

// getHead returns the newest checkpointed block sequence; ok is false on
// a fresh store.
func getHead(cfg Config) (int64, bool, error) {
	payload, ok, err := cfg.Store.Get(headKey(cfg))
	if err != nil || !ok {
		return 0, false, err
	}
	body, err := open(payload)
	if err != nil {
		return 0, false, fmt.Errorf("ingest: head: %w", err)
	}
	if len(body) != 8 {
		return 0, false, fmt.Errorf("ingest: head record is %d bytes, want 8", len(body))
	}
	return int64(mr.DecodeUint64(body)), true, nil
}

// cursor walks a checkpoint body with sticky bounds checking, mirroring
// the dist decoder discipline.
type cursor struct {
	buf []byte
	off int
	err error
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.buf) {
		c.err = fmt.Errorf("ingest: truncated checkpoint record")
		return 0
	}
	v := mr.DecodeUint64(c.buf[c.off:])
	c.off += 8
	return v
}

// resumeLocked reloads the ring from the store: head, then up to a
// window of contiguous blocks ending at it. Caller holds mu; only New
// calls this, before the publisher goroutine exists.
func (g *Ingestor) resumeLocked() error {
	head, ok, err := getHead(g.cfg)
	if err != nil {
		return err
	}
	if !ok {
		return nil // fresh store
	}
	var ring []blockRec
	for seq := head; seq >= 0 && len(ring) < g.r; seq-- {
		rec, ok, err := getBlock(g.cfg, seq)
		if err != nil {
			return err
		}
		if !ok {
			// Blocks below the window slide out of relevance; a gap just
			// means the window starts after it.
			break
		}
		ring = append(ring, rec)
	}
	// Collected newest-first; the ring runs oldest-first.
	for i, j := 0, len(ring)-1; i < j; i, j = i+1, j-1 {
		ring[i], ring[j] = ring[j], ring[i]
	}
	g.blocks = ring
	g.nextSeq = head + 1
	g.seen = g.nextSeq * int64(g.cfg.Block)
	g.gen = g.nextSeq
	g.published = g.gen // the synchronous publish in New covers the ring
	return nil
}
