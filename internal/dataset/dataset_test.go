package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGeneratorsDeterministic(t *testing.T) {
	gens := []Generator{
		Uniform{Max: 1000},
		Zipf{Max: 1000, Exponent: 0.7},
		Zipf{Max: 1000, Exponent: 1.5},
		NYCTLike{},
		NYCTLike{Outliers: true},
		WDLike{},
	}
	for _, g := range gens {
		a := g.Generate(1024, 42)
		b := g.Generate(1024, 42)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: not deterministic", g.Name())
		}
		c := g.Generate(1024, 43)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: seed has no effect", g.Name())
		}
	}
}

func TestUniformRange(t *testing.T) {
	for _, max := range []float64{1000, 100000, 1000000} {
		data := Uniform{Max: max}.Generate(4096, 1)
		s := Summarize(data)
		if s.Min < 0 || s.Max > max {
			t.Errorf("uniform[0,%g]: range [%g,%g]", max, s.Min, s.Max)
		}
		if math.Abs(s.Avg-max/2) > max*0.05 {
			t.Errorf("uniform[0,%g]: avg %g", max, s.Avg)
		}
	}
}

func TestZipfBias(t *testing.T) {
	// Higher exponents concentrate mass: the most frequent value's share
	// must grow with the exponent.
	share := func(exp float64) float64 {
		data := Zipf{Max: 1000, Exponent: exp}.Generate(1<<14, 7)
		counts := map[float64]int{}
		for _, v := range data {
			counts[v]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return float64(best) / float64(len(data))
	}
	s07, s15 := share(0.7), share(1.5)
	if s15 <= s07 {
		t.Fatalf("zipf1.5 share %g <= zipf0.7 share %g", s15, s07)
	}
	if s15 < 0.2 {
		t.Fatalf("zipf1.5 insufficiently biased: top share %g", s15)
	}
}

func TestNYCTLikeMatchesTable3Shape(t *testing.T) {
	data := NYCTLike{}.Generate(1<<18, 3)
	s := Summarize(data)
	// Table 3 small partitions: avg a few hundred, stdv ~500, max 10800.
	if s.Avg < 150 || s.Avg > 900 {
		t.Errorf("nyct avg = %g", s.Avg)
	}
	if s.Stdv < 200 || s.Stdv > 1500 {
		t.Errorf("nyct stdv = %g", s.Stdv)
	}
	if s.Max > 10800 {
		t.Errorf("nyct max = %g > 10800", s.Max)
	}
	out := NYCTLike{Outliers: true}.Generate(1<<19, 3)
	so := Summarize(out)
	if so.Max < 4.2e9 {
		t.Errorf("nyct+outliers max = %g, want extreme value present", so.Max)
	}
}

func TestWDLikeMatchesTable3Shape(t *testing.T) {
	data := WDLike{}.Generate(1<<18, 5)
	s := Summarize(data)
	if s.Min < 0 || s.Max > 655 {
		t.Errorf("wd range [%g,%g]", s.Min, s.Max)
	}
	// Table 3: avg ~120-140, stdv ~119.
	if s.Avg < 60 || s.Avg > 260 {
		t.Errorf("wd avg = %g", s.Avg)
	}
	if s.Stdv < 50 || s.Stdv > 220 {
		t.Errorf("wd stdv = %g", s.Stdv)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Records != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	s := Summarize([]float64{5})
	if s.Records != 1 || s.Avg != 5 || s.Stdv != 0 || s.Min != 5 || s.Max != 5 {
		t.Errorf("single stats = %+v", s)
	}
}

func TestPadToPowerOfTwo(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	padded, orig := PadToPowerOfTwo(data)
	if orig != 5 || len(padded) != 8 {
		t.Fatalf("padded len %d orig %d", len(padded), orig)
	}
	for i := 5; i < 8; i++ {
		if padded[i] != 5 {
			t.Fatalf("pad value %g", padded[i])
		}
	}
	exact := []float64{1, 2, 3, 4}
	p2, o2 := PadToPowerOfTwo(exact)
	if o2 != 4 || len(p2) != 4 {
		t.Fatalf("exact input repadded: %d", len(p2))
	}
	if p0, o0 := PadToPowerOfTwo(nil); len(p0) != 0 || o0 != 0 {
		t.Fatal("nil input")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(data []float64) bool {
		// NaNs don't compare equal; replace with a sentinel.
		for i, v := range data {
			if math.IsNaN(v) {
				data[i] = 0
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, data); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("want error on truncated input")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	data := []float64{1.5, -2, 0, 1e10, 0.001}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, data) {
		t.Fatalf("got %v want %v", back, data)
	}
}

func TestReadCSVSkipsBlanksAndReportsErrors(t *testing.T) {
	back, err := ReadCSV(bytes.NewBufferString("1\n\n 2 \n3\n"))
	if err != nil || len(back) != 3 {
		t.Fatalf("got %v, %v", back, err)
	}
	if _, err := ReadCSV(bytes.NewBufferString("1\nxyz\n")); err == nil {
		t.Fatal("want parse error")
	}
}

func TestSaveLoadBinary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.bin")
	data := Uniform{Max: 10}.Generate(100, 1)
	if err := SaveBinary(path, data); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, data) {
		t.Fatal("round trip mismatch")
	}
	if _, err := LoadBinary(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "zipf0.7", "zipf1.5", "nyct", "nyct-outliers", "wd"} {
		g, err := ByName(name, 1000)
		if err != nil || g == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 0); err == nil {
		t.Error("want error for unknown name")
	}
}
