// Package dataset provides the workload generators and dataset I/O used by
// the experimental evaluation (Section 6). Synthetic generators cover the
// uniform and Zipfian distributions over value ranges [0, M] used in
// Sections 6.1–6.2; NYCTLike and WDLike generate data calibrated to the
// real-dataset characteristics of Table 3 (NYC taxi trip times and
// hurricane wind-direction sensor readings), substituting for the
// proprietary downloads the paper used.
package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
)

// Generator produces a deterministic synthetic data vector of length n.
type Generator interface {
	// Generate returns a vector of n values. The same (generator, seed, n)
	// always yields the same data.
	Generate(n int, seed int64) []float64
	// Name identifies the workload in experiment output.
	Name() string
}

// Uniform generates values uniformly distributed in [0, Max].
type Uniform struct {
	Max float64
}

// Name implements Generator.
func (u Uniform) Name() string { return fmt.Sprintf("uniform[0,%g]", u.Max) }

// Generate implements Generator.
func (u Uniform) Generate(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * u.Max
	}
	return data
}

// Zipf generates values in [0, Max] whose frequencies follow a Zipfian
// distribution with the given exponent (the paper uses 0.7 and 1.5): a
// fixed universe of distinct values is sampled with probability
// proportional to rank^-Exponent, so biased exponents concentrate the data
// on few values, which favours wavelet compression (Section 6.2).
type Zipf struct {
	Max      float64
	Exponent float64
	// Universe is the number of distinct values; 0 means 1024.
	Universe int
}

// Name implements Generator.
func (z Zipf) Name() string { return fmt.Sprintf("zipf%.1f[0,%g]", z.Exponent, z.Max) }

// Generate implements Generator.
func (z Zipf) Generate(n int, seed int64) []float64 {
	u := z.Universe
	if u <= 0 {
		u = 1024
	}
	rng := rand.New(rand.NewSource(seed))
	// rand.Zipf requires s > 1; for exponents <= 1 use inverse-CDF sampling
	// over the finite universe instead. Frequency rank correlates with
	// magnitude (the most frequent values are the smallest), so biased
	// exponents concentrate the data near zero with rare large excursions —
	// the regime where Section 6.2 observes both faster runs and far
	// smaller maximum errors.
	values := make([]float64, u)
	for i := range values {
		values[i] = float64(i) / float64(u-1) * z.Max
	}
	data := make([]float64, n)
	if z.Exponent > 1 {
		zf := rand.NewZipf(rng, z.Exponent, 1, uint64(u-1))
		for i := range data {
			data[i] = values[zf.Uint64()]
		}
		return data
	}
	// Finite Zipf via cumulative weights.
	cum := make([]float64, u)
	var total float64
	for r := 1; r <= u; r++ {
		total += math.Pow(float64(r), -z.Exponent)
		cum[r-1] = total
	}
	for i := range data {
		x := rng.Float64() * total
		lo, hi := 0, u-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		data[i] = values[lo]
	}
	return data
}

// NYCTLike generates data calibrated to the NYCT taxi trip-time dataset of
// Table 3: mostly moderate trip durations (log-normal body around a few
// hundred seconds) with a cap of 10800 for the small partitions and rare
// extreme outliers up to ~4.3e9 appearing in the larger partitions,
// reproducing the high-magnitude/high-variance tail that makes NYCT hard
// to approximate (Section 6.3). Values are integral seconds.
type NYCTLike struct {
	// Outliers enables the 32M/64M-partition regime with extreme values.
	Outliers bool
}

// Name implements Generator.
func (g NYCTLike) Name() string {
	if g.Outliers {
		return "nyct-like+outliers"
	}
	return "nyct-like"
}

// Generate implements Generator.
func (g NYCTLike) Generate(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		// Log-normal body: median ~420 s, heavy right tail, many zeros
		// (the larger NYCT partitions have low averages, implying many
		// tiny/zero records).
		var v float64
		switch {
		case rng.Float64() < 0.35:
			v = float64(rng.Intn(60)) // short / missing trips
		default:
			v = math.Exp(rng.NormFloat64()*0.9 + 6.0)
		}
		if v > 10800 {
			v = 10800
		}
		data[i] = math.Trunc(v)
	}
	if g.Outliers {
		// A handful of corrupt records with near-2^32 "durations", as the
		// paper's largest NYCT partitions exhibit (Table 3 max 4294966).
		// Deterministic count and positions keep the partition statistics
		// stable: the max explodes while the mean stays moderate.
		count := n >> 19
		if count < 1 {
			count = 1
		}
		for k := 0; k < count; k++ {
			pos := (k*2654435761 + 12345) % n
			data[pos] = float64(4200000000 + rng.Intn(94966))
		}
	}
	return data
}

// WDLike generates data calibrated to the WD wind-direction dataset of
// Table 3: azimuth-style readings in [0, 655] with mean ~125 and standard
// deviation ~119, produced by a smooth random walk (sensor series are
// locally correlated) plus wraparound jumps. Smooth series without large
// discontinuities are easy to approximate (Section 6.3).
type WDLike struct{}

// Name implements Generator.
func (WDLike) Name() string { return "wd-like" }

// Generate implements Generator.
func (WDLike) Generate(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	// Mean-reverting walk around 125 calibrated to stdv ~119 (Table 3),
	// reflected into [0, 655].
	v := 125.0
	for i := range data {
		v += 0.005*(125-v) + rng.NormFloat64()*12
		if rng.Float64() < 0.002 {
			v = rng.Float64() * 655 // storm passage / sensor change
		}
		if v < 0 {
			v = -v
		}
		if v > 655 {
			v = 2*655 - v
		}
		data[i] = math.Trunc(v)
	}
	return data
}

// Stats summarizes a dataset in the shape of Table 3.
type Stats struct {
	Records int
	Avg     float64
	Stdv    float64
	Min     float64
	Max     float64
}

// Summarize computes Table 3-style statistics.
func Summarize(data []float64) Stats {
	s := Stats{Records: len(data), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(data) == 0 {
		return Stats{}
	}
	var sum float64
	for _, v := range data {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Avg = sum / float64(len(data))
	var sq float64
	for _, v := range data {
		d := v - s.Avg
		sq += d * d
	}
	s.Stdv = math.Sqrt(sq / float64(len(data)))
	return s
}

// PadToPowerOfTwo returns data extended to the next power-of-two length by
// repeating the final value (a standard wavelet padding choice that adds no
// artificial discontinuity), along with the original length.
func PadToPowerOfTwo(data []float64) ([]float64, int) {
	n := len(data)
	if n == 0 {
		return data, 0
	}
	target := 1
	for target < n {
		target *= 2
	}
	if target == n {
		return data, n
	}
	out := make([]float64, target)
	copy(out, data)
	last := data[n-1]
	for i := n; i < target; i++ {
		out[i] = last
	}
	return out, n
}

// WriteBinary writes data as little-endian float64s.
func WriteBinary(w io.Writer, data []float64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf [8]byte
	for _, v := range data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads little-endian float64s until EOF.
func ReadBinary(r io.Reader) ([]float64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var data []float64
	var buf [8]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if err == io.EOF {
				return data, nil
			}
			if err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("dataset: truncated binary input after %d values", len(data))
			}
			return nil, err
		}
		data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
}

// WriteCSV writes one value per line.
func WriteCSV(w io.Writer, data []float64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, v := range data {
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads one value per line, skipping blank lines.
func ReadCSV(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var data []float64
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		data = append(data, v)
	}
	return data, sc.Err()
}

// SaveBinary writes data to path in binary format.
func SaveBinary(path string, data []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a binary dataset from path.
func LoadBinary(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// ByName returns the generator matching a CLI-friendly name:
// "uniform", "zipf0.7", "zipf1.5", "nyct", "nyct-outliers", "wd".
// max applies to the synthetic generators ([0, max]).
func ByName(name string, max float64) (Generator, error) {
	switch strings.ToLower(name) {
	case "uniform":
		return Uniform{Max: max}, nil
	case "zipf0.7", "zipf07":
		return Zipf{Max: max, Exponent: 0.7}, nil
	case "zipf1.5", "zipf15":
		return Zipf{Max: max, Exponent: 1.5}, nil
	case "nyct":
		return NYCTLike{}, nil
	case "nyct-outliers":
		return NYCTLike{Outliers: true}, nil
	case "wd":
		return WDLike{}, nil
	default:
		return nil, fmt.Errorf("dataset: unknown generator %q", name)
	}
}
