// Package chaos is a deterministic, seed-driven failpoint registry.
// Instrumented code asks at named points — chaos.Point("mr.worker.send")
// — what fault, if any, to inject right now; tests and the -chaos CLI
// flag arm an Injector with a seed and a rule spec. Like package obs, the
// disabled state costs almost nothing: Point is one atomic load and a nil
// check, so injection sites stay in production code paths permanently.
//
// Determinism. Every rule owns a PRNG seeded from the injector seed and
// the rule's point name + position, so the k-th hit of one point always
// yields the same decision for a given seed regardless of how goroutines
// at *other* points interleave. (Two goroutines racing on the *same*
// point still contend for hit numbers; rules that must be exactly
// reproducible use the #n / xk hit-count forms, which fire on absolute
// hit indices.)
//
// Spec grammar (rules joined with ';'):
//
//	point:fault[=duration][@prob][#nth][xmax]
//
//	faults   drop | error      fail the operation with ErrInjected
//	         delay=D | stall=D | pause=D
//	                           sleep D, then proceed normally
//	         corrupt           flip one deterministic bit in the buffer
//	         partial           write a truncated prefix, then fail
//	modifiers
//	         @0.25             fire with probability 0.25 per hit
//	         #3                fire only on the 3rd hit of the point
//	         x5                fire at most 5 times
//
// Example: -chaos "42,mr.worker.send:corrupt#3;mr.worker.task:delay=30ms@0.2"
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected failure, so
// recovery paths (and tests) can errors.Is-classify chaos-made faults.
var ErrInjected = errors.New("chaos: injected fault")

// Kind is the fault category an Action instructs the caller to apply.
type Kind uint8

const (
	// None: proceed normally (the zero Action).
	None Kind = iota
	// Fail: abort the operation with Action.Err (connection drop, task
	// crash, driver kill — whatever failing means at this point).
	Fail
	// Delay: sleep Action.Sleep, then proceed (frame delay, worker
	// stall, driver pause).
	Delay
	// Corrupt: flip one bit of the in-flight buffer (see FlipBit), then
	// proceed — downstream integrity checks must catch it.
	Corrupt
	// Partial: transmit a prefix of the buffer, then fail with
	// Action.Err.
	Partial
)

var kindNames = map[Kind]string{
	None: "none", Fail: "fail", Delay: "delay", Corrupt: "corrupt", Partial: "partial",
}

// String names the kind for logs and errors.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Action is one injection decision. The zero value means "no fault".
type Action struct {
	Kind  Kind
	Sleep time.Duration // Delay
	Err   error         // Fail / Partial, wraps ErrInjected
	Rand  uint64        // per-fire deterministic randomness (Corrupt bit choice)
}

// FlipBit flips the bit Action.Rand selects in buf (no-op on an empty
// buffer). Callers corrupt the exact bytes crossing the boundary — e.g.
// after a checksum is computed — so the corruption is observable.
func (a Action) FlipBit(buf []byte) {
	if len(buf) == 0 {
		return
	}
	bit := a.Rand % uint64(len(buf)*8)
	buf[bit/8] ^= 1 << (bit % 8)
}

// rule is one armed fault at one point.
type rule struct {
	point string
	kind  Kind
	sleep time.Duration
	prob  float64 // 0 = always
	nth   int64   // >0: fire only on this absolute hit number
	max   int64   // >0: fire at most this many times
	fired int64   // guarded by Injector.mu
	rng   *rand.Rand
}

// Injector evaluates armed rules. One injector is installed globally via
// Enable; tests may also construct and inspect one directly.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rules map[string][]*rule // guarded by mu
	hits  map[string]int64   // guarded by mu
	fires map[string]int64   // guarded by mu
}

// New parses a rule spec (see the package doc grammar) into an Injector
// deterministically driven by seed.
func New(seed int64, spec string) (*Injector, error) {
	in := &Injector{
		seed:  seed,
		rules: map[string][]*rule{},
		hits:  map[string]int64{},
		fires: map[string]int64{},
	}
	idx := 0
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, err
		}
		// Seed mixes the point name and rule position so each rule's
		// decision stream is independent of every other rule's.
		h := fnv.New64a()
		h.Write([]byte(r.point))
		r.rng = rand.New(rand.NewSource(seed ^ int64(h.Sum64()) ^ int64(idx)<<17))
		//dwlint:ignore lockguard -- in is freshly constructed here and unshared until returned
		in.rules[r.point] = append(in.rules[r.point], r)
		idx++
	}
	return in, nil
}

// parseRule parses "point:fault[=dur][@prob][#nth][xmax]".
func parseRule(raw string) (*rule, error) {
	colon := strings.IndexByte(raw, ':')
	if colon <= 0 {
		return nil, fmt.Errorf("chaos: rule %q: want point:fault", raw)
	}
	r := &rule{point: raw[:colon]}
	rest := raw[colon+1:]

	// Fault verb: matched against the known set (a greedy letter scan
	// would swallow the 'x' fire-limit modifier).
	verb := ""
	for _, v := range []string{"corrupt", "partial", "delay", "error", "stall", "pause", "drop"} {
		if strings.HasPrefix(rest, v) {
			verb = v
			rest = rest[len(v):]
			break
		}
	}

	// Optional =duration (durations never contain '@', '#' or 'x').
	end := 0
	var durStr string
	if strings.HasPrefix(rest, "=") {
		rest = rest[1:]
		end = 0
		for end < len(rest) && rest[end] != '@' && rest[end] != '#' && rest[end] != 'x' {
			end++
		}
		durStr = rest[:end]
		rest = rest[end:]
	}

	switch verb {
	case "drop", "error":
		r.kind = Fail
	case "delay", "stall", "pause":
		r.kind = Delay
		if durStr == "" {
			return nil, fmt.Errorf("chaos: rule %q: %s needs =duration", raw, verb)
		}
	case "corrupt":
		r.kind = Corrupt
	case "partial":
		r.kind = Partial
	default:
		return nil, fmt.Errorf("chaos: rule %q: unknown fault %q", raw, verb)
	}
	if durStr != "" {
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("chaos: rule %q: %v", raw, err)
		}
		r.sleep = d
	}

	// Modifiers, in any order.
	for rest != "" {
		mod := rest[0]
		rest = rest[1:]
		end = 0
		for end < len(rest) && rest[end] != '@' && rest[end] != '#' && rest[end] != 'x' {
			end++
		}
		val := rest[:end]
		rest = rest[end:]
		switch mod {
		case '@':
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("chaos: rule %q: bad probability %q", raw, val)
			}
			r.prob = p
		case '#':
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("chaos: rule %q: bad hit number %q", raw, val)
			}
			r.nth = n
		case 'x':
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("chaos: rule %q: bad fire limit %q", raw, val)
			}
			r.max = n
		default:
			return nil, fmt.Errorf("chaos: rule %q: unknown modifier %q", raw, string(mod))
		}
	}
	return r, nil
}

// Point evaluates the named failpoint against this injector.
func (in *Injector) Point(name string) Action {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[name]++
	hit := in.hits[name]
	for _, r := range in.rules[name] {
		if r.nth > 0 && hit != r.nth {
			continue
		}
		if r.max > 0 && r.fired >= r.max {
			continue
		}
		roll := r.rng.Uint64()
		if r.prob > 0 && float64(roll>>11)/(1<<53) >= r.prob {
			continue
		}
		r.fired++
		in.fires[name]++
		act := Action{Kind: r.kind, Sleep: r.sleep, Rand: r.rng.Uint64()}
		if r.kind == Fail || r.kind == Partial {
			act.Err = fmt.Errorf("%w: %s at %q (hit %d)", ErrInjected, r.kind, name, hit)
		}
		return act
	}
	return Action{}
}

// Hits returns how many times the named point was evaluated.
func (in *Injector) Hits(name string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[name]
}

// Fired returns how many faults the named point injected.
func (in *Injector) Fired(name string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[name]
}

// TotalFired sums injected faults across all points.
func (in *Injector) TotalFired() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var total int64
	for _, v := range in.fires {
		total += v
	}
	return total
}

// active is the installed injector; nil (the common case) means disabled.
var active atomic.Pointer[Injector]

// Enable installs in as the process-wide injector (nil disables).
func Enable(in *Injector) { active.Store(in) }

// Disable removes the process-wide injector.
func Disable() { active.Store(nil) }

// Active returns the installed injector, or nil when chaos is off.
func Active() *Injector { return active.Load() }

// Point evaluates the named failpoint against the process-wide injector.
// With no injector installed this is one atomic load returning the zero
// Action, so instrumented hot paths pay ~nothing in production.
func Point(name string) Action {
	in := active.Load()
	if in == nil {
		return Action{}
	}
	return in.Point(name)
}

// EnableSpec parses the CLI form "seed,spec" (e.g. "42,mr.coord.send:drop#3")
// and installs the resulting injector. An empty argument is a no-op, so
// commands can pass their -chaos flag value through unconditionally.
func EnableSpec(arg string) error {
	if arg == "" {
		return nil
	}
	seedStr, spec, ok := strings.Cut(arg, ",")
	if !ok {
		return fmt.Errorf("chaos: want seed,spec, got %q", arg)
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(seedStr), 10, 64)
	if err != nil {
		return fmt.Errorf("chaos: bad seed %q: %v", seedStr, err)
	}
	in, err := New(seed, spec)
	if err != nil {
		return err
	}
	Enable(in)
	return nil
}
