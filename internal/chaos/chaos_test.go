package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"no-colon",
		":drop",
		"p:unknownfault",
		"p:delay",     // delay needs a duration
		"p:delay=xyz", // bad duration
		"p:drop@2",    // probability out of range
		"p:drop@oops", // bad probability
		"p:drop#0",    // hit numbers are 1-based
		"p:drop#-1",   // negative hit number
		"p:dropx0",    // fire limit must be positive
		"p:drop%5",    // unknown modifier
	} {
		if _, err := New(1, spec); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

func TestParseAccepts(t *testing.T) {
	in, err := New(7, " mr.a:drop ; mr.b:delay=10ms@0.5 ; mr.c:corrupt#2x1 ;; mr.d:partial")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(in.rules); got != 4 {
		t.Fatalf("parsed %d rules, want 4", got)
	}
}

func TestDisabledFastPath(t *testing.T) {
	Disable()
	if act := Point("any.point"); act.Kind != None {
		t.Fatalf("disabled Point returned %v", act.Kind)
	}
	if Active() != nil {
		t.Fatal("Active() non-nil after Disable")
	}
}

func TestNthAndLimit(t *testing.T) {
	in, err := New(1, "p:drop#3;q:dropx2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		act := in.Point("p")
		if (i == 3) != (act.Kind == Fail) {
			t.Fatalf("hit %d of p: kind %v", i, act.Kind)
		}
		if i == 3 && !errors.Is(act.Err, ErrInjected) {
			t.Fatalf("injected error %v does not wrap ErrInjected", act.Err)
		}
	}
	fails := 0
	for i := 0; i < 10; i++ {
		if in.Point("q").Kind == Fail {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("x2 rule fired %d times, want 2", fails)
	}
	if in.Hits("p") != 5 || in.Fired("p") != 1 {
		t.Fatalf("p hits=%d fired=%d, want 5/1", in.Hits("p"), in.Fired("p"))
	}
	if in.TotalFired() != 3 {
		t.Fatalf("TotalFired=%d, want 3", in.TotalFired())
	}
}

func TestDelayAndCorruptActions(t *testing.T) {
	in, err := New(1, "d:stall=250ms;c:corrupt")
	if err != nil {
		t.Fatal(err)
	}
	if act := in.Point("d"); act.Kind != Delay || act.Sleep != 250*time.Millisecond {
		t.Fatalf("delay action %+v", act)
	}
	act := in.Point("c")
	if act.Kind != Corrupt {
		t.Fatalf("corrupt action %+v", act)
	}
	buf := make([]byte, 16)
	act.FlipBit(buf)
	flipped := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("FlipBit flipped %d bits, want 1", flipped)
	}
	act.FlipBit(nil) // empty buffer: no panic
}

// TestDeterminism pins that the same seed yields the same decision stream
// per point, independent of interleaved traffic at other points.
func TestDeterminism(t *testing.T) {
	run := func(noise bool) []Kind {
		in, err := New(42, "p:drop@0.4")
		if err != nil {
			t.Fatal(err)
		}
		var kinds []Kind
		for i := 0; i < 32; i++ {
			if noise {
				in.Point("other.point") // must not perturb p's stream
			}
			kinds = append(kinds, in.Point("p").Kind)
		}
		return kinds
	}
	a, b := run(false), run(true)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d diverged under interleaved noise: %v vs %v", i+1, a[i], b[i])
		}
		if a[i] == Fail {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("@0.4 rule fired %d/%d times — probability not applied", fails, len(a))
	}

	// A different seed must (with overwhelming likelihood) give a
	// different stream.
	in2, _ := New(43, "p:drop@0.4")
	diff := false
	for i := range a {
		if in2.Point("p").Kind != a[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical 32-hit streams")
	}
}

func TestEnableSpec(t *testing.T) {
	t.Cleanup(Disable)
	if err := EnableSpec(""); err != nil {
		t.Fatal(err)
	}
	if Active() != nil {
		t.Fatal("empty spec installed an injector")
	}
	for _, bad := range []string{"nocomma", "x,p:drop", "1,p:wat"} {
		if err := EnableSpec(bad); err == nil {
			t.Errorf("EnableSpec(%q) accepted", bad)
		}
	}
	if err := EnableSpec("9,p:drop#1"); err != nil {
		t.Fatal(err)
	}
	if act := Point("p"); act.Kind != Fail {
		t.Fatalf("installed rule did not fire: %v", act.Kind)
	}
	if act := Point("p"); act.Kind != None {
		t.Fatalf("#1 rule fired twice: %v", act.Kind)
	}
}
