package dist

import (
	"math"
	"testing"

	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

func TestDMHaarSpaceMatchesCentralized(t *testing.T) {
	for _, tc := range []struct {
		n, s  int
		eps   float64
		delta float64
		seed  int64
	}{
		{64, 8, 20, 1, 41},
		{128, 16, 50, 2, 42},
		{256, 16, 10, 1, 43},
		{64, 4, 100, 5, 44},
	} {
		data := randData(tc.seed, tc.n, 500)
		p := dp.Params{Epsilon: tc.eps, Delta: tc.delta}
		central, okC, err := dp.MinHaarSpace(data, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DMHaarSpace(SliceSource(data), p, Config{SubtreeLeaves: tc.s})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if res.Feasible != okC {
			t.Fatalf("%+v: feasible %v vs centralized %v", tc, res.Feasible, okC)
		}
		if !okC {
			continue
		}
		// The layered decomposition must find the same minimal size.
		if res.Synopsis.Size() != central.Size {
			t.Fatalf("%+v: distributed size %d != centralized %d", tc, res.Synopsis.Size(), central.Size)
		}
		if got := synopsis.MaxAbsError(res.Synopsis, data); got > tc.eps+1e-9 {
			t.Fatalf("%+v: error %g > ε", tc, got)
		}
	}
}

func TestDMHaarSpaceInfeasible(t *testing.T) {
	data := []float64{0.3, 5.7, 9.1, 13.3, 0.3, 5.7, 9.1, 13.3}
	res, err := DMHaarSpace(SliceSource(data), dp.Params{Epsilon: 0.05, Delta: 1}, Config{SubtreeLeaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("expected infeasible")
	}
}

func TestDMHaarSpaceRowEqualsCentralRow(t *testing.T) {
	// The M-row that crosses the top layer boundary must equal the row the
	// centralized DP computes for the same node.
	data := randData(51, 64, 300)
	p := dp.Params{Epsilon: 30, Delta: 2}
	leaves := make([]dp.Row, len(data))
	for i, d := range data {
		leaves[i] = dp.LeafRow(d, p)
	}
	rows, err := dp.SolveTree(leaves, p)
	if err != nil {
		t.Fatal(err)
	}
	// Distributed with sub-trees of 8 leaves: layer-0 roots are nodes 8..15.
	res, err := DMHaarSpace(SliceSource(data), p, Config{SubtreeLeaves: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	// Re-run the bottom layer job in isolation via the exposed helpers to
	// compare rows: instead, exploit that sizes matched implies rows
	// agreed; here we verify the centralized row of node 8 equals a
	// locally recomputed sub-tree root row.
	sub := make([]dp.Row, 8)
	for i := 0; i < 8; i++ {
		sub[i] = dp.LeafRow(data[i], p)
	}
	subRows, err := dp.SolveTree(sub, p)
	if err != nil {
		t.Fatal(err)
	}
	want := rows[8]
	got := subRows[1]
	if got.Lo != want.Lo || len(got.Count) != len(want.Count) {
		t.Fatalf("row windows differ: [%d,%d] vs [%d,%d]", got.Lo, got.Hi(), want.Lo, want.Hi())
	}
	for i := range got.Count {
		if got.Count[i] != want.Count[i] {
			t.Fatalf("row counts differ at %d: %d vs %d", i, got.Count[i], want.Count[i])
		}
	}
}

func TestDIndirectHaarBudgetAndQuality(t *testing.T) {
	for _, tc := range []struct {
		n, s, b int
		delta   float64
		seed    int64
	}{
		{64, 8, 8, 2, 61},
		{128, 16, 16, 4, 62},
		{256, 32, 32, 4, 63},
	} {
		data := randData(tc.seed, tc.n, 1000)
		src := SliceSource(data)
		rep, err := DIndirectHaar(src, tc.b, Config{SubtreeLeaves: tc.s, Delta: tc.delta})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if rep.Synopsis.Size() > tc.b {
			t.Fatalf("%+v: size %d > budget", tc, rep.Synopsis.Size())
		}
		actual := synopsis.MaxAbsError(rep.Synopsis, data)
		if math.Abs(actual-rep.MaxErr) > 1e-9*(1+actual) {
			t.Fatalf("%+v: reported %g actual %g", tc, rep.MaxErr, actual)
		}
		// Never worse than the conventional synopsis.
		w, _ := wavelet.Transform(data)
		conv := synopsis.MaxAbsError(synopsis.Conventional(w, tc.b), data)
		if rep.MaxErr > conv+1e-9 {
			t.Fatalf("%+v: %g worse than conventional %g", tc, rep.MaxErr, conv)
		}
		// Same answer quality class as the centralized IndirectHaar.
		central, err := dp.IndirectHaar(data, tc.b, tc.delta)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MaxErr > central.MaxAbs*1.2+2*tc.delta {
			t.Fatalf("%+v: distributed %g far from centralized %g", tc, rep.MaxErr, central.MaxAbs)
		}
	}
}

func TestDIndirectHaarCommunicationShrinksWithSubtreeSize(t *testing.T) {
	// Equation 6: communication is O(N·|M|/2^h) — growing the sub-tree
	// height h shrinks the shuffled row volume of the DP layers.
	data := randData(71, 512, 200)
	p := dp.Params{Epsilon: 30, Delta: 2}
	small, err := DMHaarSpace(SliceSource(data), p, Config{SubtreeLeaves: 4})
	if err != nil {
		t.Fatal(err)
	}
	large, err := DMHaarSpace(SliceSource(data), p, Config{SubtreeLeaves: 64})
	if err != nil {
		t.Fatal(err)
	}
	bytesOf := func(jobs []mr.Metrics) int64 {
		var total int64
		for _, j := range jobs {
			total += j.ShuffleBytes
		}
		return total
	}
	if bytesOf(large.Jobs) >= bytesOf(small.Jobs) {
		t.Fatalf("larger sub-trees shuffled more: %d vs %d", bytesOf(large.Jobs), bytesOf(small.Jobs))
	}
}
