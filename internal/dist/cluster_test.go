package dist

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/mr"
)

func TestCONClusterMatchesLocal(t *testing.T) {
	data := randData(91, 256, 1000)
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := dataset.SaveBinary(path, data); err != nil {
		t.Fatal(err)
	}
	c, err := mr.NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 3; i++ {
		go mr.Serve(c.Addr(), "worker", stop)
	}
	if err := c.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	cluster, err := CONCluster(c, path, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	local, err := CON(SliceSource(data), 32, Config{SubtreeLeaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(termIndices(cluster.Synopsis), termIndices(local.Synopsis)) {
		t.Fatalf("cluster terms %v != local %v", termIndices(cluster.Synopsis), termIndices(local.Synopsis))
	}
	if cluster.Jobs[0].ShuffleBytes != local.Jobs[0].ShuffleBytes {
		t.Fatalf("shuffle bytes differ: %d vs %d", cluster.Jobs[0].ShuffleBytes, local.Jobs[0].ShuffleBytes)
	}
}

func TestCONClusterValidation(t *testing.T) {
	c, err := mr.NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := CONCluster(c, "/nonexistent", 10, 8); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "d.bin")
	if err := dataset.SaveBinary(path, make([]float64, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := CONCluster(c, path, 0, 8); err == nil {
		t.Fatal("budget 0 accepted")
	}
}

func TestDGreedyAbsClusterMatchesLocal(t *testing.T) {
	data := randData(301, 512, 1000)
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := dataset.SaveBinary(path, data); err != nil {
		t.Fatal(err)
	}
	c, err := mr.NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 3; i++ {
		go mr.Serve(c.Addr(), "worker", stop)
	}
	if err := c.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Fix the bucket width so local and cluster use identical parameters.
	const eb = 0.25
	cluster, err := DGreedyAbsCluster(c, path, 64, 32, eb)
	if err != nil {
		t.Fatal(err)
	}
	local, err := DGreedyAbs(SliceSource(data), 64, Config{SubtreeLeaves: 32, BucketWidth: eb})
	if err != nil {
		t.Fatal(err)
	}
	if cluster.MaxErr != local.MaxErr {
		t.Fatalf("cluster max_abs %g != local %g", cluster.MaxErr, local.MaxErr)
	}
	if !reflect.DeepEqual(termIndices(cluster.Synopsis), termIndices(local.Synopsis)) {
		t.Fatalf("synopses differ:\ncluster %v\nlocal   %v",
			termIndices(cluster.Synopsis), termIndices(local.Synopsis))
	}
	if len(cluster.Jobs) != 4 {
		t.Fatalf("cluster ran %d jobs, want 4", len(cluster.Jobs))
	}
}

func TestDGreedyAbsClusterValidation(t *testing.T) {
	c, err := mr.NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := DGreedyAbsCluster(c, "/missing", 8, 4, 0); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "d.bin")
	if err := dataset.SaveBinary(path, make([]float64, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := DGreedyAbsCluster(c, path, 0, 8, 0); err == nil {
		t.Fatal("budget 0 accepted")
	}
}
