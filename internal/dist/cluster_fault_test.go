package dist

import (
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
)

// Cluster fault injection at the algorithm level: DGreedyAbs across TCP
// workers with crashes mid-map and mid-reduce must produce the identical
// synopsis, error, and user-counter totals as the clean local run, with
// the retries visible in the job metrics — the trustworthiness the
// paper's Section 6 experiments assume of their Hadoop runtime.

func sumCounters(jobs []mr.Metrics) map[string]int64 {
	total := map[string]int64{}
	for _, j := range jobs {
		for k, v := range j.UserCounters {
			total[k] += v
		}
	}
	return total
}

func TestDGreedyAbsClusterSurvivesWorkerCrashes(t *testing.T) {
	// Registry deltas measured around the run (obs.Default is
	// process-wide; workers here are in-process goroutines, so their
	// execution counters land in the same registry).
	retries0 := obs.Default.Counter("mr_task_retries").Value()
	greedyRuns0 := obsGreedyRuns.Value()
	candidates0 := obsGreedyCandidates.Value()
	wireSent0 := obs.Default.Counter("mr_wire_bytes_sent").Value()
	shuffle0 := obs.Default.Counter("mr_shuffle_bytes").Value()

	data := randData(301, 512, 1000)
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := dataset.SaveBinary(path, data); err != nil {
		t.Fatal(err)
	}
	c, err := mr.NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	defer close(stop)

	// Two healthy workers plus one that crashes on its first map task and
	// one that crashes on its first reduce task.
	var mapCrash, reduceCrash atomic.Bool
	go mr.ServeWorker(c.Addr(), "doomed-map", stop, mr.WorkerOptions{
		TaskHook: func(kind string, taskID, attempt int) error {
			if kind == "map" && mapCrash.CompareAndSwap(false, true) {
				return errors.New("injected map crash")
			}
			return nil
		},
	})
	go mr.ServeWorker(c.Addr(), "doomed-reduce", stop, mr.WorkerOptions{
		TaskHook: func(kind string, taskID, attempt int) error {
			if kind == "reduce" && reduceCrash.CompareAndSwap(false, true) {
				return errors.New("injected reduce crash")
			}
			return nil
		},
	})
	for i := 0; i < 2; i++ {
		go mr.Serve(c.Addr(), "healthy", stop)
	}
	if err := c.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	const eb = 0.25
	cluster, err := DGreedyAbsCluster(c, path, 64, 32, eb)
	if err != nil {
		t.Fatal(err)
	}
	if !mapCrash.Load() {
		t.Fatal("map crash injection never fired")
	}
	if !reduceCrash.Load() {
		t.Fatal("reduce crash injection never fired")
	}
	local, err := DGreedyAbs(SliceSource(data), 64, Config{SubtreeLeaves: 32, BucketWidth: eb})
	if err != nil {
		t.Fatal(err)
	}

	// Results must be bit-identical to the clean local run.
	if cluster.MaxErr != local.MaxErr {
		t.Fatalf("max_abs diverged under failures: cluster %g local %g", cluster.MaxErr, local.MaxErr)
	}
	if !reflect.DeepEqual(termIndices(cluster.Synopsis), termIndices(local.Synopsis)) {
		t.Fatalf("synopses diverged under failures:\ncluster %v\nlocal   %v",
			termIndices(cluster.Synopsis), termIndices(local.Synopsis))
	}

	// Retry accounting must be populated — the failures really happened.
	mapRetries, reduceRetries := 0, 0
	for _, j := range cluster.Jobs {
		mapRetries += j.MapRetries
		reduceRetries += j.ReduceRetries
	}
	if mapRetries == 0 {
		t.Fatal("no MapRetries recorded despite an injected map crash")
	}
	if reduceRetries == 0 {
		t.Fatal("no ReduceRetries recorded despite an injected reduce crash")
	}

	// Counter totals must match the clean local run exactly: retries and
	// reassignments never double- or under-count committed work.
	clusterCounters := sumCounters(cluster.Jobs)
	localCounters := sumCounters(local.Jobs)
	if len(clusterCounters) == 0 {
		t.Fatal("cluster run shipped no user counters")
	}
	if !reflect.DeepEqual(clusterCounters, localCounters) {
		t.Fatalf("user counters diverged under failures:\ncluster %v\nlocal   %v",
			clusterCounters, localCounters)
	}

	// Registry deltas: the two injected crashes triggered at least two
	// task retries; speculative C_root work was posed and executed; real
	// bytes crossed the wire and the shuffle. The local comparison run
	// above also bumps greedy/shuffle counters, so these are lower
	// bounds, while retries only occur on the cluster.
	if d := obs.Default.Counter("mr_task_retries").Value() - retries0; d < 2 {
		t.Fatalf("mr_task_retries delta = %d, want >= 2 (one map + one reduce crash)", d)
	}
	if d := obsGreedyRuns.Value() - greedyRuns0; d < 1 {
		t.Fatalf("dist_greedy_runs delta = %d, want >= 1", d)
	}
	if d := obsGreedyCandidates.Value() - candidates0; d < 1 {
		t.Fatalf("dist_greedy_candidates delta = %d, want >= 1", d)
	}
	if d := obs.Default.Counter("mr_wire_bytes_sent").Value() - wireSent0; d <= 0 {
		t.Fatalf("mr_wire_bytes_sent delta = %d, want > 0", d)
	}
	if d := obs.Default.Counter("mr_shuffle_bytes").Value() - shuffle0; d <= 0 {
		t.Fatalf("mr_shuffle_bytes delta = %d, want > 0", d)
	}
}
