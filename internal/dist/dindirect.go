package dist

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/errtree"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// DMHaarSpace / DIndirectHaar — Section 4, Algorithms 1–2.
//
// The error tree is cut into layers of height-h sub-trees (Figure 3,
// errtree.Partition). A bottom-up sequence of jobs runs the MinHaarSpace
// DP per sub-tree in parallel; the only data crossing a layer boundary is
// the M-row of each local root (communication O(N·|M|/2^h), Equation 6).
// After the topmost sub-tree finishes and the overall-average coefficient
// is fixed (FinishRoot), a top-down sequence of jobs re-enters each
// sub-problem to select the retained coefficients: every sub-tree re-solves
// its local DP and messages each child sub-tree the incoming value chosen
// for it.
//
// DIndirectHaar answers Problem 1 by binary search over the error bound
// (Algorithm 2), with the bounds derived by two extra jobs: the
// (B+1)-largest coefficient (lower) and the measured error of the
// conventional B-term synopsis built by CON (upper).

// localToGlobal maps a sub-tree-local heap index (>= 1) to the global
// error-tree index, for a sub-tree rooted at global node root.
func localToGlobal(root, li int) int {
	l := wavelet.Level(li)
	return root<<uint(l) + (li - 1<<uint(l))
}

// DMHaarResult carries a distributed Problem 2 solution.
type DMHaarResult struct {
	Synopsis *synopsis.Synopsis
	Feasible bool
	Jobs     []mr.Metrics
}

// DMHaarSpace solves Problem 2 (error bound p.Epsilon, quantization
// p.Delta) with the layered distributed DP.
func DMHaarSpace(src Source, p dp.Params, cfg Config) (*DMHaarResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := src.N()
	if err := padCheck(n); err != nil {
		return nil, err
	}
	s, err := cfg.subtreeLeaves(n)
	if err != nil {
		return nil, err
	}
	h := wavelet.Log2(s)
	partition, err := errtree.Partition(n, h)
	if err != nil {
		return nil, err
	}
	eng := cfg.engine()
	result := &DMHaarResult{}
	algSpan := cfg.Trace.Child("dmhaar-space")
	defer algSpan.End()
	algSpan.SetFloat("epsilon", p.Epsilon)
	algSpan.SetInt("layers", int64(partition.NumLayers()))

	// ---- Bottom-up pass: one job per layer (Algorithm 1) ----
	// rowsByRoot[layer] maps each sub-tree root to its emitted M-row.
	rowsByRoot := make([]map[int]dp.Row, partition.NumLayers())
	for li, layer := range partition.Layers {
		below := map[int]dp.Row{}
		if li > 0 {
			below = rowsByRoot[li-1]
		}
		layerSpan := algSpan.Child(fmt.Sprintf("layer-up:%d", li))
		key := ""
		if cfg.Checkpoint != nil {
			key = layerKey(n, s, p.Epsilon, p.Delta, p.MaxWindow, li)
			body, ok, err := checkpointGet(cfg.Checkpoint, key)
			if err != nil {
				layerSpan.End()
				return nil, err
			}
			if ok {
				// Resume: replay the recorded M-rows, skipping the layer job.
				pairs, err := decodePairList(body)
				if err == nil {
					rowsByRoot[li], err = decodeLayerRows(pairs)
				}
				layerSpan.SetBool("checkpoint", true)
				layerSpan.End()
				if err != nil {
					return nil, err
				}
				continue
			}
		}
		switch act := chaos.Point(chaosLayer); act.Kind {
		case chaos.Fail:
			layerSpan.End()
			return nil, fmt.Errorf("dist: layer-up %d: %w", li, act.Err)
		case chaos.Delay:
			time.Sleep(act.Sleep)
		}
		job := layerUpJob(src, p, n, li, layer, below)
		res, err := runJob(eng, job, layerSpan)
		if err != nil {
			layerSpan.End()
			return nil, err
		}
		result.Jobs = append(result.Jobs, res.Metrics)
		rows, err := decodeLayerRows(res.Partitions[0])
		if err != nil {
			layerSpan.End()
			return nil, err
		}
		var rowBytes int64
		for _, kv := range res.Partitions[0] {
			obsLayerRowBytes.Observe(int64(len(kv.Value)))
			rowBytes += int64(len(kv.Value))
		}
		if key != "" {
			if err := checkpointPut(cfg.Checkpoint, key, appendPairList(nil, res.Partitions[0])); err != nil {
				layerSpan.End()
				return nil, err
			}
		}
		rowsByRoot[li] = rows
		obsLayerRows.Observe(int64(len(rows)))
		layerSpan.SetInt("rows", int64(len(rows)))
		layerSpan.SetInt("row_bytes", rowBytes)
		layerSpan.End()
	}
	top := partition.Layers[partition.NumLayers()-1]
	rootRow, ok := rowsByRoot[partition.NumLayers()-1][top[0].Root]
	if !ok {
		return nil, fmt.Errorf("dist: top sub-tree produced no row")
	}
	rootChoice := dp.FinishRoot(rootRow, p)
	if !rootChoice.Feasible {
		return result, nil
	}

	// ---- Top-down pass: re-enter each sub-problem (Section 4) ----
	syn := synopsis.New(n)
	if rootChoice.C0Grid != 0 {
		syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: 0, Value: p.Value(rootChoice.C0Grid)})
	}
	incoming := map[int]int{top[0].Root: rootChoice.C0Grid}
	for li := partition.NumLayers() - 1; li >= 0; li-- {
		below := map[int]dp.Row{}
		if li > 0 {
			below = rowsByRoot[li-1]
		}
		layerSpan := algSpan.Child(fmt.Sprintf("layer-down:%d", li))
		job, collect := layerDownJob(src, p, n, li, partition.Layers[li], below, incoming)
		res, err := runJob(eng, job, layerSpan)
		layerSpan.End()
		if err != nil {
			return nil, err
		}
		result.Jobs = append(result.Jobs, res.Metrics)
		next, terms, err := collect(res)
		if err != nil {
			return nil, err
		}
		syn.Terms = append(syn.Terms, terms...)
		incoming = next
	}
	syn.Normalize()
	result.Synopsis = syn
	result.Feasible = true
	return result, nil
}

// decodeLayerRows decodes one layer's shuffle output (root key, varint
// M-row value) into the rows map — shared by the fresh-run and
// checkpoint-replay paths so both produce identical state.
func decodeLayerRows(pairs []mr.Pair) (map[int]dp.Row, error) {
	rows := make(map[int]dp.Row, len(pairs))
	for _, kv := range pairs {
		list, err := decodeRowList(kv.Value)
		if err != nil {
			return nil, err
		}
		if len(list) != 1 {
			return nil, fmt.Errorf("dist: layer row record holds %d rows, want 1", len(list))
		}
		rows[int(mr.DecodeUint64(kv.Key))] = list[0]
	}
	return rows, nil
}

// layerSplits encodes each sub-tree's index within its layer.
func layerSplits(layer []errtree.Subtree) []mr.Split {
	splits := make([]mr.Split, len(layer))
	for i := range layer {
		splits[i] = mr.Split{ID: i, Payload: mr.MustGobEncode(i)}
	}
	return splits
}

// subtreeLeafRows builds the leaf rows of one sub-tree: data leaves for the
// bottom layer, child M-rows above.
func subtreeLeafRows(src Source, p dp.Params, n, layerIdx int, st errtree.Subtree, below map[int]dp.Row) ([]dp.Row, error) {
	childRoots := st.ChildRoots(nil)
	leaves := make([]dp.Row, len(childRoots))
	if layerIdx == 0 {
		lo := childRoots[0] - n
		hi := childRoots[len(childRoots)-1] - n + 1
		data, err := src.Chunk(lo, hi)
		if err != nil {
			return nil, err
		}
		for i, c := range childRoots {
			leaves[i] = dp.LeafRow(data[c-n-lo], p)
		}
		return leaves, nil
	}
	for i, c := range childRoots {
		row, ok := below[c]
		if !ok {
			return nil, fmt.Errorf("dist: missing M-row for child root %d", c)
		}
		leaves[i] = row
	}
	return leaves, nil
}

// layerUpJob builds the bottom-up job of one layer: solve each sub-tree,
// emit the local root's M-row.
func layerUpJob(src Source, p dp.Params, n, layerIdx int, layer []errtree.Subtree, below map[int]dp.Row) *mr.Job {
	return &mr.Job{
		Name:   fmt.Sprintf("dmhaar-up-layer%d", layerIdx),
		Splits: layerSplits(layer),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			st := layer[idx]
			leaves, err := subtreeLeafRows(src, p, n, layerIdx, st, below)
			if err != nil {
				return err
			}
			rows, err := dp.SolveTree(leaves, p)
			if err != nil {
				return err
			}
			return emit(mr.EncodeUint64(uint64(st.Root)), appendRowList(nil, rows[1:2]))
		},
		Reducers: 1,
	}
}

// downMsg carries one sub-tree's top-down output: the coefficients it
// retains and the incoming grid values for the sub-trees below it.
type downMsg struct {
	Terms        []synopsis.Coefficient
	ChildRoots   []int
	ChildincomeG []int
}

// layerDownJob builds the top-down job of one layer and a collector that
// extracts the next layer's incoming values and the retained terms.
func layerDownJob(src Source, p dp.Params, n, layerIdx int, layer []errtree.Subtree, below map[int]dp.Row, incoming map[int]int) (*mr.Job, func(*mr.Result) (map[int]int, []synopsis.Coefficient, error)) {
	job := &mr.Job{
		Name:   fmt.Sprintf("dmhaar-down-layer%d", layerIdx),
		Splits: layerSplits(layer),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			st := layer[idx]
			g, ok := incoming[st.Root]
			if !ok {
				return fmt.Errorf("dist: no incoming value for sub-tree root %d", st.Root)
			}
			leaves, err := subtreeLeafRows(src, p, n, layerIdx, st, below)
			if err != nil {
				return err
			}
			rows, err := dp.SolveTree(leaves, p)
			if err != nil {
				return err
			}
			msg := downMsg{}
			childRoots := st.ChildRoots(nil)
			dp.CollectChoices(rows, g, func(local int, z int32) {
				msg.Terms = append(msg.Terms, synopsis.Coefficient{
					Index: localToGlobal(st.Root, local),
					Value: p.Value(int(z)),
				})
			}, func(leafPos, lg int) {
				if layerIdx > 0 {
					msg.ChildRoots = append(msg.ChildRoots, childRoots[leafPos])
					msg.ChildincomeG = append(msg.ChildincomeG, lg)
				}
			})
			return emit(mr.EncodeUint64(uint64(st.Root)), mr.MustGobEncode(msg))
		},
		Reducers: 1,
	}
	collect := func(res *mr.Result) (map[int]int, []synopsis.Coefficient, error) {
		next := map[int]int{}
		var terms []synopsis.Coefficient
		for _, kv := range res.Partitions[0] {
			var msg downMsg
			if err := mr.GobDecode(kv.Value, &msg); err != nil {
				return nil, nil, err
			}
			terms = append(terms, msg.Terms...)
			for i, c := range msg.ChildRoots {
				next[c] = msg.ChildincomeG[i]
			}
		}
		return next, terms, nil
	}
	return job, collect
}

// dmProber adapts DMHaarSpace to the binary-search driver.
type dmProber struct {
	src  Source
	cfg  Config
	span *obs.Span
	jobs *[]mr.Metrics
}

// Probe implements dp.Prober. With a checkpoint store configured, each
// probe's verdict (feasibility + synopsis) is recorded under a key derived
// from the probed epsilon; a restarted search replays recorded verdicts
// without re-running their layer jobs — and without counting them in
// dist_probes_total, so resume tests can assert the saved work.
func (d dmProber) Probe(epsilon float64) (*synopsis.Synopsis, bool, error) {
	cfg := d.cfg
	key := ""
	if cfg.Checkpoint != nil {
		n := d.src.N()
		s, err := cfg.subtreeLeaves(n)
		if err != nil {
			return nil, false, err
		}
		delta := cfg.Delta
		if delta <= 0 {
			delta = 1
		}
		key = probeKey(n, s, delta, epsilon, cfg.MaxWindow)
		body, ok, err := checkpointGet(cfg.Checkpoint, key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return decodeProbeRecord(body)
		}
	}
	switch act := chaos.Point(chaosProbe); act.Kind {
	case chaos.Fail:
		return nil, false, fmt.Errorf("dist: probe eps=%g: %w", epsilon, act.Err)
	case chaos.Delay:
		time.Sleep(act.Sleep)
	}
	obsProbes.Inc()
	if d.span != nil {
		probe := d.span.Child(fmt.Sprintf("probe:eps=%g", epsilon))
		defer probe.End()
		cfg.Trace = probe
	}
	res, err := DMHaarSpace(d.src, dp.Params{Epsilon: epsilon, Delta: cfg.Delta, MaxWindow: cfg.MaxWindow}, cfg)
	if err != nil {
		return nil, false, err
	}
	*d.jobs = append(*d.jobs, res.Jobs...)
	if key != "" {
		if err := checkpointPut(cfg.Checkpoint, key, encodeProbeRecord(res.Synopsis, res.Feasible)); err != nil {
			return nil, false, err
		}
	}
	if !res.Feasible {
		return nil, false, nil
	}
	return res.Synopsis, true, nil
}

// DIndirectHaar answers Problem 1 distributively: binary search over the
// error bound with DMHaarSpace probes (Algorithm 2). cfg.Delta is the
// quantization step δ (0 defaults to 1).
func DIndirectHaar(src Source, budget int, cfg Config) (*Report, error) {
	n := src.N()
	if err := padCheck(n); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dist: budget %d < 1", budget)
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 1
	}
	if cfg.Reducers == 0 {
		cfg.Reducers = 1 // the paper uses one reducer for DIndirectHaar
	}
	s, err := cfg.subtreeLeaves(n)
	if err != nil {
		return nil, err
	}
	eng := cfg.engine()
	report := &Report{}
	algSpan := cfg.Trace.Child("dindirect-haar")
	defer algSpan.End()
	algSpan.SetInt("budget", int64(budget))
	cfg.Trace = algSpan

	// Lower bound e_l: the (B+1)-largest |coefficient| (one job; each
	// mapper pre-selects its local top B+1, the driver adds the root
	// sub-tree from the chunk means).
	boundsSpan := algSpan.Child("bounds")
	eLow, _, lowMetrics, err := kthCoefficientJob(src, budget+1, s, eng, boundsSpan)
	if err != nil {
		boundsSpan.End()
		return nil, err
	}
	report.Jobs = append(report.Jobs, lowMetrics)

	// Upper bound e_u: measured error of the conventional synopsis (CON +
	// evaluation job).
	boundsCfg := cfg
	boundsCfg.Trace = boundsSpan
	conRep, err := CON(src, budget, boundsCfg)
	if err != nil {
		boundsSpan.End()
		return nil, err
	}
	report.Jobs = append(report.Jobs, conRep.Jobs...)
	eHigh, evalMetrics, err := evaluateMax(src, conRep.Synopsis, s, eng, 0, boundsSpan)
	boundsSpan.End()
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, evalMetrics)

	env := dp.SearchEnv{
		ELow:    eLow,
		EHigh:   eHigh,
		Initial: conRep.Synopsis,
		Eval: func(syn *synopsis.Synopsis) (float64, error) {
			e, m, err := evaluateMax(src, syn, s, eng, 0, algSpan)
			if err != nil {
				return 0, err
			}
			report.Jobs = append(report.Jobs, m)
			return e, nil
		},
	}
	res, err := dp.SearchWithEnv(dmProber{src: src, cfg: cfg, span: algSpan, jobs: &report.Jobs}, env, budget, cfg.Delta)
	if err != nil {
		return nil, err
	}
	report.Synopsis = res.Synopsis
	report.MaxErr = res.MaxAbs
	return report, nil
}

// kthCoefficientJob finds the k-th largest coefficient magnitude with one
// job: each mapper emits its chunk's top-k local detail magnitudes, the
// driver merges them with the root sub-tree's coefficients.
func kthCoefficientJob(src Source, k, s int, eng mr.Engine, parent *obs.Span) (float64, []float64, mr.Metrics, error) {
	n := src.N()
	job := &mr.Job{
		Name:   "top-coefficients",
		Splits: chunkSplits(n, s),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			chunk, err := src.Chunk(idx*s, (idx+1)*s)
			if err != nil {
				return err
			}
			details, avg, err := wavelet.LocalTransform(chunk)
			if err != nil {
				return err
			}
			if err := emit([]byte{0}, mr.MustGobEncode([2]float64{float64(idx), avg})); err != nil {
				return err
			}
			mags := make([]float64, 0, len(details)-1)
			for _, c := range details[1:] {
				mags = append(mags, math.Abs(c))
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
			if len(mags) > k {
				mags = mags[:k]
			}
			return emit([]byte{1}, mr.MustGobEncode(mags))
		},
		Reducers: 1,
	}
	res, err := runJob(eng, job, parent)
	if err != nil {
		return 0, nil, mr.Metrics{}, err
	}
	means := make([]float64, n/s)
	var all []float64
	for _, kv := range res.Partitions[0] {
		if kv.Key[0] == 0 {
			var rec [2]float64
			if err := mr.GobDecode(kv.Value, &rec); err != nil {
				return 0, nil, res.Metrics, err
			}
			means[int(rec[0])] = rec[1]
			continue
		}
		var mags []float64
		if err := mr.GobDecode(kv.Value, &mags); err != nil {
			return 0, nil, res.Metrics, err
		}
		all = append(all, mags...)
	}
	rootCoef, err := wavelet.Transform(means)
	if err != nil {
		return 0, nil, res.Metrics, err
	}
	for _, c := range rootCoef {
		all = append(all, math.Abs(c))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	if k > len(all) {
		return 0, means, res.Metrics, nil
	}
	return all[k-1], means, res.Metrics, nil
}
