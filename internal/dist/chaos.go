package dist

// Chaos failpoints of the distributed drivers, the package's full set in
// one place (enforced by dwlint's chaospoint analyzer — every chaos.Point
// call site must name a constant declared in its package's chaos.go).
const (
	// chaosProbe fires before each DIndirectHaar binary-search probe runs
	// its layer jobs: Fail aborts the driver mid-search (a simulated
	// driver kill, for checkpoint-resume tests), Delay pauses the driver.
	chaosProbe = "dist.probe"
	// chaosLayer fires before each bottom-up DMHaarSpace layer job: Fail
	// kills the driver mid-probe so a resumed run re-enters the probe
	// with some layers already checkpointed.
	chaosLayer = "dist.layer"
)
