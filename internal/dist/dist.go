// Package dist implements the paper's distributed algorithms on top of the
// MapReduce-style substrate of package mr:
//
//   - DGreedyAbs / DGreedyRel (Section 5, Algorithms 3–6): root/base
//     sub-tree partitioning, speculative C_root sets, ErrHistGreedy
//     histogram emission, level-2 combineResults, and the synopsis
//     materialization job.
//   - DMHaarSpace and DIndirectHaar (Section 4, Algorithms 1–2): the
//     layered error-tree decomposition running the MinHaarSpace DP per
//     sub-tree, with M-rows of local roots as the only cross-layer
//     traffic, plus the top-down selection pass and the binary search.
//   - The conventional-synopsis baselines of Appendix A: CON (the paper's
//     locality-preserving partitioning), Send-V, Send-Coef, and H-WTopk.
//
// All algorithms consume a Source (the dataset) and a Config (engine,
// sub-tree size, knobs) and report the mr.Metrics of every job they ran so
// the experiment harness can reproduce the paper's runtime and
// communication figures.
package dist

import (
	"fmt"
	"math"
	"os"
	"time"

	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// Source provides read access to the input vector. Implementations must be
// safe for concurrent Chunk calls (map tasks run in parallel).
type Source interface {
	// N returns the total number of data values (a power of two).
	N() int
	// Chunk returns data[lo:hi). The returned slice must not be modified.
	Chunk(lo, hi int) ([]float64, error)
}

// SliceSource serves an in-memory vector.
type SliceSource []float64

// N implements Source.
func (s SliceSource) N() int { return len(s) }

// Chunk implements Source.
func (s SliceSource) Chunk(lo, hi int) ([]float64, error) {
	if lo < 0 || hi > len(s) || lo > hi {
		return nil, fmt.Errorf("dist: chunk [%d,%d) out of range of %d values", lo, hi, len(s))
	}
	return s[lo:hi], nil
}

// FileSource serves a binary little-endian float64 file (the HDFS stand-in
// for cluster workers, which share a filesystem path instead of HDFS
// blocks).
type FileSource struct {
	Path string
	Size int // number of float64 values in the file
}

// NewFileSource stats the file and returns a source over it.
func NewFileSource(path string) (*FileSource, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.Size()%8 != 0 {
		return nil, fmt.Errorf("dist: %s is not a float64 binary file (size %d)", path, fi.Size())
	}
	return &FileSource{Path: path, Size: int(fi.Size() / 8)}, nil
}

// N implements Source.
func (f *FileSource) N() int { return f.Size }

// Chunk implements Source.
func (f *FileSource) Chunk(lo, hi int) ([]float64, error) {
	if lo < 0 || hi > f.Size || lo > hi {
		return nil, fmt.Errorf("dist: chunk [%d,%d) out of range of %d values", lo, hi, f.Size)
	}
	file, err := os.Open(f.Path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	if _, err := file.Seek(int64(lo)*8, 0); err != nil {
		return nil, err
	}
	buf := make([]byte, (hi-lo)*8)
	if _, err := readFull(file, buf); err != nil {
		return nil, err
	}
	out := make([]float64, hi-lo)
	for i := range out {
		out[i] = decodeF64(buf[8*i:])
	}
	return out, nil
}

func readFull(f *os.File, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := f.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func decodeF64(b []byte) float64 {
	bits := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return math.Float64frombits(bits)
}

// Config tunes the distributed algorithms.
type Config struct {
	// Engine executes jobs; nil means a fresh in-process mr.Local.
	Engine mr.Engine
	// SubtreeLeaves is the number of data values per base sub-tree (the
	// per-worker problem size of Figures 3/4); it must be a power of two.
	// 0 picks min(n/2, 65536). The paper's default is 2^20.
	SubtreeLeaves int
	// Reducers is the number of level-2/reduce tasks (paper: 4 for
	// DGreedyAbs, 1 for DIndirectHaar). 0 means the per-algorithm default.
	Reducers int
	// BucketWidth is e_b, the error-bucket width of Algorithm 3. 0 derives
	// a width from the data scale.
	BucketWidth float64
	// Delta is the DP quantization step δ for DMHaarSpace/DIndirectHaar.
	Delta float64
	// MaxWindow caps the quantized incoming-value window of each DP row
	// (dp.Params.MaxWindow). 0 is exact — the full O(ε/δ) grid; a
	// positive cap bounds per-row memory and M-row wire size at the cost
	// of possibly retaining more coefficients.
	MaxWindow int
	// Sanity is the relative-error sanity bound S (DGreedyRel). 0 means 1.
	Sanity float64
	// Trace, when non-nil, receives one child span per algorithm run, with
	// per-layer / per-probe grouping spans and every mr job's span tree
	// below them. Nil disables tracing.
	Trace *obs.Span
	// Checkpoint, when non-nil, records each completed sub-result
	// (DIndirectHaar probe verdicts and layer rows, DGreedy histogram
	// output) so a restarted driver resumes the pipeline instead of
	// re-running it. The store must be scoped to one dataset — keys
	// encode the problem shape, not the data (see checkpoint.go).
	Checkpoint CheckpointStore
}

func (c Config) engine() mr.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return &mr.Local{}
}

func (c Config) subtreeLeaves(n int) (int, error) {
	s := c.SubtreeLeaves
	if s == 0 {
		s = 1 << 16
		if s > n/2 {
			s = n / 2
		}
	}
	if s < 2 || !wavelet.IsPowerOfTwo(s) || s > n/2 {
		return 0, fmt.Errorf("dist: sub-tree size %d invalid for n=%d (need power of two in [2, n/2])", s, n)
	}
	return s, nil
}

func (c Config) sanity() float64 {
	if c.Sanity > 0 {
		return c.Sanity
	}
	return 1
}

// Report collects what a distributed algorithm did: the produced synopsis,
// its measured maximum error, and per-job metrics.
type Report struct {
	Synopsis *synopsis.Synopsis
	MaxErr   float64
	Jobs     []mr.Metrics
}

// TotalShuffleBytes sums the shuffle volume over all jobs.
func (r *Report) TotalShuffleBytes() int64 {
	var total int64
	for _, j := range r.Jobs {
		total += j.ShuffleBytes
	}
	return total
}

// Makespan sums the simulated makespans of all jobs for the given slot
// counts — the "running time on a cluster with this many parallel tasks"
// series of Figures 5c/5d.
func (r *Report) Makespan(mapSlots, reduceSlots int) (total time.Duration) {
	for _, j := range r.Jobs {
		total += j.Makespan(mapSlots, reduceSlots)
	}
	return total
}

// chunkSplits builds one split per aligned chunk of size s over n values.
// The split payload is the chunk index (gob).
func chunkSplits(n, s int) []mr.Split {
	count := n / s
	splits := make([]mr.Split, count)
	for i := 0; i < count; i++ {
		splits[i] = mr.Split{ID: i, Payload: mr.MustGobEncode(i)}
	}
	return splits
}

func chunkIndex(split mr.Split) (int, error) {
	var idx int
	if err := mr.GobDecode(split.Payload, &idx); err != nil {
		return 0, fmt.Errorf("dist: bad chunk split payload: %w", err)
	}
	return idx, nil
}

// ChunkMeans runs a map job computing the mean of every aligned chunk of
// size s — the input to the root sub-tree of both partitioning schemes.
func ChunkMeans(src Source, s int, eng mr.Engine) ([]float64, mr.Metrics, error) {
	return chunkMeans(src, s, eng, nil)
}

func chunkMeans(src Source, s int, eng mr.Engine, parent *obs.Span) ([]float64, mr.Metrics, error) {
	n := src.N()
	res, err := runJob(eng, chunkMeansJob(src, n, s), parent)
	if err != nil {
		return nil, mr.Metrics{}, err
	}
	means := make([]float64, n/s)
	for _, kv := range res.Partitions[0] {
		means[mr.DecodeUint64(kv.Key)] = mr.DecodeFloat64(kv.Value)
	}
	return means, res.Metrics, nil
}

// EvaluateMaxAbs measures the exact maximum absolute error of a synopsis
// with a parallel map job: each chunk reconstructs its values from the
// retained coefficients on its paths and reports a local maximum; the
// single reducer takes the global max.
func EvaluateMaxAbs(src Source, syn *synopsis.Synopsis, chunk int, eng mr.Engine) (float64, mr.Metrics, error) {
	return evaluateMax(src, syn, chunk, eng, 0, nil)
}

// EvaluateMaxRel measures the exact maximum relative error (Equation 3)
// with the sanity bound S, using the same parallel plan as EvaluateMaxAbs.
func EvaluateMaxRel(src Source, syn *synopsis.Synopsis, chunk int, eng mr.Engine, sanity float64) (float64, mr.Metrics, error) {
	if sanity <= 0 {
		sanity = 1
	}
	return evaluateMax(src, syn, chunk, eng, sanity, nil)
}

// evaluateMax runs the shared evaluation job; sanity == 0 selects the
// absolute metric, sanity > 0 the relative metric with that bound.
func evaluateMax(src Source, syn *synopsis.Synopsis, chunk int, eng mr.Engine, sanity float64, parent *obs.Span) (float64, mr.Metrics, error) {
	n := src.N()
	if syn.N != n {
		return 0, mr.Metrics{}, fmt.Errorf("dist: synopsis over %d values, source has %d", syn.N, n)
	}
	res, err := runJob(eng, evaluateMaxJob(src, syn, chunk, sanity), parent)
	if err != nil {
		return 0, mr.Metrics{}, err
	}
	if len(res.Partitions[0]) != 1 {
		return 0, res.Metrics, fmt.Errorf("dist: evaluate job produced %d outputs", len(res.Partitions[0]))
	}
	return mr.DecodeFloat64(res.Partitions[0][0].Value), res.Metrics, nil
}

// evaluateMaxJob builds the evaluation job (shared by the local and
// cluster paths).
func evaluateMaxJob(src Source, syn *synopsis.Synopsis, chunk int, sanity float64) *mr.Job {
	n := src.N()
	terms := syn.Map()
	job := &mr.Job{
		Name:   "evaluate-maxabs",
		Splits: chunkSplits(n, chunk),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			data, err := src.Chunk(idx*chunk, (idx+1)*chunk)
			if err != nil {
				return err
			}
			// Incoming value shared by the whole chunk: sum of retained
			// coefficients on the path above the chunk's sub-tree root.
			root := n/chunk + idx
			incoming := terms[0]
			for node := root; node > 1; node /= 2 {
				if c, ok := terms[node/2]; ok {
					if node%2 == 0 {
						incoming += c
					} else {
						incoming -= c
					}
				}
			}
			// Local reconstruction of the chunk from retained local terms.
			local := make([]float64, chunk)
			for i := range local {
				local[i] = incoming
			}
			var apply func(node int, lo, hi int)
			apply = func(node, lo, hi int) {
				if hi-lo < 2 {
					return
				}
				mid := (lo + hi) / 2
				if c, ok := terms[node]; ok {
					for i := lo; i < mid; i++ {
						local[i] += c
					}
					for i := mid; i < hi; i++ {
						local[i] -= c
					}
				}
				apply(2*node, lo, mid)
				apply(2*node+1, mid, hi)
			}
			apply(root, 0, chunk)
			var maxErr float64
			for i, v := range local {
				d := math.Abs(v - data[i])
				if sanity > 0 {
					den := math.Abs(data[i])
					if den < sanity {
						den = sanity
					}
					d /= den
				}
				if d > maxErr {
					maxErr = d
				}
			}
			return emit([]byte("max"), mr.EncodeFloat64(maxErr))
		},
		Reduce: func(ctx mr.TaskContext, key []byte, values [][]byte, emit mr.Emit) error {
			var m float64
			for _, v := range values {
				if x := mr.DecodeFloat64(v); x > m {
					m = x
				}
			}
			return emit(key, mr.EncodeFloat64(m))
		},
		Reducers: 1,
	}
	return job
}

// padCheck validates n is a power of two, returning a friendly error
// suggesting dataset.PadToPowerOfTwo.
func padCheck(n int) error {
	if !wavelet.IsPowerOfTwo(n) {
		return fmt.Errorf("dist: input length %d is not a power of two; pad with dataset.PadToPowerOfTwo: %w",
			n, wavelet.ErrNotPowerOfTwo)
	}
	return nil
}
