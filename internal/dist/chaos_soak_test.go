package dist

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
)

// Chaos soak: whole pipelines under seeded fault schedules — corrupted
// frames, dropped task sends, injected latency, and a killed-and-restarted
// driver — must reproduce the fault-free synopses byte for byte, with the
// faults visible in the counters. The schedules are deterministic
// (seed-driven, absolute hit counts), so a failure here replays exactly.

// TestChaosSoakClusterDGreedyAbs runs the full cluster DGreedyAbs pipeline
// while the wire layer corrupts a reply frame, drops a task frame, and
// delays task execution probabilistically. Self-healing workers plus
// RejoinGrace keep the job alive; the result must match the fault-free
// local run exactly.
func TestChaosSoakClusterDGreedyAbs(t *testing.T) {
	data := randData(707, 512, 1000)
	const eb = 0.25

	// Fault-free baseline first: chaos is process-global.
	local, err := DGreedyAbs(SliceSource(data), 64, Config{SubtreeLeaves: 32, BucketWidth: eb})
	if err != nil {
		t.Fatal(err)
	}

	in, err := chaos.New(9001,
		"mr.worker.send:corrupt#3;mr.coord.send:drop#5;mr.worker.task:delay=5ms@0.15")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(in)
	defer chaos.Disable()

	corrupt0 := obs.Default.Counter("mr_wire_corrupt_frames").Value()
	reconnects0 := obs.Default.Counter("mr_worker_reconnects").Value()
	dups0 := obs.Default.Counter("mr_task_commit_dups").Value()

	path := filepath.Join(t.TempDir(), "data.bin")
	if err := dataset.SaveBinary(path, data); err != nil {
		t.Fatal(err)
	}
	c, err := mr.NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.MaxAttempts = 5
	c.RejoinGrace = 5 * time.Second
	t.Cleanup(func() { c.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })

	for _, name := range []string{"soak-a", "soak-b", "soak-c"} {
		go mr.ServeWorker(c.Addr(), name, stop, mr.WorkerOptions{
			ReconnectMax:  8,
			ReconnectBase: 10 * time.Millisecond,
			ReconnectCap:  100 * time.Millisecond,
		})
	}
	if err := c.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	cluster, err := DGreedyAbsCluster(c, path, 64, 32, eb)
	if err != nil {
		t.Fatal(err)
	}

	if cluster.MaxErr != local.MaxErr {
		t.Fatalf("max_abs diverged under chaos: cluster %g local %g", cluster.MaxErr, local.MaxErr)
	}
	if !reflect.DeepEqual(termIndices(cluster.Synopsis), termIndices(local.Synopsis)) {
		t.Fatalf("synopses diverged under chaos:\ncluster %v\nlocal   %v",
			termIndices(cluster.Synopsis), termIndices(local.Synopsis))
	}
	if !reflect.DeepEqual(sumCounters(cluster.Jobs), sumCounters(local.Jobs)) {
		t.Fatalf("user counters diverged under chaos:\ncluster %v\nlocal   %v",
			sumCounters(cluster.Jobs), sumCounters(local.Jobs))
	}

	// The schedule really fired: one corrupted reply (seen and rejected by
	// the coordinator's frame reader), one dropped task send, and the
	// victims re-joined without duplicate commits.
	if fired := in.Fired("mr.worker.send"); fired != 1 {
		t.Fatalf("corrupt rule fired %d times, want 1", fired)
	}
	if fired := in.Fired("mr.coord.send"); fired != 1 {
		t.Fatalf("drop rule fired %d times, want 1", fired)
	}
	if d := obs.Default.Counter("mr_wire_corrupt_frames").Value() - corrupt0; d < 1 {
		t.Fatalf("mr_wire_corrupt_frames delta = %d, want >= 1", d)
	}
	if d := obs.Default.Counter("mr_worker_reconnects").Value() - reconnects0; d < 1 {
		t.Fatalf("mr_worker_reconnects delta = %d, want >= 1", d)
	}
	if d := obs.Default.Counter("mr_task_commit_dups").Value() - dups0; d != 0 {
		t.Fatalf("mr_task_commit_dups delta = %d, want 0", d)
	}
}

// TestChaosDIndirectHaarDriverKillResume kills the DIndirectHaar driver on
// its third binary-search probe, then restarts it against the same
// file-backed checkpoint store. The resumed search replays the first two
// probe verdicts (strictly fewer fresh probes, counted), and lands on the
// byte-identical synopsis of a fault-free run.
func TestChaosDIndirectHaarDriverKillResume(t *testing.T) {
	data := randData(411, 256, 100)
	cfg := Config{SubtreeLeaves: 32, Delta: 1}

	probes0 := obsProbes.Value()
	baseline, err := DIndirectHaar(SliceSource(data), 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseProbes := obsProbes.Value() - probes0
	if baseProbes < 3 {
		t.Fatalf("baseline ran %d probes; the schedule below needs >= 3 (tune the test inputs)", baseProbes)
	}

	in, err := chaos.New(7, "dist.probe:drop#3")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(in)
	defer chaos.Disable()

	dir := filepath.Join(t.TempDir(), "ck")

	// Run 1: the driver dies on probe 3 (probes 1-2 already checkpointed).
	store, err := NewFileCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	killedCfg := cfg
	killedCfg.Checkpoint = store
	probes1 := obsProbes.Value()
	if _, err := DIndirectHaar(SliceSource(data), 20, killedCfg); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("killed run: got %v, want an injected fault", err)
	}
	if d := obsProbes.Value() - probes1; d != 2 {
		t.Fatalf("killed run counted %d probes, want 2 (died on the third)", d)
	}

	// Run 2: a fresh driver over the same store — the restart. The injector
	// stays enabled; replayed probes never reach the chaos point, so the
	// absolute-hit rule cannot re-fire.
	store2, err := NewFileCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumedCfg := cfg
	resumedCfg.Checkpoint = store2
	probes2 := obsProbes.Value()
	hits0 := obsCheckpointHits.Value()
	resumed, err := DIndirectHaar(SliceSource(data), 20, resumedCfg)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	resumedProbes := obsProbes.Value() - probes2
	if resumedProbes >= baseProbes {
		t.Fatalf("resumed run counted %d fresh probes, baseline %d — checkpoint saved nothing", resumedProbes, baseProbes)
	}
	if d := obsCheckpointHits.Value() - hits0; d < 2 {
		t.Fatalf("dist_checkpoint_hits delta = %d, want >= 2 (the replayed probes)", d)
	}

	if resumed.MaxErr != baseline.MaxErr {
		t.Fatalf("max_abs diverged after resume: %g vs baseline %g", resumed.MaxErr, baseline.MaxErr)
	}
	if !reflect.DeepEqual(termIndices(resumed.Synopsis), termIndices(baseline.Synopsis)) {
		t.Fatalf("synopses diverged after resume:\nresumed  %v\nbaseline %v",
			termIndices(resumed.Synopsis), termIndices(baseline.Synopsis))
	}
}

// TestChaosDMHaarSpaceLayerResume is the layer-granularity variant: the
// driver dies between bottom-up layers and a restart replays the finished
// layer's M-rows instead of re-running its job.
func TestChaosDMHaarSpaceLayerResume(t *testing.T) {
	data := randData(55, 256, 100)
	p := dp.Params{Epsilon: 60, Delta: 1}
	cfg := Config{SubtreeLeaves: 16}

	baseline, err := DMHaarSpace(SliceSource(data), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Feasible {
		t.Fatal("baseline infeasible; raise Epsilon")
	}

	in, err := chaos.New(3, "dist.layer:drop#2")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(in)
	defer chaos.Disable()

	store := NewMemCheckpoint()
	ckCfg := cfg
	ckCfg.Checkpoint = store
	if _, err := DMHaarSpace(SliceSource(data), p, ckCfg); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("killed run: got %v, want an injected fault", err)
	}
	if store.Len() == 0 {
		t.Fatal("killed run checkpointed nothing before dying")
	}

	hits0 := obsCheckpointHits.Value()
	resumed, err := DMHaarSpace(SliceSource(data), p, ckCfg)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if d := obsCheckpointHits.Value() - hits0; d < 1 {
		t.Fatalf("dist_checkpoint_hits delta = %d, want >= 1 (the replayed layer)", d)
	}
	// The resumed run ran fewer layer jobs than the baseline: the replayed
	// layer contributes no job metrics.
	if len(resumed.Jobs) >= len(baseline.Jobs) {
		t.Fatalf("resumed run executed %d jobs, baseline %d — layer not replayed",
			len(resumed.Jobs), len(baseline.Jobs))
	}
	if resumed.Feasible != baseline.Feasible {
		t.Fatal("feasibility diverged after layer resume")
	}
	if !reflect.DeepEqual(termIndices(resumed.Synopsis), termIndices(baseline.Synopsis)) {
		t.Fatalf("synopses diverged after layer resume:\nresumed  %v\nbaseline %v",
			termIndices(resumed.Synopsis), termIndices(baseline.Synopsis))
	}
}
