package dist

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"

	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
)

// Pipeline checkpointing. The multi-job drivers (DIndirectHaar's binary
// search, DGreedyAbs's histogram pipeline) record each completed
// sub-result under a deterministic key; a driver restarted after a crash
// replays recorded results instead of re-running their jobs, resuming the
// pipeline where it died. Keys encode every input that shapes the result
// (n, sub-tree size, quantization, epsilon, budget, bucket width), so a
// replay is byte-identical to the run that produced it — but they do NOT
// encode the dataset contents: a store must be scoped to one dataset (use
// one FileCheckpoint directory, or one MemCheckpoint, per input file).
//
// Payloads are sealed with a "DWCK" magic and a version byte; bodies use
// the mr fixed-width codec helpers so records round-trip without
// reflection.

// CheckpointStore persists completed sub-results of a pipeline run.
// Implementations must be safe for concurrent use.
type CheckpointStore interface {
	// Get returns the payload recorded under key, with ok reporting
	// whether the key exists.
	Get(key string) (payload []byte, ok bool, err error)
	// Put records payload under key, replacing any previous record.
	Put(key string, payload []byte) error
}

// MemCheckpoint is an in-memory CheckpointStore (tests, single-process
// drivers that survive job faults but not their own death).
type MemCheckpoint struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemCheckpoint returns an empty in-memory store.
func NewMemCheckpoint() *MemCheckpoint {
	return &MemCheckpoint{m: map[string][]byte{}}
}

// Get implements CheckpointStore.
func (s *MemCheckpoint) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.m[key]
	return p, ok, nil
}

// Put implements CheckpointStore.
func (s *MemCheckpoint) Put(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), payload...)
	return nil
}

// Len returns the number of recorded keys.
func (s *MemCheckpoint) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// FileCheckpoint stores one file per key under Dir, surviving driver
// restarts. Writes go through a temp file + rename so a record is either
// absent or complete, never torn.
type FileCheckpoint struct {
	Dir string
}

// NewFileCheckpoint creates Dir (if needed) and returns a store over it.
func NewFileCheckpoint(dir string) (*FileCheckpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileCheckpoint{Dir: dir}, nil
}

// fileFor maps a key to a filename: the sanitized key for readability,
// plus an FNV hash so distinct keys never collide after sanitizing.
func (s *FileCheckpoint) fileFor(key string) string {
	clean := make([]byte, 0, len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return filepath.Join(s.Dir, fmt.Sprintf("%s-%08x.ck", clean, h.Sum32()))
}

// Get implements CheckpointStore.
func (s *FileCheckpoint) Get(key string) ([]byte, bool, error) {
	payload, err := os.ReadFile(s.fileFor(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// Put implements CheckpointStore.
func (s *FileCheckpoint) Put(key string, payload []byte) error {
	path := s.fileFor(key)
	tmp, err := os.CreateTemp(s.Dir, ".ck-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ---- sealed payload envelope ----

const checkpointVersion = 1

var checkpointMagic = [4]byte{'D', 'W', 'C', 'K'}

func sealCheckpoint(body []byte) []byte {
	out := make([]byte, 0, 5+len(body))
	out = append(out, checkpointMagic[:]...)
	out = append(out, checkpointVersion)
	return append(out, body...)
}

func openCheckpoint(payload []byte) ([]byte, error) {
	if len(payload) < 5 || [4]byte(payload[:4]) != checkpointMagic {
		return nil, fmt.Errorf("dist: bad checkpoint magic")
	}
	if v := payload[4]; v != checkpointVersion {
		return nil, fmt.Errorf("dist: checkpoint version %d, want %d", v, checkpointVersion)
	}
	return payload[5:], nil
}

// checkpointGet reads and unseals key, counting a hit. A missing key is
// (nil, false, nil); a present but unreadable record is an error — silently
// re-running would mask a corrupted store.
func checkpointGet(store CheckpointStore, key string) ([]byte, bool, error) {
	payload, ok, err := store.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	body, err := openCheckpoint(payload)
	if err != nil {
		return nil, false, fmt.Errorf("dist: checkpoint %q: %w", key, err)
	}
	obsCheckpointHits.Inc()
	return body, true, nil
}

// checkpointPut seals and records body under key, counting a put.
func checkpointPut(store CheckpointStore, key string, body []byte) error {
	if err := store.Put(key, sealCheckpoint(body)); err != nil {
		return fmt.Errorf("dist: checkpoint %q: %w", key, err)
	}
	obsCheckpointPuts.Inc()
	return nil
}

// ---- record codecs ----

// appendPairList encodes a shuffle partition: count, then per pair a
// length-prefixed key and value.
func appendPairList(dst []byte, pairs []mr.Pair) []byte {
	dst = mr.AppendUint64(dst, uint64(len(pairs)))
	for _, kv := range pairs {
		dst = mr.AppendUint64(dst, uint64(len(kv.Key)))
		dst = append(dst, kv.Key...)
		dst = mr.AppendUint64(dst, uint64(len(kv.Value)))
		dst = append(dst, kv.Value...)
	}
	return dst
}

// ckCursor walks a checkpoint body with sticky bounds checking.
type ckCursor struct {
	buf []byte
	off int
	err error
}

func (c *ckCursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.buf) {
		c.err = fmt.Errorf("dist: truncated checkpoint record")
		return 0
	}
	v := mr.DecodeUint64(c.buf[c.off:])
	c.off += 8
	return v
}

func (c *ckCursor) bytes() []byte {
	n := c.u64()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.buf)-c.off) {
		c.err = fmt.Errorf("dist: truncated checkpoint record")
		return nil
	}
	b := c.buf[c.off : c.off+int(n)]
	c.off += int(n)
	return b
}

func decodePairList(body []byte) ([]mr.Pair, error) {
	c := &ckCursor{buf: body}
	n := c.u64()
	if c.err == nil && n > uint64(len(body)/8+1) {
		c.err = fmt.Errorf("dist: implausible checkpoint pair count %d", n)
	}
	var out []mr.Pair
	for i := uint64(0); i < n && c.err == nil; i++ {
		k := c.bytes()
		v := c.bytes()
		if c.err != nil {
			break
		}
		out = append(out, mr.Pair{Key: k, Value: v})
	}
	if c.err == nil && c.off != len(body) {
		c.err = fmt.Errorf("dist: trailing bytes in checkpoint record")
	}
	return out, c.err
}

// appendPartitions encodes a full multi-partition shuffle result.
func appendPartitions(dst []byte, parts [][]mr.Pair) []byte {
	dst = mr.AppendUint64(dst, uint64(len(parts)))
	for _, p := range parts {
		inner := appendPairList(nil, p)
		dst = mr.AppendUint64(dst, uint64(len(inner)))
		dst = append(dst, inner...)
	}
	return dst
}

func decodePartitions(body []byte) ([][]mr.Pair, error) {
	c := &ckCursor{buf: body}
	n := c.u64()
	if c.err == nil && n > uint64(len(body)/8+1) {
		c.err = fmt.Errorf("dist: implausible checkpoint partition count %d", n)
	}
	var out [][]mr.Pair
	for i := uint64(0); i < n && c.err == nil; i++ {
		inner := c.bytes()
		if c.err != nil {
			break
		}
		pairs, err := decodePairList(inner)
		if err != nil {
			return nil, err
		}
		out = append(out, pairs)
	}
	if c.err == nil && c.off != len(body) {
		c.err = fmt.Errorf("dist: trailing bytes in checkpoint record")
	}
	return out, c.err
}

// encodeProbeRecord records one DIndirectHaar probe verdict: the
// feasibility bit and, when feasible, the probe's synopsis.
func encodeProbeRecord(syn *synopsis.Synopsis, feasible bool) []byte {
	if !feasible || syn == nil {
		return []byte{0}
	}
	body := append(make([]byte, 0, 17+16*len(syn.Terms)), 1)
	body = mr.AppendUint64(body, uint64(syn.N))
	body = mr.AppendUint64(body, uint64(len(syn.Terms)))
	for _, t := range syn.Terms {
		body = mr.AppendUint64(body, uint64(t.Index))
		// Raw IEEE bits, not the order-preserving shuffle transform: the
		// decoder reads them back with Float64frombits.
		body = mr.AppendUint64(body, math.Float64bits(t.Value))
	}
	return body
}

// decodeProbeRecord inverts encodeProbeRecord, returning the recorded
// verdict in Probe's result shape.
func decodeProbeRecord(body []byte) (*synopsis.Synopsis, bool, error) {
	if len(body) == 1 && body[0] == 0 {
		return nil, false, nil
	}
	if len(body) < 1 || body[0] != 1 {
		return nil, false, fmt.Errorf("dist: bad probe checkpoint record")
	}
	c := &ckCursor{buf: body, off: 1}
	n := c.u64()
	count := c.u64()
	if c.err == nil && count > uint64(len(body)/16+1) {
		c.err = fmt.Errorf("dist: implausible probe term count %d", count)
	}
	syn := synopsis.New(int(n))
	for i := uint64(0); i < count && c.err == nil; i++ {
		idx := c.u64()
		bits := c.u64()
		if c.err != nil {
			break
		}
		syn.Terms = append(syn.Terms, synopsis.Coefficient{
			Index: int(idx), Value: math.Float64frombits(bits),
		})
	}
	if c.err == nil && c.off != len(body) {
		c.err = fmt.Errorf("dist: trailing bytes in probe checkpoint record")
	}
	if c.err != nil {
		return nil, false, c.err
	}
	return syn, true, nil
}

// recordCodecTag names the record-level wire codec generation and is baked
// into every checkpoint key whose body stores raw shuffle pairs (layer
// M-rows, histogram output). Bumping the record codecs (wire v4's varint
// encodings) changes the tag, so a restarted driver recomputes rather than
// misdecoding a stale body written by an earlier binary. probeKey bodies
// use their own self-contained encoding and do not carry the tag.
const recordCodecTag = "c4"

// probeKey names one binary-search probe of DIndirectHaar. The window cap
// changes the DP's verdicts, so it is part of the problem shape the key
// encodes.
func probeKey(n, s int, delta, epsilon float64, win int) string {
	return fmt.Sprintf("dindirect/n%d/s%d/d%016x/w%d/probe/e%016x",
		n, s, math.Float64bits(delta), win, math.Float64bits(epsilon))
}

// layerKey names one bottom-up layer of a DMHaarSpace run.
func layerKey(n, s int, epsilon, delta float64, win, li int) string {
	return fmt.Sprintf("dmhaar/%s/n%d/s%d/d%016x/e%016x/w%d/up%d",
		recordCodecTag, n, s, math.Float64bits(delta), math.Float64bits(epsilon), win, li)
}

// dgreedyHistKey names the job-1 histogram output of a DGreedy run.
func dgreedyHistKey(n, s, budget int, eb float64, rel bool, sanity float64) string {
	return fmt.Sprintf("dgreedy/%s/n%d/s%d/b%d/eb%016x/rel%t/sa%016x/hist",
		recordCodecTag, n, s, budget, math.Float64bits(eb), rel, math.Float64bits(sanity))
}
