package dist

import (
	"fmt"
	"sort"

	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// This file implements the parallel constructions of the conventional
// (L2-optimal) synopsis compared in Section 6.3 and Appendix A:
//
//   - CON (A.1): the paper's own algorithm. Locality-preserving chunks
//     aligned to error-tree sub-trees; each mapper computes its sub-tree's
//     coefficients with a local transform and emits them (plus the chunk
//     average); the reduce side builds the root sub-tree from the averages
//     and keeps the B coefficients of greatest significance.
//   - Send-V (A.2): effectively sequential — mappers forward raw values,
//     the reducer computes the whole transform centrally.
//   - Send-Coef (A.3): non-aligned blocks; every mapper walks each data
//     point's root path, emitting per-point partial contributions for
//     coefficients it cannot finish (Algorithm 7), which the reducer sums.
//
// All three produce exactly the same synopsis; they differ in computation
// and shuffle volume, which the metrics expose.

// coefPayload is the shuffled (index, value) record, carried on the wire
// by appendIdxVal/decodeIdxVal.
type coefPayload struct {
	Index int
	Value float64
}

// appendSigKey appends a coefficient's significance key so that
// bytes.Compare yields descending significance with ascending-index
// tie-breaks — the same total order synopsis.Conventional uses, so CON
// selects identical terms. The avg/detail flag sorts chunk averages ahead
// of everything. The index tie-break is a memcmp-ordered varint (wire
// v4), so ordering survives mixed encoded lengths. Append-style so map
// loops reuse one scratch buffer (emit copies).
func appendSigKey(dst []byte, kind byte, sig float64, idx int) []byte {
	dst = append(dst, kind)
	dst = mr.AppendFloat64(dst, -sig) // ascending -sig == descending sig
	return mr.AppendOrderedUvarint(dst, uint64(idx))
}

const (
	kindAverage byte = 0 // chunk averages: sort first
	kindCoef    byte = 1
)

// CON builds the conventional B-term synopsis with the paper's
// locality-preserving partitioning (Appendix A.1).
func CON(src Source, budget int, cfg Config) (*Report, error) {
	n := src.N()
	if err := padCheck(n); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dist: budget %d < 1", budget)
	}
	s, err := cfg.subtreeLeaves(n)
	if err != nil {
		return nil, err
	}
	eng := cfg.engine()
	res, err := runJob(eng, conJob(src, n, s), cfg.Trace)
	if err != nil {
		return nil, err
	}
	syn, err := selectConventional(res.Partitions[0], n, s, budget)
	if err != nil {
		return nil, err
	}
	return &Report{Synopsis: syn, Jobs: []mr.Metrics{res.Metrics}}, nil
}

// conJob builds the CON map job over aligned chunks of size s.
func conJob(src Source, n, s int) *mr.Job {
	return &mr.Job{
		Name:   "con",
		Splits: chunkSplits(n, s),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			chunk, err := src.Chunk(idx*s, (idx+1)*s)
			if err != nil {
				return err
			}
			details, avg, err := wavelet.LocalTransform(chunk)
			if err != nil {
				return err
			}
			// Both buffers are reused across emits: the engine copies.
			kbuf := make([]byte, 0, 18)
			vbuf := make([]byte, 0, 18)
			kbuf = appendSigKey(kbuf, kindAverage, float64(-idx), idx)
			vbuf = appendIdxVal(vbuf, idx, avg)
			if err := emit(kbuf, vbuf); err != nil {
				return err
			}
			for li := 1; li < len(details); li++ {
				if details[li] == 0 {
					continue
				}
				gi := wavelet.GlobalIndex(n, s, idx, li)
				sig := wavelet.SignificanceOrderValue(gi, details[li])
				kbuf = appendSigKey(kbuf[:0], kindCoef, sig, gi)
				vbuf = appendIdxVal(vbuf[:0], gi, details[li])
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
			}
			return nil
		},
		Reducers: 1,
	}
}

// selectConventional consumes a partition sorted by (averages first,
// then coefficients by descending significance), rebuilds the root
// sub-tree from the chunk averages, and merges the two descending streams
// into the top-B selection — the reducer of Appendix A.1.
func selectConventional(pairs []mr.Pair, n, s, budget int) (*synopsis.Synopsis, error) {
	means := make([]float64, n/s)
	stream := make([]coefPayload, 0, len(pairs))
	for _, kv := range pairs {
		idx, val, err := decodeIdxVal(kv.Value)
		if err != nil {
			return nil, err
		}
		if len(kv.Key) > 0 && kv.Key[0] == kindAverage {
			means[idx] = val
		} else {
			stream = append(stream, coefPayload{Index: idx, Value: val})
		}
	}
	// Root sub-tree coefficients: the transform of the chunk means gives
	// exactly nodes 0..n/s-1 of the global tree.
	rootCoef, err := wavelet.Transform(means)
	if err != nil {
		return nil, err
	}
	type cand struct {
		idx int
		val float64
		sig float64
	}
	root := make([]cand, 0, len(rootCoef))
	for i, c := range rootCoef {
		if c != 0 {
			root = append(root, cand{i, c, wavelet.SignificanceOrderValue(i, c)})
		}
	}
	sort.Slice(root, func(i, j int) bool {
		if root[i].sig != root[j].sig {
			return root[i].sig > root[j].sig
		}
		return root[i].idx < root[j].idx
	})
	// Merge the root stream with the already-sorted coefficient stream.
	syn := synopsis.New(n)
	ri, si := 0, 0
	for syn.Terms = syn.Terms[:0]; len(syn.Terms) < budget && (ri < len(root) || si < len(stream)); {
		var takeRoot bool
		switch {
		case ri >= len(root):
			takeRoot = false
		case si >= len(stream):
			takeRoot = true
		default:
			ssig := wavelet.SignificanceOrderValue(stream[si].Index, stream[si].Value)
			takeRoot = root[ri].sig > ssig || (root[ri].sig == ssig && root[ri].idx < stream[si].Index)
		}
		if takeRoot {
			syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: root[ri].idx, Value: root[ri].val})
			ri++
		} else {
			syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: stream[si].Index, Value: stream[si].Value})
			si++
		}
	}
	syn.Normalize()
	return syn, nil
}

// SendV builds the conventional synopsis with the Send-V scheme of
// Appendix A.2: mappers forward their raw values and a single reducer
// computes the transform and selection centrally.
func SendV(src Source, budget int, cfg Config) (*Report, error) {
	n := src.N()
	if err := padCheck(n); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dist: budget %d < 1", budget)
	}
	s, err := cfg.subtreeLeaves(n)
	if err != nil {
		return nil, err
	}
	eng := cfg.engine()
	job := &mr.Job{
		Name:   "send-v",
		Splits: chunkSplits(n, s),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			chunk, err := src.Chunk(idx*s, (idx+1)*s)
			if err != nil {
				return err
			}
			// Ship the whole chunk as one record keyed by position.
			return emit(mr.EncodeUint64(uint64(idx*s)), mr.MustGobEncode(chunk))
		},
		Reducers: 1,
	}
	res, err := runJob(eng, job, cfg.Trace)
	if err != nil {
		return nil, err
	}
	data := make([]float64, n)
	for _, kv := range res.Partitions[0] {
		var chunk []float64
		if err := mr.GobDecode(kv.Value, &chunk); err != nil {
			return nil, err
		}
		copy(data[mr.DecodeUint64(kv.Key):], chunk)
	}
	w, err := wavelet.Transform(data)
	if err != nil {
		return nil, err
	}
	return &Report{Synopsis: synopsis.Conventional(w, budget), Jobs: []mr.Metrics{res.Metrics}}, nil
}

// SendCoef builds the conventional synopsis with the Send-Coef scheme of
// Appendix A.3 / Algorithm 7: blocks are not aligned to sub-trees, so each
// mapper emits fully-computed coefficients once and, for every coefficient
// it can only partially compute, one contribution per data point; the
// reducer sums partials per coefficient. BlockSize need not be a power of
// two; 0 derives a deliberately unaligned size from cfg.SubtreeLeaves.
func SendCoef(src Source, budget int, blockSize int, cfg Config) (*Report, error) {
	n := src.N()
	if err := padCheck(n); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dist: budget %d < 1", budget)
	}
	if blockSize <= 0 {
		s, err := cfg.subtreeLeaves(n)
		if err != nil {
			return nil, err
		}
		blockSize = s + s/3 // mimic an HDFS block unaligned to the tree
		if blockSize > n {
			blockSize = n
		}
	}
	eng := cfg.engine()
	var splits []mr.Split
	type blockRange struct{ Lo, Hi int }
	for lo, id := 0, 0; lo < n; lo, id = lo+blockSize, id+1 {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		splits = append(splits, mr.Split{ID: id, Payload: mr.MustGobEncode(blockRange{lo, hi})})
	}
	job := &mr.Job{
		Name:   "send-coef",
		Splits: splits,
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			var br blockRange
			if err := mr.GobDecode(split.Payload, &br); err != nil {
				return err
			}
			data, err := src.Chunk(br.Lo, br.Hi)
			if err != nil {
				return err
			}
			full := func(j int) bool {
				if j == 0 {
					return br.Lo == 0 && br.Hi == n
				}
				f, l := wavelet.CoefficientSupport(n, j)
				return f >= br.Lo && l <= br.Hi
			}
			partials := map[int]float64{}
			var kbuf, vbuf []byte // reused across emits: the engine copies
			for pos := br.Lo; pos < br.Hi; pos++ {
				d := data[pos-br.Lo]
				emitContribution := func(j int) error {
					c := wavelet.BasisCoefficient(n, j, pos, d)
					if full(j) {
						partials[j] += c
						return nil
					}
					// Algorithm 7 line 9: per-datapoint partials for
					// coefficients this block cannot finish.
					ctx.Counters.Add("sendcoef.partial_emissions", 1)
					kbuf = mr.AppendUint64(kbuf[:0], uint64(j))
					vbuf = mr.AppendFloat64(vbuf[:0], c)
					return emit(kbuf, vbuf)
				}
				if err := emitContribution(0); err != nil {
					return err
				}
				node := (n + pos) / 2
				for node >= 1 {
					if err := emitContribution(node); err != nil {
						return err
					}
					node /= 2
				}
			}
			keys := make([]int, 0, len(partials))
			for j := range partials {
				keys = append(keys, j)
			}
			sort.Ints(keys)
			ctx.Counters.Add("sendcoef.full_emissions", int64(len(keys)))
			for _, j := range keys {
				kbuf = mr.AppendUint64(kbuf[:0], uint64(j))
				vbuf = mr.AppendFloat64(vbuf[:0], partials[j])
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(ctx mr.TaskContext, key []byte, values [][]byte, emit mr.Emit) error {
			var sum float64
			for _, v := range values {
				sum += mr.DecodeFloat64(v)
			}
			return emit(key, mr.EncodeFloat64(sum))
		},
		Reducers: 1,
	}
	res, err := runJob(eng, job, cfg.Trace)
	if err != nil {
		return nil, err
	}
	w := make([]float64, n)
	for _, kv := range res.Partitions[0] {
		w[mr.DecodeUint64(kv.Key)] = mr.DecodeFloat64(kv.Value)
	}
	return &Report{Synopsis: synopsis.Conventional(w, budget), Jobs: []mr.Metrics{res.Metrics}}, nil
}
