package dist

import (
	"fmt"
	"math"

	"dwmaxerr/internal/errtree"
	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// DGreedyAbs / DGreedyRel — Section 5, Algorithms 3–6.
//
// The error tree is cut into one root sub-tree (nodes 0..R-1, kept on the
// driver) and R base sub-trees of S leaves each (Figure 4). A centralized
// greedy run on the root sub-tree yields the candidate retained sets
// C_root (genRootSets, Algorithm 4): the suffixes of its discard order, so
// candidate i retains the i last-discarded root nodes.
//
// Job 1 (level-1 workers + level-2 workers): each base sub-tree worker
// computes, for every candidate i, the incoming error its leaves inherit
// from the deleted root nodes, runs the local greedy once per *distinct*
// incoming error (log R + 2 runs, Section 5.3), and emits the deletion
// order compacted into error-bucket histograms keyed by [candidate,
// bucket] (ErrHistGreedyAbs, Algorithm 3). Level-2 reducers merge the
// per-candidate streams in descending error order and report the error at
// position B - i (combineResults, Algorithm 5).
//
// Job 2: with the winning candidate known, each worker re-runs the greedy
// once and emits only the nodes whose removal error exceeds the winning
// estimate, as (bucket, [nodes]) lists; the driver keeps the B - i
// last-discarded nodes overall and unions them with the retained root
// nodes. A final evaluation job measures the exact error of the synopsis.

// histEntry is one compacted group of a local deletion order: count nodes
// were discarded while the bucketed running-max error was Bucket.
type histEntry struct {
	Bucket float64
	Count  int
}

// selEntry is one emitted retained-candidate group of job 2.
type selEntry struct {
	Indices []int // global error-tree node indices, in discard order
	Values  []float64
}

// DGreedyAbs builds a synopsis of at most budget coefficients minimizing
// the maximum absolute error with the distributed greedy algorithm.
func DGreedyAbs(src Source, budget int, cfg Config) (*Report, error) {
	return dGreedy(src, budget, cfg, false)
}

// DGreedyRel is the relative-error variant of Section 5.4: level-1 workers
// run GreedyRel with the sanity bound cfg.Sanity.
func DGreedyRel(src Source, budget int, cfg Config) (*Report, error) {
	return dGreedy(src, budget, cfg, true)
}

func dGreedy(src Source, budget int, cfg Config, rel bool) (*Report, error) {
	n := src.N()
	if err := padCheck(n); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dist: budget %d < 1", budget)
	}
	s, err := cfg.subtreeLeaves(n)
	if err != nil {
		return nil, err
	}
	eng := cfg.engine()
	report := &Report{}
	r := n / s // number of base sub-trees == root sub-tree size
	name := "dgreedy-abs"
	if rel {
		name = "dgreedy-rel"
	}
	algSpan := cfg.Trace.Child(name)
	defer algSpan.End()
	algSpan.SetInt("budget", int64(budget))
	algSpan.SetInt("subtrees", int64(r))

	// ---- Root sub-tree: means job + centralized greedy (genRootSets) ----
	means, meansMetrics, err := chunkMeans(src, s, eng, algSpan)
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, meansMetrics)
	rootCoef, err := wavelet.Transform(means)
	if err != nil {
		return nil, err
	}
	var rootSteps []greedy.Step
	if rel {
		rootSteps, err = greedy.RunRel(rootCoef, greedy.Denominators(means, cfg.sanity()), greedy.Options{HasRoot: true})
	} else {
		rootSteps, err = greedy.RunAbs(rootCoef, greedy.Options{HasRoot: true})
	}
	if err != nil {
		return nil, err
	}
	maxCand := r
	if budget < maxCand {
		maxCand = budget
	}
	rootOrder := make([]int, len(rootSteps))
	for i, st := range rootSteps {
		rootOrder[i] = st.Index
	}
	// retainedAt(i) = set of root nodes retained by candidate i (the i
	// last-discarded); exposed below as incremental updates.
	eb := cfg.BucketWidth
	if eb <= 0 {
		// Derive a bucket width from the error scale of the root run
		// (relative errors are ratios, so coefficient magnitudes only
		// inform the absolute metric).
		scale := 0.0
		for _, st := range rootSteps {
			if st.Err > scale {
				scale = st.Err
			}
		}
		if !rel {
			for _, c := range rootCoef {
				if v := math.Abs(c); v > scale {
					scale = v
				}
			}
		}
		if scale == 0 {
			scale = 1
		}
		eb = scale / 4096
	}
	if _, err := errtree.PartitionRootBase(n, s); err != nil {
		return nil, err // validate before the jobs capture the partition
	}

	// ---- Job 1: speculative histogram runs + combineResults ----
	reducers := cfg.Reducers
	if reducers <= 0 {
		reducers = 4
	}
	histJob := &mr.Job{
		Name:      "dgreedy-hist",
		Splits:    chunkSplits(n, s),
		Reducers:  reducers,
		Partition: histPartition,
		Map:       dgreedyHistMap(src, n, s, rootCoef, rootOrder, maxCand, eb, rel, cfg.sanity()),
		Reduce:    makeCombineResults(budget),
	}
	obsGreedyCandidates.Add(int64(maxCand + 1))
	// With a checkpoint store, the histogram output — job 1, the dominant
	// cost of the pipeline — is recorded; a restarted driver replays it
	// and goes straight to candidate selection.
	var histParts [][]mr.Pair
	histKey := ""
	if cfg.Checkpoint != nil {
		histKey = dgreedyHistKey(n, s, budget, eb, rel, cfg.sanity())
		body, ok, err := checkpointGet(cfg.Checkpoint, histKey)
		if err != nil {
			return nil, err
		}
		if ok {
			if histParts, err = decodePartitions(body); err != nil {
				return nil, err
			}
		}
	}
	if histParts == nil {
		histRes, err := runJob(eng, histJob, algSpan)
		if err != nil {
			return nil, err
		}
		report.Jobs = append(report.Jobs, histRes.Metrics)
		histParts = histRes.Partitions
		if histKey != "" {
			if err := checkpointPut(cfg.Checkpoint, histKey, appendPartitions(nil, histParts)); err != nil {
				return nil, err
			}
		}
	}

	bestI, minError := -1, math.Inf(1)
	for _, partPairs := range histParts {
		for _, kv := range partPairs {
			i := int(mr.DecodeUint64(kv.Key))
			e := mr.DecodeFloat64(kv.Value)
			if e < minError || (e == minError && i < bestI) {
				bestI, minError = i, e
			}
		}
	}
	if bestI < 0 {
		return nil, fmt.Errorf("dist: combineResults produced no candidate")
	}

	// ---- Job 2: materialize the synopsis for the winning candidate ----
	retainRoot := map[int]bool{}
	for _, node := range rootOrder[len(rootOrder)-bestI:] {
		retainRoot[node] = true
	}
	cutoff := minError - 2*eb // one-bucket slack against bucket rounding
	selJob := &mr.Job{
		Name:     "dgreedy-select",
		Splits:   chunkSplits(n, s),
		Map:      dgreedySelectMap(src, n, s, rootCoef, retainRoot, cutoff, eb, rel, cfg.sanity()),
		Reducers: 1,
	}
	selRes, err := runJob(eng, selJob, algSpan)
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, selRes.Metrics)

	// Merge: keys already sort ascending by -bucket == descending bucket.
	want := budget - bestI
	syn := synopsis.New(n)
	for node := range retainRoot {
		if rootCoef[node] != 0 {
			syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: node, Value: rootCoef[node]})
		}
	}
	taken := 0
	for _, kv := range selRes.Partitions[0] {
		if taken >= want {
			break
		}
		entry, err := decodeSelEntry(kv.Value)
		if err != nil {
			return nil, err
		}
		// Nodes inside a group were discarded in order; the later ones are
		// the more valuable, so walk each group from its tail.
		for k := len(entry.Indices) - 1; k >= 0 && taken < want; k-- {
			if entry.Values[k] == 0 {
				continue
			}
			syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: entry.Indices[k], Value: entry.Values[k]})
			taken++
		}
	}
	syn.Normalize()
	report.Synopsis = syn

	var maxErr float64
	var evalMetrics mr.Metrics
	if rel {
		maxErr, evalMetrics, err = evaluateMax(src, syn, s, eng, cfg.sanity(), algSpan)
	} else {
		maxErr, evalMetrics, err = evaluateMax(src, syn, s, eng, 0, algSpan)
	}
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, evalMetrics)
	report.MaxErr = maxErr
	return report, nil
}

// appendHistKey appends the [candidate, descending bucket] shuffle key.
// The candidate is a memcmp-ordered varint (wire v4): one byte instead
// of four for the first 241 candidates, without giving up the
// (candidate asc, bucket desc) sort order the combine reducer relies
// on. Append-style so the histogram emit loop reuses one scratch buffer
// per task (the engine copies on emit).
func appendHistKey(dst []byte, cand int, bucket float64) []byte {
	dst = mr.AppendOrderedUvarint(dst, uint64(cand))
	return mr.AppendFloat64(dst, -bucket)
}

// histKeyCand decodes the candidate component of appendHistKey and
// returns the offset where the bucket component starts.
func histKeyCand(key []byte) (cand int, bucketOff int, err error) {
	c, n := mr.OrderedUvarint(key)
	if n <= 0 || len(key) != n+8 {
		return 0, 0, fmt.Errorf("dist: malformed %d-byte histogram key", len(key))
	}
	return int(c), n, nil
}

// histPartition routes a histogram key by candidate; reduce in uint64
// space so the index stays non-negative on 32-bit platforms.
func histPartition(key []byte, nred int) int {
	c, _ := mr.OrderedUvarint(key)
	return int(c % uint64(nred))
}

// bucketize compacts a deletion order into (bucketed running-max error,
// count) groups per Algorithm 3's list batching.
func bucketize(steps []greedy.Step, eb float64) []histEntry {
	var out []histEntry
	runMax := math.Inf(-1)
	for _, st := range steps {
		if st.Err > runMax {
			runMax = st.Err
		}
		b := math.Floor(runMax/eb) * eb
		if len(out) > 0 && out[len(out)-1].Bucket == b {
			out[len(out)-1].Count++
		} else {
			out = append(out, histEntry{Bucket: b, Count: 1})
		}
	}
	return out
}

// makeCombineResults builds the level-2 reducer of Algorithm 5. Keys
// arrive sorted (candidate asc, bucket desc, sentinel last); the reducer
// accumulates counts and, at each candidate's sentinel, emits the error at
// list position budget - candidate.
func makeCombineResults(budget int) mr.ReduceFunc {
	type state struct {
		cand   int
		cum    int
		answer float64
		found  bool
	}
	states := map[[2]int]*state{}
	return func(ctx mr.TaskContext, key []byte, values [][]byte, emit mr.Emit) error {
		sk := [2]int{ctx.TaskID, ctx.Attempt}
		st := states[sk]
		cand, bucketOff, err := histKeyCand(key)
		if err != nil {
			return err
		}
		if st == nil || st.cand != cand {
			st = &state{cand: cand}
			states[sk] = st
		}
		bucket := -mr.DecodeFloat64(key[bucketOff:])
		if math.IsInf(bucket, -1) {
			// Sentinel: report this candidate's achieved error estimate.
			ans := st.answer
			if !st.found {
				// Fewer total nodes than the budget: everything retained.
				ans = 0
			}
			return emit(mr.EncodeUint64(uint64(cand)), mr.EncodeFloat64(ans))
		}
		var count int
		for _, v := range values {
			c, n := mr.Uvarint(v)
			if n <= 0 {
				return fmt.Errorf("dist: malformed histogram count value")
			}
			count += int(c)
		}
		target := budget - cand // 0-based position of the first non-retained node
		if !st.found && st.cum+count > target {
			st.answer = bucket
			st.found = true
		}
		st.cum += count
		return nil
	}
}

// dgreedyHistMap builds the level-1 map function of job 1: one greedy run
// per distinct incoming error, emitted as per-candidate error-bucket
// histograms. All inputs are serializable, so the cluster variant
// reconstructs the identical function from job parameters.
func dgreedyHistMap(src Source, n, s int, rootCoef []float64, rootOrder []int, maxCand int, eb float64, rel bool, sanity float64) mr.MapFunc {
	part, perr := errtree.PartitionRootBase(n, s)
	return func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
		if perr != nil {
			return perr
		}
		j, err := chunkIndex(split)
		if err != nil {
			return err
		}
		chunk, err := src.Chunk(j*s, (j+1)*s)
		if err != nil {
			return err
		}
		details, _, err := wavelet.LocalTransform(chunk)
		if err != nil {
			return err
		}
		var den []float64
		if rel {
			den = greedy.Denominators(chunk, sanity)
		}
		signs := part.RootPathSigns(j)
		// Incoming error per candidate, updated incrementally as the
		// retained suffix grows.
		eIn := 0.0
		for node, sign := range signs {
			eIn -= float64(sign) * rootCoef[node]
		}
		cache := map[float64][]histEntry{}
		runHist := func(e float64) ([]histEntry, error) {
			if h, ok := cache[e]; ok {
				return h, nil
			}
			obsGreedyRuns.Inc()
			ctx.Counters.Add("dgreedy.greedy_runs", 1)
			var steps []greedy.Step
			var err error
			if rel {
				steps, err = greedy.RunRel(details, den, greedy.Options{InitialErr: e})
			} else {
				steps, err = greedy.RunAbs(details, greedy.Options{InitialErr: e})
			}
			if err != nil {
				return nil, err
			}
			h := bucketize(steps, eb)
			cache[e] = h
			return h, nil
		}
		var kbuf, vbuf []byte // reused across emits: the engine copies
		for i := 0; i <= maxCand; i++ {
			if i > 0 {
				// Candidate i additionally retains the node discarded at
				// step R - i of the root run.
				node := rootOrder[len(rootOrder)-i]
				if sign, ok := signs[node]; ok {
					eIn += float64(sign) * rootCoef[node]
				}
			}
			hist, err := runHist(eIn)
			if err != nil {
				return err
			}
			for _, h := range hist {
				kbuf = appendHistKey(kbuf[:0], i, h.Bucket)
				vbuf = mr.AppendUvarint(vbuf[:0], uint64(h.Count))
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
				ctx.Counters.Add("dgreedy.hist_records", 1)
			}
			if j == 0 {
				// Sentinel closing candidate i's stream (sorts last).
				kbuf = appendHistKey(kbuf[:0], i, math.Inf(-1))
				vbuf = mr.AppendUvarint(vbuf[:0], 0)
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// dgreedySelectMap builds the map function of job 2: a single greedy run
// per base sub-tree for the winning candidate, emitting only node groups
// whose bucketed running-max error clears the winning estimate.
func dgreedySelectMap(src Source, n, s int, rootCoef []float64, retainRoot map[int]bool, cutoff, eb float64, rel bool, sanity float64) mr.MapFunc {
	part, perr := errtree.PartitionRootBase(n, s)
	return func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
		if perr != nil {
			return perr
		}
		j, err := chunkIndex(split)
		if err != nil {
			return err
		}
		chunk, err := src.Chunk(j*s, (j+1)*s)
		if err != nil {
			return err
		}
		details, _, err := wavelet.LocalTransform(chunk)
		if err != nil {
			return err
		}
		eIn := part.IncomingError(j, rootCoef, retainRoot)
		var steps []greedy.Step
		if rel {
			steps, err = greedy.RunRel(details, greedy.Denominators(chunk, sanity), greedy.Options{InitialErr: eIn})
		} else {
			steps, err = greedy.RunAbs(details, greedy.Options{InitialErr: eIn})
		}
		if err != nil {
			return err
		}
		// Emit groups (bucketed running max, node list), skipping groups
		// below the winning error (they are never retained).
		runMax := math.Inf(-1)
		groupStart := 0
		flush := func(end int, bucket float64) error {
			if end == groupStart || bucket < cutoff {
				groupStart = end
				return nil
			}
			entry := selEntry{}
			for _, st := range steps[groupStart:end] {
				entry.Indices = append(entry.Indices, wavelet.GlobalIndex(n, s, j, st.Index))
				entry.Values = append(entry.Values, details[st.Index])
			}
			groupStart = end
			ctx.Counters.Add("dgreedy.select_groups", 1)
			return emit(mr.EncodeFloat64(-bucket), appendSelEntry(nil, entry))
		}
		curBucket := math.Inf(-1)
		for t, st := range steps {
			if st.Err > runMax {
				runMax = st.Err
			}
			b := math.Floor(runMax/eb) * eb
			if b != curBucket {
				if err := flush(t, curBucket); err != nil {
					return err
				}
				curBucket = b
			}
		}
		return flush(len(steps), curBucket)
	}
}
