package dist

import (
	"math"
	"reflect"
	"testing"

	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
)

// The partitioning granularity is an execution detail: results must be
// invariant (CON exactly; the greedy within bucket tolerance) across
// sub-tree sizes — the property behind Figure 5a's flat lines.

func TestCONInvariantToSubtreeSize(t *testing.T) {
	data := randData(101, 512, 1000)
	src := SliceSource(data)
	var want []int
	for _, s := range []int{4, 16, 64, 256} {
		rep, err := CON(src, 64, Config{SubtreeLeaves: s})
		if err != nil {
			t.Fatal(err)
		}
		got := termIndices(rep.Synopsis)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("s=%d: %v != %v", s, got, want)
		}
	}
}

func TestDGreedyAbsStableAcrossSubtreeSizes(t *testing.T) {
	data := randData(103, 512, 1000)
	src := SliceSource(data)
	var errs []float64
	for _, s := range []int{16, 32, 64, 128} {
		rep, err := DGreedyAbs(src, 64, Config{SubtreeLeaves: s})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, rep.MaxErr)
	}
	lo, hi := errs[0], errs[0]
	for _, e := range errs {
		lo, hi = math.Min(lo, e), math.Max(hi, e)
	}
	if hi > lo*1.1+1e-9 {
		t.Fatalf("error varies too much across sub-tree sizes: %v", errs)
	}
}

func TestDMHaarSpaceSizeInvariantToSubtreeSize(t *testing.T) {
	data := randData(105, 256, 400)
	p := dp.Params{Epsilon: 25, Delta: 1}
	var want int = -1
	for _, s := range []int{4, 16, 64} {
		res, err := DMHaarSpace(SliceSource(data), p, Config{SubtreeLeaves: s})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("s=%d infeasible", s)
		}
		if want < 0 {
			want = res.Synopsis.Size()
			continue
		}
		if res.Synopsis.Size() != want {
			t.Fatalf("s=%d: size %d != %d", s, res.Synopsis.Size(), want)
		}
	}
}

func TestJobTaskCountsMatchPartitioning(t *testing.T) {
	n, s := 256, 16
	data := randData(107, n, 100)
	rep, err := DGreedyAbs(SliceSource(data), 32, Config{SubtreeLeaves: s})
	if err != nil {
		t.Fatal(err)
	}
	// Jobs: chunk-means, histogram, select, evaluate — each with one map
	// task per base sub-tree.
	if len(rep.Jobs) != 4 {
		t.Fatalf("jobs = %d, want 4", len(rep.Jobs))
	}
	for i, j := range rep.Jobs {
		if j.MapTasks != n/s {
			t.Fatalf("job %d (%s): %d map tasks, want %d", i, j.Job, j.MapTasks, n/s)
		}
	}
	if rep.Jobs[1].ReduceTasks != 4 {
		t.Fatalf("histogram job reducers = %d, want 4 (paper's default)", rep.Jobs[1].ReduceTasks)
	}
}

func TestHWTopkSmallBudgetShufflesLessThanLarge(t *testing.T) {
	// The Figure 10 vs Figure 11 story: H-WTopk's communication explodes
	// with B (each mapper ships its 2B extremes) but stays tiny at B=50.
	data := randData(109, 1024, 5000)
	src := SliceSource(data)
	cfg := Config{SubtreeLeaves: 64}
	small, err := HWTopk(src, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	large, err := HWTopk(src, 128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if small.TotalShuffleBytes() >= large.TotalShuffleBytes() {
		t.Fatalf("B=8 shuffled %d >= B=128's %d", small.TotalShuffleBytes(), large.TotalShuffleBytes())
	}
}

func TestSendVShufflesRawDataVolume(t *testing.T) {
	data := randData(111, 512, 100)
	rep, err := SendV(SliceSource(data), 64, Config{SubtreeLeaves: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Send-V ships every raw value; gob packs small floats tightly, but the
	// volume must still grow with N (at least ~2 bytes per value) and one
	// record per chunk must cross the shuffle.
	if rep.TotalShuffleBytes() < int64(2*len(data)) {
		t.Fatalf("Send-V shuffled only %d bytes for %d values", rep.TotalShuffleBytes(), len(data))
	}
	if rep.Jobs[0].ShuffleRecords != int64(len(data)/32) {
		t.Fatalf("Send-V shuffled %d records, want one per chunk (%d)", rep.Jobs[0].ShuffleRecords, len(data)/32)
	}
}

func TestDGreedyAbsBudgetOne(t *testing.T) {
	data := randData(113, 64, 100)
	rep, err := DGreedyAbs(SliceSource(data), 1, Config{SubtreeLeaves: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Synopsis.Size() > 1 {
		t.Fatalf("size %d > 1", rep.Synopsis.Size())
	}
	actual := synopsis.MaxAbsError(rep.Synopsis, data)
	if math.Abs(actual-rep.MaxErr) > 1e-9*(1+actual) {
		t.Fatalf("reported %g actual %g", rep.MaxErr, actual)
	}
}

func TestDGreedyAbsRejectsBadConfig(t *testing.T) {
	data := randData(115, 64, 100)
	if _, err := DGreedyAbs(SliceSource(data), 0, Config{SubtreeLeaves: 8}); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := DGreedyAbs(SliceSource(data), 8, Config{SubtreeLeaves: 6}); err == nil {
		t.Error("non-power-of-two sub-tree accepted")
	}
	if _, err := DGreedyAbs(SliceSource(data), 8, Config{SubtreeLeaves: 64}); err == nil {
		t.Error("sub-tree == n accepted")
	}
	if _, err := DGreedyAbs(SliceSource(data[:63]), 8, Config{SubtreeLeaves: 8}); err == nil {
		t.Error("non-power-of-two input accepted")
	}
}

func TestReportMakespanMonotone(t *testing.T) {
	data := randData(117, 256, 100)
	rep, err := DGreedyAbs(SliceSource(data), 32, Config{SubtreeLeaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	m40 := rep.Makespan(40, 4)
	m10 := rep.Makespan(10, 4)
	m1 := rep.Makespan(1, 1)
	if !(m40 <= m10 && m10 <= m1) {
		t.Fatalf("makespans not monotone: 40→%v 10→%v 1→%v", m40, m10, m1)
	}
}

func TestDGreedyAbsOverSpillingEngine(t *testing.T) {
	// The external-shuffle engine must be a drop-in replacement.
	data := randData(211, 256, 800)
	src := SliceSource(data)
	base, err := DGreedyAbs(src, 32, Config{SubtreeLeaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	spillEng := &mr.Local{SpillThreshold: 32, SpillDir: t.TempDir()}
	spill, err := DGreedyAbs(src, 32, Config{SubtreeLeaves: 16, Engine: spillEng})
	if err != nil {
		t.Fatal(err)
	}
	if spill.MaxErr != base.MaxErr {
		t.Fatalf("spilling engine changed the result: %g vs %g", spill.MaxErr, base.MaxErr)
	}
	if !reflect.DeepEqual(termIndices(spill.Synopsis), termIndices(base.Synopsis)) {
		t.Fatal("spilling engine changed the synopsis")
	}
}
