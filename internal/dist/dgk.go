package dist

import (
	"fmt"
	"math"
	"sort"

	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/errtree"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// DGK applies the Section 4 framework to the Garofalakis-Kumar DP —
// the second demonstration (besides DMHaarSpace) that the layered
// error-tree decomposition parallelizes *any* of the bottom-up DP
// algorithms. Level-1 workers compute the GK M-row of their base sub-tree
// for every reachable incoming error and budget 0..B; the driver combines
// the rows up through the root sub-tree (Figure 2's budget-split scan) and
// a second job re-enters each base sub-problem to materialize the
// synopsis.
//
// The rows of this DP are indexed by budget as well as incoming value —
// the O(B·#values) |M[j]| blow-up the paper cites (Section 4's discussion
// of Equation 6) as the reason to prefer the dual problem. DGK exists to
// exhibit exactly that: compare its shuffle volume with DMHaarSpace's in
// the communication experiment. It is exact but exponential in the root
// sub-tree depth through the incoming-value enumeration, so it is bounded
// to oracle-scale inputs.

// DGKMaxRootNodes bounds the root sub-tree size (incoming values are
// enumerated over its 2^depth drop-subsets).
const DGKMaxRootNodes = 64

// gkDriverVal memoizes the driver-side combine over the root sub-tree.
type gkDriverVal struct {
	err  float64
	keep bool
	bl   int
}

// DGKResult is the outcome of a DGK run.
type DGKResult struct {
	Synopsis *synopsis.Synopsis
	MaxAbs   float64
	Jobs     []mr.Metrics
}

// DGK solves Problem 1 exactly for restricted synopses with the
// distributed GK DP. Intended for small inputs (see DGKMaxRootNodes).
func DGK(src Source, budget int, cfg Config) (*DGKResult, error) {
	n := src.N()
	if err := padCheck(n); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("dist: negative budget %d", budget)
	}
	s, err := cfg.subtreeLeaves(n)
	if err != nil {
		return nil, err
	}
	r := n / s
	if r > DGKMaxRootNodes {
		return nil, fmt.Errorf("dist: DGK root sub-tree of %d nodes exceeds the oracle bound %d (increase SubtreeLeaves)", r, DGKMaxRootNodes)
	}
	eng := cfg.engine()
	res := &DGKResult{}

	means, meansMetrics, err := ChunkMeans(src, s, eng)
	if err != nil {
		return nil, err
	}
	res.Jobs = append(res.Jobs, meansMetrics)
	rootCoef, err := wavelet.Transform(means)
	if err != nil {
		return nil, err
	}

	// Reachable incoming errors per base sub-tree: all drop-subsets of its
	// root path (each ancestor either kept, contributing 0, or dropped,
	// contributing -sign*c).
	part, err := errtree.PartitionRootBase(n, s)
	if err != nil {
		return nil, err
	}
	baseEs := make([][]float64, r)
	for j := 0; j < r; j++ {
		signs := part.RootPathSigns(j)
		type pathNode struct {
			node int
			sign int
		}
		var path []pathNode
		for node, sign := range signs {
			path = append(path, pathNode{node, sign})
		}
		sort.Slice(path, func(a, b int) bool { return path[a].node < path[b].node })
		es := []float64{0}
		for _, pn := range path {
			contribution := -float64(pn.sign) * rootCoef[pn.node]
			cur := es
			for _, e := range cur {
				es = append(es, e+contribution)
			}
		}
		baseEs[j] = dedupFloats(es)
	}

	// Cap per-sub-tree budget: a base sub-tree has s-1 nodes.
	maxB := budget
	if maxB > s-1 {
		maxB = s - 1
	}

	// ---- Job 1: base sub-tree GK rows ----
	rows := make([]dp.GKRow, r)
	rowJob := &mr.Job{
		Name:   "dgk-rows",
		Splits: chunkSplits(n, s),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			j, err := chunkIndex(split)
			if err != nil {
				return err
			}
			chunk, err := src.Chunk(j*s, (j+1)*s)
			if err != nil {
				return err
			}
			details, _, err := wavelet.LocalTransform(chunk)
			if err != nil {
				return err
			}
			row := dp.GKSubtreeRow(details, 1, baseEs[j], maxB)
			return emit(mr.EncodeUint64(uint64(j)), appendGKRow(nil, row))
		},
		Reducers: 1,
	}
	rowRes, err := runJob(eng, rowJob, cfg.Trace)
	if err != nil {
		return nil, err
	}
	res.Jobs = append(res.Jobs, rowRes.Metrics)
	for _, kv := range rowRes.Partitions[0] {
		row, err := decodeGKRow(kv.Value)
		if err != nil {
			return nil, err
		}
		rows[int(mr.DecodeUint64(kv.Key))] = row
	}

	// ---- Driver: combine up through the root sub-tree ----
	memo := map[gkKeyD]gkDriverVal{}
	var solve func(node int, e float64, b int) float64
	solve = func(node int, e float64, b int) float64 {
		if b < 0 {
			return math.Inf(1)
		}
		if node >= r {
			// Base sub-tree root: look up its shipped row.
			row := rows[node-r]
			vals, ok := row.Err[e]
			if !ok {
				return math.Inf(1)
			}
			if b >= len(vals) {
				b = len(vals) - 1
			}
			return vals[b]
		}
		if b > n-1 { // never need more than all nodes
			b = n - 1
		}
		key := gkKeyD{node, e, b}
		if v, ok := memo[key]; ok {
			return v.err
		}
		c := rootCoef[node]
		l, rr := 2*node, 2*node+1
		v := gkDriverVal{err: math.Inf(1)}
		if b >= 1 {
			for bl := 0; bl <= b-1; bl++ {
				if got := math.Max(solve(l, e, bl), solve(rr, e, b-1-bl)); got < v.err {
					v = gkDriverVal{err: got, keep: true, bl: bl}
				}
			}
		}
		for bl := 0; bl <= b; bl++ {
			if got := math.Max(solve(l, e-c, bl), solve(rr, e+c, b-bl)); got < v.err {
				v = gkDriverVal{err: got, keep: false, bl: bl}
			}
		}
		memo[key] = v
		return v.err
	}
	keepErr, dropErr := math.Inf(1), solve(1, -rootCoef[0], budget)
	if budget >= 1 {
		keepErr = solve(1, 0, budget-1)
	}
	syn := synopsis.New(n)
	best := dropErr
	type baseTask struct {
		E float64
		B int
	}
	baseAssign := map[int]baseTask{}
	var walk func(node int, e float64, b int)
	walk = func(node int, e float64, b int) {
		if node >= r {
			baseAssign[node] = baseTask{E: e, B: b}
			return
		}
		v, ok := memo[gkKeyD{node, e, b}]
		if !ok {
			return
		}
		c := rootCoef[node]
		if v.keep {
			if c != 0 {
				syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: node, Value: c})
			}
			walk(2*node, e, v.bl)
			walk(2*node+1, e, b-1-v.bl)
			return
		}
		walk(2*node, e-c, v.bl)
		walk(2*node+1, e+c, b-v.bl)
	}
	if keepErr <= dropErr {
		best = keepErr
		if rootCoef[0] != 0 {
			syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: 0, Value: rootCoef[0]})
		}
		walk(1, 0, budget-1)
	} else {
		walk(1, -rootCoef[0], budget)
	}

	// ---- Job 2: re-enter each base sub-problem with its (e, b) ----
	selJob := &mr.Job{
		Name:   "dgk-select",
		Splits: chunkSplits(n, s),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			j, err := chunkIndex(split)
			if err != nil {
				return err
			}
			assign, ok := baseAssign[r+j]
			if !ok {
				return fmt.Errorf("dist: base %d received no assignment", j)
			}
			e, b := assign.E, assign.B
			chunk, err := src.Chunk(j*s, (j+1)*s)
			if err != nil {
				return err
			}
			details, _, err := wavelet.LocalTransform(chunk)
			if err != nil {
				return err
			}
			local, err := dp.GKReconstruct(details, 1, e, b)
			if err != nil {
				return err
			}
			var kbuf, vbuf []byte // reused across emits: the engine copies
			for _, term := range local {
				gi := wavelet.GlobalIndex(n, s, j, term.Index)
				kbuf = mr.AppendOrderedUvarint(kbuf[:0], uint64(gi))
				vbuf = mr.AppendFloat64(vbuf[:0], term.Value)
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
			}
			return nil
		},
		Reducers: 1,
	}
	selRes, err := runJob(eng, selJob, cfg.Trace)
	if err != nil {
		return nil, err
	}
	res.Jobs = append(res.Jobs, selRes.Metrics)
	for _, kv := range selRes.Partitions[0] {
		gi, nb := mr.OrderedUvarint(kv.Key)
		if nb != len(kv.Key) {
			return nil, fmt.Errorf("dist: malformed %d-byte DGK select key", len(kv.Key))
		}
		syn.Terms = append(syn.Terms, synopsis.Coefficient{
			Index: int(gi), Value: mr.DecodeFloat64(kv.Value),
		})
	}
	syn.Normalize()
	res.Synopsis = syn
	res.MaxAbs = best
	return res, nil
}

type gkKeyD struct {
	node int
	e    float64
	b    int
}

func dedupFloats(xs []float64) []float64 {
	sort.Float64s(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
