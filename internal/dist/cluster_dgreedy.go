package dist

import (
	"fmt"
	"math"

	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// Cluster DGreedyAbs: the full Algorithm 6 pipeline with every job running
// on TCP workers. The drivers of the local variant capture closures; here
// each job is reconstructed on every node from serializable parameters
// (file path, sub-tree size, root-run outputs), exactly like shipping a
// job JAR plus its configuration.

// Registered job names.
const (
	meansJobName       = "dist/chunk-means"
	dgreedyHistJobName = "dist/dgreedy-hist"
	dgreedySelJobName  = "dist/dgreedy-select"
	evalJobName        = "dist/evaluate-maxabs"
)

// meansParams parameterizes the chunk-means job.
type meansParams struct {
	Path string
	S    int
}

// histParams parameterizes the speculative histogram job.
type histParams struct {
	Path      string
	S         int
	Budget    int
	MaxCand   int
	Eb        float64
	RootCoef  []float64
	RootOrder []int
	Reducers  int
}

// selParams parameterizes the synopsis materialization job.
type selParams struct {
	Path       string
	S          int
	RootCoef   []float64
	RetainRoot []int
	Cutoff     float64
	Eb         float64
}

// evalParams parameterizes the error measurement job.
type evalParams struct {
	Path  string
	Chunk int
	Terms []synopsis.Coefficient
	N     int
}

func fileSourceFor(path string) (Source, int, error) {
	src, err := NewFileSource(path)
	if err != nil {
		return nil, 0, err
	}
	n := src.N()
	if !wavelet.IsPowerOfTwo(n) {
		return nil, 0, fmt.Errorf("dist: %s holds %d values (not a power of two)", path, n)
	}
	return src, n, nil
}

func init() {
	mr.RegisterJob(meansJobName, func(params []byte) (*mr.Job, error) {
		var p meansParams
		if err := mr.GobDecode(params, &p); err != nil {
			return nil, err
		}
		src, n, err := fileSourceFor(p.Path)
		if err != nil {
			return nil, err
		}
		return chunkMeansJob(src, n, p.S), nil
	})
	mr.RegisterJob(dgreedyHistJobName, func(params []byte) (*mr.Job, error) {
		var p histParams
		if err := mr.GobDecode(params, &p); err != nil {
			return nil, err
		}
		src, n, err := fileSourceFor(p.Path)
		if err != nil {
			return nil, err
		}
		return &mr.Job{
			Name:      "dgreedy-hist",
			Splits:    chunkSplits(n, p.S),
			Reducers:  p.Reducers,
			Partition: histPartition,
			Map:       dgreedyHistMap(src, n, p.S, p.RootCoef, p.RootOrder, p.MaxCand, p.Eb, false, 1),
			Reduce:    makeCombineResults(p.Budget),
		}, nil
	})
	mr.RegisterJob(dgreedySelJobName, func(params []byte) (*mr.Job, error) {
		var p selParams
		if err := mr.GobDecode(params, &p); err != nil {
			return nil, err
		}
		src, n, err := fileSourceFor(p.Path)
		if err != nil {
			return nil, err
		}
		retain := map[int]bool{}
		for _, node := range p.RetainRoot {
			retain[node] = true
		}
		return &mr.Job{
			Name:     "dgreedy-select",
			Splits:   chunkSplits(n, p.S),
			Map:      dgreedySelectMap(src, n, p.S, p.RootCoef, retain, p.Cutoff, p.Eb, false, 1),
			Reducers: 1,
		}, nil
	})
	mr.RegisterJob(evalJobName, func(params []byte) (*mr.Job, error) {
		var p evalParams
		if err := mr.GobDecode(params, &p); err != nil {
			return nil, err
		}
		src, n, err := fileSourceFor(p.Path)
		if err != nil {
			return nil, err
		}
		if n != p.N {
			return nil, fmt.Errorf("dist: eval over %d values but file holds %d", p.N, n)
		}
		syn := synopsis.New(p.N)
		syn.Terms = p.Terms
		return evaluateMaxJob(src, syn, p.Chunk, 0), nil
	})
}

// chunkMeansJob is the shared construction of the chunk-means job.
func chunkMeansJob(src Source, n, s int) *mr.Job {
	return &mr.Job{
		Name:   "chunk-means",
		Splits: chunkSplits(n, s),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			chunk, err := src.Chunk(idx*s, (idx+1)*s)
			if err != nil {
				return err
			}
			var sum float64
			for _, v := range chunk {
				sum += v
			}
			ctx.Counters.Add("means.rows_read", int64(len(chunk)))
			return emit(mr.EncodeUint64(uint64(idx)), mr.EncodeFloat64(sum/float64(s)))
		},
		Reducers: 1,
	}
}

// DGreedyAbsCluster runs the full DGreedyAbs pipeline across a TCP worker
// cluster over a shared binary dataset file. subtreeLeaves and bucketWidth
// follow Config semantics (bucketWidth 0 derives a width from the root
// run).
func DGreedyAbsCluster(c *mr.Coordinator, path string, budget, subtreeLeaves int, bucketWidth float64) (*Report, error) {
	return DGreedyAbsClusterWith(c, path, budget, Config{
		SubtreeLeaves: subtreeLeaves, BucketWidth: bucketWidth,
	})
}

// DGreedyAbsClusterWith is DGreedyAbsCluster with a full Config: it honors
// SubtreeLeaves, BucketWidth, and Checkpoint (the histogram job's output —
// the pipeline's dominant cost — is recorded so a restarted driver resumes
// at candidate selection). Engine, Reducers, and the DP knobs are ignored;
// the coordinator and the registered cluster jobs fix them.
func DGreedyAbsClusterWith(c *mr.Coordinator, path string, budget int, cfg Config) (*Report, error) {
	if budget < 1 {
		return nil, fmt.Errorf("dist: budget %d < 1", budget)
	}
	_, n, err := fileSourceFor(path)
	if err != nil {
		return nil, err
	}
	s, err := cfg.subtreeLeaves(n)
	if err != nil {
		return nil, err
	}
	bucketWidth := cfg.BucketWidth
	r := n / s
	report := &Report{}

	// Job 1: chunk means (cluster).
	meansRes, err := c.Run(meansJobName, mr.MustGobEncode(meansParams{Path: path, S: s}))
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, meansRes.Metrics)
	means := make([]float64, r)
	for _, kv := range meansRes.Partitions[0] {
		means[mr.DecodeUint64(kv.Key)] = mr.DecodeFloat64(kv.Value)
	}
	rootCoef, err := wavelet.Transform(means)
	if err != nil {
		return nil, err
	}
	rootSteps, err := greedy.RunAbs(rootCoef, greedy.Options{HasRoot: true})
	if err != nil {
		return nil, err
	}
	rootOrder := make([]int, len(rootSteps))
	for i, st := range rootSteps {
		rootOrder[i] = st.Index
	}
	maxCand := r
	if budget < maxCand {
		maxCand = budget
	}
	eb := bucketWidth
	if eb <= 0 {
		scale := 0.0
		for _, st := range rootSteps {
			if st.Err > scale {
				scale = st.Err
			}
		}
		for _, cc := range rootCoef {
			if v := math.Abs(cc); v > scale {
				scale = v
			}
		}
		if scale == 0 {
			scale = 1
		}
		eb = scale / 4096
	}

	// Job 2: speculative histograms + combineResults (cluster).
	obsGreedyCandidates.Add(int64(maxCand + 1))
	var histParts [][]mr.Pair
	histKey := ""
	if cfg.Checkpoint != nil {
		histKey = dgreedyHistKey(n, s, budget, eb, false, 1)
		body, ok, err := checkpointGet(cfg.Checkpoint, histKey)
		if err != nil {
			return nil, err
		}
		if ok {
			if histParts, err = decodePartitions(body); err != nil {
				return nil, err
			}
		}
	}
	if histParts == nil {
		histRes, err := c.Run(dgreedyHistJobName, mr.MustGobEncode(histParams{
			Path: path, S: s, Budget: budget, MaxCand: maxCand, Eb: eb,
			RootCoef: rootCoef, RootOrder: rootOrder, Reducers: 4,
		}))
		if err != nil {
			return nil, err
		}
		report.Jobs = append(report.Jobs, histRes.Metrics)
		histParts = histRes.Partitions
		if histKey != "" {
			if err := checkpointPut(cfg.Checkpoint, histKey, appendPartitions(nil, histParts)); err != nil {
				return nil, err
			}
		}
	}
	bestI, minError := -1, math.Inf(1)
	for _, partPairs := range histParts {
		for _, kv := range partPairs {
			i := int(mr.DecodeUint64(kv.Key))
			e := mr.DecodeFloat64(kv.Value)
			if e < minError || (e == minError && i < bestI) {
				bestI, minError = i, e
			}
		}
	}
	if bestI < 0 {
		return nil, fmt.Errorf("dist: cluster combineResults produced no candidate")
	}
	retained := rootOrder[len(rootOrder)-bestI:]

	// Job 3: materialize the synopsis (cluster).
	selRes, err := c.Run(dgreedySelJobName, mr.MustGobEncode(selParams{
		Path: path, S: s, RootCoef: rootCoef, RetainRoot: retained,
		Cutoff: minError - 2*eb, Eb: eb,
	}))
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, selRes.Metrics)
	syn := synopsis.New(n)
	for _, node := range retained {
		if rootCoef[node] != 0 {
			syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: node, Value: rootCoef[node]})
		}
	}
	want := budget - bestI
	taken := 0
	for _, kv := range selRes.Partitions[0] {
		if taken >= want {
			break
		}
		entry, err := decodeSelEntry(kv.Value)
		if err != nil {
			return nil, err
		}
		for k := len(entry.Indices) - 1; k >= 0 && taken < want; k-- {
			if entry.Values[k] == 0 {
				continue
			}
			syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: entry.Indices[k], Value: entry.Values[k]})
			taken++
		}
	}
	syn.Normalize()
	report.Synopsis = syn

	// Job 4: measure the exact error (cluster).
	evalRes, err := c.Run(evalJobName, mr.MustGobEncode(evalParams{
		Path: path, Chunk: s, Terms: syn.Terms, N: n,
	}))
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, evalRes.Metrics)
	if len(evalRes.Partitions[0]) != 1 {
		return nil, fmt.Errorf("dist: cluster eval produced %d outputs", len(evalRes.Partitions[0]))
	}
	report.MaxErr = mr.DecodeFloat64(evalRes.Partitions[0][0].Value)
	return report, nil
}
