package dist

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

func randData(seed int64, n int, scale float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Trunc(rng.Float64() * scale)
	}
	return data
}

func termIndices(s *synopsis.Synopsis) []int {
	idx := make([]int, 0, s.Size())
	for _, t := range s.Terms {
		idx = append(idx, t.Index)
	}
	sort.Ints(idx)
	return idx
}

func TestSliceSource(t *testing.T) {
	src := SliceSource([]float64{1, 2, 3, 4})
	if src.N() != 4 {
		t.Fatal("N")
	}
	c, err := src.Chunk(1, 3)
	if err != nil || len(c) != 2 || c[0] != 2 {
		t.Fatalf("chunk %v err %v", c, err)
	}
	if _, err := src.Chunk(-1, 2); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := src.Chunk(2, 5); err == nil {
		t.Fatal("hi out of range accepted")
	}
}

func TestFileSourceMatchesSlice(t *testing.T) {
	data := randData(1, 256, 100)
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := dataset.SaveBinary(path, data); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.N() != 256 {
		t.Fatalf("N = %d", fs.N())
	}
	for _, r := range [][2]int{{0, 256}, {5, 9}, {128, 256}, {7, 7}} {
		got, err := fs.Chunk(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, data[r[0]:r[1]]) {
			t.Fatalf("chunk %v differs", r)
		}
	}
	if _, err := fs.Chunk(0, 500); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestChunkMeans(t *testing.T) {
	data := []float64{1, 3, 5, 7, 2, 2, 10, 10}
	means, _, err := ChunkMeans(SliceSource(data), 2, &mr.Local{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 2, 10}
	if !reflect.DeepEqual(means, want) {
		t.Fatalf("means = %v, want %v", means, want)
	}
}

func TestEvaluateMaxAbsMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 1 << (3 + rng.Intn(4))
		data := randData(int64(trial), n, 500)
		w, _ := wavelet.Transform(data)
		var idx []int
		for i := range w {
			if rng.Intn(3) == 0 {
				idx = append(idx, i)
			}
		}
		syn := synopsis.FromIndices(w, idx)
		for _, chunk := range []int{2, 4, n / 2} {
			got, _, err := EvaluateMaxAbs(SliceSource(data), syn, chunk, &mr.Local{})
			if err != nil {
				t.Fatal(err)
			}
			want := synopsis.MaxAbsError(syn, data)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d chunk %d: got %g want %g", trial, chunk, got, want)
			}
		}
	}
}

func TestEvaluateMaxRelMatchesDirect(t *testing.T) {
	data := randData(9, 64, 300)
	w, _ := wavelet.Transform(data)
	syn := synopsis.FromIndices(w, []int{0, 1, 5, 9, 33})
	got, _, err := EvaluateMaxRel(SliceSource(data), syn, 8, &mr.Local{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := synopsis.MaxRelError(syn, data, 2)
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("got %g want %g", got, want)
	}
}

// All four conventional-synopsis algorithms must produce exactly the
// synopsis of the centralized significance selection (Appendix A.5).
func TestConventionalAlgorithmsAgree(t *testing.T) {
	for _, tc := range []struct {
		n, s, b int
		seed    int64
	}{
		{64, 8, 8, 1},
		{128, 16, 16, 2},
		{256, 16, 32, 3},
		{64, 4, 50, 4},
	} {
		data := randData(tc.seed, tc.n, 1000)
		src := SliceSource(data)
		cfg := Config{SubtreeLeaves: tc.s}
		w, _ := wavelet.Transform(data)
		want := synopsis.Conventional(w, tc.b)

		con, err := CON(src, tc.b, cfg)
		if err != nil {
			t.Fatalf("CON: %v", err)
		}
		sendv, err := SendV(src, tc.b, cfg)
		if err != nil {
			t.Fatalf("SendV: %v", err)
		}
		sendc, err := SendCoef(src, tc.b, 0, cfg)
		if err != nil {
			t.Fatalf("SendCoef: %v", err)
		}
		hw, err := HWTopk(src, tc.b, cfg)
		if err != nil {
			t.Fatalf("HWTopk: %v", err)
		}
		for name, got := range map[string]*synopsis.Synopsis{
			"CON": con.Synopsis, "SendV": sendv.Synopsis, "SendCoef": sendc.Synopsis, "HWTopk": hw.Synopsis,
		} {
			if !reflect.DeepEqual(termIndices(got), termIndices(want)) {
				t.Fatalf("%v %s indices %v != conventional %v", tc, name, termIndices(got), termIndices(want))
			}
			gm, wm := got.Map(), want.Map()
			for i, v := range wm {
				if math.Abs(gm[i]-v) > 1e-6*(1+math.Abs(v)) {
					t.Fatalf("%v %s value at %d: %g vs %g", tc, name, i, gm[i], v)
				}
			}
		}
	}
}

func TestCONShufflesLessThanSendCoef(t *testing.T) {
	data := randData(7, 512, 1000)
	src := SliceSource(data)
	cfg := Config{SubtreeLeaves: 32}
	con, err := CON(src, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sendc, err := SendCoef(src, 64, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if con.TotalShuffleBytes() >= sendc.TotalShuffleBytes() {
		t.Fatalf("CON shuffled %d >= Send-Coef %d; locality advantage lost",
			con.TotalShuffleBytes(), sendc.TotalShuffleBytes())
	}
}

func TestDGreedyAbsMatchesCentralizedQuality(t *testing.T) {
	for _, tc := range []struct {
		n, s, b int
		seed    int64
	}{
		{64, 8, 8, 11},
		{128, 16, 16, 12},
		{256, 32, 32, 13},
		{256, 16, 64, 14},
		{512, 64, 64, 15},
	} {
		data := randData(tc.seed, tc.n, 1000)
		rep, err := DGreedyAbs(SliceSource(data), tc.b, Config{SubtreeLeaves: tc.s})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if rep.Synopsis.Size() > tc.b {
			t.Fatalf("%+v: size %d > budget", tc, rep.Synopsis.Size())
		}
		actual := synopsis.MaxAbsError(rep.Synopsis, data)
		if math.Abs(actual-rep.MaxErr) > 1e-9*(1+actual) {
			t.Fatalf("%+v: reported %g actual %g", tc, rep.MaxErr, actual)
		}
		_, central, err := greedy.SynopsisAbs(data, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		// Section 6.3: DGreedyAbs achieves the same maximum absolute error
		// as GreedyAbs (small tolerance for bucket rounding).
		if rep.MaxErr > central*1.05+1e-9 {
			t.Fatalf("%+v: distributed %g much worse than centralized %g", tc, rep.MaxErr, central)
		}
	}
}

func TestDGreedyAbsBeatsConventional(t *testing.T) {
	// Figure 8b: the greedy max-error synopsis is substantially more
	// accurate than the conventional one on hard data.
	data := dataset.NYCTLike{}.Generate(1<<10, 5)
	src := SliceSource(data)
	cfg := Config{SubtreeLeaves: 64}
	b := 128
	dg, err := DGreedyAbs(src, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	con, err := CON(src, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	conErr := synopsis.MaxAbsError(con.Synopsis, data)
	if dg.MaxErr > conErr {
		t.Fatalf("DGreedyAbs %g worse than conventional %g", dg.MaxErr, conErr)
	}
}

func TestDGreedyRelMatchesCentralized(t *testing.T) {
	// In the paper's operating regime (budget a meaningful fraction of N,
	// reasonably smooth data) the distributed relative-error greedy matches
	// the centralized GreedyRel.
	data := dataset.WDLike{}.Generate(256, 3)
	for i := range data {
		data[i] += 50
	}
	for _, b := range []int{32, 64, 96} {
		rep, err := DGreedyRel(SliceSource(data), b, Config{SubtreeLeaves: 32, Sanity: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Synopsis.Size() > b {
			t.Fatalf("B=%d: size %d", b, rep.Synopsis.Size())
		}
		actual := synopsis.MaxRelError(rep.Synopsis, data, 1)
		if math.Abs(actual-rep.MaxErr) > 1e-9*(1+actual) {
			t.Fatalf("B=%d: reported %g actual %g", b, rep.MaxErr, actual)
		}
		_, central, err := greedy.SynopsisRel(data, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.MaxErr-central) > 1e-9+0.02*central {
			t.Fatalf("B=%d: distributed rel %g != centralized %g", b, rep.MaxErr, central)
		}
	}
}

func TestDGreedyRelTightBudgetDegeneracy(t *testing.T) {
	// Known limitation inherited from the paper's histogram batching
	// (Algorithm 3 uses the running maximum, which cannot represent error
	// drops): with a budget so tight that the best centralized choice is
	// near-empty, the distributed estimate overstates and the result can
	// be worse than GreedyRel's. The result must still be a valid,
	// correctly-measured synopsis within budget.
	data := randData(21, 128, 500)
	for i := range data {
		data[i]++
	}
	rep, err := DGreedyRel(SliceSource(data), 16, Config{SubtreeLeaves: 16, Sanity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Synopsis.Size() > 16 {
		t.Fatalf("size %d", rep.Synopsis.Size())
	}
	actual := synopsis.MaxRelError(rep.Synopsis, data, 1)
	if math.Abs(actual-rep.MaxErr) > 1e-9*(1+actual) {
		t.Fatalf("reported %g actual %g", rep.MaxErr, actual)
	}
	_, central, err := greedy.SynopsisRel(data, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxErr < central-1e-9 {
		t.Fatalf("distributed %g beat centralized %g: tie-break assumptions changed", rep.MaxErr, central)
	}
}

func TestDGreedyAbsWithFailureInjection(t *testing.T) {
	data := randData(31, 128, 1000)
	clean, err := DGreedyAbs(SliceSource(data), 16, Config{SubtreeLeaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	failedOnce := map[[2]int]bool{}
	eng := &mr.Local{FailureInjector: func(kind string, ctx mr.TaskContext) error {
		k := [2]int{ctx.TaskID, ctx.Attempt}
		if kind == "map" && ctx.TaskID%3 == 0 && ctx.Attempt == 1 && !failedOnce[k] {
			failedOnce[k] = true
			return errors.New("injected map failure")
		}
		return nil
	}}
	faulty, err := DGreedyAbs(SliceSource(data), 16, Config{SubtreeLeaves: 16, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.MaxErr != clean.MaxErr {
		t.Fatalf("failure injection changed the result: %g vs %g", faulty.MaxErr, clean.MaxErr)
	}
	if !reflect.DeepEqual(termIndices(faulty.Synopsis), termIndices(clean.Synopsis)) {
		t.Fatal("failure injection changed the synopsis")
	}
}

func TestSendCoefCountsPartialEmissions(t *testing.T) {
	data := randData(401, 256, 500)
	rep, err := SendCoef(SliceSource(data), 32, 0, Config{SubtreeLeaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	uc := rep.Jobs[0].UserCounters
	if uc["sendcoef.partial_emissions"] == 0 {
		t.Fatal("unaligned blocks must produce partial emissions")
	}
	if uc["sendcoef.full_emissions"] == 0 {
		t.Fatal("full coefficients must be emitted")
	}
	total := uc["sendcoef.partial_emissions"] + uc["sendcoef.full_emissions"]
	if total != rep.Jobs[0].ShuffleRecords {
		t.Fatalf("counters %d != shuffle records %d", total, rep.Jobs[0].ShuffleRecords)
	}
}

func TestEvaluateLengthMismatchRejected(t *testing.T) {
	data := randData(402, 64, 10)
	w, _ := wavelet.Transform(data)
	syn := synopsis.FromIndices(w, []int{0})
	short := SliceSource(data[:32])
	if _, _, err := EvaluateMaxAbs(short, syn, 8, &mr.Local{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := EvaluateMaxRel(short, syn, 8, &mr.Local{}, 1); err == nil {
		t.Fatal("rel length mismatch accepted")
	}
}
