package dist

import (
	"math"
	"testing"

	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/synopsis"
)

func TestDGKMatchesCentralizedOptimal(t *testing.T) {
	for _, tc := range []struct {
		n, s, b int
		seed    int64
	}{
		{16, 4, 3, 1},
		{32, 8, 6, 2},
		{32, 4, 10, 3},
		{64, 16, 8, 4},
	} {
		data := randData(tc.seed, tc.n, 60)
		rep, err := DGK(SliceSource(data), tc.b, Config{SubtreeLeaves: tc.s})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		_, want, err := dp.GKOptimal(data, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.MaxAbs-want) > 1e-9*(1+want) {
			t.Fatalf("%+v: distributed optimum %g != centralized %g", tc, rep.MaxAbs, want)
		}
		if rep.Synopsis.Size() > tc.b {
			t.Fatalf("%+v: size %d > budget", tc, rep.Synopsis.Size())
		}
		actual := synopsis.MaxAbsError(rep.Synopsis, data)
		if math.Abs(actual-rep.MaxAbs) > 1e-9*(1+actual) {
			t.Fatalf("%+v: reported %g but synopsis achieves %g", tc, rep.MaxAbs, actual)
		}
	}
}

func TestDGKGuards(t *testing.T) {
	data := randData(9, 1024, 10)
	if _, err := DGK(SliceSource(data), 8, Config{SubtreeLeaves: 8}); err == nil {
		t.Fatal("oversized root sub-tree accepted")
	}
	if _, err := DGK(SliceSource(data[:64]), -1, Config{SubtreeLeaves: 16}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestDGKRowsDwarfDMHaarRows(t *testing.T) {
	// The budget-indexed GK rows shuffle far more data than the
	// MinHaarSpace rows at comparable quality targets — the Section 3/4
	// motivation for working with the dual problem.
	data := randData(13, 256, 200)
	src := SliceSource(data)
	b := 32
	gk, err := DGK(src, b, Config{SubtreeLeaves: 32})
	if err != nil {
		t.Fatal(err)
	}
	mh, err := DMHaarSpace(src, dp.Params{Epsilon: gk.MaxAbs + 1, Delta: 2}, Config{SubtreeLeaves: 32})
	if err != nil {
		t.Fatal(err)
	}
	var gkBytes, mhBytes int64
	for _, j := range gk.Jobs {
		gkBytes += j.ShuffleBytes
	}
	for _, j := range mh.Jobs {
		mhBytes += j.ShuffleBytes
	}
	if gkBytes <= mhBytes {
		t.Fatalf("GK rows (%d B) did not exceed MinHaarSpace rows (%d B)", gkBytes, mhBytes)
	}
}

func TestDGKNeverWorseThanDGreedyAbs(t *testing.T) {
	for seed := int64(40); seed < 44; seed++ {
		data := randData(seed, 64, 100)
		src := SliceSource(data)
		gk, err := DGK(src, 8, Config{SubtreeLeaves: 16})
		if err != nil {
			t.Fatal(err)
		}
		dg, err := DGreedyAbs(src, 8, Config{SubtreeLeaves: 16})
		if err != nil {
			t.Fatal(err)
		}
		if gk.MaxAbs > dg.MaxErr+1e-9 {
			t.Fatalf("seed %d: optimal %g worse than greedy %g", seed, gk.MaxAbs, dg.MaxErr)
		}
	}
}
