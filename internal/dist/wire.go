package dist

import (
	"fmt"
	"sort"

	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/mr"
)

// Record-level wire codecs for the dist pipelines (wire v4). Shuffle
// bytes are the paper's own communication metric (Eq. 6), so the hot
// records use delta + varint encodings instead of fixed-width or gob:
//
//   - (index, value) records: LEB128 index + 8-byte float value.
//   - selEntry groups: count + zigzag-delta indices + raw float values.
//   - M-row lists (dp.Row): the DP tables crossing a layer boundary,
//     with counts and choices as varints and the Infeasible sentinel
//     mapped to a one-byte code.
//
// Key components use mr.AppendOrderedUvarint (memcmp-ordered, so sorted
// shuffles stay correct); value payloads use plain LEB128. All append
// functions extend a caller scratch buffer per the shuffle fast-path
// contract dwlint's wireappend analyzer enforces.

// appendIdxVal appends the (index, value) shuffle record every dist
// strategy emits: LEB128 index (1 byte for small trees, <= 10) followed
// by the 8-byte order-preserving float64. No reflection, no per-record
// allocation — map hot loops reuse one scratch buffer (emit copies).
func appendIdxVal(dst []byte, idx int, val float64) []byte {
	dst = mr.AppendUvarint(dst, uint64(idx))
	return mr.AppendFloat64(dst, val)
}

// decodeIdxVal reverses appendIdxVal.
func decodeIdxVal(b []byte) (int, float64, error) {
	idx, n := mr.Uvarint(b)
	if n <= 0 || len(b) != n+8 {
		return 0, 0, fmt.Errorf("dist: malformed %d-byte index/value record", len(b))
	}
	return int(idx), mr.DecodeFloat64(b[n:]), nil
}

// appendSelEntry appends the binary encoding of a selEntry: group size,
// zigzag-delta node indices (discard order is roughly tree order, so
// deltas stay small), then the raw coefficient values.
func appendSelEntry(dst []byte, e selEntry) []byte {
	dst = mr.AppendUvarint(dst, uint64(len(e.Indices)))
	prev := int64(0)
	for _, idx := range e.Indices {
		dst = mr.AppendVarint(dst, int64(idx)-prev)
		prev = int64(idx)
	}
	for _, v := range e.Values {
		dst = mr.AppendFloat64(dst, v)
	}
	return dst
}

// decodeSelEntry reverses appendSelEntry.
func decodeSelEntry(b []byte) (selEntry, error) {
	cnt, n := mr.Uvarint(b)
	if n <= 0 || cnt > uint64(len(b)) {
		return selEntry{}, fmt.Errorf("dist: malformed selEntry header")
	}
	b = b[n:]
	e := selEntry{
		Indices: make([]int, cnt),
		Values:  make([]float64, cnt),
	}
	prev := int64(0)
	for i := range e.Indices {
		d, n := mr.Varint(b)
		if n <= 0 {
			return selEntry{}, fmt.Errorf("dist: truncated selEntry index %d", i)
		}
		prev += d
		e.Indices[i] = int(prev)
		b = b[n:]
	}
	if len(b) != 8*int(cnt) {
		return selEntry{}, fmt.Errorf("dist: selEntry values hold %d bytes, want %d", len(b), 8*cnt)
	}
	for i := range e.Values {
		e.Values[i] = mr.DecodeFloat64(b[:8])
		b = b[8:]
	}
	return e, nil
}

// rowInfeasibleCode is the on-wire stand-in for dp.Infeasible: count
// varints shift by one so the sentinel costs a single byte instead of
// five.
const rowInfeasibleCode = 0

// appendRow appends one M-row: mean, window base, length, then counts
// (uvarint, Infeasible -> 0, finite c -> c+1) and choices (zigzag
// varint; z-offsets concentrate near zero).
func appendRow(dst []byte, row dp.Row) []byte {
	dst = mr.AppendFloat64(dst, row.Mean)
	dst = mr.AppendVarint(dst, int64(row.Lo))
	dst = mr.AppendUvarint(dst, uint64(len(row.Count)))
	for _, c := range row.Count {
		if c >= dp.Infeasible {
			dst = mr.AppendUvarint(dst, rowInfeasibleCode)
		} else {
			dst = mr.AppendUvarint(dst, uint64(c)+1)
		}
	}
	for _, z := range row.Choice {
		dst = mr.AppendVarint(dst, int64(z))
	}
	return dst
}

// appendRowList appends a length-prefixed list of M-rows (the per-node
// payload layer jobs shuffle).
func appendRowList(dst []byte, rows []dp.Row) []byte {
	dst = mr.AppendUvarint(dst, uint64(len(rows)))
	for _, row := range rows {
		dst = appendRow(dst, row)
	}
	return dst
}

// appendGKRow appends a GK M-row (incoming error -> per-budget error
// vector) in sorted incoming-error order: entry count, then for each entry
// the 8-byte incoming error, a uvarint vector length, and the raw error
// floats. The GK row is the paper's example of an M-row indexed by budget
// as well as incoming value; shipping it without gob's type preamble keeps
// the DGK/DMHaarSpace shuffle-volume comparison about the DP, not the
// serializer.
func appendGKRow(dst []byte, row dp.GKRow) []byte {
	es := make([]float64, 0, len(row.Err))
	for e := range row.Err {
		es = append(es, e)
	}
	sort.Float64s(es)
	dst = mr.AppendUvarint(dst, uint64(len(es)))
	for _, e := range es {
		dst = mr.AppendFloat64(dst, e)
		vals := row.Err[e]
		dst = mr.AppendUvarint(dst, uint64(len(vals)))
		for _, v := range vals {
			dst = mr.AppendFloat64(dst, v)
		}
	}
	return dst
}

// decodeGKRow reverses appendGKRow.
func decodeGKRow(b []byte) (dp.GKRow, error) {
	cnt, n := mr.Uvarint(b)
	if n <= 0 {
		return dp.GKRow{}, fmt.Errorf("dist: malformed GK row header")
	}
	b = b[n:]
	row := dp.GKRow{Err: make(map[float64][]float64, cnt)}
	for i := uint64(0); i < cnt; i++ {
		if len(b) < 8 {
			return dp.GKRow{}, fmt.Errorf("dist: truncated GK row entry %d", i)
		}
		e := mr.DecodeFloat64(b[:8])
		b = b[8:]
		width, n := mr.Uvarint(b)
		if n <= 0 || width > uint64(len(b)) {
			return dp.GKRow{}, fmt.Errorf("dist: malformed GK row entry %d width", i)
		}
		b = b[n:]
		if len(b) < 8*int(width) {
			return dp.GKRow{}, fmt.Errorf("dist: truncated GK row entry %d values", i)
		}
		vals := make([]float64, width)
		for j := range vals {
			vals[j] = mr.DecodeFloat64(b[:8])
			b = b[8:]
		}
		row.Err[e] = vals
	}
	if len(b) != 0 {
		return dp.GKRow{}, fmt.Errorf("dist: %d trailing bytes after GK row", len(b))
	}
	return row, nil
}

// decodeRowList reverses appendRowList.
func decodeRowList(b []byte) ([]dp.Row, error) {
	cnt, n := mr.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("dist: malformed M-row list header")
	}
	b = b[n:]
	rows := make([]dp.Row, 0, cnt)
	for r := uint64(0); r < cnt; r++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("dist: truncated M-row %d", r)
		}
		var row dp.Row
		row.Mean = mr.DecodeFloat64(b[:8])
		b = b[8:]
		lo, n := mr.Varint(b)
		if n <= 0 {
			return nil, fmt.Errorf("dist: truncated M-row %d window base", r)
		}
		row.Lo = int(lo)
		b = b[n:]
		width, n := mr.Uvarint(b)
		if n <= 0 || width > uint64(len(b)) {
			return nil, fmt.Errorf("dist: malformed M-row %d width", r)
		}
		b = b[n:]
		row.Count = make([]int32, width)
		row.Choice = make([]int32, width)
		for i := range row.Count {
			c, n := mr.Uvarint(b)
			if n <= 0 {
				return nil, fmt.Errorf("dist: truncated M-row %d count %d", r, i)
			}
			if c == rowInfeasibleCode {
				row.Count[i] = dp.Infeasible
			} else {
				row.Count[i] = int32(c - 1)
			}
			b = b[n:]
		}
		for i := range row.Choice {
			z, n := mr.Varint(b)
			if n <= 0 {
				return nil, fmt.Errorf("dist: truncated M-row %d choice %d", r, i)
			}
			row.Choice[i] = int32(z)
			b = b[n:]
		}
		rows = append(rows, row)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("dist: %d trailing bytes after M-row list", len(b))
	}
	return rows, nil
}
