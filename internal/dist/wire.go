package dist

import (
	"fmt"

	"dwmaxerr/internal/mr"
)

// idxValLen is the wire size of an (index, value) shuffle record.
const idxValLen = 16

// appendIdxVal appends the fixed-width encoding of the (index, value)
// record every dist strategy shuffles: 8-byte big-endian index followed
// by the 8-byte order-preserving float64. No reflection, no per-record
// allocation — map hot loops reuse one scratch buffer (emit copies),
// per the shuffle fast-path contract dwlint's wireappend analyzer
// enforces.
func appendIdxVal(dst []byte, idx int, val float64) []byte {
	dst = mr.AppendUint64(dst, uint64(idx))
	return mr.AppendFloat64(dst, val)
}

// decodeIdxVal reverses appendIdxVal.
func decodeIdxVal(b []byte) (int, float64, error) {
	if len(b) != idxValLen {
		return 0, 0, fmt.Errorf("dist: index/value record is %d bytes, want %d", len(b), idxValLen)
	}
	return int(mr.DecodeUint64(b[:8])), mr.DecodeFloat64(b[8:]), nil
}
