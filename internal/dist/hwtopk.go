package dist

import (
	"fmt"
	"math"
	"sort"

	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// H-WTopk (Appendix A.4, after Jestes et al.): a three-round adaptation of
// the TPUT distributed top-k algorithm that handles signed values. Every
// mapper holds the partial coefficient values its data contributes; the
// rounds exchange pruned candidate sets so that, unlike Send-Coef, not all
// partials cross the network — at the price of three jobs. All comparisons
// happen on normalized (significance-ordered) values so the result is the
// conventional synopsis.
//
// Round 1: each mapper sends its k highest and k lowest local values; the
// reducer lower-bounds each seen coefficient's aggregate magnitude τ(x)
// and sets the threshold T1 = k-th largest τ.
// Round 2: mappers send every local value with |c_m(x)| > T1/m; bounds are
// refined to τ'(x) and candidates with τ'(x) < T2 pruned.
// Round 3: mappers send their exact values for the surviving candidate set
// L; the reducer aggregates and keeps the top k.

// invNorm returns the factor turning a raw coefficient at index i into its
// normalized (significance) value.
func invNorm(i int) float64 {
	return 1 / math.Sqrt(float64(int(1)<<uint(wavelet.Level(i))))
}

// localPartials computes the normalized partial coefficient values a chunk
// [lo,hi) contributes: one entry per error-tree node whose support
// intersects the chunk.
func localPartials(data []float64, n, lo, hi int) map[int]float64 {
	partials := map[int]float64{}
	for pos := lo; pos < hi; pos++ {
		d := data[pos-lo]
		partials[0] += wavelet.BasisCoefficient(n, 0, pos, d)
		node := (n + pos) / 2
		for node >= 1 {
			partials[node] += wavelet.BasisCoefficient(n, node, pos, d)
			node /= 2
		}
	}
	for j := range partials {
		partials[j] *= invNorm(j)
	}
	return partials
}

// HWTopk builds the conventional synopsis via the three-round protocol.
func HWTopk(src Source, budget int, cfg Config) (*Report, error) {
	n := src.N()
	if err := padCheck(n); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dist: budget %d < 1", budget)
	}
	s, err := cfg.subtreeLeaves(n)
	if err != nil {
		return nil, err
	}
	eng := cfg.engine()
	m := n / s // number of mappers
	k := budget

	report := &Report{}

	// ---- Round 1 ----
	type mapperSummary struct {
		KthHigh, KthLow float64
	}
	seen := map[int]map[int]float64{} // coef -> mapper -> value
	summaries := make([]mapperSummary, m)
	round1 := &mr.Job{
		Name:   "hwtopk-round1",
		Splits: chunkSplits(n, s),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			data, err := src.Chunk(idx*s, (idx+1)*s)
			if err != nil {
				return err
			}
			partials := localPartials(data, n, idx*s, (idx+1)*s)
			type cv struct {
				coef int
				val  float64
			}
			vals := make([]cv, 0, len(partials))
			for c, v := range partials {
				vals = append(vals, cv{c, v})
			}
			sort.Slice(vals, func(i, j int) bool {
				if vals[i].val != vals[j].val {
					return vals[i].val > vals[j].val
				}
				return vals[i].coef < vals[j].coef
			})
			top := k
			if top > len(vals) {
				top = len(vals)
			}
			send := map[int]float64{}
			for _, v := range vals[:top] {
				send[v.coef] = v.val
			}
			for _, v := range vals[len(vals)-top:] {
				send[v.coef] = v.val
			}
			kthHigh, kthLow := vals[top-1].val, vals[len(vals)-top].val
			if err := emit([]byte{0}, mr.MustGobEncode([3]float64{float64(idx), kthHigh, kthLow})); err != nil {
				return err
			}
			coefs := make([]int, 0, len(send))
			for c := range send {
				coefs = append(coefs, c)
			}
			sort.Ints(coefs)
			var kbuf, vbuf []byte // reused across emits: the engine copies
			for _, c := range coefs {
				vbuf = appendIdxVal(vbuf[:0], idx, send[c])
				kbuf = mr.AppendOrderedUvarint(append(kbuf[:0], 1), uint64(c))
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
			}
			return nil
		},
		Reducers: 1,
	}
	res1, err := runJob(eng, round1, cfg.Trace)
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, res1.Metrics)
	for _, kv := range res1.Partitions[0] {
		if kv.Key[0] == 0 {
			var rec [3]float64
			if err := mr.GobDecode(kv.Value, &rec); err != nil {
				return nil, err
			}
			summaries[int(rec[0])] = mapperSummary{KthHigh: rec[1], KthLow: rec[2]}
			continue
		}
		c, nb := mr.OrderedUvarint(kv.Key[1:])
		if nb != len(kv.Key)-1 {
			return nil, fmt.Errorf("dist: malformed %d-byte round-1 key", len(kv.Key))
		}
		coef := int(c)
		mapper, val, err := decodeIdxVal(kv.Value)
		if err != nil {
			return nil, err
		}
		if seen[coef] == nil {
			seen[coef] = map[int]float64{}
		}
		seen[coef][mapper] = val
	}
	tau := func(coef int, absent func(mi int) (float64, float64)) (tp, tm float64) {
		got := seen[coef]
		for mi := 0; mi < m; mi++ {
			if v, ok := got[mi]; ok {
				tp += v
				tm += v
				continue
			}
			hi, lo := absent(mi)
			tp += hi
			tm += lo
		}
		return tp, tm
	}
	lowerBound := func(tp, tm float64) float64 {
		if tp >= 0 && tm <= 0 {
			return 0
		}
		return math.Min(math.Abs(tp), math.Abs(tm))
	}
	// A mapper that did not send x either ranked it below its k-th value
	// or does not hold it at all (its contribution is exactly 0) — so the
	// absent-value bounds must include 0.
	t1 := kthLargestTau(seen, k, func(coef int) float64 {
		tp, tm := tau(coef, func(mi int) (float64, float64) {
			return math.Max(0, summaries[mi].KthHigh), math.Min(0, summaries[mi].KthLow)
		})
		return lowerBound(tp, tm)
	})

	// ---- Round 2: everything above T1/m ----
	threshold := t1 / float64(m)
	round2 := &mr.Job{
		Name:   "hwtopk-round2",
		Splits: chunkSplits(n, s),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			data, err := src.Chunk(idx*s, (idx+1)*s)
			if err != nil {
				return err
			}
			partials := localPartials(data, n, idx*s, (idx+1)*s)
			coefs := make([]int, 0, len(partials))
			for c, v := range partials {
				if math.Abs(v) > threshold {
					coefs = append(coefs, c)
				}
			}
			sort.Ints(coefs)
			var kbuf, vbuf []byte // reused across emits: the engine copies
			for _, c := range coefs {
				vbuf = appendIdxVal(vbuf[:0], idx, partials[c])
				kbuf = mr.AppendOrderedUvarint(kbuf[:0], uint64(c))
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
			}
			return nil
		},
		Reducers: 1,
	}
	res2, err := runJob(eng, round2, cfg.Trace)
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, res2.Metrics)
	for _, kv := range res2.Partitions[0] {
		c, nb := mr.OrderedUvarint(kv.Key)
		if nb != len(kv.Key) {
			return nil, fmt.Errorf("dist: malformed %d-byte round-2 key", len(kv.Key))
		}
		coef := int(c)
		mapper, val, err := decodeIdxVal(kv.Value)
		if err != nil {
			return nil, err
		}
		if seen[coef] == nil {
			seen[coef] = map[int]float64{}
		}
		seen[coef][mapper] = val
	}
	refined := func(coef int) (tp, tm float64) {
		return tau(coef, func(mi int) (float64, float64) {
			hi := math.Max(0, math.Min(summaries[mi].KthHigh, threshold))
			lo := math.Min(0, math.Max(summaries[mi].KthLow, -threshold))
			return hi, lo
		})
	}
	t2 := kthLargestTau(seen, k, func(coef int) float64 {
		tp, tm := refined(coef)
		return lowerBound(tp, tm)
	})
	candidates := make([]int, 0, len(seen))
	for coef := range seen {
		tp, tm := refined(coef)
		if math.Max(math.Abs(tp), math.Abs(tm)) >= t2 {
			candidates = append(candidates, coef)
		}
	}
	sort.Ints(candidates)

	// ---- Round 3: exact values for the surviving candidates ----
	candSet := map[int]bool{}
	for _, c := range candidates {
		candSet[c] = true
	}
	totals := map[int]float64{}
	round3 := &mr.Job{
		Name:   "hwtopk-round3",
		Splits: chunkSplits(n, s),
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			idx, err := chunkIndex(split)
			if err != nil {
				return err
			}
			data, err := src.Chunk(idx*s, (idx+1)*s)
			if err != nil {
				return err
			}
			partials := localPartials(data, n, idx*s, (idx+1)*s)
			coefs := make([]int, 0, len(partials))
			for c := range partials {
				if candSet[c] {
					coefs = append(coefs, c)
				}
			}
			sort.Ints(coefs)
			var kbuf, vbuf []byte // reused across emits: the engine copies
			for _, c := range coefs {
				kbuf = mr.AppendOrderedUvarint(kbuf[:0], uint64(c))
				vbuf = mr.AppendFloat64(vbuf[:0], partials[c])
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(ctx mr.TaskContext, key []byte, values [][]byte, emit mr.Emit) error {
			var sum float64
			for _, v := range values {
				sum += mr.DecodeFloat64(v)
			}
			return emit(key, mr.EncodeFloat64(sum))
		},
		Reducers: 1,
	}
	res3, err := runJob(eng, round3, cfg.Trace)
	if err != nil {
		return nil, err
	}
	report.Jobs = append(report.Jobs, res3.Metrics)
	for _, kv := range res3.Partitions[0] {
		c, nb := mr.OrderedUvarint(kv.Key)
		if nb != len(kv.Key) {
			return nil, fmt.Errorf("dist: malformed %d-byte round-3 key", len(kv.Key))
		}
		totals[int(c)] = mr.DecodeFloat64(kv.Value)
	}
	type scored struct {
		coef int
		norm float64
	}
	final := make([]scored, 0, len(totals))
	for c, v := range totals {
		final = append(final, scored{c, math.Abs(v)})
	}
	sort.Slice(final, func(i, j int) bool {
		if final[i].norm != final[j].norm {
			return final[i].norm > final[j].norm
		}
		return final[i].coef < final[j].coef
	})
	if k > len(final) {
		k = len(final)
	}
	syn := synopsis.New(n)
	for _, f := range final[:k] {
		raw := totals[f.coef] / invNorm(f.coef)
		syn.Terms = append(syn.Terms, synopsis.Coefficient{Index: f.coef, Value: raw})
	}
	syn.Normalize()
	report.Synopsis = syn
	return report, nil
}

// kthLargestTau computes the k-th largest score over the seen coefficients.
func kthLargestTau(seen map[int]map[int]float64, k int, score func(coef int) float64) float64 {
	scores := make([]float64, 0, len(seen))
	for coef := range seen {
		scores = append(scores, score(coef))
	}
	if len(scores) == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if k > len(scores) {
		k = len(scores)
	}
	return scores[k-1]
}
