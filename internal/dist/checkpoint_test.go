package dist

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/synopsis"
)

// CheckpointStore contract, envelope versioning, and record codec
// round-trips — the persistence layer the resume tests build on.

func TestMemCheckpointStore(t *testing.T) {
	s := NewMemCheckpoint()
	if _, ok, err := s.Get("missing"); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	if err := s.Put("k", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	p, ok, err := s.Get("k")
	if err != nil || !ok || !bytes.Equal(p, []byte{1, 2}) {
		t.Fatalf("get: %v %v %v", p, ok, err)
	}
	// Overwrite wins; the stored payload is a copy.
	src := []byte{9}
	s.Put("k", src)
	src[0] = 7
	if p, _, _ := s.Get("k"); p[0] != 9 {
		t.Fatal("store aliased the caller's buffer")
	}
	if s.Len() != 1 {
		t.Fatalf("len %d, want 1", s.Len())
	}
}

func TestFileCheckpointStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	s, err := NewFileCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("dindirect/n512/probe/e1"); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	key := "dindirect/n512/s32/d3ff0000/probe/e4041" // '/' needs sanitizing
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory sees the record (driver
	// restart).
	s2, err := NewFileCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, ok, err := s2.Get(key)
	if err != nil || !ok || string(p) != "payload" {
		t.Fatalf("reopened get: %q %v %v", p, ok, err)
	}
	// Keys differing only in sanitized characters must not collide.
	other := "dindirect.n512_s32.d3ff0000_probe.e4041"
	if _, ok, _ := s2.Get(other); ok {
		t.Fatal("sanitized keys collided")
	}
	// No temp files linger.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".ck" {
			t.Fatalf("unexpected file %q in checkpoint dir", e.Name())
		}
	}
}

func TestCheckpointEnvelopeVersioning(t *testing.T) {
	s := NewMemCheckpoint()
	if err := checkpointPut(s, "k", []byte("body")); err != nil {
		t.Fatal(err)
	}
	body, ok, err := checkpointGet(s, "k")
	if err != nil || !ok || string(body) != "body" {
		t.Fatalf("round trip: %q %v %v", body, ok, err)
	}
	// A record sealed by a future version must be rejected, not
	// misdecoded.
	sealed := sealCheckpoint([]byte("body"))
	sealed[4] = checkpointVersion + 1
	s.Put("future", sealed)
	if _, _, err := checkpointGet(s, "future"); err == nil {
		t.Fatal("future-version record accepted")
	}
	s.Put("garbage", []byte("xx"))
	if _, _, err := checkpointGet(s, "garbage"); err == nil {
		t.Fatal("bad-magic record accepted")
	}
}

func TestCheckpointRecordCodecs(t *testing.T) {
	pairs := []mr.Pair{
		{Key: []byte("a"), Value: []byte{1, 2, 3}},
		{Key: nil, Value: nil},
		{Key: mr.EncodeUint64(7), Value: mr.EncodeFloat64(2.5)},
	}
	got, err := decodePairList(appendPairList(nil, pairs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) || !bytes.Equal(got[0].Value, pairs[0].Value) || !bytes.Equal(got[2].Key, pairs[2].Key) {
		t.Fatalf("pair list diverged: %v", got)
	}
	parts := [][]mr.Pair{pairs, nil, {{Key: []byte("k"), Value: []byte("v")}}}
	gotParts, err := decodePartitions(appendPartitions(nil, parts))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotParts) != 3 || len(gotParts[0]) != 3 || gotParts[1] != nil || len(gotParts[2]) != 1 {
		t.Fatalf("partitions diverged: %v", gotParts)
	}
	// Truncations never decode cleanly.
	enc := appendPartitions(nil, parts)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodePartitions(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}

	syn := synopsis.New(8)
	syn.Terms = append(syn.Terms,
		synopsis.Coefficient{Index: 0, Value: 3.5},
		synopsis.Coefficient{Index: 5, Value: -1.25})
	gotSyn, feasible, err := decodeProbeRecord(encodeProbeRecord(syn, true))
	if err != nil || !feasible {
		t.Fatalf("probe record: feasible=%v err=%v", feasible, err)
	}
	if gotSyn.N != 8 || !reflect.DeepEqual(gotSyn.Terms, syn.Terms) {
		t.Fatalf("probe synopsis diverged: %+v", gotSyn)
	}
	if _, feasible, err := decodeProbeRecord(encodeProbeRecord(nil, false)); feasible || err != nil {
		t.Fatalf("infeasible record: feasible=%v err=%v", feasible, err)
	}
	if _, _, err := decodeProbeRecord([]byte{2, 0}); err == nil {
		t.Fatal("bad probe record accepted")
	}
}

// TestDGreedyAbsCheckpointResume pins the local resume path: a second run
// with the same store replays the histogram output, produces the identical
// synopsis, and runs strictly fewer jobs.
func TestDGreedyAbsCheckpointResume(t *testing.T) {
	data := randData(88, 256, 500)
	store := NewMemCheckpoint()
	cfg := Config{SubtreeLeaves: 32, BucketWidth: 0.25, Checkpoint: store}

	hits0 := obsCheckpointHits.Value()
	puts0 := obsCheckpointPuts.Value()
	first, err := DGreedyAbs(SliceSource(data), 48, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := obsCheckpointPuts.Value() - puts0; d != 1 {
		t.Fatalf("dist_checkpoint_puts delta = %d, want 1 (the hist record)", d)
	}
	if d := obsCheckpointHits.Value() - hits0; d != 0 {
		t.Fatalf("dist_checkpoint_hits delta = %d, want 0 on a cold store", d)
	}

	hits1 := obsCheckpointHits.Value()
	second, err := DGreedyAbs(SliceSource(data), 48, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := obsCheckpointHits.Value() - hits1; d != 1 {
		t.Fatalf("dist_checkpoint_hits delta = %d, want 1 on resume", d)
	}
	if !reflect.DeepEqual(termIndices(first.Synopsis), termIndices(second.Synopsis)) || first.MaxErr != second.MaxErr {
		t.Fatal("resumed run diverged from the original")
	}
	if len(second.Jobs) >= len(first.Jobs) {
		t.Fatalf("resumed run executed %d jobs, original %d — hist job not skipped",
			len(second.Jobs), len(first.Jobs))
	}

	// A plain run without the store must match too (checkpointing never
	// changes results).
	plain, err := DGreedyAbs(SliceSource(data), 48, Config{SubtreeLeaves: 32, BucketWidth: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(termIndices(plain.Synopsis), termIndices(first.Synopsis)) {
		t.Fatal("checkpointed run diverged from the plain run")
	}
}
