package dist

import (
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
)

// Algorithm-level metrics (dist_* prefix, per the package obs naming
// convention). The greedy-run counter increments inside map functions, so
// in cluster mode it lands in each worker's registry (its /debug/vars)
// while local runs record it in the driver — same point-of-work rule as
// the mr_* execution counters.
var (
	// obsGreedyRuns counts actual local greedy executions in
	// ErrHistGreedy — the speculative C_root work the per-distinct-
	// incoming-error cache saves is visible as the gap to
	// dist_greedy_candidates.
	obsGreedyRuns = obs.Default.Counter("dist_greedy_runs")
	// obsGreedyCandidates counts speculative C_root candidates posed
	// (driver side: maxCand+1 per DGreedy run).
	obsGreedyCandidates = obs.Default.Counter("dist_greedy_candidates")
	// obsLayerRows observes |M[j]| — the number of M-rows crossing each
	// layer boundary of DMHaarSpace (the per-layer term of Equation 6).
	obsLayerRows = obs.Default.Histogram("dist_layer_rows")
	// obsLayerRowBytes observes the encoded size of each M-row.
	obsLayerRowBytes = obs.Default.Histogram("dist_layer_row_bytes")
	// obsProbes counts DIndirectHaar binary-search probes that actually
	// ran their layer jobs — a probe replayed from a checkpoint is not
	// counted, so a resumed search shows a strictly smaller delta.
	obsProbes = obs.Default.Counter("dist_probes_total")
	// obsCheckpointHits counts sub-results replayed from a
	// Config.Checkpoint store instead of re-running their jobs.
	obsCheckpointHits = obs.Default.Counter("dist_checkpoint_hits")
	// obsCheckpointPuts counts sub-results recorded into the store.
	obsCheckpointPuts = obs.Default.Counter("dist_checkpoint_puts")
)

// runJob executes job on eng, threading parent as the trace parent when
// the engine supports per-run options (both mr engines do; the assertion
// keeps plain Engine in every signature).
func runJob(eng mr.Engine, job *mr.Job, parent *obs.Span) (*mr.Result, error) {
	if te, ok := eng.(mr.TracingEngine); ok {
		return te.RunWith(job, mr.JobOptions{Trace: parent})
	}
	return eng.Run(job)
}
