package dist

import (
	"fmt"

	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/wavelet"
)

// Cluster execution: jobs shipped to TCP workers cannot carry Go closures,
// so cluster-runnable jobs are registered by name in the mr registry and
// reconstructed from self-describing parameters on every node (the
// equivalent of distributing a job JAR). Workers read their input from a
// shared filesystem path — the HDFS stand-in.

// ConFileParams parameterizes the cluster CON job.
type ConFileParams struct {
	// Path of the binary float64 dataset, readable by every worker.
	Path string
	// SubtreeLeaves is the per-chunk sub-tree size (a power of two).
	SubtreeLeaves int
}

// ConFileJobName is the registered name of the cluster CON job.
const ConFileJobName = "dist/con-file"

func init() {
	mr.RegisterJob(ConFileJobName, func(params []byte) (*mr.Job, error) {
		var p ConFileParams
		if err := mr.GobDecode(params, &p); err != nil {
			return nil, fmt.Errorf("dist: bad %s params: %w", ConFileJobName, err)
		}
		src, err := NewFileSource(p.Path)
		if err != nil {
			return nil, err
		}
		n := src.N()
		if !wavelet.IsPowerOfTwo(n) {
			return nil, fmt.Errorf("dist: %s holds %d values (not a power of two)", p.Path, n)
		}
		if !wavelet.IsPowerOfTwo(p.SubtreeLeaves) || p.SubtreeLeaves < 2 || p.SubtreeLeaves > n/2 {
			return nil, fmt.Errorf("dist: invalid sub-tree size %d for n=%d", p.SubtreeLeaves, n)
		}
		return conJob(src, n, p.SubtreeLeaves), nil
	})
}

// CONCluster builds the conventional synopsis across a TCP worker cluster:
// the map phase runs on the workers (each reading its chunk from the
// shared path), the significance selection on the driver.
func CONCluster(c *mr.Coordinator, path string, budget, subtreeLeaves int) (*Report, error) {
	if budget < 1 {
		return nil, fmt.Errorf("dist: budget %d < 1", budget)
	}
	src, err := NewFileSource(path)
	if err != nil {
		return nil, err
	}
	res, err := c.Run(ConFileJobName, mr.MustGobEncode(ConFileParams{Path: path, SubtreeLeaves: subtreeLeaves}))
	if err != nil {
		return nil, err
	}
	syn, err := selectConventional(res.Partitions[0], src.N(), subtreeLeaves, budget)
	if err != nil {
		return nil, err
	}
	return &Report{Synopsis: syn, Jobs: []mr.Metrics{res.Metrics}}, nil
}
