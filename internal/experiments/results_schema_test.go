package experiments

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Golden-file pin of the dwbench -json document schema. External
// tooling (the committed BENCH_*.json snapshots, plotting scripts)
// parses this layout; a field rename or type change must show up as an
// explicit golden diff, not a silent breakage. Regenerate with
//
//	go test ./internal/experiments/ -run ResultsJSONSchema -update
var update = flag.Bool("update", false, "rewrite golden files")

// schemaOf flattens a decoded JSON value into sorted "path type" lines.
// Array elements share the path suffix "[]", so any number of records
// produces the same schema.
func schemaOf(v any) []string {
	set := map[string]bool{}
	var walk func(path string, v any)
	walk = func(path string, v any) {
		switch x := v.(type) {
		case map[string]any:
			set[path+" object"] = true
			for k, c := range x {
				walk(path+"."+k, c)
			}
		case []any:
			set[path+" array"] = true
			for _, c := range x {
				walk(path+"[]", c)
			}
		case string:
			set[path+" string"] = true
		case float64:
			set[path+" number"] = true
		case bool:
			set[path+" bool"] = true
		case nil:
			set[path+" null"] = true
		}
	}
	walk("$", v)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func decodeResults(t *testing.T, path string) any {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("results document is not valid JSON: %v", err)
	}
	return v
}

func TestResultsJSONSchemaGolden(t *testing.T) {
	// One fully-populated record exercises every optional field, so the
	// schema is the complete key set WriteJSON can ever produce.
	c := &Collector{}
	c.Add(Record{
		Experiment: "schema", Params: "n=1", WallMS: 1.5,
		ShuffleRecords: 2, ShuffleBytes: 3,
		RecordsPerSec: 4.5, BytesPerSec: 6.5, Allocs: 7,
		IngestValues: 8, ValuesPerSec: 9.5, Epochs: 10,
		Queries: 11, QueriesPerSec: 12.5,
		EpochBumps: 13, RebalanceMS: 14.5, QueriesDegraded: 15,
	})
	path := filepath.Join(t.TempDir(), "results.json")
	if err := c.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(schemaOf(decodeResults(t, path)), "\n") + "\n"

	golden := filepath.Join("testdata", "results_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("dwbench -json schema changed:\n--- got ---\n%s--- want ---\n%s(regenerate with -update if intended)", got, want)
	}
}

// TestQuickRunRecordsFitSchema runs a real experiment through the
// collector and checks every emitted key path is part of the pinned
// schema — partial records (omitempty fields) must subset it, never
// extend it.
func TestQuickRunRecordsFitSchema(t *testing.T) {
	cfg := Config{Out: io.Discard, Quick: true, Collect: &Collector{}}
	for _, exp := range []string{"shuffle", "ingest", "compute", "serve", "rebalance"} {
		if err := Run(exp, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if len(cfg.Collect.Records()) == 0 {
		t.Fatal("quick run collected no records")
	}
	path := filepath.Join(t.TempDir(), "results.json")
	if err := cfg.Collect.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "results_schema.golden"))
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	allowed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		allowed[line] = true
	}
	for _, line := range schemaOf(decodeResults(t, path)) {
		if !allowed[line] {
			t.Errorf("record emits %q, which the golden schema does not allow", line)
		}
	}
	// The document header must always be present.
	for _, must := range []string{"$.go_version string", "$.results array"} {
		if !allowed[must] {
			t.Fatalf("golden schema is missing required line %q", must)
		}
	}
}
