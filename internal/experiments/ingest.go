package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/ingest"
)

func init() {
	register("ingest", "Streaming ingest: sustained push throughput, alone and under concurrent queries", runIngest)
}

// runIngest measures the streaming-ingest subsystem: how many values/sec
// one ingestor sustains while re-thresholding every block (push-only),
// and how much of that survives when readers hammer the published
// snapshot at the same time — the wait-free-reader claim, measured. The
// committed BENCH_ingest.json snapshot anchors both rates.
func runIngest(cfg Config) error {
	t := &table{header: []string{"workload", "values", "wall", "values/s", "epochs", "queries", "queries/s"}}

	window := cfg.size(1 << 12)
	block := window / 8
	budget := window / 16
	if budget < 1 {
		budget = 1
	}
	total := 16 * window
	data := dataset.Uniform{Max: 1000}.Generate(total, cfg.seed())
	params := fmt.Sprintf("window=%d block=%d budget=%d values=%d", window, block, budget, total)

	// ---- Push-only: the ingest path at full tilt. The background
	// publisher coalesces rebuilds under the burst, so epochs stay low and
	// values/s is the producer-side cost alone. ----
	rec, err := ingestPush(data, window, block, budget, params, false, nil)
	if err != nil {
		return err
	}
	cfg.Collect.Add(rec)
	t.add(rec.Experiment, fint(rec.IngestValues), fmt.Sprintf("%.3fs", rec.WallMS/1e3),
		ffloat(rec.ValuesPerSec), fint(rec.Epochs), "-", "-")

	// ---- Freshness-first: the producer Syncs at every block boundary,
	// so every block is re-thresholded and published before the next one
	// starts — values/s now includes the full rebuild pipeline. ----
	rec, err = ingestPush(data, window, block, budget, params+" sync=block", true, nil)
	if err != nil {
		return err
	}
	cfg.Collect.Add(rec)
	t.add(rec.Experiment, fint(rec.IngestValues), fmt.Sprintf("%.3fs", rec.WallMS/1e3),
		ffloat(rec.ValuesPerSec), fint(rec.Epochs), "-", "-")

	// ---- Concurrent: the freshness-first producer with 4 readers
	// hammering the published snapshot throughout. ----
	readers := 4
	rec, err = ingestPush(data, window, block, budget,
		fmt.Sprintf("%s sync=block readers=%d", params, readers), true, &readerPool{n: readers})
	if err != nil {
		return err
	}
	cfg.Collect.Add(rec)
	t.add(rec.Experiment, fint(rec.IngestValues), fmt.Sprintf("%.3fs", rec.WallMS/1e3),
		ffloat(rec.ValuesPerSec), fint(rec.Epochs), fint(rec.Queries), ffloat(rec.QueriesPerSec))

	t.write(cfg.Out)
	return nil
}

// readerPool runs n goroutines that alternate point and range queries
// against the latest snapshot until stopped.
type readerPool struct {
	n       int
	queries atomic.Int64
	stop    chan struct{}
	wg      sync.WaitGroup
}

func (p *readerPool) start(g *ingest.Ingestor) {
	p.stop = make(chan struct{})
	for r := 0; r < p.n; r++ {
		p.wg.Add(1)
		go func(r int) {
			defer p.wg.Done()
			k := r
			for {
				select {
				case <-p.stop:
					return
				default:
				}
				if snap := g.Snapshot(); snap != nil {
					snap.Ev.Point(k % snap.N)
					snap.Ev.RangeSum(0, snap.N-1)
					p.queries.Add(2)
				}
				k++
			}
		}(r)
	}
}

func (p *readerPool) finish() int64 {
	close(p.stop)
	p.wg.Wait()
	return p.queries.Load()
}

// ingestPush feeds data through one ingestor (optionally Syncing every
// block, optionally under reader load) and reports the sustained rate
// after a final Sync barrier.
func ingestPush(data []float64, window, block, budget int, params string, syncBlocks bool, readers *readerPool) (Record, error) {
	g, err := ingest.New(ingest.Config{Window: window, Block: block, Budget: budget})
	if err != nil {
		return Record{}, err
	}
	defer g.Close()
	name := "ingest/push"
	if syncBlocks {
		name = "ingest/sync"
	}
	if readers != nil {
		name = "ingest/concurrent"
		readers.start(g)
	}
	a0, t0 := measureAllocs(), time.Now()
	for i, v := range data {
		if err := g.Push(v); err != nil {
			return Record{}, err
		}
		if syncBlocks && (i+1)%block == 0 {
			g.Sync()
		}
	}
	g.Sync()
	wall, allocs := time.Since(t0), measureAllocs()-a0
	var queries int64
	if readers != nil {
		queries = readers.finish()
	}
	rec := Record{
		Experiment:   name,
		Params:       params,
		WallMS:       float64(wall.Milliseconds()),
		IngestValues: int64(len(data)),
		ValuesPerSec: float64(len(data)) / wall.Seconds(),
		Queries:      queries,
		Allocs:       allocs,
	}
	if queries > 0 {
		rec.QueriesPerSec = float64(queries) / wall.Seconds()
	}
	if snap := g.Snapshot(); snap != nil {
		rec.Epochs = snap.Epoch
	}
	return rec, nil
}
