package experiments

import (
	"fmt"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

func init() {
	register("ablation-dict", "Ablation: synopsis dictionary (conventional / greedy / unrestricted DP / Haar+)", runAblationDict)
}

// runAblationDict compares, at equal budgets, the max_abs error achieved by
// each dictionary/algorithm family the repository implements:
//
//	conventional    — top-B Haar coefficients by significance (L2-optimal)
//	GreedyAbs       — restricted Haar, greedy (Section 5.1)
//	GK optimal      — restricted Haar, exact DP (reference [13]; small N)
//	IndirectHaar    — unrestricted Haar, grid DP (references [24, 27, 28])
//	Haar+           — Haar+ tree dictionary (reference [23])
//
// The expected ordering — each row at most the previous — quantifies how
// much of the paper's quality story comes from the metric (max vs L2) and
// how much from the dictionary.
func runAblationDict(cfg Config) error {
	n := cfg.size(1 << 8) // the GK oracle bounds this experiment's size
	if n > 1<<9 {
		n = 1 << 9
	}
	// WD-like data keeps the Haar+ value range (and so its DP width) small
	// enough for the exact oracles at interactive speed.
	data := dataset.WDLike{}.Generate(n, cfg.seed())
	w, err := wavelet.Transform(data)
	if err != nil {
		return err
	}
	delta := 2.0
	t := &table{header: []string{"B", "conventional", "GreedyAbs", "GK optimal", "IndirectHaar", "Haar+"}}
	for _, div := range []int{32, 16, 8} {
		b := n / div
		conv := synopsis.MaxAbsError(synopsis.Conventional(w, b), data)
		_, gr, err := greedy.SynopsisAbs(data, b)
		if err != nil {
			return err
		}
		gkCell := "-"
		if n <= 1<<8 {
			_, gk, err := dp.GKOptimal(data, b)
			if err != nil {
				return err
			}
			gkCell = ffloat(gk)
		}
		ih, err := dp.IndirectHaar(data, b, delta)
		if err != nil {
			return err
		}
		_, hp, err := dp.HaarPlusBudget(data, b, delta)
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("N/%d", div), ffloat(conv), ffloat(gr), gkCell, ffloat(ih.MaxAbs), ffloat(hp))
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "expected shape: conventional ≥ GreedyAbs ≥ GK optimal ≥ IndirectHaar ≳ Haar+ (richer dictionaries and exact optimization tighten the worst case)")
	return nil
}
