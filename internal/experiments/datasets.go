package experiments

import (
	"fmt"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/wavelet"
)

func init() {
	register("table1", "Wavelet decomposition example (Table 1)", runTable1)
	register("table3", "Characteristics of the NYCT- and WD-like datasets (Table 3)", runTable3)
}

func runTable1(cfg Config) error {
	data := []float64{5, 5, 0, 26, 1, 3, 14, 2}
	fmt.Fprintf(cfg.Out, "input: %v\n", data)
	t := &table{header: []string{"Resolution", "Averages", "Detail Coef."}}
	avgs := data
	type level struct {
		res     int
		avgs    []float64
		details []float64
	}
	var levels []level
	res := wavelet.Log2(len(data))
	levels = append(levels, level{res, avgs, nil})
	for len(avgs) > 1 {
		next := make([]float64, len(avgs)/2)
		det := make([]float64, len(avgs)/2)
		for i := range next {
			next[i] = (avgs[2*i] + avgs[2*i+1]) / 2
			det[i] = (avgs[2*i] - avgs[2*i+1]) / 2
		}
		res--
		levels = append(levels, level{res, next, det})
		avgs = next
	}
	for _, l := range levels {
		d := "-"
		if l.details != nil {
			d = fmt.Sprintf("%v", l.details)
		}
		t.add(fmt.Sprintf("%d", l.res), fmt.Sprintf("%v", l.avgs), d)
	}
	t.write(cfg.Out)
	w, err := wavelet.Transform(data)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "W_A = %v (paper: [7 2 -4 -3 0 -13 -1 6])\n", w)
	return nil
}

func runTable3(cfg Config) error {
	base := cfg.size(1 << 17) // stands in for the paper's 2M base partition
	t := &table{header: []string{"Name", "#Records", "Avg", "Stdv", "Max"}}
	addRows := func(prefix string, gen func(n int) dataset.Generator, sizes []int) {
		for _, mult := range sizes {
			n := base * mult
			data := gen(n).Generate(n, cfg.seed())
			s := dataset.Summarize(data)
			t.add(fmt.Sprintf("%s%dx", prefix, mult), fint(int64(s.Records)),
				ffloat(s.Avg), ffloat(s.Stdv), ffloat(s.Max))
		}
	}
	nyctSizes := []int{1, 2, 4, 8}
	if cfg.Quick {
		nyctSizes = []int{1, 2}
	}
	addRows("NYCT", func(n int) dataset.Generator {
		// The paper's 32M/64M partitions contain the extreme outliers.
		if n >= base*8 {
			return dataset.NYCTLike{Outliers: true}
		}
		return dataset.NYCTLike{}
	}, nyctSizes)
	wdSizes := []int{1, 2, 4}
	if cfg.Quick {
		wdSizes = []int{1}
	}
	addRows("WD", func(n int) dataset.Generator { return dataset.WDLike{} }, wdSizes)
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: NYCT mean a few hundred s, huge max/stdv in the largest partitions; WD mean ~125, stdv ~119, max 655")
	return nil
}
