package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/serve"
)

func init() {
	register("serve", "Sharded serve tier: routed query throughput, solo node vs 3-node R=2 cluster", runServe)
}

// runServe measures the query tier end to end: synopses published into a
// shard store, nodes owning them by consistent hash, a router fanning
// queries out over the peer transport. The solo row is the floor (one
// node owns everything, every query crosses one loopback hop); the
// cluster row shows what sharding buys once queries to different owners
// ride independent peer links.
func runServe(cfg Config) error {
	t := &table{header: []string{"cluster", "shards", "queries", "wall", "queries/s"}}

	n := cfg.size(1 << 12)
	budget := n / 16
	if budget < 1 {
		budget = 1
	}
	storm := cfg.size(1 << 11)
	const workers = 4

	storeDir, err := os.MkdirTemp("", "dwbench-serve-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	keys := make([]serve.ShardKey, 4)
	for i := range keys {
		data := dataset.Uniform{Max: 1000}.Generate(n, cfg.seed()+int64(i))
		syn, maxAbs, err := greedy.SynopsisAbs(data, budget)
		if err != nil {
			return err
		}
		keys[i] = serve.ShardKey{Dataset: fmt.Sprintf("d%d", i), B: budget, Metric: "abs"}
		if err := serve.WriteShard(storeDir, keys[i], syn, maxAbs); err != nil {
			return err
		}
	}

	for _, tier := range []struct {
		name     string
		nodes    []string
		replicas int
	}{
		{"serve/solo", []string{"solo"}, 1},
		{"serve/cluster", []string{"a", "b", "c"}, 2},
	} {
		c, err := startServeCluster(storeDir, tier.nodes, tier.replicas)
		if err != nil {
			return err
		}
		a0, t0 := measureAllocs(), time.Now()
		queries, err := serveStorm(c.http.URL, keys, workers, storm)
		wall, allocs := time.Since(t0), measureAllocs()-a0
		c.close()
		if err != nil {
			return err
		}
		rec := Record{
			Experiment: tier.name,
			Params: fmt.Sprintf("nodes=%d replicas=%d shards=%d values=%d budget=%d workers=%d",
				len(tier.nodes), tier.replicas, len(keys), n, budget, workers),
			WallMS:        float64(wall.Milliseconds()),
			Queries:       queries,
			QueriesPerSec: float64(queries) / wall.Seconds(),
			Allocs:        allocs,
		}
		cfg.Collect.Add(rec)
		t.add(rec.Experiment, fint(int64(len(keys))), fint(queries), fsec(wall), ffloat(rec.QueriesPerSec))
	}

	t.write(cfg.Out)
	return nil
}

// servedCluster is an in-process node set behind a real router: loopback
// peer links, HTTP front end — the full wire path without processes.
type servedCluster struct {
	nodes  []*serve.Node
	router *serve.Router
	http   *httptest.Server
}

func startServeCluster(storeDir string, names []string, replicas int) (*servedCluster, error) {
	c := &servedCluster{}
	var peers []serve.Peer
	for _, name := range names {
		node, err := serve.NewNode(serve.NodeConfig{
			Name: name, Nodes: names, Replicas: replicas,
			Store: serve.DirStore{Dir: storeDir},
		})
		if err != nil {
			c.close()
			return nil, err
		}
		if _, err := node.Warm(); err != nil {
			c.close()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			node.Close()
			c.close()
			return nil, err
		}
		go node.Serve(ln)
		c.nodes = append(c.nodes, node)
		peers = append(peers, serve.Peer{Name: name, Addr: ln.Addr().String()})
	}
	rt, err := serve.NewRouter(serve.RouterConfig{Peers: peers, Replicas: replicas})
	if err != nil {
		c.close()
		return nil, err
	}
	c.router = rt
	c.http = httptest.NewServer(rt)
	return c, nil
}

func (c *servedCluster) close() {
	if c.http != nil {
		c.http.Close()
	}
	if c.router != nil {
		c.router.Close()
	}
	for _, n := range c.nodes {
		n.Close()
	}
}

// serveStorm drives total point queries through the router from the
// given number of concurrent workers, round-robin over the shard keys.
func serveStorm(base string, keys []serve.ShardKey, workers, total int) (int64, error) {
	var next, done atomic.Int64
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				k := keys[i%len(keys)]
				url := fmt.Sprintf("%s/point?i=%d&dataset=%s&b=%d&metric=%s",
					base, i%7, k.Dataset, k.B, k.Metric)
				resp, err := http.Get(url)
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("serve storm: %s answered %d", url, resp.StatusCode)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return done.Load(), err
	default:
		return done.Load(), nil
	}
}
