// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6 and Appendix A.5) on synthetic stand-ins for the
// paper's datasets. Each experiment prints the same rows/series the paper
// reports. Absolute numbers differ from the paper (different hardware and
// scaled-down inputs); the shapes — who wins, by what factor, where the
// crossovers are — are the reproduction target recorded in EXPERIMENTS.md.
//
// Experiments run on the in-process engine, which executes real map and
// reduce tasks and records per-task durations; "parallel tasks" series are
// produced by scheduling those measured tasks onto the requested number of
// slots (mr.Metrics.Makespan), exactly mirroring Hadoop's slot model.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dwmaxerr/internal/obs"
)

// Config parameterizes an experiment run.
type Config struct {
	// Out receives the rendered tables.
	Out io.Writer
	// Scale shifts every dataset size: the default sizes are multiplied by
	// 2^Scale (negative allowed). 0 keeps the defaults (laptop-friendly).
	Scale int
	// Seed makes data generation deterministic.
	Seed int64
	// Quick shrinks everything aggressively for smoke tests.
	Quick bool
	// Collect, when non-nil, receives machine-readable Records: one per
	// experiment, plus finer-grained workload records from experiments
	// that track shuffle volume themselves (nil Collect is safe — Add is
	// a no-op).
	Collect *Collector
	// Trace, when non-nil, receives one child span per experiment with
	// the algorithm runs' span trees nested below (dwbench -trace).
	Trace *obs.Span
}

func (c Config) size(base int) int {
	s := c.Scale
	if c.Quick {
		s -= 4
	}
	for ; s > 0; s-- {
		base *= 2
	}
	for ; s < 0 && base > 64; s++ {
		base /= 2
	}
	return base
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 20160626 // SIGMOD'16 opening day
}

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(Config) error
}

var registry []Experiment

func register(name, title string, run func(Config) error) {
	registry = append(registry, Experiment{Name: name, Title: title, Run: run})
}

// All returns the registered experiments in a stable order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds one experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the named experiment ("all" runs every one).
func Run(name string, cfg Config) error {
	if name == "all" {
		for _, e := range All() {
			if err := runOne(e, cfg); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
		}
		return nil
	}
	e, ok := Lookup(name)
	if !ok {
		names := make([]string, 0, len(registry))
		for _, e := range All() {
			names = append(names, e.Name)
		}
		return fmt.Errorf("experiments: unknown experiment %q (available: %v, all)", name, names)
	}
	return runOne(e, cfg)
}

func runOne(e Experiment, cfg Config) error {
	fmt.Fprintf(cfg.Out, "== %s — %s ==\n", e.Name, e.Title)
	span := cfg.Trace.Child("experiment:" + e.Name)
	cfg.Trace = span
	allocs0 := measureAllocs()
	start := time.Now()
	err := e.Run(cfg)
	span.End()
	if err != nil {
		return err
	}
	wall := time.Since(start)
	cfg.Collect.Add(Record{
		Experiment: e.Name,
		WallMS:     float64(wall.Milliseconds()),
		Allocs:     measureAllocs() - allocs0,
	})
	fmt.Fprintf(cfg.Out, "(%s completed in %v)\n\n", e.Name, wall.Round(time.Millisecond))
	return nil
}

// table renders aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
}

func fsec(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func ffloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func fint(v int64) string { return fmt.Sprintf("%d", v) }
