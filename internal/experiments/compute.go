package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/wavelet"
)

func init() {
	register("compute", "Compute-kernel throughput: blocked vs reference Haar transform, inverse, arena DP solves", runCompute)
}

// runCompute measures the raw compute kernels in isolation — no shuffle,
// no engine. The transform rows pit the cache-blocked (and parallel)
// Haar against the textbook level-by-level reference on the same input,
// so a committed BENCH_compute.json carries its own same-run baseline;
// the dp rows track the arena-allocated bottom-up solves whose allocation
// count the arenas are meant to hold flat.
func runCompute(cfg Config) error {
	t := &table{header: []string{"kernel", "n", "wall", "MB/s", "allocs", "vs ref"}}

	n := cfg.size(1 << 24)
	data := dataset.Uniform{Max: 1000}.Generate(n, cfg.seed())
	w := make([]float64, n)
	out := make([]float64, n)

	type kernel struct {
		name string
		ref  string // experiment name of this kernel's reference row
		fn   func()
	}
	kernels := []kernel{
		{"compute/transform-reference", "", func() { wavelet.ReferenceTransformInto(w, data) }},
		{"compute/transform-blocked", "compute/transform-reference", func() { wavelet.TransformInto(w, data) }},
		{"compute/transform-parallel", "compute/transform-reference", func() {
			wavelet.ParallelTransformInto(w, data, runtime.NumCPU())
		}},
		// The inverse rows reuse w as left by the transforms above (all
		// three produce bitwise-identical coefficients).
		{"compute/inverse-reference", "", func() { wavelet.ReferenceInverseInto(out, w) }},
		{"compute/inverse-blocked", "compute/inverse-reference", func() { wavelet.InverseInto(out, w) }},
	}
	refWall := map[string]float64{}
	for _, k := range kernels {
		wall, allocs := sustained(5, k.fn)
		ms := float64(wall) / 1e6
		refWall[k.name] = ms
		rec := Record{
			Experiment:  k.name,
			Params:      fmt.Sprintf("n=%d workers=%d", n, runtime.NumCPU()),
			WallMS:      ms,
			BytesPerSec: float64(n*8) / wall.Seconds(),
			Allocs:      allocs,
		}
		cfg.Collect.Add(rec)
		speedup := "-"
		if k.ref != "" && ms > 0 {
			speedup = fmt.Sprintf("%.2fx", refWall[k.ref]/ms)
		}
		t.add(k.name, fint(int64(n)), fsec(wall), ffloat(rec.BytesPerSec/1e6), fint(int64(allocs)), speedup)
	}

	// ---- DP micros: arena-backed bottom-up solves ----
	dn := cfg.size(1 << 10)
	ddata := dataset.Uniform{Max: 100}.Generate(dn, cfg.seed())
	dpKernels := []kernel{
		{"compute/dp-minhaar", "", func() {
			if _, _, err := dp.MinHaarSpace(ddata, dp.Params{Epsilon: 25, Delta: 2.5}); err != nil {
				panic(err)
			}
		}},
		{"compute/dp-haarplus", "", func() {
			if _, _, err := dp.HaarPlus(ddata, dp.Params{Epsilon: 25, Delta: 2.5}); err != nil {
				panic(err)
			}
		}},
	}
	for _, k := range dpKernels {
		wall, allocs := sustained(5, k.fn)
		rec := Record{
			Experiment: k.name,
			Params:     fmt.Sprintf("n=%d eps=25 delta=2.5", dn),
			WallMS:     float64(wall) / 1e6,
			Allocs:     allocs,
		}
		cfg.Collect.Add(rec)
		t.add(k.name, fint(int64(dn)), fsec(wall), "-", fint(int64(allocs)), "-")
	}

	t.write(cfg.Out)
	return nil
}

// sustained runs fn once as warm-up, then reps times back to back, and
// reports the mean wall clock and allocation count per run — the same
// methodology as testing.B's timing loop. Sustained iteration matters
// here: a kernel that allocates a large scratch buffer per call pays GC
// cycles and page re-faults at every call of a real pipeline, a cost a
// warm-heap single shot systematically hides.
func sustained(reps int, fn func()) (time.Duration, uint64) {
	fn()
	a0, t0 := measureAllocs(), time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	wall, allocs := time.Since(t0), measureAllocs()-a0
	return wall / time.Duration(reps), allocs / uint64(reps)
}
