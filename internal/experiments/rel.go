package experiments

import (
	"fmt"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/greedy"
)

func init() {
	register("rel", "Extension: maximum relative error — GreedyRel vs. DGreedyRel (Section 5.4)", runRel)
}

// runRel exercises the relative-error path the paper describes but never
// evaluates (Section 5.4): centralized GreedyRel vs. distributed
// DGreedyRel across budgets, with the sanity bound S. The paper's "no
// quality degradation" claim is checked in the same regime as for the
// absolute metric.
func runRel(cfg Config) error {
	n := cfg.size(1 << 12)
	data := wdShifted(cfg, n)
	src := dist.SliceSource(data)
	s := n / 16
	const sanity = 5
	t := &table{header: []string{"B", "GreedyRel max_rel", "wall", "DGreedyRel max_rel", "runtime(40 slots)", "wall"}}
	for _, div := range []int{32, 16, 8, 4} {
		b := n / div
		t0 := time.Now()
		_, central, err := greedy.SynopsisRel(data, b, sanity)
		if err != nil {
			return err
		}
		centralWall := time.Since(t0)
		rep, wall, err := runReport(func() (*dist.Report, error) {
			return dist.DGreedyRel(src, b, dist.Config{SubtreeLeaves: s, Sanity: sanity, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("N/%d", div),
			fmt.Sprintf("%.3f%%", central*100), fsec(centralWall),
			fmt.Sprintf("%.3f%%", rep.MaxErr*100), fsec(rep.Makespan(40, 4)), fsec(wall))
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "expected shape: DGreedyRel matches GreedyRel's max_rel at every budget (the Section 6.3 equality, extended to the relative metric)")
	return nil
}

// wdShifted is the Section 5.4 workload: smooth sensor-like data kept away
// from the sanity floor.
func wdShifted(cfg Config, n int) []float64 {
	src := dataset.WDLike{}.Generate(n, cfg.seed())
	data := make([]float64, n)
	for i, v := range src {
		data[i] = v + 50
	}
	return data
}
