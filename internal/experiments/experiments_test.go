package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke test skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e.Name, Config{Out: &buf, Quick: true}); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.Name, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.Name) {
				t.Fatalf("%s: missing banner in output", e.Name)
			}
			if len(out) < 80 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.Name, out)
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", Config{Out: &buf}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestLookupAndAll(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	for _, want := range []string{"table1", "table3", "fig5a", "fig5b", "fig5c", "fig5d",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "comm", "ablation-eb"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

func TestConfigSize(t *testing.T) {
	c := Config{}
	if c.size(1024) != 1024 {
		t.Fatal("scale 0 changed size")
	}
	if (Config{Scale: 2}).size(1024) != 4096 {
		t.Fatal("positive scale")
	}
	if (Config{Scale: -2}).size(1024) != 256 {
		t.Fatal("negative scale")
	}
	if (Config{Quick: true}).size(1024) != 64 {
		t.Fatal("quick mode")
	}
	if (Config{Scale: -20}).size(1024) != 64 {
		t.Fatal("floor not applied")
	}
}
