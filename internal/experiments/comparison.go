package experiments

import (
	"fmt"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/synopsis"
)

func init() {
	register("fig8", "Direct comparison on the NYCT-like dataset (Figure 8)", func(cfg Config) error {
		return runComparison(cfg, "NYCT", func(n int) []float64 {
			return dataset.NYCTLike{}.Generate(n, cfg.seed())
		}, 50, []int{1, 2, 4, 8})
	})
	register("fig9", "Direct comparison on the WD-like dataset (Figure 9)", func(cfg Config) error {
		// The paper uses δ=20 with WD errors around 125; the scaled-down
		// WD-like data here yields errors around 25-45, so the δ that keeps
		// the same ε/δ regime is ~4.
		return runComparison(cfg, "WD", func(n int) []float64 {
			return dataset.WDLike{}.Generate(n, cfg.seed())
		}, 4, []int{1, 2, 4})
	})
	register("fig10", "Conventional synopsis algorithms, B=N/8 (Figure 10)", runFig10)
	register("fig11", "Conventional synopsis algorithms, B=50 (Figure 11)", runFig11)
}

// runComparison reproduces Figures 8/9: running time and max_abs of the
// max-error algorithms (centralized + distributed) and the conventional
// baselines, across dataset sizes.
func runComparison(cfg Config, name string, gen func(n int) []float64, delta float64, mults []int) error {
	base := cfg.size(1 << 13) // stands in for the 2M base partition
	if cfg.Quick {
		mults = mults[:2]
	}
	tt := &table{header: []string{"dataset", "algorithm", "runtime(40 slots)", "wall", "max_abs"}}
	for _, mult := range mults {
		n := base * mult
		data := gen(n)
		src := dist.SliceSource(data)
		b := n / 8
		s := n / 16
		label := fmt.Sprintf("%s%dx", name, mult)

		t0 := time.Now()
		_, gErr, err := greedy.SynopsisAbs(data, b)
		if err != nil {
			return err
		}
		tt.add(label, "GreedyAbs", "-", fsec(time.Since(t0)), ffloat(gErr))

		dg, dgWall, err := runReport(func() (*dist.Report, error) {
			return dist.DGreedyAbs(src, b, dist.Config{SubtreeLeaves: s, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		tt.add(label, "DGreedyAbs", fsec(dg.Makespan(40, 4)), fsec(dgWall), ffloat(dg.MaxErr))

		t0 = time.Now()
		ih, err := dp.IndirectHaar(data, b, delta)
		if err != nil {
			return err
		}
		tt.add(label, "IndirectHaar", "-", fsec(time.Since(t0)), ffloat(ih.MaxAbs))

		di, diWall, err := runReport(func() (*dist.Report, error) {
			return dist.DIndirectHaar(src, b, dist.Config{SubtreeLeaves: s, Delta: delta, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		tt.add(label, "DIndirectHaar", fsec(di.Makespan(40, 1)), fsec(diWall), ffloat(di.MaxErr))

		con, conWall, err := runReport(func() (*dist.Report, error) {
			return dist.CON(src, b, dist.Config{SubtreeLeaves: s, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		conErr := synopsis.MaxAbsError(con.Synopsis, data)
		tt.add(label, "CON", fsec(con.Jobs[0].Makespan(40, 1)), fsec(conWall), ffloat(conErr))

		sc, scWall, err := runReport(func() (*dist.Report, error) {
			return dist.SendCoef(src, b, 0, dist.Config{SubtreeLeaves: s, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		tt.add(label, "Send-Coef", fsec(sc.Jobs[0].Makespan(40, 1)), fsec(scWall), ffloat(conErr))
	}
	tt.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: DGreedyAbs matches GreedyAbs's error and is the fastest max-error algorithm; the greedy synopsis is several times more accurate than the conventional one; CON beats Send-Coef")
	return nil
}

func runFig10(cfg Config) error {
	base := cfg.size(1 << 13)
	mults := []int{1, 2, 4}
	if cfg.Quick {
		mults = mults[:2]
	}
	tt := &table{header: []string{"dataset", "N", "CON", "Send-V", "Send-Coef", "H-WTopk", "shuffleMB(CON/SV/SC/HW)"}}
	for _, ds := range []struct {
		name string
		gen  dataset.Generator
	}{{"NYCT", dataset.NYCTLike{}}, {"WD", dataset.WDLike{}}} {
		for _, mult := range mults {
			n := base * mult
			data := ds.gen.Generate(n, cfg.seed())
			src := dist.SliceSource(data)
			b := n / 8
			s := n / 16
			row, err := conventionalRow(src, b, s)
			if err != nil {
				return err
			}
			tt.add(ds.name, fint(int64(n)), row[0], row[1], row[2], row[3], row[4])
		}
	}
	tt.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: CON fastest (locality), Send-Coef second, Send-V sequential-slow, H-WTopk worst at B=N/8 (emits ~2B per mapper over three jobs)")
	return nil
}

func runFig11(cfg Config) error {
	base := cfg.size(1 << 13)
	mults := []int{1, 2, 4, 8}
	if cfg.Quick {
		mults = mults[:2]
	}
	tt := &table{header: []string{"dataset", "N", "CON", "Send-V", "Send-Coef", "H-WTopk", "shuffleMB(CON/SV/SC/HW)"}}
	for _, mult := range mults {
		n := base * mult
		data := dataset.NYCTLike{}.Generate(n, cfg.seed())
		src := dist.SliceSource(data)
		s := n / 16
		row, err := conventionalRow(src, 50, s)
		if err != nil {
			return err
		}
		tt.add("NYCT", fint(int64(n)), row[0], row[1], row[2], row[3], row[4])
	}
	tt.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: with B=50, H-WTopk's pruning pays off at larger N (it ships only candidate sets)")
	return nil
}

// conventionalRow runs the four conventional-synopsis algorithms and
// formats their 40-slot makespans and shuffle volumes.
func conventionalRow(src dist.Source, b, s int) ([5]string, error) {
	var out [5]string
	cfg := dist.Config{SubtreeLeaves: s}
	con, _, err := runReport(func() (*dist.Report, error) { return dist.CON(src, b, cfg) })
	if err != nil {
		return out, err
	}
	sv, _, err := runReport(func() (*dist.Report, error) { return dist.SendV(src, b, cfg) })
	if err != nil {
		return out, err
	}
	sc, _, err := runReport(func() (*dist.Report, error) { return dist.SendCoef(src, b, 0, cfg) })
	if err != nil {
		return out, err
	}
	hw, _, err := runReport(func() (*dist.Report, error) { return dist.HWTopk(src, b, cfg) })
	if err != nil {
		return out, err
	}
	mk := func(r *dist.Report) string { return fsec(r.Makespan(40, 1)) }
	mb := func(r *dist.Report) string {
		return fmt.Sprintf("%.2f", float64(r.TotalShuffleBytes())/(1<<20))
	}
	out[0], out[1], out[2], out[3] = mk(con), mk(sv), mk(sc), mk(hw)
	out[4] = mb(con) + "/" + mb(sv) + "/" + mb(sc) + "/" + mb(hw)
	return out, nil
}
