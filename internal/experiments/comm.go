package experiments

import (
	"fmt"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/wavelet"
)

func init() {
	register("comm", "Communication overhead vs. sub-tree height (Equation 6)", runComm)
	register("ablation-eb", "Ablation: error-bucket width e_b (Algorithm 3)", runAblationEB)
}

// runComm measures the bytes shuffled across DP layer boundaries for
// growing sub-tree heights h — Equation 6 predicts O(N · max|M[j]| / 2^h).
func runComm(cfg Config) error {
	n := cfg.size(1 << 13)
	data := dataset.Uniform{Max: 1000}.Generate(n, cfg.seed())
	src := dist.SliceSource(data)
	p := dp.Params{Epsilon: 100, Delta: 10}
	t := &table{header: []string{"h(=log2 S)", "layers", "DP rows shuffled (bytes)", "DGreedyAbs hist shuffle (bytes)"}}
	for s := 4; s <= n/8; s *= 4 {
		res, err := dist.DMHaarSpace(src, p, dist.Config{SubtreeLeaves: s, Trace: cfg.Trace})
		if err != nil {
			return err
		}
		var dpBytes int64
		layers := 0
		for _, j := range res.Jobs {
			dpBytes += j.ShuffleBytes
			layers++
		}
		dg, err := dist.DGreedyAbs(src, n/8, dist.Config{SubtreeLeaves: s, Trace: cfg.Trace})
		if err != nil {
			return err
		}
		t.add(fint(int64(wavelet.Log2(s))), fint(int64(layers)), fint(dpBytes), fint(dg.Jobs[1].ShuffleBytes))
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: communication shrinks geometrically with the sub-tree height h (Equation 6)")
	return nil
}

// runAblationEB sweeps the error-bucket width of Algorithm 3: coarser
// buckets compact more of the deletion order into single key-values
// (less I/O) at the cost of a coarser error estimate.
func runAblationEB(cfg Config) error {
	n := cfg.size(1 << 13)
	data := dataset.NYCTLike{}.Generate(n, cfg.seed())
	src := dist.SliceSource(data)
	b := n / 8
	s := n / 16
	t := &table{header: []string{"e_b", "hist shuffle (records)", "hist shuffle (bytes)", "max_abs"}}
	for _, eb := range []float64{0.01, 0.1, 1, 10, 100} {
		rep, err := dist.DGreedyAbs(src, b, dist.Config{SubtreeLeaves: s, BucketWidth: eb, Trace: cfg.Trace})
		if err != nil {
			return err
		}
		hist := rep.Jobs[1]
		t.add(ffloat(eb), fint(hist.ShuffleRecords), fint(hist.ShuffleBytes), ffloat(rep.MaxErr))
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "design note: wider buckets cut the level-1→level-2 I/O; quality degrades only once e_b approaches the error scale")
	return nil
}
