package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/mr"
)

func init() {
	register("shuffle", "Shuffle fast-path micro/macro throughput (records/sec, bytes/sec, allocs)", runShuffle)
}

// runShuffle measures the mr shuffle itself, isolated from the wavelet
// math: a micro job whose mappers emit histKey-shaped records as fast as
// they can, plus the two macro workloads whose wall time the shuffle
// dominates (the Fig. 5c scalability shape and the Eq. 6 communication
// shape). dwbench -json snapshots feed BENCH_baseline.json /
// BENCH_shuffle.json.
func runShuffle(cfg Config) error {
	t := &table{header: []string{"workload", "records", "bytes", "wall", "records/s", "MB/s", "allocs"}}

	// ---- Micro: raw shuffle throughput through the Local engine ----
	splits := 8
	perSplit := cfg.size(1 << 17)
	rec, err := shuffleMicro(splits, perSplit)
	if err != nil {
		return err
	}
	cfg.Collect.Add(rec)
	t.add(rec.Experiment, fint(rec.ShuffleRecords), fint(rec.ShuffleBytes), fmt.Sprintf("%.3fs", rec.WallMS/1e3),
		ffloat(rec.RecordsPerSec), ffloat(rec.BytesPerSec/1e6), fint(int64(rec.Allocs)))

	// ---- Macro: Fig. 5c-shaped DGreedyAbs run ----
	n := cfg.size(1 << 14)
	data := dataset.Uniform{Max: 1000}.Generate(n, cfg.seed())
	a0, t0 := measureAllocs(), time.Now()
	rep, err := dist.DGreedyAbs(dist.SliceSource(data), n/8, dist.Config{SubtreeLeaves: n / 16, Trace: cfg.Trace})
	if err != nil {
		return err
	}
	wall, allocs := time.Since(t0), measureAllocs()-a0
	var recs, bytes int64
	for _, j := range rep.Jobs {
		recs += j.ShuffleRecords
		bytes += j.ShuffleBytes
	}
	macro := Record{
		Experiment:     "shuffle/fig5c-macro",
		Params:         fmt.Sprintf("DGreedyAbs n=%d B=%d s=%d", n, n/8, n/16),
		WallMS:         float64(wall.Milliseconds()),
		ShuffleRecords: recs,
		ShuffleBytes:   bytes,
		RecordsPerSec:  float64(recs) / wall.Seconds(),
		BytesPerSec:    float64(bytes) / wall.Seconds(),
		Allocs:         allocs,
	}
	cfg.Collect.Add(macro)
	t.add(macro.Experiment, fint(recs), fint(bytes), fsec(wall), ffloat(macro.RecordsPerSec), ffloat(macro.BytesPerSec/1e6), fint(int64(allocs)))

	// ---- Macro: Eq. 6 communication-shaped DP-row shuffle ----
	cn := cfg.size(1 << 12)
	cdata := dataset.Uniform{Max: 1000}.Generate(cn, cfg.seed())
	a0, t0 = measureAllocs(), time.Now()
	res, err := dist.DMHaarSpace(dist.SliceSource(cdata), dp.Params{Epsilon: 100, Delta: 10}, dist.Config{SubtreeLeaves: 8, Trace: cfg.Trace})
	if err != nil {
		return err
	}
	wall, allocs = time.Since(t0), measureAllocs()-a0
	recs, bytes = 0, 0
	for _, j := range res.Jobs {
		recs += j.ShuffleRecords
		bytes += j.ShuffleBytes
	}
	comm := Record{
		Experiment:     "shuffle/comm-macro",
		Params:         fmt.Sprintf("DMHaarSpace n=%d s=8", cn),
		WallMS:         float64(wall.Milliseconds()),
		ShuffleRecords: recs,
		ShuffleBytes:   bytes,
		RecordsPerSec:  float64(recs) / wall.Seconds(),
		BytesPerSec:    float64(bytes) / wall.Seconds(),
		Allocs:         allocs,
	}
	cfg.Collect.Add(comm)
	t.add(comm.Experiment, fint(recs), fint(bytes), fsec(wall), ffloat(comm.RecordsPerSec), ffloat(comm.BytesPerSec/1e6), fint(int64(allocs)))

	t.write(cfg.Out)
	return nil
}

// shuffleMicro runs one shuffle-bound job: mappers emit [uint32 bucket |
// float64] keys (the 12-byte histKey shape of DGreedyAbs job 1) with
// uint64 count values, reducers sum per key — no wavelet math, so wall
// time is the shuffle itself.
func shuffleMicro(splits, perSplit int) (Record, error) {
	job := ShuffleJob(splits, perSplit)
	a0, t0 := measureAllocs(), time.Now()
	res, err := (&mr.Local{}).Run(job)
	if err != nil {
		return Record{}, err
	}
	wall, allocs := time.Since(t0), measureAllocs()-a0
	m := res.Metrics
	return Record{
		Experiment:     "shuffle/micro",
		Params:         fmt.Sprintf("splits=%d records/split=%d key=12B value=8B reducers=4", splits, perSplit),
		WallMS:         float64(wall.Milliseconds()),
		ShuffleRecords: m.ShuffleRecords,
		ShuffleBytes:   m.ShuffleBytes,
		RecordsPerSec:  float64(m.ShuffleRecords) / wall.Seconds(),
		BytesPerSec:    float64(m.ShuffleBytes) / wall.Seconds(),
		Allocs:         allocs,
	}, nil
}

// ShuffleJob builds the micro-benchmark job; bench_test.go reuses it so
// `go test -bench` and `dwbench -exp shuffle` measure the same workload.
func ShuffleJob(splits, perSplit int) *mr.Job {
	ss := make([]mr.Split, splits)
	for i := range ss {
		ss[i] = mr.Split{ID: i}
	}
	return &mr.Job{
		Name:     "shuffle-micro",
		Splits:   ss,
		Reducers: 4,
		Partition: func(key []byte, nred int) int {
			return int(binary.BigEndian.Uint32(key[:4])) % nred
		},
		Map: func(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
			// The emit idiom of the dist hot loops: a histKey-shaped
			// [uint32 | order-preserving float64] key per record, built in
			// one scratch buffer per task (the engine copies on emit).
			var kbuf, vbuf []byte
			for r := 0; r < perSplit; r++ {
				c := uint32(r % 97)
				kbuf = append(kbuf[:0], byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
				kbuf = mr.AppendFloat64(kbuf, float64(r%1024))
				vbuf = mr.AppendUint64(vbuf[:0], uint64(r))
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(ctx mr.TaskContext, key []byte, values [][]byte, emit mr.Emit) error {
			var sum uint64
			for _, v := range values {
				sum += mr.DecodeUint64(v)
			}
			return emit(key, mr.EncodeUint64(sum))
		},
	}
}
