package experiments

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
)

// Machine-readable benchmark results. dwbench -json collects one Record
// per experiment (wall time and allocation count around the whole run)
// plus finer-grained records that shuffle-aware experiments add
// themselves, and writes them as a JSON document. Committed snapshots
// (BENCH_baseline.json before the shuffle fast path, BENCH_shuffle.json
// after) anchor the repo's performance trajectory.

// Record is one measured workload.
type Record struct {
	// Experiment is the registered experiment name; sub-workloads extend
	// it with a "/label" suffix.
	Experiment string `json:"experiment"`
	// Params describes the workload shape (sizes, widths, flags).
	Params string  `json:"params,omitempty"`
	WallMS float64 `json:"wall_ms"`
	// Shuffle volume crossing the mr engines, when the workload tracks it.
	ShuffleRecords int64 `json:"shuffle_records,omitempty"`
	ShuffleBytes   int64 `json:"shuffle_bytes,omitempty"`
	// RecordsPerSec / BytesPerSec are shuffle throughput rates.
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
	BytesPerSec   float64 `json:"bytes_per_sec,omitempty"`
	// Allocs is the heap allocation count (runtime.MemStats.Mallocs
	// delta) attributed to the workload.
	Allocs uint64 `json:"allocs,omitempty"`
	// Streaming-ingest workloads: values pushed, the sustained push rate,
	// snapshot epochs published, and — when readers ran concurrently —
	// queries answered against the live snapshot and their rate.
	IngestValues  int64   `json:"ingest_values,omitempty"`
	ValuesPerSec  float64 `json:"values_per_sec,omitempty"`
	Epochs        int64   `json:"epochs,omitempty"`
	Queries       int64   `json:"queries,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
	// Rebalancing workloads: membership epoch bumps the run performed,
	// end-to-end cutover wall time (prepare through commit), and how many
	// concurrent queries were answered by anything other than the shard's
	// current primary while the ring changed under them.
	EpochBumps      int64   `json:"epoch_bumps,omitempty"`
	RebalanceMS     float64 `json:"rebalance_ms,omitempty"`
	QueriesDegraded int64   `json:"queries_degraded,omitempty"`
}

// Collector gathers Records across experiments. Safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	records []Record // guarded by mu
}

// Add appends one record.
func (c *Collector) Add(r Record) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.records = append(c.records, r)
	c.mu.Unlock()
}

// Records returns a copy of the collected records.
func (c *Collector) Records() []Record {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// resultsDoc is the JSON document layout.
type resultsDoc struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Record `json:"results"`
}

// WriteJSON writes the collected records to path.
func (c *Collector) WriteJSON(path string) error {
	doc := resultsDoc{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   c.Records(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// measureAllocs returns the current Mallocs counter; the delta of two
// calls approximates the allocations a workload performed. GC is not
// forced, so numbers include any concurrent background noise — adequate
// for the order-of-magnitude trajectory the snapshots track.
func measureAllocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}
