package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/serve"
)

func init() {
	register("rebalance", "Live rebalancing: routed throughput before, during, and after a node join at R=2", runRebalance)
}

// runRebalance measures what a live membership change costs the query
// path. A two-node R=2 cluster serves a storm at epoch 0 (the floor), a
// cold third node joins mid-storm (the router's two-phase cutover warms
// it from the store before routing to it), and a final storm runs on the
// settled three-node ring. The "during" row carries the disruption
// metrics: how long the cutover took end to end (rebalance_ms), how many
// epoch bumps the change cost (always one — the contract), and how many
// of the concurrent queries were answered by anything other than the
// shard's current primary (queries_degraded — zero means the cutover was
// invisible to clients).
func runRebalance(cfg Config) error {
	t := &table{header: []string{"phase", "queries", "wall", "queries/s", "degraded"}}

	n := cfg.size(1 << 12)
	budget := n / 16
	if budget < 1 {
		budget = 1
	}
	storm := cfg.size(1 << 11)
	const workers = 4

	storeDir, err := os.MkdirTemp("", "dwbench-rebalance-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	keys := make([]serve.ShardKey, 4)
	for i := range keys {
		data := dataset.Uniform{Max: 1000}.Generate(n, cfg.seed()+int64(i))
		syn, maxAbs, err := greedy.SynopsisAbs(data, budget)
		if err != nil {
			return err
		}
		keys[i] = serve.ShardKey{Dataset: fmt.Sprintf("d%d", i), B: budget, Metric: "abs"}
		if err := serve.WriteShard(storeDir, keys[i], syn, maxAbs); err != nil {
			return err
		}
	}

	c, err := startServeCluster(storeDir, []string{"a", "b"}, 2)
	if err != nil {
		return err
	}
	defer c.close()

	// The joiner boots cold, knowing only itself: every shard the merged
	// ring hands it must arrive via the cutover's prepare phase.
	joiner, err := serve.NewNode(serve.NodeConfig{
		Name: "c", Nodes: []string{"c"}, Replicas: 2,
		Store: serve.DirStore{Dir: storeDir},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		joiner.Close()
		return err
	}
	go joiner.Serve(ln)
	c.nodes = append(c.nodes, joiner)

	phase := func(name string, queries, degraded int64, wall time.Duration, rec Record) {
		rec.Experiment = "rebalance/" + name
		rec.Params = fmt.Sprintf("nodes=2+1 replicas=2 shards=%d values=%d budget=%d workers=%d",
			len(keys), n, budget, workers)
		rec.WallMS = float64(wall.Milliseconds())
		rec.Queries = queries
		rec.QueriesPerSec = float64(queries) / wall.Seconds()
		rec.QueriesDegraded = degraded
		cfg.Collect.Add(rec)
		t.add(rec.Experiment, fint(queries), fsec(wall), ffloat(rec.QueriesPerSec), fint(degraded))
	}

	// Before: steady state on the two-node ring.
	t0 := time.Now()
	queries, degraded, err := rebalanceStorm(c.http.URL, keys, workers, storm)
	if err != nil {
		return err
	}
	phase("before", queries, degraded, time.Since(t0), Record{})

	// During: the same storm with the join landing a quarter of the way
	// in. The storm and the cutover contend for the same peer links; the
	// degraded count is the disruption clients actually saw.
	var stormErr error
	var stormQ, stormD int64
	done := make(chan struct{})
	var progress atomic.Int64
	t0 = time.Now()
	go func() {
		defer close(done)
		stormQ, stormD, stormErr = rebalanceStormCounted(c.http.URL, keys, workers, storm, &progress)
	}()
	for progress.Load() < int64(storm/4) {
		select {
		case <-done:
		case <-time.After(200 * time.Microsecond):
			continue
		}
		break
	}
	j0 := time.Now()
	mem, err := c.router.Join("c", ln.Addr().String())
	rebalance := time.Since(j0)
	if err != nil {
		return err
	}
	<-done
	wall := time.Since(t0)
	if stormErr != nil {
		return stormErr
	}
	phase("during", stormQ, stormD, wall, Record{
		EpochBumps:  mem.Epoch,
		RebalanceMS: float64(rebalance.Microseconds()) / 1000,
	})

	// After: steady state on the settled three-node ring.
	t0 = time.Now()
	queries, degraded, err = rebalanceStorm(c.http.URL, keys, workers, storm)
	if err != nil {
		return err
	}
	phase("after", queries, degraded, time.Since(t0), Record{})

	t.write(cfg.Out)
	return nil
}

// rebalanceStorm drives total point queries through the router and
// counts how many were answered by anything other than the owning
// primary — the client-visible signature of a cutover in flight.
func rebalanceStorm(base string, keys []serve.ShardKey, workers, total int) (int64, int64, error) {
	var progress atomic.Int64
	return rebalanceStormCounted(base, keys, workers, total, &progress)
}

func rebalanceStormCounted(base string, keys []serve.ShardKey, workers, total int, progress *atomic.Int64) (int64, int64, error) {
	var next, done, degraded atomic.Int64
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				k := keys[i%len(keys)]
				url := fmt.Sprintf("%s/point?i=%d&dataset=%s&b=%d&metric=%s",
					base, i%7, k.Dataset, k.B, k.Metric)
				resp, err := http.Get(url)
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("rebalance storm: %s answered %d", url, resp.StatusCode)
					return
				}
				if resp.Header.Get("X-Dwserve-Role") != "primary" {
					degraded.Add(1)
				}
				done.Add(1)
				progress.Add(1)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return done.Load(), degraded.Load(), err
	default:
		return done.Load(), degraded.Load(), nil
	}
}
