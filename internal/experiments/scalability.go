package experiments

import (
	"fmt"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/greedy"
)

func init() {
	register("fig5a", "Runtime vs. sub-tree size (Figure 5a)", runFig5a)
	register("fig5b", "Runtime vs. budget B (Figure 5b)", runFig5b)
	register("fig5c", "DGreedyAbs scalability with N and parallel tasks (Figure 5c)", runFig5c)
	register("fig5d", "DIndirectHaar scalability with N and parallel tasks (Figure 5d)", runFig5d)
}

// uniformSource generates the Section 6.1 workload: uniform values in
// [0, 1K].
func uniformSource(cfg Config, n int) dist.SliceSource {
	return dist.SliceSource(dataset.Uniform{Max: 1000}.Generate(n, cfg.seed()))
}

// runReport executes fn, returning the report and driver wall time.
func runReport(fn func() (*dist.Report, error)) (*dist.Report, time.Duration, error) {
	t0 := time.Now()
	rep, err := fn()
	return rep, time.Since(t0), err
}

func runFig5a(cfg Config) error {
	n := cfg.size(1 << 16) // stands in for the paper's 17M
	b := n / 8
	src := uniformSource(cfg, n)
	subtrees := []int{n / 64, n / 32, n / 16, n / 8} // 2^17..2^20 in the paper
	t := &table{header: []string{"subtree", "DGreedyAbs(40 slots)", "DGreedyAbs wall", "DIndirectHaar(40 slots)", "DIndirectHaar wall"}}
	for _, s := range subtrees {
		dg, dgWall, err := runReport(func() (*dist.Report, error) {
			return dist.DGreedyAbs(src, b, dist.Config{SubtreeLeaves: s, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		di, diWall, err := runReport(func() (*dist.Report, error) {
			return dist.DIndirectHaar(src, b, dist.Config{SubtreeLeaves: s, Delta: 50, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		t.add(fint(int64(s)), fsec(dg.Makespan(40, 4)), fsec(dgWall), fsec(di.Makespan(40, 1)), fsec(diWall))
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: sub-tree size does not significantly affect runtime (flat lines)")
	return nil
}

func runFig5b(cfg Config) error {
	n := cfg.size(1 << 16)
	src := uniformSource(cfg, n)
	s := n / 16
	t := &table{header: []string{"B", "DGreedyAbs(40 slots)", "DIndirectHaar(40 slots)", "DIndirectHaar probes(jobs)"}}
	for _, div := range []int{64, 32, 16, 8} {
		b := n / div
		dg, _, err := runReport(func() (*dist.Report, error) {
			return dist.DGreedyAbs(src, b, dist.Config{SubtreeLeaves: s, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		di, _, err := runReport(func() (*dist.Report, error) {
			return dist.DIndirectHaar(src, b, dist.Config{SubtreeLeaves: s, Delta: 50, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("N/%d", div), fsec(dg.Makespan(40, 4)), fsec(di.Makespan(40, 1)), fint(int64(len(di.Jobs))))
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: DGreedyAbs flat in B; DIndirectHaar may speed up at larger B (tighter bounds converge faster)")
	return nil
}

func runFig5c(cfg Config) error {
	base := cfg.size(1 << 14)
	sizes := []int{base, base * 2, base * 4, base * 8} // 2M..537M in the paper
	t := &table{header: []string{"N", "GreedyAbs(centralized)", "DGreedyAbs(10)", "DGreedyAbs(20)", "DGreedyAbs(40)", "max_abs(D)", "max_abs(C)"}}
	for _, n := range sizes {
		src := uniformSource(cfg, n)
		b := n / 8
		t0 := time.Now()
		_, centralErr, err := greedy.SynopsisAbs([]float64(src), b)
		if err != nil {
			return err
		}
		centralTime := time.Since(t0)
		rep, _, err := runReport(func() (*dist.Report, error) {
			return dist.DGreedyAbs(src, b, dist.Config{SubtreeLeaves: n / 16, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		t.add(fint(int64(n)), fsec(centralTime),
			fsec(rep.Makespan(10, 4)), fsec(rep.Makespan(20, 4)), fsec(rep.Makespan(40, 4)),
			ffloat(rep.MaxErr), ffloat(centralErr))
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: linear in N; halving slots doubles runtime; same max_abs as the centralized greedy")
	return nil
}

func runFig5d(cfg Config) error {
	base := cfg.size(1 << 13)
	sizes := []int{base, base * 2, base * 4}
	t := &table{header: []string{"N", "IndirectHaar(centralized)", "DIndirectHaar(10)", "DIndirectHaar(20)", "DIndirectHaar(40)", "DIndirectHaar wall", "shuffleMB"}}
	for _, n := range sizes {
		src := uniformSource(cfg, n)
		b := n / 8
		t0 := time.Now()
		if _, err := dp.IndirectHaar([]float64(src), b, 50); err != nil {
			return err
		}
		centralTime := time.Since(t0)
		rep, wall, err := runReport(func() (*dist.Report, error) {
			return dist.DIndirectHaar(src, b, dist.Config{SubtreeLeaves: n / 16, Delta: 50, Trace: cfg.Trace})
		})
		if err != nil {
			return err
		}
		t.add(fint(int64(n)), fsec(centralTime),
			fsec(rep.Makespan(10, 1)), fsec(rep.Makespan(20, 1)), fsec(rep.Makespan(40, 1)), fsec(wall),
			fmt.Sprintf("%.3f", float64(rep.TotalShuffleBytes())/(1<<20)))
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: linear in N; the centralized DP wins at small N (no job/shuffle overhead), the distributed one as N and compute-intensity grow")
	return nil
}
