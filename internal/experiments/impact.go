package experiments

import (
	"fmt"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
)

func init() {
	register("fig6", "Impact of distribution and δ on DIndirectHaar (Figure 6)", runFig6)
	register("fig7", "Impact of value ranges and distributions (Figure 7)", runFig7)
}

// distributions returns the Section 6.2 synthetic workloads over [0, max].
func distributions(max float64) []dataset.Generator {
	return []dataset.Generator{
		dataset.Uniform{Max: max},
		dataset.Zipf{Max: max, Exponent: 0.7},
		dataset.Zipf{Max: max, Exponent: 1.5},
	}
}

func runFig6(cfg Config) error {
	n := cfg.size(1 << 14)
	b := n / 8
	s := n / 16
	t := &table{header: []string{"distribution", "δ", "runtime(40 slots)", "max_abs", "probes(jobs)"}}
	for _, gen := range distributions(1000) {
		data := gen.Generate(n, cfg.seed())
		src := dist.SliceSource(data)
		for _, delta := range []float64{10, 20, 50, 100} {
			rep, _, err := runReport(func() (*dist.Report, error) {
				return dist.DIndirectHaar(src, b, dist.Config{SubtreeLeaves: s, Delta: delta, Trace: cfg.Trace})
			})
			if err != nil {
				// The paper reports DIndirectHaar "could not run" for
				// Zipf-1.5 with δ=50,100 (δ larger than the space to
				// quantize); surface that the same way.
				t.add(gen.Name(), ffloat(delta), "n/a ("+err.Error()+")", "-", "-")
				continue
			}
			t.add(gen.Name(), ffloat(delta), fsec(rep.Makespan(40, 1)), ffloat(rep.MaxErr), fint(int64(len(rep.Jobs))))
		}
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: biased (Zipf) data is faster and far more accurate; smaller δ costs time but improves quality until the runtime floor")
	return nil
}

func runFig7(cfg Config) error {
	n := cfg.size(1 << 14)
	b := n / 8
	s := n / 16
	t := &table{header: []string{"distribution", "range", "DIndirectHaar(40)", "max_abs(DIH)", "DGreedyAbs(40)", "max_abs(DGA)"}}
	for _, max := range []float64{1000, 100000, 1000000} {
		for _, gen := range distributions(max) {
			data := gen.Generate(n, cfg.seed())
			src := dist.SliceSource(data)
			// δ=20 in the paper; scale it with the range so ε/δ stays in a
			// runnable regime on the bigger ranges.
			delta := 20.0 * max / 1000
			di, _, err := runReport(func() (*dist.Report, error) {
				return dist.DIndirectHaar(src, b, dist.Config{SubtreeLeaves: s, Delta: delta, Trace: cfg.Trace})
			})
			if err != nil {
				return fmt.Errorf("%s range %g: %w", gen.Name(), max, err)
			}
			dg, _, err := runReport(func() (*dist.Report, error) {
				return dist.DGreedyAbs(src, b, dist.Config{SubtreeLeaves: s, Trace: cfg.Trace})
			})
			if err != nil {
				return err
			}
			t.add(gen.Name(), fmt.Sprintf("[0,%g]", max),
				fsec(di.Makespan(40, 1)), ffloat(di.MaxErr),
				fsec(dg.Makespan(40, 4)), ffloat(dg.MaxErr))
		}
	}
	t.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "paper shape: wider ranges raise runtime and error for uniform/zipf-0.7; zipf-1.5 is robust to range; ranges affect DIndirectHaar more than DGreedyAbs")
	return nil
}
