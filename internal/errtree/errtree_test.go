package errtree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dwmaxerr/internal/wavelet"
)

var paperData = []float64{5, 5, 0, 26, 1, 3, 14, 2}

func paperTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := FromData(paperData)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReconstructPaperExample(t *testing.T) {
	tr := paperTree(t)
	// Section 2.2: d_5 = 7 - 2 - 3 - (-1) ... = 3.
	for k, want := range paperData {
		if got := tr.Reconstruct(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("Reconstruct(%d) = %g, want %g", k, got, want)
		}
	}
}

func TestRangeSumPaperExample(t *testing.T) {
	tr := paperTree(t)
	// Section 2.2 works out d(3:6) = 44.
	if got := tr.RangeSum(3, 6); math.Abs(got-44) > 1e-12 {
		t.Fatalf("RangeSum(3,6) = %g, want 44", got)
	}
}

func TestRangeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (uint(rng.Intn(7)) + 1) // 2..128
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 100
		}
		tr, err := FromData(data)
		if err != nil {
			return false
		}
		l := rng.Intn(n)
		h := l + rng.Intn(n-l)
		var want float64
		for i := l; i <= h; i++ {
			want += data[i]
		}
		return math.Abs(tr.RangeSum(l, h)-want) < 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIncomingValuePaperExample(t *testing.T) {
	tr := paperTree(t)
	// Section 4: the incoming value of c_2 is 7 + 2 = 9.
	if got := tr.IncomingValue(2); got != 9 {
		t.Fatalf("IncomingValue(2) = %g, want 9", got)
	}
	if got := tr.IncomingValue(1); got != 7 {
		t.Fatalf("IncomingValue(1) = %g, want 7", got)
	}
	if got := tr.IncomingValue(0); got != 0 {
		t.Fatalf("IncomingValue(0) = %g, want 0", got)
	}
	// Incoming value of node 3 is c_0 - c_1 = 5.
	if got := tr.IncomingValue(3); got != 5 {
		t.Fatalf("IncomingValue(3) = %g, want 5", got)
	}
}

func TestSubtreeMeanEqualsLeafMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 64
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 50
	}
	tr, _ := FromData(data)
	for j := 2; j < n; j++ {
		first, last := tr.LeafRange(j)
		var sum float64
		for i := first; i < last; i++ {
			sum += data[i]
		}
		want := sum / float64(last-first)
		if got := tr.SubtreeMean(j); math.Abs(got-want) > 1e-9 {
			t.Fatalf("SubtreeMean(%d) = %g, want %g", j, got, want)
		}
	}
}

func TestPathAndSigns(t *testing.T) {
	n := 8
	// d_5's path: parent node (8+5)/2 = 6 (right child), then 3, 1, 0.
	p := Path(n, 5, nil)
	want := []int{6, 3, 1, 0}
	if len(p) != len(want) {
		t.Fatalf("Path = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("Path = %v, want %v", p, want)
		}
	}
	// Signs for d_5: under node 6 it is the right leaf (d_5 odd) -> -1;
	// node 3 covers [4,8) and d_5 is in its left half -> +1;
	// node 1 covers [0,8), d_5 in right half -> -1; node 0 -> +1.
	signs := map[int]int{6: -1, 3: 1, 1: -1, 0: 1, 2: 0, 7: 0}
	for j, want := range signs {
		if got := PathSign(n, 5, j); got != want {
			t.Errorf("PathSign(5,%d) = %d, want %d", j, got, want)
		}
	}
}

func TestReconstructViaPathSigns(t *testing.T) {
	tr := paperTree(t)
	n := tr.N()
	for k := 0; k < n; k++ {
		var v float64
		for j := 0; j < n; j++ {
			v += float64(PathSign(n, k, j)) * tr.Coefficient(j)
		}
		if math.Abs(v-paperData[k]) > 1e-12 {
			t.Fatalf("path-sign reconstruction of d_%d = %g, want %g", k, v, paperData[k])
		}
	}
}

func TestPartitionLayerCounts(t *testing.T) {
	// N=2^9, h=3: detail levels 0..8 cut into three bands of height 3.
	p, err := Partition(1<<9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLayers() != 3 {
		t.Fatalf("layers = %d, want 3", p.NumLayers())
	}
	// Top layer (last) is the single topmost sub-tree.
	if len(p.Layers[2]) != 1 || p.Layers[2][0].Root != 1 {
		t.Fatalf("top layer = %+v", p.Layers[2])
	}
	// Middle layer roots at detail level 3: nodes 8..15.
	if len(p.Layers[1]) != 8 || p.Layers[1][0].Root != 8 {
		t.Fatalf("middle layer = %+v", p.Layers[1])
	}
	// Bottom layer roots at level 6: nodes 64..127.
	if len(p.Layers[0]) != 64 || p.Layers[0][0].Root != 64 {
		t.Fatalf("bottom layer = %+v", p.Layers[0])
	}
}

func TestPartitionUnevenTop(t *testing.T) {
	// N=2^5 (5 detail levels), h=2: bands of 2,2 and a top band of 1.
	p, err := Partition(1<<5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLayers() != 3 {
		t.Fatalf("layers = %d, want 3", p.NumLayers())
	}
	if p.Layers[2][0].Height != 1 {
		t.Fatalf("top band height = %d, want 1", p.Layers[2][0].Height)
	}
}

func TestPartitionCoversAllDetailNodesExactlyOnce(t *testing.T) {
	f := func(logn, h uint8) bool {
		n := 1 << (2 + logn%9) // 4..1024
		hh := 1 + int(h)%4
		p, err := Partition(n, hh)
		if err != nil {
			return false
		}
		seen := make([]int, n)
		for _, layer := range p.Layers {
			for _, st := range layer {
				for _, node := range st.Nodes(nil) {
					seen[node]++
				}
			}
		}
		if seen[0] != 0 {
			return false // node 0 belongs to no sub-tree
		}
		for i := 1; i < n; i++ {
			if seen[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeChildRootsLinkLayers(t *testing.T) {
	p, err := Partition(1<<6, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Each sub-tree's child roots must be roots of sub-trees one layer
	// below (except the bottom layer, whose children are data leaves).
	for li := len(p.Layers) - 1; li >= 1; li-- {
		below := map[int]bool{}
		for _, st := range p.Layers[li-1] {
			below[st.Root] = true
		}
		for _, st := range p.Layers[li] {
			for _, cr := range st.ChildRoots(nil) {
				if !below[cr] {
					t.Fatalf("layer %d subtree root %d: child root %d not found below", li, st.Root, cr)
				}
			}
		}
	}
}

func TestPartitionRootBase(t *testing.T) {
	n, baseLeaves := 64, 8
	p, err := PartitionRootBase(n, baseLeaves)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Bases) != 8 || p.RootLevels != 3 {
		t.Fatalf("bases=%d rootLevels=%d", len(p.Bases), p.RootLevels)
	}
	if p.Bases[0].Root != 8 || p.Bases[7].Root != 15 {
		t.Fatalf("base roots: %+v", p.Bases)
	}
	// Root nodes are 0..7.
	if len(p.RootNodes) != 8 || p.RootNodes[7] != 7 {
		t.Fatalf("root nodes: %v", p.RootNodes)
	}
	// Every data leaf maps to the right base.
	for k := 0; k < n; k++ {
		b := p.BaseIndexOf(k)
		st := p.Bases[b]
		first, last := wavelet.CoefficientSupport(n, st.Root)
		if k < first || k >= last {
			t.Fatalf("leaf %d assigned to base %d covering [%d,%d)", k, b, first, last)
		}
	}
}

func TestIncomingErrorMatchesReconstruction(t *testing.T) {
	// Deleting a set of root-sub-tree coefficients changes every leaf
	// reconstruction under a base sub-tree by the same signed amount;
	// IncomingError must equal that amount.
	rng := rand.New(rand.NewSource(3))
	n, baseLeaves := 64, 8
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64() * 20
	}
	w, _ := wavelet.Transform(data)
	p, _ := PartitionRootBase(n, baseLeaves)

	for trial := 0; trial < 20; trial++ {
		retained := map[int]bool{}
		for _, node := range p.RootNodes {
			if rng.Intn(2) == 0 {
				retained[node] = true
			}
		}
		// Build the truncated coefficient vector: root coefficients kept
		// only if retained, all base coefficients kept.
		trunc := make([]float64, n)
		copy(trunc, w)
		for _, node := range p.RootNodes {
			if !retained[node] {
				trunc[node] = 0
			}
		}
		rec := make([]float64, n)
		wavelet.InverseInto(rec, trunc)
		for b := range p.Bases {
			wantErr := p.IncomingError(b, w, retained)
			first, last := wavelet.CoefficientSupport(n, p.Bases[b].Root)
			for k := first; k < last; k++ {
				if math.Abs((rec[k]-data[k])-wantErr) > 1e-9 {
					t.Fatalf("trial %d base %d leaf %d: err=%g want %g",
						trial, b, k, rec[k]-data[k], wantErr)
				}
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(12, 2); err == nil {
		t.Error("Partition(12): want error")
	}
	if _, err := Partition(16, 0); err == nil {
		t.Error("Partition(h=0): want error")
	}
	if _, err := PartitionRootBase(16, 16); err == nil {
		t.Error("PartitionRootBase(base too big): want error")
	}
	if _, err := PartitionRootBase(12, 4); err == nil {
		t.Error("PartitionRootBase(12): want error")
	}
}

func TestSubtreeNodesAndSize(t *testing.T) {
	st := Subtree{Root: 2, Height: 2}
	nodes := st.Nodes(nil)
	want := []int{2, 4, 5}
	if len(nodes) != st.Size() || st.Size() != 3 {
		t.Fatalf("size = %d nodes = %v", st.Size(), nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
	cr := st.ChildRoots(nil)
	wantCR := []int{8, 9, 10, 11}
	for i := range wantCR {
		if cr[i] != wantCR[i] {
			t.Fatalf("ChildRoots = %v, want %v", cr, wantCR)
		}
	}
}

func TestDumpRendersTreeAndRetention(t *testing.T) {
	tr := paperTree(t)
	var buf strings.Builder
	retained := map[int]bool{0: true, 5: true, 3: true}
	if err := Dump(&buf, tr, paperData, retained, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"error tree over 8 values",
		"c0    = 7",
		"[kept]",
		"[dropped]",
		"c5   ",
		"d0    = 5",
		"d7    = 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Without a retention map, no tags appear.
	buf.Reset()
	if err := Dump(&buf, tr, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "[kept]") {
		t.Fatal("unexpected retention tags")
	}
}

func TestDumpElidesLargeTrees(t *testing.T) {
	data := make([]float64, 1024)
	tr, err := FromData(data)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := Dump(&buf, tr, nil, nil, 15); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "elided") {
		t.Fatalf("large tree not elided:\n%s", buf.String())
	}
}
