// Package errtree implements the error-tree view of a Haar wavelet
// decomposition (Matias, Vitter, Wang), the reconstruction and range-sum
// identities of Section 2.2 of the paper, and the locality-preserving
// partitioning schemes of Sections 4 and 5 (Figures 3 and 4) that underpin
// the distributed algorithms.
//
// Indexing follows the standard heap layout of package wavelet: node 0 is
// the overall average, node 1 the top detail, node i (i >= 1) has children
// 2i and 2i+1, and data leaf d_k (0 <= k < N) hangs under internal node
// (N+k)/2 — as the left child when k is even, right child when k is odd.
package errtree

import (
	"fmt"

	"dwmaxerr/internal/wavelet"
)

// Tree is an error tree over a Haar decomposition of N data values.
// The zero value is not usable; construct with New or FromData.
type Tree struct {
	coef []float64 // coefficients in error-tree layout, len N
	n    int
}

// New wraps a coefficient vector (error-tree layout, power-of-two length)
// as an error tree. The slice is retained, not copied.
func New(coef []float64) (*Tree, error) {
	if !wavelet.IsPowerOfTwo(len(coef)) {
		return nil, wavelet.ErrNotPowerOfTwo
	}
	return &Tree{coef: coef, n: len(coef)}, nil
}

// FromData computes the Haar decomposition of data and wraps it.
func FromData(data []float64) (*Tree, error) {
	w, err := wavelet.Transform(data)
	if err != nil {
		return nil, err
	}
	return &Tree{coef: w, n: len(w)}, nil
}

// N returns the number of data values (equal to the number of coefficients).
func (t *Tree) N() int { return t.n }

// Coefficient returns the coefficient value at node i.
func (t *Tree) Coefficient(i int) float64 { return t.coef[i] }

// Coefficients returns the underlying coefficient slice (not a copy).
func (t *Tree) Coefficients() []float64 { return t.coef }

// Depth returns log2(N), the number of detail levels.
func (t *Tree) Depth() int { return wavelet.Log2(t.n) }

// LeafParent returns the internal node whose child is data leaf k, together
// with whether the leaf is the node's left child.
func LeafParent(n, k int) (node int, left bool) {
	return (n + k) / 2, k%2 == 0
}

// PathSign returns delta_{kj} for data leaf k and internal node j: +1 if d_k
// lies in the left sub-tree of c_j or j == 0, -1 if in the right sub-tree,
// and 0 if c_j is not on d_k's path at all.
func PathSign(n, k, j int) int {
	if j == 0 {
		return 1
	}
	first, last := wavelet.CoefficientSupport(n, j)
	if k < first || k >= last {
		return 0
	}
	if k < first+(last-first)/2 {
		return 1
	}
	return -1
}

// Path appends to dst the node indices on the path from data leaf k to the
// root, ordered leaf-parent first and node 0 last, and returns the extended
// slice. The path has length log2(N)+1.
func Path(n, k int, dst []int) []int {
	node, _ := LeafParent(n, k)
	for node >= 1 {
		dst = append(dst, node)
		node /= 2
	}
	return append(dst, 0)
}

// Reconstruct returns the reconstructed value of data leaf k using all
// coefficients: d_k = sum over path of delta_{kj} * c_j.
func (t *Tree) Reconstruct(k int) float64 {
	v := t.coef[0]
	node, left := LeafParent(t.n, k)
	for node >= 1 {
		if left {
			v += t.coef[node]
		} else {
			v -= t.coef[node]
		}
		left = node%2 == 0
		node /= 2
	}
	return v
}

// RangeSum returns d(l:h) = sum_{i=l}^{h} d_i computed from coefficients on
// path_l ∪ path_h only, per Section 2.2.
func (t *Tree) RangeSum(l, h int) float64 {
	if l > h {
		l, h = h, l
	}
	width := float64(h - l + 1)
	sum := width * t.coef[0]
	seen := map[int]bool{}
	for _, k := range [2]int{l, h} {
		node, _ := LeafParent(t.n, k)
		for node >= 1 {
			if !seen[node] {
				seen[node] = true
				first, last := wavelet.CoefficientSupport(t.n, node)
				mid := first + (last-first)/2
				nl := overlap(l, h, first, mid-1)
				nr := overlap(l, h, mid, last-1)
				sum += float64(nl-nr) * t.coef[node]
			}
			node /= 2
		}
	}
	return sum
}

// overlap returns |[a,b] ∩ [c,d]| for inclusive integer intervals.
func overlap(a, b, c, d int) int {
	lo, hi := max(a, c), min(b, d)
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}

// IncomingValue returns the value reconstructed along the path of ancestor
// coefficients from the root down to (but excluding) node j — the "incoming
// value" of Section 4. For example the incoming value of node 2 in Figure 1
// is c_0 + c_1.
func (t *Tree) IncomingValue(j int) float64 {
	if j == 0 {
		return 0
	}
	// Walk from the root down to j, accumulating signs. Equivalent: walk up
	// from j collecting (parent, isLeftChild) pairs.
	v := t.coef[0]
	if j == 1 {
		return v
	}
	node := j
	type step struct {
		parent int
		left   bool
	}
	var steps []step
	for node > 1 {
		steps = append(steps, step{node / 2, node%2 == 0})
		node /= 2
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if steps[i].left {
			v += t.coef[steps[i].parent]
		} else {
			v -= t.coef[steps[i].parent]
		}
	}
	return v
}

// SubtreeMean returns the mean of the data values under internal node j
// (for j == 0, the overall mean). It equals the incoming value of j plus,
// for j >= 1, nothing — the mean of leaves under j is exactly the
// reconstruction-path value *through* j's averaging, i.e. IncomingValue(j)
// is the mean of leaves under j for j >= 2; for the two special top nodes
// the mean under node 0 and node 1 is c_0.
func (t *Tree) SubtreeMean(j int) float64 {
	if j <= 1 {
		return t.coef[0]
	}
	return t.IncomingValue(j)
}

// LeafRange returns the half-open interval [first, last) of data leaves in
// the sub-tree rooted at internal node j.
func (t *Tree) LeafRange(j int) (first, last int) {
	return wavelet.CoefficientSupport(t.n, j)
}

// Subtree describes one sub-tree produced by a partition: the error-tree
// node at its root and its height (number of internal levels it contains).
// A Subtree of height h rooted at node r contains the internal nodes
// r·2^l + o for l in [0,h) and o in [0,2^l); its 2^h "leaves" are either
// the roots of sub-trees one layer below or, at the bottom layer, pairs of
// data values (the children of the lowest included internal nodes).
type Subtree struct {
	Root   int // error-tree node index of the sub-tree root
	Height int // number of internal node levels in this sub-tree
}

// Nodes appends all internal node indices contained in s (top-down,
// breadth-first) to dst and returns the extended slice.
func (s Subtree) Nodes(dst []int) []int {
	for l := 0; l < s.Height; l++ {
		base := s.Root << uint(l)
		for o := 0; o < 1<<uint(l); o++ {
			dst = append(dst, base+o)
		}
	}
	return dst
}

// Size returns the number of internal nodes in s: 2^Height - 1.
func (s Subtree) Size() int { return 1<<uint(s.Height) - 1 }

// ChildRoots appends the error-tree node indices that are the roots of the
// sub-trees hanging below s (i.e. the children of s's lowest level).
func (s Subtree) ChildRoots(dst []int) []int {
	base := s.Root << uint(s.Height)
	for o := 0; o < 1<<uint(s.Height); o++ {
		dst = append(dst, base+o)
	}
	return dst
}

// LayeredPartition is the partitioning of Figure 3: the error tree cut into
// layers of sub-trees of fixed height h, bottom layer first. Layers[0] is
// the bottommost layer (whose sub-trees' leaves are data values); the last
// layer contains the single topmost sub-tree (which additionally absorbs
// node 0, the overall average, handled by the algorithms directly).
type LayeredPartition struct {
	N      int
	H      int
	Layers [][]Subtree
}

// Partition cuts the error tree over n data values (n a power of two) into
// layers of sub-trees of height h, per Section 4. The detail-node levels
// 1..log2(n) are sliced bottom-up into bands of height h; the top band may
// be shorter. Node 0 is not part of any sub-tree.
func Partition(n, h int) (*LayeredPartition, error) {
	if !wavelet.IsPowerOfTwo(n) {
		return nil, wavelet.ErrNotPowerOfTwo
	}
	if h < 1 {
		return nil, fmt.Errorf("errtree: partition height %d < 1", h)
	}
	depth := wavelet.Log2(n) // detail levels are 0..depth-1 for nodes 1..n-1
	p := &LayeredPartition{N: n, H: h}
	// Work top-down to size the bands, then reverse so Layers[0] is the
	// bottom layer. The top band takes depth mod h levels (or h if even).
	var bands []int
	remaining := depth
	for remaining > 0 {
		b := h
		if remaining < h {
			b = remaining
		}
		bands = append(bands, b)
		remaining -= b
	}
	// bands[0] is the bottom band. Assign roots: the bottom band's
	// sub-trees are rooted at the level where each sub-tree's root sits.
	// Let level(l) index detail levels with node 1 at level 0; nodes at
	// level l are 2^l..2^{l+1}-1. Band k (from bottom) spans levels
	// [topLevel, topLevel+bands[k}) where topLevel accumulates from the
	// top. Easier: compute from the top.
	var layersTopDown [][]Subtree
	level := 0 // current topmost unassigned detail level
	for i := len(bands) - 1; i >= 0; i-- {
		b := bands[i]
		roots := 1 << uint(level)
		layer := make([]Subtree, roots)
		for o := 0; o < roots; o++ {
			layer[o] = Subtree{Root: roots + o, Height: b}
		}
		layersTopDown = append(layersTopDown, layer)
		level += b
	}
	// Reverse to bottom-up order.
	for i := len(layersTopDown) - 1; i >= 0; i-- {
		p.Layers = append(p.Layers, layersTopDown[i])
	}
	return p, nil
}

// NumLayers returns the number of sub-tree layers.
func (p *LayeredPartition) NumLayers() int { return len(p.Layers) }

// RootBasePartition is the two-level partitioning of Figure 4 used by
// DGreedyAbs: one root sub-tree (the top levels of the error tree, plus
// node 0) and many base sub-trees of equal size hanging below it.
type RootBasePartition struct {
	N int
	// RootNodes are the internal node indices in the root sub-tree:
	// nodes 0 .. 2^rootLevels - 1 (node 0 included).
	RootNodes []int
	// Bases are the base sub-trees, left to right; base i is rooted at
	// node 2^rootLevels + i and contains all detail nodes below, down to
	// the data leaves.
	Bases []Subtree
	// RootLevels is the number of detail levels in the root sub-tree.
	RootLevels int
}

// PartitionRootBase cuts the error tree over n values so that each base
// sub-tree covers baseLeaves data values (a power of two <= n/2). The root
// sub-tree then holds R = n/baseLeaves detail nodes (nodes 1..R-1) plus
// node 0, and there are n/baseLeaves base sub-trees... more precisely the
// base roots are the R nodes at detail level log2(R), i.e. nodes R..2R-1
// where R = n/baseLeaves.
func PartitionRootBase(n, baseLeaves int) (*RootBasePartition, error) {
	if !wavelet.IsPowerOfTwo(n) || !wavelet.IsPowerOfTwo(baseLeaves) {
		return nil, wavelet.ErrNotPowerOfTwo
	}
	if baseLeaves > n/2 {
		return nil, fmt.Errorf("errtree: base size %d too large for n=%d", baseLeaves, n)
	}
	r := n / baseLeaves // number of base sub-trees
	p := &RootBasePartition{N: n, RootLevels: wavelet.Log2(r)}
	p.RootNodes = make([]int, r)
	for i := 0; i < r; i++ {
		p.RootNodes[i] = i // nodes 0..r-1: node 0 plus detail nodes 1..r-1
	}
	p.Bases = make([]Subtree, r)
	h := wavelet.Log2(baseLeaves)
	for i := 0; i < r; i++ {
		p.Bases[i] = Subtree{Root: r + i, Height: h}
	}
	return p, nil
}

// BaseIndexOf returns which base sub-tree contains data leaf k.
func (p *RootBasePartition) BaseIndexOf(k int) int {
	return k / (p.N / len(p.Bases))
}

// RootPathSigns returns, for base sub-tree b, the signed contribution factor
// delta of each root-sub-tree node on the path from the base root to node 0:
// result[j] is +1, -1 (node j is an ancestor, base lies in its left/right
// sub-tree) or 0 (not an ancestor). Node 0 always contributes +1.
func (p *RootBasePartition) RootPathSigns(b int) map[int]int {
	signs := map[int]int{0: 1}
	node := p.Bases[b].Root
	for node > 1 {
		parent := node / 2
		if node%2 == 0 {
			signs[parent] = 1
		} else {
			signs[parent] = -1
		}
		node = parent
	}
	return signs
}

// IncomingError returns the initial signed accumulated error incurred on
// every data value of base sub-tree b when the root-sub-tree nodes NOT in
// retained are deleted: err = -Σ_{j ∉ retained, j on path} delta_j * c_j,
// where coef holds the root-sub-tree coefficient values indexed by node.
// (Deleting c_j changes every reconstruction under the base by
// -delta * c_j.)
func (p *RootBasePartition) IncomingError(b int, coef []float64, retained map[int]bool) float64 {
	var e float64
	for node, sign := range p.RootPathSigns(b) {
		if retained[node] {
			continue
		}
		e -= float64(sign) * coef[node]
	}
	return e
}
