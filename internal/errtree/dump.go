package errtree

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes an ASCII rendering of the error tree: one line per
// coefficient, indented by level, with data leaves at the bottom.
// retained, when non-nil, marks coefficients kept in a synopsis — retained
// nodes are tagged [kept], everything else [dropped]. Trees larger than
// maxNodes internal nodes are elided level by level. A handy debugging and
// teaching aid for the structures of Figures 1, 3 and 4.
func Dump(w io.Writer, t *Tree, data []float64, retained map[int]bool, maxNodes int) error {
	if maxNodes <= 0 {
		maxNodes = 127
	}
	n := t.N()
	if n > maxNodes+1 {
		fmt.Fprintf(w, "error tree over %d values (showing top %d nodes)\n", n, maxNodes)
	} else {
		fmt.Fprintf(w, "error tree over %d values\n", n)
	}
	tag := func(i int) string {
		if retained == nil {
			return ""
		}
		if retained[i] {
			return " [kept]"
		}
		return " [dropped]"
	}
	var walk func(node, depth int)
	printed := 0
	walk = func(node, depth int) {
		if node >= n || printed >= maxNodes {
			return
		}
		printed++
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(w, "%sc%-4d = %-12g%s\n", indent, node, t.Coefficient(node), tag(node))
		if 2*node >= n {
			// Children are data leaves.
			if data != nil {
				l, r := 2*node-n, 2*node-n+1
				fmt.Fprintf(w, "%s  d%-4d = %g\n", indent, l, data[l])
				fmt.Fprintf(w, "%s  d%-4d = %g\n", indent, r, data[r])
			}
			return
		}
		walk(2*node, depth+1)
		walk(2*node+1, depth+1)
	}
	fmt.Fprintf(w, "c0    = %-12g%s (overall average)\n", t.Coefficient(0), tag(0))
	if n > 1 {
		walk(1, 0)
	}
	if printed >= maxNodes {
		fmt.Fprintf(w, "... (%d more internal nodes elided)\n", n-1-printed)
	}
	return nil
}
