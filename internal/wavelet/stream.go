package wavelet

import (
	"container/heap"
	"fmt"
	"math"
)

// Streamer computes the Haar decomposition of a stream one value at a time
// in O(log N) memory — the one-pass setting of Gilbert et al. that the
// paper's related work builds on. Each detail coefficient is emitted, with
// its error-tree index, the moment its support has fully streamed by;
// the overall average (node 0) is emitted by Finish.
type Streamer struct {
	n       int // expected stream length (power of two)
	seen    int
	emit    func(index int, value float64)
	pending []pendingAvg // one slot per level, bottom-up
}

type pendingAvg struct {
	valid bool
	avg   float64
}

// NewStreamer builds a streamer for a stream of exactly n values (a power
// of two). emit receives every coefficient exactly once; indices arrive in
// post-order (children before ancestors), node 0 last.
func NewStreamer(n int, emit func(index int, value float64)) (*Streamer, error) {
	if !IsPowerOfTwo(n) {
		return nil, ErrNotPowerOfTwo
	}
	return &Streamer{
		n:       n,
		emit:    emit,
		pending: make([]pendingAvg, Log2(n)+1),
	}, nil
}

// Push consumes the next stream value.
func (s *Streamer) Push(v float64) error {
	if s.seen >= s.n {
		return fmt.Errorf("wavelet: stream overflow beyond %d values", s.n)
	}
	pos := s.seen
	s.seen++
	avg := v
	// Carry the completed average up through the levels, like binary
	// addition. Level 0 holds single values, level l holds averages of
	// 2^l values.
	for l := 0; ; l++ {
		if !s.pending[l].valid {
			s.pending[l] = pendingAvg{valid: true, avg: avg}
			return nil
		}
		left := s.pending[l].avg
		s.pending[l].valid = false
		detail := (left - avg) / 2
		// The completed node covers 2^(l+1) values ending at pos; its
		// error-tree index: level (log2 n - l - 1) from the top, offset by
		// the block number.
		block := pos >> uint(l+1) // which 2^(l+1)-aligned block just completed
		node := s.n>>uint(l+1) + block
		s.emit(node, detail)
		avg = (left + avg) / 2
		if node == 1 {
			// The whole stream has been averaged; node 0 is emitted by
			// Finish so that short streams error out instead.
			s.pending[len(s.pending)-1] = pendingAvg{valid: true, avg: avg}
			return nil
		}
	}
}

// Finish emits the overall-average coefficient and verifies the stream had
// exactly n values.
func (s *Streamer) Finish() error {
	if s.seen != s.n {
		return fmt.Errorf("wavelet: stream ended after %d of %d values", s.seen, s.n)
	}
	top := s.pending[len(s.pending)-1]
	if s.n == 1 {
		// Single value: no detail levels; the pending level-0 slot holds it.
		top = s.pending[0]
	}
	if !top.valid {
		return fmt.Errorf("wavelet: internal error: no pending average at finish")
	}
	s.emit(0, top.avg)
	return nil
}

// Seen returns how many values have been pushed.
func (s *Streamer) Seen() int { return s.seen }

// TopKStream maintains the conventional (L2-optimal) synopsis of a stream
// incrementally: it keeps the B coefficients of greatest significance seen
// so far in a min-heap, in O(B) memory on top of the streamer's O(log N).
type TopKStream struct {
	streamer *Streamer
	budget   int
	heap     sigHeap
}

// NewTopKStream builds a one-pass conventional-synopsis maintainer for a
// stream of n values (a power of two) and a budget of B coefficients.
func NewTopKStream(n, budget int) (*TopKStream, error) {
	if budget < 1 {
		return nil, fmt.Errorf("wavelet: budget %d < 1", budget)
	}
	t := &TopKStream{budget: budget}
	s, err := NewStreamer(n, t.offer)
	if err != nil {
		return nil, err
	}
	t.streamer = s
	return t, nil
}

// Push consumes the next stream value.
func (t *TopKStream) Push(v float64) error { return t.streamer.Push(v) }

// Finish completes the stream and returns the retained (index, value)
// pairs — the conventional B-term synopsis of the full stream.
func (t *TopKStream) Finish() (indices []int, values []float64, err error) {
	if err := t.streamer.Finish(); err != nil {
		return nil, nil, err
	}
	for _, e := range t.heap {
		indices = append(indices, e.index)
		values = append(values, e.value)
	}
	return indices, values, nil
}

func (t *TopKStream) offer(index int, value float64) {
	if value == 0 {
		return
	}
	sig := SignificanceOrderValue(index, value)
	if t.heap.Len() < t.budget {
		heap.Push(&t.heap, sigEntry{sig: sig, index: index, value: value})
		return
	}
	if sig > t.heap[0].sig || (sig == t.heap[0].sig && index < t.heap[0].index) {
		t.heap[0] = sigEntry{sig: sig, index: index, value: value}
		heap.Fix(&t.heap, 0)
	}
}

type sigEntry struct {
	sig   float64
	index int
	value float64
}

// sigHeap is a min-heap on significance (ties: larger index evicted first,
// matching the deterministic ordering of synopsis.Conventional).
type sigHeap []sigEntry

func (h sigHeap) Len() int { return len(h) }
func (h sigHeap) Less(i, j int) bool {
	if h[i].sig != h[j].sig {
		return h[i].sig < h[j].sig
	}
	return h[i].index > h[j].index
}
func (h sigHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sigHeap) Push(x interface{}) {
	*h = append(*h, x.(sigEntry))
}
func (h *sigHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

var _ heap.Interface = (*sigHeap)(nil)

// StreamMaxAbs folds a stream of reconstruction errors into a running
// maximum — a helper for windowed monitoring of synopsis quality.
func StreamMaxAbs(maxSoFar, approx, actual float64) float64 {
	return math.Max(maxSoFar, math.Abs(approx-actual))
}
