package wavelet

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Streamer computes the Haar decomposition of a stream one value at a time
// in O(log N) memory — the one-pass setting of Gilbert et al. that the
// paper's related work builds on. Each detail coefficient is emitted, with
// its error-tree index, the moment its support has fully streamed by;
// the overall average (node 0) is emitted by Finish.
type Streamer struct {
	n       int // expected stream length (power of two)
	seen    int
	emit    func(index int, value float64)
	pending []pendingAvg // one slot per level, bottom-up
}

type pendingAvg struct {
	valid bool
	avg   float64
}

// NewStreamer builds a streamer for a stream of exactly n values (a power
// of two). emit receives every coefficient exactly once; indices arrive in
// post-order (children before ancestors), node 0 last.
func NewStreamer(n int, emit func(index int, value float64)) (*Streamer, error) {
	if !IsPowerOfTwo(n) {
		return nil, ErrNotPowerOfTwo
	}
	return &Streamer{
		n:       n,
		emit:    emit,
		pending: make([]pendingAvg, Log2(n)+1),
	}, nil
}

// Push consumes the next stream value.
func (s *Streamer) Push(v float64) error {
	if s.seen >= s.n {
		return fmt.Errorf("wavelet: stream overflow beyond %d values", s.n)
	}
	pos := s.seen
	s.seen++
	avg := v
	// Carry the completed average up through the levels, like binary
	// addition. Level 0 holds single values, level l holds averages of
	// 2^l values.
	for l := 0; ; l++ {
		if !s.pending[l].valid {
			s.pending[l] = pendingAvg{valid: true, avg: avg}
			return nil
		}
		left := s.pending[l].avg
		s.pending[l].valid = false
		detail := (left - avg) / 2
		// The completed node covers 2^(l+1) values ending at pos; its
		// error-tree index: level (log2 n - l - 1) from the top, offset by
		// the block number.
		block := pos >> uint(l+1) // which 2^(l+1)-aligned block just completed
		node := s.n>>uint(l+1) + block
		s.emit(node, detail)
		avg = (left + avg) / 2
		if node == 1 {
			// The whole stream has been averaged; node 0 is emitted by
			// Finish so that short streams error out instead.
			s.pending[len(s.pending)-1] = pendingAvg{valid: true, avg: avg}
			return nil
		}
	}
}

// Finish emits the overall-average coefficient and verifies the stream had
// exactly n values.
func (s *Streamer) Finish() error {
	if s.seen != s.n {
		return fmt.Errorf("wavelet: stream ended after %d of %d values", s.seen, s.n)
	}
	top := s.pending[len(s.pending)-1]
	if s.n == 1 {
		// Single value: no detail levels; the pending level-0 slot holds it.
		top = s.pending[0]
	}
	if !top.valid {
		return fmt.Errorf("wavelet: internal error: no pending average at finish")
	}
	s.emit(0, top.avg)
	return nil
}

// Seen returns how many values have been pushed.
func (s *Streamer) Seen() int { return s.seen }

// TopK maintains the budget coefficients of greatest significance among
// those offered, in O(budget) memory, with the deterministic tie-break of
// synopsis.Conventional: greater significance wins, and on equal
// significance the smaller index wins. Zero-valued coefficients are
// ignored (they contribute nothing to a synopsis).
type TopK struct {
	budget int
	heap   sigHeap
}

// NewTopK builds an empty top-budget accumulator.
func NewTopK(budget int) (*TopK, error) {
	if budget < 1 {
		return nil, fmt.Errorf("wavelet: budget %d < 1", budget)
	}
	return &TopK{budget: budget}, nil
}

// Offer considers one (index, value) coefficient for retention.
//
// Once the heap is full, a candidate is retained iff it beats the heap
// root under the strict total order (significance desc, index asc). The
// root is the *global minimum* of the retained set under that order —
// sigHeap.Less breaks significance ties by evicting the larger index
// first — so comparing against the root alone is the standard top-K
// invariant and is sufficient even on significance ties: any candidate
// that belongs in the top B beats the minimum, and only the minimum can
// ever be displaced.
func (t *TopK) Offer(index int, value float64) {
	if value == 0 {
		return
	}
	sig := SignificanceOrderValue(index, value)
	if t.heap.Len() < t.budget {
		heap.Push(&t.heap, sigEntry{sig: sig, index: index, value: value})
		return
	}
	if sig > t.heap[0].sig || (sig == t.heap[0].sig && index < t.heap[0].index) {
		t.heap[0] = sigEntry{sig: sig, index: index, value: value}
		heap.Fix(&t.heap, 0)
	}
}

// Len returns the number of retained coefficients.
func (t *TopK) Len() int { return t.heap.Len() }

// Pairs returns the retained (index, value) pairs in ascending index
// order — the deterministic layout every synopsis consumer expects —
// leaving the accumulator unchanged.
func (t *TopK) Pairs() (indices []int, values []float64) {
	entries := append([]sigEntry(nil), t.heap...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].index < entries[j].index })
	indices = make([]int, len(entries))
	values = make([]float64, len(entries))
	for i, e := range entries {
		indices[i], values[i] = e.index, e.value
	}
	return indices, values
}

// TopKStream maintains the conventional (L2-optimal) synopsis of a stream
// incrementally: it keeps the B coefficients of greatest significance seen
// so far in a min-heap, in O(B) memory on top of the streamer's O(log N).
type TopKStream struct {
	streamer *Streamer
	topk     *TopK
}

// NewTopKStream builds a one-pass conventional-synopsis maintainer for a
// stream of n values (a power of two) and a budget of B coefficients.
func NewTopKStream(n, budget int) (*TopKStream, error) {
	tk, err := NewTopK(budget)
	if err != nil {
		return nil, err
	}
	t := &TopKStream{topk: tk}
	s, err := NewStreamer(n, tk.Offer)
	if err != nil {
		return nil, err
	}
	t.streamer = s
	return t, nil
}

// Push consumes the next stream value.
func (t *TopKStream) Push(v float64) error { return t.streamer.Push(v) }

// Finish completes the stream and returns the retained (index, value)
// pairs in ascending index order — the conventional B-term synopsis of
// the full stream. A Finish error (short stream) is fatal: the retained
// heap still holds the prefix's coefficients, so the pairs of a failed
// Finish must never be read as a synopsis — Finish returns nil slices
// alongside the error to enforce that. The stream may be completed with
// further Push calls and finished again.
func (t *TopKStream) Finish() (indices []int, values []float64, err error) {
	if err := t.streamer.Finish(); err != nil {
		return nil, nil, err
	}
	indices, values = t.topk.Pairs()
	return indices, values, nil
}

type sigEntry struct {
	sig   float64
	index int
	value float64
}

// sigHeap is a min-heap on significance (ties: larger index evicted first,
// matching the deterministic ordering of synopsis.Conventional).
type sigHeap []sigEntry

func (h sigHeap) Len() int { return len(h) }
func (h sigHeap) Less(i, j int) bool {
	if h[i].sig != h[j].sig {
		return h[i].sig < h[j].sig
	}
	return h[i].index > h[j].index
}
func (h sigHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sigHeap) Push(x interface{}) {
	*h = append(*h, x.(sigEntry))
}
func (h *sigHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

var _ heap.Interface = (*sigHeap)(nil)

// StreamMaxAbs folds a stream of reconstruction errors into a running
// maximum — a helper for windowed monitoring of synopsis quality.
func StreamMaxAbs(maxSoFar, approx, actual float64) float64 {
	return math.Max(maxSoFar, math.Abs(approx-actual))
}
