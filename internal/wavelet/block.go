package wavelet

import (
	"runtime"
	"sync"
)

func maxWorkers() int { return runtime.GOMAXPROCS(0) }

// Cache-blocked Haar transform kernels.
//
// The reference transform streams the whole vector once per resolution
// level: at n = 2^24 that is ~6n sequential element accesses plus a
// fresh n/2 scratch allocation, all DRAM-bound. The blocked form
// exploits the error-tree recurrence the distributed pipeline already
// relies on (LocalTransform + GlobalIndex): a block of blockLen
// consecutive values is exactly the sub-tree rooted at global node
// n/blockLen + blockIdx, its local level-l details are the contiguous
// global range starting at (n/blockLen+blockIdx)<<l, and its average
// feeds a recursive transform over the n/blockLen block averages that
// yields global nodes 0..n/blockLen-1.
//
// Each block therefore runs to completion inside a fixed-size stack
// scratch (L1-resident, constant loop bounds, no bounds checks in the
// butterfly), touching every input and output element exactly once.
// Because the per-output dataflow — the sequence of (a+b)/2, (a-b)/2
// operations feeding each coefficient — is identical to the reference
// implementation's, results are bitwise identical, NaN and ±0 cases
// included; TestBlockedTransformBitwiseIdentical pins that.

const (
	// blockLen is the bottom-level tile size: 2 KiB of input per block,
	// small enough that block scratch lives in L1 across all levels.
	blockLen = 256
	blockLog = 8 // log2(blockLen)
)

// floatBufPool recycles the per-call block-average buffers (n/blockLen
// elements, so 1/256th of the input) that the recursive top pass needs.
var floatBufPool sync.Pool

func getFloatBuf(n int) *[]float64 {
	if p, _ := floatBufPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	b := make([]float64, n)
	return &b
}

func putFloatBuf(p *[]float64) { floatBufPool.Put(p) }

// transformSmall is the whole-tree butterfly for n <= blockLen, run in
// stack scratch. Loop structure mirrors ReferenceTransformInto exactly.
func transformSmall(w, data []float64) {
	n := len(data)
	var buf [blockLen / 2]float64
	avg := buf[:n/2]
	for i := 0; i < n/2; i++ {
		a, b := data[2*i], data[2*i+1]
		avg[i] = (a + b) / 2
		w[n/2+i] = (a - b) / 2
	}
	for m := n / 2; m > 1; m /= 2 {
		for i := 0; i < m/2; i++ {
			a, b := avg[2*i], avg[2*i+1]
			avg[i] = (a + b) / 2
			w[m/2+i] = (a - b) / 2
		}
	}
	w[0] = avg[0]
}

// transformBlock transforms one blockLen-sized tile rooted at global
// error-tree node root, scattering each local level's details to its
// contiguous global range (level l of root lands at w[root<<l:]), and
// returns the block average for the caller's top pass. For consecutive
// blocks the per-level destinations are adjacent, so every one of the
// blockLog write streams is sequential across the whole input.
func transformBlock(w, data []float64, root int) float64 {
	data = data[:blockLen]
	var s [blockLen / 2]float64
	out := w[root<<(blockLog-1) : root<<(blockLog-1)+blockLen/2]
	for i := 0; i < blockLen/2; i++ {
		a, b := data[2*i], data[2*i+1]
		s[i] = (a + b) / 2
		out[i] = (a - b) / 2
	}
	lvl := blockLog - 1
	for m := blockLen / 2; m > 1; m /= 2 {
		lvl--
		out := w[root<<lvl : root<<lvl+m/2]
		for i := 0; i < m/2; i++ {
			a, b := s[2*i], s[2*i+1]
			s[i] = (a + b) / 2
			out[i] = (a - b) / 2
		}
	}
	return s[0]
}

// inverseSmall is the whole-tree reconstruction for n <= blockLen in
// stack scratch. Loop structure mirrors ReferenceInverseInto exactly.
func inverseSmall(data, w []float64) {
	n := len(w)
	var buf [blockLen]float64
	vals := buf[:n]
	vals[0] = w[0]
	for m := 1; m < n; m *= 2 {
		for i := m - 1; i >= 0; i-- {
			v, d := vals[i], w[m+i]
			vals[2*i] = v + d
			vals[2*i+1] = v - d
		}
	}
	copy(data, vals)
}

// inverseBlock reconstructs one blockLen-sized tile from the block
// average avg (produced by the recursive top pass) and the global
// detail ranges of the sub-tree rooted at root.
func inverseBlock(data, w []float64, root int, avg float64) {
	var s [blockLen]float64
	s[0] = avg
	lvl := 0
	for m := 1; m < blockLen; m *= 2 {
		det := w[root<<lvl : root<<lvl+m]
		for i := m - 1; i >= 0; i-- {
			v, d := s[i], det[i]
			s[2*i] = v + d
			s[2*i+1] = v - d
		}
		lvl++
	}
	copy(data, s[:])
}

// ReferenceTransformInto is the original single-stream transform, kept
// as the ground truth the blocked kernels are property-tested against
// and as the pre-optimization baseline the compute benchmark measures
// in the same run. Semantics are identical to TransformInto.
func ReferenceTransformInto(w, data []float64) {
	n := len(data)
	if len(w) != n {
		panic("wavelet: TransformInto length mismatch")
	}
	if n == 1 {
		w[0] = data[0]
		return
	}
	// averages holds the current resolution level's averages; reusing w's
	// second half as scratch is unsafe because details land there, so use
	// a dedicated buffer.
	avg := make([]float64, n/2)
	// Bottom level: details go to w[n/2 : n].
	for i := 0; i < n/2; i++ {
		a, b := data[2*i], data[2*i+1]
		avg[i] = (a + b) / 2
		w[n/2+i] = (a - b) / 2
	}
	for m := n / 2; m > 1; m /= 2 {
		for i := 0; i < m/2; i++ {
			a, b := avg[2*i], avg[2*i+1]
			avg[i] = (a + b) / 2
			w[m/2+i] = (a - b) / 2
		}
	}
	w[0] = avg[0]
}

// ReferenceInverseInto is the original single-stream reconstruction,
// the ground truth counterpart of ReferenceTransformInto.
func ReferenceInverseInto(data, w []float64) {
	n := len(w)
	if len(data) != n {
		panic("wavelet: InverseInto length mismatch")
	}
	if n == 1 {
		data[0] = w[0]
		return
	}
	// vals holds reconstructed averages of the current level.
	vals := make([]float64, n)
	vals[0] = w[0]
	for m := 1; m < n; m *= 2 {
		// Nodes m..2m-1 hold the details refining level with m averages
		// into 2m averages.
		for i := m - 1; i >= 0; i-- {
			v, d := vals[i], w[m+i]
			vals[2*i] = v + d
			vals[2*i+1] = v - d
		}
	}
	copy(data, vals)
}

// ParallelTransform computes the Haar decomposition of data with the
// bottom-level blocks fanned across a worker pool, returning a freshly
// allocated coefficient vector. workers <= 0 uses one goroutine per
// available CPU (capped by the block count).
func ParallelTransform(data []float64, workers int) ([]float64, error) {
	n := len(data)
	if !IsPowerOfTwo(n) {
		return nil, ErrNotPowerOfTwo
	}
	w := make([]float64, n)
	ParallelTransformInto(w, data, workers)
	return w, nil
}

// ParallelTransformInto is TransformInto with the per-block butterflies
// executed concurrently. Blocks write disjoint detail ranges and
// disjoint block-average slots, so the fan-out needs no locking; the
// small top pass over block averages runs on the calling goroutine.
// Results are bitwise identical to TransformInto (each coefficient's
// dataflow is unchanged — only the block schedule differs).
func ParallelTransformInto(w, data []float64, workers int) {
	n := len(data)
	if len(w) != n {
		panic("wavelet: TransformInto length mismatch")
	}
	nb := n >> blockLog
	if workers <= 0 {
		workers = maxWorkers()
	}
	if !IsPowerOfTwo(n) || nb < 2 || workers < 2 {
		TransformInto(w, data)
		return
	}
	if workers > nb {
		workers = nb
	}
	avgsp := getFloatBuf(nb)
	avgs := *avgsp
	var wg sync.WaitGroup
	per := (nb + workers - 1) / workers
	for lo := 0; lo < nb; lo += per {
		hi := lo + per
		if hi > nb {
			hi = nb
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for bi := lo; bi < hi; bi++ {
				avgs[bi] = transformBlock(w, data[bi<<blockLog:(bi+1)<<blockLog], nb+bi)
			}
		}(lo, hi)
	}
	wg.Wait()
	TransformInto(w[:nb], avgs)
	putFloatBuf(avgsp)
}
