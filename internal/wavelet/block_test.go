package wavelet

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// hardFloats injects the cases where "bitwise identical" is stronger
// than "numerically equal": NaN, ±0, ±Inf, denormals, and values whose
// pairwise sums round.
func hardFloats(rng *rand.Rand, n int) []float64 {
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		0, math.Copysign(0, -1),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, -math.MaxFloat64,
		1, -1, 0.1, -0.1, 1e-300, -1e300, math.Pi,
	}
	data := make([]float64, n)
	for i := range data {
		if rng.Intn(4) == 0 {
			data[i] = specials[rng.Intn(len(specials))]
		} else {
			data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		}
	}
	return data
}

// bitsEqual compares float slices bit-for-bit (NaN == NaN, +0 != -0).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestBlockedTransformBitwiseIdentical pins the blocked, parallel, and
// reference transforms (and the inverses) to bitwise-identical outputs
// across sizes spanning the small path, the single-level blocked path,
// and the doubly-recursive path.
func TestBlockedTransformBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 4, 8, 64, 128, 256, 512, 1024, 4096, 1 << 17} {
		for trial := 0; trial < 4; trial++ {
			data := hardFloats(rng, n)
			want := make([]float64, n)
			ReferenceTransformInto(want, data)

			got := make([]float64, n)
			TransformInto(got, data)
			if !bitsEqual(got, want) {
				t.Fatalf("n=%d trial=%d: blocked TransformInto differs from reference", n, trial)
			}

			par := make([]float64, n)
			ParallelTransformInto(par, data, 4)
			if !bitsEqual(par, want) {
				t.Fatalf("n=%d trial=%d: ParallelTransformInto differs from reference", n, trial)
			}

			wantBack := make([]float64, n)
			ReferenceInverseInto(wantBack, want)
			gotBack := make([]float64, n)
			InverseInto(gotBack, want)
			if !bitsEqual(gotBack, wantBack) {
				t.Fatalf("n=%d trial=%d: blocked InverseInto differs from reference", n, trial)
			}
		}
	}
}

// TestBlockedTransformQuickProperty is the quick.Check form: arbitrary
// seeds and sizes, blocked == reference bit-for-bit both directions.
func TestBlockedTransformQuickProperty(t *testing.T) {
	f := func(seed int64, logn uint8, workers uint8) bool {
		n := 1 << (logn % 13) // up to 4096, crossing the block boundary
		rng := rand.New(rand.NewSource(seed))
		data := hardFloats(rng, n)
		want := make([]float64, n)
		got := make([]float64, n)
		ReferenceTransformInto(want, data)
		TransformInto(got, data)
		if !bitsEqual(got, want) {
			return false
		}
		par := make([]float64, n)
		ParallelTransformInto(par, data, int(workers%8))
		if !bitsEqual(par, want) {
			return false
		}
		back, backRef := make([]float64, n), make([]float64, n)
		ReferenceInverseInto(backRef, want)
		InverseInto(back, want)
		return bitsEqual(back, backRef)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestParallelTransformMatches covers the allocating wrapper and the
// worker-count edge cases.
func TestParallelTransformMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 12
	data := hardFloats(rng, n)
	want, err := Transform(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 0, 1, 2, 3, 16, 1 << 20} {
		got, err := ParallelTransform(data, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bitsEqual(got, want) {
			t.Fatalf("workers=%d: ParallelTransform differs from Transform", workers)
		}
	}
	if _, err := ParallelTransform(make([]float64, 3), 2); err == nil {
		t.Fatal("want error for non-power-of-two length")
	}
}

// TestLocalTransformIntoMatches checks the scratch-aware path against
// LocalTransform and its error cases.
func TestLocalTransformIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	chunk := hardFloats(rng, 512)
	wantDetails, wantAvg, err := LocalTransform(chunk)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, len(chunk))
	avg, err := LocalTransformInto(w, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(avg) != math.Float64bits(wantAvg) || !bitsEqual(w, wantDetails) {
		t.Fatal("LocalTransformInto differs from LocalTransform")
	}
	if _, err := LocalTransformInto(make([]float64, 4), make([]float64, 8)); err == nil {
		t.Fatal("want error for buffer length mismatch")
	}
	if _, err := LocalTransformInto(make([]float64, 3), make([]float64, 3)); err == nil {
		t.Fatal("want error for non-power-of-two chunk")
	}
}

// TestTransformIntoAllocFree is the allocation regression gate for the
// satellite fixes: the small path must not allocate at all, the blocked
// path at most touches the buffer pool (steady state: zero), and
// LocalTransformInto with a caller buffer stays allocation-free.
func TestTransformIntoAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is flaky under -short race runs")
	}
	data := make([]float64, 1<<14)
	for i := range data {
		data[i] = float64(i%97) * 1.5
	}
	w := make([]float64, len(data))

	// Warm the pool so steady-state counts are measured.
	TransformInto(w, data)
	InverseInto(w, data)

	if n := testing.AllocsPerRun(20, func() { transformSmall(w[:blockLen], data[:blockLen]) }); n != 0 {
		t.Errorf("transformSmall allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { TransformInto(w, data) }); n != 0 {
		t.Errorf("TransformInto allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { InverseInto(w, data) }); n != 0 {
		t.Errorf("InverseInto allocates %v times per run, want 0", n)
	}
	chunk := data[:1024]
	scratch := make([]float64, len(chunk))
	if n := testing.AllocsPerRun(20, func() {
		if _, err := LocalTransformInto(scratch, chunk); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("LocalTransformInto allocates %v times per run, want 0", n)
	}
}

func BenchmarkBlockedTransform(b *testing.B) {
	n := 1 << 20
	data := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = rng.Float64()
	}
	w := make([]float64, n)
	b.Run("reference", func(b *testing.B) {
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			ReferenceTransformInto(w, data)
		}
	})
	b.Run("blocked", func(b *testing.B) {
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			TransformInto(w, data)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			ParallelTransformInto(w, data, runtime.GOMAXPROCS(0))
		}
	})
}
