// Package wavelet implements the unnormalized Haar wavelet transform used
// throughout the paper "Distributed Wavelet Thresholding for Maximum Error
// Metrics" (SIGMOD 2016), together with the error-tree coefficient layout,
// significance ordering for the conventional (L2-optimal) thresholding
// scheme, and the basis-vector formulation used by the Send-Coef algorithm.
//
// The transform operates on data vectors whose length is a power of two.
// Coefficients are stored in the standard error-tree (heap) layout:
//
//	W[0] — the overall average
//	W[1] — the top detail coefficient
//	W[i] — detail coefficient whose children are W[2i] and W[2i+1]
//
// Averaging is plain pairwise averaging (not orthonormal): for a pair
// (a, b) the parent average is (a+b)/2 and the detail is (a-b)/2.
package wavelet

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrNotPowerOfTwo is returned when an input length is not a power of two.
var ErrNotPowerOfTwo = errors.New("wavelet: data length must be a positive power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Log2 returns floor(log2(n)) for n > 0.
func Log2(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("wavelet: Log2 of non-positive %d", n))
	}
	return bits.Len(uint(n)) - 1
}

// NextPowerOfTwo returns the smallest power of two >= n (n > 0).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Transform computes the full Haar wavelet decomposition of data, whose
// length must be a power of two, and returns the coefficient vector in
// error-tree layout. The input slice is not modified.
func Transform(data []float64) ([]float64, error) {
	n := len(data)
	if !IsPowerOfTwo(n) {
		return nil, ErrNotPowerOfTwo
	}
	w := make([]float64, n)
	TransformInto(w, data)
	return w, nil
}

// TransformInto computes the Haar decomposition of data into w. Both slices
// must have the same power-of-two length. data is not modified unless the
// two slices alias, which is not allowed.
//
// The implementation is cache-blocked (see block.go): bottom-level tiles
// run to completion in L1-resident stack scratch and a recursive top
// pass handles the block averages, producing results bitwise identical
// to ReferenceTransformInto without its per-call n/2 scratch allocation.
func TransformInto(w, data []float64) {
	n := len(data)
	if len(w) != n {
		panic("wavelet: TransformInto length mismatch")
	}
	if n == 1 {
		w[0] = data[0]
		return
	}
	if n <= blockLen {
		transformSmall(w, data)
		return
	}
	if !IsPowerOfTwo(n) {
		// Out of contract; preserve the legacy loop's behavior.
		ReferenceTransformInto(w, data)
		return
	}
	nb := n >> blockLog
	avgsp := getFloatBuf(nb)
	avgs := *avgsp
	for bi := 0; bi < nb; bi++ {
		avgs[bi] = transformBlock(w, data[bi<<blockLog:(bi+1)<<blockLog], nb+bi)
	}
	TransformInto(w[:nb], avgs)
	putFloatBuf(avgsp)
}

// Inverse reconstructs the original data vector from a coefficient vector in
// error-tree layout. The input slice is not modified.
func Inverse(w []float64) ([]float64, error) {
	n := len(w)
	if !IsPowerOfTwo(n) {
		return nil, ErrNotPowerOfTwo
	}
	data := make([]float64, n)
	InverseInto(data, w)
	return data, nil
}

// InverseInto reconstructs data from coefficients w (error-tree layout).
// Both slices must have the same power-of-two length and must not alias.
//
// Like TransformInto, the implementation is cache-blocked: a recursive
// top pass reconstructs the block averages from w[:n/blockLen], then
// each tile is rebuilt in stack scratch from its contiguous per-level
// detail ranges. Bitwise identical to ReferenceInverseInto.
func InverseInto(data, w []float64) {
	n := len(w)
	if len(data) != n {
		panic("wavelet: InverseInto length mismatch")
	}
	if n == 1 {
		data[0] = w[0]
		return
	}
	if n <= blockLen {
		inverseSmall(data, w)
		return
	}
	if !IsPowerOfTwo(n) {
		// Out of contract; preserve the legacy loop's behavior.
		ReferenceInverseInto(data, w)
		return
	}
	nb := n >> blockLog
	avgsp := getFloatBuf(nb)
	avgs := *avgsp
	InverseInto(avgs, w[:nb])
	for bi := 0; bi < nb; bi++ {
		inverseBlock(data[bi<<blockLog:(bi+1)<<blockLog], w, nb+bi, avgs[bi])
	}
	putFloatBuf(avgsp)
}

// Level returns the resolution level of coefficient index i in a tree over n
// data points, with 0 the coarsest level. Both the overall average W[0] and
// the top detail W[1] reside at level 0 (they influence every data value);
// W[i] for i >= 1 resides at level floor(log2 i).
func Level(i int) int {
	if i <= 1 {
		return 0
	}
	return Log2(i)
}

// Significance returns the significance |c| / sqrt(2^level) of coefficient
// value c at index i, per Section 2.3 of the paper. Retaining the B
// coefficients of greatest significance yields the conventional, L2-optimal
// synopsis.
func Significance(i int, c float64) float64 {
	return math.Abs(c) / math.Sqrt(float64(int(1)<<uint(Level(i))))
}

// SignificanceOrderValue is like Significance but avoids the sqrt by
// returning |c|^2 / 2^level, which induces the same ordering. Useful in hot
// loops such as top-B selection.
func SignificanceOrderValue(i int, c float64) float64 {
	return c * c / float64(int(1)<<uint(Level(i)))
}

// LocalTransform computes the Haar decomposition of a contiguous, aligned
// chunk of a larger data vector, as performed by a CON mapper (Appendix
// A.1). The chunk length must be a power of two. It returns the chunk's
// detail coefficients in local error-tree layout (index 0 unused, indices
// 1..len-1 valid: local node 1 is the chunk's top detail) together with the
// chunk average, which the caller forwards upward to build the coefficients
// above the chunk.
func LocalTransform(chunk []float64) (details []float64, avg float64, err error) {
	w := make([]float64, len(chunk))
	avg, err = LocalTransformInto(w, chunk)
	if err != nil {
		return nil, 0, err
	}
	return w, avg, nil
}

// LocalTransformInto is LocalTransform with a caller-supplied details
// buffer (len(w) == len(chunk)), the scratch-aware path for mappers that
// process chunks in a loop: with the blocked TransformInto it performs
// no heap allocation at all. On return w holds the chunk's detail
// coefficients in local error-tree layout with w[0] zeroed.
func LocalTransformInto(w, chunk []float64) (avg float64, err error) {
	n := len(chunk)
	if !IsPowerOfTwo(n) {
		return 0, ErrNotPowerOfTwo
	}
	if len(w) != n {
		return 0, fmt.Errorf("wavelet: LocalTransformInto buffer length %d != chunk length %d", len(w), n)
	}
	TransformInto(w, chunk)
	avg = w[0]
	w[0] = 0 // local index 0 is unused; the average is returned separately
	return avg, nil
}

// GlobalIndex maps a local error-tree index within an aligned chunk to the
// global error-tree index. The chunk covers data positions
// [chunkIdx*chunkLen, (chunkIdx+1)*chunkLen) of a vector of length n; all
// three of chunkLen, n must be powers of two with chunkLen <= n. Local index
// li must be >= 1 (the local average has no single global counterpart).
//
// The chunk's sub-tree root in the global tree is node n/chunkLen + chunkIdx;
// descending mirrors the local tree.
func GlobalIndex(n, chunkLen, chunkIdx, li int) int {
	if li < 1 {
		panic("wavelet: GlobalIndex requires local index >= 1")
	}
	// Local node li sits at local level L = floor(log2 li) with offset
	// li - 2^L; globally it sits L levels below the sub-tree root.
	root := n/chunkLen + chunkIdx
	l := Log2(li)
	return root<<uint(l) + (li - 1<<uint(l))
}

// BasisCoefficient returns the contribution of data value d at position pos
// (0-based, in a vector of length n) to the unnormalized coefficient at
// error-tree index i, per the basis-vector formulation of Appendix A.3
// adapted to the unnormalized transform:
//
//	c_0    = (1/n) * sum(d)
//	c_i    = (1/|leaves_i|) * (sum(left leaves) - sum(right leaves)) / ... —
//
// concretely, coefficient i at level l covers n/2^l consecutive values; a
// value in its left half contributes +d/(n/2^l) ... see implementation.
//
// Summing BasisCoefficient over all positions under node i yields exactly
// the coefficient produced by Transform. This is the decomposition that
// Send-Coef mappers exploit: w_i = Σ_j <A_j, ψ_i>.
func BasisCoefficient(n, i, pos int, d float64) float64 {
	if i == 0 {
		return d / float64(n)
	}
	support := n >> uint(Level(i)) // number of data values under node i
	// First data position covered by node i: the leftmost leaf of its
	// sub-tree.
	l := Level(i)
	first := (i - 1<<uint(l)) * support
	if pos < first || pos >= first+support {
		return 0
	}
	if pos < first+support/2 {
		return d / float64(support)
	}
	return -d / float64(support)
}

// CoefficientSupport returns the half-open range [first, last) of data
// positions influenced by coefficient i in a tree over n values.
func CoefficientSupport(n, i int) (first, last int) {
	if i == 0 {
		return 0, n
	}
	l := Level(i)
	support := n >> uint(l)
	first = (i - 1<<uint(l)) * support
	return first, first + support
}
