package wavelet

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestStreamerMatchesTransform(t *testing.T) {
	f := func(seed int64, logn uint8) bool {
		n := 1 << (logn % 9) // 1..256
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 100
		}
		got := make([]float64, n)
		emitted := make([]bool, n)
		s, err := NewStreamer(n, func(idx int, v float64) {
			if emitted[idx] {
				t.Fatalf("coefficient %d emitted twice", idx)
			}
			emitted[idx] = true
			got[idx] = v
		})
		if err != nil {
			return false
		}
		for _, v := range data {
			if err := s.Push(v); err != nil {
				return false
			}
		}
		if err := s.Finish(); err != nil {
			return false
		}
		for _, e := range emitted {
			if !e {
				return false
			}
		}
		want, _ := Transform(data)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamerEmitsChildrenBeforeParents(t *testing.T) {
	n := 16
	var order []int
	s, _ := NewStreamer(n, func(idx int, v float64) { order = append(order, idx) })
	for i := 0; i < n; i++ {
		s.Push(float64(i))
	}
	s.Finish()
	pos := map[int]int{}
	for i, idx := range order {
		pos[idx] = i
	}
	for node := 2; node < n; node++ {
		if pos[node] > pos[node/2] {
			t.Fatalf("node %d emitted after its parent %d", node, node/2)
		}
	}
	if order[len(order)-1] != 0 {
		t.Fatalf("node 0 not last: %v", order)
	}
}

func TestStreamerErrors(t *testing.T) {
	if _, err := NewStreamer(3, func(int, float64) {}); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	s, _ := NewStreamer(2, func(int, float64) {})
	s.Push(1)
	if err := s.Finish(); err == nil {
		t.Fatal("short stream accepted")
	}
	s.Push(2)
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(3); err == nil {
		t.Fatal("overflow accepted")
	}
	if s.Seen() != 2 {
		t.Fatalf("Seen = %d", s.Seen())
	}
}

func TestStreamerSingleValue(t *testing.T) {
	var got []float64
	s, _ := NewStreamer(1, func(idx int, v float64) {
		if idx != 0 {
			t.Fatalf("index %d", idx)
		}
		got = append(got, v)
	})
	s.Push(42)
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestTopKStreamMatchesConventional(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 << (2 + rng.Intn(6))
		b := 1 + rng.Intn(n/2)
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Trunc(rng.NormFloat64() * 100)
		}
		tk, err := NewTopKStream(n, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range data {
			if err := tk.Push(v); err != nil {
				t.Fatal(err)
			}
		}
		indices, values, err := tk.Finish()
		if err != nil {
			t.Fatal(err)
		}
		// Reference: offline top-B by significance over nonzero coefficients.
		w, _ := Transform(data)
		type cand struct {
			idx int
			sig float64
		}
		var cands []cand
		for i, c := range w {
			if c != 0 {
				cands = append(cands, cand{i, SignificanceOrderValue(i, c)})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].sig != cands[j].sig {
				return cands[i].sig > cands[j].sig
			}
			return cands[i].idx < cands[j].idx
		})
		if b > len(cands) {
			b = len(cands)
		}
		want := map[int]bool{}
		for _, c := range cands[:b] {
			want[c.idx] = true
		}
		if len(indices) != b {
			t.Fatalf("trial %d: stream kept %d, want %d", trial, len(indices), b)
		}
		for k, idx := range indices {
			if !want[idx] {
				t.Fatalf("trial %d: stream kept %d, not in offline top-%d %v", trial, idx, b, cands[:b])
			}
			if math.Abs(values[k]-w[idx]) > 1e-12*(1+math.Abs(w[idx])) {
				t.Fatalf("trial %d: value mismatch at %d", trial, idx)
			}
		}
	}
}

// TestTopKStreamFinishIndexSorted pins the deterministic output order:
// Finish returns pairs sorted by ascending index, not raw heap order.
func TestTopKStreamFinishIndexSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 1 << (3 + rng.Intn(5))
		tk, err := NewTopKStream(n, 1+rng.Intn(n/2))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := tk.Push(math.Trunc(rng.NormFloat64() * 10)); err != nil {
				t.Fatal(err)
			}
		}
		indices, values, err := tk.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(indices) != len(values) {
			t.Fatalf("trial %d: %d indices vs %d values", trial, len(indices), len(values))
		}
		if !sort.IntsAreSorted(indices) {
			t.Fatalf("trial %d: Finish indices not sorted: %v", trial, indices)
		}
	}
}

// TestTopKTieBreakMatchesOffline hammers the significance tie-break with
// values drawn from a tiny set (many exactly-equal significances at every
// level) and asserts the retained set is term-for-term the offline
// top-B under (significance desc, index asc) — the ordering
// synopsis.Conventional uses.
func TestTopKTieBreakMatchesOffline(t *testing.T) {
	f := func(seed int64, logn, bRaw uint8) bool {
		n := 1 << (2 + logn%6) // 4..128
		b := 1 + int(bRaw)%n
		rng := rand.New(rand.NewSource(seed))
		vals := []float64{-8, -4, 0, 0, 4, 8} // power-of-two magnitudes: dense sig ties
		data := make([]float64, n)
		for i := range data {
			data[i] = vals[rng.Intn(len(vals))]
		}
		tk, err := NewTopKStream(n, b)
		if err != nil {
			return false
		}
		for _, v := range data {
			if err := tk.Push(v); err != nil {
				return false
			}
		}
		indices, values, err := tk.Finish()
		if err != nil {
			return false
		}
		// Offline reference with the same total order.
		w, _ := Transform(data)
		type cand struct {
			idx int
			sig float64
		}
		var cands []cand
		for i, c := range w {
			if c != 0 {
				cands = append(cands, cand{i, SignificanceOrderValue(i, c)})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].sig != cands[j].sig {
				return cands[i].sig > cands[j].sig
			}
			return cands[i].idx < cands[j].idx
		})
		if b > len(cands) {
			b = len(cands)
		}
		want := cands[:b]
		sort.Slice(want, func(i, j int) bool { return want[i].idx < want[j].idx })
		if len(indices) != len(want) {
			return false
		}
		for k, c := range want {
			if indices[k] != c.idx || values[k] != w[c.idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKStreamShortFinish pins the error contract: Finish on a short
// stream fails, returns nil pairs (the populated heap must not read as a
// synopsis), and the stream can still be completed and finished cleanly.
func TestTopKStreamShortFinish(t *testing.T) {
	tk, err := NewTopKStream(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := []float64{5, 5, 0, 26, 1, 3, 14, 2}
	for _, v := range data[:6] {
		if err := tk.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	indices, values, err := tk.Finish()
	if err == nil {
		t.Fatal("short Finish accepted")
	}
	if indices != nil || values != nil {
		t.Fatalf("short Finish leaked pairs: %v %v", indices, values)
	}
	// The heap is populated with the prefix's completed coefficients —
	// exactly why a failed Finish must not be mistaken for success.
	if tk.topk.Len() == 0 {
		t.Fatal("expected retained prefix coefficients after short Finish")
	}
	// Completing the stream recovers.
	for _, v := range data[6:] {
		if err := tk.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	indices, _, err = tk.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(indices) != 4 || !sort.IntsAreSorted(indices) {
		t.Fatalf("recovered Finish returned %v", indices)
	}
}

// TestTopKStreamPushAfterFinishAndOverflow pins that Push fails cleanly
// once the stream is complete, and that an overflow error is sticky.
func TestTopKStreamPushAfterFinishAndOverflow(t *testing.T) {
	tk, err := NewTopKStream(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tk.Push(float64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tk.Push(99); err == nil {
		t.Fatal("overflow Push accepted")
	}
	if _, _, err := tk.Finish(); err != nil {
		t.Fatalf("Finish after rejected overflow push: %v", err)
	}
	if err := tk.Push(99); err == nil {
		t.Fatal("Push after Finish accepted")
	}
	if err := tk.Push(100); err == nil {
		t.Fatal("repeated overflow Push accepted")
	}
}

// TestTopKOfferTies drives the accumulator directly through a tie storm:
// every offer has identical significance, so retention is decided purely
// by the index tie-break.
func TestTopKOfferTies(t *testing.T) {
	tk, err := NewTopK(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTopK(0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	// All at level 0..: use index 0 and 1 (both level 0) plus same-level
	// siblings so significance is exactly equal for equal |value|.
	for _, idx := range []int{6, 4, 7, 5} { // all level 2, |v| equal
		tk.Offer(idx, 2)
	}
	tk.Offer(2, 0) // zero values are ignored
	indices, values := tk.Pairs()
	if len(indices) != 3 {
		t.Fatalf("retained %d, want 3", len(indices))
	}
	for k, want := range []int{4, 5, 6} { // smallest indices win ties
		if indices[k] != want || values[k] != 2 {
			t.Fatalf("retained %v %v, want indices [4 5 6]", indices, values)
		}
	}
}

func TestTopKStreamValidation(t *testing.T) {
	if _, err := NewTopKStream(8, 0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := NewTopKStream(7, 2); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

func TestStreamMaxAbs(t *testing.T) {
	m := 0.0
	m = StreamMaxAbs(m, 5, 3)
	m = StreamMaxAbs(m, 1, 1.5)
	if m != 2 {
		t.Fatalf("m = %g", m)
	}
}

func BenchmarkStreamer(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64()
	}
	b.SetBytes(int64(8 * n))
	for i := 0; i < b.N; i++ {
		s, _ := NewStreamer(n, func(int, float64) {})
		for _, v := range data {
			s.Push(v)
		}
		s.Finish()
	}
}
