package wavelet

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperData is the running example of Section 2.1 / Table 1 / Figure 1.
var paperData = []float64{5, 5, 0, 26, 1, 3, 14, 2}
var paperCoef = []float64{7, 2, -4, -3, 0, -13, -1, 6}

func TestTable1Example(t *testing.T) {
	w, err := Transform(paperData)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, paperCoef) {
		t.Fatalf("Transform = %v, want %v", w, paperCoef)
	}
}

func TestInverseOfPaperExample(t *testing.T) {
	d, err := Inverse(paperCoef)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, paperData) {
		t.Fatalf("Inverse = %v, want %v", d, paperData)
	}
}

func TestTransformErrors(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 12} {
		if _, err := Transform(make([]float64, n)); err == nil {
			t.Errorf("Transform of length %d: want error", n)
		}
		if _, err := Inverse(make([]float64, n)); err == nil {
			t.Errorf("Inverse of length %d: want error", n)
		}
	}
}

func TestTransformSingleton(t *testing.T) {
	w, err := Transform([]float64{42})
	if err != nil || w[0] != 42 {
		t.Fatalf("Transform([42]) = %v, %v", w, err)
	}
	d, err := Inverse(w)
	if err != nil || d[0] != 42 {
		t.Fatalf("Inverse = %v, %v", d, err)
	}
}

func TestTransformConstantVector(t *testing.T) {
	data := []float64{3, 3, 3, 3, 3, 3, 3, 3}
	w, _ := Transform(data)
	if w[0] != 3 {
		t.Fatalf("average = %v, want 3", w[0])
	}
	for i := 1; i < len(w); i++ {
		if w[i] != 0 {
			t.Fatalf("detail w[%d] = %v, want 0", i, w[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, logn uint8) bool {
		n := 1 << (logn % 11) // up to 1024
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()*2000 - 1000
		}
		w, err := Transform(data)
		if err != nil {
			return false
		}
		back, err := Inverse(w)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(back[i]-data[i]) > 1e-9*(1+math.Abs(data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransformLinearityProperty(t *testing.T) {
	// Transform is linear: T(a*x + y) = a*T(x) + T(y).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x, y := make([]float64, n), make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64()*100, rng.NormFloat64()*100
		}
		a := rng.Float64()*4 - 2
		z := make([]float64, n)
		for i := range z {
			z[i] = a*x[i] + y[i]
		}
		wx, _ := Transform(x)
		wy, _ := Transform(y)
		wz, _ := Transform(z)
		for i := range wz {
			want := a*wx[i] + wy[i]
			if math.Abs(wz[i]-want) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevel(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 15: 3, 16: 4}
	for i, want := range cases {
		if got := Level(i); got != want {
			t.Errorf("Level(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestSignificanceOrderingMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		i, j := rng.Intn(64), rng.Intn(64)
		ci, cj := rng.NormFloat64()*50, rng.NormFloat64()*50
		a := Significance(i, ci) < Significance(j, cj)
		b := SignificanceOrderValue(i, ci) < SignificanceOrderValue(j, cj)
		if a != b {
			t.Fatalf("ordering mismatch at (%d,%g) vs (%d,%g)", i, ci, j, cj)
		}
	}
}

func TestCoefficientSupport(t *testing.T) {
	n := 8
	want := map[int][2]int{
		0: {0, 8}, 1: {0, 8}, 2: {0, 4}, 3: {4, 8},
		4: {0, 2}, 5: {2, 4}, 6: {4, 6}, 7: {6, 8},
	}
	for i, w := range want {
		f, l := CoefficientSupport(n, i)
		if f != w[0] || l != w[1] {
			t.Errorf("CoefficientSupport(8,%d) = [%d,%d), want [%d,%d)", i, f, l, w[0], w[1])
		}
	}
}

func TestBasisCoefficientSumsToTransform(t *testing.T) {
	// Appendix A.3: every coefficient is the sum over data positions of
	// per-position contributions. Verify against the direct transform.
	rng := rand.New(rand.NewSource(99))
	n := 32
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 100
	}
	w, _ := Transform(data)
	for i := 0; i < n; i++ {
		var sum float64
		for pos, d := range data {
			sum += BasisCoefficient(n, i, pos, d)
		}
		if math.Abs(sum-w[i]) > 1e-9 {
			t.Fatalf("basis sum for coefficient %d = %g, want %g", i, sum, w[i])
		}
	}
}

func TestLocalTransformMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, chunkLen := 64, 8
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	w, _ := Transform(data)
	for chunkIdx := 0; chunkIdx < n/chunkLen; chunkIdx++ {
		chunk := data[chunkIdx*chunkLen : (chunkIdx+1)*chunkLen]
		details, avg, err := LocalTransform(chunk)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range chunk {
			sum += v
		}
		if math.Abs(avg-sum/float64(chunkLen)) > 1e-9 {
			t.Fatalf("chunk %d average = %g", chunkIdx, avg)
		}
		for li := 1; li < chunkLen; li++ {
			gi := GlobalIndex(n, chunkLen, chunkIdx, li)
			if math.Abs(details[li]-w[gi]) > 1e-9 {
				t.Fatalf("chunk %d local %d (global %d): %g != %g",
					chunkIdx, li, gi, details[li], w[gi])
			}
		}
	}
}

func TestGlobalIndexPanicsOnLocalZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for local index 0")
		}
	}()
	GlobalIndex(8, 4, 0, 0)
}

func TestIsPowerOfTwoAndNext(t *testing.T) {
	for _, tc := range []struct {
		n    int
		is   bool
		next int
	}{{1, true, 1}, {2, true, 2}, {3, false, 4}, {4, true, 4}, {5, false, 8}, {1023, false, 1024}, {1024, true, 1024}} {
		if IsPowerOfTwo(tc.n) != tc.is {
			t.Errorf("IsPowerOfTwo(%d) = %v", tc.n, !tc.is)
		}
		if got := NextPowerOfTwo(tc.n); got != tc.next {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", tc.n, got, tc.next)
		}
	}
	if IsPowerOfTwo(0) || IsPowerOfTwo(-4) {
		t.Error("IsPowerOfTwo accepted non-positive")
	}
}

func TestTransformIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	TransformInto(make([]float64, 4), make([]float64, 8))
}

func BenchmarkTransform(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		data := make([]float64, n)
		rng := rand.New(rand.NewSource(1))
		for i := range data {
			data[i] = rng.Float64()
		}
		w := make([]float64, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(8 * n))
			for i := 0; i < b.N; i++ {
				TransformInto(w, data)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<18:
		return "256K"
	case n >= 1<<14:
		return "16K"
	default:
		return "1K"
	}
}
