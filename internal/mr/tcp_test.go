package mr

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func init() {
	RegisterJob("tcp-wordcount", func(params []byte) (*Job, error) {
		var texts []string
		if err := GobDecode(params, &texts); err != nil {
			return nil, err
		}
		return wordCountJob(texts, 2), nil
	})
	RegisterJob("tcp-flaky", func(params []byte) (*Job, error) {
		job := wordCountJob([]string{"a a b"}, 1)
		job.Map = func(ctx TaskContext, split Split, emit Emit) error {
			panic("worker-side failure")
		}
		return job, nil
	})
}

func startCluster(t *testing.T, workers int) *Coordinator {
	t.Helper()
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	for i := 0; i < workers; i++ {
		name := "w" + string(rune('0'+i))
		go Serve(c.Addr(), name, stop)
	}
	if err := c.WaitForWorkers(workers, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterMatchesLocal(t *testing.T) {
	texts := []string{"the quick brown fox", "jumps over the lazy dog", "the end"}
	c := startCluster(t, 3)
	params := MustGobEncode(texts)
	clusterRes, err := c.Run("tcp-wordcount", params)
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := (&Local{}).Run(wordCountJob(texts, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(countsOf(clusterRes), countsOf(localRes)) {
		t.Fatalf("cluster %v != local %v", countsOf(clusterRes), countsOf(localRes))
	}
	// Partition contents must match exactly (same partitioner, same sort).
	if len(clusterRes.Partitions) != len(localRes.Partitions) {
		t.Fatal("partition count mismatch")
	}
	for p := range clusterRes.Partitions {
		if !reflect.DeepEqual(clusterRes.Partitions[p], localRes.Partitions[p]) {
			t.Fatalf("partition %d differs", p)
		}
	}
	if clusterRes.Metrics.ShuffleBytes != localRes.Metrics.ShuffleBytes {
		t.Fatalf("shuffle bytes: cluster %d local %d",
			clusterRes.Metrics.ShuffleBytes, localRes.Metrics.ShuffleBytes)
	}
}

func TestClusterSingleWorkerHandlesAllTasks(t *testing.T) {
	c := startCluster(t, 1)
	res, err := c.Run("tcp-wordcount", MustGobEncode([]string{"x y", "y z", "z z"}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"x": 1, "y": 2, "z": 3}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestClusterTaskFailureSurfaces(t *testing.T) {
	c := startCluster(t, 2)
	_, err := c.Run("tcp-flaky", nil)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want worker panic error", err)
	}
}

func TestClusterUnknownJob(t *testing.T) {
	c := startCluster(t, 1)
	if _, err := c.Run("no-such-job", nil); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestClusterWaitForWorkersTimeout(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForWorkers(1, 30*time.Millisecond); err == nil {
		t.Fatal("want timeout error")
	}
}

func TestClusterSurvivesWorkerDeath(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stopA := make(chan struct{})
	stopB := make(chan struct{})
	defer close(stopB)
	go Serve(c.Addr(), "doomed", stopA)
	go Serve(c.Addr(), "survivor", stopB)
	if err := c.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill one worker before the job: its connection drops, the first task
	// sent to it fails, and the coordinator reassigns to the survivor.
	close(stopA)
	time.Sleep(20 * time.Millisecond)
	res, err := c.Run("tcp-wordcount", MustGobEncode([]string{"a a", "b", "c c"}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"a": 2, "b": 1, "c": 2}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestClusterAllWorkersDead(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.TaskTimeout = 200 * time.Millisecond
	stop := make(chan struct{})
	go Serve(c.Addr(), "w", stop)
	if err := c.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	time.Sleep(20 * time.Millisecond)
	if _, err := c.Run("tcp-wordcount", MustGobEncode([]string{"x"})); err == nil {
		t.Fatal("job succeeded with every worker dead")
	}
}
