package mr

import (
	"sort"
	"sync"
)

// Counters are Hadoop-style user counters: map and reduce functions bump
// named counters through their TaskContext, and the engine aggregates them
// into the job metrics. Counting follows commit semantics — only the
// winning attempt of each task contributes, so retries and speculative
// backups never double-count.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64 // guarded by mu
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: map[string]int64{}}
}

// Add increments a named counter. Safe for concurrent use.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns a counter's value.
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names lists the counter names, sorted.
func (c *Counters) Names() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// mergeInto folds this counter set into dst. It copies under c.mu and
// adds outside it: holding one Counters lock while taking another would
// deadlock two sets merging into each other.
func (c *Counters) mergeInto(dst *Counters) {
	if c == nil || dst == nil {
		return
	}
	for n, v := range c.snapshot() {
		dst.Add(n, v)
	}
}

// addUserCounters folds a committed attempt's counter snapshot into the
// job metrics. Both engines use it — local attempts merge in process,
// cluster attempts ship their snapshot in the task reply — so cluster
// runs aggregate counters with the same commit semantics as local runs.
func (m *Metrics) addUserCounters(snap map[string]int64) {
	if len(snap) == 0 {
		return
	}
	if m.UserCounters == nil {
		m.UserCounters = map[string]int64{}
	}
	for k, v := range snap {
		m.UserCounters[k] += v
	}
}

// snapshot copies the counters into a plain map.
func (c *Counters) snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(c.m))
	for n, v := range c.m {
		out[n] = v
	}
	return out
}
