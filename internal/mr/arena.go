package mr

import "sync"

// Shuffle allocation fast path. The seed engine paid one heap allocation
// per emitted key and per value; the collectors here copy records into
// contiguous arena blocks instead — one allocation per ~64 KiB of shuffle
// data — and recycle blocks through a sync.Pool at the points where no
// live Pair can still reference them (worker replies already serialized,
// spilled partitions already on disk, discarded attempts). Because emit
// copies, map and reduce functions may reuse one scratch buffer per task
// for key/value encoding (see the Append* codec helpers).

// arenaBlockSize is the arena block granularity. Items larger than a
// block get a dedicated, unpooled allocation.
const arenaBlockSize = 1 << 16

// blockPool recycles arena blocks (stored as *[]byte so Put does not
// allocate). New firing means a pool miss — the gets/allocs counter pair
// measures the recycle hit rate.
var blockPool = sync.Pool{
	New: func() interface{} {
		obsArenaBlockAllocs.Inc()
		b := make([]byte, 0, arenaBlockSize)
		return &b
	},
}

// byteArena allocates byte slices out of pooled contiguous blocks. Not
// safe for concurrent use; each task owns its own arena.
type byteArena struct {
	cur    []byte    // current block, len = bytes used
	blocks []*[]byte // pool-owned blocks, retained for release
}

// copyBytes copies b into the arena and returns a stable full-capacity
// slice. Empty input returns nil so both engines produce identical
// results for zero-length keys/values.
func (a *byteArena) copyBytes(b []byte) []byte {
	n := len(b)
	if n == 0 {
		return nil
	}
	if cap(a.cur)-len(a.cur) < n {
		if n >= arenaBlockSize {
			// Dedicated block: never pooled, so release cannot recycle
			// memory that outsized records still reference.
			out := make([]byte, n)
			copy(out, b)
			return out
		}
		obsArenaBlockGets.Inc()
		bp := blockPool.Get().(*[]byte)
		a.blocks = append(a.blocks, bp)
		a.cur = (*bp)[:0]
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	copy(a.cur[off:], b)
	return a.cur[off : off+n : off+n]
}

// release returns every block to the pool. The caller must guarantee no
// slice handed out by copyBytes is referenced afterwards.
func (a *byteArena) release() {
	for _, bp := range a.blocks {
		*bp = (*bp)[:0]
		blockPool.Put(bp)
	}
	a.blocks, a.cur = nil, nil
}

// reset recycles the arena for reuse by the same owner: all blocks but
// the current one go back to the pool and the current block rewinds.
// Same safety contract as release.
func (a *byteArena) reset() {
	if len(a.blocks) == 0 {
		return
	}
	last := a.blocks[len(a.blocks)-1]
	for _, bp := range a.blocks[:len(a.blocks)-1] {
		*bp = (*bp)[:0]
		blockPool.Put(bp)
	}
	a.blocks = append(a.blocks[:0], last)
	a.cur = (*last)[:0]
}

// mapCollector is the fast-path emit sink for map tasks: records are
// copied into the arena and appended to per-partition Pair batches.
type mapCollector struct {
	job   *Job
	arena byteArena
	parts [][]Pair
}

func newMapCollector(job *Job, nred int) *mapCollector {
	return &mapCollector{job: job, parts: make([][]Pair, nred)}
}

func (mc *mapCollector) emit(key, value []byte) error {
	p := mc.job.partition(key)
	mc.parts[p] = append(mc.parts[p], Pair{Key: mc.arena.copyBytes(key), Value: mc.arena.copyBytes(value)})
	return nil
}

// discard recycles the collector's arena — the output of a failed or
// speculation-losing attempt is never referenced again.
func (mc *mapCollector) discard() { mc.arena.release() }

// reduceTaskOut is a reduce attempt's output: pairs backed by the
// attempt's own arena. Committed outputs keep their arena alive (Result
// aliases the records); losing attempts discard it.
type reduceTaskOut struct {
	arena byteArena
	out   []Pair
}

func (ro *reduceTaskOut) discard() { ro.arena.release() }

// emitInto returns an Emit that copies records into arena and appends to
// *out — the sink for combiner and reducer output.
func emitInto(arena *byteArena, out *[]Pair) Emit {
	return func(key, value []byte) error {
		*out = append(*out, Pair{Key: arena.copyBytes(key), Value: arena.copyBytes(value)})
		return nil
	}
}

// pairBufPool recycles the scratch Pair slices of the radix sort.
var pairBufPool sync.Pool

func getPairBuf(n int) []Pair {
	if v := pairBufPool.Get(); v != nil {
		if buf := *(v.(*[]Pair)); cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]Pair, n)
}

// putPairBuf clears buf (so pooled headers cannot pin shuffle data) and
// returns it to the pool.
func putPairBuf(buf []Pair) {
	clear(buf)
	pairBufPool.Put(&buf)
}

// byteBufPool recycles wire-codec scratch buffers.
var byteBufPool sync.Pool

func getByteBuf() []byte {
	if v := byteBufPool.Get(); v != nil {
		return (*(v.(*[]byte)))[:0]
	}
	return make([]byte, 0, 4096)
}

func putByteBuf(buf []byte) {
	byteBufPool.Put(&buf)
}
