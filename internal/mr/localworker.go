package mr

import (
	"errors"
	"fmt"
	"time"

	"dwmaxerr/internal/chaos"
)

// Shared-memory workers: a co-located coordinator/worker pair has no
// business paying for TCP framing, CRC trailers, and a serialize/decode
// round trip per task — the dominant fixed cost of small jobs when driver
// and workers share a process (the common single-machine deployment, and
// every test). AttachLocalWorker registers a worker that receives tasks
// over an in-memory channel and returns replies by reference.
//
// The rest of the coordinator is unchanged: scheduling, retries,
// speculation, the at-most-once commit, and metrics all operate on the
// same workerConn, so a cluster may freely mix TCP and shared-memory
// workers. Chaos failpoints are honored at the same protocol positions as
// the TCP path (chaosCoordSend before task handoff, chaosWorkerTask before
// execution, chaosWorkerSend before the reply is delivered), so fault
// drills exercise both transports.
//
// Memory discipline: the TCP worker recycles its task arenas after
// serializing a reply (nothing references the pairs once they are bytes on
// the wire). A shared-memory reply is not serialized — the coordinator
// retains the pairs themselves through shuffle and merge — so the arena
// release is intentionally skipped and the blocks stay alive until the
// job's results are garbage.

// AttachLocalWorker registers a shared-memory worker with the coordinator
// and starts its task loop in a new goroutine. The worker participates in
// scheduling exactly like a TCP worker (including clean shutdown on
// coordinator Close). The returned detach function removes the worker,
// failing any in-flight task so it is retried elsewhere; calling it more
// than once is safe.
func (c *Coordinator) AttachLocalWorker(name string) (detach func(), err error) {
	w := &workerConn{
		name:      name,
		local:     make(chan wireTask, 1),
		localGone: make(chan struct{}),
		lastBeat:  time.Now(),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("mr: coordinator closed")
	}
	c.workers = append(c.workers, w)
	c.cond.Broadcast()
	c.mu.Unlock()
	obsWorkersJoined.Inc()
	obsWorkersLive.Add(1)
	go c.localWorkerLoop(w)
	return func() {
		c.workerFailed(w, fmt.Errorf("mr: shared-memory worker %q detached", name))
	}, nil
}

// localWorkerLoop executes tasks for one shared-memory worker until a
// shutdown task arrives, the coordinator closes, or a chaos fault kills
// the worker. It plays both serveSession (task execution) and readLoop
// (reply routing) without a connection in between.
func (c *Coordinator) localWorkerLoop(w *workerConn) {
	defer close(w.localGone)
	for {
		var task wireTask
		select {
		case <-c.done:
			c.workerFailed(w, errors.New("mr: coordinator closed"))
			return
		case task = <-w.local:
		}
		if task.Kind == "shutdown" {
			c.workerFailed(w, errors.New("mr: shared-memory worker shut down"))
			return
		}
		switch act := chaos.Point(chaosWorkerTask); act.Kind {
		case chaos.Fail:
			c.workerFailed(w, act.Err)
			return
		case chaos.Delay:
			time.Sleep(act.Sleep)
		}
		// done is NOT called: the reply's pairs are handed to the
		// coordinator by reference (see the package comment).
		reply, _ := executeWireTask(task)
		switch act := chaos.Point(chaosWorkerSend); act.Kind {
		case chaos.Fail:
			c.workerFailed(w, act.Err)
			return
		case chaos.Delay:
			time.Sleep(act.Sleep)
		}
		c.mu.Lock()
		if w.dead {
			// The exchange deadline (or a detach) already declared this
			// worker dead; its task was reassigned, so the stale reply is
			// dropped and the loop retires.
			c.mu.Unlock()
			return
		}
		w.lastBeat = time.Now()
		ch := w.pending
		w.pending = nil
		c.mu.Unlock()
		if ch != nil {
			ch <- taskOutcome{reply: reply}
		}
	}
}
