package mr

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property coverage for the shuffle sort fast path: for every key-width
// class the radix path must produce the exact permutation of the
// comparison sort — lexicographic order with arrival order preserved
// among equal keys. Values carry the arrival index so stability
// violations are observable even for duplicate keys.

// referenceSort is the seed's shuffle sort.
func referenceSort(pairs []Pair) {
	sort.SliceStable(pairs, func(i, j int) bool { return bytes.Compare(pairs[i].Key, pairs[j].Key) < 0 })
}

// indexedPairs tags each key with its arrival index as the value.
func indexedPairs(keys [][]byte) []Pair {
	pairs := make([]Pair, len(keys))
	for i, k := range keys {
		pairs[i] = Pair{Key: k, Value: EncodeUint64(uint64(i))}
	}
	return pairs
}

func assertSameOrder(t *testing.T, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("permutation diverges at %d: got (%x, %x) want (%x, %x)",
				i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// checkMatchesReference sorts a copy through each path and compares.
func checkMatchesReference(t *testing.T, keys [][]byte) {
	t.Helper()
	got := indexedPairs(keys)
	want := indexedPairs(keys)
	sortPairs(&Job{}, got)
	referenceSort(want)
	assertSameOrder(t, got, want)
}

// TestRadixMatchesReferenceEveryWidth drives every fixed width the fast
// path accepts, with a small alphabet so duplicate keys (the stability
// case) are common.
func TestRadixMatchesReferenceEveryWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for width := 1; width <= maxRadixKeyWidth; width++ {
		for _, n := range []int{minRadixLen, 257, 1024} {
			keys := make([][]byte, n)
			for i := range keys {
				k := make([]byte, width)
				for b := range k {
					k[b] = byte(rng.Intn(4)) // tiny alphabet: many ties
				}
				keys[i] = k
			}
			checkMatchesReference(t, keys)
		}
	}
}

// TestRadixPropertyFixedWidth is the randomized property: arbitrary byte
// distributions at the widths the algorithms actually emit (8-byte
// encoded numerics, 12-byte histKey composites, 16-byte pairs).
func TestRadixPropertyFixedWidth(t *testing.T) {
	for _, width := range []int{2, 8, 12, 16, maxRadixKeyWidth} {
		f := func(seed int64, raw []byte) bool {
			rng := rand.New(rand.NewSource(seed))
			n := minRadixLen + rng.Intn(512)
			keys := make([][]byte, n)
			for i := range keys {
				k := make([]byte, width)
				for b := range k {
					if len(raw) > 0 {
						k[b] = raw[rng.Intn(len(raw))]
					} else {
						k[b] = byte(rng.Intn(256))
					}
				}
				keys[i] = k
			}
			got := indexedPairs(keys)
			want := indexedPairs(keys)
			sortPairs(&Job{}, got)
			referenceSort(want)
			for i := range got {
				if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
	}
}

// TestRadixVariableWidthFallsBack mixes key lengths so the fast path must
// decline, and verifies the fallback still matches the reference.
func TestRadixVariableWidthFallsBack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := minRadixLen + rng.Intn(256)
		keys := make([][]byte, n)
		for i := range keys {
			k := make([]byte, 1+rng.Intn(20))
			rng.Read(k)
			keys[i] = k
		}
		got := indexedPairs(keys)
		want := indexedPairs(keys)
		sortPairs(&Job{}, got)
		referenceSort(want)
		for i := range got {
			if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRadixEdgeWidths pins the boundary behavior: width just above the cap
// and slices just below the length threshold take the comparison path yet
// still sort identically; empty keys never reach the radix path.
func TestRadixEdgeWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Width beyond the cap.
	wide := make([][]byte, minRadixLen)
	for i := range wide {
		k := make([]byte, maxRadixKeyWidth+1)
		rng.Read(k)
		wide[i] = k
	}
	checkMatchesReference(t, wide)
	// Slice below the radix length threshold.
	short := make([][]byte, minRadixLen-1)
	for i := range short {
		k := make([]byte, 8)
		rng.Read(k)
		short[i] = k
	}
	checkMatchesReference(t, short)
	// Empty and nil keys (identity-reduce jobs emit nil values, and keys
	// can be empty too).
	mixed := [][]byte{nil, {}, {1}, nil, {0}, {}, {2, 3}}
	for len(mixed) < minRadixLen+4 {
		mixed = append(mixed, nil, []byte{1}, []byte{0, 0}, []byte{})
	}
	checkMatchesReference(t, mixed)
}

// TestRadixCustomCompareBypassed: a job with a custom comparator must not
// take the radix path even for fixed-width keys.
func TestRadixCustomCompareBypassed(t *testing.T) {
	job := &Job{Compare: func(a, b []byte) int { return bytes.Compare(b, a) }} // descending
	n := minRadixLen * 2
	pairs := make([]Pair, n)
	rng := rand.New(rand.NewSource(3))
	for i := range pairs {
		k := make([]byte, 8)
		rng.Read(k)
		pairs[i] = Pair{Key: k, Value: EncodeUint64(uint64(i))}
	}
	want := make([]Pair, n)
	copy(want, pairs)
	sort.SliceStable(want, func(i, j int) bool { return job.compare(want[i].Key, want[j].Key) < 0 })
	sortPairs(job, pairs)
	assertSameOrder(t, pairs, want)
}
