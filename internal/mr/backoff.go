package mr

import (
	"math/rand"
	"time"
)

// Backoff computes jittered exponential delays for dial retries and
// reconnection — the engine's workers use it to re-dial a coordinator,
// and the serve tier's router reuses it to re-dial shard nodes. Delays
// grow as base·2^(attempt-1), capped at max, then jittered uniformly
// into [d/2, d] — full-magnitude jitter would let a delay collapse to
// ~0 and hammer a peer that just died, while the half-open window keeps
// retries spread without losing the exponential floor. The RNG is
// seeded explicitly so tests can pin the exact delay sequence.
type Backoff struct {
	base time.Duration
	max  time.Duration
	rng  *rand.Rand
}

// NewBackoff returns a backoff policy. base <= 0 defaults to 50ms,
// max <= 0 to 5s.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the jittered delay for the attempt-th consecutive
// failure (1-based; attempt < 1 is treated as 1).
func (b *Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := b.base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= b.max {
			d = b.max
			break
		}
	}
	if d > b.max {
		d = b.max
	}
	// Jitter into [d/2, d].
	half := d / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}
