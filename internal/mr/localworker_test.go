package mr

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"dwmaxerr/internal/chaos"
)

// Shared-memory worker coverage: output/metric invariance against the
// Local engine (and a mixed TCP+local fleet), chaos failpoints on the
// in-memory path, detach-triggered retries, and clean shutdown.

// startLocalCluster builds a coordinator served entirely by shared-memory
// workers. Attach is synchronous, so no WaitForWorkers is needed.
func startLocalCluster(t *testing.T, workers int) *Coordinator {
	t.Helper()
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for i := 0; i < workers; i++ {
		name := "shm" + string(rune('0'+i))
		if _, err := c.AttachLocalWorker(name); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestLocalWorkersMatchLocal(t *testing.T) {
	texts := []string{"the quick brown fox", "jumps over the lazy dog", "the end"}
	c := startLocalCluster(t, 3)
	clusterRes, err := c.Run("tcp-wordcount", MustGobEncode(texts))
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := (&Local{}).Run(wordCountJob(texts, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(countsOf(clusterRes), countsOf(localRes)) {
		t.Fatalf("cluster %v != local %v", countsOf(clusterRes), countsOf(localRes))
	}
	if len(clusterRes.Partitions) != len(localRes.Partitions) {
		t.Fatal("partition count mismatch")
	}
	for p := range clusterRes.Partitions {
		if !reflect.DeepEqual(clusterRes.Partitions[p], localRes.Partitions[p]) {
			t.Fatalf("partition %d differs", p)
		}
	}
	// ShuffleBytes is computed from pair lengths, so the Eq. 6 metric is
	// identical no matter which transport moved the pairs.
	if clusterRes.Metrics.ShuffleBytes != localRes.Metrics.ShuffleBytes {
		t.Fatalf("shuffle bytes: cluster %d local %d",
			clusterRes.Metrics.ShuffleBytes, localRes.Metrics.ShuffleBytes)
	}
}

func TestMixedFleetMatchesLocal(t *testing.T) {
	texts := []string{"x y x", "z z y", "w"}
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	defer close(stop)
	go Serve(c.Addr(), "tcp-w", stop)
	if err := c.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.AttachLocalWorker("shm" + string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	clusterRes, err := c.Run("tcp-wordcount", MustGobEncode(texts))
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := (&Local{}).Run(wordCountJob(texts, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(countsOf(clusterRes), countsOf(localRes)) {
		t.Fatalf("mixed fleet %v != local %v", countsOf(clusterRes), countsOf(localRes))
	}
	for p := range clusterRes.Partitions {
		if !reflect.DeepEqual(clusterRes.Partitions[p], localRes.Partitions[p]) {
			t.Fatalf("partition %d differs", p)
		}
	}
	if clusterRes.Metrics.ShuffleBytes != localRes.Metrics.ShuffleBytes {
		t.Fatalf("shuffle bytes: mixed %d local %d",
			clusterRes.Metrics.ShuffleBytes, localRes.Metrics.ShuffleBytes)
	}
}

func TestLocalWorkerCountersMatchLocal(t *testing.T) {
	c := startLocalCluster(t, 2)
	params := MustGobEncode(faultJobParams{Texts: []string{"a b a", "c c", "a d e"}})
	clusterRes, err := c.Run("fault-count", params)
	if err != nil {
		t.Fatal(err)
	}
	localRes := localRunOf(t, "fault-count", params)
	if !reflect.DeepEqual(countsOf(clusterRes), countsOf(localRes)) {
		t.Fatalf("cluster %v != local %v", countsOf(clusterRes), countsOf(localRes))
	}
	if !reflect.DeepEqual(clusterRes.Metrics.UserCounters, localRes.Metrics.UserCounters) {
		t.Fatalf("user counters: cluster %v != local %v",
			clusterRes.Metrics.UserCounters, localRes.Metrics.UserCounters)
	}
}

func TestLocalWorkerTaskFailureSurfaces(t *testing.T) {
	c := startLocalCluster(t, 2)
	_, err := c.Run("tcp-flaky", nil)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want worker panic error", err)
	}
}

// TestLocalWorkerChaosTaskFail: a Fail at mr.worker.task kills one
// shared-memory worker; its task is reassigned to the survivor and the
// job still completes correctly.
func TestLocalWorkerChaosTaskFail(t *testing.T) {
	in, err := chaos.New(3, chaosWorkerTask+":drop#1")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(in)
	defer chaos.Disable()
	c := startLocalCluster(t, 2)
	res, err := c.Run("tcp-wordcount", MustGobEncode([]string{"a a", "b", "c c"}))
	if err != nil {
		t.Fatal(err)
	}
	if in.Fired(chaosWorkerTask) == 0 {
		t.Fatal("chaos rule never fired")
	}
	want := map[string]uint64{"a": 2, "b": 1, "c": 2}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestLocalWorkerChaosSendFails: Fail actions at the reply handoff
// (mr.worker.send) and at the coordinator-side task handoff
// (mr.coord.send) are both survived via reassignment.
func TestLocalWorkerChaosSendFails(t *testing.T) {
	for _, point := range []string{chaosWorkerSend, chaosCoordSend} {
		t.Run(point, func(t *testing.T) {
			in, err := chaos.New(5, point+":drop#1")
			if err != nil {
				t.Fatal(err)
			}
			chaos.Enable(in)
			defer chaos.Disable()
			c := startLocalCluster(t, 2)
			res, err := c.Run("tcp-wordcount", MustGobEncode([]string{"p q", "q"}))
			if err != nil {
				t.Fatal(err)
			}
			if in.Fired(point) == 0 {
				t.Fatal("chaos rule never fired")
			}
			want := map[string]uint64{"p": 1, "q": 2}
			if got := countsOf(res); !reflect.DeepEqual(got, want) {
				t.Fatalf("got %v want %v", got, want)
			}
		})
	}
}

// TestLocalWorkerDetach: detaching one worker mid-fleet leaves the
// survivor to run the whole job; detaching twice is harmless.
func TestLocalWorkerDetach(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	detach, err := c.AttachLocalWorker("doomed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AttachLocalWorker("survivor"); err != nil {
		t.Fatal(err)
	}
	detach()
	detach()
	res, err := c.Run("tcp-wordcount", MustGobEncode([]string{"a a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"a": 2, "b": 1}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestAttachLocalWorkerAfterClose(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.AttachLocalWorker("late"); err == nil {
		t.Fatal("attach after close accepted")
	}
}

// TestLocalWorkerRepeatedRuns: the same shared-memory fleet serves many
// jobs back to back (the loop exercises task-channel reuse and the
// pending-reply reset between runs).
func TestLocalWorkerRepeatedRuns(t *testing.T) {
	c := startLocalCluster(t, 2)
	for i := 0; i < 5; i++ {
		res, err := c.Run("tcp-wordcount", MustGobEncode([]string{"m n", "n"}))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		want := map[string]uint64{"m": 1, "n": 2}
		if got := countsOf(res); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: got %v", i, got)
		}
	}
}
