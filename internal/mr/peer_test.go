package mr

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dwmaxerr/internal/chaos"
)

// peerPair dials a PeerConn into an in-test acceptor and returns both
// ends. The accept side echoes nothing — tests drive both sides.
func peerPair(t *testing.T, dialChaos string) (client, server *PeerConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan *PeerConn, 1)
	errc := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		pc, err := AcceptPeer(conn, "")
		if err != nil {
			errc <- err
			return
		}
		accepted <- pc
	}()
	client, err = DialPeer(ln.Addr().String(), time.Second, dialChaos)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	select {
	case server = <-accepted:
		t.Cleanup(func() { server.Close() })
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	return client, server
}

// TestPeerConnRoundTrip exchanges data and heartbeat frames both ways.
func TestPeerConnRoundTrip(t *testing.T) {
	client, server := peerPair(t, "")
	payload := bytes.Repeat([]byte("shard"), 100)
	if err := client.Send(PeerFrameBase, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != PeerFrameBase || !bytes.Equal(got, payload) {
		t.Fatalf("server received typ %d, %d bytes", typ, len(got))
	}
	if err := server.Send(PeerFrameBase+1, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	typ, got, err = client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != PeerFrameBase+1 || string(got) != "reply" {
		t.Fatalf("client received typ %d, %q", typ, got)
	}
	// Heartbeats ride the engine's exempt frame type.
	if err := client.Send(FrameHeartbeat, nil); err != nil {
		t.Fatal(err)
	}
	if typ, _, err = server.Recv(); err != nil || typ != FrameHeartbeat {
		t.Fatalf("heartbeat: typ %d, err %v", typ, err)
	}
}

// TestPeerConnRejectsEngineFrameTypes pins the frame-space split: the
// engine's own codes are not valid on peer links.
func TestPeerConnRejectsEngineFrameTypes(t *testing.T) {
	client, _ := peerPair(t, "")
	if err := client.Send(frameTask, []byte("x")); err == nil {
		t.Fatal("Send accepted an engine frame type")
	}
}

// TestPeerVersionMismatchRejected pins the preamble gate: a peer
// speaking another wire version gets a reject frame and a closed
// connection, never misdecoded frames.
func TestPeerVersionMismatchRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if _, err := AcceptPeer(conn, ""); err == nil {
			t.Error("AcceptPeer admitted a mismatched version")
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pre := appendPreamble(nil)
	pre[5]++ // bump the version byte
	if _, err := conn.Write(pre); err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(conn)
	typ, payload, err := fr.read()
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameReject || !strings.Contains(string(payload), "wire version") {
		t.Fatalf("expected reject frame, got typ %d payload %q", typ, payload)
	}
	wg.Wait()
}

// TestPeerChaosCorruptKillsConnection arms a corrupt rule on the dial
// side's failpoint and shows the CRC trailer rejects the frame at the
// receiver — the same integrity guarantee the engine's links have.
func TestPeerChaosCorruptKillsConnection(t *testing.T) {
	if err := chaos.EnableSpec("7,mr.test.peer:corrupt#1"); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()
	client, server := peerPair(t, "mr.test.peer")
	if err := client.Send(PeerFrameBase, bytes.Repeat([]byte("q"), 64)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := server.Recv(); err == nil {
		t.Fatal("receiver accepted a corrupted frame")
	}
}

// TestPeerChaosDropFailsSend pins the Fail verb at the peer layer.
func TestPeerChaosDropFailsSend(t *testing.T) {
	if err := chaos.EnableSpec("8,mr.test.peer:drop#1"); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()
	client, _ := peerPair(t, "mr.test.peer")
	err := client.Send(PeerFrameBase, []byte("q"))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Send error = %v, want injected fault", err)
	}
	// Heartbeats stay exempt: the rule would have fired on them otherwise.
	if err := client.Send(FrameHeartbeat, nil); err != nil {
		t.Fatal(err)
	}
}
