package mr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"dwmaxerr/internal/chaos"
)

// Wire fast path for the cluster engine. The seed framed every message
// through reflection-driven encoding/gob; the hot, high-volume frames —
// task assignments carrying reduce buckets, replies carrying map-output
// partitions and counter snapshots — now use a compact length-prefixed
// binary codec, with gob kept only for the low-rate hello control frame.
//
// Connection layout (worker dials coordinator):
//
//	preamble  "DWMR" | uint16 version | uint16 reserved            (worker → coord)
//	frames    type(1) | payloadLen(uint32 BE) | payload | crc(4)   (both directions)
//
// Frame types: hello (gob wireHello), task and reply (binary, below),
// heartbeat (empty), reject (UTF-8 reason, coordinator → worker). The
// coordinator validates the preamble before admitting a worker and
// rejects mismatched versions cleanly — a reject frame, then close — so
// a stale worker binary can never exchange misdecoded shuffle data.
//
// Version history: v3 added the CRC32-C frame trailer; v4 switched the
// record-level codecs of the dist pipelines (M-rows, histogram keys,
// index/value payloads) to delta + varint encodings. Frame layout is
// unchanged in v4, but records shuffled by a v3 binary would misdecode
// under v4 rules, so the preamble version gate — reject frame, then
// close — is what keeps mixed-version clusters from exchanging
// misdecoded data.
//
// Integrity (since wire version 3): every frame carries a CRC32-C (Castagnoli)
// trailer over header + payload, and payloads are bounded by
// maxWireFrameSize. A checksum mismatch or an oversized length kills the
// connection — counted in mr_wire_corrupt_frames — instead of handing
// corrupt bytes to the decoders; the at-most-once retry machinery then
// re-runs the affected attempt on a fresh connection.
//
// Binary payloads use uvarint length-prefixed byte strings and uvarint
// integers; Pair lists are [count | (klen key vlen value)...], and a
// decoded Pair aliases the frame buffer (zero copies on the read side).

const (
	wireVersion = 4
	// maxWireFrameSize bounds one frame's payload (256 MiB — orders of
	// magnitude above the O(N·|M|/2^h) rows the paper's algorithms
	// shuffle). A corrupt length prefix must not drive a huge
	// allocation or a multi-GiB stuck read.
	maxWireFrameSize = 1 << 28
)

var wireMagic = [4]byte{'D', 'W', 'M', 'R'}

const (
	frameHello     = byte(1)
	frameTask      = byte(2)
	frameHeartbeat = byte(3)
	frameReply     = byte(4)
	frameReject    = byte(5)
	frameEpoch     = byte(6)
)

// PeerFrameBase is the first frame-type code available to peer
// subsystems layered on PeerConn (the serve tier's shard query/reply
// frames); codes below it belong to the cluster engine. Peer data
// frames share the engine's chaos instrumentation: a frameWriter with
// an armed chaosPoint injects into them exactly as it does into task
// and reply frames.
const PeerFrameBase = byte(0x40)

// FrameHeartbeat is the engine's heartbeat frame type, shared with peer
// links as their ping/pong frame. Heartbeats are exempt from chaos
// injection on every link, so liveness probing never perturbs a seeded
// fault schedule's hit counts.
const FrameHeartbeat = frameHeartbeat

// FrameEpoch is the membership control frame for peer links: ring-epoch
// proposals, acknowledgements and commits of the serve tier's
// rebalancer ride it. Like heartbeats it sits below PeerFrameBase and
// is exempt from chaos injection — link-fault schedules perturb data
// traffic, never the membership state machine itself, so a seeded churn
// soak converges deterministically.
const FrameEpoch = frameEpoch

// Task kinds on the wire. wireTask.Kind stays a string in memory (the
// failure-injection hooks and error messages use it); the codec maps it
// to one byte.
const (
	taskKindMap      = byte(0)
	taskKindReduce   = byte(1)
	taskKindShutdown = byte(2)
)

func kindToWire(kind string) (byte, error) {
	switch kind {
	case "map":
		return taskKindMap, nil
	case "reduce":
		return taskKindReduce, nil
	case "shutdown":
		return taskKindShutdown, nil
	}
	return 0, fmt.Errorf("mr: unknown task kind %q", kind)
}

func kindFromWire(b byte) (string, error) {
	switch b {
	case taskKindMap:
		return "map", nil
	case taskKindReduce:
		return "reduce", nil
	case taskKindShutdown:
		return "shutdown", nil
	}
	return "", fmt.Errorf("mr: unknown wire task kind %d", b)
}

// appendPreamble appends the connection preamble.
func appendPreamble(dst []byte) []byte {
	dst = append(dst, wireMagic[:]...)
	return append(dst, byte(wireVersion>>8), byte(wireVersion), 0, 0)
}

// readPreamble validates the 8-byte preamble, returning the peer version
// on a magic match (a version mismatch is reported with the version so
// the coordinator can name it in the reject reason).
func readPreamble(r io.Reader) (int, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return 0, err
	}
	if [4]byte(pre[:4]) != wireMagic {
		return 0, errors.New("mr: bad wire magic")
	}
	return int(pre[4])<<8 | int(pre[5]), nil
}

// castagnoli is the CRC32-C table of the frame trailer (hardware-
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameWriter frames, checksums, and flushes messages. Callers serialize
// access (the engines hold their send mutex around write). chaosPoint,
// when set, names the failpoint evaluated per data frame — the engine
// sets it to its side's mr.*.send point so tests can drop, delay,
// corrupt, or truncate frames deterministically.
type frameWriter struct {
	bw         *bufio.Writer
	hdr        [5]byte
	chaosPoint string
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

func (fw *frameWriter) write(typ byte, payload []byte) error {
	fw.hdr[0] = typ
	binary.BigEndian.PutUint32(fw.hdr[1:], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, fw.hdr[:])
	crc = crc32.Update(crc, castagnoli, payload)
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc)
	// Fault injection on data frames only — hello, heartbeat and reject
	// are exempt so chaos hit counts track task traffic deterministically.
	// Peer-subsystem frames (>= PeerFrameBase) are data frames too.
	if fw.chaosPoint != "" && (typ == frameTask || typ == frameReply || typ >= PeerFrameBase) {
		switch act := chaos.Point(fw.chaosPoint); act.Kind {
		case chaos.Delay:
			time.Sleep(act.Sleep)
		case chaos.Fail:
			return act.Err
		case chaos.Partial:
			fw.bw.Write(fw.hdr[:])
			fw.bw.Write(payload[:len(payload)/2])
			fw.bw.Flush()
			return act.Err
		case chaos.Corrupt:
			// Flip a bit past the header — in the payload or the CRC —
			// so the receiver's checksum (not a wedged length read)
			// rejects the frame.
			bit := act.Rand % uint64((len(payload)+len(trailer))*8)
			if i := int(bit / 8); i < len(payload) {
				payload[i] ^= 1 << (bit % 8)
			} else {
				trailer[i-len(payload)] ^= 1 << (bit % 8)
			}
		}
	}
	if _, err := fw.bw.Write(fw.hdr[:]); err != nil {
		return err
	}
	if _, err := fw.bw.Write(payload); err != nil {
		return err
	}
	if _, err := fw.bw.Write(trailer[:]); err != nil {
		return err
	}
	obsWireBytesSent.Add(int64(len(fw.hdr) + len(payload) + len(trailer)))
	return fw.bw.Flush()
}

// frameReader reads one frame at a time, verifying the CRC32-C trailer.
// The returned payload is a fresh buffer the decoded message may alias
// indefinitely.
type frameReader struct {
	br  *bufio.Reader
	hdr [5]byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 1<<16)}
}

func (fr *frameReader) read() (byte, []byte, error) {
	if _, err := io.ReadFull(fr.br, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	typ := fr.hdr[0]
	n := binary.BigEndian.Uint32(fr.hdr[1:])
	if n > maxWireFrameSize {
		obsWireCorruptFrames.Inc()
		return 0, nil, fmt.Errorf("mr: wire frame of %d bytes exceeds the %d-byte limit", n, maxWireFrameSize)
	}
	var buf []byte
	if n > 0 {
		buf = make([]byte, n)
		if _, err := io.ReadFull(fr.br, buf); err != nil {
			return 0, nil, err
		}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(fr.br, trailer[:]); err != nil {
		return 0, nil, err
	}
	crc := crc32.Update(0, castagnoli, fr.hdr[:])
	crc = crc32.Update(crc, castagnoli, buf)
	if got := binary.BigEndian.Uint32(trailer[:]); got != crc {
		obsWireCorruptFrames.Inc()
		return 0, nil, fmt.Errorf("mr: wire frame CRC mismatch (got %08x, computed %08x)", got, crc)
	}
	obsWireBytesReceived.Add(int64(len(fr.hdr)) + int64(n) + int64(len(trailer)))
	return typ, buf, nil
}

// ---- binary payload codecs ----

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendByteString(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendPairs(dst []byte, pairs []Pair) []byte {
	dst = appendUvarint(dst, uint64(len(pairs)))
	for _, kv := range pairs {
		dst = appendByteString(dst, kv.Key)
		dst = appendByteString(dst, kv.Value)
	}
	return dst
}

// appendWireTask encodes a task payload.
func appendWireTask(dst []byte, t *wireTask) ([]byte, error) {
	k, err := kindToWire(t.Kind)
	if err != nil {
		return dst, err
	}
	dst = append(dst, k)
	dst = appendByteString(dst, []byte(t.JobName))
	dst = appendByteString(dst, t.Params)
	dst = appendUvarint(dst, uint64(t.TaskID))
	dst = appendUvarint(dst, uint64(t.Attempt))
	dst = appendUvarint(dst, uint64(t.Split.ID))
	dst = appendByteString(dst, t.Split.Payload)
	dst = appendUvarint(dst, uint64(t.Reducers))
	dst = appendPairs(dst, t.Bucket)
	return dst, nil
}

// appendWireReply encodes a reply payload.
func appendWireReply(dst []byte, r *wireReply) []byte {
	dst = appendUvarint(dst, uint64(r.TaskID))
	dst = appendUvarint(dst, uint64(r.Attempt))
	dst = appendByteString(dst, []byte(r.Err))
	dst = appendUvarint(dst, uint64(len(r.Parts)))
	for _, part := range r.Parts {
		dst = appendPairs(dst, part)
	}
	dst = appendPairs(dst, r.Out)
	dst = appendUvarint(dst, uint64(len(r.Counters)))
	for name, v := range r.Counters {
		dst = appendByteString(dst, []byte(name))
		dst = appendUvarint(dst, uint64(v))
	}
	dst = appendUvarint(dst, uint64(r.Duration))
	return dst
}

// wireCursor walks a payload buffer with sticky error handling, so the
// decoders stay linear and a truncated or corrupt frame surfaces as an
// error instead of a panic (the fuzz tests hammer this).
type wireCursor struct {
	buf []byte
	off int
	err error
}

func (c *wireCursor) fail(msg string) {
	if c.err == nil {
		c.err = errors.New("mr: wire decode: " + msg)
	}
}

func (c *wireCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		c.fail("bad uvarint")
		return 0
	}
	c.off += n
	return v
}

func (c *wireCursor) count(elemMin int) int {
	v := c.uvarint()
	if c.err != nil {
		return 0
	}
	// A count can never exceed the bytes remaining / the element's
	// minimum wire size; rejecting early keeps corrupt frames from
	// driving huge allocations.
	if max := len(c.buf) - c.off; elemMin > 0 && v > uint64(max/elemMin)+1 {
		c.fail("implausible count")
		return 0
	}
	return int(v)
}

func (c *wireCursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.buf) {
		c.fail("truncated")
		return 0
	}
	b := c.buf[c.off]
	c.off++
	return b
}

// byteString returns the next length-prefixed slice, aliasing the buffer.
// Zero length yields nil, matching the arena copy semantics.
func (c *wireCursor) byteString() []byte {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.buf)-c.off) {
		c.fail("truncated byte string")
		return nil
	}
	if n == 0 {
		return nil
	}
	b := c.buf[c.off : c.off+int(n) : c.off+int(n)]
	c.off += int(n)
	return b
}

func (c *wireCursor) pairs() []Pair {
	n := c.count(2)
	if c.err != nil || n == 0 {
		return nil
	}
	out := make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		k := c.byteString()
		v := c.byteString()
		if c.err != nil {
			return nil
		}
		out = append(out, Pair{Key: k, Value: v})
	}
	return out
}

// decodeWireTask decodes appendWireTask output; decoded slices alias buf.
func decodeWireTask(buf []byte) (wireTask, error) {
	c := &wireCursor{buf: buf}
	var t wireTask
	kind, kerr := kindFromWire(c.byte())
	if c.err == nil && kerr != nil {
		c.err = kerr
	}
	t.Kind = kind
	t.JobName = string(c.byteString())
	t.Params = c.byteString()
	t.TaskID = int(c.uvarint())
	t.Attempt = int(c.uvarint())
	t.Split.ID = int(c.uvarint())
	t.Split.Payload = c.byteString()
	t.Reducers = int(c.uvarint())
	t.Bucket = c.pairs()
	if c.err == nil && c.off != len(buf) {
		c.fail("trailing bytes")
	}
	return t, c.err
}

// decodeWireReply decodes appendWireReply output; decoded slices alias buf.
func decodeWireReply(buf []byte) (wireReply, error) {
	c := &wireCursor{buf: buf}
	var r wireReply
	r.TaskID = int(c.uvarint())
	r.Attempt = int(c.uvarint())
	r.Err = string(c.byteString())
	nparts := c.count(1)
	if c.err == nil && nparts > 0 {
		r.Parts = make([][]Pair, nparts)
		for i := range r.Parts {
			r.Parts[i] = c.pairs()
		}
	}
	r.Out = c.pairs()
	ncounters := c.count(2)
	if c.err == nil && ncounters > 0 {
		r.Counters = make(map[string]int64, ncounters)
		for i := 0; i < ncounters; i++ {
			name := string(c.byteString())
			v := c.uvarint()
			if c.err != nil {
				break
			}
			r.Counters[name] = int64(v)
		}
	}
	r.Duration = time.Duration(c.uvarint())
	if c.err == nil && c.off != len(buf) {
		c.fail("trailing bytes")
	}
	if c.err != nil {
		return wireReply{}, c.err
	}
	return r, nil
}
