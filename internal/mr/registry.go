package mr

import (
	"fmt"
	"sort"
	"sync"
)

// JobFactory instantiates a fully-wired Job (splits, map, reduce,
// partitioner) from an opaque parameter blob. Cluster workers cannot
// receive Go functions over the wire, so both the coordinator and every
// worker construct the job locally through the same registered factory —
// the moral equivalent of shipping the same job JAR to every Hadoop node.
type JobFactory func(params []byte) (*Job, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]JobFactory{}
)

// RegisterJob makes a factory available under a name for cluster
// execution. Registering the same name twice panics (a programming error).
func RegisterJob(name string, f JobFactory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mr: job %q registered twice", name))
	}
	registry[name] = f
}

// LookupJob instantiates a registered job.
func LookupJob(name string, params []byte) (*Job, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mr: unknown job %q (registered: %v)", name, RegisteredJobs())
	}
	return f(params)
}

// HasJob reports whether a job factory is registered under name. Cluster
// drivers use it to fail fast before shipping tasks whose job no worker
// (built from the same binary) could instantiate.
func HasJob(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// RegisteredJobs lists registered job names, sorted.
func RegisteredJobs() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
