package mr

import (
	"os"
	"time"

	"dwmaxerr/internal/obs"
)

// The spilling execution path of the Local engine, selected by
// SpillThreshold > 0. Map output beyond the threshold is sorted and
// spilled to disk per partition; reducers consume a streaming k-way merge
// instead of a materialized bucket.

// spillResult is a map task's committed output plus its collector (for
// cleanup and for discarding speculative losers).
type spillResult struct {
	col *spillCollector
	out mapOutput
}

// discard implements the discardable cleanup hook used by runOneTask for
// losing attempts.
func (s *spillResult) discard() { s.col.discard() }

// discardable lets runOneTask clean up outputs of attempts that lost a
// speculative race.
type discardable interface{ discard() }

func (l *Local) spillDir() string {
	if l.SpillDir != "" {
		return l.SpillDir
	}
	return os.TempDir()
}

// runSpill executes a job with the external shuffle.
func (l *Local) runSpill(job *Job, jobSpan *obs.Span) (*Result, error) {
	start := time.Now()
	res := &Result{}
	res.Metrics.Job = job.Name
	nred := job.reducers()

	outs := make([]*spillResult, len(job.Splits))
	defer func() {
		for _, o := range outs {
			if o != nil {
				o.col.discard()
			}
		}
	}()
	mapSpan := jobSpan.Child("map-phase")
	if err := l.runTasks("map", len(job.Splits), &res.Metrics, mapSpan, func(i int, ctx TaskContext) (interface{}, error) {
		col, err := newSpillCollector(job, l.spillDir(), l.SpillThreshold, nred)
		if err != nil {
			return nil, err
		}
		if err := job.Map(ctx, job.Splits[i], col.emit); err != nil {
			col.discard()
			return nil, err
		}
		out, err := col.finish()
		if err != nil {
			col.discard()
			return nil, err
		}
		return &spillResult{col: col, out: out}, nil
	}, func(i int, out interface{}) {
		outs[i] = out.(*spillResult)
	}); err != nil {
		mapSpan.End()
		return nil, err
	}
	mapSpan.End()
	res.Metrics.MapTasks = len(job.Splits)
	res.Metrics.MapRetries = countRetries(res.Metrics.MapStats)
	for _, o := range outs {
		res.Metrics.SpilledBytes += o.col.spilled
	}
	obsSpillBytes.Add(res.Metrics.SpilledBytes)

	// ---- Reduce phase: stream a k-way merge per partition ----
	res.Partitions = make([][]Pair, nred)
	reduceOne := func(p int, ctx TaskContext) (interface{}, error) {
		var sources []*runReader
		closeAll := func() {
			for _, s := range sources {
				s.close()
			}
		}
		for _, o := range outs {
			for _, run := range o.out.runs[p] {
				r, err := openRunReader(run)
				if err != nil {
					closeAll()
					return nil, err
				}
				sources = append(sources, r)
			}
			if len(o.out.mem[p]) > 0 {
				sources = append(sources, memRunReader(o.out.mem[p]))
			}
		}
		merge := newMergeStream(job, sources)
		defer merge.close()
		// Reduce output is copied into the task's own arena: merged pairs
		// may alias collector arenas, which recycle when the collectors are
		// discarded at the end of the job.
		ro := &reduceTaskOut{}
		emit := emitInto(&ro.arena, &ro.out)
		var shuffleRecords, shuffleBytes int64
		if job.Reduce == nil {
			for {
				pair, ok, err := merge.next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				shuffleRecords++
				shuffleBytes += int64(len(pair.Key) + len(pair.Value))
				if err := emit(pair.Key, pair.Value); err != nil {
					return nil, err
				}
			}
		} else {
			var curKey []byte
			var values [][]byte
			flush := func() error {
				if curKey == nil {
					return nil
				}
				err := job.Reduce(ctx, curKey, values, emit)
				curKey, values = nil, nil
				return err
			}
			for {
				pair, ok, err := merge.next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				shuffleRecords++
				shuffleBytes += int64(len(pair.Key) + len(pair.Value))
				if curKey == nil || job.compare(pair.Key, curKey) != 0 {
					if err := flush(); err != nil {
						return nil, err
					}
					curKey = pair.Key
				}
				values = append(values, pair.Value)
			}
			if err := flush(); err != nil {
				return nil, err
			}
		}
		return spillReduceOut{reduceTaskOut: ro, records: shuffleRecords, bytes: shuffleBytes}, nil
	}
	reduceSpan := jobSpan.Child("reduce-phase")
	if err := l.runTasks("reduce", nred, &res.Metrics, reduceSpan, reduceOne, func(p int, out interface{}) {
		ro := out.(spillReduceOut)
		res.Partitions[p] = ro.out
		res.Metrics.ShuffleRecords += ro.records
		res.Metrics.ShuffleBytes += ro.bytes
	}); err != nil {
		reduceSpan.End()
		return nil, err
	}
	reduceSpan.End()
	res.Metrics.ReduceTasks = nred
	res.Metrics.ReduceRetries = countRetries(res.Metrics.ReduceStats)
	obsShuffleRecords.Add(res.Metrics.ShuffleRecords)
	obsShuffleBytes.Add(res.Metrics.ShuffleBytes)
	for _, part := range res.Partitions {
		for _, kv := range part {
			res.Metrics.OutputRecords++
			res.Metrics.OutputBytes += int64(len(kv.Key) + len(kv.Value))
		}
	}
	res.Metrics.WallTime = time.Since(start)
	return res, nil
}

type spillReduceOut struct {
	*reduceTaskOut
	records int64
	bytes   int64
}
