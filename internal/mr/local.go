package mr

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dwmaxerr/internal/obs"
)

// Local is the in-process engine. The zero value is usable: it runs tasks
// on up to GOMAXPROCS goroutines with up to 3 attempts per task.
type Local struct {
	// Workers caps concurrent task execution; 0 means GOMAXPROCS.
	Workers int
	// MaxAttempts per task; 0 means 3.
	MaxAttempts int
	// SpeculationAfter enables Hadoop-style backup tasks: when an attempt
	// has run longer than this duration, a backup attempt of the same task
	// is launched and the first to finish wins. 0 disables speculation.
	SpeculationAfter time.Duration
	// SpillThreshold, when positive, switches to the external shuffle:
	// map-output partitions exceeding this many records are sorted and
	// spilled to disk, and reducers stream a k-way merge (see spill.go).
	SpillThreshold int
	// SpillDir hosts spill files; empty means the OS temp directory.
	SpillDir string
	// FailureInjector, when non-nil, is consulted before each task attempt;
	// returning a non-nil error makes the attempt fail with it. Used by
	// tests to exercise the retry path.
	FailureInjector func(kind string, ctx TaskContext) error
	// DelayInjector, when non-nil, is called at the start of each attempt
	// and can sleep to simulate stragglers (exercises speculation).
	DelayInjector func(kind string, ctx TaskContext)
}

func (l *Local) workers() int {
	if l.Workers > 0 {
		return l.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (l *Local) attempts() int {
	if l.MaxAttempts > 0 {
		return l.MaxAttempts
	}
	return 3
}

// Run implements Engine.
func (l *Local) Run(job *Job) (*Result, error) {
	return l.RunWith(job, JobOptions{})
}

// RunWith implements TracingEngine: like Run, recording the job under
// opts.Trace when set.
func (l *Local) RunWith(job *Job, opts JobOptions) (*Result, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	obsJobsRun.Inc()
	jobSpan := opts.Trace.Child("job:" + job.Name)
	defer jobSpan.End()
	jobSpan.SetStr("engine", "local")
	jobSpan.SetInt("splits", int64(len(job.Splits)))
	if l.SpillThreshold > 0 {
		return l.runSpill(job, jobSpan)
	}
	start := time.Now()
	res := &Result{}
	res.Metrics.Job = job.Name

	// ---- Map phase ----
	nred := job.reducers()
	mapOuts := make([][][]Pair, len(job.Splits))
	mapSpan := jobSpan.Child("map-phase")
	if err := l.runTasks("map", len(job.Splits), &res.Metrics, mapSpan, func(i int, ctx TaskContext) (interface{}, error) {
		mc := newMapCollector(job, nred)
		if err := job.Map(ctx, job.Splits[i], mc.emit); err != nil {
			mc.discard()
			return nil, err
		}
		if job.Combine != nil {
			for p := range mc.parts {
				combined, err := combinePartition(job, ctx, &mc.arena, mc.parts[p])
				if err != nil {
					mc.discard()
					return nil, err
				}
				mc.parts[p] = combined
			}
		}
		return mc, nil
	}, func(i int, out interface{}) {
		// The committed collector's arena stays live for the rest of the
		// run: Result aliases its records, so it is never recycled.
		mapOuts[i] = out.(*mapCollector).parts
	}); err != nil {
		mapSpan.End()
		return nil, err
	}
	mapSpan.End()
	res.Metrics.MapTasks = len(job.Splits)
	res.Metrics.MapRetries = countRetries(res.Metrics.MapStats)

	// ---- Shuffle ----
	shuffleSpan := jobSpan.Child("shuffle")
	buckets := make([][]Pair, nred)
	for _, parts := range mapOuts {
		for p, pairs := range parts {
			buckets[p] = append(buckets[p], pairs...)
			for _, kv := range pairs {
				res.Metrics.ShuffleRecords++
				res.Metrics.ShuffleBytes += int64(len(kv.Key) + len(kv.Value))
			}
		}
	}
	obsShuffleRecords.Add(res.Metrics.ShuffleRecords)
	obsShuffleBytes.Add(res.Metrics.ShuffleBytes)
	for p := range buckets {
		sortPairs(job, buckets[p])
	}
	shuffleSpan.SetInt("records", res.Metrics.ShuffleRecords)
	shuffleSpan.SetInt("bytes", res.Metrics.ShuffleBytes)
	shuffleSpan.End()

	// ---- Reduce phase ----
	res.Partitions = make([][]Pair, nred)
	if job.Reduce == nil {
		copy(res.Partitions, buckets)
	} else {
		reduceSpan := jobSpan.Child("reduce-phase")
		if err := l.runTasks("reduce", nred, &res.Metrics, reduceSpan, func(p int, ctx TaskContext) (interface{}, error) {
			ro := &reduceTaskOut{}
			if err := reduceBucket(job, ctx, buckets[p], emitInto(&ro.arena, &ro.out)); err != nil {
				ro.discard()
				return nil, err
			}
			return ro, nil
		}, func(p int, out interface{}) {
			res.Partitions[p] = out.(*reduceTaskOut).out
		}); err != nil {
			reduceSpan.End()
			return nil, err
		}
		reduceSpan.End()
		res.Metrics.ReduceTasks = nred
		res.Metrics.ReduceRetries = countRetries(res.Metrics.ReduceStats)
	}
	for _, part := range res.Partitions {
		for _, kv := range part {
			res.Metrics.OutputRecords++
			res.Metrics.OutputBytes += int64(len(kv.Key) + len(kv.Value))
		}
	}
	res.Metrics.WallTime = time.Since(start)
	return res, nil
}

// reduceBucket groups a sorted bucket by key and invokes the reducer. One
// values slice is reused across groups (valid only during the Reduce call,
// per the contract in mr.go).
func reduceBucket(job *Job, ctx TaskContext, bucket []Pair, emit Emit) error {
	var values [][]byte
	i := 0
	for i < len(bucket) {
		j := i + 1
		for j < len(bucket) && job.compare(bucket[j].Key, bucket[i].Key) == 0 {
			j++
		}
		values = values[:0]
		for _, kv := range bucket[i:j] {
			values = append(values, kv.Value)
		}
		if err := job.Reduce(ctx, bucket[i].Key, values, emit); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// combinePartition applies the combiner to one map task's partition
// output, emitting combined records into arena.
func combinePartition(job *Job, ctx TaskContext, arena *byteArena, pairs []Pair) ([]Pair, error) {
	sorted := getPairBuf(len(pairs))
	defer putPairBuf(sorted)
	copy(sorted, pairs)
	sortPairs(job, sorted)
	var out []Pair
	emit := emitInto(arena, &out)
	var values [][]byte
	i := 0
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && job.compare(sorted[j].Key, sorted[i].Key) == 0 {
			j++
		}
		values = values[:0]
		for _, kv := range sorted[i:j] {
			values = append(values, kv.Value)
		}
		if err := job.Combine(ctx, sorted[i].Key, values, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

// taskRun executes one task attempt, returning its output for commit.
type taskRun func(i int, ctx TaskContext) (interface{}, error)

// runTasks executes n tasks on the worker pool with retry and optional
// speculation, committing exactly one successful attempt's output per task
// and recording every attempt in metrics and as children of phase.
func (l *Local) runTasks(kind string, n int, m *Metrics, phase *obs.Span, run taskRun, commit func(i int, out interface{})) error {
	sem := make(chan struct{}, l.workers())
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobCounters := NewCounters()
	// Commits run from task goroutines; serialize them so commit funcs may
	// touch shared metrics safely.
	lockedCommit := func(i int, out interface{}) {
		mu.Lock()
		defer mu.Unlock()
		commit(i, out)
	}
	report := func(st TaskStat) {
		mu.Lock()
		defer mu.Unlock()
		if kind == "map" {
			m.MapStats = append(m.MapStats, st)
		} else {
			m.ReduceStats = append(m.ReduceStats, st)
		}
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			err := l.runOneTask(kind, i, sem, phase, run, lockedCommit, report, jobCounters)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = &taskError{kind: kind, id: i, err: err}
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if snap := jobCounters.snapshot(); snap != nil {
		mu.Lock()
		m.addUserCounters(snap)
		mu.Unlock()
	}
	return firstErr
}

// runOneTask drives the attempts of a single task: a primary attempt, an
// optional speculative backup, then sequential retries.
func (l *Local) runOneTask(kind string, i int, sem chan struct{}, phase *obs.Span, run taskRun, commit func(int, interface{}), report func(TaskStat), jobCounters *Counters) error {
	type attemptResult struct {
		out      interface{}
		err      error
		attempt  int
		dur      time.Duration
		counters *Counters
	}
	results := make(chan attemptResult, 2)
	committed := false
	attempt := 0
	launch := func(borrowSlot bool) {
		attempt++
		a := attempt
		obsTasksLaunched.Inc()
		do := func() {
			span := phase.Child(kind)
			span.SetInt("task", int64(i))
			span.SetInt("attempt", int64(a))
			t0 := time.Now()
			counters := NewCounters()
			out, err := l.attemptTask(kind, TaskContext{TaskID: i, Attempt: a, Counters: counters}, run, i)
			dur := time.Since(t0)
			obsWorkerTasksExecuted.Inc()
			obsTaskDurationUS.Observe(dur.Microseconds())
			span.SetBool("failed", err != nil)
			span.End()
			results <- attemptResult{out: out, err: err, attempt: a, dur: dur, counters: counters}
		}
		if borrowSlot {
			go func() {
				sem <- struct{}{}
				defer func() { <-sem }()
				do()
			}()
			return
		}
		go do()
	}
	launch(false)
	inFlight := 1
	var timer <-chan time.Time
	if l.SpeculationAfter > 0 {
		timer = time.After(l.SpeculationAfter)
	}
	var lastErr error
	for {
		select {
		case r := <-results:
			inFlight--
			report(TaskStat{TaskID: i, Attempt: r.attempt, Duration: r.dur, Failed: r.err != nil})
			if r.err == nil && !committed {
				committed = true
				commit(i, r.out)
				r.counters.mergeInto(jobCounters)
			} else if r.err == nil {
				// A slower duplicate of an already-committed task: release
				// any resources it produced.
				obsTaskCommitDups.Inc()
				if d, ok := r.out.(discardable); ok {
					d.discard()
				}
			}
			if r.err != nil {
				lastErr = r.err
			}
			if committed {
				// Wait out any straggling attempt so metrics stay complete
				// and no goroutine outlives the job.
				if inFlight == 0 {
					return nil
				}
				continue
			}
			if attempt < l.attempts() {
				obsTaskRetries.Inc()
				launch(false)
				inFlight++
				continue
			}
			if inFlight == 0 {
				return lastErr
			}
		case <-timer:
			timer = nil
			if !committed && inFlight == 1 && attempt < l.attempts() {
				obsSpeculativeAttempts.Inc()
				launch(true) // speculative backup borrows a pool slot
				inFlight++
			}
		}
	}
}

func (l *Local) attemptTask(kind string, ctx TaskContext, run taskRun, i int) (out interface{}, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if l.DelayInjector != nil {
		l.DelayInjector(kind, ctx)
	}
	if l.FailureInjector != nil {
		if ferr := l.FailureInjector(kind, ctx); ferr != nil {
			return nil, ferr
		}
	}
	return run(i, ctx)
}
