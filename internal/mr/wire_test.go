package mr

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

// Round-trip, robustness, and version-negotiation coverage for the binary
// wire codec that replaced gob on the cluster hot path.

func sampleWireTask() wireTask {
	return wireTask{
		Kind:    "map",
		JobName: "bench-job",
		Params:  []byte{9, 8, 7},
		TaskID:  42,
		Attempt: 3,
		Split:   Split{ID: 7, Payload: []byte("chunk payload")},
		Bucket: []Pair{
			{Key: EncodeUint64(1), Value: EncodeFloat64(2.5)},
			{Key: []byte("k"), Value: nil},
			{Key: nil, Value: []byte("v")},
		},
		Reducers: 4,
	}
}

func sampleWireReply() wireReply {
	return wireReply{
		TaskID:  42,
		Attempt: 3,
		Parts: [][]Pair{
			{{Key: []byte("a"), Value: EncodeUint64(1)}},
			nil,
			{{Key: nil, Value: nil}, {Key: EncodeInt64(-5), Value: []byte("x")}},
		},
		Out:      []Pair{{Key: []byte("out"), Value: []byte("val")}},
		Counters: map[string]int64{"words": 12, "groups": -3},
		Duration: 1500 * time.Millisecond,
	}
}

func TestWireTaskRoundTrip(t *testing.T) {
	for _, task := range []wireTask{
		sampleWireTask(),
		{Kind: "shutdown"},
		{Kind: "reduce", JobName: "r", TaskID: 1, Attempt: 1, Reducers: 2,
			Bucket: []Pair{{Key: []byte{0}, Value: []byte{}}}},
	} {
		buf, err := appendWireTask(nil, &task)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeWireTask(buf)
		if err != nil {
			t.Fatalf("decode %q task: %v", task.Kind, err)
		}
		// The codec normalizes empty slices to nil (matching the arena's
		// copy semantics) — normalize the expectation the same way.
		want := task
		if len(want.Params) == 0 {
			want.Params = nil
		}
		if len(want.Split.Payload) == 0 {
			want.Split.Payload = nil
		}
		for i, kv := range want.Bucket {
			if len(kv.Key) == 0 {
				want.Bucket[i].Key = nil
			}
			if len(kv.Value) == 0 {
				want.Bucket[i].Value = nil
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestWireReplyRoundTrip(t *testing.T) {
	reply := sampleWireReply()
	buf := appendWireReply(nil, &reply)
	got, err := decodeWireReply(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := reply
	for p, part := range want.Parts {
		for i, kv := range part {
			if len(kv.Key) == 0 {
				want.Parts[p][i].Key = nil
			}
			if len(kv.Value) == 0 {
				want.Parts[p][i].Value = nil
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestWireDecodeRejectsTruncationAndTrailingBytes(t *testing.T) {
	task := sampleWireTask()
	buf, err := appendWireTask(nil, &task)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := decodeWireTask(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(buf))
		}
	}
	if _, err := decodeWireTask(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	reply := sampleWireReply()
	rbuf := appendWireReply(nil, &reply)
	for cut := 0; cut < len(rbuf); cut++ {
		if _, err := decodeWireReply(rbuf[:cut]); err == nil {
			t.Fatalf("reply truncation at %d/%d decoded without error", cut, len(rbuf))
		}
	}
}

func TestWirePreambleRoundTrip(t *testing.T) {
	pre := appendPreamble(nil)
	if len(pre) != 8 {
		t.Fatalf("preamble is %d bytes, want 8", len(pre))
	}
	v, err := readPreamble(bytes.NewReader(pre))
	if err != nil {
		t.Fatal(err)
	}
	if v != wireVersion {
		t.Fatalf("version %d, want %d", v, wireVersion)
	}
	bad := append([]byte(nil), pre...)
	bad[0] = 'X'
	if _, err := readPreamble(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestCoordinatorRejectsVersionMismatch dials the coordinator raw and
// speaks a future wire version: the coordinator must answer with a reject
// frame naming both versions and close the connection, and the worker must
// never be admitted.
func TestCoordinatorRejectsVersionMismatch(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	conn, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pre := appendPreamble(nil)
	pre[4], pre[5] = 0xBE, 0xEF // future version
	if _, err := conn.Write(pre); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr := newFrameReader(conn)
	typ, payload, err := fr.read()
	if err != nil {
		t.Fatalf("expected a reject frame, got read error %v", err)
	}
	if typ != frameReject {
		t.Fatalf("frame type %d, want reject (%d)", typ, frameReject)
	}
	reason := string(payload)
	if !strings.Contains(reason, "version") {
		t.Fatalf("reject reason %q does not name the version", reason)
	}
	if _, _, err := fr.read(); err == nil {
		t.Fatal("connection stayed open after reject")
	}
	if live := c.liveWorkers(); live != 0 {
		t.Fatalf("mismatched worker was admitted: %d live workers", live)
	}
}

// FuzzDecodeWireTask hammers the task decoder with arbitrary frames: it
// must never panic or over-allocate, and anything it accepts must survive
// an encode/decode round trip unchanged (uvarints may arrive non-minimal,
// so byte-level identity is not required).
func FuzzDecodeWireTask(f *testing.F) {
	task := sampleWireTask()
	seed, err := appendWireTask(nil, &task)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	shutdown, _ := appendWireTask(nil, &wireTask{Kind: "shutdown"})
	f.Add(shutdown)
	// Wire v4 record shapes: pairs whose keys/values are varint-encoded
	// (ordered varints in keys, LEB128 in values), as the dist pipelines
	// emit them.
	varintTask := wireTask{
		Kind: "reduce", JobName: "varint", TaskID: 9, Attempt: 1, Reducers: 2,
		Bucket: []Pair{
			{Key: AppendFloat64(AppendOrderedUvarint(nil, 7), -3.25), Value: AppendUvarint(nil, 300)},
			{Key: AppendOrderedUvarint(nil, 67824), Value: AppendVarint(nil, -40)},
		},
	}
	if varintSeed, err := appendWireTask(nil, &varintTask); err == nil {
		f.Add(varintSeed)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	// Bit-flipped variants of the valid seed: single-bit corruption the
	// frame CRC would normally stop, fed straight to the decoder.
	for _, bit := range []int{0, 7, 13, len(seed)*4 + 1, len(seed)*8 - 1} {
		mutated := append([]byte(nil), seed...)
		mutated[bit/8] ^= 1 << (bit % 8)
		f.Add(mutated)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := decodeWireTask(data)
		if err != nil {
			return
		}
		re, err := appendWireTask(nil, &decoded)
		if err != nil {
			t.Fatalf("accepted task failed to re-encode: %v", err)
		}
		again, err := decodeWireTask(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted task failed to decode: %v", err)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("decode/encode/decode diverged:\n first %+v\nsecond %+v", decoded, again)
		}
	})
}

// FuzzDecodeWireReply does the same for the reply decoder. Counters are a
// map, so re-encoding is order-dependent; only a second decode of the
// re-encoding must match.
func FuzzDecodeWireReply(f *testing.F) {
	reply := sampleWireReply()
	seed := appendWireReply(nil, &reply)
	f.Add(seed)
	f.Add(appendWireReply(nil, &wireReply{TaskID: 1, Attempt: 1, Err: "boom"}))
	f.Add(appendWireReply(nil, &wireReply{TaskID: 2, Attempt: 1, Parts: [][]Pair{
		{{Key: AppendOrderedUvarint(nil, 2288), Value: AppendUvarint(nil, 1)}},
		{{Key: AppendOrderedUvarint(AppendOrderedUvarint(nil, 240), 241), Value: AppendVarint(nil, -1)}},
	}}))
	f.Add([]byte{})
	f.Add([]byte{0x80})
	for _, bit := range []int{0, 7, 13, len(seed)*4 + 1, len(seed)*8 - 1} {
		mutated := append([]byte(nil), seed...)
		mutated[bit/8] ^= 1 << (bit % 8)
		f.Add(mutated)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := decodeWireReply(data)
		if err != nil {
			return
		}
		re := appendWireReply(nil, &decoded)
		again, err := decodeWireReply(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted reply failed to decode: %v", err)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("decode/encode/decode diverged:\n first %+v\nsecond %+v", decoded, again)
		}
	})
}
