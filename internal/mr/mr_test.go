package mr

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// wordCountJob builds the canonical test job: splits carry
// whitespace-separated words; the reducer sums counts per word.
func wordCountJob(texts []string, reducers int) *Job {
	splits := make([]Split, len(texts))
	for i, t := range texts {
		splits[i] = Split{ID: i, Payload: []byte(t)}
	}
	return &Job{
		Name:   "wordcount",
		Splits: splits,
		Map: func(ctx TaskContext, split Split, emit Emit) error {
			for _, w := range strings.Fields(string(split.Payload)) {
				if err := emit([]byte(w), EncodeUint64(1)); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(ctx TaskContext, key []byte, values [][]byte, emit Emit) error {
			var sum uint64
			for _, v := range values {
				sum += DecodeUint64(v)
			}
			return emit(key, EncodeUint64(sum))
		},
		Reducers: reducers,
	}
}

func countsOf(res *Result) map[string]uint64 {
	out := map[string]uint64{}
	for _, kv := range res.AllPairs() {
		out[string(kv.Key)] = DecodeUint64(kv.Value)
	}
	return out
}

func TestLocalWordCount(t *testing.T) {
	job := wordCountJob([]string{"a b a", "b c", "a"}, 3)
	res, err := (&Local{}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"a": 3, "b": 2, "c": 1}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	m := res.Metrics
	if m.MapTasks != 3 || m.ReduceTasks != 3 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.ShuffleRecords != 6 {
		t.Fatalf("shuffle records = %d, want 6", m.ShuffleRecords)
	}
	if m.OutputRecords != 3 {
		t.Fatalf("output records = %d", m.OutputRecords)
	}
}

func TestLocalCombinerReducesShuffle(t *testing.T) {
	texts := []string{"x x x x", "x x"}
	base := wordCountJob(texts, 1)
	noCombine, err := (&Local{}).Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withCombine := wordCountJob(texts, 1)
	withCombine.Combine = withCombine.Reduce
	combined, err := (&Local{}).Run(withCombine)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(countsOf(noCombine), countsOf(combined)) {
		t.Fatal("combiner changed the result")
	}
	if combined.Metrics.ShuffleRecords >= noCombine.Metrics.ShuffleRecords {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d",
			combined.Metrics.ShuffleRecords, noCombine.Metrics.ShuffleRecords)
	}
	if combined.Metrics.ShuffleRecords != 2 {
		t.Fatalf("shuffle records = %d, want 2 (one per split)", combined.Metrics.ShuffleRecords)
	}
}

func TestLocalSortsWithinPartition(t *testing.T) {
	job := wordCountJob([]string{"pear apple zebra mango"}, 1)
	res, err := (&Local{}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	pairs := res.Partitions[0]
	for i := 1; i < len(pairs); i++ {
		if bytes.Compare(pairs[i-1].Key, pairs[i].Key) > 0 {
			t.Fatalf("partition not sorted: %q after %q", pairs[i].Key, pairs[i-1].Key)
		}
	}
}

func TestLocalCustomCompareAndPartition(t *testing.T) {
	// Descending numeric sort with a single partition.
	job := &Job{
		Name:   "desc",
		Splits: []Split{{ID: 0}},
		Map: func(ctx TaskContext, split Split, emit Emit) error {
			for _, v := range []float64{3.5, -1, 100, 0} {
				if err := emit(EncodeFloat64(v), nil); err != nil {
					return err
				}
			}
			return nil
		},
		Compare:   func(a, b []byte) int { return bytes.Compare(b, a) },
		Partition: func(key []byte, n int) int { return 0 },
	}
	res, err := (&Local{}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for _, kv := range res.Partitions[0] {
		got = append(got, DecodeFloat64(kv.Key))
	}
	want := []float64{100, 3.5, 0, -1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestLocalRetryOnInjectedFailure(t *testing.T) {
	fails := map[string]bool{}
	eng := &Local{
		FailureInjector: func(kind string, ctx TaskContext) error {
			k := fmt.Sprintf("%s-%d", kind, ctx.TaskID)
			if !fails[k] && ctx.TaskID == 1 {
				fails[k] = true
				return errors.New("injected")
			}
			return nil
		},
	}
	job := wordCountJob([]string{"a", "b b", "c"}, 2)
	res, err := eng.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"a": 1, "b": 2, "c": 1}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if res.Metrics.MapRetries == 0 {
		t.Fatal("expected a recorded retry")
	}
}

func TestLocalPermanentFailureSurfaces(t *testing.T) {
	eng := &Local{
		MaxAttempts: 2,
		FailureInjector: func(kind string, ctx TaskContext) error {
			if kind == "map" && ctx.TaskID == 0 {
				return errors.New("always broken")
			}
			return nil
		},
	}
	if _, err := eng.Run(wordCountJob([]string{"a"}, 1)); err == nil {
		t.Fatal("want error after exhausted retries")
	}
}

func TestLocalMapPanicIsCaught(t *testing.T) {
	job := &Job{
		Name:   "panicky",
		Splits: []Split{{ID: 0}},
		Map: func(ctx TaskContext, split Split, emit Emit) error {
			panic("boom")
		},
	}
	if _, err := (&Local{MaxAttempts: 1}).Run(job); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want panic error", err)
	}
}

func TestJobValidation(t *testing.T) {
	if _, err := (&Local{}).Run(&Job{Splits: []Split{{}}}); err == nil {
		t.Error("nil map accepted")
	}
	if _, err := (&Local{}).Run(&Job{Map: func(TaskContext, Split, Emit) error { return nil }}); err == nil {
		t.Error("no splits accepted")
	}
}

func TestIdentityReduce(t *testing.T) {
	job := &Job{
		Name:   "identity",
		Splits: []Split{{ID: 0}},
		Map: func(ctx TaskContext, split Split, emit Emit) error {
			emit([]byte("k2"), []byte("v2"))
			emit([]byte("k1"), []byte("v1"))
			return nil
		},
	}
	res, err := (&Local{}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partitions[0]) != 2 || string(res.Partitions[0][0].Key) != "k1" {
		t.Fatalf("partitions = %+v", res.Partitions)
	}
}

func TestMakespanScaling(t *testing.T) {
	m := Metrics{}
	for i := 0; i < 40; i++ {
		m.MapStats = append(m.MapStats, TaskStat{TaskID: i, Duration: time.Second})
	}
	if got := m.Makespan(40, 1); got != time.Second {
		t.Fatalf("40 slots: %v", got)
	}
	if got := m.Makespan(10, 1); got != 4*time.Second {
		t.Fatalf("10 slots: %v", got)
	}
	if got := m.Makespan(1, 1); got != 40*time.Second {
		t.Fatalf("1 slot: %v", got)
	}
	// Halving slots doubles makespan — the linear scalability shape of
	// Figure 5c.
	if m.Makespan(10, 1) != 2*m.Makespan(20, 1) {
		t.Fatal("halving slots should double makespan for uniform tasks")
	}
}

func TestMakespanHandlesRemainderAndZeroSlots(t *testing.T) {
	m := Metrics{MapStats: []TaskStat{{Duration: 3 * time.Second}, {Duration: time.Second}, {Duration: time.Second}}}
	if got := m.Makespan(2, 0); got != 3*time.Second {
		t.Fatalf("got %v", got)
	}
	if got := m.Makespan(0, 0); got != 5*time.Second {
		t.Fatalf("zero slots clamp: %v", got)
	}
}

func TestPartitionStaysInRange(t *testing.T) {
	// The default partitioner must reduce the FNV hash in uint32 space:
	// int(h.Sum32()) % n went negative on 32-bit platforms for hashes
	// above MaxInt32. Exercise keys on both sides of that boundary.
	job := &Job{Reducers: 3}
	var high, low bool
	for i := 0; i < 1<<12 && !(high && low); i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		h := fnv.New32a()
		h.Write(key)
		sum := h.Sum32()
		if sum > math.MaxInt32 {
			high = true
		} else {
			low = true
		}
		p := job.partition(key)
		if p < 0 || p >= 3 {
			t.Fatalf("partition(%q) = %d (hash %d), out of range", key, p, sum)
		}
		if want := int(sum % 3); p != want {
			t.Fatalf("partition(%q) = %d, want %d", key, p, want)
		}
	}
	if !high || !low {
		t.Fatalf("key sweep did not cover both hash ranges (high=%v low=%v)", high, low)
	}
}

func TestCodecOrderPreservation(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := EncodeInt64(a), EncodeInt64(b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		cmp := bytes.Compare(EncodeFloat64(a), EncodeFloat64(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 42} {
		if DecodeInt64(EncodeInt64(v)) != v {
			t.Errorf("int64 %d", v)
		}
	}
	for _, v := range []float64{0, -0.5, 1e300, -1e300, 3.14} {
		if DecodeFloat64(EncodeFloat64(v)) != v {
			t.Errorf("float64 %g", v)
		}
	}
	for _, v := range []uint64{0, 7, math.MaxUint64} {
		if DecodeUint64(EncodeUint64(v)) != v {
			t.Errorf("uint64 %d", v)
		}
	}
}

func TestGobCodec(t *testing.T) {
	type payload struct {
		A int
		B []float64
	}
	in := payload{A: 7, B: []float64{1, 2}}
	b, err := GobEncode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := GobDecode(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %+v", out)
	}
	if got := MustGobEncode(in); !bytes.Equal(got, b) {
		t.Fatal("MustGobEncode differs")
	}
}

func TestRegistry(t *testing.T) {
	if !HasJob("test-registry-job") { // survive go test -count=N
		RegisterJob("test-registry-job", func(params []byte) (*Job, error) {
			return wordCountJob([]string{string(params)}, 1), nil
		})
	}
	job, err := LookupJob("test-registry-job", []byte("hello world"))
	if err != nil || len(job.Splits) != 1 {
		t.Fatalf("job=%+v err=%v", job, err)
	}
	if _, err := LookupJob("missing-job", nil); err == nil {
		t.Fatal("missing job lookup succeeded")
	}
	found := false
	for _, n := range RegisteredJobs() {
		if n == "test-registry-job" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered job not listed")
	}
	if !HasJob("test-registry-job") || HasJob("missing-job") {
		t.Fatal("HasJob disagrees with the registry")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterJob("test-registry-job", nil)
}
