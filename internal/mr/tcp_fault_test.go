package mr

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dwmaxerr/internal/obs"
)

// Fault-injection coverage for the cluster engine: worker crashes mid-map
// and mid-reduce, heartbeat-detected silence, malformed map output, wire
// counter parity with the Local engine, speculation, and graceful
// shutdown.

// faultJobParams parameterizes the counting test job.
type faultJobParams struct {
	Texts       []string
	MapDelay    time.Duration
	ReduceDelay time.Duration
}

var combinerAttempts atomic.Int64 // max attempt number any combiner observed

func init() {
	// Word count with user counters on both sides of the shuffle.
	RegisterJob("fault-count", func(params []byte) (*Job, error) {
		var p faultJobParams
		if err := GobDecode(params, &p); err != nil {
			return nil, err
		}
		job := wordCountJob(p.Texts, 2)
		inner := job.Map
		job.Map = func(ctx TaskContext, split Split, emit Emit) error {
			time.Sleep(p.MapDelay)
			ctx.Counters.Add("count.words", int64(len(strings.Fields(string(split.Payload)))))
			return inner(ctx, split, emit)
		}
		innerRed := job.Reduce
		job.Reduce = func(ctx TaskContext, key []byte, values [][]byte, emit Emit) error {
			time.Sleep(p.ReduceDelay)
			ctx.Counters.Add("count.groups", 1)
			return innerRed(ctx, key, values, emit)
		}
		return job, nil
	})
	// Word count whose combiner records the attempt number it observes.
	RegisterJob("fault-combiner", func(params []byte) (*Job, error) {
		var texts []string
		if err := GobDecode(params, &texts); err != nil {
			return nil, err
		}
		job := wordCountJob(texts, 1)
		job.Combine = func(ctx TaskContext, key []byte, values [][]byte, emit Emit) error {
			if a := int64(ctx.Attempt); a > combinerAttempts.Load() {
				combinerAttempts.Store(a)
			}
			ctx.Counters.Add("combine.groups", 1)
			return job.Reduce(ctx, key, values, emit)
		}
		return job, nil
	})
	// Word count whose first attempt of map task 0 straggles.
	RegisterJob("fault-straggler", func(params []byte) (*Job, error) {
		var texts []string
		if err := GobDecode(params, &texts); err != nil {
			return nil, err
		}
		job := wordCountJob(texts, 1)
		inner := job.Map
		job.Map = func(ctx TaskContext, split Split, emit Emit) error {
			if ctx.TaskID == 0 && ctx.Attempt == 1 {
				time.Sleep(250 * time.Millisecond)
			}
			return inner(ctx, split, emit)
		}
		return job, nil
	})
}

// localRunOf executes the same registered job through the Local engine,
// the reference for counter and output parity.
func localRunOf(t *testing.T, jobName string, params []byte) *Result {
	t.Helper()
	job, err := LookupJob(jobName, params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Local{}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestClusterCountersMatchLocal(t *testing.T) {
	c := startCluster(t, 2)
	params := MustGobEncode(faultJobParams{Texts: []string{"a b a", "c c", "a d e"}})
	clusterRes, err := c.Run("fault-count", params)
	if err != nil {
		t.Fatal(err)
	}
	localRes := localRunOf(t, "fault-count", params)
	if !reflect.DeepEqual(countsOf(clusterRes), countsOf(localRes)) {
		t.Fatalf("cluster %v != local %v", countsOf(clusterRes), countsOf(localRes))
	}
	if clusterRes.Metrics.UserCounters == nil {
		t.Fatal("cluster run reported no user counters")
	}
	if !reflect.DeepEqual(clusterRes.Metrics.UserCounters, localRes.Metrics.UserCounters) {
		t.Fatalf("user counters: cluster %v != local %v",
			clusterRes.Metrics.UserCounters, localRes.Metrics.UserCounters)
	}
	for _, st := range append(clusterRes.Metrics.MapStats, clusterRes.Metrics.ReduceStats...) {
		if st.Attempt < 1 {
			t.Fatalf("task stat with unset attempt: %+v", st)
		}
	}
}

func TestClusterWorkerKilledMidMapAndMidReduce(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })

	// One worker crashes on its first map task, one on its first reduce
	// task, one stays healthy.
	var mapCrashed, reduceCrashed atomic.Bool
	go ServeWorker(c.Addr(), "doomed-map", stop, WorkerOptions{
		TaskHook: func(kind string, taskID, attempt int) error {
			if kind == "map" && mapCrashed.CompareAndSwap(false, true) {
				return errors.New("injected crash mid-map")
			}
			return nil
		},
	})
	go ServeWorker(c.Addr(), "doomed-reduce", stop, WorkerOptions{
		TaskHook: func(kind string, taskID, attempt int) error {
			if kind == "reduce" && reduceCrashed.CompareAndSwap(false, true) {
				return errors.New("injected crash mid-reduce")
			}
			return nil
		},
	})
	go Serve(c.Addr(), "healthy", stop)
	if err := c.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	params := MustGobEncode(faultJobParams{
		Texts:    []string{"a a", "b c", "d d d", "e"},
		MapDelay: 10 * time.Millisecond,
	})
	res, err := c.Run("fault-count", params)
	if err != nil {
		t.Fatal(err)
	}
	if !mapCrashed.Load() || !reduceCrashed.Load() {
		t.Fatalf("fault injection did not fire: map=%v reduce=%v", mapCrashed.Load(), reduceCrashed.Load())
	}
	local := localRunOf(t, "fault-count", params)
	if !reflect.DeepEqual(countsOf(res), countsOf(local)) {
		t.Fatalf("output diverged under failures: cluster %v local %v", countsOf(res), countsOf(local))
	}
	if res.Metrics.MapRetries == 0 {
		t.Fatal("map task was reassigned but MapRetries == 0")
	}
	if res.Metrics.ReduceRetries == 0 {
		t.Fatal("reduce task was reassigned but ReduceRetries == 0")
	}
	if !reflect.DeepEqual(res.Metrics.UserCounters, local.Metrics.UserCounters) {
		t.Fatalf("counters diverged under failures: cluster %v local %v",
			res.Metrics.UserCounters, local.Metrics.UserCounters)
	}
}

// TestClusterCrashMidMapCounterDeltas pins the registry semantics of
// failure recovery: one injected crash produces exactly one
// mr_task_retries increment, no duplicate commits, no speculative
// attempts, and a span tree covering every task attempt. Deltas are
// measured around the run because obs.Default is process-wide.
func TestClusterCrashMidMapCounterDeltas(t *testing.T) {
	retries0 := obsTaskRetries.Value()
	dups0 := obsTaskCommitDups.Value()
	spec0 := obsSpeculativeAttempts.Value()
	launched0 := obsTasksLaunched.Value()

	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	var crashed atomic.Bool
	go ServeWorker(c.Addr(), "doomed", stop, WorkerOptions{
		TaskHook: func(kind string, taskID, attempt int) error {
			if kind == "map" && crashed.CompareAndSwap(false, true) {
				return errors.New("injected crash mid-map")
			}
			return nil
		},
	})
	go Serve(c.Addr(), "healthy", stop)
	if err := c.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer()
	root := tracer.Start("test-job")
	params := MustGobEncode(faultJobParams{
		Texts:    []string{"a a", "b c", "d d d"},
		MapDelay: 10 * time.Millisecond,
	})
	res, err := c.RunWith("fault-count", params, JobOptions{Trace: root})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if !crashed.Load() {
		t.Fatal("fault injection did not fire")
	}
	// Deltas must be read before the Local parity run below, which also
	// feeds the same process-wide registry.
	launchedDelta := obsTasksLaunched.Value() - launched0
	local := localRunOf(t, "fault-count", params)
	if !reflect.DeepEqual(countsOf(res), countsOf(local)) {
		t.Fatalf("output diverged under failure: cluster %v local %v", countsOf(res), countsOf(local))
	}

	if d := obsTaskRetries.Value() - retries0; d != 1 {
		t.Fatalf("mr_task_retries delta = %d, want exactly 1", d)
	}
	if d := obsTaskCommitDups.Value() - dups0; d != 0 {
		t.Fatalf("mr_task_commit_dups delta = %d, want 0", d)
	}
	if d := obsSpeculativeAttempts.Value() - spec0; d != 0 {
		t.Fatalf("mr_speculative_attempts delta = %d, want 0", d)
	}
	// 3 maps + 2 reduces + the one retry.
	attempts := len(res.Metrics.MapStats) + len(res.Metrics.ReduceStats)
	if launchedDelta != int64(attempts) || attempts != 6 {
		t.Fatalf("mr_tasks_launched delta = %d, task stats = %d, want both 6", launchedDelta, attempts)
	}

	// The span tree records one attempt span per task stat under the job.
	spans := 0
	root.Walk(func(s *obs.Span) {
		if s.Name() == "map" || s.Name() == "reduce" {
			spans++
		}
	})
	if spans != attempts {
		t.Fatalf("trace has %d task-attempt spans, metrics report %d attempts", spans, attempts)
	}
}

func TestClusterHeartbeatDetectsSilentWorker(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	// Short heartbeat window, long task deadline: only the heartbeat
	// monitor can rescue the task held by the frozen worker.
	c.HeartbeatTimeout = 300 * time.Millisecond
	c.TaskTimeout = 30 * time.Second

	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	frozen := make(chan struct{})
	t.Cleanup(func() { close(frozen) })
	go ServeWorker(c.Addr(), "frozen", stop, WorkerOptions{
		DisableHeartbeat: true,
		TaskHook: func(kind string, taskID, attempt int) error {
			<-frozen // hold the task forever without replying
			return errors.New("unfrozen")
		},
	})
	go Serve(c.Addr(), "healthy", stop)
	if err := c.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	params := MustGobEncode(faultJobParams{Texts: []string{"x x", "y z"}})
	start := time.Now()
	res, err := c.Run("fault-count", params)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("heartbeat monitor did not rescue the task: run took %v", elapsed)
	}
	want := map[string]uint64{"x": 2, "y": 1, "z": 1}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if res.Metrics.MapRetries == 0 {
		t.Fatal("frozen worker's task was not retried")
	}
}

// shortPartsWorker is a protocol-level fake: it executes tasks correctly
// except that its first map reply drops all but one shuffle partition —
// exactly the malformed output the seed engine silently truncated.
func shortPartsWorker(t *testing.T, addr string, stop <-chan struct{}) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Error(err)
		return
	}
	go func() {
		<-stop
		conn.Close()
	}()
	fw := newFrameWriter(conn)
	fr := newFrameReader(conn)
	if _, err := conn.Write(appendPreamble(nil)); err != nil {
		return
	}
	if err := fw.write(frameHello, MustGobEncode(&wireHello{WorkerName: "short-parts"})); err != nil {
		return
	}
	truncated := false
	for {
		typ, payload, err := fr.read()
		if err != nil || typ != frameTask {
			return
		}
		task, err := decodeWireTask(payload)
		if err != nil {
			t.Error(err)
			return
		}
		if task.Kind == "shutdown" {
			return
		}
		reply, done := executeWireTask(task)
		if !truncated && task.Kind == "map" && len(reply.Parts) > 1 {
			reply.Parts = reply.Parts[:1]
			truncated = true
		}
		err = fw.write(frameReply, appendWireReply(nil, &reply))
		done()
		if err != nil {
			return
		}
	}
}

func TestClusterShortMapOutputIsRetried(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go shortPartsWorker(t, c.Addr(), stop)
	if err := c.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	params := MustGobEncode(faultJobParams{Texts: []string{"a b c d e f g h"}})
	res, err := c.Run("fault-count", params)
	if err != nil {
		t.Fatal(err)
	}
	local := localRunOf(t, "fault-count", params)
	if !reflect.DeepEqual(countsOf(res), countsOf(local)) {
		t.Fatalf("short map output leaked into the result: cluster %v local %v",
			countsOf(res), countsOf(local))
	}
	failed := false
	for _, st := range res.Metrics.MapStats {
		if st.Failed && st.Attempt == 1 {
			failed = true
		}
	}
	if !failed {
		t.Fatal("the truncated first attempt was not recorded as failed")
	}
	if res.Metrics.MapRetries == 0 {
		t.Fatal("truncated map output was not retried")
	}
}

func TestClusterCombinerSeesAttempt(t *testing.T) {
	combinerAttempts.Store(0)
	c := startCluster(t, 1)
	params := MustGobEncode([]string{"m m n", "n n"})
	res, err := c.Run("fault-combiner", params)
	if err != nil {
		t.Fatal(err)
	}
	if got := combinerAttempts.Load(); got < 1 {
		t.Fatalf("combiner observed attempt %d, want >= 1", got)
	}
	if res.Metrics.UserCounters["combine.groups"] == 0 {
		t.Fatal("combiner counters were not shipped back")
	}
}

func TestClusterSpeculativeBackupCommits(t *testing.T) {
	spec0 := obsSpeculativeAttempts.Value()
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SpeculationAfter = 30 * time.Millisecond
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	for i := 0; i < 2; i++ {
		go Serve(c.Addr(), fmt.Sprintf("w%d", i), stop)
	}
	if err := c.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	res, err := c.Run("fault-straggler", MustGobEncode([]string{"p p", "q"}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"p": 2, "q": 1}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	attempts := 0
	for _, st := range res.Metrics.MapStats {
		if st.TaskID == 0 {
			attempts++
		}
	}
	if attempts != 2 {
		t.Fatalf("straggling map task recorded %d attempts, want 2 (primary + backup)", attempts)
	}
	if res.Metrics.MapRetries == 0 {
		t.Fatal("backup attempt committed but MapRetries == 0")
	}
	if d := obsSpeculativeAttempts.Value() - spec0; d < 1 {
		t.Fatalf("mr_speculative_attempts delta = %d, want >= 1", d)
	}
}

// TestClusterMetricsAggregationUnderConcurrentCompletions pins the
// Metrics synchronization contract documented on the type: replies from
// many overlapping map and reduce completions are folded into Metrics
// (including Makespan inputs, wire counters, and user counters) only on
// the Run goroutine, so reading every aggregate after Run returns is
// race-free. Run under -race this fails if any engine path ever writes
// Metrics from a task goroutine.
func TestClusterMetricsAggregationUnderConcurrentCompletions(t *testing.T) {
	c := startCluster(t, 4)
	texts := make([]string, 16)
	for i := range texts {
		texts[i] = fmt.Sprintf("w%d x y z", i)
	}
	params := MustGobEncode(faultJobParams{
		Texts:       texts,
		MapDelay:    time.Millisecond,
		ReduceDelay: time.Millisecond,
	})
	res, err := c.Run("fault-count", params)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if len(m.MapStats) != 16 || len(m.ReduceStats) == 0 {
		t.Fatalf("stats not fully merged: %d map, %d reduce", len(m.MapStats), len(m.ReduceStats))
	}
	if m.ShuffleRecords == 0 || m.ShuffleBytes == 0 {
		t.Fatalf("shuffle accounting not merged: %d records, %d bytes", m.ShuffleRecords, m.ShuffleBytes)
	}
	if m.UserCounters["count.words"] == 0 || m.UserCounters["count.groups"] == 0 {
		t.Fatalf("user counters not merged: %v", m.UserCounters)
	}
	if ms := m.Makespan(4, 1); ms <= 0 {
		t.Fatalf("Makespan(4, 1) = %v, want > 0", ms)
	}
	local := localRunOf(t, "fault-count", params)
	if !reflect.DeepEqual(countsOf(res), countsOf(local)) {
		t.Fatalf("cluster %v != local %v", countsOf(res), countsOf(local))
	}
}

func TestClusterGracefulShutdown(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Workers get no stop channel: only the coordinator's shutdown
	// broadcast can end them.
	exits := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			exits <- Serve(c.Addr(), fmt.Sprintf("w%d", i), nil)
		}(i)
	}
	if err := c.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("tcp-wordcount", MustGobEncode([]string{"a b", "c"})); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-exits:
			if err != nil {
				t.Fatalf("worker exited with %v, want graceful nil", err)
			}
		case <-time.After(3 * time.Second):
			t.Fatal("worker did not drain after shutdown broadcast")
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := c.Run("tcp-wordcount", MustGobEncode([]string{"a"})); err == nil {
		t.Fatal("run succeeded on a closed coordinator")
	}
}

// TestClusterLivenessPollingDuringRun uses only seed-era API (Serve plus
// stop channels). Against the seed's worker pool — which nil'd out busy
// slots and flipped w.dead outside the coordinator lock — this exact test
// crashes under `go test -race` with a nil dereference in WaitForWorkers.
func TestClusterLivenessPollingDuringRun(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	stopA := make(chan struct{})
	stopB := make(chan struct{})
	t.Cleanup(func() { close(stopB) })
	go Serve(c.Addr(), "doomed", stopA)
	go Serve(c.Addr(), "ok1", stopB)
	go Serve(c.Addr(), "ok2", stopB)
	if err := c.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for i := 0; i < 200; i++ {
			c.WaitForWorkers(1, time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(stopA) // kill a worker mid-job
	}()
	params := MustGobEncode(faultJobParams{
		Texts:    []string{"a a", "b", "c c c", "d", "e e", "f", "g g", "h"},
		MapDelay: 5 * time.Millisecond,
	})
	res, err := c.Run("fault-count", params)
	if err != nil {
		t.Fatal(err)
	}
	local := localRunOf(t, "fault-count", params)
	if !reflect.DeepEqual(countsOf(res), countsOf(local)) {
		t.Fatalf("cluster %v != local %v", countsOf(res), countsOf(local))
	}
	<-pollDone
}

// TestClusterWorkerDeathIsRaceFree hammers concurrent task scheduling,
// worker death, and liveness polling. Against the seed's worker pool —
// where runTask wrote w.dead without holding the coordinator lock — this
// test fails under -race.
func TestClusterWorkerDeathIsRaceFree(t *testing.T) {
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	for i := 0; i < 3; i++ {
		// The first two workers each crash on their first map task.
		var crashed atomic.Bool
		doomed := i < 2
		go ServeWorker(c.Addr(), fmt.Sprintf("w%d", i), stop, WorkerOptions{
			TaskHook: func(kind string, taskID, attempt int) error {
				if doomed && kind == "map" && crashed.CompareAndSwap(false, true) {
					return errors.New("chaos")
				}
				return nil
			},
		})
	}
	if err := c.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Poll liveness concurrently with the run — the seed read w.dead under
	// the lock here while writing it without the lock in runTask.
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for i := 0; i < 200; i++ {
			c.WaitForWorkers(1, time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}()
	params := MustGobEncode(faultJobParams{
		Texts:    []string{"a a", "b", "c c c", "d", "e e", "f", "g g", "h"},
		MapDelay: 5 * time.Millisecond,
	})
	res, err := c.Run("fault-count", params)
	if err != nil {
		t.Fatal(err)
	}
	local := localRunOf(t, "fault-count", params)
	if !reflect.DeepEqual(countsOf(res), countsOf(local)) {
		t.Fatalf("cluster %v != local %v", countsOf(res), countsOf(local))
	}
	<-pollDone
}
