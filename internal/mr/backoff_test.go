package mr

import (
	"testing"
	"time"
)

// TestBackoffBounds pins the policy: exponential growth from base, cap at
// max, and every delay jittered into [d/2, d].
func TestBackoffBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	b := NewBackoff(base, max, 1)
	for attempt := 1; attempt <= 10; attempt++ {
		want := base << (attempt - 1)
		if want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	if d := b.Delay(0); d < base/2 || d > base {
		t.Fatalf("attempt 0 clamps to 1: got %v", d)
	}
}

// TestBackoffDeterminism pins that a seed fixes the whole jitter sequence
// (the reconnect tests rely on reproducible schedules).
func TestBackoffDeterminism(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		b := NewBackoff(20*time.Millisecond, time.Second, seed)
		var out []time.Duration
		for a := 1; a <= 8; a++ {
			out = append(out, b.Delay(a))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d diverged under the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 8-delay sequences")
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if b.base != 50*time.Millisecond || b.max != 5*time.Second {
		t.Fatalf("defaults base=%v max=%v", b.base, b.max)
	}
	// max below base is raised to base.
	b = NewBackoff(time.Second, time.Millisecond, 1)
	if b.max != time.Second {
		t.Fatalf("max %v not raised to base", b.max)
	}
}
