package mr

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpeculationBackupWins(t *testing.T) {
	var delayed atomic.Int32
	eng := &Local{
		Workers:          4,
		SpeculationAfter: 20 * time.Millisecond,
		DelayInjector: func(kind string, ctx TaskContext) {
			// The first attempt of map task 0 straggles; its backup runs
			// immediately.
			if kind == "map" && ctx.TaskID == 0 && ctx.Attempt == 1 {
				delayed.Add(1)
				time.Sleep(150 * time.Millisecond)
			}
		},
	}
	job := wordCountJob([]string{"a a", "b", "c c c"}, 2)
	start := time.Now()
	res, err := eng.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.Load() == 0 {
		t.Fatal("straggler injector never fired")
	}
	want := map[string]uint64{"a": 2, "b": 1, "c": 3}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Both attempts of task 0 must be recorded.
	attempts := 0
	for _, st := range res.Metrics.MapStats {
		if st.TaskID == 0 {
			attempts++
		}
	}
	if attempts != 2 {
		t.Fatalf("map task 0 recorded %d attempts, want 2 (primary + backup)", attempts)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("speculation did not bound the run: %v", elapsed)
	}
}

func TestSpeculationDisabledByDefault(t *testing.T) {
	eng := &Local{Workers: 4}
	job := wordCountJob([]string{"x", "y"}, 1)
	res, err := eng.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Metrics.MapStats {
		if st.Attempt != 1 {
			t.Fatalf("unexpected extra attempt: %+v", st)
		}
	}
}

func TestSpeculationWithFailingPrimary(t *testing.T) {
	// Primary attempt of task 0 both straggles and fails; the backup
	// commits, and the eventual failure of the primary must not override.
	eng := &Local{
		Workers:          4,
		SpeculationAfter: 10 * time.Millisecond,
		DelayInjector: func(kind string, ctx TaskContext) {
			if kind == "map" && ctx.TaskID == 0 && ctx.Attempt == 1 {
				time.Sleep(80 * time.Millisecond)
			}
		},
		FailureInjector: func(kind string, ctx TaskContext) error {
			if kind == "map" && ctx.TaskID == 0 && ctx.Attempt == 1 {
				return errors.New("straggler died")
			}
			return nil
		},
	}
	res, err := eng.Run(wordCountJob([]string{"p p", "q"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"p": 2, "q": 1}
	if got := countsOf(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}
