package mr

import "dwmaxerr/internal/obs"

// Engine metrics, recorded into the process-wide obs.Default registry at
// the point where the work happens. In local runs every metric lands in
// the driver process; in cluster runs the scheduling metrics (launches,
// retries, speculation, heartbeats received, worker lifecycle) land in the
// coordinator while the execution metrics (tasks executed, sorts, arena
// traffic, heartbeats sent) land in each worker — visible live over that
// worker's /debug/vars.
//
// Naming: mr_* prefix, snake_case, per the convention in package obs.
var (
	// Scheduling (coordinator / local driver side).
	obsJobsRun             = obs.Default.Counter("mr_jobs_run")
	obsTasksLaunched       = obs.Default.Counter("mr_tasks_launched")
	obsTaskRetries         = obs.Default.Counter("mr_task_retries")
	obsSpeculativeAttempts = obs.Default.Counter("mr_speculative_attempts")
	obsTaskCommitDups      = obs.Default.Counter("mr_task_commit_dups")
	obsWorkersJoined       = obs.Default.Counter("mr_workers_joined")
	obsWorkersDead         = obs.Default.Counter("mr_workers_dead")
	obsWorkersLive         = obs.Default.Gauge("mr_workers_live")
	obsHeartbeatsReceived  = obs.Default.Counter("mr_heartbeats_received")

	// Shuffle volume (driver side: counted when map output is aggregated).
	obsShuffleRecords = obs.Default.Counter("mr_shuffle_records")
	obsShuffleBytes   = obs.Default.Counter("mr_shuffle_bytes")
	obsSpillBytes     = obs.Default.Counter("mr_spill_bytes")

	// Execution (worker side in cluster mode, driver side locally).
	obsWorkerTasksExecuted = obs.Default.Counter("mr_worker_tasks_executed")
	obsWorkerBeatsSent     = obs.Default.Counter("mr_worker_heartbeats_sent")
	obsSortRadix           = obs.Default.Counter("mr_sort_radix")
	obsSortComparison      = obs.Default.Counter("mr_sort_comparison")
	obsArenaBlockGets      = obs.Default.Counter("mr_arena_block_gets")
	obsArenaBlockAllocs    = obs.Default.Counter("mr_arena_block_allocs")

	// Wire traffic (both sides count their own send/receive).
	obsWireBytesSent     = obs.Default.Counter("mr_wire_bytes_sent")
	obsWireBytesReceived = obs.Default.Counter("mr_wire_bytes_received")
	// obsWireCorruptFrames counts frames the receiver rejected — CRC32-C
	// mismatch or an over-limit length prefix — each of which kills the
	// connection (counted on the rejecting side).
	obsWireCorruptFrames = obs.Default.Counter("mr_wire_corrupt_frames")

	// Self-healing (worker side): successful re-registrations after a
	// coordinator connection died (see WorkerOptions.ReconnectMax).
	obsWorkerReconnects = obs.Default.Counter("mr_worker_reconnects")

	// Distributions.
	obsTaskDurationUS = obs.Default.Histogram("mr_task_duration_us")
)
