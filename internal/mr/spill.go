package mr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// External shuffle: when a map task's output exceeds a record threshold,
// the engine sorts and spills runs to disk and the reduce side streams a
// k-way merge over them — the classic Hadoop sort-spill-merge pipeline.
// This keeps the substrate honest about the paper's setting, where inputs
// exceed worker memory and "excessive disk accesses" (Section 3) are the
// cost being engineered around.
//
// Run file format: repeated records of
//
//	uvarint keyLen | key | uvarint valueLen | value
//
// Each run is sorted by the job's comparator with arrival order preserved
// among equal keys; the merge breaks ties by (map task, run, position) so
// spilled and in-memory executions produce byte-identical results for
// associative combiners.

// spillRun is one sorted run on disk.
type spillRun struct {
	path    string
	records int
}

// mapOutput is one map task's committed output: per reduce partition, an
// in-memory tail plus zero or more spilled runs.
type mapOutput struct {
	mem  [][]Pair
	runs [][]spillRun
}

// spillCollector accumulates map output, spilling partitions that exceed
// the threshold. Records are copied into one arena per partition, so a
// spilled partition's memory recycles as soon as its run is on disk.
type spillCollector struct {
	job       *Job
	dir       string
	threshold int
	out       mapOutput
	arenas    []byteArena
	spilled   int64 // bytes written to disk
}

func newSpillCollector(job *Job, dir string, threshold, nred int) (*spillCollector, error) {
	taskDir, err := os.MkdirTemp(dir, "spill-")
	if err != nil {
		return nil, err
	}
	return &spillCollector{
		job:       job,
		dir:       taskDir,
		threshold: threshold,
		out: mapOutput{
			mem:  make([][]Pair, nred),
			runs: make([][]spillRun, nred),
		},
		arenas: make([]byteArena, nred),
	}, nil
}

func (c *spillCollector) emit(key, value []byte) error {
	p := c.job.partition(key)
	c.out.mem[p] = append(c.out.mem[p], Pair{Key: c.arenas[p].copyBytes(key), Value: c.arenas[p].copyBytes(value)})
	if len(c.out.mem[p]) >= c.threshold {
		return c.spill(p)
	}
	return nil
}

// spill sorts (and optionally combines) partition p's buffer and writes it
// as a run. Once the run is on disk nothing references the partition's
// arena any more, so its blocks recycle.
func (c *spillCollector) spill(p int) error {
	pairs := c.out.mem[p]
	if len(pairs) == 0 {
		return nil
	}
	sortPairs(c.job, pairs)
	if c.job.Combine != nil {
		combined, err := combineSorted(c.job, &c.arenas[p], pairs)
		if err != nil {
			return err
		}
		pairs = combined
	}
	path := filepath.Join(c.dir, fmt.Sprintf("run-%d-%d", p, len(c.out.runs[p])))
	n, err := writeRun(path, pairs)
	if err != nil {
		return err
	}
	c.spilled += n
	c.out.runs[p] = append(c.out.runs[p], spillRun{path: path, records: len(pairs)})
	c.out.mem[p] = nil
	c.arenas[p].reset()
	return nil
}

// finish spills any remaining buffers (keeping them in memory when no run
// exists yet, to avoid I/O for small tasks) and returns the output.
func (c *spillCollector) finish() (mapOutput, error) {
	for p := range c.out.mem {
		if len(c.out.runs[p]) > 0 && len(c.out.mem[p]) > 0 {
			if err := c.spill(p); err != nil {
				return mapOutput{}, err
			}
			continue
		}
		// Purely in-memory partition: sort (and combine) now so the merge
		// can treat it as a run. The arena stays live — the merge reads
		// these pairs — and recycles on discard.
		pairs := c.out.mem[p]
		sortPairs(c.job, pairs)
		if c.job.Combine != nil && len(pairs) > 0 {
			combined, err := combineSorted(c.job, &c.arenas[p], pairs)
			if err != nil {
				return mapOutput{}, err
			}
			pairs = combined
		}
		c.out.mem[p] = pairs
	}
	return c.out, nil
}

// discard removes the collector's spill files and recycles its arenas
// (loser of a speculative race, a failed attempt, or end-of-job cleanup —
// callers must copy any output they keep out of the arenas first).
func (c *spillCollector) discard() {
	os.RemoveAll(c.dir)
	for i := range c.arenas {
		c.arenas[i].release()
	}
}

// combineSorted applies the combiner to an already-sorted pair slice,
// emitting combined records into arena.
func combineSorted(job *Job, arena *byteArena, sorted []Pair) ([]Pair, error) {
	var out []Pair
	emit := emitInto(arena, &out)
	var values [][]byte
	i := 0
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && job.compare(sorted[j].Key, sorted[i].Key) == 0 {
			j++
		}
		values = values[:0]
		for _, kv := range sorted[i:j] {
			values = append(values, kv.Value)
		}
		if err := job.Combine(TaskContext{}, sorted[i].Key, values, emit); err != nil {
			return nil, err
		}
		i = j
	}
	return out, nil
}

// writeRun writes pairs to path, returning bytes written.
func writeRun(path string, pairs []Pair) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var written int64
	var buf [binary.MaxVarintLen64]byte
	for _, kv := range pairs {
		n := binary.PutUvarint(buf[:], uint64(len(kv.Key)))
		if _, err := bw.Write(buf[:n]); err != nil {
			f.Close()
			return written, err
		}
		if _, err := bw.Write(kv.Key); err != nil {
			f.Close()
			return written, err
		}
		n2 := binary.PutUvarint(buf[:], uint64(len(kv.Value)))
		if _, err := bw.Write(buf[:n2]); err != nil {
			f.Close()
			return written, err
		}
		if _, err := bw.Write(kv.Value); err != nil {
			f.Close()
			return written, err
		}
		written += int64(n + len(kv.Key) + n2 + len(kv.Value))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return written, err
	}
	return written, f.Close()
}

// runReader streams one sorted source (a disk run or an in-memory slice).
type runReader struct {
	// disk
	f  *os.File
	br *bufio.Reader
	// memory
	mem []Pair
	pos int

	cur  Pair
	done bool
}

func openRunReader(run spillRun) (*runReader, error) {
	f, err := os.Open(run.path)
	if err != nil {
		return nil, err
	}
	r := &runReader{f: f, br: bufio.NewReaderSize(f, 1<<16)}
	return r, r.advance()
}

func memRunReader(pairs []Pair) *runReader {
	r := &runReader{mem: pairs}
	r.advance()
	return r
}

// advance loads the next pair into cur; sets done at the end.
func (r *runReader) advance() error {
	if r.mem != nil || r.f == nil {
		if r.pos >= len(r.mem) {
			r.done = true
			return nil
		}
		r.cur = r.mem[r.pos]
		r.pos++
		return nil
	}
	klen, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		r.done = true
		r.f.Close()
		return nil
	}
	if err != nil {
		r.f.Close()
		return err
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(r.br, key); err != nil {
		r.f.Close()
		return err
	}
	vlen, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.f.Close()
		return err
	}
	value := make([]byte, vlen)
	if _, err := io.ReadFull(r.br, value); err != nil {
		r.f.Close()
		return err
	}
	r.cur = Pair{Key: key, Value: value}
	return nil
}

// close releases the reader's file if still open.
func (r *runReader) close() {
	if r.f != nil {
		r.f.Close()
	}
}

// mergeStream is a k-way merge over sorted sources with deterministic
// tie-breaking by source order.
type mergeStream struct {
	job     *Job
	sources []*runReader
	heap    []int // indices into sources, heap-ordered
}

func newMergeStream(job *Job, sources []*runReader) *mergeStream {
	m := &mergeStream{job: job, sources: sources}
	for i, s := range sources {
		if !s.done {
			m.heap = append(m.heap, i)
		}
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
	return m
}

func (m *mergeStream) less(a, b int) bool {
	sa, sb := m.sources[a], m.sources[b]
	if c := m.job.compare(sa.cur.Key, sb.cur.Key); c != 0 {
		return c < 0
	}
	return a < b // source order preserves arrival order for equal keys
}

func (m *mergeStream) down(i int) {
	n := len(m.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && m.less(m.heap[l], m.heap[smallest]) {
			smallest = l
		}
		if r < n && m.less(m.heap[r], m.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
}

// next returns the next pair in merged order.
func (m *mergeStream) next() (Pair, bool, error) {
	if len(m.heap) == 0 {
		return Pair{}, false, nil
	}
	src := m.heap[0]
	pair := m.sources[src].cur
	if err := m.sources[src].advance(); err != nil {
		return Pair{}, false, err
	}
	if m.sources[src].done {
		m.heap[0] = m.heap[len(m.heap)-1]
		m.heap = m.heap[:len(m.heap)-1]
	}
	if len(m.heap) > 0 {
		m.down(0)
	}
	return pair, true, nil
}

// close closes all sources.
func (m *mergeStream) close() {
	for _, s := range m.sources {
		s.close()
	}
}
