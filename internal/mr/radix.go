package mr

import "sort"

// Shuffle sort fast path. The algorithms in internal/dist emit fixed-width
// order-preserving keys (8/12/16-byte big-endian encodings from codec.go
// and histKey-style composites), so within a partition every key usually
// has the same width and the job uses the default bytes.Compare order.
// That case is sorted with a stable byte-wise LSD radix sort that skips
// constant byte columns (common-prefix and sparse columns cost one
// counting scan, not a full redistribution pass). Variable-width keys or
// a custom comparator fall back to the comparison sort. Both paths
// produce the identical permutation — lexicographic order with arrival
// order preserved among equal keys — which radix_test.go pins down with a
// property test.

const (
	// maxRadixKeyWidth bounds the fast path; wider keys would pay too
	// many counting passes relative to comparison sort.
	maxRadixKeyWidth = 32
	// minRadixLen is the slice size below which std sort wins on setup
	// overhead.
	minRadixLen = 32
)

// sortPairs stably sorts pairs in the job's key order.
func sortPairs(job *Job, pairs []Pair) {
	if job.Compare == nil && len(pairs) >= minRadixLen {
		if w, ok := fixedKeyWidth(pairs); ok {
			obsSortRadix.Inc()
			radixSortPairs(pairs, w)
			return
		}
	}
	obsSortComparison.Inc()
	sort.SliceStable(pairs, func(i, j int) bool { return job.compare(pairs[i].Key, pairs[j].Key) < 0 })
}

// fixedKeyWidth reports the common key width when every key has the same
// length in 1..maxRadixKeyWidth.
func fixedKeyWidth(pairs []Pair) (int, bool) {
	if len(pairs) == 0 {
		return 0, false
	}
	w := len(pairs[0].Key)
	if w == 0 || w > maxRadixKeyWidth {
		return 0, false
	}
	for i := 1; i < len(pairs); i++ {
		if len(pairs[i].Key) != w {
			return 0, false
		}
	}
	return w, true
}

// radixSortPairs sorts pairs whose keys all have the given width into
// lexicographic (bytes.Compare) order, stably: LSD counting sort over the
// byte columns, ping-ponging between pairs and a pooled scratch buffer.
func radixSortPairs(pairs []Pair, width int) {
	n := len(pairs)
	if n < 2 {
		return
	}
	tmp := getPairBuf(n)
	src, dst := pairs, tmp
	var count [256]int
	for col := width - 1; col >= 0; col-- {
		for i := range count {
			count[i] = 0
		}
		first := src[0].Key[col]
		constant := true
		for i := 0; i < n; i++ {
			b := src[i].Key[col]
			count[b]++
			if b != first {
				constant = false
			}
		}
		if constant {
			continue // every key agrees on this column: order unchanged
		}
		sum := 0
		for i := 0; i < 256; i++ {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			b := src[i].Key[col]
			dst[count[b]] = src[i]
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] == &tmp[0] {
		copy(pairs, src)
	}
	putPairBuf(tmp)
}
