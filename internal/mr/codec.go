package mr

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"
)

// Codec helpers for the byte-slice keys and values crossing the shuffle.
// Numeric keys use big-endian order-preserving encodings so the default
// bytes.Compare sort yields numeric order.
//
// The Append variants append the encoding to dst and return the extended
// slice, so hot loops can reuse one scratch buffer per task instead of
// allocating per record (engine emit paths copy, so reusing the buffer
// across emits is safe — see Emit in mr.go).

// AppendUint64 appends the big-endian encoding of v (order-preserving).
func AppendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// EncodeUint64 returns the big-endian encoding of v (order-preserving).
func EncodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeUint64 decodes EncodeUint64.
func DecodeUint64(b []byte) uint64 {
	return binary.BigEndian.Uint64(b)
}

// AppendInt64 appends the order-preserving encoding of v (sign bit
// flipped so bytes.Compare order equals numeric order).
func AppendInt64(dst []byte, v int64) []byte {
	return AppendUint64(dst, uint64(v)^(1<<63))
}

// EncodeInt64 encodes v so that bytes.Compare order equals numeric order
// (sign bit flipped).
func EncodeInt64(v int64) []byte {
	return EncodeUint64(uint64(v) ^ (1 << 63))
}

// DecodeInt64 decodes EncodeInt64.
func DecodeInt64(b []byte) int64 {
	return int64(DecodeUint64(b) ^ (1 << 63))
}

// AppendFloat64 appends the order-preserving encoding of v (IEEE 754
// total-order trick, matching EncodeFloat64).
func AppendFloat64(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return AppendUint64(dst, bits)
}

// EncodeFloat64 encodes v so that bytes.Compare order equals numeric order
// for all non-NaN values (IEEE 754 total-order trick).
func EncodeFloat64(v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return EncodeUint64(bits)
}

// DecodeFloat64 decodes EncodeFloat64.
func DecodeFloat64(b []byte) float64 {
	bits := DecodeUint64(b)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits)
}

// GobEncode encodes v with encoding/gob.
func GobEncode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode decodes GobEncode output into v (a pointer).
func GobDecode(b []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// MustGobEncode panics on encoding failure; for values known to be
// encodable (fixed internal structs).
func MustGobEncode(v interface{}) []byte {
	b, err := GobEncode(v)
	if err != nil {
		panic(err)
	}
	return b
}
