package mr

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"dwmaxerr/internal/chaos"
)

// Self-healing coverage: a worker whose connection dies mid-job re-dials,
// re-registers under its prior name, and the job completes with the same
// output and counters as a fault-free local run — with exactly one
// reconnect and no duplicate commits.

func TestWorkerReconnectsAfterConnectionLoss(t *testing.T) {
	in, err := chaos.New(42, "mr.worker.send:drop#1")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(in)
	defer chaos.Disable()

	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Tolerate the all-dead window while the sole worker re-dials.
	c.RejoinGrace = 5 * time.Second
	t.Cleanup(func() { c.Close() })
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })

	go ServeWorker(c.Addr(), "self-healer", stop, WorkerOptions{
		ReconnectMax:  5,
		ReconnectBase: 10 * time.Millisecond,
		ReconnectCap:  100 * time.Millisecond,
	})
	if err := c.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	reconnects0 := obsWorkerReconnects.Value()
	dups0 := obsTaskCommitDups.Value()
	retries0 := obsTaskRetries.Value()

	params := MustGobEncode(faultJobParams{Texts: []string{"a b a", "c c", "a d e"}})
	clusterRes, err := c.Run("fault-count", params)
	if err != nil {
		t.Fatal(err)
	}
	localRes := localRunOf(t, "fault-count", params)
	if !reflect.DeepEqual(countsOf(clusterRes), countsOf(localRes)) {
		t.Fatalf("cluster %v != local %v", countsOf(clusterRes), countsOf(localRes))
	}
	if !reflect.DeepEqual(clusterRes.Metrics.UserCounters, localRes.Metrics.UserCounters) {
		t.Fatalf("user counters: cluster %v != local %v",
			clusterRes.Metrics.UserCounters, localRes.Metrics.UserCounters)
	}

	if d := obsWorkerReconnects.Value() - reconnects0; d != 1 {
		t.Fatalf("mr_worker_reconnects delta = %d, want exactly 1", d)
	}
	if d := obsTaskCommitDups.Value() - dups0; d != 0 {
		t.Fatalf("mr_task_commit_dups delta = %d, want 0", d)
	}
	if d := obsTaskRetries.Value() - retries0; d < 1 {
		t.Fatalf("mr_task_retries delta = %d, want >= 1 (the dropped reply's task)", d)
	}
	if fired := in.Fired(chaosWorkerSend); fired != 1 {
		t.Fatalf("chaos fired %d times at %s, want 1", fired, chaosWorkerSend)
	}
}

// TestWorkerReconnectGivesUp pins the budget: ReconnectMax consecutive
// dial failures after the initial attempt exhaust the worker.
func TestWorkerReconnectGivesUp(t *testing.T) {
	// Grab a port that is guaranteed closed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	err = ServeWorker(addr, "orphan", nil, WorkerOptions{
		ReconnectMax:  2,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectCap:  20 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("expected a giving-up error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("give-up took %v, backoff not bounded", time.Since(start))
	}
}

// TestWorkerSingleSessionKeepsContract pins the ReconnectMax == 0 path:
// dial failures surface as-is and a coordinator-side close reports nil,
// exactly the pre-reconnect behavior.
func TestWorkerSingleSessionKeepsContract(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if err := Serve(addr, "w", nil); err == nil {
		t.Fatal("dial failure must surface in single-session mode")
	}

	// A server that accepts, reads the preamble + hello, then closes: the
	// worker must report nil (EOF is a clean end in single-session mode).
	ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 1<<10)
		conn.Read(buf)
		time.Sleep(20 * time.Millisecond)
		conn.Close()
	}()
	if err := Serve(ln.Addr().String(), "w", nil); err != nil && !errors.Is(err, net.ErrClosed) {
		t.Fatalf("coordinator-side close must report nil, got %v", err)
	}
}
