package mr

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/obs"
)

// The cluster engine: a coordinator accepts worker connections over TCP and
// assigns map/reduce tasks of registered jobs; workers instantiate jobs via
// the shared registry, execute tasks, and stream results back. Shuffle data
// flows through the coordinator (adequate for the data volumes the paper's
// algorithms shuffle: O(N/2^h) rows, not O(N) records).
//
// Failure model. Every worker connection is watched by a dedicated reader
// goroutine (replies and heartbeats) and by the coordinator's heartbeat
// monitor: a worker that disconnects, stops heartbeating, or overruns the
// per-task deadline is marked dead under the coordinator lock and its
// in-flight task is reassigned to another worker — the retry semantics
// Hadoop provides. Task attempts carry their attempt number on the wire,
// and replies carry the attempt's user-counter snapshot and busy duration,
// so cluster metrics (UserCounters, MapRetries/ReduceRetries, per-attempt
// TaskStats) match the Local engine exactly. Output is committed at most
// once per task: the first successful attempt wins, later duplicates are
// discarded by the coordinator.

// Wire messages. The coordinator sends task frames; workers answer with
// heartbeat and reply frames. Framing and the binary payload codecs live
// in wire.go; hello stays gob-encoded (one frame per connection).
type wireHello struct {
	WorkerName string
}

type wireTask struct {
	Kind     string // "map", "reduce" or "shutdown"
	JobName  string
	Params   []byte
	TaskID   int
	Attempt  int    // 1-based attempt number assigned by the coordinator
	Split    Split  // map tasks
	Bucket   []Pair // reduce tasks: the sorted key group stream
	Reducers int
}

type wireReply struct {
	TaskID  int
	Attempt int
	Err     string
	Parts   [][]Pair // map output per partition
	Out     []Pair   // reduce output
	// Counters is the attempt's user-counter snapshot; the coordinator
	// merges only the committed attempt's counters into the job metrics.
	Counters map[string]int64
	// Duration is the task's busy time on the worker.
	Duration time.Duration
}

func init() {
	gob.Register(wireHello{})
}

// Timing defaults. Workers heartbeat far more often than the coordinator's
// silence threshold so a healthy but busy worker is never declared dead.
const (
	defaultTaskTimeout      = 2 * time.Minute
	defaultHeartbeatTimeout = 3 * time.Second
	workerHeartbeatEvery    = 250 * time.Millisecond
	shutdownGrace           = time.Second
)

// Coordinator runs cluster jobs across connected workers. The tuning
// fields must be set before the first Run and not changed afterwards.
type Coordinator struct {
	ln net.Listener

	// TaskTimeout bounds one task execution; 0 means 2 minutes.
	TaskTimeout time.Duration
	// HeartbeatTimeout is the heartbeat silence after which a worker is
	// declared dead and its in-flight task reassigned; 0 means 3 seconds.
	HeartbeatTimeout time.Duration
	// SpeculationAfter enables Hadoop-style backup tasks: when an attempt
	// has been in flight longer than this and an idle worker is available,
	// a backup attempt of the same task is launched and the first to
	// finish wins. 0 disables speculation.
	SpeculationAfter time.Duration
	// MaxAttempts per task; 0 means 3.
	MaxAttempts int
	// RejoinGrace, when positive, makes scheduling tolerate transient
	// total-worker loss: instead of failing a job the moment every known
	// worker is dead, the coordinator keeps the job's tasks parked for up
	// to this long so self-healing workers (WorkerOptions.ReconnectMax)
	// can re-register. 0 keeps the fail-fast behavior.
	RejoinGrace time.Duration
	// Options applies to every Run (RunWith overrides it per call). Like
	// the tuning fields it must be set before the first Run — it exists so
	// drivers holding a *Coordinator can plug a trace in without changing
	// their call signatures.
	Options JobOptions

	monitorOnce sync.Once

	mu      sync.Mutex
	cond    *sync.Cond    // signaled on worker join, release, death, close
	workers []*workerConn // guarded by mu
	closed  bool          // guarded by mu
	done    chan struct{}
}

// taskOutcome is what an in-flight exchange resolves to.
type taskOutcome struct {
	reply wireReply
	err   error
}

// workerConn is the coordinator's view of one worker. The frame writer is
// guarded by sendMu (task sends and the shutdown broadcast interleave);
// all remaining mutable state is guarded by the coordinator's mu — the
// seed's unsynchronized `dead` write was a data race under -race.
type workerConn struct {
	name string
	conn net.Conn // nil for shared-memory workers (see localworker.go)

	sendMu sync.Mutex
	fw     *frameWriter

	// local, when non-nil, marks a shared-memory worker: tasks are handed
	// over this channel instead of being framed onto a TCP connection, and
	// localGone is closed when its loop exits so sends never block on a
	// dead worker.
	local     chan wireTask
	localGone chan struct{}

	dead     bool             // guarded by Coordinator.mu
	busy     bool             // guarded by Coordinator.mu
	lastBeat time.Time        // guarded by Coordinator.mu
	pending  chan taskOutcome // guarded by Coordinator.mu; non-nil while a task is in flight
}

// sendTask encodes and writes one task frame (scratch buffer pooled).
// Shared-memory workers skip the codec entirely: the task struct crosses a
// channel, honoring the same coordinator-send failpoint the frame writer
// applies (Fail and Delay; Corrupt/Partial are frame-level actions with no
// shared-memory analogue).
func (w *workerConn) sendTask(task *wireTask) error {
	if w.local != nil {
		switch act := chaos.Point(chaosCoordSend); act.Kind {
		case chaos.Fail:
			return act.Err
		case chaos.Delay:
			time.Sleep(act.Sleep)
		}
		select {
		case w.local <- *task:
			return nil
		case <-w.localGone:
			return errors.New("mr: shared-memory worker detached")
		}
	}
	buf := getByteBuf()
	payload, err := appendWireTask(buf, task)
	if err == nil {
		w.sendMu.Lock()
		err = w.fw.write(frameTask, payload)
		w.sendMu.Unlock()
	}
	putByteBuf(payload)
	return err
}

// NewCoordinator listens on addr (e.g. "127.0.0.1:0") and returns
// immediately; workers join asynchronously via Serve.
func NewCoordinator(addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{ln: ln, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	//dwlint:ignore goroleak -- acceptLoop blocks in Accept, not a channel; Close closes the listener, which makes Accept return and the loop exit
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listen address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close shuts the coordinator down gracefully: it broadcasts a shutdown
// task to every live worker, waits briefly for them to drain and
// disconnect, then closes any remaining connections and the listener.
// Close is idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	workers := append([]*workerConn(nil), c.workers...)
	c.cond.Broadcast()
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range workers {
		c.mu.Lock()
		dead := w.dead
		c.mu.Unlock()
		if dead {
			continue
		}
		wg.Add(1)
		go func(w *workerConn) {
			defer wg.Done()
			sendErr := w.sendTask(&wireTask{Kind: "shutdown"})
			if sendErr == nil {
				// Wait for the worker to drain and close its end (the
				// reader marks it dead on EOF), bounded by the grace
				// period.
				deadline := time.Now().Add(shutdownGrace)
				for time.Now().Before(deadline) {
					c.mu.Lock()
					dead := w.dead
					c.mu.Unlock()
					if dead {
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			if w.conn != nil {
				w.conn.Close()
			}
		}(w)
	}
	wg.Wait()
	return c.ln.Close()
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.admit(conn)
	}
}

// admit validates a joining connection: preamble (magic + wire version),
// then the gob hello frame. A version or protocol mismatch is rejected
// cleanly — a reject frame naming the reason, then close — so a stale
// worker binary can never exchange misdecoded shuffle data.
func (c *Coordinator) admit(conn net.Conn) {
	fw := newFrameWriter(conn)
	fw.chaosPoint = chaosCoordSend
	fr := newFrameReader(conn)
	version, err := readPreamble(conn)
	if err != nil {
		conn.Close()
		return
	}
	if version != wireVersion {
		fw.write(frameReject, fmt.Appendf(nil,
			"mr: coordinator speaks wire version %d, worker speaks %d", wireVersion, version))
		conn.Close()
		return
	}
	typ, payload, err := fr.read()
	if err != nil || typ != frameHello {
		if err == nil {
			fw.write(frameReject, []byte("mr: expected hello frame"))
		}
		conn.Close()
		return
	}
	var hello wireHello
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&hello); err != nil {
		conn.Close()
		return
	}
	w := &workerConn{name: hello.WorkerName, conn: conn, fw: fw, lastBeat: time.Now()}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	// Re-registration: a self-healing worker rejoins under its prior
	// name. Prune the dead entries it supersedes so reconnect churn does
	// not grow the worker table without bound. A live same-name entry is
	// left alone (names are not required to be unique — test fleets share
	// one); if it is in fact a half-dead duplicate of this worker, its
	// stale replies are fenced by the at-most-once commit and its
	// connection dies on the next heartbeat check or send.
	kept := c.workers[:0]
	for _, ow := range c.workers {
		if ow.name == w.name && ow.dead {
			continue
		}
		kept = append(kept, ow)
	}
	for i := len(kept); i < len(c.workers); i++ {
		c.workers[i] = nil
	}
	c.workers = append(kept, w)
	c.cond.Broadcast()
	c.mu.Unlock()
	obsWorkersJoined.Inc()
	obsWorkersLive.Add(1)
	//dwlint:ignore goroleak -- readLoop blocks in a frame read, not a channel; dropWorker and Close close the conn, which errors the read and ends the loop
	go c.readLoop(w, fr)
}

// readLoop owns the worker's receive side: it routes heartbeats to the
// liveness clock and replies to the in-flight exchange, and converts any
// decode error into a worker death.
func (c *Coordinator) readLoop(w *workerConn, fr *frameReader) {
	for {
		typ, payload, err := fr.read()
		if err != nil {
			c.workerFailed(w, err)
			return
		}
		switch typ {
		case frameHeartbeat:
			obsHeartbeatsReceived.Inc()
			c.mu.Lock()
			w.lastBeat = time.Now()
			c.mu.Unlock()
		case frameReply:
			reply, err := decodeWireReply(payload)
			if err != nil {
				c.workerFailed(w, err)
				return
			}
			c.mu.Lock()
			w.lastBeat = time.Now()
			ch := w.pending
			w.pending = nil
			c.mu.Unlock()
			if ch != nil {
				ch <- taskOutcome{reply: reply}
			}
		default:
			c.workerFailed(w, fmt.Errorf("mr: unexpected frame type %d from worker %q", typ, w.name))
			return
		}
	}
}

// workerFailed marks a worker dead, closes its connection, and fails its
// in-flight exchange (if any) so the task is retried elsewhere.
func (c *Coordinator) workerFailed(w *workerConn, err error) {
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return
	}
	w.dead = true
	ch := w.pending
	w.pending = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	obsWorkersDead.Inc()
	obsWorkersLive.Add(-1)
	if w.conn != nil {
		w.conn.Close()
	}
	if ch != nil {
		ch <- taskOutcome{err: err}
	}
}

// WaitForWorkers blocks until at least n workers are connected and live or
// the timeout elapses.
func (c *Coordinator) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		live := c.liveWorkers()
		if live >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mr: only %d/%d workers joined within %v", live, n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *Coordinator) liveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := 0
	for _, w := range c.workers {
		if !w.dead {
			live++
		}
	}
	return live
}

func (c *Coordinator) timeout() time.Duration {
	if c.TaskTimeout > 0 {
		return c.TaskTimeout
	}
	return defaultTaskTimeout
}

func (c *Coordinator) heartbeatTimeout() time.Duration {
	if c.HeartbeatTimeout > 0 {
		return c.HeartbeatTimeout
	}
	return defaultHeartbeatTimeout
}

func (c *Coordinator) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

// ensureMonitor starts the heartbeat monitor on the first Run (after the
// tuning fields are final).
func (c *Coordinator) ensureMonitor() {
	c.monitorOnce.Do(func() { go c.monitor() })
}

// monitor periodically declares heartbeat-silent workers dead, reassigning
// their in-flight tasks mid-flight instead of waiting out the full task
// deadline.
func (c *Coordinator) monitor() {
	hb := c.heartbeatTimeout()
	interval := hb / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-hb)
		var stale []*workerConn
		c.mu.Lock()
		for _, w := range c.workers {
			// Shared-memory workers run in this process and have no link
			// that can silently die, so they send no heartbeats and are
			// exempt from the liveness clock (their failure modes — panic,
			// task overrun — are covered by executeWireTask's recover and
			// the exchange deadline).
			if w.local != nil {
				continue
			}
			if !w.dead && w.lastBeat.Before(cutoff) {
				stale = append(stale, w)
			}
		}
		c.mu.Unlock()
		for _, w := range stale {
			c.workerFailed(w, fmt.Errorf("mr: worker %q missed heartbeats for %v", w.name, hb))
		}
	}
}

// acquire pops a live idle worker, blocking while tasks are in flight on
// other workers. It fails when the coordinator is closed or when every
// known worker is dead and none is busy (nothing can ever free up) —
// unless RejoinGrace is set, in which case the all-dead state is tolerated
// for up to that long so reconnecting workers can re-register.
func (c *Coordinator) acquire() (*workerConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var allDeadSince time.Time
	for {
		if c.closed {
			return nil, errors.New("mr: coordinator closed")
		}
		busy := 0
		var idle *workerConn
		for _, w := range c.workers {
			if w.dead {
				continue
			}
			if w.busy {
				busy++
				continue
			}
			if idle == nil {
				idle = w
			}
		}
		if idle != nil {
			idle.busy = true
			return idle, nil
		}
		if len(c.workers) > 0 && busy == 0 {
			if c.RejoinGrace <= 0 {
				return nil, errors.New("mr: all workers are dead")
			}
			if allDeadSince.IsZero() {
				allDeadSince = time.Now()
			} else if time.Since(allDeadSince) >= c.RejoinGrace {
				return nil, fmt.Errorf("mr: all workers are dead (no rejoin within %v)", c.RejoinGrace)
			}
			// cond has no timed wait; nudge the loop so the grace deadline
			// is checked even if no worker event ever arrives.
			go func() {
				time.Sleep(10 * time.Millisecond)
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			}()
		} else {
			allDeadSince = time.Time{}
		}
		c.cond.Wait()
	}
}

// tryAcquire is acquire without blocking; it returns nil when no idle live
// worker exists right now (used to launch speculative backups only when
// spare capacity exists).
func (c *Coordinator) tryAcquire() *workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	for _, w := range c.workers {
		if !w.dead && !w.busy {
			w.busy = true
			return w
		}
	}
	return nil
}

// release returns a worker to the idle pool.
func (c *Coordinator) release(w *workerConn) {
	c.mu.Lock()
	w.busy = false
	c.cond.Broadcast()
	c.mu.Unlock()
}

// exchange sends one task to a worker and waits for its reply, the
// worker's death, or the task deadline — whichever happens first. A
// deadline overrun declares the worker dead so its slot is not reused.
func (c *Coordinator) exchange(w *workerConn, task wireTask) (wireReply, error) {
	ch := make(chan taskOutcome, 1)
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return wireReply{}, fmt.Errorf("mr: worker %q is dead", w.name)
	}
	w.pending = ch
	c.mu.Unlock()

	if err := w.sendTask(&task); err != nil {
		c.mu.Lock()
		if w.pending == ch {
			w.pending = nil
		}
		c.mu.Unlock()
		c.workerFailed(w, err)
		return wireReply{}, err
	}
	timer := time.NewTimer(c.timeout())
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.reply, out.err
	case <-timer.C:
		c.mu.Lock()
		if w.pending == ch {
			w.pending = nil
		}
		c.mu.Unlock()
		err := fmt.Errorf("mr: %s task %d timed out after %v on worker %q",
			task.Kind, task.TaskID, c.timeout(), w.name)
		c.workerFailed(w, err)
		return wireReply{}, err
	}
}

// validateReply rejects task-level failures and malformed map output: a
// worker returning fewer partitions than the job's reducer count would
// silently drop shuffle data, so a short Parts slice is a task failure and
// the attempt is retried.
func validateReply(task wireTask, reply wireReply) error {
	if reply.Err != "" {
		return errors.New(reply.Err)
	}
	if reply.TaskID != task.TaskID {
		return fmt.Errorf("mr: reply for task %d while running task %d", reply.TaskID, task.TaskID)
	}
	if task.Kind == "map" && len(reply.Parts) != task.Reducers {
		return fmt.Errorf("mr: map task %d returned %d partitions, want %d",
			task.TaskID, len(reply.Parts), task.Reducers)
	}
	return nil
}

// runTask executes one task, retrying on worker failure and optionally
// launching a speculative backup attempt. It returns the committed reply
// (first success wins — at-most-once commit) plus one TaskStat per
// attempt, with true attempt numbers.
func (c *Coordinator) runTask(task wireTask, phase *obs.Span) (wireReply, []TaskStat, error) {
	type attemptResult struct {
		reply   wireReply
		err     error
		attempt int
		dur     time.Duration
	}
	maxAttempts := c.attempts()
	results := make(chan attemptResult, maxAttempts+1)
	attempt, inFlight := 0, 0
	launch := func(w *workerConn) {
		attempt++
		inFlight++
		obsTasksLaunched.Inc()
		t := task
		t.Attempt = attempt
		go func(a int) {
			span := phase.Child(t.Kind)
			span.SetInt("task", int64(t.TaskID))
			span.SetInt("attempt", int64(a))
			span.SetStr("worker", w.name)
			t0 := time.Now()
			reply, err := c.exchange(w, t)
			c.release(w)
			if err == nil {
				err = validateReply(t, reply)
			}
			span.SetBool("failed", err != nil)
			span.End()
			results <- attemptResult{reply: reply, err: err, attempt: a, dur: time.Since(t0)}
		}(attempt)
	}

	w, err := c.acquire()
	if err != nil {
		return wireReply{}, nil, err
	}
	launch(w)

	var (
		stats     []TaskStat
		winner    wireReply
		committed bool
		lastErr   error
		spec      <-chan time.Time
	)
	if c.SpeculationAfter > 0 {
		spec = time.After(c.SpeculationAfter)
	}
	for {
		select {
		case r := <-results:
			inFlight--
			stats = append(stats, TaskStat{TaskID: task.TaskID, Attempt: r.attempt, Duration: r.dur, Failed: r.err != nil})
			if r.err == nil && !committed {
				committed = true
				winner = r.reply
			} else if r.err == nil {
				obsTaskCommitDups.Inc()
			}
			if r.err != nil {
				lastErr = r.err
			}
			if committed {
				// Wait out any straggling attempt so metrics stay complete
				// and no goroutine outlives the job.
				if inFlight == 0 {
					return winner, stats, nil
				}
				continue
			}
			if attempt < maxAttempts {
				w, err := c.acquire()
				if err != nil {
					if inFlight == 0 {
						return wireReply{}, stats, fmt.Errorf("mr: task %d: %w (last attempt: %v)", task.TaskID, err, lastErr)
					}
					continue
				}
				obsTaskRetries.Inc()
				launch(w)
				continue
			}
			if inFlight == 0 {
				return wireReply{}, stats, fmt.Errorf("mr: task %d failed after %d attempts: %w", task.TaskID, attempt, lastErr)
			}
		case <-spec:
			spec = nil
			if !committed && inFlight == 1 && attempt < maxAttempts {
				if w := c.tryAcquire(); w != nil {
					obsSpeculativeAttempts.Inc()
					launch(w)
				}
			}
		}
	}
}

// Run executes a registered job across the cluster. The coordinator also
// instantiates the job locally for the shuffle's partitioner/comparator.
func (c *Coordinator) Run(jobName string, params []byte) (*Result, error) {
	return c.RunWith(jobName, params, c.Options)
}

// RunWith is Run with explicit per-call options (overriding c.Options).
func (c *Coordinator) RunWith(jobName string, params []byte, opts JobOptions) (*Result, error) {
	job, err := LookupJob(jobName, params)
	if err != nil {
		return nil, err
	}
	if err := job.validate(); err != nil {
		return nil, err
	}
	c.ensureMonitor()
	if err := c.waitReady(10 * time.Second); err != nil {
		return nil, err
	}
	obsJobsRun.Inc()
	jobSpan := opts.Trace.Child("job:" + jobName)
	defer jobSpan.End()
	jobSpan.SetStr("engine", "cluster")
	jobSpan.SetInt("splits", int64(len(job.Splits)))
	start := time.Now()
	res := &Result{}
	res.Metrics.Job = jobName
	nred := job.reducers()

	// ---- Map phase (parallel across workers) ----
	type mapResult struct {
		id       int
		parts    [][]Pair
		stats    []TaskStat
		counters map[string]int64
		err      error
	}
	mapSpan := jobSpan.Child("map-phase")
	results := make(chan mapResult, len(job.Splits))
	for i, split := range job.Splits {
		go func(i int, split Split) {
			reply, stats, err := c.runTask(wireTask{
				Kind: "map", JobName: jobName, Params: params,
				TaskID: i, Split: split, Reducers: nred,
			}, mapSpan)
			results <- mapResult{id: i, parts: reply.Parts, stats: stats, counters: reply.Counters, err: err}
		}(i, split)
	}
	buckets := make([][]Pair, nred)
	mapOuts := make([][][]Pair, len(job.Splits))
	var firstErr error
	for range job.Splits {
		r := <-results
		res.Metrics.MapStats = append(res.Metrics.MapStats, r.stats...)
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		mapOuts[r.id] = r.parts
		res.Metrics.addUserCounters(r.counters)
	}
	mapSpan.End()
	if firstErr != nil {
		return nil, firstErr
	}
	res.Metrics.MapTasks = len(job.Splits)
	res.Metrics.MapRetries = countRetries(res.Metrics.MapStats)
	// Deterministic shuffle: concatenate in split order. Every parts slice
	// was validated to hold exactly nred partitions.
	shuffleSpan := jobSpan.Child("shuffle")
	for _, parts := range mapOuts {
		for p := 0; p < nred; p++ {
			buckets[p] = append(buckets[p], parts[p]...)
			for _, kv := range parts[p] {
				res.Metrics.ShuffleRecords++
				res.Metrics.ShuffleBytes += int64(len(kv.Key) + len(kv.Value))
			}
		}
	}
	obsShuffleRecords.Add(res.Metrics.ShuffleRecords)
	obsShuffleBytes.Add(res.Metrics.ShuffleBytes)
	for p := range buckets {
		sortPairs(job, buckets[p])
	}
	shuffleSpan.SetInt("records", res.Metrics.ShuffleRecords)
	shuffleSpan.SetInt("bytes", res.Metrics.ShuffleBytes)
	shuffleSpan.End()

	// ---- Reduce phase ----
	res.Partitions = make([][]Pair, nred)
	if job.Reduce == nil {
		copy(res.Partitions, buckets)
	} else {
		type redResult struct {
			id       int
			out      []Pair
			stats    []TaskStat
			counters map[string]int64
			err      error
		}
		reduceSpan := jobSpan.Child("reduce-phase")
		rch := make(chan redResult, nred)
		for p := 0; p < nred; p++ {
			go func(p int) {
				reply, stats, err := c.runTask(wireTask{
					Kind: "reduce", JobName: jobName, Params: params,
					TaskID: p, Bucket: buckets[p], Reducers: nred,
				}, reduceSpan)
				rch <- redResult{id: p, out: reply.Out, stats: stats, counters: reply.Counters, err: err}
			}(p)
		}
		for i := 0; i < nred; i++ {
			r := <-rch
			res.Metrics.ReduceStats = append(res.Metrics.ReduceStats, r.stats...)
			if r.err != nil {
				if firstErr == nil {
					firstErr = r.err
				}
				continue
			}
			res.Partitions[r.id] = r.out
			res.Metrics.addUserCounters(r.counters)
		}
		reduceSpan.End()
		if firstErr != nil {
			return nil, firstErr
		}
		res.Metrics.ReduceTasks = nred
		res.Metrics.ReduceRetries = countRetries(res.Metrics.ReduceStats)
	}
	for _, part := range res.Partitions {
		for _, kv := range part {
			res.Metrics.OutputRecords++
			res.Metrics.OutputBytes += int64(len(kv.Key) + len(kv.Value))
		}
	}
	res.Metrics.WallTime = time.Since(start)
	return res, nil
}

// waitReady blocks until at least one live worker is connected. Unlike
// WaitForWorkers it fails fast when workers joined but all have since
// died — nothing would ever execute the job's tasks. With RejoinGrace set
// the all-dead state is tolerated within the deadline, mirroring acquire.
func (c *Coordinator) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		closed := c.closed
		total := len(c.workers)
		live := 0
		for _, w := range c.workers {
			if !w.dead {
				live++
			}
		}
		c.mu.Unlock()
		if closed {
			return errors.New("mr: coordinator closed")
		}
		if live >= 1 {
			return nil
		}
		if total > 0 && c.RejoinGrace <= 0 {
			return errors.New("mr: all workers are dead")
		}
		if time.Now().After(deadline) {
			if total > 0 {
				return fmt.Errorf("mr: all workers are dead (no rejoin within %v)", timeout)
			}
			return fmt.Errorf("mr: no worker joined within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// WorkerOptions tunes a worker's Serve loop.
type WorkerOptions struct {
	// HeartbeatEvery is the heartbeat send interval; 0 means 250ms.
	HeartbeatEvery time.Duration
	// DisableHeartbeat suppresses heartbeats entirely (tests use it to
	// exercise the coordinator's liveness monitor).
	DisableHeartbeat bool
	// TaskHook, when non-nil, runs before each task execution; returning
	// an error makes the worker drop its connection without replying,
	// simulating a crash mid-task (tests use it for fault injection).
	TaskHook func(kind string, taskID, attempt int) error
	// ReconnectMax makes the worker self-healing: when its coordinator
	// connection dies for any reason other than a clean shutdown or a
	// protocol reject, the worker re-dials with jittered exponential
	// backoff (see backoff.go) and re-registers under its prior name.
	// The coordinator fences the stale registration; any in-flight task
	// the old connection carried is retried and de-duplicated by the
	// at-most-once commit. The worker gives up after this many
	// consecutive attempts that fail before completing the hello
	// exchange (attempts that re-register reset the count). 0 keeps the
	// single-session behavior.
	ReconnectMax int
	// ReconnectBase/ReconnectCap bound the reconnect backoff delays;
	// zero values default to 50ms and 5s.
	ReconnectBase time.Duration
	ReconnectCap  time.Duration
	// Trace, when non-nil, receives a child span per successful
	// re-registration.
	Trace *obs.Span
}

func (o WorkerOptions) heartbeatEvery() time.Duration {
	if o.HeartbeatEvery > 0 {
		return o.HeartbeatEvery
	}
	return workerHeartbeatEvery
}

// Serve runs a worker loop: dial the coordinator, announce, heartbeat, and
// execute tasks until the connection closes, a shutdown task arrives, or
// stop is closed.
func Serve(coordinatorAddr, name string, stop <-chan struct{}) error {
	return ServeWorker(coordinatorAddr, name, stop, WorkerOptions{})
}

// sessionLostError wraps connection deaths a self-healing worker may
// retry. Protocol rejects and clean shutdowns never carry it.
type sessionLostError struct{ cause error }

func (e *sessionLostError) Error() string { return e.cause.Error() }
func (e *sessionLostError) Unwrap() error { return e.cause }

// ServeWorker is Serve with explicit options. With opts.ReconnectMax > 0
// the worker survives coordinator connection loss: each lost session is
// retried after a jittered exponential backoff until a session ends
// cleanly, the coordinator rejects the worker, or ReconnectMax consecutive
// attempts fail without ever completing the hello exchange.
func ServeWorker(coordinatorAddr, name string, stop <-chan struct{}, opts WorkerOptions) error {
	if opts.ReconnectMax <= 0 {
		_, err := serveSession(coordinatorAddr, name, stop, opts, false)
		var lost *sessionLostError
		if errors.As(err, &lost) {
			// Single-session contract (the historical one): EOF and local
			// closes report nil, transport errors surface as-is.
			if errors.Is(lost.cause, io.EOF) || errors.Is(lost.cause, net.ErrClosed) {
				return nil
			}
			return lost.cause
		}
		return err
	}
	// Jitter is seeded from the worker name: deterministic per worker,
	// decorrelated across a fleet rejoining after a coordinator blip.
	h := fnv.New64a()
	h.Write([]byte(name))
	bo := NewBackoff(opts.ReconnectBase, opts.ReconnectCap, int64(h.Sum64()))
	registered := false
	fails := 0
	for {
		established, err := serveSession(coordinatorAddr, name, stop, opts, registered)
		if established {
			registered = true
			fails = 0
		}
		if err == nil {
			return nil
		}
		var lost *sessionLostError
		if !errors.As(err, &lost) {
			return err // reject or other permanent failure: never retried
		}
		if stopped(stop) {
			return nil
		}
		fails++
		if fails > opts.ReconnectMax {
			return fmt.Errorf("mr: worker %q giving up after %d consecutive failed reconnect attempts: %w",
				name, opts.ReconnectMax, lost.cause)
		}
		select {
		case <-stop:
			return nil
		case <-time.After(bo.Delay(fails)):
		}
	}
}

// stopped reports whether the worker's stop channel has fired.
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// serveSession runs one dial-to-disconnect worker session. established
// reports whether the hello exchange completed (the coordinator saw this
// registration); rejoining marks a re-registration after a previously
// established session, counted as a reconnect.
func serveSession(coordinatorAddr, name string, stop <-chan struct{}, opts WorkerOptions, rejoining bool) (established bool, err error) {
	conn, err := net.Dial("tcp", coordinatorAddr)
	if err != nil {
		return false, &sessionLostError{cause: err}
	}
	defer conn.Close()
	switch act := chaos.Point(chaosWorkerDial); act.Kind {
	case chaos.Fail:
		return false, &sessionLostError{cause: act.Err}
	case chaos.Delay:
		time.Sleep(act.Sleep)
	}
	// A per-session watcher closes the connection when stop fires;
	// sessionDone retires it so reconnect attempts don't leak a goroutine
	// per session.
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	if stop != nil {
		go func() {
			select {
			case <-stop:
				conn.Close()
			case <-sessionDone:
			}
		}()
	}
	var sendMu sync.Mutex
	fw := newFrameWriter(conn)
	fw.chaosPoint = chaosWorkerSend
	fr := newFrameReader(conn)
	if _, err := conn.Write(appendPreamble(nil)); err != nil {
		return false, &sessionLostError{cause: err}
	}
	hello, err := GobEncode(&wireHello{WorkerName: name})
	if err != nil {
		return false, err
	}
	if err := fw.write(frameHello, hello); err != nil {
		return false, &sessionLostError{cause: err}
	}
	if rejoining {
		obsWorkerReconnects.Inc()
		rs := opts.Trace.Child("worker-reconnect")
		rs.SetStr("worker", name)
		rs.End()
	}
	// Heartbeats flow from a dedicated goroutine so a long-running task
	// does not silence them.
	hbStop := make(chan struct{})
	defer close(hbStop)
	if !opts.DisableHeartbeat {
		go func() {
			ticker := time.NewTicker(opts.heartbeatEvery())
			defer ticker.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-ticker.C:
				}
				sendMu.Lock()
				err := fw.write(frameHeartbeat, nil)
				sendMu.Unlock()
				if err != nil {
					return
				}
				obsWorkerBeatsSent.Inc()
			}
		}()
	}
	for {
		typ, payload, err := fr.read()
		if err != nil {
			if stopped(stop) {
				return true, nil
			}
			return true, &sessionLostError{cause: err}
		}
		if typ == frameReject {
			return true, fmt.Errorf("mr: coordinator rejected worker %q: %s", name, payload)
		}
		if typ != frameTask {
			return true, &sessionLostError{cause: fmt.Errorf("mr: unexpected frame type %d from coordinator", typ)}
		}
		task, err := decodeWireTask(payload)
		if err != nil {
			return true, &sessionLostError{cause: err}
		}
		if task.Kind == "shutdown" {
			// Graceful drain: any in-flight task already replied (tasks run
			// in this loop), so just disconnect.
			return true, nil
		}
		if opts.TaskHook != nil {
			if err := opts.TaskHook(task.Kind, task.TaskID, task.Attempt); err != nil {
				conn.Close()
				return true, &sessionLostError{cause: err}
			}
		}
		switch act := chaos.Point(chaosWorkerTask); act.Kind {
		case chaos.Fail:
			conn.Close()
			return true, &sessionLostError{cause: act.Err}
		case chaos.Delay:
			time.Sleep(act.Sleep)
		}
		reply, done := executeWireTask(task)
		buf := appendWireReply(getByteBuf(), &reply)
		sendMu.Lock()
		err = fw.write(frameReply, buf)
		sendMu.Unlock()
		putByteBuf(buf)
		// The reply is serialized; no Pair can reference the task's arenas
		// any more, so their blocks are safe to recycle.
		done()
		if err != nil {
			return true, &sessionLostError{cause: err}
		}
	}
}

// executeWireTask runs one task attempt on the worker, capturing the
// attempt's user counters and busy time in the reply so cluster metrics
// carry the same information as local runs. Emitted records live in
// pooled arenas; the caller must invoke done once the reply has been
// serialized (and no Pair in it is referenced any more) so the arena
// blocks recycle.
func executeWireTask(task wireTask) (reply wireReply, done func()) {
	start := time.Now()
	reply.TaskID = task.TaskID
	reply.Attempt = task.Attempt
	counters := NewCounters()
	arena := &byteArena{}
	done = arena.release
	defer func() {
		if r := recover(); r != nil {
			reply = wireReply{TaskID: task.TaskID, Attempt: task.Attempt, Err: fmt.Sprintf("panic: %v", r)}
		}
		reply.Duration = time.Since(start)
		obsWorkerTasksExecuted.Inc()
		obsTaskDurationUS.Observe(reply.Duration.Microseconds())
	}()
	job, err := LookupJob(task.JobName, task.Params)
	if err != nil {
		reply.Err = err.Error()
		return reply, done
	}
	ctx := TaskContext{TaskID: task.TaskID, Attempt: task.Attempt, Counters: counters}
	switch task.Kind {
	case "map":
		mc := newMapCollector(job, task.Reducers)
		done = mc.arena.release
		if err := job.Map(ctx, task.Split, mc.emit); err != nil {
			reply.Err = err.Error()
			return reply, done
		}
		if job.Combine != nil {
			for p := range mc.parts {
				// The combiner sees the same TaskContext (attempt number,
				// counters) as the map function, matching the Local engine.
				combined, err := combinePartition(job, ctx, &mc.arena, mc.parts[p])
				if err != nil {
					reply.Err = err.Error()
					return reply, done
				}
				mc.parts[p] = combined
			}
		}
		reply.Parts = mc.parts
	case "reduce":
		var out []Pair
		if err := reduceBucket(job, ctx, task.Bucket, emitInto(arena, &out)); err != nil {
			reply.Err = err.Error()
			return reply, done
		}
		reply.Out = out
	default:
		reply.Err = fmt.Sprintf("mr: unknown task kind %q", task.Kind)
	}
	reply.Counters = counters.snapshot()
	return reply, done
}
