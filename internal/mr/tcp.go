package mr

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// The cluster engine: a coordinator accepts worker connections over TCP and
// assigns map/reduce tasks of registered jobs; workers instantiate jobs via
// the shared registry, execute tasks, and stream results back. Shuffle data
// flows through the coordinator (adequate for the data volumes the paper's
// algorithms shuffle: O(N/2^h) rows, not O(N) records). Dead or slow
// workers are detected by per-task deadlines and their tasks reassigned,
// giving the retry semantics Hadoop provides.

// Wire messages. Exactly one of the request payloads is set per kind.
type wireHello struct {
	WorkerName string
}

type wireTask struct {
	Kind     string // "map", "reduce" or "shutdown"
	JobName  string
	Params   []byte
	TaskID   int
	Split    Split  // map tasks
	Bucket   []Pair // reduce tasks: the sorted key group stream
	Reducers int
}

type wireReply struct {
	TaskID int
	Err    string
	Parts  [][]Pair // map output per partition
	Out    []Pair   // reduce output
}

func init() {
	gob.Register(wireHello{})
}

// Coordinator runs cluster jobs across connected workers.
type Coordinator struct {
	ln net.Listener

	mu      sync.Mutex
	workers []*workerConn
	// TaskTimeout bounds one task execution; 0 means 2 minutes.
	TaskTimeout time.Duration
}

type workerConn struct {
	name string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	dead bool
}

// NewCoordinator listens on addr (e.g. "127.0.0.1:0") and returns
// immediately; workers join asynchronously via Serve.
func NewCoordinator(addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{ln: ln}
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listen address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close shuts the coordinator down and disconnects workers.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	for _, w := range c.workers {
		w.conn.Close()
	}
	c.mu.Unlock()
	return c.ln.Close()
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.admit(conn)
	}
}

func (c *Coordinator) admit(conn net.Conn) {
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	var hello wireHello
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return
	}
	c.mu.Lock()
	c.workers = append(c.workers, &workerConn{name: hello.WorkerName, conn: conn, enc: enc, dec: dec})
	c.mu.Unlock()
}

// WaitForWorkers blocks until at least n workers have joined or the
// timeout elapses.
func (c *Coordinator) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		live := 0
		for _, w := range c.workers {
			if !w.dead {
				live++
			}
		}
		c.mu.Unlock()
		if live >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mr: only %d/%d workers joined within %v", live, n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *Coordinator) timeout() time.Duration {
	if c.TaskTimeout > 0 {
		return c.TaskTimeout
	}
	return 2 * time.Minute
}

// acquire pops a live idle worker, blocking while tasks are in flight on
// other workers. It fails only when every known worker is dead and none is
// busy (nothing can ever free up).
func (c *Coordinator) acquire() (*workerConn, error) {
	for {
		c.mu.Lock()
		busy := 0
		for i, w := range c.workers {
			if w == nil {
				busy++
				continue
			}
			if !w.dead {
				c.workers[i] = nil // mark busy
				c.mu.Unlock()
				return w, nil
			}
		}
		total := len(c.workers)
		c.mu.Unlock()
		if total > 0 && busy == 0 {
			return nil, errors.New("mr: all workers are dead")
		}
		time.Sleep(time.Millisecond)
	}
}

// release returns a worker to the idle pool (or records its death).
func (c *Coordinator) release(w *workerConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, slot := range c.workers {
		if slot == nil {
			c.workers[i] = w
			return
		}
	}
	c.workers = append(c.workers, w)
}

// runTask executes one task on some worker, retrying on worker failure.
func (c *Coordinator) runTask(task wireTask, maxAttempts int) (wireReply, error) {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		w, err := c.acquire()
		if err != nil {
			return wireReply{}, err
		}
		reply, err := c.exchange(w, task)
		if err != nil {
			w.dead = true
			w.conn.Close()
			c.release(w)
			lastErr = err
			continue
		}
		c.release(w)
		if reply.Err != "" {
			lastErr = errors.New(reply.Err)
			continue
		}
		return reply, nil
	}
	return wireReply{}, fmt.Errorf("mr: task %d failed after %d attempts: %w", task.TaskID, maxAttempts, lastErr)
}

func (c *Coordinator) exchange(w *workerConn, task wireTask) (wireReply, error) {
	w.conn.SetDeadline(time.Now().Add(c.timeout()))
	defer w.conn.SetDeadline(time.Time{})
	if err := w.enc.Encode(&task); err != nil {
		return wireReply{}, err
	}
	var reply wireReply
	if err := w.dec.Decode(&reply); err != nil {
		return wireReply{}, err
	}
	return reply, nil
}

// Run executes a registered job across the cluster. The coordinator also
// instantiates the job locally for the shuffle's partitioner/comparator.
func (c *Coordinator) Run(jobName string, params []byte) (*Result, error) {
	job, err := LookupJob(jobName, params)
	if err != nil {
		return nil, err
	}
	if err := job.validate(); err != nil {
		return nil, err
	}
	if err := c.WaitForWorkers(1, 10*time.Second); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{}
	res.Metrics.Job = jobName
	nred := job.reducers()

	// ---- Map phase (parallel across workers) ----
	type mapResult struct {
		id    int
		parts [][]Pair
		dur   time.Duration
		err   error
	}
	results := make(chan mapResult, len(job.Splits))
	for i, split := range job.Splits {
		go func(i int, split Split) {
			t0 := time.Now()
			reply, err := c.runTask(wireTask{
				Kind: "map", JobName: jobName, Params: params,
				TaskID: i, Split: split, Reducers: nred,
			}, 3)
			results <- mapResult{id: i, parts: reply.Parts, dur: time.Since(t0), err: err}
		}(i, split)
	}
	buckets := make([][]Pair, nred)
	mapOuts := make([][][]Pair, len(job.Splits))
	for range job.Splits {
		r := <-results
		if r.err != nil {
			return nil, r.err
		}
		mapOuts[r.id] = r.parts
		res.Metrics.MapStats = append(res.Metrics.MapStats, TaskStat{TaskID: r.id, Attempt: 1, Duration: r.dur})
	}
	res.Metrics.MapTasks = len(job.Splits)
	// Deterministic shuffle: concatenate in split order.
	for _, parts := range mapOuts {
		for p := 0; p < nred && p < len(parts); p++ {
			buckets[p] = append(buckets[p], parts[p]...)
			for _, kv := range parts[p] {
				res.Metrics.ShuffleRecords++
				res.Metrics.ShuffleBytes += int64(len(kv.Key) + len(kv.Value))
			}
		}
	}
	for p := range buckets {
		b := buckets[p]
		sort.SliceStable(b, func(i, j int) bool { return job.compare(b[i].Key, b[j].Key) < 0 })
	}

	// ---- Reduce phase ----
	res.Partitions = make([][]Pair, nred)
	if job.Reduce == nil {
		copy(res.Partitions, buckets)
	} else {
		type redResult struct {
			id  int
			out []Pair
			dur time.Duration
			err error
		}
		rch := make(chan redResult, nred)
		for p := 0; p < nred; p++ {
			go func(p int) {
				t0 := time.Now()
				reply, err := c.runTask(wireTask{
					Kind: "reduce", JobName: jobName, Params: params,
					TaskID: p, Bucket: buckets[p], Reducers: nred,
				}, 3)
				rch <- redResult{id: p, out: reply.Out, dur: time.Since(t0), err: err}
			}(p)
		}
		for i := 0; i < nred; i++ {
			r := <-rch
			if r.err != nil {
				return nil, r.err
			}
			res.Partitions[r.id] = r.out
			res.Metrics.ReduceStats = append(res.Metrics.ReduceStats, TaskStat{TaskID: r.id, Attempt: 1, Duration: r.dur})
		}
		res.Metrics.ReduceTasks = nred
	}
	for _, part := range res.Partitions {
		for _, kv := range part {
			res.Metrics.OutputRecords++
			res.Metrics.OutputBytes += int64(len(kv.Key) + len(kv.Value))
		}
	}
	res.Metrics.WallTime = time.Since(start)
	return res, nil
}

// Serve runs a worker loop: dial the coordinator, announce, execute tasks
// until the connection closes or stop is closed.
func Serve(coordinatorAddr, name string, stop <-chan struct{}) error {
	conn, err := net.Dial("tcp", coordinatorAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if stop != nil {
		go func() {
			<-stop
			conn.Close()
		}()
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&wireHello{WorkerName: name}); err != nil {
		return err
	}
	for {
		var task wireTask
		if err := dec.Decode(&task); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		reply := executeWireTask(task)
		if err := enc.Encode(&reply); err != nil {
			return err
		}
		if task.Kind == "shutdown" {
			return nil
		}
	}
}

func executeWireTask(task wireTask) (reply wireReply) {
	reply.TaskID = task.TaskID
	defer func() {
		if r := recover(); r != nil {
			reply = wireReply{TaskID: task.TaskID, Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	job, err := LookupJob(task.JobName, task.Params)
	if err != nil {
		reply.Err = err.Error()
		return reply
	}
	switch task.Kind {
	case "map":
		parts := make([][]Pair, task.Reducers)
		emit := func(key, value []byte) error {
			p := job.partition(key)
			parts[p] = append(parts[p], Pair{Key: key, Value: value})
			return nil
		}
		if err := job.Map(TaskContext{TaskID: task.TaskID, Attempt: 1}, task.Split, emit); err != nil {
			reply.Err = err.Error()
			return reply
		}
		if job.Combine != nil {
			for p := range parts {
				combined, err := combinePartition(job, TaskContext{TaskID: task.TaskID}, parts[p])
				if err != nil {
					reply.Err = err.Error()
					return reply
				}
				parts[p] = combined
			}
		}
		reply.Parts = parts
	case "reduce":
		var out []Pair
		emit := func(key, value []byte) error {
			out = append(out, Pair{Key: key, Value: value})
			return nil
		}
		if err := reduceBucket(job, TaskContext{TaskID: task.TaskID, Attempt: 1}, task.Bucket, emit); err != nil {
			reply.Err = err.Error()
			return reply
		}
		reply.Out = out
	case "shutdown":
	default:
		reply.Err = fmt.Sprintf("mr: unknown task kind %q", task.Kind)
	}
	return reply
}
