package mr

import "encoding/binary"

// Variable-length integer codecs for the shuffle's hot paths. Two
// families, chosen by where the bytes land:
//
//   - Values (never compared): plain LEB128 via AppendUvarint /
//     AppendVarint — shortest possible, not order-preserving.
//   - Key components: AppendOrderedUvarint, an SQLite4-style varint
//     whose encodings compare correctly under bytes.Compare even when
//     their lengths differ, so sorted shuffles stay correct. Values
//     <= 240 encode in one byte, so workloads with small key components
//     also keep the fixed-key-width property the radix fast path needs.
//
// Like the fixed-width codecs in codec.go, the Append variants extend a
// caller scratch buffer; the allocating Encode variants exist for cold
// paths and tests (dwlint's wireappend check flags them in task hot
// loops, exactly as it does EncodeUint64).

// AppendUvarint appends the LEB128 encoding of v (1 byte for v < 128,
// up to 10 bytes). Not order-preserving; use only for values.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint decodes AppendUvarint output from the front of b, returning
// the value and the number of bytes read (n <= 0 means malformed, as
// with encoding/binary.Uvarint).
func Uvarint(b []byte) (uint64, int) {
	return binary.Uvarint(b)
}

// AppendVarint appends the zigzag LEB128 encoding of v: small-magnitude
// values of either sign stay short. Not order-preserving; values only.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// Varint decodes AppendVarint output from the front of b.
func Varint(b []byte) (int64, int) {
	return binary.Varint(b)
}

// EncodeUvarint is the allocating form of AppendUvarint.
func EncodeUvarint(v uint64) []byte {
	return AppendUvarint(nil, v)
}

// AppendOrderedUvarint appends a memcmp-ordered variable-length
// encoding of v (the SQLite4 varint): for any a < b the encoding of a
// compares below the encoding of b under bytes.Compare, regardless of
// their lengths, so it is safe inside sort keys. Sizes:
//
//	v <= 240                  1 byte
//	v <= 2287                 2 bytes
//	v <= 67823                3 bytes
//	otherwise                 1 tag byte + 3..8 big-endian payload bytes
func AppendOrderedUvarint(dst []byte, v uint64) []byte {
	switch {
	case v <= 240:
		return append(dst, byte(v))
	case v <= 2287:
		v -= 240
		return append(dst, byte(241+v>>8), byte(v))
	case v <= 67823:
		v -= 2288
		return append(dst, 249, byte(v>>8), byte(v))
	default:
		k := 3
		for k < 8 && v>>(8*k) != 0 {
			k++
		}
		dst = append(dst, byte(247+k))
		for i := k - 1; i >= 0; i-- {
			dst = append(dst, byte(v>>(8*i)))
		}
		return dst
	}
}

// EncodeOrderedUvarint is the allocating form of AppendOrderedUvarint.
func EncodeOrderedUvarint(v uint64) []byte {
	return AppendOrderedUvarint(nil, v)
}

// OrderedUvarint decodes AppendOrderedUvarint output from the front of
// b, returning the value and the number of bytes consumed; n == 0 means
// b is empty or truncated.
func OrderedUvarint(b []byte) (v uint64, n int) {
	if len(b) == 0 {
		return 0, 0
	}
	b0 := b[0]
	switch {
	case b0 <= 240:
		return uint64(b0), 1
	case b0 <= 248:
		if len(b) < 2 {
			return 0, 0
		}
		return 240 + uint64(b0-241)<<8 + uint64(b[1]), 2
	case b0 == 249:
		if len(b) < 3 {
			return 0, 0
		}
		return 2288 + uint64(b[1])<<8 + uint64(b[2]), 3
	default:
		k := int(b0) - 247 // payload length 3..8
		if len(b) < 1+k {
			return 0, 0
		}
		for i := 1; i <= k; i++ {
			v = v<<8 | uint64(b[i])
		}
		return v, 1 + k
	}
}
