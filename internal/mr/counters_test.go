package mr

import (
	"errors"
	"testing"
	"time"
)

func counterJob(texts []string) *Job {
	job := wordCountJob(texts, 2)
	inner := job.Map
	job.Map = func(ctx TaskContext, split Split, emit Emit) error {
		ctx.Counters.Add("map.splits", 1)
		ctx.Counters.Add("map.bytes", int64(len(split.Payload)))
		return inner(ctx, split, emit)
	}
	innerReduce := job.Reduce
	job.Reduce = func(ctx TaskContext, key []byte, values [][]byte, emit Emit) error {
		ctx.Counters.Add("reduce.groups", 1)
		return innerReduce(ctx, key, values, emit)
	}
	return job
}

func TestCountersAggregate(t *testing.T) {
	res, err := (&Local{}).Run(counterJob([]string{"a b", "c d e", "a"}))
	if err != nil {
		t.Fatal(err)
	}
	uc := res.Metrics.UserCounters
	if uc["map.splits"] != 3 {
		t.Fatalf("map.splits = %d, want 3", uc["map.splits"])
	}
	if uc["map.bytes"] != int64(len("a b")+len("c d e")+len("a")) {
		t.Fatalf("map.bytes = %d", uc["map.bytes"])
	}
	if uc["reduce.groups"] != 5 {
		t.Fatalf("reduce.groups = %d, want 5 distinct words", uc["reduce.groups"])
	}
}

func TestCountersNotDoubleCountedByRetries(t *testing.T) {
	failed := false
	eng := &Local{FailureInjector: func(kind string, ctx TaskContext) error {
		if kind == "map" && ctx.TaskID == 0 && !failed {
			failed = true
			return errors.New("injected")
		}
		return nil
	}}
	res, err := eng.Run(counterJob([]string{"x", "y"}))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.UserCounters["map.splits"]; got != 2 {
		t.Fatalf("map.splits = %d after a retry, want 2 (no double count)", got)
	}
}

func TestCountersNotDoubleCountedBySpeculation(t *testing.T) {
	eng := &Local{
		Workers:          4,
		SpeculationAfter: 10 * time.Millisecond,
		DelayInjector: func(kind string, ctx TaskContext) {
			if kind == "map" && ctx.TaskID == 0 && ctx.Attempt == 1 {
				time.Sleep(80 * time.Millisecond)
			}
		},
	}
	res, err := eng.Run(counterJob([]string{"p q", "r"}))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.UserCounters["map.splits"]; got != 2 {
		t.Fatalf("map.splits = %d with speculation, want 2", got)
	}
}

func TestCountersNilSafety(t *testing.T) {
	var c *Counters
	c.Add("x", 1) // must not panic
	if c.Get("x") != 0 || c.Names() != nil {
		t.Fatal("nil counters misbehave")
	}
	cc := NewCounters()
	cc.Add("b", 2)
	cc.Add("a", 1)
	if got := cc.Names(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("names = %v", got)
	}
	if cc.Get("b") != 2 {
		t.Fatal("get")
	}
}
