package mr

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Peer transport: the engine's framed wire protocol — preamble/version
// gate, CRC32-C trailer, bounded frame sizes, chaos instrumentation —
// exposed as a point-to-point connection for other subsystems. The serve
// tier's router↔node links ride this instead of inventing a second
// transport, so every guarantee wire.go documents (a corrupt or
// oversized frame kills the connection, mixed versions are rejected
// before any data is exchanged) holds for shard traffic too.
//
// Frame types >= PeerFrameBase are the caller's to define; heartbeats
// use FrameHeartbeat and membership control traffic uses FrameEpoch,
// both exempt from chaos injection. One side dials (DialPeer, sends the
// preamble), the other accepts (AcceptPeer, validates it and answers a
// reject frame on version mismatch).

// PeerConn is one framed connection between two peers. Send may be
// called concurrently; Recv must be driven by a single reader, the
// usual ownership shape for both the dialing side (one exchange at a
// time under the caller's lock) and the accepting side (one reader
// loop per connection).
type PeerConn struct {
	conn net.Conn
	fr   *frameReader

	sendMu sync.Mutex
	fw     *frameWriter // guarded by sendMu
}

func newPeerConn(conn net.Conn, chaosPoint string) *PeerConn {
	fw := newFrameWriter(conn)
	fw.chaosPoint = chaosPoint
	return &PeerConn{conn: conn, fr: newFrameReader(conn), fw: fw}
}

// DialPeer connects to addr and sends the wire preamble. chaosPoint,
// when non-empty, names the failpoint evaluated per outbound data frame
// (drop, delay, corrupt, partial — see internal/chaos); the serve
// router passes its serve.forward point here so link faults are
// injected at the same layer real ones occur.
func DialPeer(addr string, timeout time.Duration, chaosPoint string) (*PeerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(appendPreamble(nil)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mr: peer preamble: %w", err)
	}
	return newPeerConn(conn, chaosPoint), nil
}

// AcceptPeer validates the preamble on an accepted connection. A
// version mismatch is answered with a reject frame naming both
// versions, then the connection is closed — same contract the
// coordinator applies to stale workers.
func AcceptPeer(conn net.Conn, chaosPoint string) (*PeerConn, error) {
	version, err := readPreamble(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("mr: peer preamble: %w", err)
	}
	if version != wireVersion {
		fw := newFrameWriter(conn)
		fw.write(frameReject, fmt.Appendf(nil,
			"mr: peer speaks wire version %d, this side requires %d", version, wireVersion))
		conn.Close()
		return nil, fmt.Errorf("mr: peer wire version %d, want %d", version, wireVersion)
	}
	return newPeerConn(conn, chaosPoint), nil
}

// Send writes one frame. typ must be FrameHeartbeat, FrameEpoch, or a
// caller-defined type >= PeerFrameBase; the engine's own codes are not
// valid on peer links.
func (p *PeerConn) Send(typ byte, payload []byte) error {
	if typ != FrameHeartbeat && typ != FrameEpoch && typ < PeerFrameBase {
		return fmt.Errorf("mr: peer frame type %d is reserved for the engine", typ)
	}
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	return p.fw.write(typ, payload)
}

// Recv reads one frame, verifying the CRC32-C trailer. A reject frame
// from the remote side surfaces as an error carrying its reason. The
// returned payload is a fresh buffer the caller may alias indefinitely.
func (p *PeerConn) Recv() (byte, []byte, error) {
	typ, payload, err := p.fr.read()
	if err != nil {
		return 0, nil, err
	}
	if typ == frameReject {
		return 0, nil, fmt.Errorf("mr: peer rejected connection: %s", payload)
	}
	return typ, payload, nil
}

// SetDeadline bounds both the next Send and the next Recv.
func (p *PeerConn) SetDeadline(t time.Time) error { return p.conn.SetDeadline(t) }

// RemoteAddr names the other side, for logs and errors.
func (p *PeerConn) RemoteAddr() net.Addr { return p.conn.RemoteAddr() }

// Close closes the underlying connection; a blocked Recv unblocks with
// an error.
func (p *PeerConn) Close() error { return p.conn.Close() }
