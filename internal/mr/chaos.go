package mr

// Chaos failpoints of the cluster engine, the package's full set in one
// place (enforced by dwlint's chaospoint analyzer — every chaos.Point
// call site must name a constant declared in its package's chaos.go).
// The points sit permanently in production paths; with no injector
// installed each costs one atomic load (see package chaos).
const (
	// chaosWorkerDial fires after a worker's dial succeeds, before the
	// preamble: Fail aborts the connection attempt (the redial/backoff
	// path treats it like a refused connection).
	chaosWorkerDial = "mr.worker.dial"
	// chaosWorkerTask fires before each task execution on the worker:
	// Fail severs the connection without replying (a mid-task crash,
	// like WorkerOptions.TaskHook), Delay stalls the worker.
	chaosWorkerTask = "mr.worker.task"
	// chaosWorkerSend fires inside the worker's frame writer on data
	// frames (replies; hello and heartbeats are exempt so hit counts
	// stay deterministic): Fail drops the connection, Delay slows the
	// link, Corrupt flips one post-checksum bit, Partial truncates the
	// frame mid-write.
	chaosWorkerSend = "mr.worker.send"
	// chaosCoordSend is chaosWorkerSend for the coordinator's side (task
	// frames).
	chaosCoordSend = "mr.coord.send"
)
