package mr

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// varintBoundaries are the edges of every encoding-size class of the
// ordered varint, ±1.
var varintBoundaries = []uint64{
	0, 1, 127, 128, 239, 240, 241, 2286, 2287, 2288, 2289,
	67822, 67823, 67824, 1 << 24, 1<<24 - 1, 1<<24 + 1,
	1<<32 - 1, 1 << 32, 1<<40 - 1, 1 << 40, 1<<48 - 1, 1 << 48,
	1<<56 - 1, 1 << 56, math.MaxUint64 - 1, math.MaxUint64,
}

func TestOrderedUvarintRoundTrip(t *testing.T) {
	for _, v := range varintBoundaries {
		enc := AppendOrderedUvarint(nil, v)
		got, n := OrderedUvarint(enc)
		if n != len(enc) || got != v {
			t.Fatalf("round trip of %d: encoded %d bytes, decoded (%d, %d)", v, len(enc), got, n)
		}
		if len(enc) > 9 {
			t.Fatalf("encoding of %d is %d bytes, want <= 9", v, len(enc))
		}
		if v <= 240 && len(enc) != 1 {
			t.Fatalf("small value %d took %d bytes", v, len(enc))
		}
		// Decoding with a suffix must consume exactly the encoding.
		if got, n := OrderedUvarint(append(enc, 0xAB)); n != len(enc) || got != v {
			t.Fatalf("decode with trailing byte diverged for %d", v)
		}
		// Truncations must be rejected.
		for cut := 0; cut < len(enc); cut++ {
			if _, n := OrderedUvarint(enc[:cut]); n != 0 {
				t.Fatalf("truncated encoding of %d at %d decoded with n=%d", v, cut, n)
			}
		}
	}
}

// TestOrderedUvarintOrderProperty pins the reason the codec may appear
// inside sort keys: bytes.Compare of encodings equals numeric order,
// even across different encoded lengths.
func TestOrderedUvarintOrderProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		ea := AppendOrderedUvarint(nil, a)
		eb := AppendOrderedUvarint(nil, b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// quick's uniform uint64s rarely cross size classes; check the
	// boundary grid exhaustively.
	for _, a := range varintBoundaries {
		for _, b := range varintBoundaries {
			if !f(a, b) {
				t.Fatalf("order violated for (%d, %d)", a, b)
			}
		}
	}
}

func TestUvarintRoundTripProperty(t *testing.T) {
	f := func(u uint64, s int64) bool {
		eu := AppendUvarint(nil, u)
		gu, n := Uvarint(eu)
		if n != len(eu) || gu != u {
			return false
		}
		es := AppendVarint(nil, s)
		gs, m := Varint(es)
		return m == len(es) && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeVarintVariantsMatchAppend(t *testing.T) {
	for _, v := range varintBoundaries {
		if !bytes.Equal(EncodeUvarint(v), AppendUvarint(nil, v)) {
			t.Fatalf("EncodeUvarint(%d) != AppendUvarint", v)
		}
		if !bytes.Equal(EncodeOrderedUvarint(v), AppendOrderedUvarint(nil, v)) {
			t.Fatalf("EncodeOrderedUvarint(%d) != AppendOrderedUvarint", v)
		}
	}
}

// FuzzOrderedUvarint feeds arbitrary bytes to the decoder (must never
// panic; anything accepted must re-encode to a decodable form with the
// same value) and arbitrary values to the encoder (must round-trip).
func FuzzOrderedUvarint(f *testing.F) {
	for _, v := range varintBoundaries {
		f.Add(AppendOrderedUvarint(nil, v))
	}
	f.Add([]byte{})
	f.Add([]byte{250})
	f.Add([]byte{255, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n := OrderedUvarint(data)
		if n <= 0 {
			return
		}
		if n > len(data) || n > 9 {
			t.Fatalf("decoder claims %d bytes of %d", n, len(data))
		}
		re := AppendOrderedUvarint(nil, v)
		v2, m := OrderedUvarint(re)
		if m != len(re) || v2 != v {
			t.Fatalf("re-encode of %d diverged: (%d, %d)", v, v2, m)
		}
	})
}
