package mr

import (
	"bytes"
	"reflect"
	"testing"
)

// The scratch-reuse contract: engine emit paths copy key and value, so a
// map or reduce function may overwrite its buffers right after emit
// returns. These tests drive every engine through a job that aggressively
// reuses (and clobbers) one scratch buffer per record — any emit path
// that stores the caller's slice instead of copying produces garbled
// keys and fails the comparison with the fresh-allocation reference.

// scratchReuseJob emits perSplit counters per split, every emit through
// the same scratch buffers, which are deliberately clobbered after use.
func scratchReuseJob(splits, perSplit int) *Job {
	sp := make([]Split, splits)
	for i := range sp {
		sp[i] = Split{ID: i}
	}
	return &Job{
		Name:   "scratch-reuse",
		Splits: sp,
		Map: func(ctx TaskContext, split Split, emit Emit) error {
			kbuf := make([]byte, 0, 16)
			vbuf := make([]byte, 0, 8)
			for r := 0; r < perSplit; r++ {
				kbuf = AppendUint64(kbuf[:0], uint64(r%64))
				vbuf = AppendUint64(vbuf[:0], 1)
				if err := emit(kbuf, vbuf); err != nil {
					return err
				}
				// Clobber the scratch: if the engine kept a reference, the
				// shuffle now sees 0xFF garbage instead of the key.
				for i := range kbuf {
					kbuf[i] = 0xFF
				}
				for i := range vbuf {
					vbuf[i] = 0xFF
				}
			}
			return nil
		},
		Reduce: func(ctx TaskContext, key []byte, values [][]byte, emit Emit) error {
			var sum uint64
			for _, v := range values {
				sum += DecodeUint64(v)
			}
			kbuf := append(make([]byte, 0, 8), key...)
			vbuf := AppendUint64(nil, sum)
			if err := emit(kbuf, vbuf); err != nil {
				return err
			}
			for i := range kbuf {
				kbuf[i] = 0xFF
			}
			for i := range vbuf {
				vbuf[i] = 0xFF
			}
			return nil
		},
		Reducers: 3,
	}
}

func scratchReuseWant(splits, perSplit int) map[string]uint64 {
	want := map[string]uint64{}
	for i := 0; i < splits; i++ {
		for r := 0; r < perSplit; r++ {
			want[string(EncodeUint64(uint64(r%64)))] += 1
		}
	}
	return want
}

func checkScratchReuse(t *testing.T, res *Result, splits, perSplit int) {
	t.Helper()
	want := scratchReuseWant(splits, perSplit)
	got := countsOf(res)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scratch reuse corrupted the shuffle: got %d keys, want %d", len(got), len(want))
	}
}

func TestEmitCopiesLocal(t *testing.T) {
	res, err := (&Local{}).Run(scratchReuseJob(4, 500))
	if err != nil {
		t.Fatal(err)
	}
	checkScratchReuse(t, res, 4, 500)
}

func TestEmitCopiesLocalWithCombiner(t *testing.T) {
	job := scratchReuseJob(4, 500)
	job.Combine = job.Reduce
	res, err := (&Local{}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	checkScratchReuse(t, res, 4, 500)
}

func TestEmitCopiesSpill(t *testing.T) {
	eng := &Local{SpillThreshold: 64, SpillDir: t.TempDir()}
	res, err := eng.Run(scratchReuseJob(4, 500))
	if err != nil {
		t.Fatal(err)
	}
	checkScratchReuse(t, res, 4, 500)
	job := scratchReuseJob(4, 500)
	job.Combine = job.Reduce
	res, err = eng.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	checkScratchReuse(t, res, 4, 500)
}

func init() {
	RegisterJob("scratch-reuse-cluster", func(params []byte) (*Job, error) {
		return scratchReuseJob(4, 500), nil
	})
}

func TestEmitCopiesCluster(t *testing.T) {
	c := startCluster(t, 2)
	res, err := c.Run("scratch-reuse-cluster", nil)
	if err != nil {
		t.Fatal(err)
	}
	checkScratchReuse(t, res, 4, 500)
}

func TestByteArenaCopySemantics(t *testing.T) {
	var a byteArena
	if got := a.copyBytes(nil); got != nil {
		t.Fatalf("copyBytes(nil) = %v, want nil", got)
	}
	if got := a.copyBytes([]byte{}); got != nil {
		t.Fatalf("copyBytes(empty) = %v, want nil", got)
	}
	src := []byte{1, 2, 3}
	got := a.copyBytes(src)
	src[0] = 99
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("arena copy aliases the source: %v", got)
	}
	if cap(got) != len(got) {
		t.Fatalf("arena slice has spare capacity %d (len %d): appends would clobber neighbors", cap(got), len(got))
	}
	// Oversized items get dedicated storage and survive release.
	big := make([]byte, arenaBlockSize+1)
	big[0] = 7
	kept := a.copyBytes(big)
	a.release()
	if kept[0] != 7 {
		t.Fatal("oversized copy was recycled by release")
	}
}
