package mr

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"
)

// Shuffle fast-path micro-benchmarks. The workload mirrors the hot loops
// of the dist algorithms: histKey-shaped 12-byte keys ([uint32 |
// order-preserving float64]) with 8-byte values, partitioned by the
// leading uint32 and summed per key. Custom metrics: records/sec across
// the shuffle (shuffle_rec/s) and shuffle MB/sec (shuffle_MB/s).
// Before/after snapshots live in BENCH_baseline.json / BENCH_shuffle.json.

// shuffleBenchJob emits perSplit records per split through the engine.
// appendStyle selects the scratch-buffer emit idiom the fast path enables
// (emit copies, so mappers may reuse buffers); the alloc style is the
// seed's one-heap-allocation-per-record idiom.
func shuffleBenchJob(splits, perSplit int, appendStyle bool) *Job {
	ss := make([]Split, splits)
	for i := range ss {
		ss[i] = Split{ID: i}
	}
	mapAlloc := func(ctx TaskContext, split Split, emit Emit) error {
		for r := 0; r < perSplit; r++ {
			key := make([]byte, 12)
			binary.BigEndian.PutUint32(key[:4], uint32(r%97))
			copy(key[4:], EncodeFloat64(float64(r%1024)))
			if err := emit(key, EncodeUint64(uint64(r))); err != nil {
				return err
			}
		}
		return nil
	}
	mapAppend := func(ctx TaskContext, split Split, emit Emit) error {
		var kbuf, vbuf []byte
		for r := 0; r < perSplit; r++ {
			kbuf = appendShuffleBenchKey(kbuf[:0], uint32(r%97), float64(r%1024))
			vbuf = AppendUint64(vbuf[:0], uint64(r))
			if err := emit(kbuf, vbuf); err != nil {
				return err
			}
		}
		return nil
	}
	m := mapAlloc
	if appendStyle {
		m = mapAppend
	}
	return &Job{
		Name:     "shuffle-bench",
		Splits:   ss,
		Reducers: 4,
		Partition: func(key []byte, nred int) int {
			return int(binary.BigEndian.Uint32(key[:4])) % nred
		},
		Map: m,
		Reduce: func(ctx TaskContext, key []byte, values [][]byte, emit Emit) error {
			var sum uint64
			for _, v := range values {
				sum += DecodeUint64(v)
			}
			return emit(key, EncodeUint64(sum))
		},
	}
}

// appendShuffleBenchKey appends the 12-byte histKey shape to dst.
func appendShuffleBenchKey(dst []byte, cand uint32, bucket float64) []byte {
	dst = append(dst, byte(cand>>24), byte(cand>>16), byte(cand>>8), byte(cand))
	return AppendFloat64(dst, bucket)
}

// BenchmarkShuffleMicro is the headline shuffle throughput benchmark:
// emit + partition + sort + group + reduce through the Local engine.
func BenchmarkShuffleMicro(b *testing.B) {
	const splits, perSplit = 8, 1 << 16
	for _, tc := range []struct {
		name        string
		appendStyle bool
	}{{"alloc-emit", false}, {"append-emit", true}} {
		b.Run(tc.name, func(b *testing.B) {
			job := shuffleBenchJob(splits, perSplit, tc.appendStyle)
			b.ReportAllocs()
			var m Metrics
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := (&Local{}).Run(job)
				if err != nil {
					b.Fatal(err)
				}
				m = res.Metrics
			}
			el := time.Since(start).Seconds()
			b.ReportMetric(float64(m.ShuffleRecords)*float64(b.N)/el, "shuffle_rec/s")
			b.ReportMetric(float64(m.ShuffleBytes)*float64(b.N)/el/1e6, "shuffle_MB/s")
		})
	}
}

// BenchmarkShuffleSort isolates the per-partition sort on histKey-shaped
// 12-byte keys (the radix fast path's target) and on variable-width keys
// (the comparison fallback).
func BenchmarkShuffleSort(b *testing.B) {
	const n = 1 << 17
	fixed := make([]Pair, n)
	for i := range fixed {
		fixed[i] = Pair{Key: appendShuffleBenchKey(nil, uint32((i*2654435761)%97), float64((i*40503)%1024)), Value: EncodeUint64(uint64(i))}
	}
	varw := make([]Pair, n)
	for i := range varw {
		varw[i] = Pair{Key: []byte(fmt.Sprintf("k-%d", (i*2654435761)%(n/2))), Value: EncodeUint64(uint64(i))}
	}
	for _, tc := range []struct {
		name  string
		pairs []Pair
	}{{"fixed12B", fixed}, {"variable", varw}} {
		b.Run(tc.name, func(b *testing.B) {
			job := &Job{}
			buf := make([]Pair, n)
			b.ReportAllocs()
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				copy(buf, tc.pairs)
				sortPairs(job, buf)
			}
		})
	}
}
