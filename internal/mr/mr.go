// Package mr is a from-scratch MapReduce-style execution substrate that
// stands in for the Hadoop cluster of the paper's evaluation (Section 6).
// It provides the semantics the distributed thresholding algorithms need —
// input splits, map tasks, a sorting/partitioning shuffle, reduce tasks,
// combiners, configurable map/reduce slot counts, task retry with failure
// injection — in two engines:
//
//   - Local: an in-process engine executing tasks on a goroutine pool. It
//     records per-task durations and shuffle volumes, and can report the
//     simulated makespan for any slot count, which is how the scalability
//     series of Figures 5c/5d (runtime vs. number of parallel tasks) are
//     regenerated on a single machine.
//   - Cluster: a TCP coordinator/worker runtime executing the same jobs
//     across processes over a compact length-prefixed binary wire format
//     (wire.go; gob only for the per-connection hello). Workers heartbeat the
//     coordinator; a monitor declares silent workers dead mid-task and
//     reassigns their work, task replies carry per-attempt user-counter
//     snapshots and durations, attempts are numbered identically to the
//     local engine, speculative backup attempts can race stragglers, and
//     Close drains workers with a shutdown broadcast. Task output is
//     committed at most once (first successful attempt wins).
//
// Keys and values are byte slices; encode/decode helpers live in codec.go.
package mr

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"dwmaxerr/internal/obs"
)

// Emit receives one intermediate or output key/value pair. Engine emit
// implementations copy key and value before returning, so callers may
// reuse one scratch buffer across emits (see the Append* helpers in
// codec.go) instead of allocating per record.
type Emit func(key, value []byte) error

// TaskContext identifies a running task to map/reduce functions.
type TaskContext struct {
	TaskID  int // split index for maps, partition index for reduces
	Attempt int // 1-based attempt number
	// Counters receives user counter increments; only the committed
	// attempt's counters reach the job metrics.
	Counters *Counters
}

// MapFunc processes one input split.
type MapFunc func(ctx TaskContext, split Split, emit Emit) error

// ReduceFunc processes one key group. values preserves shuffle order
// (sorted by key; ties in arrival order). The values slice itself is only
// valid during the call — the engine reuses it for the next group — but
// the byte slices it holds stay valid for the task's lifetime.
type ReduceFunc func(ctx TaskContext, key []byte, values [][]byte, emit Emit) error

// Split is one unit of map input. Payload is opaque to the engine; local
// jobs typically store an index or range, cluster jobs a self-describing
// gob blob (file path + offsets).
type Split struct {
	ID      int
	Payload []byte
}

// Job describes one MapReduce execution.
type Job struct {
	Name     string
	Splits   []Split
	Map      MapFunc
	Reduce   ReduceFunc // nil: identity (map output passed through)
	Combine  ReduceFunc // optional map-side combiner
	Reducers int        // number of reduce partitions; 0 means 1
	// Partition routes a key to a reduce partition; nil uses FNV hashing.
	Partition func(key []byte, reducers int) int
	// Compare orders keys within a partition; nil uses bytes.Compare.
	Compare func(a, b []byte) int
}

func (j *Job) reducers() int {
	if j.Reducers <= 0 {
		return 1
	}
	return j.Reducers
}

func (j *Job) partition(key []byte) int {
	n := j.reducers()
	if j.Partition != nil {
		p := j.Partition(key, n)
		if p < 0 || p >= n {
			return 0
		}
		return p
	}
	h := fnv.New32a()
	h.Write(key)
	// Reduce in uint32 space: int(h.Sum32()) is negative for hashes above
	// MaxInt32 on 32-bit platforms, and a negative index would panic.
	return int(h.Sum32() % uint32(n))
}

func (j *Job) compare(a, b []byte) int {
	if j.Compare != nil {
		return j.Compare(a, b)
	}
	return bytes.Compare(a, b)
}

func (j *Job) validate() error {
	if j.Map == nil {
		return errors.New("mr: job has no map function")
	}
	if len(j.Splits) == 0 {
		return errors.New("mr: job has no input splits")
	}
	return nil
}

// Pair is one output record.
type Pair struct {
	Key, Value []byte
}

// TaskStat records one task attempt for metrics and makespan simulation.
type TaskStat struct {
	TaskID   int
	Attempt  int
	Duration time.Duration
	Failed   bool
}

// Metrics aggregates what one job execution did. ShuffleBytes counts the
// map-output key+value bytes crossing the shuffle — the quantity bounded by
// Equation 6 — and OutputBytes the reduce-output volume.
//
// Synchronization contract: task attempts complete concurrently, but no
// engine writes a Metrics field from a task goroutine. The Local engine
// appends TaskStats and merges counters under runTasks' mutex and fills
// the aggregate fields on the single driver goroutine between phases; the
// Coordinator collects per-attempt wire replies through channels and folds
// them into Metrics in one collection loop per phase on the Run goroutine.
// Consequently Metrics — including Makespan, which walks MapStats and
// ReduceStats — is safe to read without locking once Run returns, and
// never safe to read while Run is in flight. tcp_fault_test.go pins this
// down under -race with concurrent reduce completions.
type Metrics struct {
	Job            string
	MapTasks       int
	ReduceTasks    int
	MapRetries     int
	ReduceRetries  int
	ShuffleRecords int64
	ShuffleBytes   int64
	OutputRecords  int64
	OutputBytes    int64
	SpilledBytes   int64
	// UserCounters aggregates the counters bumped by committed task
	// attempts (nil when none were used).
	UserCounters map[string]int64
	MapStats     []TaskStat
	ReduceStats  []TaskStat
	WallTime     time.Duration
}

// countRetries counts committed attempts beyond the first — the
// engine-agnostic retry accounting shared by Local and Coordinator.
func countRetries(stats []TaskStat) int {
	n := 0
	for _, st := range stats {
		if st.Attempt > 1 && !st.Failed {
			n++
		}
	}
	return n
}

// Makespan simulates executing the recorded map tasks on mapSlots parallel
// slots and then the reduce tasks on reduceSlots slots (LPT list
// scheduling, mirroring Hadoop's slot model), returning the simulated
// completion time. It is how "runtime vs. number of parallel tasks" series
// are produced deterministically on one machine.
func (m *Metrics) Makespan(mapSlots, reduceSlots int) time.Duration {
	return schedule(m.MapStats, mapSlots) + schedule(m.ReduceStats, reduceSlots)
}

func schedule(stats []TaskStat, slots int) time.Duration {
	if slots < 1 {
		slots = 1
	}
	if len(stats) == 0 {
		return 0
	}
	// FIFO list scheduling in task order (Hadoop default scheduler).
	finish := make([]time.Duration, slots)
	for _, s := range stats {
		// Assign to the earliest-free slot.
		minI := 0
		for i := 1; i < slots; i++ {
			if finish[i] < finish[minI] {
				minI = i
			}
		}
		finish[minI] += s.Duration
	}
	var max time.Duration
	for _, f := range finish {
		if f > max {
			max = f
		}
	}
	return max
}

// Result is one job's output: pairs grouped per reduce partition, in key
// order within each partition.
type Result struct {
	Partitions [][]Pair
	Metrics    Metrics
}

// AllPairs flattens the partitions in order.
func (r *Result) AllPairs() []Pair {
	var out []Pair
	for _, p := range r.Partitions {
		out = append(out, p...)
	}
	return out
}

// JobOptions carries per-run observability settings. The zero value is
// fully disabled and adds no overhead.
type JobOptions struct {
	// Trace, when non-nil, becomes the parent of a "job:<name>" span the
	// engine records phases and task attempts under. Nil disables tracing
	// (span methods on nil receivers no-op).
	Trace *obs.Span
}

// Engine executes jobs.
type Engine interface {
	Run(job *Job) (*Result, error)
}

// TracingEngine is implemented by engines that accept per-run JobOptions
// (both Local and Coordinator do). Callers holding a plain Engine can
// type-assert to plug a trace in without changing call signatures.
type TracingEngine interface {
	Engine
	RunWith(job *Job, opts JobOptions) (*Result, error)
}

// taskError wraps a task failure with its origin.
type taskError struct {
	kind string
	id   int
	err  error
}

func (e *taskError) Error() string {
	return fmt.Sprintf("mr: %s task %d: %v", e.kind, e.id, e.err)
}

func (e *taskError) Unwrap() error { return e.err }
