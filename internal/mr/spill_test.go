package mr

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"
)

// randomJob builds a job with many random keys to exercise the shuffle.
func randomJob(seed int64, splits, reducers int, combine bool) *Job {
	job := &Job{
		Name:     "spill-random",
		Reducers: reducers,
		Map: func(ctx TaskContext, split Split, emit Emit) error {
			rng := rand.New(rand.NewSource(seed + int64(split.ID)))
			for k := 0; k < 200; k++ {
				key := EncodeUint64(uint64(rng.Intn(40)))
				if err := emit(key, EncodeUint64(1)); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(ctx TaskContext, key []byte, values [][]byte, emit Emit) error {
			var sum uint64
			for _, v := range values {
				sum += DecodeUint64(v)
			}
			return emit(key, EncodeUint64(sum))
		},
	}
	for i := 0; i < splits; i++ {
		job.Splits = append(job.Splits, Split{ID: i})
	}
	if combine {
		job.Combine = job.Reduce
	}
	return job
}

func TestSpillMatchesInMemory(t *testing.T) {
	for _, combine := range []bool{false, true} {
		for _, reducers := range []int{1, 3} {
			name := fmt.Sprintf("combine=%v/reducers=%d", combine, reducers)
			t.Run(name, func(t *testing.T) {
				job := randomJob(7, 5, reducers, combine)
				mem, err := (&Local{}).Run(job)
				if err != nil {
					t.Fatal(err)
				}
				spill, err := (&Local{SpillThreshold: 16, SpillDir: t.TempDir()}).Run(randomJob(7, 5, reducers, combine))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(spill.Partitions, mem.Partitions) {
					t.Fatalf("partitions differ:\nspill: %v\nmem:   %v", spill.Partitions, mem.Partitions)
				}
				if spill.Metrics.SpilledBytes == 0 {
					t.Fatal("nothing was spilled despite the low threshold")
				}
				if spill.Metrics.OutputRecords != mem.Metrics.OutputRecords {
					t.Fatalf("output records: %d vs %d", spill.Metrics.OutputRecords, mem.Metrics.OutputRecords)
				}
			})
		}
	}
}

func TestSpillIdentityReduce(t *testing.T) {
	job := randomJob(9, 3, 2, false)
	job.Reduce = nil
	mem, err := (&Local{}).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	j2 := randomJob(9, 3, 2, false)
	j2.Reduce = nil
	spill, err := (&Local{SpillThreshold: 10, SpillDir: t.TempDir()}).Run(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spill.Partitions, mem.Partitions) {
		t.Fatal("identity partitions differ")
	}
}

func TestSpillCleansUpFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := (&Local{SpillThreshold: 8, SpillDir: dir}).Run(randomJob(3, 4, 2, false)); err != nil {
		t.Fatal(err)
	}
	entries, err := readDirNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir not cleaned: %v", entries)
	}
}

func TestSpillWithRetries(t *testing.T) {
	failed := false
	eng := &Local{
		SpillThreshold: 8,
		SpillDir:       t.TempDir(),
		FailureInjector: func(kind string, ctx TaskContext) error {
			if kind == "map" && ctx.TaskID == 1 && ctx.Attempt == 1 && !failed {
				failed = true
				return errors.New("injected")
			}
			return nil
		},
	}
	res, err := eng.Run(randomJob(11, 4, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := (&Local{}).Run(randomJob(11, 4, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Partitions, mem.Partitions) {
		t.Fatal("retried spill run differs from in-memory run")
	}
	if !failed {
		t.Fatal("injector never fired")
	}
}

func TestSpillWordCountEquivalence(t *testing.T) {
	texts := []string{"a b a c", "b c d a", "e e e e e e e e"}
	mem, err := (&Local{}).Run(wordCountJob(texts, 2))
	if err != nil {
		t.Fatal(err)
	}
	spill, err := (&Local{SpillThreshold: 2, SpillDir: t.TempDir()}).Run(wordCountJob(texts, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(countsOf(mem), countsOf(spill)) {
		t.Fatalf("%v vs %v", countsOf(mem), countsOf(spill))
	}
}

func readDirNames(dir string) ([]string, error) {
	f, err := os.Open(dir)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return f.Readdirnames(-1)
}

func TestSpillSpeculativeLoserIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	eng := &Local{
		Workers:          4,
		SpillThreshold:   4,
		SpillDir:         dir,
		SpeculationAfter: 10 * time.Millisecond,
		DelayInjector: func(kind string, ctx TaskContext) {
			if kind == "map" && ctx.TaskID == 0 && ctx.Attempt == 1 {
				time.Sleep(80 * time.Millisecond)
			}
		},
	}
	res, err := eng.Run(randomJob(21, 3, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := (&Local{}).Run(randomJob(21, 3, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Partitions, mem.Partitions) {
		t.Fatal("speculative spill run differs")
	}
	// Both the loser's and the winners' spill directories must be cleaned.
	entries, err := readDirNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("leftover spill dirs: %v", entries)
	}
}

func TestTaskErrorUnwrap(t *testing.T) {
	sentinel := errors.New("root cause")
	eng := &Local{MaxAttempts: 1, FailureInjector: func(kind string, ctx TaskContext) error {
		return sentinel
	}}
	_, err := eng.Run(wordCountJob([]string{"a"}, 1))
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}
