package mr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"dwmaxerr/internal/chaos"
)

// Frame-layer coverage: the CRC32-C trailer introduced with wire version 3
// must accept every clean frame, reject every single-bit flip, and bound
// the length prefix — and the frame writer's chaos failpoint must produce
// exactly the faults the soak tests schedule.

// encodeFrame runs one frame through the production writer and returns the
// raw bytes (header | payload | crc trailer).
func encodeFrame(t *testing.T, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	if err := fw.write(typ, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameCRCRoundTrip(t *testing.T) {
	task := sampleWireTask()
	taskPayload, err := appendWireTask(nil, &task)
	if err != nil {
		t.Fatal(err)
	}
	frames := []struct {
		typ     byte
		payload []byte
	}{
		{frameTask, taskPayload},
		{frameHeartbeat, nil},
		{frameReject, []byte("reason")},
	}
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	for _, f := range frames {
		if err := fw.write(f.typ, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	fr := newFrameReader(&buf)
	for i, f := range frames {
		typ, payload, err := fr.read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != f.typ || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d round trip diverged: type %d payload %d bytes", i, typ, len(payload))
		}
	}
	if _, _, err := fr.read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

// TestFrameReaderRejectsBitFlips flips every bit of an encoded frame in
// turn: no corruption may decode cleanly, and every flip past the length
// field must be caught by the CRC (counted in mr_wire_corrupt_frames).
func TestFrameReaderRejectsBitFlips(t *testing.T) {
	task := sampleWireTask()
	payload, err := appendWireTask(nil, &task)
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame(t, frameTask, payload)
	corrupt0 := obsWireCorruptFrames.Value()
	for bit := 0; bit < len(frame)*8; bit++ {
		mutated := append([]byte(nil), frame...)
		mutated[bit/8] ^= 1 << (bit % 8)
		fr := newFrameReader(bytes.NewReader(mutated))
		typ, got, err := fr.read()
		if err == nil && typ == frameTask && bytes.Equal(got, payload) {
			t.Fatalf("bit flip at %d decoded as the original frame", bit)
		}
		// Flips inside the length prefix may surface as a short read or
		// an over-limit length instead of a CRC mismatch; anything else
		// must be a checksum rejection.
		if bit >= 5*8 && err == nil {
			t.Fatalf("bit flip at %d (past header) read without error", bit)
		}
	}
	if d := obsWireCorruptFrames.Value() - corrupt0; d < int64((len(frame)-5)*8) {
		t.Fatalf("mr_wire_corrupt_frames delta = %d, want >= %d (one per post-header flip)", d, (len(frame)-5)*8)
	}
}

func TestFrameReaderRejectsOversizedLength(t *testing.T) {
	hdr := []byte{frameTask, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(hdr[1:], maxWireFrameSize+1)
	corrupt0 := obsWireCorruptFrames.Value()
	fr := newFrameReader(bytes.NewReader(hdr))
	_, _, err := fr.read()
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized length prefix not rejected: %v", err)
	}
	if d := obsWireCorruptFrames.Value() - corrupt0; d != 1 {
		t.Fatalf("mr_wire_corrupt_frames delta = %d, want 1", d)
	}
}

// TestFrameWriterChaosActions drives each send-side fault through a real
// writer/reader pair: drop fails the write, partial truncates the stream,
// corrupt flips one bit the receiver's CRC must catch.
func TestFrameWriterChaosActions(t *testing.T) {
	payload, err := appendWireTask(nil, &wireTask{Kind: "shutdown"})
	if err != nil {
		t.Fatal(err)
	}
	run := func(t *testing.T, spec string) (written []byte, werr error) {
		in, err := chaos.New(1, spec)
		if err != nil {
			t.Fatal(err)
		}
		chaos.Enable(in)
		defer chaos.Disable()
		var buf bytes.Buffer
		fw := newFrameWriter(&buf)
		fw.chaosPoint = chaosWorkerSend
		werr = fw.write(frameTask, append([]byte(nil), payload...))
		return buf.Bytes(), werr
	}

	t.Run("drop", func(t *testing.T) {
		raw, err := run(t, "mr.worker.send:drop#1")
		if !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("dropped write returned %v, want ErrInjected", err)
		}
		if len(raw) != 0 {
			t.Fatalf("dropped write still emitted %d bytes", len(raw))
		}
	})
	t.Run("partial", func(t *testing.T) {
		raw, err := run(t, "mr.worker.send:partial#1")
		if !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("partial write returned %v, want ErrInjected", err)
		}
		if len(raw) == 0 || len(raw) >= 5+len(payload)+4 {
			t.Fatalf("partial write emitted %d bytes, want a strict prefix", len(raw))
		}
		fr := newFrameReader(bytes.NewReader(raw))
		if _, _, err := fr.read(); err == nil {
			t.Fatal("truncated frame read without error")
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		raw, err := run(t, "mr.worker.send:corrupt#1")
		if err != nil {
			t.Fatalf("corrupting write must succeed locally, got %v", err)
		}
		corrupt0 := obsWireCorruptFrames.Value()
		fr := newFrameReader(bytes.NewReader(raw))
		if _, _, err := fr.read(); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("corrupted frame not rejected by CRC: %v", err)
		}
		if d := obsWireCorruptFrames.Value() - corrupt0; d != 1 {
			t.Fatalf("mr_wire_corrupt_frames delta = %d, want 1", d)
		}
	})
	t.Run("exempt-frame-types", func(t *testing.T) {
		in, err := chaos.New(1, "mr.worker.send:drop")
		if err != nil {
			t.Fatal(err)
		}
		chaos.Enable(in)
		defer chaos.Disable()
		var buf bytes.Buffer
		fw := newFrameWriter(&buf)
		fw.chaosPoint = chaosWorkerSend
		if err := fw.write(frameHeartbeat, nil); err != nil {
			t.Fatalf("heartbeat frame hit the data-frame failpoint: %v", err)
		}
		if in.Hits(chaosWorkerSend) != 0 {
			t.Fatal("heartbeat frame counted as a chaos hit")
		}
	})
}

// FuzzFrameReader hammers the frame reader with arbitrary streams — it
// must never panic and anything it accepts must carry a valid CRC.
func FuzzFrameReader(f *testing.F) {
	task := sampleWireTask()
	payload, _ := appendWireTask(nil, &task)
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	fw.write(frameTask, payload)
	fw.write(frameHeartbeat, nil)
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	for _, bit := range []int{0, 9, 41, len(valid)*8 - 1} {
		mutated := append([]byte(nil), valid...)
		mutated[bit/8] ^= 1 << (bit % 8)
		f.Add(mutated)
	}
	f.Add([]byte{frameTask, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newFrameReader(bytes.NewReader(data))
		for {
			typ, payload, err := fr.read()
			if err != nil {
				return
			}
			// An accepted frame must re-encode to bytes the reader accepts
			// again (CRC is deterministic).
			reencoded := encodeFrame(t, typ, payload)
			fr2 := newFrameReader(bytes.NewReader(reencoded))
			if _, _, err := fr2.read(); err != nil {
				t.Fatalf("re-encoded accepted frame rejected: %v", err)
			}
		}
	})
}
