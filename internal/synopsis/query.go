package synopsis

import (
	"fmt"
	"math"
)

// Guaranteed query answering: a synopsis built under a maximum-error
// metric carries a deterministic per-value bound ε = max_abs. This file
// derives guaranteed intervals for derived queries — the property that
// makes max-error synopses preferable for approximate query processing
// (Sections 1–2 of the paper).

// Bounded is an approximate answer with a guaranteed enclosure:
// the exact answer lies in [Approx-Radius, Approx+Radius].
type Bounded struct {
	Approx float64
	Radius float64
}

// Lo returns the lower end of the guaranteed interval.
func (b Bounded) Lo() float64 { return b.Approx - b.Radius }

// Hi returns the upper end of the guaranteed interval.
func (b Bounded) Hi() float64 { return b.Approx + b.Radius }

// Contains reports whether the exact value v is inside the interval
// (allowing for floating-point slack).
func (b Bounded) Contains(v float64) bool {
	slack := 1e-9 * (1 + math.Abs(v) + b.Radius)
	return v >= b.Lo()-slack && v <= b.Hi()+slack
}

// String renders "approx ± radius".
func (b Bounded) String() string { return fmt.Sprintf("%g ± %g", b.Approx, b.Radius) }

// PointBound answers a point lookup with the guarantee |d_k - approx| <= ε,
// where maxAbs is the synopsis' maximum absolute error.
func (e *Evaluator) PointBound(k int, maxAbs float64) Bounded {
	return Bounded{Approx: e.Point(k), Radius: maxAbs}
}

// RangeSumBound answers d(l:h) with the guarantee that each of the
// h-l+1 terms is within ε: radius = (h-l+1)·ε.
func (e *Evaluator) RangeSumBound(l, h int, maxAbs float64) Bounded {
	if l > h {
		l, h = h, l
	}
	return Bounded{
		Approx: e.RangeSum(l, h),
		Radius: float64(h-l+1) * maxAbs,
	}
}

// RangeAvg returns the approximate mean over [l, h].
func (e *Evaluator) RangeAvg(l, h int) float64 {
	if l > h {
		l, h = h, l
	}
	return e.RangeSum(l, h) / float64(h-l+1)
}

// RangeAvgBound answers the mean over [l, h] with radius ε (averaging does
// not amplify a uniform per-value bound).
func (e *Evaluator) RangeAvgBound(l, h int, maxAbs float64) Bounded {
	return Bounded{Approx: e.RangeAvg(l, h), Radius: maxAbs}
}

// N returns the underlying data vector length.
func (e *Evaluator) N() int { return e.n }

// PrefixSums materializes all prefix sums d(0:k) for k in [0, N) in O(N)
// total — useful when a query workload touches many ranges of the same
// synopsis. The returned slice p satisfies sum(l:h) = p[h] - p[l] + d̂_l.
func (e *Evaluator) PrefixSums() []float64 {
	// Reconstruct values once, then accumulate.
	vals := e.ReconstructAll()
	p := make([]float64, len(vals))
	var run float64
	for i, v := range vals {
		run += v
		p[i] = run
	}
	return p
}

// ReconstructAll materializes the full approximate vector from the
// evaluator's term map.
func (e *Evaluator) ReconstructAll() []float64 {
	s := &Synopsis{N: e.n}
	for idx, v := range e.m {
		s.Terms = append(s.Terms, Coefficient{Index: idx, Value: v})
	}
	s.Normalize()
	return s.ReconstructAll()
}

// BatchPoints answers many point lookups, exploiting shared path prefixes
// by reconstructing only the touched sub-trees. For k lookups the cost is
// O(k log N) map probes, the same as calling Point repeatedly, but a
// single allocation.
func (e *Evaluator) BatchPoints(ks []int) []float64 {
	out := make([]float64, len(ks))
	for i, k := range ks {
		out[i] = e.Point(k)
	}
	return out
}
