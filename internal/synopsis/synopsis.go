// Package synopsis defines the wavelet synopsis produced by the
// thresholding algorithms — a sparse set of retained (index, value)
// coefficient pairs — together with value reconstruction, range-sum query
// answering, and the aggregate error metrics of Section 2.3 (Equations
// 1–3): L2, maximum absolute error, and maximum relative error with a
// sanity bound.
package synopsis

import (
	"fmt"
	"math"
	"sort"

	"dwmaxerr/internal/wavelet"
)

// Coefficient is one retained term of a synopsis. For "restricted"
// synopses the Value equals the Haar coefficient of the data; unrestricted
// algorithms (MinHaarSpace) may retain modified values.
type Coefficient struct {
	Index int
	Value float64
}

// Synopsis is a compact approximate representation of a data vector of
// length N: the coefficients not present are implicitly zero.
type Synopsis struct {
	N     int
	Terms []Coefficient
}

// New returns an empty synopsis for a vector of n values (n a power of two).
func New(n int) *Synopsis {
	return &Synopsis{N: n}
}

// FromMap builds a synopsis from an index->value map.
func FromMap(n int, m map[int]float64) *Synopsis {
	s := New(n)
	for i, v := range m {
		s.Terms = append(s.Terms, Coefficient{i, v})
	}
	s.Normalize()
	return s
}

// FromIndices builds a synopsis retaining the given indices of the full
// coefficient vector w.
func FromIndices(w []float64, indices []int) *Synopsis {
	s := New(len(w))
	for _, i := range indices {
		s.Terms = append(s.Terms, Coefficient{i, w[i]})
	}
	s.Normalize()
	return s
}

// Normalize sorts terms by index and drops exact duplicates (keeping the
// last occurrence) and zero values.
func (s *Synopsis) Normalize() {
	sort.SliceStable(s.Terms, func(i, j int) bool { return s.Terms[i].Index < s.Terms[j].Index })
	out := s.Terms[:0]
	for i := 0; i < len(s.Terms); i++ {
		if i+1 < len(s.Terms) && s.Terms[i+1].Index == s.Terms[i].Index {
			continue // superseded by a later term with the same index
		}
		if s.Terms[i].Value != 0 {
			out = append(out, s.Terms[i])
		}
	}
	s.Terms = out
}

// Size returns the number of retained non-zero coefficients.
func (s *Synopsis) Size() int { return len(s.Terms) }

// Map returns the retained terms as an index->value map.
func (s *Synopsis) Map() map[int]float64 {
	m := make(map[int]float64, len(s.Terms))
	for _, t := range s.Terms {
		m[t.Index] = t.Value
	}
	return m
}

// Dense materializes the full coefficient vector with non-retained entries
// zero.
func (s *Synopsis) Dense() []float64 {
	w := make([]float64, s.N)
	for _, t := range s.Terms {
		w[t.Index] = t.Value
	}
	return w
}

// ReconstructAll returns the full approximate data vector.
func (s *Synopsis) ReconstructAll() []float64 {
	d := make([]float64, s.N)
	wavelet.InverseInto(d, s.Dense())
	return d
}

// Reconstruct returns the approximate value of data leaf k, summing only
// the retained coefficients on k's path (O(terms on path)).
func (s *Synopsis) Reconstruct(k int) float64 {
	m := s.Map()
	return reconstructFromMap(s.N, k, m)
}

func reconstructFromMap(n, k int, m map[int]float64) float64 {
	v := m[0]
	node := (n + k) / 2
	left := k%2 == 0
	for node >= 1 {
		if c, ok := m[node]; ok {
			if left {
				v += c
			} else {
				v -= c
			}
		}
		left = node%2 == 0
		node /= 2
	}
	return v
}

// Evaluator answers point and range queries against a synopsis in
// O(log N) per query, using a prebuilt index map.
type Evaluator struct {
	n int
	m map[int]float64
}

// NewEvaluator builds a query evaluator over s.
func NewEvaluator(s *Synopsis) *Evaluator {
	return &Evaluator{n: s.N, m: s.Map()}
}

// Point returns the approximate value of data leaf k.
func (e *Evaluator) Point(k int) float64 { return reconstructFromMap(e.n, k, e.m) }

// RangeSum returns the approximate d(l:h) using only coefficients on
// path_l ∪ path_h, per Section 2.2.
func (e *Evaluator) RangeSum(l, h int) float64 {
	if l > h {
		l, h = h, l
	}
	sum := float64(h-l+1) * e.m[0]
	seen := map[int]bool{0: true}
	for _, k := range [2]int{l, h} {
		node := (e.n + k) / 2
		for node >= 1 {
			if !seen[node] {
				seen[node] = true
				if c, ok := e.m[node]; ok {
					first, last := wavelet.CoefficientSupport(e.n, node)
					mid := first + (last-first)/2
					nl := intervalOverlap(l, h, first, mid-1)
					nr := intervalOverlap(l, h, mid, last-1)
					sum += float64(nl-nr) * c
				}
			}
			node /= 2
		}
	}
	return sum
}

func intervalOverlap(a, b, c, d int) int {
	lo, hi := a, b
	if c > lo {
		lo = c
	}
	if d < hi {
		hi = d
	}
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}

// Errors aggregates the three error metrics of Section 2.3 for a synopsis
// against the original data.
type Errors struct {
	L2     float64 // Equation 1: sqrt(mean squared error)
	MaxAbs float64 // Equation 2: max_i |d̂_i - d_i|
	MaxRel float64 // Equation 3: max_i |d̂_i - d_i| / max(|d_i|, S)
	ArgAbs int     // index attaining MaxAbs
	ArgRel int     // index attaining MaxRel
}

// Evaluate computes all metrics of s against data, with sanity bound
// sanity (> 0) for the relative metric.
func Evaluate(s *Synopsis, data []float64, sanity float64) (Errors, error) {
	if len(data) != s.N {
		return Errors{}, fmt.Errorf("synopsis: evaluate length mismatch: %d vs %d", len(data), s.N)
	}
	if sanity <= 0 {
		sanity = 1
	}
	rec := s.ReconstructAll()
	var e Errors
	var sq float64
	for i, d := range data {
		diff := math.Abs(rec[i] - d)
		sq += diff * diff
		if diff > e.MaxAbs {
			e.MaxAbs, e.ArgAbs = diff, i
		}
		den := math.Abs(d)
		if den < sanity {
			den = sanity
		}
		if r := diff / den; r > e.MaxRel {
			e.MaxRel, e.ArgRel = r, i
		}
	}
	e.L2 = math.Sqrt(sq / float64(len(data)))
	return e, nil
}

// MaxAbsError computes only Equation 2, avoiding the full struct.
func MaxAbsError(s *Synopsis, data []float64) float64 {
	rec := s.ReconstructAll()
	var m float64
	for i, d := range data {
		if diff := math.Abs(rec[i] - d); diff > m {
			m = diff
		}
	}
	return m
}

// MaxRelError computes only Equation 3 with sanity bound sanity.
func MaxRelError(s *Synopsis, data []float64, sanity float64) float64 {
	if sanity <= 0 {
		sanity = 1
	}
	rec := s.ReconstructAll()
	var m float64
	for i, d := range data {
		den := math.Abs(d)
		if den < sanity {
			den = sanity
		}
		if r := math.Abs(rec[i]-d) / den; r > m {
			m = r
		}
	}
	return m
}

// Conventional builds the conventional (L2-optimal) synopsis: the B
// coefficients of greatest significance |c|/sqrt(2^level), per Section 2.3.
func Conventional(w []float64, b int) *Synopsis {
	type cand struct {
		idx int
		sig float64
	}
	cands := make([]cand, 0, len(w))
	for i, c := range w {
		if c != 0 {
			cands = append(cands, cand{i, wavelet.SignificanceOrderValue(i, c)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sig != cands[j].sig {
			return cands[i].sig > cands[j].sig
		}
		return cands[i].idx < cands[j].idx
	})
	if b > len(cands) {
		b = len(cands)
	}
	s := New(len(w))
	for _, c := range cands[:b] {
		s.Terms = append(s.Terms, Coefficient{c.idx, w[c.idx]})
	}
	s.Normalize()
	return s
}
