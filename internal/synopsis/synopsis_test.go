package synopsis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dwmaxerr/internal/wavelet"
)

var paperData = []float64{5, 5, 0, 26, 1, 3, 14, 2}
var paperCoef = []float64{7, 2, -4, -3, 0, -13, -1, 6}

func TestPaperThresholdingExample(t *testing.T) {
	// Section 2.3: retaining {c0, c5, c3} gives d̂_5 = 7 - 3 = 4.
	s := FromIndices(paperCoef, []int{0, 5, 3})
	if got := s.Reconstruct(5); got != 4 {
		t.Fatalf("d̂_5 = %g, want 4", got)
	}
	e, err := Evaluate(s, paperData, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxAbs <= 0 {
		t.Fatal("expected a positive max error for a lossy synopsis")
	}
}

func TestFullSynopsisIsExact(t *testing.T) {
	idx := make([]int, len(paperCoef))
	for i := range idx {
		idx[i] = i
	}
	s := FromIndices(paperCoef, idx)
	e, _ := Evaluate(s, paperData, 1)
	if e.MaxAbs != 0 || e.L2 != 0 || e.MaxRel != 0 {
		t.Fatalf("full synopsis errors = %+v, want all zero", e)
	}
}

func TestReconstructMatchesDenseInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + uint(rng.Intn(7)))
		w := make([]float64, n)
		var idx []int
		for i := range w {
			w[i] = rng.NormFloat64() * 10
			if rng.Intn(3) == 0 {
				idx = append(idx, i)
			}
		}
		s := FromIndices(w, idx)
		full := s.ReconstructAll()
		for k := 0; k < n; k++ {
			if math.Abs(s.Reconstruct(k)-full[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatorRangeSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + uint(rng.Intn(7)))
		w := make([]float64, n)
		var idx []int
		for i := range w {
			w[i] = rng.NormFloat64() * 10
			if rng.Intn(2) == 0 {
				idx = append(idx, i)
			}
		}
		s := FromIndices(w, idx)
		ev := NewEvaluator(s)
		rec := s.ReconstructAll()
		l := rng.Intn(n)
		h := l + rng.Intn(n-l)
		var want float64
		for i := l; i <= h; i++ {
			want += rec[i]
		}
		got := ev.RangeSum(l, h)
		return math.Abs(got-want) < 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatorPointMatchesReconstruct(t *testing.T) {
	s := FromIndices(paperCoef, []int{0, 1, 6})
	ev := NewEvaluator(s)
	for k := range paperData {
		if ev.Point(k) != s.Reconstruct(k) {
			t.Fatalf("Point(%d) mismatch", k)
		}
	}
}

func TestNormalizeDedupAndZeroDrop(t *testing.T) {
	s := New(8)
	s.Terms = []Coefficient{{3, 1}, {1, 0}, {3, 5}, {2, -2}}
	s.Normalize()
	if s.Size() != 2 {
		t.Fatalf("size = %d, want 2 (%+v)", s.Size(), s.Terms)
	}
	m := s.Map()
	if m[3] != 5 || m[2] != -2 {
		t.Fatalf("map = %v", m)
	}
}

func TestConventionalMinimizesL2(t *testing.T) {
	// The conventional synopsis must achieve the minimum L2 error over all
	// synopses that retain exactly B of the true Haar coefficients.
	// Verify against exhaustive search on small inputs.
	rng := rand.New(rand.NewSource(21))
	n, b := 8, 3
	for trial := 0; trial < 25; trial++ {
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 30
		}
		w, _ := wavelet.Transform(data)
		conv := Conventional(w, b)
		ce, _ := Evaluate(conv, data, 1)

		best := math.Inf(1)
		var comb func(start int, chosen []int)
		comb = func(start int, chosen []int) {
			if len(chosen) == b {
				s := FromIndices(w, chosen)
				e, _ := Evaluate(s, data, 1)
				if e.L2 < best {
					best = e.L2
				}
				return
			}
			for i := start; i < n; i++ {
				comb(i+1, append(chosen, i))
			}
		}
		comb(0, nil)
		if ce.L2 > best+1e-9 {
			t.Fatalf("trial %d: conventional L2 %g > optimal %g", trial, ce.L2, best)
		}
	}
}

func TestConventionalBudgetRespected(t *testing.T) {
	w := make([]float64, 32)
	rng := rand.New(rand.NewSource(4))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, b := range []int{0, 1, 5, 32, 100} {
		s := Conventional(w, b)
		if s.Size() > b {
			t.Fatalf("B=%d: size %d", b, s.Size())
		}
		if b <= 32 && s.Size() < b {
			t.Fatalf("B=%d: size %d, want %d (all coefficients nonzero)", b, s.Size(), b)
		}
	}
}

func TestMaxRelSanityBound(t *testing.T) {
	data := []float64{0.001, 100, 100, 100}
	w, _ := wavelet.Transform(data)
	s := Conventional(w, 1)
	// Sanity bound 1 caps the denominator of the tiny value.
	relTight := MaxRelError(s, data, 0.0001)
	relLoose := MaxRelError(s, data, 10)
	if relLoose > relTight {
		t.Fatalf("loose sanity bound should not increase max_rel: %g > %g", relLoose, relTight)
	}
}

func TestEvaluateLengthMismatch(t *testing.T) {
	s := New(8)
	if _, err := Evaluate(s, make([]float64, 4), 1); err == nil {
		t.Fatal("want error on length mismatch")
	}
}

func TestMaxAbsMatchesEvaluate(t *testing.T) {
	s := FromIndices(paperCoef, []int{0, 2})
	e, _ := Evaluate(s, paperData, 1)
	if got := MaxAbsError(s, paperData); got != e.MaxAbs {
		t.Fatalf("MaxAbsError = %g, Evaluate.MaxAbs = %g", got, e.MaxAbs)
	}
}
