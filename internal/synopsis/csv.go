package synopsis

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV interchange format: one "index,value" line per retained coefficient.
// Human-inspectable counterpart of the binary codec; used by the CLI
// tools.

// WriteCSV writes the synopsis terms as "index,value" lines.
func (s *Synopsis) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range s.Terms {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", t.Index, strconv.FormatFloat(t.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses "index,value" lines into a synopsis over n values,
// skipping blank lines. The result is normalized.
func ReadCSV(r io.Reader, n int) (*Synopsis, error) {
	if n < 1 {
		return nil, fmt.Errorf("synopsis: data length %d < 1", n)
	}
	s := New(n)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		idxStr, valStr, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("synopsis: line %d: want 'index,value'", line)
		}
		idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
		if err != nil {
			return nil, fmt.Errorf("synopsis: line %d: %v", line, err)
		}
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("synopsis: line %d: index %d out of [0,%d)", line, idx, n)
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			return nil, fmt.Errorf("synopsis: line %d: %v", line, err)
		}
		s.Terms = append(s.Terms, Coefficient{Index: idx, Value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s.Normalize()
	return s, nil
}
