package synopsis

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dwmaxerr/internal/wavelet"
)

func TestCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(10))
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				s.Terms = append(s.Terms, Coefficient{Index: i, Value: rng.NormFloat64() * 1000})
			}
		}
		s.Normalize()
		var buf bytes.Buffer
		written, err := s.WriteTo(&buf)
		if err != nil {
			return false
		}
		if int(written) != buf.Len() || buf.Len() != s.EncodedSize() {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return back.N == s.N && reflect.DeepEqual(back.Terms, s.Terms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecUnsortedTermsAreNormalized(t *testing.T) {
	s := New(8)
	s.Terms = []Coefficient{{5, 1}, {2, 3}, {7, -1}}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != 3 || back.Terms[0].Index != 2 {
		t.Fatalf("terms = %+v", back.Terms)
	}
}

func TestCodecRejectsCorruptInput(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("DWS1\x00"))); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Valid header claiming more terms than exist.
	var buf bytes.Buffer
	s := New(8)
	s.Terms = []Coefficient{{1, 2}}
	s.WriteTo(&buf)
	raw := buf.Bytes()
	raw[12] = 200 // inflate the term count
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("inflated term count accepted")
	}
}

func TestCodecEmptySynopsis(t *testing.T) {
	s := New(16)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil || back.N != 16 || back.Size() != 0 {
		t.Fatalf("back=%+v err=%v", back, err)
	}
}

func TestBoundedIntervals(t *testing.T) {
	data := []float64{5, 5, 0, 26, 1, 3, 14, 2}
	w, _ := wavelet.Transform(data)
	s := FromIndices(w, []int{0, 5, 3})
	eps := MaxAbsError(s, data)
	ev := NewEvaluator(s)

	for k := range data {
		b := ev.PointBound(k, eps)
		if !b.Contains(data[k]) {
			t.Fatalf("point %d: %v does not contain %g", k, b, data[k])
		}
	}
	for _, q := range [][2]int{{0, 7}, {2, 5}, {3, 3}} {
		var exact float64
		for i := q[0]; i <= q[1]; i++ {
			exact += data[i]
		}
		b := ev.RangeSumBound(q[0], q[1], eps)
		if !b.Contains(exact) {
			t.Fatalf("range %v: %v does not contain %g", q, b, exact)
		}
		avg := ev.RangeAvgBound(q[0], q[1], eps)
		if !avg.Contains(exact / float64(q[1]-q[0]+1)) {
			t.Fatalf("avg %v: %v does not contain %g", q, avg, exact/float64(q[1]-q[0]+1))
		}
	}
	b := Bounded{Approx: 10, Radius: 2}
	if b.Lo() != 8 || b.Hi() != 12 || b.String() != "10 ± 2" {
		t.Fatalf("bounded accessors: %v [%g,%g]", b, b.Lo(), b.Hi())
	}
}

func TestPrefixSumsMatchRangeSums(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 64
	w := make([]float64, n)
	var idx []int
	for i := range w {
		w[i] = rng.NormFloat64() * 10
		if rng.Intn(2) == 0 {
			idx = append(idx, i)
		}
	}
	s := FromIndices(w, idx)
	ev := NewEvaluator(s)
	p := ev.PrefixSums()
	rec := s.ReconstructAll()
	for trial := 0; trial < 50; trial++ {
		l := rng.Intn(n)
		h := l + rng.Intn(n-l)
		want := ev.RangeSum(l, h)
		got := p[h]
		if l > 0 {
			got -= p[l-1]
		}
		if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
			t.Fatalf("prefix sum (%d,%d): %g vs %g", l, h, got, want)
		}
		_ = rec
	}
	if ev.N() != n {
		t.Fatalf("N = %d", ev.N())
	}
}

func TestBatchPointsMatchesPoint(t *testing.T) {
	data := []float64{5, 5, 0, 26, 1, 3, 14, 2}
	w, _ := wavelet.Transform(data)
	s := FromIndices(w, []int{0, 1, 2})
	ev := NewEvaluator(s)
	ks := []int{0, 3, 7, 3}
	got := ev.BatchPoints(ks)
	for i, k := range ks {
		if got[i] != ev.Point(k) {
			t.Fatalf("batch point %d mismatch", k)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := New(16)
	s.Terms = []Coefficient{{0, 7}, {3, -2.5}, {9, 1e-3}}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Terms, s.Terms) {
		t.Fatalf("got %+v want %+v", back.Terms, s.Terms)
	}
}

func TestReadCSVValidation(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("1,2\n"), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("nope\n"), 8); err == nil {
		t.Fatal("missing comma accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("x,1\n"), 8); err == nil {
		t.Fatal("bad index accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,x\n"), 8); err == nil {
		t.Fatal("bad value accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("9,1\n"), 8); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	s, err := ReadCSV(bytes.NewBufferString("\n2, 4.5 \n\n"), 8)
	if err != nil || s.Size() != 1 || s.Terms[0].Value != 4.5 {
		t.Fatalf("blank-tolerant parse failed: %+v %v", s, err)
	}
}
