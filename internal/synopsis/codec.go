package synopsis

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization for synopses: a compact format for persisting and
// shipping synopses (e.g. from a build cluster to query frontends).
//
// Layout (little-endian):
//
//	magic   [4]byte  "DWS1"
//	n       uint64   data vector length
//	terms   uint64   number of retained coefficients
//	then per term: index uvarint (delta-encoded, ascending), value float64
//
// Delta-encoded indices keep typical synopses (dense in the low indices)
// small.

var codecMagic = [4]byte{'D', 'W', 'S', '1'}

// WriteTo serializes the synopsis. Terms must be normalized (sorted by
// index); Write normalizes a copy if needed.
func (s *Synopsis) WriteTo(w io.Writer) (int64, error) {
	terms := s.Terms
	for i := 1; i < len(terms); i++ {
		if terms[i].Index <= terms[i-1].Index {
			cp := &Synopsis{N: s.N, Terms: append([]Coefficient(nil), s.Terms...)}
			cp.Normalize()
			terms = cp.Terms
			break
		}
	}
	bw := bufio.NewWriter(w)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}
	if err := count(bw.Write(codecMagic[:])); err != nil {
		return written, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(s.N))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(terms)))
	if err := count(bw.Write(hdr[:])); err != nil {
		return written, err
	}
	var buf [binary.MaxVarintLen64 + 8]byte
	prev := 0
	for _, t := range terms {
		k := binary.PutUvarint(buf[:], uint64(t.Index-prev))
		prev = t.Index
		binary.LittleEndian.PutUint64(buf[k:], math.Float64bits(t.Value))
		if err := count(bw.Write(buf[:k+8])); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// Read deserializes a synopsis written by WriteTo.
func Read(r io.Reader) (*Synopsis, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("synopsis: reading magic: %w", err)
	}
	if magic != codecMagic {
		return nil, fmt.Errorf("synopsis: bad magic %q", magic[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("synopsis: reading header: %w", err)
	}
	n := int(binary.LittleEndian.Uint64(hdr[0:]))
	terms := int(binary.LittleEndian.Uint64(hdr[8:]))
	if n < 0 || terms < 0 || terms > n {
		return nil, fmt.Errorf("synopsis: implausible header n=%d terms=%d", n, terms)
	}
	s := New(n)
	prev := 0
	var valBuf [8]byte
	for i := 0; i < terms; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("synopsis: term %d index: %w", i, err)
		}
		idx := prev + int(delta)
		prev = idx
		if idx >= n {
			return nil, fmt.Errorf("synopsis: term %d index %d out of range", i, idx)
		}
		if _, err := io.ReadFull(br, valBuf[:]); err != nil {
			return nil, fmt.Errorf("synopsis: term %d value: %w", i, err)
		}
		s.Terms = append(s.Terms, Coefficient{
			Index: idx,
			Value: math.Float64frombits(binary.LittleEndian.Uint64(valBuf[:])),
		})
	}
	return s, nil
}

// EncodedSize returns the exact byte length WriteTo would produce.
func (s *Synopsis) EncodedSize() int {
	size := 4 + 16
	prev := 0
	for _, t := range s.Terms {
		size += uvarintLen(uint64(t.Index-prev)) + 8
		prev = t.Index
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
