package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's Snapshot as JSON — the /debug/vars-style
// live view of a running process.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// Mount registers the observability endpoints on mux: /debug/vars serving
// r's snapshot, and the net/http/pprof suite under /debug/pprof/. Used by
// dwserve and dwworker so any node of a running cluster can be inspected
// with curl and `go tool pprof`.
func Mount(mux *http.ServeMux, r *Registry) {
	mux.Handle("/debug/vars", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
