package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Start("job")
	if s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	// Every method must be callable on a nil span without panicking.
	c := s.Child("map")
	c.SetInt("bytes", 1)
	c.SetFloat("eps", 0.5)
	c.SetStr("worker", "w0")
	c.SetBool("failed", false)
	c.End()
	s.End()
	if s.Name() != "" || s.Duration() != 0 || s.Attr("x") != nil || s.Children() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	s.Walk(func(*Span) { t.Fatal("walk on nil span must not visit") })
	if tr.Roots() != nil {
		t.Fatal("nil tracer roots must be nil")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTracer()
	job := tr.Start("job:test")
	job.SetInt("splits", 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			at := job.Child("map")
			at.SetInt("task", int64(i))
			at.End()
		}(i)
	}
	wg.Wait()
	job.End()

	if got := job.Attr("splits"); got != int64(4) {
		t.Fatalf("attr splits = %v", got)
	}
	kids := job.Children()
	if len(kids) != 4 {
		t.Fatalf("children = %d, want 4", len(kids))
	}
	var visited int
	job.Walk(func(*Span) { visited++ })
	if visited != 5 {
		t.Fatalf("walk visited %d spans, want 5", visited)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	job := tr.Start("job:trace")
	m := job.Child("map-phase")
	a := m.Child("attempt")
	a.SetInt("task", 0)
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := m.Child("attempt")
	b.SetInt("task", 1)
	b.End()
	m.End()
	r := job.Child("reduce-phase")
	r.End()
	job.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur", ev.Name)
		}
		byName[ev.Name]++
	}
	if byName["job:trace"] != 1 || byName["map-phase"] != 1 || byName["attempt"] != 2 || byName["reduce-phase"] != 1 {
		t.Fatalf("event names = %v", byName)
	}
	// Sequential children (map-phase then reduce-phase) share the job's
	// lane; the two attempts are sequential too, so they share map-phase's.
	var jobTid, mapTid, reduceTid int
	for _, ev := range doc.TraceEvents {
		switch ev.Name {
		case "job:trace":
			jobTid = ev.Tid
		case "map-phase":
			mapTid = ev.Tid
		case "reduce-phase":
			reduceTid = ev.Tid
		}
	}
	if mapTid != jobTid || reduceTid != jobTid {
		t.Fatalf("sequential phases should share the job lane: job=%d map=%d reduce=%d", jobTid, mapTid, reduceTid)
	}
}

func TestWriteChromeTraceOverlappingSiblings(t *testing.T) {
	tr := NewTracer()
	job := tr.Start("job")
	// Two children that overlap in time must land on different lanes or
	// chrome://tracing would mis-nest the complete events.
	a := job.Child("a")
	time.Sleep(time.Millisecond)
	b := job.Child("b")
	time.Sleep(time.Millisecond)
	a.End()
	b.End()
	job.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		tids[ev.Name] = ev.Tid
	}
	if tids["a"] == tids["b"] {
		t.Fatalf("overlapping siblings share lane %d", tids["a"])
	}
	if tids["a"] != tids["job"] {
		t.Fatalf("first child should inherit the parent lane: job=%d a=%d", tids["job"], tids["a"])
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	tr := NewTracer()
	tr.Start("root").End()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace output")
	}
}
