package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; Add is a single atomic add, safe for concurrent use and
// allocation-free.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge holds a last-observed value (e.g. live workers, rows in the
// current layer). Safe for concurrent use, allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is one bucket per bit length, so bucket i counts
// observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0).
const histBuckets = 65

// Histogram records a distribution of int64 observations (bytes,
// microseconds, row counts) in power-of-two buckets. Observe is a pair of
// atomic adds plus one atomic max update — allocation-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from
// the power-of-two buckets: the top of the bucket holding the q-th
// observation.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is one histogram's exported view.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
}

// Registry is a named collection of metrics. Metric lookup by name takes
// a lock and may allocate (callers are expected to resolve names once,
// typically into package-level vars); the returned metric pointers are
// stable for the registry's lifetime and their updates are lock-free.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the process-wide registry every subsystem records into. In a
// cluster deployment each process (coordinator, worker) has its own,
// exposed over its own /debug/vars.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time view of a registry, the payload of the
// /debug/vars endpoint.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = HistogramSnapshot{
			Count: h.Count(), Sum: h.Sum(), Max: h.Max(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		}
	}
	return s
}

// Names lists every registered metric name, sorted (for tests and docs).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
