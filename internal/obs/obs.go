// Package obs is the repo's dependency-free observability layer: a
// process-wide metrics registry (counters, gauges, histograms — atomic,
// allocation-free on the hot path) and a span tracer recording where a
// distributed run spends its time and bytes.
//
// The paper's evaluation (Figures 8–13) is entirely about where time and
// communication go: per-layer DP time, shuffle volume (Equation 6),
// speculative DGreedyAbs job counts. The mr engines, the shuffle fast
// path, and the dist algorithms all record into obs so tests and
// benchmarks can assert on internal behavior (exactly one retry, this
// many speculative greedy runs, that many re-shuffled bytes) instead of
// only on output equality, and so a live cluster exposes the same numbers
// over HTTP while it runs.
//
// Naming convention: metric names are snake_case, prefixed by subsystem —
// mr_* (engines and shuffle), dist_* (paper algorithms), serve_* (the
// AQP frontend). Counters count events or bytes monotonically; gauges
// hold last-observed values; histograms record size/duration
// distributions in power-of-two buckets.
//
// Exposition: Handler serves a /debug/vars-style JSON snapshot of a
// Registry, and Mount wires it together with net/http/pprof onto a mux
// (used by dwserve and dwworker). Tracer.WriteChromeTrace dumps a span
// tree in Chrome trace-event format (chrome://tracing, Perfetto), used by
// dwbench -trace and dwtcli -trace.
package obs
