package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("test_events") != c {
		t.Fatal("Counter did not return a stable pointer")
	}
	g := r.Gauge("test_level")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_sizes")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d, want 5050", h.Sum())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d, want 100", h.Max())
	}
	// Power-of-two buckets give an upper bound: the p50 (value 50) lives in
	// bucket [32,64), whose top is 63; the p99 lives in [64,128) → 127.
	if p := h.Quantile(0.50); p < 50 || p > 63 {
		t.Fatalf("p50 bound = %d, want within [50,63]", p)
	}
	if p := h.Quantile(0.99); p < 99 || p > 127 {
		t.Fatalf("p99 bound = %d, want within [99,127]", p)
	}
	h2 := r.Histogram("test_zero")
	h2.Observe(0)
	h2.Observe(-5)
	if h2.Quantile(0.5) != 0 {
		t.Fatalf("non-positive observations should land in bucket 0")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("level").Set(int64(j))
				r.Histogram("sizes").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("sizes").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter").Add(3)
	r.Gauge("a_gauge").Set(9)
	r.Histogram("c_hist").Observe(16)
	snap := r.Snapshot()
	if snap.Counters["b_counter"] != 3 || snap.Gauges["a_gauge"] != 9 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	hs := snap.Histograms["c_hist"]
	if hs.Count != 1 || hs.Sum != 16 || hs.Max != 16 {
		t.Fatalf("histogram snapshot mismatch: %+v", hs)
	}
	names := r.Names()
	want := []string{"a_gauge", "b_counter", "c_hist"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestHandlerServesSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("mr_task_retries").Add(2)
	r.Histogram("dist_layer_row_bytes").Observe(128)
	mux := http.NewServeMux()
	Mount(mux, r)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	if snap.Counters["mr_task_retries"] != 2 {
		t.Fatalf("counter over HTTP = %d, want 2", snap.Counters["mr_task_retries"])
	}
	if snap.Histograms["dist_layer_row_bytes"].Count != 1 {
		t.Fatalf("histogram over HTTP = %+v", snap.Histograms["dist_layer_row_bytes"])
	}

	pp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status = %d", pp.StatusCode)
	}
}
