package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer records a forest of hierarchical spans: job → layer → task
// attempt → stage. Tracing is explicitly opt-in — a nil *Tracer and a nil
// *Span are both valid receivers whose methods no-op — so instrumented
// code threads spans unconditionally and pays nothing when tracing is
// off.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span // guarded by mu
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{}
}

// Start opens a root span. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the root spans recorded so far.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed region of work. Children may be opened concurrently
// from multiple goroutines (task attempts of one phase); all methods are
// safe for concurrent use.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time      // guarded by mu
	attrs    map[string]any // guarded by mu
	children []*Span        // guarded by mu
}

// Child opens a sub-span. Nil-safe: a nil parent returns a nil child, so
// disabled tracing short-circuits the whole tree.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetInt attaches an integer attribute (bytes, records, attempt numbers).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetFloat attaches a float attribute (error bounds, epsilons).
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetStr attaches a string attribute (worker names, outcomes).
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetBool attaches a boolean attribute (failed, feasible).
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.set(key, v)
}

func (s *Span) set(key string, v any) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's elapsed time (up to now if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Attr returns one attribute value (nil when absent).
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Children returns the span's sub-spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and every descendant, depth-first.
func (s *Span) Walk(visit func(*Span)) {
	if s == nil {
		return
	}
	visit(s)
	for _, c := range s.Children() {
		c.Walk(visit)
	}
}

// ---- Chrome trace-event export ----

// chromeEvent is one complete ("X") event of the Chrome trace-event
// format, loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the object form of the trace file.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// endOrNow returns the span's end time under its lock, or the current
// time for a span still open. Callers that lay out timelines must use
// this rather than reading end directly: the span may be ended
// concurrently by a task attempt.
func (s *Span) endOrNow() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Now()
	}
	return s.end
}

// WriteChromeTrace writes every recorded span as Chrome trace events.
// Complete events on one pid/tid must nest properly, so sibling spans
// that overlap in time are pushed onto fresh lanes (tids) while
// sequential children share their parent's lane.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var events []chromeEvent
	var epoch time.Time
	nextLane := 1
	for _, root := range t.Roots() {
		if epoch.IsZero() || root.start.Before(epoch) {
			epoch = root.start
		}
	}
	var emit func(s *Span, lane int)
	emit = func(s *Span, lane int) {
		s.mu.Lock()
		end := s.end
		if end.IsZero() {
			end = time.Now()
		}
		args := make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			args[k] = v
		}
		children := append([]*Span(nil), s.children...)
		s.mu.Unlock()
		events = append(events, chromeEvent{
			Name: s.name, Ph: "X",
			Ts:  float64(s.start.Sub(epoch)) / float64(time.Microsecond),
			Dur: float64(end.Sub(s.start)) / float64(time.Microsecond),
			Pid: 1, Tid: lane, Args: args,
		})
		// Lane assignment: children sorted by start time, greedily packed —
		// a child reuses a lane whose previous occupant ended before it
		// starts (lane 0 is the parent's own lane), otherwise opens a new
		// one. This keeps strictly sequential phases on the parent's row
		// and fans concurrent task attempts out onto their own rows.
		sort.Slice(children, func(i, j int) bool { return children[i].start.Before(children[j].start) })
		laneFree := map[int]time.Time{lane: s.start}
		lanes := []int{lane}
		for _, c := range children {
			placed := -1
			for _, l := range lanes {
				if !laneFree[l].After(c.start) {
					placed = l
					break
				}
			}
			if placed < 0 {
				placed = nextLane + 1
				nextLane++
				lanes = append(lanes, placed)
			}
			laneFree[placed] = c.endOrNow()
			emit(c, placed)
		}
	}
	for _, root := range t.Roots() {
		lane := nextLane
		nextLane++
		emit(root, lane)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the trace to a file path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
