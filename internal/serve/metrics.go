package serve

import "dwmaxerr/internal/obs"

// Query-serving metrics (serve_* prefix), the package's full namespace in
// one place (enforced by dwlint's metricname analyzer). Counted at the
// handler, not in the mux, so only recognized endpoints contribute; bad
// requests are counted once per rejected query in httpError.
var (
	obsInfoQueries  = obs.Default.Counter("serve_info_queries")
	obsPointQueries = obs.Default.Counter("serve_point_queries")
	obsRangeQueries = obs.Default.Counter("serve_range_queries")
	obsCoefQueries  = obs.Default.Counter("serve_coefficient_queries")
	obsBadRequests  = obs.Default.Counter("serve_bad_requests")

	// Admission gate (limits.go): queries turned away at the door, queries
	// cut off by the per-query deadline, and the live in-flight level.
	obsRejected = obs.Default.Counter("serve_rejected_total")
	obsTimeouts = obs.Default.Counter("serve_timeouts_total")
	obsInflight = obs.Default.Gauge("serve_inflight")

	// Streaming ingest endpoint: POST /ingest requests, individual values
	// accepted, and pushes the ingestor refused (injected fault, poisoned
	// checkpoint, closed) — a refused push ends its request early, so one
	// request contributes at most one error.
	obsIngestRequests = obs.Default.Counter("serve_ingest_requests")
	obsIngestValues   = obs.Default.Counter("serve_ingest_values")
	obsIngestErrors   = obs.Default.Counter("serve_ingest_errors")

	// Shard node (node.go): queries answered over the peer transport,
	// queries for shards the ring says this node does not own (a routing
	// bug or a membership disagreement — zero in a healthy cluster), the
	// decoded-synopsis cache, queries shed outright under overload, and
	// queries answered from a coarser cached synopsis instead of shedding.
	obsShardQueries  = obs.Default.Counter("serve_shard_queries")
	obsShardNotOwned = obs.Default.Counter("serve_shard_not_owned")
	obsShardHits     = obs.Default.Counter("serve_shard_cache_hits")
	obsShardMisses   = obs.Default.Counter("serve_shard_cache_misses")
	obsShardEvicted  = obs.Default.Counter("serve_shard_cache_evictions")
	obsShardWarm     = obs.Default.Gauge("serve_shard_warm")
	obsShardShed     = obs.Default.Counter("serve_shard_shed_total")
	obsShardDegraded = obs.Default.Counter("serve_shard_degraded_total")

	// Membership & rebalancing (node.go, router.go): the current ring
	// epoch (set by a node when it commits, by the router when it cuts
	// over — in one process they agree once cutover completes), epoch
	// bumps the router committed (exactly one per membership change),
	// queries tagged with an epoch the node does not recognize (a
	// legitimate cutover race or a restarted process — never counted as
	// serve_shard_not_owned), shards warmed by prepare before a node acks
	// a proposed epoch, shards evicted at commit because the new ring
	// moved them elsewhere, and cache entries the post-commit
	// anti-entropy audit had to fix (owned but cold, or a stale role).
	obsEpoch            = obs.Default.Gauge("serve_epoch")
	obsEpochBumps       = obs.Default.Counter("serve_epoch_bumps_total")
	obsEpochStale       = obs.Default.Counter("serve_epoch_stale_queries")
	obsRebalanceWarmed  = obs.Default.Counter("serve_rebalance_warmed_total")
	obsRebalanceEvicted = obs.Default.Counter("serve_rebalance_evicted_total")
	obsRebalanceAudit   = obs.Default.Counter("serve_rebalance_audit_fixed_total")

	// Failure detector (router.go): members that crossed the suspect
	// threshold of consecutive missed heartbeats, and members the
	// detector demoted from membership (each demotion is an epoch bump).
	obsDetectorSuspects = obs.Default.Counter("serve_detector_suspects_total")
	obsDetectorDeaths   = obs.Default.Counter("serve_detector_deaths_total")

	// Stray fills (cache.go): cache inserts for shards the node does not
	// own — answered honestly but confined to a small evict-first
	// segment so a burst of misrouted queries cannot evict owned shards.
	obsStrayFills = obs.Default.Counter("serve_shard_stray_fills")

	// Router (router.go): queries routed, forward attempts that failed on
	// a live connection, owners skipped because their link was already
	// known down (redial backoff pending), failovers — a query answered by
	// a later replica after an earlier one actually failed mid-attempt —
	// queries no replica could answer, and the live peer-link gauge.
	obsRouteQueries     = obs.Default.Counter("serve_route_queries")
	obsForwardErrors    = obs.Default.Counter("serve_forward_errors")
	obsForwardSkipped   = obs.Default.Counter("serve_forward_skipped")
	obsFailoverTotal    = obs.Default.Counter("serve_failover_total")
	obsRouteUnavailable = obs.Default.Counter("serve_route_unavailable")
	obsPeersUp          = obs.Default.Gauge("serve_peers_up")
)
