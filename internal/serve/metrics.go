package serve

import "dwmaxerr/internal/obs"

// Query-serving metrics (serve_* prefix), the package's full namespace in
// one place (enforced by dwlint's metricname analyzer). Counted at the
// handler, not in the mux, so only recognized endpoints contribute; bad
// requests are counted once per rejected query in httpError.
var (
	obsInfoQueries  = obs.Default.Counter("serve_info_queries")
	obsPointQueries = obs.Default.Counter("serve_point_queries")
	obsRangeQueries = obs.Default.Counter("serve_range_queries")
	obsCoefQueries  = obs.Default.Counter("serve_coefficient_queries")
	obsBadRequests  = obs.Default.Counter("serve_bad_requests")
)
