package serve

import "dwmaxerr/internal/obs"

// Query-serving metrics (serve_* prefix), the package's full namespace in
// one place (enforced by dwlint's metricname analyzer). Counted at the
// handler, not in the mux, so only recognized endpoints contribute; bad
// requests are counted once per rejected query in httpError.
var (
	obsInfoQueries  = obs.Default.Counter("serve_info_queries")
	obsPointQueries = obs.Default.Counter("serve_point_queries")
	obsRangeQueries = obs.Default.Counter("serve_range_queries")
	obsCoefQueries  = obs.Default.Counter("serve_coefficient_queries")
	obsBadRequests  = obs.Default.Counter("serve_bad_requests")

	// Admission gate (limits.go): queries turned away at the door, queries
	// cut off by the per-query deadline, and the live in-flight level.
	obsRejected = obs.Default.Counter("serve_rejected_total")
	obsTimeouts = obs.Default.Counter("serve_timeouts_total")
	obsInflight = obs.Default.Gauge("serve_inflight")

	// Streaming ingest endpoint: POST /ingest requests, individual values
	// accepted, and pushes the ingestor refused (injected fault, poisoned
	// checkpoint, closed) — a refused push ends its request early, so one
	// request contributes at most one error.
	obsIngestRequests = obs.Default.Counter("serve_ingest_requests")
	obsIngestValues   = obs.Default.Counter("serve_ingest_values")
	obsIngestErrors   = obs.Default.Counter("serve_ingest_errors")
)
