package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"dwmaxerr/internal/synopsis"
)

// Shard storage for the serve tier: where a node finds the synopses it
// owns. The layout is one file per shard under a flat directory,
//
//	<dataset>.b<B>.<metric>.dws
//
// holding the standard DWS1 synopsis encoding, optionally followed by an
// 8-byte little-endian float64 trailer carrying the per-value maximum
// absolute error guarantee. synopsis.Read consumes exactly the encoded
// synopsis, so plain .dws files written by older tooling load fine (the
// guarantee then defaults to 0: honest "no guarantee", intervals
// omitted), and shard files remain readable by anything that speaks
// DWS1.

// Shard is one loadable synopsis with its guarantee.
type Shard struct {
	Key    ShardKey
	Syn    *synopsis.Synopsis
	MaxAbs float64
}

// Store resolves shard keys to synopses. Implementations must be safe
// for concurrent use.
type Store interface {
	// Load reads one shard; a missing shard is an error.
	Load(ShardKey) (*Shard, error)
	// Keys enumerates every shard the store holds.
	Keys() ([]ShardKey, error)
}

// shardNameRE constrains dataset and metric names so the key↔filename
// mapping is bijective (the separators '.' and '/' never appear inside a
// component) and a hostile key cannot escape the store directory.
var shardNameRE = regexp.MustCompile(`^[A-Za-z0-9_-]+$`)

func (k ShardKey) valid() error {
	if !shardNameRE.MatchString(k.Dataset) {
		return fmt.Errorf("serve: bad dataset name %q", k.Dataset)
	}
	if !shardNameRE.MatchString(k.Metric) {
		return fmt.Errorf("serve: bad metric name %q", k.Metric)
	}
	if k.B < 1 {
		return fmt.Errorf("serve: bad budget %d", k.B)
	}
	return nil
}

// shardFile is the file name for a key (no directory).
func shardFile(k ShardKey) string {
	return k.Dataset + ".b" + strconv.Itoa(k.B) + "." + k.Metric + ".dws"
}

// parseShardFile inverts shardFile; ok is false for foreign files.
func parseShardFile(name string) (ShardKey, bool) {
	stem, found := strings.CutSuffix(name, ".dws")
	if !found {
		return ShardKey{}, false
	}
	parts := strings.Split(stem, ".")
	if len(parts) != 3 || !strings.HasPrefix(parts[1], "b") {
		return ShardKey{}, false
	}
	b, err := strconv.Atoi(parts[1][1:])
	if err != nil {
		return ShardKey{}, false
	}
	k := ShardKey{Dataset: parts[0], B: b, Metric: parts[2]}
	if k.valid() != nil {
		return ShardKey{}, false
	}
	return k, true
}

// DirStore serves shards from a flat directory.
type DirStore struct {
	Dir string
}

// Load implements Store.
func (d DirStore) Load(k ShardKey) (*Shard, error) {
	if err := k.valid(); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(d.Dir, shardFile(k)))
	if err != nil {
		return nil, fmt.Errorf("serve: shard %s: %w", k, err)
	}
	defer f.Close()
	syn, err := synopsis.Read(f)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %s: %w", k, err)
	}
	maxAbs, err := readMaxAbsTrailer(f, syn)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %s: %w", k, err)
	}
	return &Shard{Key: k, Syn: syn, MaxAbs: maxAbs}, nil
}

// readMaxAbsTrailer reads the optional guarantee trailer. synopsis.Read
// buffers, so seek to the synopsis's exact encoded size instead of
// trusting the reader's position.
func readMaxAbsTrailer(f *os.File, syn *synopsis.Synopsis) (float64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	body := int64(syn.EncodedSize())
	switch st.Size() {
	case body:
		return 0, nil
	case body + 8:
		var buf [8]byte
		if _, err := f.ReadAt(buf[:], body); err != nil {
			return 0, err
		}
		v := float64frombytes(buf[:])
		if v < 0 || v != v { // negative or NaN guarantee is corruption
			return 0, fmt.Errorf("implausible guarantee trailer %v", v)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("trailing garbage: %d bytes after synopsis", st.Size()-body)
	}
}

// Keys implements Store.
func (d DirStore) Keys() ([]ShardKey, error) {
	ents, err := os.ReadDir(d.Dir)
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	var keys []ShardKey
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if k, ok := parseShardFile(e.Name()); ok {
			keys = append(keys, k)
		}
	}
	return keys, nil
}

// WriteShard persists one shard into a store directory — the producer
// side of DirStore, used by dwtcli -store and the cluster tests. The
// write goes through a temp file + rename so a concurrently-warming node
// never sees a torn shard.
func WriteShard(dir string, k ShardKey, syn *synopsis.Synopsis, maxAbs float64) error {
	if err := k.valid(); err != nil {
		return err
	}
	if maxAbs < 0 || maxAbs != maxAbs {
		return fmt.Errorf("serve: shard %s: bad guarantee %v", k, maxAbs)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".shard-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := syn.WriteTo(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: shard %s: %w", k, err)
	}
	if maxAbs > 0 {
		if _, err := tmp.Write(float64tobytes(maxAbs)); err != nil {
			tmp.Close()
			return fmt.Errorf("serve: shard %s: %w", k, err)
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, shardFile(k)))
}
