package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/synopsis"
)

// Admission control for the query service. A synopsis server is the
// cheap, always-up face of an expensive pipeline; when a burst outruns it,
// the right failure mode is an immediate, honest 503 with a Retry-After
// hint — not a growing queue of half-served connections. Limits bounds the
// number of in-flight queries and the wall-clock each one may take.

// Limits configures the admission gate. The zero value imposes nothing.
type Limits struct {
	// MaxInFlight caps concurrently-running queries; excess requests are
	// answered 503 + Retry-After without touching a handler. 0 = unlimited.
	MaxInFlight int
	// QueryTimeout bounds one query end to end; a query that exceeds it is
	// answered 503. 0 = no deadline.
	QueryTimeout time.Duration
	// RetryAfter is the hint in rejection responses. When zero, the gate
	// derives the hint from the observed query duration (an EWMA of
	// completed queries — the expected wait for an in-flight slot to
	// free), falling back to 1s before anything has been observed.
	RetryAfter time.Duration
}

// NewLimited is New with an admission gate in front of the handlers.
func NewLimited(s *synopsis.Synopsis, maxAbs float64, lim Limits) (*Server, error) {
	srv, err := New(s, maxAbs)
	if err != nil {
		return nil, err
	}
	srv.gate = newGate(srv.mux, lim)
	return srv, nil
}

// gate enforces Limits around an inner handler.
type gate struct {
	inner http.Handler
	lim   Limits
	slots chan struct{} // nil when MaxInFlight == 0
	timed bool          // a TimeoutHandler is installed below the gate
	// avg is an EWMA of completed-query wall time in nanoseconds
	// (quarter-weight updates), feeding derived Retry-After hints.
	avg atomic.Int64
}

func newGate(inner http.Handler, lim Limits) *gate {
	// The chaos point sits inside the timed region so an injected stall is
	// subject to the query deadline, like any slow handler would be.
	g := &gate{inner: chaosHandler{inner}, lim: lim}
	if lim.QueryTimeout > 0 {
		// TimeoutHandler answers 503 when the deadline passes and
		// suppresses the late handler's writes. completionMarker sits
		// just inside it so the gate can tell a deadline 503 (inner
		// handler never completed) from a 503 the inner handler chose to
		// send (mux fallthrough, ingest overload, warming up) — only the
		// former is serve_timeouts_total.
		g.timed = true
		g.inner = http.TimeoutHandler(completionMarker{g.inner}, lim.QueryTimeout,
			`{"error":"query deadline exceeded"}`)
	}
	if lim.MaxInFlight > 0 {
		g.slots = make(chan struct{}, lim.MaxInFlight)
	}
	return g
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.slots != nil {
		select {
		case g.slots <- struct{}{}:
			defer func() { <-g.slots }()
		default:
			obsRejected.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(g.retryAfterSeconds()))
			httpError(w, http.StatusServiceUnavailable,
				fmt.Errorf("serve: %d queries in flight, try again later", g.lim.MaxInFlight))
			return
		}
	}
	obsInflight.Add(1)
	defer obsInflight.Add(-1)
	var probe *timeoutProbe
	if g.timed {
		probe = &timeoutProbe{}
		r = r.WithContext(context.WithValue(r.Context(), probeKey{}, probe))
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	g.inner.ServeHTTP(rec, r)
	g.observe(time.Since(start))
	// A deadline kill is a 503 recorded while a TimeoutHandler is
	// installed AND the inner handler never ran to completion. Without
	// both conditions, any handler 503 below the gate (Limits with
	// QueryTimeout == 0 has no TimeoutHandler at all) would inflate
	// serve_timeouts_total.
	if g.timed && rec.status == http.StatusServiceUnavailable && !probe.done.Load() {
		obsTimeouts.Inc()
	}
}

// observe folds one completed query's wall time into the EWMA
// (new = 3/4·old + 1/4·d; the first observation seeds it directly).
func (g *gate) observe(d time.Duration) {
	for {
		old := g.avg.Load()
		next := int64(d)
		if old != 0 {
			next = old - old/4 + int64(d)/4
		}
		if g.avg.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds is the rejection hint: the explicit Limits value if
// set, otherwise the observed average query duration — roughly when the
// next in-flight slot frees — and 1s before anything has completed.
func (g *gate) retryAfterSeconds() int {
	if g.lim.RetryAfter > 0 {
		return retrySeconds(g.lim.RetryAfter)
	}
	if avg := g.avg.Load(); avg > 0 {
		return retrySeconds(time.Duration(avg))
	}
	return 1
}

// retrySeconds renders a duration as a Retry-After value: ceiling
// seconds, floored at 1 (clients treat 0 as "immediately", defeating
// the hint) and capped at 60 (beyond that the estimate is noise).
func retrySeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	if s > 60 {
		s = 60
	}
	return s
}

// probeKey carries the per-request timeoutProbe through the context.
type probeKey struct{}

// timeoutProbe records whether the inner handler ran to completion; the
// flag is atomic because TimeoutHandler abandons the handler goroutine at
// the deadline, so the gate may read it while the handler still runs.
type timeoutProbe struct{ done atomic.Bool }

// completionMarker flags the request's probe once the inner handler
// returns, distinguishing handler-chosen 503s from deadline kills.
type completionMarker struct{ inner http.Handler }

func (h completionMarker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inner.ServeHTTP(w, r)
	if p, ok := r.Context().Value(probeKey{}).(*timeoutProbe); ok {
		p.done.Store(true)
	}
}

// chaosHandler evaluates the query chaos point before the real handlers.
type chaosHandler struct {
	inner http.Handler
}

func (h chaosHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch act := chaos.Point(chaosQuery); act.Kind {
	case chaos.Fail:
		httpError(w, http.StatusInternalServerError, act.Err)
		return
	case chaos.Delay:
		time.Sleep(act.Sleep)
	}
	h.inner.ServeHTTP(w, r)
}

// statusRecorder remembers the first status code written.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (the
// ingest endpoint, future long-polls) work through the gate; without it
// the recorder would hide the connection's Flusher and silently buffer.
// Note the recorder itself always satisfies http.Flusher — when the
// underlying writer doesn't (notably inside http.TimeoutHandler, whose
// writer must buffer to suppress late writes), Flush is a no-op.
//
// http.Hijacker is intentionally NOT forwarded: a hijacked connection
// escapes the status recorder, the in-flight gauge and the timeout
// machinery, so the gate's accounting would lie for the rest of the
// connection's life. Handlers behind the gate must not hijack.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		r.wrote = true
		f.Flush()
	}
}
