package serve

import (
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"dwmaxerr/internal/chaos"
)

// TestChaosServeReplicaFailoverSoak kills one replica of an R=2 shard
// mid-storm via the serve.replica failpoint and holds the cluster to
// the paper-grade availability contract:
//
//   - zero failed client queries — every one of the storm's queries
//     answers 200, before, during and after the death;
//   - responses byte-identical to a fault-free run of the same storm
//     (replicas hold the same deterministic synopsis, so failover must
//     be invisible in the payload);
//   - exactly one failover: the single query that was mid-exchange when
//     the primary died; every later query skips the known-dead primary
//     under backoff instead of re-failing;
//   - exact query accounting across the replicas: the dying query was
//     never answered, so the primary answered killHit-1 and the replica
//     the rest.
func TestChaosServeReplicaFailoverSoak(t *testing.T) {
	const storm = 40
	const killHit = 10 // the primary dies answering its 10th query

	dir := writeClusterStore(t)
	names := []string{"alpha", "beta"}
	key := ShardKey{Dataset: "paper", B: 4, Metric: "abs"}
	primary := NewRing(0, names...).Owner(key)
	queries := make([]string, storm)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = "/point?i=" + strconv.Itoa(i%8)
		} else {
			queries[i] = "/range?lo=0&hi=" + strconv.Itoa(1+i%7)
		}
	}

	// Fault-free baseline: same store, same storm, fresh cluster.
	baseline := make([][]byte, storm)
	{
		tc := startCluster(t, dir, names, 2, nil, nil)
		for i, q := range queries {
			status, _, body := getBody(t, tc.http.URL+q)
			if status != http.StatusOK {
				t.Fatalf("baseline query %d (%s): status %d: %s", i, q, status, body)
			}
			baseline[i] = body
		}
		tc.http.Close()
	}

	// Chaos run: only the primary carries the armed failpoint — the
	// injector is process-global, and the contract under test is ONE
	// replica dying, not both.
	if err := chaos.EnableSpec("5,serve.replica:drop#" + strconv.Itoa(killHit)); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()
	tc := startCluster(t, dir, names, 2, nil, nil)
	for name, n := range tc.nodes {
		if name != primary {
			n.chaosPoint = ""
		}
	}
	answered := obsShardQueries.Value()
	failovers := obsFailoverTotal.Value()
	skipped := obsForwardSkipped.Value()
	unavailable := obsRouteUnavailable.Value()

	for i, q := range queries {
		status, hdr, body := getBody(t, tc.http.URL+q)
		if status != http.StatusOK {
			t.Fatalf("chaos query %d (%s): status %d: %s — a client saw the failover", i, q, status, body)
		}
		if string(body) != string(baseline[i]) {
			t.Fatalf("chaos query %d (%s): response diverged from fault-free run:\n  got  %s\n  want %s",
				i, q, body, baseline[i])
		}
		wantNode := primary
		if i+1 >= killHit {
			wantNode = "" // any surviving replica; asserted dead below
		}
		if wantNode != "" && hdr.Get("X-Dwserve-Node") != wantNode {
			t.Fatalf("chaos query %d answered by %q before the kill, want primary %q",
				i, hdr.Get("X-Dwserve-Node"), wantNode)
		}
	}
	if !tc.nodes[primary].Dead() {
		t.Fatal("primary survived the serve.replica kill")
	}
	if fired := chaos.Active().Fired(chaosReplica); fired != 1 {
		t.Fatalf("serve.replica fired %d times, want exactly 1", fired)
	}
	if d := obsFailoverTotal.Value() - failovers; d != 1 {
		t.Errorf("serve_failover_total grew by %d, want exactly 1 (the mid-exchange query)", d)
	}
	if d := obsForwardSkipped.Value() - skipped; d != storm-killHit {
		t.Errorf("serve_forward_skipped grew by %d, want %d (every post-kill query skips the dead primary once)",
			d, storm-killHit)
	}
	if d := obsRouteUnavailable.Value() - unavailable; d != 0 {
		t.Errorf("serve_route_unavailable grew by %d, want 0", d)
	}
	// The dying query was never counted: the primary answered killHit-1,
	// the replica answered the failover query plus everything after.
	if d := obsShardQueries.Value() - answered; d != storm {
		t.Errorf("serve_shard_queries grew by %d across the storm, want %d", d, storm)
	}
}

// TestChaosServeRebalanceChurnSoak is the membership churn contract:
// under continuous client traffic, a node dies (the failure detector
// demotes it and shrinks the ring), then a fresh node joins (its shards
// migrate before the ring routes to it) — and across the whole storm
//
//   - zero failed client queries: every query answers 200, through the
//     death, the demotion cutover, and the join cutover;
//   - responses byte-identical to a fault-free baseline of the same
//     storm (synopses are deterministic, so membership churn must be
//     invisible in the payload);
//   - serve_shard_not_owned never moves: cutover races are accounted as
//     stale-epoch queries, not misroutes, and at steady state the ring
//     and the routing agree exactly;
//   - exactly one epoch bump per membership change, pinned by counter
//     deltas: the death is one bump, the join is one more.
func TestChaosServeRebalanceChurnSoak(t *testing.T) {
	const storm = 30
	dir := writeClusterStore(t)
	names := []string{"n1", "n2", "n3"}
	const victim = "n3"
	queries := make([]string, storm)
	for i := range queries {
		ds := []string{"paper", "alpha", "bravo", "charlie"}[i%4]
		if i%2 == 0 {
			queries[i] = "/point?i=" + strconv.Itoa(i%8) + "&dataset=" + ds
		} else {
			queries[i] = "/range?lo=0&hi=" + strconv.Itoa(1+i%7) + "&dataset=" + ds
		}
	}

	// Fault-free baseline: same store, same storm, fresh static cluster.
	baseline := make([][]byte, storm)
	{
		tc := startCluster(t, dir, names, 2, nil, nil)
		for i, q := range queries {
			status, _, body := getBody(t, tc.http.URL+q)
			if status != http.StatusOK {
				t.Fatalf("baseline query %d (%s): status %d: %s", i, q, status, body)
			}
			baseline[i] = body
		}
		tc.http.Close()
	}

	// Churn run: fast heartbeats, detector armed at 3 misses, demotions
	// damped for 100ms after any change.
	tc := startCluster(t, dir, names, 2, nil, func(cfg *RouterConfig) {
		cfg.Heartbeat = 20 * time.Millisecond
		cfg.DetectMisses = 3
		cfg.DampWindow = 100 * time.Millisecond
	})
	notOwned := obsShardNotOwned.Value()
	bumps := obsEpochBumps.Value()
	deaths := obsDetectorDeaths.Value()
	suspects := obsDetectorSuspects.Value()
	unavailable := obsRouteUnavailable.Value()

	ask := func(i int) {
		t.Helper()
		q := queries[i%storm]
		status, _, body := getBody(t, tc.http.URL+q)
		if status != http.StatusOK {
			t.Fatalf("churn query %d (%s): status %d: %s — a client saw the churn", i, q, status, body)
		}
		if string(body) != string(baseline[i%storm]) {
			t.Fatalf("churn query %d (%s): response diverged from fault-free run:\n  got  %s\n  want %s",
				i, q, body, baseline[i%storm])
		}
	}

	// Phase 1: steady state at epoch 0.
	for i := 0; i < storm; i++ {
		ask(i)
	}

	// Phase 2: kill the victim mid-traffic and keep querying while the
	// detector counts misses, demotes it, and cuts over to epoch 1.
	tc.nodes[victim].Close()
	deadline := time.Now().Add(10 * time.Second)
	for i := storm; tc.router.Membership().Epoch < 1; i++ {
		if time.Now().After(deadline) {
			t.Fatal("failure detector never demoted the dead node")
		}
		ask(i)
		time.Sleep(5 * time.Millisecond)
	}
	if mem := tc.router.Membership(); mem.Contains(victim) || len(mem.Members) != 2 {
		t.Fatalf("post-demotion membership %+v, want the two survivors", mem)
	}
	for i := 0; i < storm; i++ {
		ask(i)
	}

	// Phase 3: join a fresh node. It starts cold — knowing only itself —
	// and must be warmed by the cutover's prepare phase, not by luck.
	joiner, err := NewNode(NodeConfig{
		Name: "n5", Nodes: []string{"n5"}, Replicas: 2, Store: DirStore{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go joiner.Serve(ln)
	t.Cleanup(func() { joiner.Close() })
	warmedBefore := joiner.Warmed()
	mem, err := tc.router.Join("n5", ln.Addr().String())
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if mem.Epoch != 2 || !mem.Contains("n5") || len(mem.Members) != 3 {
		t.Fatalf("post-join membership %+v, want epoch 2 with n5 and both survivors", mem)
	}
	if joiner.Warmed() <= warmedBefore {
		t.Fatalf("join acked with %d warm shards (was %d): prepare did not migrate anything", joiner.Warmed(), warmedBefore)
	}
	for i := 0; i < storm; i++ {
		ask(i)
	}

	// Steady state: the joiner answers as primary for the shards the new
	// ring hands it, through the router.
	ring := NewRing(0, "n1", "n2", "n5")
	served := false
	for _, ds := range []string{"paper", "alpha", "bravo", "charlie"} {
		key := ShardKey{Dataset: ds, B: 4, Metric: "abs"}
		if ring.Owner(key) != "n5" {
			continue
		}
		served = true
		status, hdr, body := getBody(t, tc.http.URL+"/point?i=1&dataset="+ds)
		if status != http.StatusOK {
			t.Fatalf("post-join query for %s: status %d: %s", ds, status, body)
		}
		if hdr.Get("X-Dwserve-Node") != "n5" || hdr.Get("X-Dwserve-Role") != "primary" {
			t.Errorf("post-join %s answered by %q/%q, ring primary is n5",
				ds, hdr.Get("X-Dwserve-Node"), hdr.Get("X-Dwserve-Role"))
		}
		if hdr.Get("X-Dwserve-Epoch") != "2" {
			t.Errorf("post-join %s answered under epoch %q, want 2", ds, hdr.Get("X-Dwserve-Epoch"))
		}
	}
	if !served {
		t.Error("joiner owns no b4 primary; widen the dataset set so the assertion bites")
	}

	if d := obsShardNotOwned.Value() - notOwned; d != 0 {
		t.Errorf("serve_shard_not_owned grew by %d across the churn, want 0", d)
	}
	if d := obsEpochBumps.Value() - bumps; d != 2 {
		t.Errorf("serve_epoch_bumps_total grew by %d, want exactly 2 (one per membership change)", d)
	}
	if d := obsDetectorDeaths.Value() - deaths; d != 1 {
		t.Errorf("serve_detector_deaths_total grew by %d, want exactly 1", d)
	}
	if d := obsDetectorSuspects.Value() - suspects; d < 1 {
		t.Errorf("serve_detector_suspects_total grew by %d, want at least 1", d)
	}
	if d := obsRouteUnavailable.Value() - unavailable; d != 0 {
		t.Errorf("serve_route_unavailable grew by %d, want 0", d)
	}
	if got := joiner.Epoch(); got != 2 {
		t.Errorf("joiner settled at epoch %d, want 2", got)
	}
}
