package serve

import (
	"net/http"
	"strconv"
	"testing"

	"dwmaxerr/internal/chaos"
)

// TestChaosServeReplicaFailoverSoak kills one replica of an R=2 shard
// mid-storm via the serve.replica failpoint and holds the cluster to
// the paper-grade availability contract:
//
//   - zero failed client queries — every one of the storm's queries
//     answers 200, before, during and after the death;
//   - responses byte-identical to a fault-free run of the same storm
//     (replicas hold the same deterministic synopsis, so failover must
//     be invisible in the payload);
//   - exactly one failover: the single query that was mid-exchange when
//     the primary died; every later query skips the known-dead primary
//     under backoff instead of re-failing;
//   - exact query accounting across the replicas: the dying query was
//     never answered, so the primary answered killHit-1 and the replica
//     the rest.
func TestChaosServeReplicaFailoverSoak(t *testing.T) {
	const storm = 40
	const killHit = 10 // the primary dies answering its 10th query

	dir := writeClusterStore(t)
	names := []string{"alpha", "beta"}
	key := ShardKey{Dataset: "paper", B: 4, Metric: "abs"}
	primary := NewRing(0, names...).Owner(key)
	queries := make([]string, storm)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = "/point?i=" + strconv.Itoa(i%8)
		} else {
			queries[i] = "/range?lo=0&hi=" + strconv.Itoa(1+i%7)
		}
	}

	// Fault-free baseline: same store, same storm, fresh cluster.
	baseline := make([][]byte, storm)
	{
		tc := startCluster(t, dir, names, 2, nil)
		for i, q := range queries {
			status, _, body := getBody(t, tc.http.URL+q)
			if status != http.StatusOK {
				t.Fatalf("baseline query %d (%s): status %d: %s", i, q, status, body)
			}
			baseline[i] = body
		}
		tc.http.Close()
	}

	// Chaos run: only the primary carries the armed failpoint — the
	// injector is process-global, and the contract under test is ONE
	// replica dying, not both.
	if err := chaos.EnableSpec("5,serve.replica:drop#" + strconv.Itoa(killHit)); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()
	tc := startCluster(t, dir, names, 2, nil)
	for name, n := range tc.nodes {
		if name != primary {
			n.chaosPoint = ""
		}
	}
	answered := obsShardQueries.Value()
	failovers := obsFailoverTotal.Value()
	skipped := obsForwardSkipped.Value()
	unavailable := obsRouteUnavailable.Value()

	for i, q := range queries {
		status, hdr, body := getBody(t, tc.http.URL+q)
		if status != http.StatusOK {
			t.Fatalf("chaos query %d (%s): status %d: %s — a client saw the failover", i, q, status, body)
		}
		if string(body) != string(baseline[i]) {
			t.Fatalf("chaos query %d (%s): response diverged from fault-free run:\n  got  %s\n  want %s",
				i, q, body, baseline[i])
		}
		wantNode := primary
		if i+1 >= killHit {
			wantNode = "" // any surviving replica; asserted dead below
		}
		if wantNode != "" && hdr.Get("X-Dwserve-Node") != wantNode {
			t.Fatalf("chaos query %d answered by %q before the kill, want primary %q",
				i, hdr.Get("X-Dwserve-Node"), wantNode)
		}
	}
	if !tc.nodes[primary].Dead() {
		t.Fatal("primary survived the serve.replica kill")
	}
	if fired := chaos.Active().Fired(chaosReplica); fired != 1 {
		t.Fatalf("serve.replica fired %d times, want exactly 1", fired)
	}
	if d := obsFailoverTotal.Value() - failovers; d != 1 {
		t.Errorf("serve_failover_total grew by %d, want exactly 1 (the mid-exchange query)", d)
	}
	if d := obsForwardSkipped.Value() - skipped; d != storm-killHit {
		t.Errorf("serve_forward_skipped grew by %d, want %d (every post-kill query skips the dead primary once)",
			d, storm-killHit)
	}
	if d := obsRouteUnavailable.Value() - unavailable; d != 0 {
		t.Errorf("serve_route_unavailable grew by %d, want 0", d)
	}
	// The dying query was never counted: the primary answered killHit-1,
	// the replica answered the failover query plus everything after.
	if d := obsShardQueries.Value() - answered; d != storm {
		t.Errorf("serve_shard_queries grew by %d across the storm, want %d", d, storm)
	}
}
