package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
)

// Router is the serve tier's front end: it accepts the same HTTP query
// API a single server exposes, maps each request to a shard key, and
// proxies it to that shard's owners over the mr peer transport —
// primary first, failing over to the next replica when an attempt dies
// mid-exchange. Peer links are dialed lazily, kept open across queries,
// and redialed under the engine's jittered exponential backoff; while a
// peer's backoff window is pending the router skips it outright instead
// of stalling queries on a dead socket.

// Peer names one serve node and its shard-listener address.
type Peer struct {
	Name string
	Addr string
}

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Peers is the cluster membership with addresses. Names must match
	// the -nodes list every node was started with.
	Peers []Peer
	// Replicas is the ownership factor R (default 2).
	Replicas int
	// Vnodes is the ring's per-member point count (0 = DefaultVnodes).
	Vnodes int
	// Dataset, B and Metric are the shard-key defaults applied when a
	// request omits the corresponding query parameter.
	Dataset string
	B       int
	Metric  string
	// DialTimeout bounds one peer dial (default 2s); ReplyTimeout bounds
	// one full query exchange (default 10s).
	DialTimeout  time.Duration
	ReplyTimeout time.Duration
	// RetryBase and RetryCap shape the per-peer redial backoff (defaults
	// are the engine's: 50ms doubling to 5s, jittered).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Heartbeat, when positive, pings every peer link at this interval so
	// dead peers are detected (and their backoff started) between
	// queries, not by the first query that needs them.
	Heartbeat time.Duration
	// Seed drives the backoff jitter deterministically.
	Seed int64
	// Tracer, when non-nil, records one span per routed query with a
	// child per forward attempt.
	Tracer *obs.Tracer
}

// Router proxies queries to shard owners. Safe for concurrent use.
type Router struct {
	cfg   RouterConfig
	ring  *Ring
	peers map[string]*peerClient

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRouter builds a router and, when configured, starts its heartbeat
// loops. No peer is dialed until first use.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("serve: router needs peers")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("serve: replicas %d < 1", cfg.Replicas)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = 10 * time.Second
	}
	rt := &Router{
		cfg:   cfg,
		peers: make(map[string]*peerClient, len(cfg.Peers)),
		stop:  make(chan struct{}),
	}
	names := make([]string, 0, len(cfg.Peers))
	for i, p := range cfg.Peers {
		if p.Name == "" || p.Addr == "" {
			return nil, fmt.Errorf("serve: peer %d needs name=addr", i)
		}
		if _, dup := rt.peers[p.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate peer %q", p.Name)
		}
		rt.peers[p.Name] = &peerClient{
			name:        p.Name,
			addr:        p.Addr,
			dialTimeout: cfg.DialTimeout,
			bo:          mr.NewBackoff(cfg.RetryBase, cfg.RetryCap, cfg.Seed+int64(i)*7919),
		}
		names = append(names, p.Name)
	}
	rt.ring = NewRing(cfg.Vnodes, names...)
	if cfg.Heartbeat > 0 {
		for _, p := range rt.peers {
			rt.wg.Add(1)
			go rt.heartbeat(p)
		}
	}
	return rt, nil
}

// heartbeat keeps one peer link probed so death is noticed (and the
// redial backoff started) between queries. Errors are not surfaced —
// the link state they updated is the product.
func (rt *Router) heartbeat(p *peerClient) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			p.exchange(mr.FrameHeartbeat, nil, rt.cfg.ReplyTimeout)
		}
	}
}

// requestKey maps a request to its shard key, applying the router's
// configured defaults for omitted parameters.
func (rt *Router) requestKey(r *http.Request) (ShardKey, error) {
	q := r.URL.Query()
	k := ShardKey{Dataset: q.Get("dataset"), B: rt.cfg.B, Metric: q.Get("metric")}
	if k.Dataset == "" {
		k.Dataset = rt.cfg.Dataset
	}
	if k.Metric == "" {
		k.Metric = rt.cfg.Metric
	}
	if raw := q.Get("b"); raw != "" {
		b, err := strconv.Atoi(raw)
		if err != nil {
			return ShardKey{}, fmt.Errorf("parameter \"b\": %v", err)
		}
		k.B = b
	}
	if err := k.valid(); err != nil {
		return ShardKey{}, err
	}
	return k, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/info", "/point", "/range", "/coefficients":
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown endpoint %q", r.URL.Path))
		return
	}
	key, err := rt.requestKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	obsRouteQueries.Inc()
	var span *obs.Span
	if rt.cfg.Tracer != nil {
		span = rt.cfg.Tracer.Start("route:" + key.String())
		defer span.End()
	}
	payload := shardRequest{Key: key, Path: r.URL.Path, RawQuery: r.URL.RawQuery}.encode()
	owners := rt.ring.Owners(key, rt.cfg.Replicas)
	for i, owner := range owners {
		p := rt.peers[owner]
		typ, raw, err := p.exchange(frameShardQuery, payload, rt.cfg.ReplyTimeout)
		if err == nil && typ != frameShardReply {
			err = fmt.Errorf("serve: peer %s answered frame type %d", owner, typ)
		}
		var rep shardReply
		if err == nil {
			rep, err = decodeShardReply(raw)
		}
		if span != nil {
			c := span.Child("forward:" + owner)
			c.SetBool("ok", err == nil)
			c.End()
		}
		if err != nil {
			if errors.Is(err, errPeerDown) {
				// Known down: redial backoff pending (or the dial itself
				// failed). No query was attempted on a live link, so this is
				// a skip, not a failover.
				obsForwardSkipped.Inc()
			} else {
				obsForwardErrors.Inc()
				if i+1 < len(owners) {
					obsFailoverTotal.Inc()
				}
			}
			continue
		}
		writeShardReply(w, rep)
		return
	}
	obsRouteUnavailable.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(rt.retryHint(owners)))
	httpError(w, http.StatusServiceUnavailable,
		fmt.Errorf("serve: no replica of %s reachable", key))
}

// writeShardReply relays a node's answer, stamping the answering
// replica's identity so clients (and tests) can see who served them.
func writeShardReply(w http.ResponseWriter, rep shardReply) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Dwserve-Node", rep.Node)
	h.Set("X-Dwserve-Role", rep.Role)
	if rep.DegradedB > 0 {
		h.Set("X-Dwserve-Degraded-B", strconv.Itoa(rep.DegradedB))
	}
	w.WriteHeader(rep.Status)
	w.Write(rep.Body)
}

// retryHint derives the Retry-After hint for a fully-unavailable shard
// from the soonest redial across its owners — the earliest moment a
// retry could possibly succeed — instead of a bare constant.
func (rt *Router) retryHint(owners []string) int {
	var soonest time.Time
	for _, o := range owners {
		at := rt.peers[o].retryAt()
		if soonest.IsZero() || at.Before(soonest) {
			soonest = at
		}
	}
	return retrySeconds(time.Until(soonest))
}

// Close stops the heartbeats and tears down every peer link.
func (rt *Router) Close() error {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
	for _, p := range rt.peers {
		p.close()
	}
	return nil
}

// errPeerDown marks a forward that never reached a live link: the
// peer's redial backoff is pending, or the dial itself failed.
var errPeerDown = errors.New("serve: peer link down")

// peerClient is one lazily-dialed, persistent link to a serve node.
// exchange pairs each send with its reply under the lock, so queries
// and heartbeats never interleave frames.
type peerClient struct {
	name        string
	addr        string
	dialTimeout time.Duration
	bo          *mr.Backoff

	mu    sync.Mutex
	conn  *mr.PeerConn // guarded by mu — nil when down
	fails int          // guarded by mu — consecutive failures
	next  time.Time    // guarded by mu — no redial before this
}

// exchange sends one frame and reads its reply. An errPeerDown result
// means no live link was available; any other error means the link
// failed mid-exchange (and was torn down for backoff).
func (p *peerClient) exchange(typ byte, payload []byte, replyTimeout time.Duration) (byte, []byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		if time.Now().Before(p.next) {
			return 0, nil, fmt.Errorf("%w: %s backed off for %s",
				errPeerDown, p.name, time.Until(p.next).Round(time.Millisecond))
		}
		conn, err := mr.DialPeer(p.addr, p.dialTimeout, chaosForward)
		if err != nil {
			p.fails++
			p.next = time.Now().Add(p.bo.Delay(p.fails))
			return 0, nil, fmt.Errorf("%w: dial %s: %v", errPeerDown, p.name, err)
		}
		p.conn = conn
		p.fails = 0
		obsPeersUp.Add(1)
	}
	p.conn.SetDeadline(time.Now().Add(replyTimeout))
	if err := p.conn.Send(typ, payload); err != nil {
		p.dropLocked()
		return 0, nil, fmt.Errorf("serve: send to %s: %w", p.name, err)
	}
	rtyp, raw, err := p.conn.Recv()
	if err != nil {
		p.dropLocked()
		return 0, nil, fmt.Errorf("serve: recv from %s: %w", p.name, err)
	}
	return rtyp, raw, nil
}

// dropLocked tears the link down and starts its redial backoff. Caller
// holds mu.
func (p *peerClient) dropLocked() {
	p.conn.Close()
	p.conn = nil
	obsPeersUp.Add(-1)
	p.fails++
	p.next = time.Now().Add(p.bo.Delay(p.fails))
}

// retryAt reports when this peer will next be dialed.
func (p *peerClient) retryAt() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return time.Now()
	}
	return p.next
}

func (p *peerClient) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
		obsPeersUp.Add(-1)
	}
}
