package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
)

// Router is the serve tier's front end: it accepts the same HTTP query
// API a single server exposes, maps each request to a shard key, and
// proxies it to that shard's owners over the mr peer transport —
// primary first, failing over to the next replica when an attempt dies
// mid-exchange. Peer links are dialed lazily, kept open across queries,
// and redialed under the engine's jittered exponential backoff; while a
// peer's backoff window is pending the router skips it outright instead
// of stalling queries on a dead socket.
//
// The router also owns cluster membership. It holds the epoch-stamped
// Membership, drives two-phase cutover when it changes (parallel
// Prepare to every member of the new epoch — each warms before acking —
// then promote-and-commit), tags every query with the epoch it routed
// under, and runs a failure detector on its heartbeat loops: a peer
// that misses DetectMisses consecutive heartbeats is demoted from
// membership automatically (flap-damped by DampWindow so one slow node
// cannot thrash the ring). Membership changes arrive via the admin
// plane — POST /admin/join, POST /admin/drain, GET /admin/membership —
// or from the detector; both funnel through the same propose path, so
// every change is exactly one epoch bump.

// Peer names one serve node and its shard-listener address.
type Peer struct {
	Name string
	Addr string
}

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Peers is the initial cluster membership (epoch 0) with addresses.
	// Names must match the -nodes list every node was started with.
	Peers []Peer
	// Replicas is the ownership factor R (default 2).
	Replicas int
	// Vnodes is the ring's per-member point count (0 = DefaultVnodes).
	Vnodes int
	// Dataset, B and Metric are the shard-key defaults applied when a
	// request omits the corresponding query parameter.
	Dataset string
	B       int
	Metric  string
	// DialTimeout bounds one peer dial (default 2s); ReplyTimeout bounds
	// one full query exchange — including an epoch Prepare, which warms
	// shards before answering (default 10s).
	DialTimeout  time.Duration
	ReplyTimeout time.Duration
	// RetryBase and RetryCap shape the per-peer redial backoff (defaults
	// are the engine's: 50ms doubling to 5s, jittered).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Heartbeat, when positive, pings every peer link at this interval so
	// dead peers are detected (and their backoff started) between
	// queries, not by the first query that needs them.
	Heartbeat time.Duration
	// DetectMisses, when positive, arms the failure detector: a peer
	// missing that many consecutive heartbeats is demoted from
	// membership (suspected at half that, for the metrics). Requires
	// Heartbeat > 0 to have any effect.
	DetectMisses int
	// DampWindow suppresses detector demotions for this long after any
	// membership change, so a cutover's own disruption (and a flapping
	// link) cannot cascade into serial demotions.
	DampWindow time.Duration
	// Seed drives the backoff jitter deterministically.
	Seed int64
	// Tracer, when non-nil, records one span per routed query with a
	// child per forward attempt.
	Tracer *obs.Tracer
}

// Router proxies queries to shard owners. Safe for concurrent use.
type Router struct {
	cfg RouterConfig

	mu         sync.Mutex
	mem        Membership             // guarded by mu — current membership
	ring       *Ring                  // guarded by mu — current ring
	peers      map[string]*peerClient // guarded by mu
	addrs      map[string]string      // guarded by mu — member name → shard addr
	cutover    bool                   // guarded by mu — a membership change is in flight
	lastChange time.Time              // guarded by mu — when the epoch last bumped
	peerSeq    int                    // guarded by mu — seeds backoff jitter per peer ever added

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRouter builds a router and, when configured, starts its heartbeat
// loops. No peer is dialed until first use.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("serve: router needs peers")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("serve: replicas %d < 1", cfg.Replicas)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = 10 * time.Second
	}
	rt := &Router{
		cfg:   cfg,
		peers: make(map[string]*peerClient, len(cfg.Peers)),
		addrs: make(map[string]string, len(cfg.Peers)),
		stop:  make(chan struct{}),
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	names := make([]string, 0, len(cfg.Peers))
	for i, p := range cfg.Peers {
		if p.Name == "" || p.Addr == "" {
			return nil, fmt.Errorf("serve: peer %d needs name=addr", i)
		}
		if _, dup := rt.peers[p.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate peer %q", p.Name)
		}
		rt.addPeerLocked(p.Name, p.Addr)
		names = append(names, p.Name)
	}
	rt.mem = NewMembership(0, names...)
	rt.ring = rt.mem.ring(cfg.Vnodes)
	obsEpoch.Set(0)
	return rt, nil
}

// addPeerLocked registers a peer client and starts its heartbeat loop.
// Caller holds mu (or is NewRouter before the router escapes).
func (rt *Router) addPeerLocked(name, addr string) {
	p := &peerClient{
		name:        name,
		addr:        addr,
		dialTimeout: rt.cfg.DialTimeout,
		bo:          mr.NewBackoff(rt.cfg.RetryBase, rt.cfg.RetryCap, rt.cfg.Seed+int64(rt.peerSeq)*7919),
		gone:        make(chan struct{}),
	}
	rt.peerSeq++
	rt.peers[name] = p
	rt.addrs[name] = addr
	if rt.cfg.Heartbeat > 0 {
		rt.wg.Add(1)
		//dwlint:ignore goroleak -- heartbeat selects on rt.stop and p.gone; Close closes stop and waits on wg, removal closes gone
		go rt.heartbeat(p)
	}
}

// heartbeat keeps one peer link probed so death is noticed (and the
// redial backoff started) between queries, and feeds the failure
// detector: DetectMisses consecutive misses demote the peer from
// membership. Errors are not surfaced — the link and membership state
// they updated is the product.
func (rt *Router) heartbeat(p *peerClient) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.Heartbeat)
	defer t.Stop()
	misses, suspected := 0, false
	for {
		select {
		case <-rt.stop:
			return
		case <-p.gone:
			return
		case <-t.C:
			if _, _, err := p.exchange(mr.FrameHeartbeat, nil, rt.cfg.ReplyTimeout); err == nil {
				misses, suspected = 0, false
				continue
			}
			if rt.cfg.DetectMisses <= 0 {
				continue
			}
			misses++
			if !suspected && misses >= (rt.cfg.DetectMisses+1)/2 {
				suspected = true
				obsDetectorSuspects.Inc()
			}
			if misses >= rt.cfg.DetectMisses {
				// demote may refuse (damped, cutover in flight, last
				// member); keep trying on subsequent misses until the
				// peer recovers or the refusal clears.
				if rt.demote(p.name) {
					return
				}
			}
		}
	}
}

// demote removes a detector-condemned peer from membership. It refuses
// — returning false, the detector retries later — while a cutover is in
// flight, within DampWindow of the last change, or when the peer is the
// last member standing.
func (rt *Router) demote(name string) bool {
	rt.mu.Lock()
	if rt.cutover || !rt.mem.Contains(name) || len(rt.mem.Members) <= 1 ||
		time.Since(rt.lastChange) < rt.cfg.DampWindow {
		rt.mu.Unlock()
		return false
	}
	names := make([]string, 0, len(rt.mem.Members)-1)
	for _, m := range rt.mem.Members {
		if m != name {
			names = append(names, m)
		}
	}
	rt.mu.Unlock()
	if err := rt.propose(names, nil); err != nil {
		return false
	}
	obsDetectorDeaths.Inc()
	return true
}

// Join adds a node to membership: one epoch bump, shards warmed on
// their new owners before any query routes to them.
func (rt *Router) Join(name, addr string) (Membership, error) {
	if name == "" || addr == "" {
		return Membership{}, fmt.Errorf("serve: join needs name and addr")
	}
	rt.mu.Lock()
	if rt.mem.Contains(name) {
		rt.mu.Unlock()
		return Membership{}, fmt.Errorf("serve: %q is already a member", name)
	}
	names := append(append([]string(nil), rt.mem.Members...), name)
	rt.mu.Unlock()
	if err := rt.propose(names, map[string]string{name: addr}); err != nil {
		return Membership{}, err
	}
	return rt.Membership(), nil
}

// Drain removes a node from membership: one epoch bump, its shards
// warmed on their new owners before the ring stops routing to it. The
// drained node itself is not notified — the router simply stops sending
// to it, and any query still in flight answers under its old epoch.
func (rt *Router) Drain(name string) (Membership, error) {
	rt.mu.Lock()
	if !rt.mem.Contains(name) {
		rt.mu.Unlock()
		return Membership{}, fmt.Errorf("serve: %q is not a member", name)
	}
	if len(rt.mem.Members) == 1 {
		rt.mu.Unlock()
		return Membership{}, fmt.Errorf("serve: cannot drain the last member")
	}
	names := make([]string, 0, len(rt.mem.Members)-1)
	for _, m := range rt.mem.Members {
		if m != name {
			names = append(names, m)
		}
	}
	rt.mu.Unlock()
	if err := rt.propose(names, nil); err != nil {
		return Membership{}, err
	}
	return rt.Membership(), nil
}

// Membership returns the current epoch-stamped membership.
func (rt *Router) Membership() Membership {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return Membership{Epoch: rt.mem.Epoch, Members: append([]string(nil), rt.mem.Members...)}
}

// propose is the single path every membership change takes: exactly one
// epoch bump per call. Phase one sends Prepare(E+1, members) to every
// member of the new epoch over dedicated control connections — each
// warms its newly-owned shards before acking, so promotion never routes
// a query at a cold owner; any nak or unreachable member aborts the
// change and the cluster stays on the old epoch. Phase two promotes the
// router's own ring and peer set. Phase three sends best-effort Commits
// (a node missing its Commit self-heals: the first query tagged with
// the new epoch kicks an implicit commit).
func (rt *Router) propose(names []string, newAddrs map[string]string) error {
	rt.mu.Lock()
	if rt.cutover {
		rt.mu.Unlock()
		return fmt.Errorf("serve: a membership change is already in flight")
	}
	rt.cutover = true
	target := NewMembership(rt.mem.Epoch+1, names...)
	addrs := make(map[string]string, len(target.Members))
	for _, m := range target.Members {
		a := rt.addrs[m]
		if na, ok := newAddrs[m]; ok {
			a = na
		}
		if a == "" {
			rt.cutover = false
			rt.mu.Unlock()
			return fmt.Errorf("serve: no address for member %q", m)
		}
		addrs[m] = a
	}
	rt.mu.Unlock()

	if err := rt.controlAll(epochCtl{Kind: epochCtlPrepare, Mem: target}, addrs); err != nil {
		rt.mu.Lock()
		rt.cutover = false
		rt.mu.Unlock()
		return fmt.Errorf("serve: prepare epoch %d: %w", target.Epoch, err)
	}

	rt.mu.Lock()
	rt.mem = target
	rt.ring = target.ring(rt.cfg.Vnodes)
	for _, m := range target.Members {
		rt.addrs[m] = addrs[m]
		if _, ok := rt.peers[m]; !ok {
			rt.addPeerLocked(m, addrs[m])
		}
	}
	for name, p := range rt.peers {
		if !target.Contains(name) {
			close(p.gone)
			p.close()
			delete(rt.peers, name)
			delete(rt.addrs, name)
		}
	}
	rt.lastChange = time.Now()
	rt.cutover = false
	rt.mu.Unlock()
	obsEpochBumps.Inc()
	obsEpoch.Set(target.Epoch)

	// Best-effort: an unreachable member self-heals via implicit commit.
	rt.controlAll(epochCtl{Kind: epochCtlCommit, Mem: Membership{Epoch: target.Epoch}}, addrs)
	return nil
}

// controlAll sends one control message to every addressed member in
// parallel and collects the first failure. Control traffic rides
// dedicated short-lived connections — never the query links — so a slow
// warm cannot stall queries, and the serve.forward failpoint (scoped to
// query links) cannot corrupt the membership state machine.
func (rt *Router) controlAll(ctl epochCtl, addrs map[string]string) error {
	var wg sync.WaitGroup
	errc := make(chan error, len(addrs))
	for name, addr := range addrs {
		wg.Add(1)
		go func(name, addr string) {
			defer wg.Done()
			if err := rt.control(addr, ctl); err != nil {
				errc <- fmt.Errorf("member %s: %w", name, err)
			}
		}(name, addr)
	}
	wg.Wait()
	close(errc)
	return <-errc
}

// control runs one request/reply on a fresh control connection.
func (rt *Router) control(addr string, ctl epochCtl) error {
	pc, err := mr.DialPeer(addr, rt.cfg.DialTimeout, "")
	if err != nil {
		return err
	}
	defer pc.Close()
	pc.SetDeadline(time.Now().Add(rt.cfg.ReplyTimeout))
	if err := pc.Send(mr.FrameEpoch, ctl.encode()); err != nil {
		return err
	}
	typ, raw, err := pc.Recv()
	if err != nil {
		return err
	}
	if typ != mr.FrameEpoch {
		return fmt.Errorf("serve: control answered frame type %d", typ)
	}
	rep, err := decodeEpochCtl(raw)
	if err != nil {
		return err
	}
	if rep.Kind != epochCtlAck {
		return fmt.Errorf("serve: control nak: %s", rep.Err)
	}
	return nil
}

// requestKey maps a request to its shard key, applying the router's
// configured defaults for omitted parameters.
func (rt *Router) requestKey(r *http.Request) (ShardKey, error) {
	q := r.URL.Query()
	k := ShardKey{Dataset: q.Get("dataset"), B: rt.cfg.B, Metric: q.Get("metric")}
	if k.Dataset == "" {
		k.Dataset = rt.cfg.Dataset
	}
	if k.Metric == "" {
		k.Metric = rt.cfg.Metric
	}
	if raw := q.Get("b"); raw != "" {
		b, err := strconv.Atoi(raw)
		if err != nil {
			return ShardKey{}, fmt.Errorf("parameter \"b\": %v", err)
		}
		k.B = b
	}
	if err := k.valid(); err != nil {
		return ShardKey{}, err
	}
	return k, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/admin/join":
		rt.adminJoin(w, r)
		return
	case "/admin/drain":
		rt.adminDrain(w, r)
		return
	case "/admin/membership":
		rt.adminMembership(w, r)
		return
	case "/info", "/point", "/range", "/coefficients":
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown endpoint %q", r.URL.Path))
		return
	}
	key, err := rt.requestKey(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	obsRouteQueries.Inc()
	var span *obs.Span
	if rt.cfg.Tracer != nil {
		span = rt.cfg.Tracer.Start("route:" + key.String())
		defer span.End()
	}
	// Snapshot epoch, ring and owner links under the lock, route outside
	// it: rings are immutable once built, so a cutover promoting a new
	// one cannot disturb a query already routing under the old epoch.
	rt.mu.Lock()
	epoch := rt.mem.Epoch
	owners := rt.ring.Owners(key, rt.cfg.Replicas)
	clients := make([]*peerClient, len(owners))
	for i, o := range owners {
		clients[i] = rt.peers[o]
	}
	rt.mu.Unlock()
	payload := shardRequest{Key: key, Path: r.URL.Path, RawQuery: r.URL.RawQuery, Epoch: epoch}.encode()
	for i, p := range clients {
		if p == nil {
			continue
		}
		typ, raw, err := p.exchange(frameShardQuery, payload, rt.cfg.ReplyTimeout)
		if err == nil && typ != frameShardReply {
			err = fmt.Errorf("serve: peer %s answered frame type %d", p.name, typ)
		}
		var rep shardReply
		if err == nil {
			rep, err = decodeShardReply(raw)
		}
		if span != nil {
			c := span.Child("forward:" + p.name)
			c.SetBool("ok", err == nil)
			c.End()
		}
		if err != nil {
			if errors.Is(err, errPeerDown) {
				// Known down: redial backoff pending (or the dial itself
				// failed). No query was attempted on a live link, so this is
				// a skip, not a failover.
				obsForwardSkipped.Inc()
			} else {
				obsForwardErrors.Inc()
				if i+1 < len(clients) {
					obsFailoverTotal.Inc()
				}
			}
			continue
		}
		writeShardReply(w, rep)
		return
	}
	obsRouteUnavailable.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(retryHint(clients)))
	httpError(w, http.StatusServiceUnavailable,
		fmt.Errorf("serve: no replica of %s reachable", key))
}

// adminJoin handles POST /admin/join?name=N&addr=A.
func (rt *Router) adminJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: join requires POST"))
		return
	}
	q := r.URL.Query()
	mem, err := rt.Join(q.Get("name"), q.Get("addr"))
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, mem)
}

// adminDrain handles POST /admin/drain?name=N.
func (rt *Router) adminDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: drain requires POST"))
		return
	}
	mem, err := rt.Drain(r.URL.Query().Get("name"))
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, mem)
}

// adminMembership handles GET /admin/membership.
func (rt *Router) adminMembership(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rt.Membership())
}

// writeShardReply relays a node's answer, stamping the answering
// replica's identity and epoch so clients (and tests) can see who
// served them and under which ring.
func writeShardReply(w http.ResponseWriter, rep shardReply) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Dwserve-Node", rep.Node)
	h.Set("X-Dwserve-Role", rep.Role)
	h.Set("X-Dwserve-Epoch", strconv.FormatInt(rep.Epoch, 10))
	if rep.DegradedB > 0 {
		h.Set("X-Dwserve-Degraded-B", strconv.Itoa(rep.DegradedB))
	}
	w.WriteHeader(rep.Status)
	w.Write(rep.Body)
}

// retryHint derives the Retry-After hint for a fully-unavailable shard
// from the soonest redial across its owners — the earliest moment a
// retry could possibly succeed — instead of a bare constant.
func retryHint(clients []*peerClient) int {
	var soonest time.Time
	for _, p := range clients {
		if p == nil {
			continue
		}
		at := p.retryAt()
		if soonest.IsZero() || at.Before(soonest) {
			soonest = at
		}
	}
	return retrySeconds(time.Until(soonest))
}

// Close stops the heartbeats and tears down every peer link.
func (rt *Router) Close() error {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, p := range rt.peers {
		p.close()
	}
	return nil
}

// errPeerDown marks a forward that never reached a live link: the
// peer's redial backoff is pending, or the dial itself failed.
var errPeerDown = errors.New("serve: peer link down")

// peerClient is one lazily-dialed, persistent link to a serve node.
// exchange pairs each send with its reply under the lock, so queries
// and heartbeats never interleave frames.
type peerClient struct {
	name        string
	addr        string
	dialTimeout time.Duration
	bo          *mr.Backoff
	gone        chan struct{} // closed when the peer leaves membership

	mu    sync.Mutex
	conn  *mr.PeerConn // guarded by mu — nil when down
	fails int          // guarded by mu — consecutive failures
	next  time.Time    // guarded by mu — no redial before this
}

// exchange sends one frame and reads its reply. An errPeerDown result
// means no live link was available; any other error means the link
// failed mid-exchange (and was torn down for backoff).
func (p *peerClient) exchange(typ byte, payload []byte, replyTimeout time.Duration) (byte, []byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		if time.Now().Before(p.next) {
			return 0, nil, fmt.Errorf("%w: %s backed off for %s",
				errPeerDown, p.name, time.Until(p.next).Round(time.Millisecond))
		}
		conn, err := mr.DialPeer(p.addr, p.dialTimeout, chaosForward)
		if err != nil {
			p.fails++
			p.next = time.Now().Add(p.bo.Delay(p.fails))
			return 0, nil, fmt.Errorf("%w: dial %s: %v", errPeerDown, p.name, err)
		}
		p.conn = conn
		p.fails = 0
		obsPeersUp.Add(1)
	}
	p.conn.SetDeadline(time.Now().Add(replyTimeout))
	if err := p.conn.Send(typ, payload); err != nil {
		p.dropLocked()
		return 0, nil, fmt.Errorf("serve: send to %s: %w", p.name, err)
	}
	rtyp, raw, err := p.conn.Recv()
	if err != nil {
		p.dropLocked()
		return 0, nil, fmt.Errorf("serve: recv from %s: %w", p.name, err)
	}
	return rtyp, raw, nil
}

// dropLocked tears the link down and starts its redial backoff. Caller
// holds mu.
func (p *peerClient) dropLocked() {
	p.conn.Close()
	p.conn = nil
	obsPeersUp.Add(-1)
	p.fails++
	p.next = time.Now().Add(p.bo.Delay(p.fails))
}

// retryAt reports when this peer will next be dialed.
func (p *peerClient) retryAt() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return time.Now()
	}
	return p.next
}

func (p *peerClient) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
		obsPeersUp.Add(-1)
	}
}
