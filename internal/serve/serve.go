// Package serve exposes a wavelet synopsis as an approximate-query HTTP
// service: the deployment shape the paper's introduction motivates, where
// the base data is remote or too large and exploratory queries are
// answered from a compact synopsis with deterministic guarantees.
//
// Endpoints (all JSON):
//
//	GET /info                 synopsis metadata
//	GET /point?i=K            approximate d[K] with guaranteed interval
//	GET /range?lo=L&hi=H      approximate sum and mean over [L, H]
//	GET /coefficients         the retained terms
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"dwmaxerr/internal/synopsis"
)

// Server answers approximate queries against one synopsis.
type Server struct {
	syn    *synopsis.Synopsis
	ev     *synopsis.Evaluator
	maxAbs float64 // per-value guarantee; 0 when unknown
	mux    *http.ServeMux
	gate   *gate // non-nil when built by NewLimited
}

// New builds a server over a synopsis with the given per-value maximum
// absolute error guarantee (pass 0 if the synopsis carries no guarantee,
// e.g. a conventional one; intervals are then omitted).
func New(s *synopsis.Synopsis, maxAbs float64) (*Server, error) {
	if s == nil || s.N < 1 {
		return nil, fmt.Errorf("serve: nil or empty synopsis")
	}
	srv := &Server{syn: s, ev: synopsis.NewEvaluator(s), maxAbs: maxAbs, mux: http.NewServeMux()}
	srv.mux.HandleFunc("/info", srv.handleInfo)
	srv.mux.HandleFunc("/point", srv.handlePoint)
	srv.mux.HandleFunc("/range", srv.handleRange)
	srv.mux.HandleFunc("/coefficients", srv.handleCoefficients)
	return srv, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.gate != nil {
		s.gate.ServeHTTP(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// Info is the /info response.
type Info struct {
	N           int     `json:"n"`
	Terms       int     `json:"terms"`
	MaxAbsError float64 `json:"max_abs_error,omitempty"`
	Guaranteed  bool    `json:"guaranteed"`
}

// PointAnswer is the /point response.
type PointAnswer struct {
	Index  int      `json:"index"`
	Approx float64  `json:"approx"`
	Lo     *float64 `json:"lo,omitempty"`
	Hi     *float64 `json:"hi,omitempty"`
}

// RangeAnswer is the /range response.
type RangeAnswer struct {
	Lo        int      `json:"lo"`
	Hi        int      `json:"hi"`
	Count     int      `json:"count"`
	Sum       float64  `json:"sum"`
	Avg       float64  `json:"avg"`
	SumLo     *float64 `json:"sum_lo,omitempty"`
	SumHi     *float64 `json:"sum_hi,omitempty"`
	Guarantee float64  `json:"per_value_guarantee,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	obsInfoQueries.Inc()
	writeJSON(w, Info{
		N:           s.syn.N,
		Terms:       s.syn.Size(),
		MaxAbsError: s.maxAbs,
		Guaranteed:  s.maxAbs > 0,
	})
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	obsPointQueries.Inc()
	i, err := intParam(r, "i")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if i < 0 || i >= s.syn.N {
		httpError(w, http.StatusBadRequest, fmt.Errorf("index %d out of [0,%d)", i, s.syn.N))
		return
	}
	ans := PointAnswer{Index: i, Approx: s.ev.Point(i)}
	if s.maxAbs > 0 {
		b := s.ev.PointBound(i, s.maxAbs)
		lo, hi := b.Lo(), b.Hi()
		ans.Lo, ans.Hi = &lo, &hi
	}
	writeJSON(w, ans)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	obsRangeQueries.Inc()
	lo, err := intParam(r, "lo")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	hi, err := intParam(r, "hi")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if lo < 0 || hi >= s.syn.N || lo > hi {
		httpError(w, http.StatusBadRequest, fmt.Errorf("range [%d,%d] out of [0,%d)", lo, hi, s.syn.N))
		return
	}
	sum := s.ev.RangeSum(lo, hi)
	count := hi - lo + 1
	ans := RangeAnswer{Lo: lo, Hi: hi, Sum: sum, Avg: sum / float64(count), Count: count, Guarantee: s.maxAbs}
	if s.maxAbs > 0 {
		b := s.ev.RangeSumBound(lo, hi, s.maxAbs)
		sl, sh := b.Lo(), b.Hi()
		ans.SumLo, ans.SumHi = &sl, &sh
	}
	writeJSON(w, ans)
}

func (s *Server) handleCoefficients(w http.ResponseWriter, r *http.Request) {
	obsCoefQueries.Inc()
	type term struct {
		Index int     `json:"index"`
		Value float64 `json:"value"`
	}
	out := make([]term, 0, s.syn.Size())
	for _, t := range s.syn.Terms {
		out = append(out, term{t.Index, t.Value})
	}
	writeJSON(w, out)
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusBadRequest {
		obsBadRequests.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
