// Package serve exposes a wavelet synopsis as an approximate-query HTTP
// service: the deployment shape the paper's introduction motivates, where
// the base data is remote or too large and exploratory queries are
// answered from a compact synopsis with deterministic guarantees.
//
// Endpoints (all JSON):
//
//	GET  /info                 synopsis metadata
//	GET  /point?i=K            approximate d[K] with guaranteed interval
//	GET  /range?lo=L&hi=H      approximate sum and mean over [L, H]
//	GET  /coefficients         the retained terms
//	POST /ingest               append stream values (ingest servers only)
//
// A server is either static — built from one immutable synopsis — or
// streaming, built over an ingest.Ingestor whose published snapshot the
// query handlers read afresh on every request. Queries against a
// streaming server that has not yet completed its first block answer 503
// with a Retry-After hint, the same contract the admission gate uses.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dwmaxerr/internal/ingest"
	"dwmaxerr/internal/synopsis"
)

// view is one immutable synopsis a request is answered against: the
// static one, or the ingestor's current snapshot.
type view struct {
	syn *synopsis.Synopsis
	ev  *synopsis.Evaluator
	// window is non-nil on streaming servers: the snapshot's position.
	window *ingest.Snapshot
}

// Server answers approximate queries against one synopsis — fixed at
// construction, or live from an ingestor.
type Server struct {
	static *view            // non-nil for New-built servers
	ing    *ingest.Ingestor // non-nil for NewIngest-built servers
	maxAbs float64          // per-value guarantee; 0 when unknown
	mux    *http.ServeMux
	gate   *gate // non-nil when built by NewLimited / NewIngest

	// Identity in the sharded tier, set by node.go on per-shard servers
	// so /info reports who answered even through the router. Empty on
	// standalone servers (and omitted from the JSON).
	node  string
	shard string
	role  string
}

// New builds a server over a synopsis with the given per-value maximum
// absolute error guarantee (pass 0 if the synopsis carries no guarantee,
// e.g. a conventional one; intervals are then omitted).
func New(s *synopsis.Synopsis, maxAbs float64) (*Server, error) {
	if s == nil || s.N < 1 {
		return nil, fmt.Errorf("serve: nil or empty synopsis")
	}
	srv := &Server{
		static: &view{syn: s, ev: synopsis.NewEvaluator(s)},
		maxAbs: maxAbs,
		mux:    http.NewServeMux(),
	}
	srv.routes()
	return srv, nil
}

// NewIngest builds a streaming server: queries answer against the
// ingestor's live snapshot, and POST /ingest feeds it. The admission
// gate always wraps a streaming server — ingestion shares the in-flight
// budget with queries, so a push storm degrades to honest 503s instead
// of starving readers.
func NewIngest(ing *ingest.Ingestor, lim Limits) (*Server, error) {
	if ing == nil {
		return nil, fmt.Errorf("serve: nil ingestor")
	}
	srv := &Server{ing: ing, mux: http.NewServeMux()}
	srv.routes()
	srv.mux.HandleFunc("/ingest", srv.handleIngest)
	srv.gate = newGate(srv.mux, lim)
	return srv, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("/info", s.handleInfo)
	s.mux.HandleFunc("/point", s.handlePoint)
	s.mux.HandleFunc("/range", s.handleRange)
	s.mux.HandleFunc("/coefficients", s.handleCoefficients)
}

// current resolves the view a request answers against. ok is false on a
// streaming server whose first block has not completed yet.
func (s *Server) current() (*view, bool) {
	if s.static != nil {
		return s.static, true
	}
	snap := s.ing.Snapshot()
	if snap == nil {
		return nil, false
	}
	return &view{syn: snap.Syn, ev: snap.Ev, window: snap}, true
}

// notReady answers a query that arrived before the first snapshot. The
// gate counts this 503 as neither rejection nor timeout (the completion
// marker sees the handler finish) — it is the warm-up contract, not an
// overload signal. The Retry-After hint is derived from the observed
// ingest rate (how long until the first block completes at the current
// pace) rather than a bare constant; with nothing observed yet it falls
// back to 1s.
func notReady(w http.ResponseWriter, hint time.Duration) {
	secs := 1
	if hint > 0 {
		secs = retrySeconds(hint)
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusServiceUnavailable,
		fmt.Errorf("serve: synopsis warming up, no complete block yet"))
}

// warmupHint estimates how long until this server can answer; 0 when
// unknown (static servers are never not-ready).
func (s *Server) warmupHint() time.Duration {
	if s.ing == nil {
		return 0
	}
	return s.ing.EstimateWarmup()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.gate != nil {
		s.gate.ServeHTTP(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// Info is the /info response. The streaming fields are present only on
// ingest servers.
type Info struct {
	N           int     `json:"n"`
	Terms       int     `json:"terms"`
	MaxAbsError float64 `json:"max_abs_error,omitempty"`
	Guaranteed  bool    `json:"guaranteed"`
	// Ingest marks a streaming server; the window fields describe the
	// published snapshot (which trails ingestion by bounded staleness).
	Ingest      bool  `json:"ingest,omitempty"`
	Epoch       int64 `json:"epoch,omitempty"`
	WindowStart int64 `json:"window_start,omitempty"`
	Seen        int64 `json:"seen,omitempty"`
	Durable     int64 `json:"durable,omitempty"`
	// Sharded-tier identity: which node answered, which shard it served
	// from, and its ring role for that shard ("primary" / "replica-<i>").
	// Present only on answers from a cluster node.
	Node  string `json:"node,omitempty"`
	Shard string `json:"shard,omitempty"`
	Role  string `json:"role,omitempty"`
}

// PointAnswer is the /point response.
type PointAnswer struct {
	Index  int      `json:"index"`
	Approx float64  `json:"approx"`
	Lo     *float64 `json:"lo,omitempty"`
	Hi     *float64 `json:"hi,omitempty"`
}

// RangeAnswer is the /range response.
type RangeAnswer struct {
	Lo        int      `json:"lo"`
	Hi        int      `json:"hi"`
	Count     int      `json:"count"`
	Sum       float64  `json:"sum"`
	Avg       float64  `json:"avg"`
	SumLo     *float64 `json:"sum_lo,omitempty"`
	SumHi     *float64 `json:"sum_hi,omitempty"`
	Guarantee float64  `json:"per_value_guarantee,omitempty"`
}

// IngestRequest is the POST /ingest body.
type IngestRequest struct {
	Values []float64 `json:"values"`
}

// IngestAnswer is the POST /ingest response. Accepted counts values
// ingested by THIS request; Seen and Durable are stream totals.
type IngestAnswer struct {
	Accepted int   `json:"accepted"`
	Seen     int64 `json:"seen"`
	Durable  int64 `json:"durable"`
	Epoch    int64 `json:"epoch"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	obsInfoQueries.Inc()
	v, ok := s.current()
	if !ok {
		notReady(w, s.warmupHint())
		return
	}
	info := Info{
		N:           v.syn.N,
		Terms:       v.syn.Size(),
		MaxAbsError: s.maxAbs,
		Guaranteed:  s.maxAbs > 0,
		Node:        s.node,
		Shard:       s.shard,
		Role:        s.role,
	}
	if v.window != nil {
		info.Ingest = true
		info.Epoch = v.window.Epoch
		info.WindowStart = v.window.Start
		info.Seen = s.ing.Seen()
		info.Durable = s.ing.Durable()
	}
	writeJSON(w, info)
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	obsPointQueries.Inc()
	v, ok := s.current()
	if !ok {
		notReady(w, s.warmupHint())
		return
	}
	i, err := intParam(r, "i")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if i < 0 || i >= v.syn.N {
		httpError(w, http.StatusBadRequest, fmt.Errorf("index %d out of [0,%d)", i, v.syn.N))
		return
	}
	ans := PointAnswer{Index: i, Approx: v.ev.Point(i)}
	if s.maxAbs > 0 {
		b := v.ev.PointBound(i, s.maxAbs)
		lo, hi := b.Lo(), b.Hi()
		ans.Lo, ans.Hi = &lo, &hi
	}
	writeJSON(w, ans)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	obsRangeQueries.Inc()
	v, ok := s.current()
	if !ok {
		notReady(w, s.warmupHint())
		return
	}
	lo, err := intParam(r, "lo")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	hi, err := intParam(r, "hi")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if lo < 0 || hi >= v.syn.N || lo > hi {
		httpError(w, http.StatusBadRequest, fmt.Errorf("range [%d,%d] out of [0,%d)", lo, hi, v.syn.N))
		return
	}
	sum := v.ev.RangeSum(lo, hi)
	count := hi - lo + 1
	ans := RangeAnswer{Lo: lo, Hi: hi, Sum: sum, Avg: sum / float64(count), Count: count, Guarantee: s.maxAbs}
	if s.maxAbs > 0 {
		b := v.ev.RangeSumBound(lo, hi, s.maxAbs)
		sl, sh := b.Lo(), b.Hi()
		ans.SumLo, ans.SumHi = &sl, &sh
	}
	writeJSON(w, ans)
}

func (s *Server) handleCoefficients(w http.ResponseWriter, r *http.Request) {
	obsCoefQueries.Inc()
	v, ok := s.current()
	if !ok {
		notReady(w, s.warmupHint())
		return
	}
	type term struct {
		Index int     `json:"index"`
		Value float64 `json:"value"`
	}
	out := make([]term, 0, v.syn.Size())
	for _, t := range v.syn.Terms {
		out = append(out, term{t.Index, t.Value})
	}
	writeJSON(w, out)
}

// handleIngest appends stream values. With ?sync=1 the response is not
// written until the published snapshot covers every block the request
// completed — the barrier tests and single-writer producers use to read
// their own writes.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	obsIngestRequests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("ingest requires POST"))
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("ingest body: %v", err))
		return
	}
	accepted := 0
	for _, v := range req.Values {
		if err := s.ing.Push(v); err != nil {
			// Partial acceptance is the honest answer: `accepted` tells the
			// producer exactly where to resume, mirroring Durable's contract.
			obsIngestErrors.Inc()
			writeJSON2(w, http.StatusServiceUnavailable, IngestAnswer{
				Accepted: accepted,
				Seen:     s.ing.Seen(),
				Durable:  s.ing.Durable(),
				Epoch:    snapshotEpoch(s.ing),
			})
			return
		}
		accepted++
		obsIngestValues.Inc()
	}
	if r.URL.Query().Get("sync") == "1" {
		s.ing.Sync()
	}
	writeJSON(w, IngestAnswer{
		Accepted: accepted,
		Seen:     s.ing.Seen(),
		Durable:  s.ing.Durable(),
		Epoch:    snapshotEpoch(s.ing),
	})
}

func snapshotEpoch(ing *ingest.Ingestor) int64 {
	if snap := ing.Snapshot(); snap != nil {
		return snap.Epoch
	}
	return 0
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeJSON2 is writeJSON with an explicit status code.
func writeJSON2(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusBadRequest {
		obsBadRequests.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
