package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/ingest"
)

func ingestServer(t *testing.T, cfg ingest.Config, lim Limits) (*httptest.Server, *ingest.Ingestor) {
	t.Helper()
	ing, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	srv, err := NewIngest(ing, lim)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, ing
}

func postValues(t *testing.T, url string, values []float64) (IngestAnswer, int) {
	t.Helper()
	body, err := json.Marshal(IngestRequest{Values: values})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ans IngestAnswer
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		t.Fatal(err)
	}
	return ans, resp.StatusCode
}

// TestIngestEndpoint drives the full streaming loop over HTTP: warm-up
// 503s with Retry-After, then POST /ingest?sync=1 followed by queries
// that answer against the freshly published window.
func TestIngestEndpoint(t *testing.T) {
	ts, ing := ingestServer(t, ingest.Config{Window: 16, Block: 4, Budget: 16}, Limits{MaxInFlight: 8})

	// Before the first complete block, queries answer 503 + Retry-After.
	resp, err := http.Get(ts.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warm-up /info: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("warm-up 503 without Retry-After")
	}

	// Push a full window with the sync barrier, then read our own writes.
	ans, code := postValues(t, ts.URL+"/ingest?sync=1", []float64{5, 5, 0, 26, 1, 3, 14, 2, 5, 5, 0, 26, 1, 3, 14, 2})
	if code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	if ans.Accepted != 16 || ans.Seen != 16 || ans.Epoch < 1 {
		t.Fatalf("ingest answer %+v", ans)
	}
	if ans.Durable != 0 {
		t.Fatalf("Durable = %d without a checkpoint store", ans.Durable)
	}

	var info Info
	getJSON(t, ts.URL+"/info", &info)
	if !info.Ingest || info.N != 16 || info.Seen != 16 || info.WindowStart != 0 {
		t.Fatalf("info %+v", info)
	}
	var pt PointAnswer
	getJSON(t, ts.URL+"/point?i=3", &pt)
	if pt.Index != 3 {
		t.Fatalf("point answer %+v", pt)
	}
	var rng RangeAnswer
	getJSON(t, ts.URL+"/range?lo=0&hi=15", &rng)
	// Budget == window makes the synopsis exact: the sum is the true sum.
	if want := 2.0 * (5 + 5 + 0 + 26 + 1 + 3 + 14 + 2); rng.Sum != want {
		t.Fatalf("range sum %g, want %g", rng.Sum, want)
	}

	// The window keeps sliding: another window of zeros shifts Start.
	postValues(t, ts.URL+"/ingest?sync=1", make([]float64, 16))
	getJSON(t, ts.URL+"/info", &info)
	if info.WindowStart != 16 || info.Seen != 32 {
		t.Fatalf("slid info %+v", info)
	}
	if ing.Seen() != 32 {
		t.Fatalf("ingestor saw %d", ing.Seen())
	}
}

// TestIngestEndpointMethodsAndBody pins the edges: GET is 405 with
// Allow, junk bodies are 400 (counted as bad requests), and neither
// touches the stream.
func TestIngestEndpointMethodsAndBody(t *testing.T) {
	ts, ing := ingestServer(t, ingest.Config{Window: 8, Block: 2, Budget: 4}, Limits{})

	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: status %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("Allow = %q", resp.Header.Get("Allow"))
	}

	bad0 := obsBadRequests.Value()
	resp, err = http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk body: status %d, want 400", resp.StatusCode)
	}
	if obsBadRequests.Value() != bad0+1 {
		t.Fatal("junk body not counted as bad request")
	}
	if ing.Seen() != 0 {
		t.Fatalf("rejected requests ingested %d values", ing.Seen())
	}
}

// TestIngestEndpointPartialAccept pins the fault contract: an injected
// push fault mid-batch answers 503 with the exact accepted prefix, the
// error counter moves once, and the gate does not misread the 503 as a
// deadline kill.
func TestIngestEndpointPartialAccept(t *testing.T) {
	if err := chaos.EnableSpec("19,ingest.push:error#5"); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()

	ts, ing := ingestServer(t, ingest.Config{Window: 8, Block: 2, Budget: 4},
		Limits{QueryTimeout: 5e9}) // 5s deadline: exercises the completion marker
	errs0, timeouts0 := obsIngestErrors.Value(), obsTimeouts.Value()

	ans, code := postValues(t, ts.URL+"/ingest", []float64{1, 2, 3, 4, 5, 6, 7, 8})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("faulted ingest: status %d, want 503", code)
	}
	if ans.Accepted != 4 || ans.Seen != 4 {
		t.Fatalf("faulted ingest answer %+v, want 4 accepted", ans)
	}
	if obsIngestErrors.Value() != errs0+1 {
		t.Fatal("injected push fault not counted")
	}
	if obsTimeouts.Value() != timeouts0 {
		t.Fatal("handler-chosen 503 misattributed to the deadline")
	}

	// The producer resumes from the reported prefix.
	ans, code = postValues(t, ts.URL+"/ingest?sync=1", []float64{5, 6, 7, 8})
	if code != http.StatusOK || ans.Accepted != 4 || ans.Seen != 8 {
		t.Fatalf("resumed ingest %+v (status %d)", ans, code)
	}
	if ing.Seen() != 8 {
		t.Fatalf("ingestor saw %d after resume", ing.Seen())
	}
}

// TestWarmupRetryAfterDerived pins the warm-up hint: before any value
// arrives the 503 falls back to Retry-After 1; once the arrival rate is
// observable, the hint extrapolates time-to-first-block (here ~1023
// values at >=60ms each, far past the 60s cap).
func TestWarmupRetryAfterDerived(t *testing.T) {
	ts, ing := ingestServer(t, ingest.Config{Window: 4096, Block: 1024, Budget: 4}, Limits{})

	resp, err := http.Get(ts.URL + "/point?i=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("pre-data warm-up: status %d Retry-After %q, want 503 with fallback \"1\"",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	if err := ing.Push(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	resp, err = http.Get(ts.URL + "/point?i=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "60" {
		t.Fatalf("rate-derived warm-up: status %d Retry-After %q, want 503 with capped \"60\"",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}
