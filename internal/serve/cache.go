package serve

import (
	"container/list"
	"sync"
)

// Warm cache of decoded shards. A node answers queries from ready
// (synopsis, evaluator, handler) triples; decoding a shard file and
// building its evaluator is the expensive step, so owned shards are
// preloaded at startup (Node.Warm) and everything else is filled on
// first query and evicted LRU. The cache is also the degradation
// ladder's inventory: under overload a node answers from the coarsest
// warm sibling of the requested shard instead of shedding (see
// shardCache.coarser).
//
// The cache is segmented by ownership. Owned shards live in the main
// LRU; shards the ring does not assign this node (stray fills — a
// misrouted query, or a query legitimately in flight across a
// membership cutover) are confined to a small evict-first side segment
// capped at 1/8 of the main capacity. A burst of stray queries can
// therefore never evict the shards this node is actually responsible
// for — pollution is bounded by construction, not by luck.

// cacheEntry is one warm shard: the per-shard query server node.answer
// dispatches into. srv carries the shard's identity so /info answers
// honestly through the router.
type cacheEntry struct {
	key    ShardKey
	srv    *Server
	maxAbs float64
}

// cacheSlot wraps an entry with the segment it lives in, so put can
// migrate an entry between segments when ownership changes (a shard
// stray-filled during a cutover becomes owned once the epoch commits).
type cacheSlot struct {
	e     *cacheEntry
	stray bool
}

// shardCache is a two-segment LRU of warm shards. Safe for concurrent
// use.
type shardCache struct {
	cap      int
	strayCap int

	mu    sync.Mutex
	owned *list.List                 // guarded by mu — front is most recent
	stray *list.List                 // guarded by mu — evict-first side segment
	ent   map[ShardKey]*list.Element // guarded by mu — element values are *cacheSlot
}

func newShardCache(capacity int) *shardCache {
	if capacity < 1 {
		capacity = 1
	}
	return &shardCache{
		cap:      capacity,
		strayCap: max(1, capacity/8),
		owned:    list.New(),
		stray:    list.New(),
		ent:      make(map[ShardKey]*list.Element),
	}
}

func (c *shardCache) segmentLocked(stray bool) *list.List {
	if stray {
		return c.stray
	}
	return c.owned
}

// get returns the warm entry for k, refreshing its recency within its
// segment.
func (c *shardCache) get(k ShardKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ent[k]
	if !ok {
		obsShardMisses.Inc()
		return nil, false
	}
	obsShardHits.Inc()
	slot := el.Value.(*cacheSlot)
	c.segmentLocked(slot.stray).MoveToFront(el)
	return slot.e, true
}

// put inserts (or refreshes) an entry in the segment its ownership
// dictates, evicting the least recently used shard of that segment when
// over its capacity. A refresh that changes ownership migrates the
// entry between segments. serve_shard_warm tracks the live count across
// both segments.
func (c *shardCache) put(e *cacheEntry, strayFill bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ent[e.key]; ok {
		slot := el.Value.(*cacheSlot)
		slot.e = e
		if slot.stray != strayFill {
			c.segmentLocked(slot.stray).Remove(el)
			slot.stray = strayFill
			c.ent[e.key] = c.segmentLocked(strayFill).PushFront(slot)
		} else {
			c.segmentLocked(slot.stray).MoveToFront(el)
		}
		c.trimLocked()
		return
	}
	if strayFill {
		obsStrayFills.Inc()
	}
	c.ent[e.key] = c.segmentLocked(strayFill).PushFront(&cacheSlot{e: e, stray: strayFill})
	obsShardWarm.Add(1)
	c.trimLocked()
}

// trimLocked evicts each segment down to its capacity. Caller holds mu.
func (c *shardCache) trimLocked() {
	for c.owned.Len() > c.cap {
		c.evictBackLocked(c.owned)
	}
	for c.stray.Len() > c.strayCap {
		c.evictBackLocked(c.stray)
	}
}

func (c *shardCache) evictBackLocked(ll *list.List) {
	last := ll.Back()
	ll.Remove(last)
	delete(c.ent, last.Value.(*cacheSlot).e.key)
	obsShardEvicted.Inc()
	obsShardWarm.Add(-1)
}

// peek returns the warm entry for k without touching recency or the
// hit/miss counters — the rebalancer's bookkeeping reads, which must
// not distort the query-path statistics or the LRU order.
func (c *shardCache) peek(k ShardKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ent[k]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheSlot).e, true
}

// remove drops k from whichever segment holds it, reporting whether it
// was present. The rebalancer's commit-time eviction lands here.
func (c *shardCache) remove(k ShardKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ent[k]
	if !ok {
		return false
	}
	c.segmentLocked(el.Value.(*cacheSlot).stray).Remove(el)
	delete(c.ent, k)
	obsShardWarm.Add(-1)
	return true
}

// keys snapshots every warm key, for the rebalancer's commit-time sweep.
func (c *shardCache) keys() []ShardKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardKey, 0, len(c.ent))
	for k := range c.ent {
		out = append(out, k)
	}
	return out
}

// coarser returns the warm entry for the same (dataset, metric) with the
// largest budget strictly below k.B — the next rung down the
// degradation ladder. It deliberately does not touch recency: a degraded
// answer should not keep a coarse shard pinned ahead of shards answering
// at full fidelity.
func (c *shardCache) coarser(k ShardKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *cacheEntry
	for key, el := range c.ent {
		if key.Dataset != k.Dataset || key.Metric != k.Metric || key.B >= k.B {
			continue
		}
		if best == nil || key.B > best.key.B {
			best = el.Value.(*cacheSlot).e
		}
	}
	return best, best != nil
}

// len returns the number of warm shards across both segments.
func (c *shardCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.owned.Len() + c.stray.Len()
}
