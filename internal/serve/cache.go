package serve

import (
	"container/list"
	"sync"
)

// Warm cache of decoded shards. A node answers queries from ready
// (synopsis, evaluator, handler) triples; decoding a shard file and
// building its evaluator is the expensive step, so owned shards are
// preloaded at startup (Node.Warm) and everything else is filled on
// first query and evicted LRU. The cache is also the degradation
// ladder's inventory: under overload a node answers from the coarsest
// warm sibling of the requested shard instead of shedding (see
// shardCache.coarser).

// cacheEntry is one warm shard: the per-shard query server node.answer
// dispatches into. srv carries the shard's identity so /info answers
// honestly through the router.
type cacheEntry struct {
	key    ShardKey
	srv    *Server
	maxAbs float64
}

// shardCache is an LRU of warm shards. Safe for concurrent use.
type shardCache struct {
	cap int

	mu  sync.Mutex
	ll  *list.List                 // guarded by mu — front is most recent
	ent map[ShardKey]*list.Element // guarded by mu
}

func newShardCache(capacity int) *shardCache {
	if capacity < 1 {
		capacity = 1
	}
	return &shardCache{cap: capacity, ll: list.New(), ent: make(map[ShardKey]*list.Element)}
}

// get returns the warm entry for k, refreshing its recency.
func (c *shardCache) get(k ShardKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ent[k]
	if !ok {
		obsShardMisses.Inc()
		return nil, false
	}
	obsShardHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts (or refreshes) an entry, evicting the least recently used
// shard when over capacity. serve_shard_warm tracks the live count.
func (c *shardCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ent[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.ent[e.key] = c.ll.PushFront(e)
	obsShardWarm.Add(1)
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.ent, last.Value.(*cacheEntry).key)
		obsShardEvicted.Inc()
		obsShardWarm.Add(-1)
	}
}

// coarser returns the warm entry for the same (dataset, metric) with the
// largest budget strictly below k.B — the next rung down the
// degradation ladder. It deliberately does not touch recency: a degraded
// answer should not keep a coarse shard pinned ahead of shards answering
// at full fidelity.
func (c *shardCache) coarser(k ShardKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *cacheEntry
	for key, el := range c.ent {
		if key.Dataset != k.Dataset || key.Metric != k.Metric || key.B >= k.B {
			continue
		}
		if best == nil || key.B > best.key.B {
			best = el.Value.(*cacheEntry)
		}
	}
	return best, best != nil
}

// len returns the number of warm shards.
func (c *shardCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
