package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/synopsis"
)

var paperData = []float64{5, 5, 0, 26, 1, 3, 14, 2}

func testServer(t *testing.T) (*httptest.Server, *synopsis.Synopsis, float64) {
	t.Helper()
	syn, maxAbs, err := greedy.SynopsisAbs(paperData, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(syn, maxAbs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, syn, maxAbs
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestInfoEndpoint(t *testing.T) {
	ts, syn, maxAbs := testServer(t)
	var info Info
	getJSON(t, ts.URL+"/info", &info)
	if info.N != 8 || info.Terms != syn.Size() || info.MaxAbsError != maxAbs || !info.Guaranteed {
		t.Fatalf("info = %+v", info)
	}
}

func TestPointEndpointGuarantees(t *testing.T) {
	ts, syn, maxAbs := testServer(t)
	ev := synopsis.NewEvaluator(syn)
	for i, d := range paperData {
		var ans PointAnswer
		getJSON(t, ts.URL+"/point?i="+itoa(i), &ans)
		if ans.Approx != ev.Point(i) {
			t.Fatalf("point %d: %g vs %g", i, ans.Approx, ev.Point(i))
		}
		if ans.Lo == nil || ans.Hi == nil {
			t.Fatalf("point %d: missing interval", i)
		}
		if d < *ans.Lo-1e-9 || d > *ans.Hi+1e-9 {
			t.Fatalf("point %d: exact %g outside [%g,%g]", i, d, *ans.Lo, *ans.Hi)
		}
		if *ans.Hi-*ans.Lo != 2*maxAbs {
			t.Fatalf("interval width %g, want %g", *ans.Hi-*ans.Lo, 2*maxAbs)
		}
	}
}

func TestRangeEndpoint(t *testing.T) {
	ts, _, _ := testServer(t)
	var ans RangeAnswer
	getJSON(t, ts.URL+"/range?lo=3&hi=6", &ans)
	if ans.Count != 4 || ans.Lo != 3 || ans.Hi != 6 {
		t.Fatalf("range answer %+v", ans)
	}
	exact := 26.0 + 1 + 3 + 14
	if ans.SumLo == nil || exact < *ans.SumLo-1e-9 || exact > *ans.SumHi+1e-9 {
		t.Fatalf("exact %g outside [%v,%v]", exact, ans.SumLo, ans.SumHi)
	}
	if ans.Avg != ans.Sum/4 {
		t.Fatalf("avg %g, sum %g", ans.Avg, ans.Sum)
	}
}

func TestCoefficientsEndpoint(t *testing.T) {
	ts, syn, _ := testServer(t)
	var terms []struct {
		Index int     `json:"index"`
		Value float64 `json:"value"`
	}
	getJSON(t, ts.URL+"/coefficients", &terms)
	if len(terms) != syn.Size() {
		t.Fatalf("got %d terms, want %d", len(terms), syn.Size())
	}
}

func TestBadRequests(t *testing.T) {
	ts, _, _ := testServer(t)
	for _, path := range []string{
		"/point", "/point?i=abc", "/point?i=-1", "/point?i=99",
		"/range?lo=1", "/range?lo=5&hi=2", "/range?lo=0&hi=100",
	} {
		if resp := getJSON(t, ts.URL+path, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestUnguaranteedSynopsisOmitsIntervals(t *testing.T) {
	syn, _, err := greedy.SynopsisAbs(paperData, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(syn, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var ans PointAnswer
	getJSON(t, ts.URL+"/point?i=2", &ans)
	if ans.Lo != nil || ans.Hi != nil {
		t.Fatalf("unexpected interval: %+v", ans)
	}
	var info Info
	getJSON(t, ts.URL+"/info", &info)
	if info.Guaranteed {
		t.Fatal("guaranteed flag set without a guarantee")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Fatal("nil synopsis accepted")
	}
	if _, err := New(&synopsis.Synopsis{}, 1); err == nil {
		t.Fatal("empty synopsis accepted")
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}
