package serve

// Chaos points of the query path (see internal/chaos). Every point name
// must be a constant in this file (enforced by dwlint's chaospoint
// analyzer).
const (
	// chaosQuery fires once per admitted query, before the handler runs.
	// Delay holds the query (and its in-flight slot) open — the lever the
	// admission-gate and timeout tests pull; Fail answers 500.
	chaosQuery = "serve.query"

	// chaosForward fires per data frame the router sends to a shard node
	// (carried into the mr frame writer, so drop/delay/corrupt/partial all
	// act at the same layer real link faults occur). Heartbeats are exempt.
	chaosForward = "serve.forward"

	// chaosReplica fires per shard query a node answers, before any
	// counting or work. Fail kills the replica outright — listener and
	// live connections closed, the node stays dead — which is the lever
	// the failover soak pulls; Delay stalls the answer.
	chaosReplica = "serve.replica"

	// chaosRebalance fires once per epoch-prepare a node's rebalancer
	// processes, before any shard is warmed. Fail naks the proposal (the
	// router aborts the cutover and the cluster stays on the old epoch);
	// Delay stretches the warm phase so cutover races stay open longer.
	chaosRebalance = "serve.rebalance"
)
