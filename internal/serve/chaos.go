package serve

// Chaos points of the query path (see internal/chaos). Every point name
// must be a constant in this file (enforced by dwlint's chaospoint
// analyzer).
const (
	// chaosQuery fires once per admitted query, before the handler runs.
	// Delay holds the query (and its in-flight slot) open — the lever the
	// admission-gate and timeout tests pull; Fail answers 500.
	chaosQuery = "serve.query"
)
