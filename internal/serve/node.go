package serve

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/mr"
)

// Node is one member of the sharded serve tier: it answers shard
// queries over the mr peer transport for the shards the consistent-hash
// ring assigns it (primary or replica), from a warm cache of decoded
// synopses. A node never proxies — a query for a shard it does not own
// is still answered (any shard in the store is loadable) but counted as
// serve_shard_not_owned, which a healthy cluster keeps at zero.
//
// Under overload a node walks a degradation ladder instead of failing:
// full-fidelity answer while in-flight slots last, then a degraded
// answer from the coarsest warm sibling of the requested shard (smaller
// B, weaker guarantee — still deterministic), and only when neither is
// possible an honest 503 shed.

// NodeConfig parameterizes a Node.
type NodeConfig struct {
	// Name is this node's ring identity; must appear in Nodes.
	Name string
	// Nodes is the full cluster membership, identical on every node and
	// on the router — ownership is computed, never negotiated.
	Nodes []string
	// Replicas is the ownership factor R (default 2, capped at the
	// cluster size by the ring).
	Replicas int
	// Vnodes is the ring's per-member point count (0 = DefaultVnodes).
	Vnodes int
	// Store resolves shard keys to synopses.
	Store Store
	// CacheShards caps the warm cache (default 64 entries).
	CacheShards int
	// MaxInFlight caps concurrently-answered shard queries; excess
	// queries take the degradation ladder. 0 = unlimited.
	MaxInFlight int
}

// Node answers shard queries for its ring assignments.
type Node struct {
	cfg   NodeConfig
	ring  *Ring
	cache *shardCache
	slots chan struct{} // nil when MaxInFlight == 0

	// chaosPoint names the per-query failpoint (serve.replica). Tests
	// that must fault exactly one node of an in-process cluster blank the
	// others' points, since the chaos injector is process-global.
	chaosPoint string

	mu    sync.Mutex
	ln    net.Listener          // guarded by mu
	conns map[*mr.PeerConn]bool // guarded by mu
	dead  bool                  // guarded by mu

	wg sync.WaitGroup
}

// NewNode builds a node. The store is not touched until Warm or the
// first query.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("serve: node needs a name")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: node needs a store")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("serve: replicas %d < 1", cfg.Replicas)
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = 64
	}
	ring := NewRing(cfg.Vnodes, cfg.Nodes...)
	found := false
	for _, m := range ring.Nodes() {
		if m == cfg.Name {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("serve: node %q is not in the member list %v", cfg.Name, cfg.Nodes)
	}
	n := &Node{
		cfg:        cfg,
		ring:       ring,
		cache:      newShardCache(cfg.CacheShards),
		chaosPoint: chaosReplica,
		conns:      make(map[*mr.PeerConn]bool),
	}
	if cfg.MaxInFlight > 0 {
		n.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	return n, nil
}

// role names this node's relation to a shard: "primary", "replica-<i>",
// or "stray" (not an owner). owned reports ring membership in the
// shard's replica set.
func (n *Node) role(k ShardKey) (string, bool) {
	for i, o := range n.ring.Owners(k, n.cfg.Replicas) {
		if o != n.cfg.Name {
			continue
		}
		if i == 0 {
			return "primary", true
		}
		return "replica-" + strconv.Itoa(i), true
	}
	return "stray", false
}

// Warm preloads every owned shard from the store into the cache, so the
// first query after startup (or restart) pays no decode latency. It
// returns the number of shards loaded.
func (n *Node) Warm() (int, error) {
	keys, err := n.cfg.Store.Keys()
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, k := range keys {
		if _, owned := n.role(k); !owned {
			continue
		}
		if _, err := n.entry(k); err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}

// entry returns the warm cache entry for k, loading and decoding the
// shard on a miss.
func (n *Node) entry(k ShardKey) (*cacheEntry, error) {
	if e, ok := n.cache.get(k); ok {
		return e, nil
	}
	sh, err := n.cfg.Store.Load(k)
	if err != nil {
		return nil, err
	}
	srv, err := New(sh.Syn, sh.MaxAbs)
	if err != nil {
		return nil, err
	}
	role, _ := n.role(k)
	srv.node, srv.shard, srv.role = n.cfg.Name, k.String(), role
	e := &cacheEntry{key: k, srv: srv, maxAbs: sh.MaxAbs}
	n.cache.put(e)
	return e, nil
}

// Serve accepts router connections on ln until the node is closed (or
// killed by the serve.replica failpoint). It returns nil after a
// deliberate shutdown.
func (n *Node) Serve(ln net.Listener) error {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		ln.Close()
		return fmt.Errorf("serve: node %s is dead", n.cfg.Name)
	}
	n.ln = ln
	n.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if n.Dead() {
				return nil
			}
			return err
		}
		n.wg.Add(1)
		//dwlint:ignore goroleak -- handleConn blocks in Recv on its conn; die and Close close every tracked conn, which errors Recv and ends the loop (Close then waits on wg)
		go n.handleConn(conn)
	}
}

func (n *Node) handleConn(conn net.Conn) {
	defer n.wg.Done()
	pc, err := mr.AcceptPeer(conn, "")
	if err != nil {
		return
	}
	if !n.track(pc) {
		pc.Close()
		return
	}
	defer n.untrack(pc)
	defer pc.Close()
	for {
		typ, payload, err := pc.Recv()
		if err != nil {
			return
		}
		switch typ {
		case mr.FrameHeartbeat:
			if err := pc.Send(mr.FrameHeartbeat, nil); err != nil {
				return
			}
		case frameShardQuery:
			req, err := decodeShardRequest(payload)
			if err != nil {
				return
			}
			rep, err := n.answer(req)
			if err != nil {
				// The failpoint killed the node mid-query; the connection
				// dies with it and the router sees a mid-exchange failure —
				// exactly the shape a real replica death has.
				return
			}
			if err := pc.Send(frameShardReply, rep.encode()); err != nil {
				return
			}
		default:
			return
		}
	}
}

func (n *Node) track(pc *mr.PeerConn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return false
	}
	n.conns[pc] = true
	return true
}

func (n *Node) untrack(pc *mr.PeerConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.conns, pc)
}

// answer resolves one shard query. A non-nil error means the node was
// killed by chaos and the connection must drop without a reply.
func (n *Node) answer(req shardRequest) (shardReply, error) {
	// The failpoint fires before any accounting: a query that kills its
	// replica was never answered, so it must not count as one.
	act := chaos.Point(n.chaosPoint)
	if act.Kind == chaos.Fail {
		n.die()
		return shardReply{}, act.Err
	}
	obsShardQueries.Inc()
	role, owned := n.role(req.Key)
	if !owned {
		obsShardNotOwned.Inc()
	}
	rep := shardReply{Node: n.cfg.Name, Role: role}
	if n.slots != nil {
		select {
		case n.slots <- struct{}{}:
			defer func() { <-n.slots }()
		default:
			// Degradation ladder: a coarser warm sibling answers (cheaper
			// and already decoded) before we ever shed.
			if ent, ok := n.cache.coarser(req.Key); ok {
				obsShardDegraded.Inc()
				rep.DegradedB = ent.key.B
				n.dispatch(&rep, ent, req)
				return rep, nil
			}
			obsShardShed.Inc()
			rep.Status = http.StatusServiceUnavailable
			rep.Body = []byte(fmt.Sprintf(
				`{"error":"serve: node %s overloaded, no coarser synopsis warm"}`, n.cfg.Name))
			return rep, nil
		}
	}
	// An injected stall holds its slot like any slow query would, so the
	// degradation tests exercise the real overload path.
	if act.Kind == chaos.Delay {
		time.Sleep(act.Sleep)
	}
	ent, err := n.entry(req.Key)
	if err != nil {
		rep.Status = http.StatusNotFound
		rep.Body = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
		return rep, nil
	}
	n.dispatch(&rep, ent, req)
	return rep, nil
}

// dispatch replays the query against the entry's per-shard server and
// captures the HTTP answer into the reply.
func (n *Node) dispatch(rep *shardReply, ent *cacheEntry, req shardRequest) {
	w := &memResponse{}
	r := &http.Request{
		Method: http.MethodGet,
		URL:    &url.URL{Path: req.Path, RawQuery: req.RawQuery},
	}
	ent.srv.mux.ServeHTTP(w, r)
	rep.Status = w.status()
	rep.Body = w.body.Bytes()
}

// die kills the node: listener and every live connection closed, no
// recovery. The serve.replica failpoint's Fail verb lands here.
func (n *Node) die() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return
	}
	n.dead = true
	if n.ln != nil {
		n.ln.Close()
	}
	for pc := range n.conns {
		pc.Close()
	}
}

// Dead reports whether the node was killed or closed.
func (n *Node) Dead() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dead
}

// Warmed returns the number of warm shards in the cache.
func (n *Node) Warmed() int { return n.cache.len() }

// Close shuts the node down and waits for its connection handlers.
func (n *Node) Close() error {
	n.die()
	n.wg.Wait()
	return nil
}

// memResponse captures a per-shard handler's answer in memory.
type memResponse struct {
	hdr  http.Header
	code int
	body bytes.Buffer
}

func (m *memResponse) Header() http.Header {
	if m.hdr == nil {
		m.hdr = make(http.Header)
	}
	return m.hdr
}

func (m *memResponse) WriteHeader(code int) {
	if m.code == 0 {
		m.code = code
	}
}

func (m *memResponse) Write(b []byte) (int, error) {
	if m.code == 0 {
		m.code = http.StatusOK
	}
	return m.body.Write(b)
}

func (m *memResponse) status() int {
	if m.code == 0 {
		return http.StatusOK
	}
	return m.code
}
