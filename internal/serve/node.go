package serve

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/mr"
)

// Node is one member of the sharded serve tier: it answers shard
// queries over the mr peer transport for the shards the consistent-hash
// ring assigns it (primary or replica), from a warm cache of decoded
// synopses. A node never proxies — a query for a shard it does not own
// is still answered (any shard in the store is loadable) but counted as
// serve_shard_not_owned, which a healthy cluster keeps at zero.
//
// Membership is dynamic. The node holds an epoch-stamped Membership and
// its ring; the router proposes changes over chaos-exempt mr.FrameEpoch
// control frames, and a background rebalancer goroutine runs the
// two-phase cutover: on Prepare it warms every shard it would own under
// the proposed ring *before* acking (so promotion never routes a query
// to a cold owner), on Commit it promotes the pending epoch, evicts
// shards the new ring moved elsewhere, and runs an anti-entropy audit
// (owned-but-cold shards warmed, stale cached roles rebuilt). Queries
// arrive tagged with the epoch the router routed under: the node
// answers for its current or pending epoch; a pending-epoch query also
// kicks an implicit commit, so a router that crashes between promoting
// its ring and sending Commit cannot strand the cluster mid-cutover.
// A query tagged with an epoch the node does not know (a cutover race,
// or a restarted router) is still answered but counted as
// serve_epoch_stale_queries — never as serve_shard_not_owned.
//
// Under overload a node walks a degradation ladder instead of failing:
// full-fidelity answer while in-flight slots last, then a degraded
// answer from the coarsest warm sibling of the requested shard (smaller
// B, weaker guarantee — still deterministic), and only when neither is
// possible an honest 503 shed.

// NodeConfig parameterizes a Node.
type NodeConfig struct {
	// Name is this node's ring identity; must appear in Nodes.
	Name string
	// Nodes is the initial cluster membership (epoch 0), identical on
	// every node and on the router — ownership is computed, never
	// negotiated. Later epochs arrive over the control plane.
	Nodes []string
	// Replicas is the ownership factor R (default 2, capped at the
	// cluster size by the ring).
	Replicas int
	// Vnodes is the ring's per-member point count (0 = DefaultVnodes).
	Vnodes int
	// Store resolves shard keys to synopses.
	Store Store
	// CacheShards caps the warm cache (default 64 entries).
	CacheShards int
	// MaxInFlight caps concurrently-answered shard queries; excess
	// queries take the degradation ladder. 0 = unlimited.
	MaxInFlight int
}

// epochJob is one unit of rebalancer work. reply is nil for implicit
// commits kicked by a pending-epoch query.
type epochJob struct {
	ctl   epochCtl
	reply chan epochCtl
}

// pendingEpoch is a prepared-but-uncommitted membership: shards warmed,
// ring built, waiting for the router's Commit (or a query tagged with
// its epoch).
type pendingEpoch struct {
	mem  Membership
	ring *Ring
}

// Node answers shard queries for its ring assignments.
type Node struct {
	cfg   NodeConfig
	cache *shardCache
	slots chan struct{} // nil when MaxInFlight == 0

	// chaosPoint names the per-query failpoint (serve.replica). Tests
	// that must fault exactly one node of an in-process cluster blank the
	// others' points, since the chaos injector is process-global.
	chaosPoint string

	emu  sync.Mutex
	mem  Membership    // guarded by emu — current membership
	ring *Ring         // guarded by emu — current ring
	pend *pendingEpoch // guarded by emu — prepared, uncommitted epoch

	rebalJobs chan epochJob
	rebalStop chan struct{} // closed by die

	mu    sync.Mutex
	ln    net.Listener          // guarded by mu
	conns map[*mr.PeerConn]bool // guarded by mu
	dead  bool                  // guarded by mu

	wg sync.WaitGroup
}

// NewNode builds a node and starts its rebalancer. The store is not
// touched until Warm, the first query, or the first membership change.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("serve: node needs a name")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: node needs a store")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("serve: replicas %d < 1", cfg.Replicas)
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = 64
	}
	mem := NewMembership(0, cfg.Nodes...)
	if !mem.Contains(cfg.Name) {
		return nil, fmt.Errorf("serve: node %q is not in the member list %v", cfg.Name, cfg.Nodes)
	}
	n := &Node{
		cfg:        cfg,
		mem:        mem,
		ring:       mem.ring(cfg.Vnodes),
		cache:      newShardCache(cfg.CacheShards),
		chaosPoint: chaosReplica,
		rebalJobs:  make(chan epochJob, 4),
		rebalStop:  make(chan struct{}),
		conns:      make(map[*mr.PeerConn]bool),
	}
	if cfg.MaxInFlight > 0 {
		n.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	n.wg.Add(1)
	//dwlint:ignore goroleak -- the rebalancer selects on rebalStop, which die closes; Close waits on wg
	go n.rebalancer()
	return n, nil
}

// ringRole names a node's relation to a shard under a given ring:
// "primary", "replica-<i>", or "stray" (not an owner). owned reports
// membership in the shard's replica set.
func ringRole(r *Ring, name string, k ShardKey, replicas int) (string, bool) {
	for i, o := range r.Owners(k, replicas) {
		if o != name {
			continue
		}
		if i == 0 {
			return "primary", true
		}
		return "replica-" + strconv.Itoa(i), true
	}
	return "stray", false
}

// role names this node's relation to a shard under the current ring.
func (n *Node) role(k ShardKey) (string, bool) {
	n.emu.Lock()
	r := n.ring
	n.emu.Unlock()
	return ringRole(r, n.cfg.Name, k, n.cfg.Replicas)
}

// Epoch returns the current (committed) ring epoch.
func (n *Node) Epoch() int64 {
	n.emu.Lock()
	defer n.emu.Unlock()
	return n.mem.Epoch
}

// Warm preloads every owned shard from the store into the cache, so the
// first query after startup (or restart) pays no decode latency. It
// returns the number of shards loaded.
func (n *Node) Warm() (int, error) {
	keys, err := n.cfg.Store.Keys()
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, k := range keys {
		if _, owned := n.role(k); !owned {
			continue
		}
		if _, err := n.entry(k, false); err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}

// entry returns the warm cache entry for k, loading and decoding the
// shard on a miss. stray confines the fill to the cache's evict-first
// side segment, so misrouted queries cannot evict owned shards.
func (n *Node) entry(k ShardKey, stray bool) (*cacheEntry, error) {
	if e, ok := n.cache.get(k); ok {
		return e, nil
	}
	n.emu.Lock()
	ring := n.ring
	n.emu.Unlock()
	e, err := n.build(k, ring)
	if err != nil {
		return nil, err
	}
	n.cache.put(e, stray)
	return e, nil
}

// build loads and decodes a shard into a fresh cache entry, stamping
// the per-shard server with this node's role for it under the given
// ring — the current one on the query path, the proposed one when the
// rebalancer warms ahead of a cutover.
func (n *Node) build(k ShardKey, ring *Ring) (*cacheEntry, error) {
	sh, err := n.cfg.Store.Load(k)
	if err != nil {
		return nil, err
	}
	srv, err := New(sh.Syn, sh.MaxAbs)
	if err != nil {
		return nil, err
	}
	role, _ := ringRole(ring, n.cfg.Name, k, n.cfg.Replicas)
	srv.node, srv.shard, srv.role = n.cfg.Name, k.String(), role
	return &cacheEntry{key: k, srv: srv, maxAbs: sh.MaxAbs}, nil
}

// Serve accepts router connections on ln until the node is closed (or
// killed by the serve.replica failpoint). It returns nil after a
// deliberate shutdown.
func (n *Node) Serve(ln net.Listener) error {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		ln.Close()
		return fmt.Errorf("serve: node %s is dead", n.cfg.Name)
	}
	n.ln = ln
	n.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if n.Dead() {
				return nil
			}
			return err
		}
		n.wg.Add(1)
		//dwlint:ignore goroleak -- handleConn blocks in Recv on its conn; die and Close close every tracked conn, which errors Recv and ends the loop (Close then waits on wg)
		go n.handleConn(conn)
	}
}

func (n *Node) handleConn(conn net.Conn) {
	defer n.wg.Done()
	pc, err := mr.AcceptPeer(conn, "")
	if err != nil {
		return
	}
	if !n.track(pc) {
		pc.Close()
		return
	}
	defer n.untrack(pc)
	defer pc.Close()
	for {
		typ, payload, err := pc.Recv()
		if err != nil {
			return
		}
		switch typ {
		case mr.FrameHeartbeat:
			if err := pc.Send(mr.FrameHeartbeat, nil); err != nil {
				return
			}
		case mr.FrameEpoch:
			ctl, err := decodeEpochCtl(payload)
			if err != nil {
				return
			}
			if err := pc.Send(mr.FrameEpoch, n.submit(ctl).encode()); err != nil {
				return
			}
		case frameShardQuery:
			req, err := decodeShardRequest(payload)
			if err != nil {
				return
			}
			rep, err := n.answer(req)
			if err != nil {
				// The failpoint killed the node mid-query; the connection
				// dies with it and the router sees a mid-exchange failure —
				// exactly the shape a real replica death has.
				return
			}
			if err := pc.Send(frameShardReply, rep.encode()); err != nil {
				return
			}
		default:
			return
		}
	}
}

func (n *Node) track(pc *mr.PeerConn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return false
	}
	n.conns[pc] = true
	return true
}

func (n *Node) untrack(pc *mr.PeerConn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.conns, pc)
}

// submit hands a control message to the rebalancer and waits for its
// answer. A closed node naks immediately.
func (n *Node) submit(ctl epochCtl) epochCtl {
	nak := epochCtl{Kind: epochCtlNak, Mem: Membership{Epoch: ctl.Mem.Epoch},
		Err: fmt.Sprintf("serve: node %s closed", n.cfg.Name)}
	reply := make(chan epochCtl, 1)
	select {
	case n.rebalJobs <- epochJob{ctl: ctl, reply: reply}:
	case <-n.rebalStop:
		return nak
	}
	select {
	case rep := <-reply:
		return rep
	case <-n.rebalStop:
		return nak
	}
}

// kickCommit schedules an implicit commit for a pending epoch a query
// just arrived under. Non-blocking: if the rebalancer's queue is full
// the commit is already on its way.
func (n *Node) kickCommit(epoch int64) {
	select {
	case n.rebalJobs <- epochJob{ctl: epochCtl{Kind: epochCtlCommit, Mem: Membership{Epoch: epoch}}}:
	default:
	}
}

// rebalancer is the node's membership state machine: one goroutine
// processes prepares and commits in arrival order, so cutover phases
// never interleave on a node.
func (n *Node) rebalancer() {
	defer n.wg.Done()
	for {
		select {
		case <-n.rebalStop:
			return
		case job := <-n.rebalJobs:
			var rep epochCtl
			switch job.ctl.Kind {
			case epochCtlPrepare:
				rep = n.prepare(job.ctl.Mem)
			case epochCtlCommit:
				rep = n.commit(job.ctl.Mem.Epoch)
			default:
				rep = epochCtl{Kind: epochCtlNak,
					Err: fmt.Sprintf("serve: unknown epoch control kind %d", job.ctl.Kind)}
			}
			if job.reply != nil {
				job.reply <- rep
			}
		}
	}
}

// prepare is cutover phase one: build the proposed ring, warm every
// shard this node would own under it, and only then record the epoch as
// pending and ack. A node that acks is query-ready for the new epoch —
// the router may promote the moment every ack is in.
func (n *Node) prepare(mem Membership) epochCtl {
	act := chaos.Point(chaosRebalance)
	if act.Kind == chaos.Fail {
		return epochCtl{Kind: epochCtlNak, Mem: Membership{Epoch: mem.Epoch}, Err: act.Err.Error()}
	}
	if act.Kind == chaos.Delay {
		time.Sleep(act.Sleep)
	}
	n.emu.Lock()
	cur := n.mem.Epoch
	n.emu.Unlock()
	if mem.Epoch <= cur {
		return epochCtl{Kind: epochCtlNak, Mem: Membership{Epoch: mem.Epoch},
			Err: fmt.Sprintf("serve: proposed epoch %d is not ahead of current %d", mem.Epoch, cur)}
	}
	ring := mem.ring(n.cfg.Vnodes)
	warmed := 0
	// A node leaving the cluster (drain) still acks: it owns nothing
	// under the new ring, so there is nothing to warm.
	if mem.Contains(n.cfg.Name) {
		keys, err := n.cfg.Store.Keys()
		if err != nil {
			return epochCtl{Kind: epochCtlNak, Mem: Membership{Epoch: mem.Epoch}, Err: err.Error()}
		}
		for _, k := range keys {
			if _, owned := ringRole(ring, n.cfg.Name, k, n.cfg.Replicas); !owned {
				continue
			}
			if _, ok := n.cache.peek(k); ok {
				continue
			}
			e, err := n.build(k, ring)
			if err != nil {
				return epochCtl{Kind: epochCtlNak, Mem: Membership{Epoch: mem.Epoch}, Err: err.Error()}
			}
			n.cache.put(e, false)
			warmed++
		}
	}
	n.emu.Lock()
	n.pend = &pendingEpoch{mem: mem, ring: ring}
	n.emu.Unlock()
	obsRebalanceWarmed.Add(int64(warmed))
	return epochCtl{Kind: epochCtlAck, Mem: Membership{Epoch: mem.Epoch}, Count: int64(warmed)}
}

// commit is cutover phase two: promote the pending epoch, then sweep —
// evict shards the new ring moved elsewhere and run the anti-entropy
// audit (warm owned-but-cold shards, rebuild entries whose cached role
// went stale). Committing the already-current epoch is idempotent and
// re-runs only the sweep.
func (n *Node) commit(epoch int64) epochCtl {
	n.emu.Lock()
	switch {
	case n.pend != nil && n.pend.mem.Epoch == epoch:
		n.mem, n.ring = n.pend.mem, n.pend.ring
		n.pend = nil
		obsEpoch.Set(epoch)
	case n.mem.Epoch == epoch:
		// Already committed (the implicit kick and the router's explicit
		// commit can both land); re-audit below, it is cheap and honest.
	default:
		cur := n.mem.Epoch
		n.emu.Unlock()
		return epochCtl{Kind: epochCtlNak, Mem: Membership{Epoch: epoch},
			Err: fmt.Sprintf("serve: commit for unknown epoch %d (current %d)", epoch, cur)}
	}
	ring := n.ring
	n.emu.Unlock()

	evicted := 0
	for _, k := range n.cache.keys() {
		if _, owned := ringRole(ring, n.cfg.Name, k, n.cfg.Replicas); owned {
			continue
		}
		if n.cache.remove(k) {
			evicted++
		}
	}
	obsRebalanceEvicted.Add(int64(evicted))

	fixed := 0
	if keys, err := n.cfg.Store.Keys(); err == nil {
		for _, k := range keys {
			role, owned := ringRole(ring, n.cfg.Name, k, n.cfg.Replicas)
			if !owned {
				continue
			}
			if e, ok := n.cache.peek(k); ok && e.srv.role == role {
				continue
			}
			// Owned but cold (prepare raced an eviction, or this commit is
			// repairing divergence) or warm with a stale role: rebuild.
			e, err := n.build(k, ring)
			if err != nil {
				continue
			}
			n.cache.put(e, false)
			fixed++
		}
	}
	obsRebalanceAudit.Add(int64(fixed))
	return epochCtl{Kind: epochCtlAck, Mem: Membership{Epoch: epoch}, Count: int64(evicted)}
}

// answer resolves one shard query. A non-nil error means the node was
// killed by chaos and the connection must drop without a reply.
func (n *Node) answer(req shardRequest) (shardReply, error) {
	// The failpoint fires before any accounting: a query that kills its
	// replica was never answered, so it must not count as one.
	act := chaos.Point(n.chaosPoint)
	if act.Kind == chaos.Fail {
		n.die()
		return shardReply{}, act.Err
	}
	obsShardQueries.Inc()

	// Resolve the query's epoch against current and pending rings. Only
	// a recognized epoch can accuse the router of misrouting: ownership
	// disagreement under an unknown epoch is a cutover race (or a
	// restarted process), counted as stale, never as not-owned.
	n.emu.Lock()
	epoch, ring := n.mem.Epoch, n.ring
	pend := n.pend
	n.emu.Unlock()
	known := true
	switch {
	case req.Epoch == epoch:
	case pend != nil && req.Epoch == pend.mem.Epoch:
		// The router routes under this epoch already — it promoted, so
		// commit must be on its way; kick it in case it never arrives.
		epoch, ring = pend.mem.Epoch, pend.ring
		n.kickCommit(req.Epoch)
	default:
		known = false
		obsEpochStale.Inc()
	}

	role, owned := ringRole(ring, n.cfg.Name, req.Key, n.cfg.Replicas)
	if !known {
		role = "stale-epoch"
	} else if !owned {
		obsShardNotOwned.Inc()
	}
	rep := shardReply{Node: n.cfg.Name, Role: role, Epoch: epoch}
	if n.slots != nil {
		select {
		case n.slots <- struct{}{}:
			defer func() { <-n.slots }()
		default:
			// Degradation ladder: a coarser warm sibling answers (cheaper
			// and already decoded) before we ever shed.
			if ent, ok := n.cache.coarser(req.Key); ok {
				obsShardDegraded.Inc()
				rep.DegradedB = ent.key.B
				n.dispatch(&rep, ent, req)
				return rep, nil
			}
			obsShardShed.Inc()
			rep.Status = http.StatusServiceUnavailable
			rep.Body = []byte(fmt.Sprintf(
				`{"error":"serve: node %s overloaded, no coarser synopsis warm"}`, n.cfg.Name))
			return rep, nil
		}
	}
	// An injected stall holds its slot like any slow query would, so the
	// degradation tests exercise the real overload path.
	if act.Kind == chaos.Delay {
		time.Sleep(act.Sleep)
	}
	ent, err := n.entry(req.Key, !owned)
	if err != nil {
		rep.Status = http.StatusNotFound
		rep.Body = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
		return rep, nil
	}
	n.dispatch(&rep, ent, req)
	return rep, nil
}

// dispatch replays the query against the entry's per-shard server and
// captures the HTTP answer into the reply.
func (n *Node) dispatch(rep *shardReply, ent *cacheEntry, req shardRequest) {
	w := &memResponse{}
	r := &http.Request{
		Method: http.MethodGet,
		URL:    &url.URL{Path: req.Path, RawQuery: req.RawQuery},
	}
	ent.srv.mux.ServeHTTP(w, r)
	rep.Status = w.status()
	rep.Body = w.body.Bytes()
}

// die kills the node: listener, every live connection, and the
// rebalancer closed, no recovery. The serve.replica failpoint's Fail
// verb lands here.
func (n *Node) die() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return
	}
	n.dead = true
	close(n.rebalStop)
	if n.ln != nil {
		n.ln.Close()
	}
	for pc := range n.conns {
		pc.Close()
	}
}

// Dead reports whether the node was killed or closed.
func (n *Node) Dead() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dead
}

// Warmed returns the number of warm shards in the cache.
func (n *Node) Warmed() int { return n.cache.len() }

// Close shuts the node down and waits for its connection handlers and
// rebalancer.
func (n *Node) Close() error {
	n.die()
	n.wg.Wait()
	return nil
}

// memResponse captures a per-shard handler's answer in memory.
type memResponse struct {
	hdr  http.Header
	code int
	body bytes.Buffer
}

func (m *memResponse) Header() http.Header {
	if m.hdr == nil {
		m.hdr = make(http.Header)
	}
	return m.hdr
}

func (m *memResponse) WriteHeader(code int) {
	if m.code == 0 {
		m.code = code
	}
}

func (m *memResponse) Write(b []byte) (int, error) {
	if m.code == 0 {
		m.code = http.StatusOK
	}
	return m.body.Write(b)
}

func (m *memResponse) status() int {
	if m.code == 0 {
		return http.StatusOK
	}
	return m.code
}
