package serve

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// Property tests for the consistent-hash ring: balance, minimal key
// movement on membership change, and cross-process determinism. These
// are the placement contract the router and nodes rely on instead of
// any coordination protocol.

func ringKeys(n int) []ShardKey {
	keys := make([]ShardKey, n)
	for i := range keys {
		keys[i] = ShardKey{Dataset: "ds" + fmt.Sprint(i%97), B: 1 + i%512, Metric: []string{"dgreedyabs", "conv", "drel"}[i%3]}
	}
	return keys
}

// TestRingBalance: with generous vnodes, every node's key share stays
// within a factor of two of the fair share.
func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e", "f"}
	r := NewRing(128, nodes...)
	counts := map[string]int{}
	keys := ringKeys(20000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	mean := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		c := float64(counts[n])
		if c < mean/2 || c > mean*2 {
			t.Errorf("node %s owns %.0f keys, fair share %.0f (counts %v)", n, c, mean, counts)
		}
	}
}

// TestRingJoinMovesOnlyToNewNode: adding a member reassigns keys only
// TO the new member — no key moves between surviving members.
func TestRingJoinMovesOnlyToNewNode(t *testing.T) {
	r := NewRing(64, "a", "b", "c")
	keys := ringKeys(5000)
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Owner(k)
	}
	r.Add("d")
	moved := 0
	for i, k := range keys {
		after := r.Owner(k)
		if after == before[i] {
			continue
		}
		moved++
		if after != "d" {
			t.Fatalf("key %s moved %s -> %s on join of d", k, before[i], after)
		}
	}
	if moved == 0 || moved > len(keys)/2 {
		t.Errorf("join moved %d/%d keys; want a minimal, non-zero share", moved, len(keys))
	}
}

// TestRingLeaveMovesOnlyDepartedKeys: removing a member reassigns only
// the keys it owned; everything else stays put.
func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	r := NewRing(64, "a", "b", "c", "d")
	keys := ringKeys(5000)
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Owner(k)
	}
	r.Remove("b")
	for i, k := range keys {
		after := r.Owner(k)
		if before[i] != "b" && after != before[i] {
			t.Fatalf("key %s moved %s -> %s though only b left", k, before[i], after)
		}
		if before[i] == "b" && after == "b" {
			t.Fatalf("key %s still owned by removed node", k)
		}
	}
}

// TestRingOwnershipDeterministic (testing/quick): ownership is a pure
// function of the member SET — any insertion order, or an independently
// constructed ring (a second process), agrees on every replica list.
func TestRingOwnershipDeterministic(t *testing.T) {
	prop := func(seed int64, nKeys uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := []string{"n0", "n1", "n2", "n3", "n4"}
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r1 := NewRing(32, nodes...)
		r2 := NewRing(32, shuffled...)
		for i := 0; i < int(nKeys)+1; i++ {
			k := ShardKey{Dataset: fmt.Sprintf("d%d", rng.Intn(50)), B: 1 + rng.Intn(256), Metric: "m"}
			if !reflect.DeepEqual(r1.Owners(k, 2), r2.Owners(k, 2)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRingOwnersDistinct: replica sets never repeat a node and are
// capped by the membership.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(0, "a", "b", "c")
	for _, k := range ringKeys(500) {
		owners := r.Owners(k, 5)
		if len(owners) != 3 {
			t.Fatalf("key %s: owners %v, want all 3 members", k, owners)
		}
		sorted := append([]string(nil), owners...)
		sort.Strings(sorted)
		if sorted[0] == sorted[1] || sorted[1] == sorted[2] {
			t.Fatalf("key %s: duplicate owner in %v", k, owners)
		}
	}
	if got := NewRing(0).Owners(ShardKey{Dataset: "x", B: 1, Metric: "m"}, 2); got != nil {
		t.Fatalf("empty ring returned owners %v", got)
	}
}

// TestRingJoinMinimalMovementR3: at replication 3, a join perturbs each
// key's replica set minimally — the new set is the old one with the
// joiner optionally spliced in (surviving members keep their clockwise
// order), so at most one member per key hands its copy to the joiner
// and no shard ever moves between two surviving members.
func TestRingJoinMinimalMovementR3(t *testing.T) {
	const R = 3
	base := []string{"m1", "m2", "m3", "m4", "m5"}
	before := NewRing(0, base...)
	after := NewRing(0, append(append([]string(nil), base...), "m6")...)
	keys := ringKeys(5000)
	moved := 0
	for _, k := range keys {
		was, now := before.Owners(k, R), after.Owners(k, R)
		// now must be was with "m6" optionally inserted, truncated to R.
		j := 0
		for _, o := range now {
			if o == "m6" {
				continue
			}
			if j >= len(was) || was[j] != o {
				t.Fatalf("key %v: owners %v -> %v moved a shard between survivors", k, was, now)
			}
			j++
		}
		if now[0] != was[0] {
			moved++
			if now[0] != "m6" {
				t.Fatalf("key %v: primary moved %s -> %s, not to the joiner", k, was[0], now[0])
			}
		}
	}
	// The joiner takes roughly 1/6 of primaries; far more would mean the
	// join reshuffled the ring wholesale.
	if moved == 0 || moved > len(keys)/3 {
		t.Errorf("join moved %d/%d primaries, want a small non-zero share", moved, len(keys))
	}
}

// TestRingOwnershipJoinOrderIndependentR3: the replica set at R=3 is a
// pure function of the member *set* — any insertion order, and the
// Membership constructor path, agree on every key.
func TestRingOwnershipJoinOrderIndependentR3(t *testing.T) {
	const R = 3
	orders := [][]string{
		{"a", "b", "c", "d", "e"},
		{"e", "d", "c", "b", "a"},
		{"c", "a", "e", "b", "d"},
	}
	rings := make([]*Ring, 0, len(orders)+1)
	for _, ord := range orders {
		r := NewRing(0)
		for _, m := range ord {
			r.Add(m)
		}
		rings = append(rings, r)
	}
	rings = append(rings, NewMembership(9, "d", "e", "a", "b", "c", "c").ring(0))
	for _, k := range ringKeys(2000) {
		want := rings[0].Owners(k, R)
		for i, r := range rings[1:] {
			if got := r.Owners(k, R); !reflect.DeepEqual(got, want) {
				t.Fatalf("key %v: ring %d owners %v, ring 0 owners %v", k, i+1, got, want)
			}
		}
	}
}
