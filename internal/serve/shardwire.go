package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"dwmaxerr/internal/mr"
)

// Shard query codec for router↔node peer links. The transport is the mr
// engine's framed wire protocol (mr.PeerConn: preamble/version gate,
// CRC32-C trailers, chaos instrumentation); this file defines the serve
// tier's two frame types in the peer frame space and their payloads.
// Fields are uvarint-length-prefixed strings and uvarint integers —
// same style as the engine's payload encodings, no reflection.

const (
	// frameShardQuery carries a shardRequest from router to node.
	frameShardQuery = mr.PeerFrameBase + 0
	// frameShardReply carries a shardReply back.
	frameShardReply = mr.PeerFrameBase + 1
)

// Membership control sub-types, carried in mr.FrameEpoch frames (the
// chaos-exempt control lane). Prepare proposes epoch E+1 with the full
// member list; the node warms every shard it would own under E+1 and
// answers Ack (or Nak with an error). Commit promotes the pending epoch
// and triggers the node's eviction + anti-entropy audit.
const (
	epochCtlPrepare = byte(1)
	epochCtlCommit  = byte(2)
	epochCtlAck     = byte(3)
	epochCtlNak     = byte(4)
)

// epochCtl is one membership control message. Mem carries the full
// membership on Prepare; only the epoch matters on Commit/Ack. Count
// reports work done (shards warmed on a prepare ack, evicted on a
// commit ack); Err carries the Nak reason.
type epochCtl struct {
	Kind  byte
	Mem   Membership
	Count int64
	Err   string
}

// shardRequest is one proxied query: which shard, which endpoint, and
// the raw query string to replay against it. Epoch is the ring epoch
// the router routed under — the node uses it to tell a routing bug
// (epochs agree, ownership doesn't) from a query legitimately in
// flight across a membership cutover.
type shardRequest struct {
	Key      ShardKey
	Path     string // "/info", "/point", "/range", "/coefficients"
	RawQuery string
	Epoch    int64
}

// shardReply is the node's answer. Status and Body mirror the HTTP
// response of the per-shard handler; Node and Role identify who
// actually answered (surfaced as X-Dwserve-* headers by the router);
// DegradedB is non-zero when overload forced a coarser synopsis; Epoch
// is the ring epoch the node answered under.
type shardReply struct {
	Status    int
	DegradedB int
	Node      string
	Role      string
	Epoch     int64
	Body      []byte
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// cursor is a bounds-checked payload reader; the first decode error
// sticks so call sites stay linear.
type cursor struct {
	buf []byte
	off int
	err error
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		c.err = fmt.Errorf("serve: truncated uvarint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) string() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.buf)-c.off) {
		c.err = fmt.Errorf("serve: string of %d bytes overruns payload", n)
		return ""
	}
	s := string(c.buf[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

func (c *cursor) bytes() []byte {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.buf)-c.off) {
		c.err = fmt.Errorf("serve: bytes of %d overruns payload", n)
		return nil
	}
	b := append([]byte(nil), c.buf[c.off:c.off+int(n)]...)
	c.off += int(n)
	return b
}

func (r shardRequest) encode() []byte {
	b := appendString(nil, r.Key.Dataset)
	b = binary.AppendUvarint(b, uint64(r.Key.B))
	b = appendString(b, r.Key.Metric)
	b = appendString(b, r.Path)
	b = appendString(b, r.RawQuery)
	return binary.AppendUvarint(b, uint64(r.Epoch))
}

func decodeShardRequest(payload []byte) (shardRequest, error) {
	c := &cursor{buf: payload}
	var r shardRequest
	r.Key.Dataset = c.string()
	r.Key.B = int(c.uvarint())
	r.Key.Metric = c.string()
	r.Path = c.string()
	r.RawQuery = c.string()
	r.Epoch = int64(c.uvarint())
	return r, c.err
}

func (r shardReply) encode() []byte {
	b := binary.AppendUvarint(nil, uint64(r.Status))
	b = binary.AppendUvarint(b, uint64(r.DegradedB))
	b = appendString(b, r.Node)
	b = appendString(b, r.Role)
	b = binary.AppendUvarint(b, uint64(r.Epoch))
	b = binary.AppendUvarint(b, uint64(len(r.Body)))
	return append(b, r.Body...)
}

func decodeShardReply(payload []byte) (shardReply, error) {
	c := &cursor{buf: payload}
	var r shardReply
	r.Status = int(c.uvarint())
	r.DegradedB = int(c.uvarint())
	r.Node = c.string()
	r.Role = c.string()
	r.Epoch = int64(c.uvarint())
	r.Body = c.bytes()
	return r, c.err
}

func (e epochCtl) encode() []byte {
	b := []byte{e.Kind}
	b = binary.AppendUvarint(b, uint64(e.Mem.Epoch))
	b = binary.AppendUvarint(b, uint64(len(e.Mem.Members)))
	for _, m := range e.Mem.Members {
		b = appendString(b, m)
	}
	b = binary.AppendUvarint(b, uint64(e.Count))
	return appendString(b, e.Err)
}

func decodeEpochCtl(payload []byte) (epochCtl, error) {
	if len(payload) < 1 {
		return epochCtl{}, fmt.Errorf("serve: empty epoch control payload")
	}
	c := &cursor{buf: payload, off: 1}
	e := epochCtl{Kind: payload[0]}
	e.Mem.Epoch = int64(c.uvarint())
	n := c.uvarint()
	if c.err == nil && n > uint64(len(payload)) {
		return epochCtl{}, fmt.Errorf("serve: membership of %d members overruns payload", n)
	}
	for i := uint64(0); i < n && c.err == nil; i++ {
		e.Mem.Members = append(e.Mem.Members, c.string())
	}
	e.Count = int64(c.uvarint())
	e.Err = c.string()
	return e, c.err
}

// float64tobytes / float64frombytes are the store trailer codec
// (little-endian IEEE 754, matching the DWS1 body encoding).
func float64tobytes(v float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return buf[:]
}

func float64frombytes(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
