package serve

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/mr"
)

// Membership and rebalancing tests below the cluster level: the stray
// cache segment, the node's epoch state machine driven over raw control
// frames, and the epoch-aware not-owned accounting. The full churn soak
// (detector demotion + join under live traffic) is in
// cluster_soak_test.go.

// TestStrayCacheSegmentBoundsPollution: a burst of stray fills — shards
// this node does not own — cannot evict a single owned shard. Strays
// are confined to the evict-first side segment (1/8 of capacity), and a
// stray that becomes owned migrates into the main segment.
func TestStrayCacheSegmentBoundsPollution(t *testing.T) {
	c := newShardCache(8) // side segment: max(1, 8/8) = 1 entry
	mk := func(ds string) *cacheEntry {
		return &cacheEntry{key: ShardKey{Dataset: ds, B: 1, Metric: "abs"}}
	}
	strays := obsStrayFills.Value()
	for i := 0; i < 8; i++ {
		c.put(mk(fmt.Sprintf("owned%d", i)), false)
	}
	for i := 0; i < 20; i++ {
		c.put(mk(fmt.Sprintf("stray%d", i)), true)
	}
	for i := 0; i < 8; i++ {
		k := ShardKey{Dataset: fmt.Sprintf("owned%d", i), B: 1, Metric: "abs"}
		if _, ok := c.peek(k); !ok {
			t.Errorf("owned shard %v evicted by the stray burst", k)
		}
	}
	if n := c.len(); n != 9 {
		t.Errorf("cache holds %d shards, want 9 (8 owned + 1 surviving stray)", n)
	}
	if d := obsStrayFills.Value() - strays; d != 20 {
		t.Errorf("serve_shard_stray_fills grew by %d, want 20", d)
	}
	// Ownership migration: re-filing the surviving stray as owned moves
	// it to the main segment, where the next stray burst cannot touch it.
	last := ShardKey{Dataset: "stray19", B: 1, Metric: "abs"}
	if _, ok := c.peek(last); !ok {
		t.Fatal("expected stray19 to be the surviving stray")
	}
	c.put(mk("stray19"), false)
	c.put(mk("strayNew"), true)
	if _, ok := c.peek(last); !ok {
		t.Error("shard evicted from the stray segment after migrating to owned")
	}
}

// control runs one epoch control round trip against a node's shard
// listener, the way the router's control plane does.
func controlRT(t *testing.T, addr string, ctl epochCtl) epochCtl {
	t.Helper()
	pc, err := mr.DialPeer(addr, time.Second, "")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	pc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := pc.Send(mr.FrameEpoch, ctl.encode()); err != nil {
		t.Fatal(err)
	}
	typ, raw, err := pc.Recv()
	if err != nil || typ != mr.FrameEpoch {
		t.Fatalf("control recv: typ %d, err %v", typ, err)
	}
	rep, err := decodeEpochCtl(raw)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func askNode(t *testing.T, pc *mr.PeerConn, req shardRequest) shardReply {
	t.Helper()
	if err := pc.Send(frameShardQuery, req.encode()); err != nil {
		t.Fatal(err)
	}
	typ, raw, err := pc.Recv()
	if err != nil || typ != frameShardReply {
		t.Fatalf("recv: typ %d, err %v", typ, err)
	}
	rep, err := decodeShardReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestNodeEpochStateMachine drives one node through a full two-phase
// cutover over raw control frames: prepare warms exactly the shards the
// new ring hands the node before acking, a query tagged with the
// pending epoch is answered under it and kicks the implicit commit, and
// a later shrinking epoch evicts the shards the ring moved away.
func TestNodeEpochStateMachine(t *testing.T) {
	dir := writeClusterStore(t)
	// R=1 against a phantom member: "gone" owns part of the store, so
	// this node starts warm only on its own share.
	n, addr := startNode(t, dir, "keeper", []string{"keeper", "gone"}, 1, nil)
	store := DirStore{Dir: dir}
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	mine := n.Warmed()
	if mine == len(keys) {
		t.Fatalf("phantom member owns nothing; pick different names (warmed %d of %d)", mine, len(keys))
	}

	// Prepare epoch 1 = {keeper} alone: every shard becomes keeper's, so
	// prepare must warm exactly the phantom's former share before acking.
	warmed := obsRebalanceWarmed.Value()
	rep := controlRT(t, addr, epochCtl{Kind: epochCtlPrepare, Mem: NewMembership(1, "keeper")})
	if rep.Kind != epochCtlAck {
		t.Fatalf("prepare nak: %s", rep.Err)
	}
	if want := int64(len(keys) - mine); rep.Count != want || obsRebalanceWarmed.Value()-warmed != want {
		t.Fatalf("prepare warmed %d (counter %d), want %d",
			rep.Count, obsRebalanceWarmed.Value()-warmed, want)
	}
	if n.Epoch() != 0 {
		t.Fatalf("prepare alone promoted the epoch to %d", n.Epoch())
	}

	// A stale re-prepare for an epoch not ahead of current must nak.
	if rep := controlRT(t, addr, epochCtl{Kind: epochCtlPrepare, Mem: NewMembership(0, "keeper")}); rep.Kind != epochCtlNak {
		t.Fatal("stale prepare (epoch 0) was acked")
	}

	// A query tagged with the pending epoch is answered under the new
	// ring (the router only routes under epochs it has fully prepared)
	// and kicks the implicit commit — the recovery path for a router
	// that dies between promoting and committing.
	pc, err := mr.DialPeer(addr, time.Second, "")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	qrep := askNode(t, pc, shardRequest{Key: keys[0], Path: "/point", RawQuery: "i=0", Epoch: 1})
	if qrep.Status != http.StatusOK || qrep.Epoch != 1 || qrep.Role != "primary" {
		t.Fatalf("pending-epoch query: status %d epoch %d role %q, want 200/1/primary",
			qrep.Status, qrep.Epoch, qrep.Role)
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Epoch() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("implicit commit never promoted epoch 1")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n.Warmed() != len(keys) {
		t.Fatalf("after epoch 1 keeper holds %d warm shards, want all %d", n.Warmed(), len(keys))
	}

	// Epoch 2 brings the phantom back: commit must evict keeper's lost
	// shards (the ring moved them) and the explicit commit is idempotent
	// with the implicit one.
	evicted := obsRebalanceEvicted.Value()
	if rep := controlRT(t, addr, epochCtl{Kind: epochCtlPrepare, Mem: NewMembership(2, "keeper", "gone")}); rep.Kind != epochCtlAck {
		t.Fatalf("prepare epoch 2 nak: %s", rep.Err)
	}
	rep = controlRT(t, addr, epochCtl{Kind: epochCtlCommit, Mem: Membership{Epoch: 2}})
	if rep.Kind != epochCtlAck || n.Epoch() != 2 {
		t.Fatalf("commit epoch 2: kind %d epoch %d: %s", rep.Kind, n.Epoch(), rep.Err)
	}
	if want := int64(len(keys) - mine); rep.Count != want || obsRebalanceEvicted.Value()-evicted != want {
		t.Fatalf("commit evicted %d (counter %d), want %d", rep.Count, obsRebalanceEvicted.Value()-evicted, want)
	}
	if n.Warmed() != mine {
		t.Fatalf("after epoch 2 keeper holds %d warm shards, want its own %d", n.Warmed(), mine)
	}
	if rep := controlRT(t, addr, epochCtl{Kind: epochCtlCommit, Mem: Membership{Epoch: 2}}); rep.Kind != epochCtlAck {
		t.Fatalf("re-commit of current epoch nak: %s", rep.Err)
	}
	if rep := controlRT(t, addr, epochCtl{Kind: epochCtlCommit, Mem: Membership{Epoch: 9}}); rep.Kind != epochCtlNak {
		t.Fatal("commit for an unprepared epoch was acked")
	}
}

// TestEpochStaleQueryAccounting is the not-owned regression contract:
// ownership disagreement under a recognized epoch counts as
// serve_shard_not_owned, but the same disagreement under an unknown
// epoch — a query legitimately in flight across a cutover, or from a
// restarted router — counts only as serve_epoch_stale_queries and is
// answered with the honest "stale-epoch" role.
func TestEpochStaleQueryAccounting(t *testing.T) {
	dir := writeClusterStore(t)
	n, addr := startNode(t, dir, "keeper", []string{"keeper", "gone"}, 1, nil)
	store := DirStore{Dir: dir}
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	var theirs ShardKey
	found := false
	for _, k := range keys {
		if _, owned := n.role(k); !owned {
			theirs, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("phantom member owns nothing; pick different names")
	}
	pc, err := mr.DialPeer(addr, time.Second, "")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	notOwned, stale := obsShardNotOwned.Value(), obsEpochStale.Value()
	// Same epoch, not my shard: a real routing bug, counted.
	rep := askNode(t, pc, shardRequest{Key: theirs, Path: "/point", RawQuery: "i=0", Epoch: 0})
	if rep.Status != http.StatusOK || rep.Role != "stray" {
		t.Fatalf("misrouted query: status %d role %q, want 200/stray", rep.Status, rep.Role)
	}
	if d := obsShardNotOwned.Value() - notOwned; d != 1 {
		t.Fatalf("serve_shard_not_owned grew by %d after a recognized-epoch misroute, want 1", d)
	}

	// Unknown epoch, same shard: a cutover race, answered but never
	// blamed on routing.
	notOwned = obsShardNotOwned.Value()
	rep = askNode(t, pc, shardRequest{Key: theirs, Path: "/point", RawQuery: "i=0", Epoch: 42})
	if rep.Status != http.StatusOK || rep.Role != "stale-epoch" {
		t.Fatalf("stale-epoch query: status %d role %q, want 200/stale-epoch", rep.Status, rep.Role)
	}
	if d := obsShardNotOwned.Value() - notOwned; d != 0 {
		t.Fatalf("serve_shard_not_owned grew by %d under an unknown epoch, want 0", d)
	}
	if d := obsEpochStale.Value() - stale; d != 1 {
		t.Fatalf("serve_epoch_stale_queries grew by %d, want 1", d)
	}
}

// TestChaosRebalancePrepareNakAbortsCutover: the serve.rebalance
// failpoint naks the first prepare — the router must abort the join,
// keep the old epoch serving, and succeed cleanly on retry once the
// fault clears.
func TestChaosRebalancePrepareNakAbortsCutover(t *testing.T) {
	if err := chaos.EnableSpec("11,serve.rebalance:drop#1"); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()
	dir := writeClusterStore(t)
	tc := startCluster(t, dir, []string{"n1", "n2"}, 2, nil, nil)
	bumps := obsEpochBumps.Value()

	joiner, jaddr := startNode(t, dir, "n3", []string{"n3"}, 2, nil)
	if _, err := tc.router.Join("n3", jaddr); err == nil {
		t.Fatal("join succeeded despite the injected prepare nak")
	}
	if mem := tc.router.Membership(); mem.Epoch != 0 || mem.Contains("n3") {
		t.Fatalf("aborted join left membership %+v, want epoch 0 without n3", mem)
	}
	if status, _, body := getBody(t, tc.http.URL+"/point?i=1"); status != http.StatusOK {
		t.Fatalf("query after aborted cutover: status %d: %s", status, body)
	}

	// Fault spent (#1 fires only on the first hit): the retry must go
	// through end to end.
	mem, err := tc.router.Join("n3", jaddr)
	if err != nil {
		t.Fatalf("retry join: %v", err)
	}
	if mem.Epoch != 1 || !mem.Contains("n3") {
		t.Fatalf("retry join membership %+v, want epoch 1 with n3", mem)
	}
	if d := obsEpochBumps.Value() - bumps; d != 1 {
		t.Fatalf("serve_epoch_bumps_total grew by %d across nak+retry, want exactly 1", d)
	}
	deadline := time.Now().Add(5 * time.Second)
	for joiner.Epoch() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("joiner never committed epoch 1")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
