package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/greedy"
)

func limitedServer(t *testing.T, lim Limits) *httptest.Server {
	t.Helper()
	syn, maxAbs, err := greedy.SynopsisAbs(paperData, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewLimited(syn, maxAbs, lim)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestAdmissionGateRejectsOverload fills the single in-flight slot with a
// chaos-delayed query, then shows the next query bounces with 503 +
// Retry-After while the slot holder still completes.
func TestAdmissionGateRejectsOverload(t *testing.T) {
	if err := chaos.EnableSpec("11,serve.query:delay=300ms#1"); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()

	ts := limitedServer(t, Limits{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	rejected0 := obsRejected.Value()

	var wg sync.WaitGroup
	wg.Add(1)
	slowStatus := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/info")
		if err != nil {
			slowStatus <- -1
			return
		}
		resp.Body.Close()
		slowStatus <- resp.StatusCode
	}()

	// Wait until the delayed query occupies the slot, then overflow it.
	deadline := time.Now().Add(2 * time.Second)
	for obsInflight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow query: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if d := obsRejected.Value() - rejected0; d != 1 {
		t.Fatalf("serve_rejected_total delta = %d, want 1", d)
	}

	wg.Wait()
	if s := <-slowStatus; s != http.StatusOK {
		t.Fatalf("slot holder finished with status %d, want 200", s)
	}
	if v := obsInflight.Value(); v != 0 {
		t.Fatalf("serve_inflight = %d after drain, want 0", v)
	}
}

// TestQueryTimeout cuts off a chaos-stalled query at the deadline.
func TestQueryTimeout(t *testing.T) {
	if err := chaos.EnableSpec("12,serve.query:stall=500ms#1"); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()

	ts := limitedServer(t, Limits{QueryTimeout: 50 * time.Millisecond})
	timeouts0 := obsTimeouts.Value()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled query: status %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, deadline not enforced", elapsed)
	}
	if d := obsTimeouts.Value() - timeouts0; d != 1 {
		t.Fatalf("serve_timeouts_total delta = %d, want 1", d)
	}
}

// TestHandler503NotCountedAsTimeout is the regression test for the
// serve_timeouts_total misattribution: with QueryTimeout == 0 there is no
// TimeoutHandler at all, so a 503 chosen by a handler below the gate (a
// mux fallthrough, an overloaded ingest endpoint) must not count as a
// deadline kill.
func TestHandler503NotCountedAsTimeout(t *testing.T) {
	h503 := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	g := newGate(h503, Limits{QueryTimeout: 0})
	timeouts0 := obsTimeouts.Value()
	rr := httptest.NewRecorder()
	g.ServeHTTP(rr, httptest.NewRequest("GET", "/whatever", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rr.Code)
	}
	if d := obsTimeouts.Value() - timeouts0; d != 0 {
		t.Fatalf("serve_timeouts_total delta = %d, want 0 (no TimeoutHandler installed)", d)
	}
}

// TestHandler503UnderTimeoutNotCounted goes one step further: even with a
// TimeoutHandler installed, a 503 the inner handler returns well before
// the deadline is a completed response, not a deadline kill.
func TestHandler503UnderTimeoutNotCounted(t *testing.T) {
	h503 := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	g := newGate(h503, Limits{QueryTimeout: 5 * time.Second})
	timeouts0 := obsTimeouts.Value()
	rr := httptest.NewRecorder()
	g.ServeHTTP(rr, httptest.NewRequest("GET", "/whatever", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rr.Code)
	}
	if d := obsTimeouts.Value() - timeouts0; d != 0 {
		t.Fatalf("serve_timeouts_total delta = %d, want 0 (handler completed before deadline)", d)
	}
}

// TestFlusherPassthrough pins that http.Flusher survives the gate's
// statusRecorder wrapper: a streaming handler can assert and use it.
func TestFlusherPassthrough(t *testing.T) {
	sawFlusher := false
	streaming := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			return
		}
		sawFlusher = true
		w.Write([]byte("chunk-1\n"))
		f.Flush()
		w.Write([]byte("chunk-2\n"))
	})
	g := newGate(streaming, Limits{MaxInFlight: 2})
	rr := httptest.NewRecorder()
	g.ServeHTTP(rr, httptest.NewRequest("GET", "/stream", nil))
	if !sawFlusher {
		t.Fatal("w.(http.Flusher) failed through the gate")
	}
	if !rr.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
	if got := rr.Body.String(); got != "chunk-1\nchunk-2\n" {
		t.Fatalf("body %q", got)
	}
}

// TestLimitsZeroValueIsTransparent pins that NewLimited{} behaves exactly
// like New: no rejections, no timeouts, correct answers.
func TestLimitsZeroValueIsTransparent(t *testing.T) {
	ts := limitedServer(t, Limits{})
	rejected0, timeouts0 := obsRejected.Value(), obsTimeouts.Value()
	for i := 0; i < 8; i++ {
		var ans PointAnswer
		getJSON(t, ts.URL+"/point?i="+itoa(i), &ans)
		if ans.Index != i {
			t.Fatalf("point %d answered %+v", i, ans)
		}
	}
	if obsRejected.Value() != rejected0 || obsTimeouts.Value() != timeouts0 {
		t.Fatal("zero-value limits rejected or timed out a query")
	}
}

// TestChaosQueryFail pins the Fail verb on the query point: an injected
// fault answers 500 without wedging the in-flight gauge.
func TestChaosQueryFail(t *testing.T) {
	if err := chaos.EnableSpec("13,serve.query:error#1"); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()

	ts := limitedServer(t, Limits{MaxInFlight: 4})
	resp, err := http.Get(ts.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected fault: status %d, want 500", resp.StatusCode)
	}
	if v := obsInflight.Value(); v != 0 {
		t.Fatalf("serve_inflight = %d after injected fault, want 0", v)
	}
	// The next query (hit 2, rule exhausted) succeeds.
	var info Info
	getJSON(t, ts.URL+"/info", &info)
	if info.N != 8 {
		t.Fatalf("post-fault query answered %+v", info)
	}
}

// TestShedRetryAfterDerived pins the derived rejection hint: with no
// explicit Limits.RetryAfter the gate extrapolates from the observed
// query-duration EWMA (ceiling seconds, floored at 1, capped at 60),
// and an explicit value always wins over the observations.
func TestShedRetryAfterDerived(t *testing.T) {
	block := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { <-block })
	g := newGate(inner, Limits{MaxInFlight: 1})

	if got := g.retryAfterSeconds(); got != 1 {
		t.Fatalf("unobserved hint = %d, want fallback 1", got)
	}
	g.observe(2500 * time.Millisecond)
	if got := g.retryAfterSeconds(); got != 3 {
		t.Fatalf("hint after one 2.5s query = %d, want ceil to 3", got)
	}
	g.observe(90 * time.Minute)
	if got := g.retryAfterSeconds(); got != 60 {
		t.Fatalf("hint after pathological query = %d, want cap 60", got)
	}

	// The header a shed client actually sees carries the derived value.
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/info", nil))
	}()
	deadline := time.Now().Add(2 * time.Second)
	for obsInflight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot holder never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/info", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") != "60" {
		t.Fatalf("shed response: status %d Retry-After %q, want 503 with derived \"60\"",
			rec.Code, rec.Header().Get("Retry-After"))
	}
	close(block)
	<-done

	ge := newGate(inner, Limits{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	ge.observe(10 * time.Second)
	if got := ge.retryAfterSeconds(); got != 2 {
		t.Fatalf("explicit RetryAfter overridden: hint = %d, want 2", got)
	}
}
