package serve

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Consistent-hash ring for the sharded serve tier. Synopses are sharded
// across serve nodes keyed on (dataset, B, metric) — the error-tree
// partitioning of the source paper gives each synopsis an independent
// identity, so placement needs no coordination beyond an agreed member
// list. Each member contributes Vnodes points on a 64-bit circle; a key
// is owned by the first R distinct members clockwise from its hash.
//
// Determinism is the contract everything above relies on: ownership is
// a pure function of (member set, vnode count, key). Two processes that
// agree on membership — a router and its nodes, started with the same
// -peers list — agree on placement with no coordination, insertion
// order included (property-tested in ring_test.go). Joins and leaves
// move only the keys adjacent to the changed member's points, the
// classic consistent-hashing minimal-movement guarantee.

// ShardKey identifies one synopsis in the serve tier's catalog: the
// dataset it summarizes, its coefficient budget B, and the error metric
// it was thresholded for (algorithm name, e.g. "dgreedyabs" or "conv").
type ShardKey struct {
	Dataset string
	B       int
	Metric  string
}

// String is the canonical form — the hash input, the store file stem,
// and the /info "shard" field all derive from it.
func (k ShardKey) String() string {
	return k.Dataset + "/b" + strconv.Itoa(k.B) + "/" + k.Metric
}

func (k ShardKey) hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.String()))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV alone disperses short, similar
// strings ("a\x000", "a\x001", ...) unevenly around the circle — enough
// to skew node shares by 2-3x — so every point and key hash is passed
// through a full-avalanche mix before placement.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DefaultVnodes is the per-member point count when RingConfig leaves it
// zero: enough for key balance within a few tens of percent at small
// clusters without making Owners lookups measurable.
const DefaultVnodes = 64

type ringPoint struct {
	hash uint64
	node string
}

// Ring is the consistent-hash ring. Not safe for concurrent mutation;
// the serve tier builds it once at startup and only reads afterwards.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by (hash, node)
	members map[string]bool
}

// NewRing builds a ring with vnodesPerNode points per member (<= 0
// means DefaultVnodes) and the given initial members.
func NewRing(vnodesPerNode int, nodes ...string) *Ring {
	if vnodesPerNode <= 0 {
		vnodesPerNode = DefaultVnodes
	}
	r := &Ring{vnodes: vnodesPerNode, members: make(map[string]bool)}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func vnodeHash(node string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(i)))
	return mix64(h.Sum64())
}

// Add joins a member (idempotent).
func (r *Ring) Add(node string) {
	if node == "" || r.members[node] {
		return
	}
	r.members[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{vnodeHash(node, i), node})
	}
	// Ties broken by name so the point order — and therefore ownership —
	// never depends on insertion order.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// Remove leaves a member (idempotent).
func (r *Ring) Remove(node string) {
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owners returns the first n distinct members clockwise from the key's
// hash — the replica set, primary first. Fewer members than n returns
// them all.
func (r *Ring) Owners(k ShardKey, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := k.hash()
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

// Owner returns the primary owner of k ("" on an empty ring).
func (r *Ring) Owner(k ShardKey) string {
	if o := r.Owners(k, 1); len(o) == 1 {
		return o[0]
	}
	return ""
}

// Membership is cluster membership as a first-class, versioned object:
// one epoch-stamped member-name set. The ring stays a pure function of
// the names, so two processes holding the same Membership agree on
// placement with zero coordination — the epoch exists to let processes
// *change* membership safely: the router tags every query with the
// epoch it routed under, nodes answer for their current or pending
// epoch, and cutover is two-phase (see node.go / router.go).
type Membership struct {
	Epoch   int64    `json:"epoch"`
	Members []string `json:"members"`
}

// NewMembership builds epoch-stamped membership from a member list,
// deduplicated and sorted so equal sets compare equal.
func NewMembership(epoch int64, members ...string) Membership {
	seen := make(map[string]bool, len(members))
	out := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		out = append(out, m)
	}
	sort.Strings(out)
	return Membership{Epoch: epoch, Members: out}
}

// Contains reports whether name is a member.
func (m Membership) Contains(name string) bool {
	for _, n := range m.Members {
		if n == name {
			return true
		}
	}
	return false
}

// ring materializes the membership's consistent-hash ring.
func (m Membership) ring(vnodes int) *Ring {
	return NewRing(vnodes, m.Members...)
}
