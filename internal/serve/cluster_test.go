package serve

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/mr"
)

// In-process cluster tests: nodes on loopback listeners, a router in
// front, real peer-transport frames in between. The soak variant lives
// in cluster_soak_test.go.

// writeClusterStore builds a store directory with budgets 1, 2 and 4 of
// the paper dataset plus single-budget datasets to spread across owners.
func writeClusterStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, b := range []int{1, 2, 4} {
		syn, maxAbs, err := greedy.SynopsisAbs(paperData, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteShard(dir, ShardKey{Dataset: "paper", B: b, Metric: "abs"}, syn, maxAbs); err != nil {
			t.Fatal(err)
		}
	}
	for i, ds := range []string{"alpha", "bravo", "charlie"} {
		data := make([]float64, len(paperData))
		for j, v := range paperData {
			data[j] = v * float64(i+2)
		}
		syn, maxAbs, err := greedy.SynopsisAbs(data, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteShard(dir, ShardKey{Dataset: ds, B: 4, Metric: "abs"}, syn, maxAbs); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

type testCluster struct {
	nodes  map[string]*Node
	addrs  map[string]string
	router *Router
	http   *httptest.Server
	ring   *Ring
}

// startCluster boots named nodes over one store directory, warms them,
// and fronts them with a router whose defaults are paper/b4/abs. rtweak,
// when non-nil, adjusts the router config (heartbeat cadence, detector
// thresholds) before the router starts.
func startCluster(t *testing.T, dir string, names []string, replicas int, tweak func(*NodeConfig), rtweak func(*RouterConfig)) *testCluster {
	t.Helper()
	tc := &testCluster{nodes: map[string]*Node{}, addrs: map[string]string{}, ring: NewRing(0, names...)}
	peers := make([]Peer, 0, len(names))
	for _, name := range names {
		n, addr := startNode(t, dir, name, names, replicas, tweak)
		tc.nodes[name] = n
		tc.addrs[name] = addr
		peers = append(peers, Peer{Name: name, Addr: addr})
	}
	rcfg := RouterConfig{
		Peers: peers, Replicas: replicas,
		Dataset: "paper", B: 4, Metric: "abs",
	}
	if rtweak != nil {
		rtweak(&rcfg)
	}
	rt, err := NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	tc.router = rt
	tc.http = httptest.NewServer(rt)
	t.Cleanup(tc.http.Close)
	return tc
}

// startNode boots and warms one serve node on a loopback listener,
// returning it with its shard address. names is the node's own initial
// membership — a node joining an established cluster starts knowing
// only itself and learns the rest from the router's Prepare.
func startNode(t *testing.T, dir, name string, names []string, replicas int, tweak func(*NodeConfig)) (*Node, string) {
	t.Helper()
	cfg := NodeConfig{Name: name, Nodes: names, Replicas: replicas, Store: DirStore{Dir: dir}}
	if tweak != nil {
		tweak(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Warm(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go n.Serve(ln)
	t.Cleanup(func() { n.Close() })
	return n, ln.Addr().String()
}

func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestClusterRoutesToRingOwners: every query lands on the shard's ring
// primary, answers match a standalone server byte for byte, and no node
// ever serves a shard it does not own.
func TestClusterRoutesToRingOwners(t *testing.T) {
	dir := writeClusterStore(t)
	names := []string{"n1", "n2", "n3"}
	tc := startCluster(t, dir, names, 1, nil, nil)
	notOwned := obsShardNotOwned.Value()

	for _, ds := range []string{"paper", "alpha", "bravo", "charlie"} {
		key := ShardKey{Dataset: ds, B: 4, Metric: "abs"}
		sh, err := DirStore{Dir: dir}.Load(key)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := New(sh.Syn, sh.MaxAbs)
		if err != nil {
			t.Fatal(err)
		}
		ref := httptest.NewServer(direct)
		for _, q := range []string{"/point?i=3", "/range?lo=1&hi=6", "/coefficients"} {
			sep := "&"
			if q == "/coefficients" {
				sep = "?"
			}
			status, hdr, body := getBody(t, tc.http.URL+q+sep+"dataset="+ds)
			if status != http.StatusOK {
				t.Fatalf("%s dataset=%s: status %d: %s", q, ds, status, body)
			}
			if want := tc.ring.Owner(key); hdr.Get("X-Dwserve-Node") != want {
				t.Errorf("%s dataset=%s answered by %q, ring owner is %q", q, ds, hdr.Get("X-Dwserve-Node"), want)
			}
			if role := hdr.Get("X-Dwserve-Role"); role != "primary" {
				t.Errorf("%s dataset=%s role %q, want primary", q, ds, role)
			}
			_, _, want := getBody(t, ref.URL+q)
			if string(body) != string(want) {
				t.Errorf("%s dataset=%s: cluster answer %s != standalone %s", q, ds, body, want)
			}
		}
		ref.Close()
	}
	if d := obsShardNotOwned.Value() - notOwned; d != 0 {
		t.Errorf("serve_shard_not_owned grew by %d; routing disagrees with ring ownership", d)
	}
}

// TestClusterInfoReportsShardIdentity: /info through the router names
// the answering node, the shard, and the node's ring role — including
// after the primary dies and a replica answers.
func TestClusterInfoReportsShardIdentity(t *testing.T) {
	dir := writeClusterStore(t)
	names := []string{"east", "west"}
	tc := startCluster(t, dir, names, 2, nil, nil)
	key := ShardKey{Dataset: "paper", B: 4, Metric: "abs"}
	owners := tc.ring.Owners(key, 2)

	var info Info
	status, hdr, body := getBody(t, tc.http.URL+"/info")
	if status != http.StatusOK {
		t.Fatalf("/info: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Node != owners[0] || info.Role != "primary" || info.Shard != key.String() {
		t.Fatalf("info identity %q/%q/%q, want %q/primary/%q", info.Node, info.Role, info.Shard, owners[0], key)
	}

	// Kill the primary: the replica answers and says so honestly.
	tc.nodes[owners[0]].Close()
	status, hdr, body = getBody(t, tc.http.URL+"/info")
	if status != http.StatusOK {
		t.Fatalf("/info after primary death: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Node != owners[1] || info.Role != "replica-1" {
		t.Fatalf("failover info identity %q/%q, want %q/replica-1", info.Node, info.Role, owners[1])
	}
	if hdr.Get("X-Dwserve-Role") != "replica-1" {
		t.Fatalf("failover role header %q, want replica-1", hdr.Get("X-Dwserve-Role"))
	}
}

// TestClusterDegradesToCoarserSynopsis: with the node's single
// in-flight slot held by a stalled query, a concurrent query for
// paper/b4 is answered from the warm b2 synopsis (degraded, 200) and a
// query with no coarser sibling is shed with an honest 503. Two raw
// peer connections drive the node, since a router serializes exchanges
// per link.
func TestClusterDegradesToCoarserSynopsis(t *testing.T) {
	if err := chaos.EnableSpec("3,serve.replica:delay=600ms#1"); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()
	dir := writeClusterStore(t)
	tc := startCluster(t, dir, []string{"solo"}, 1, func(cfg *NodeConfig) {
		cfg.MaxInFlight = 1
	}, nil)
	degraded := obsShardDegraded.Value()
	shed := obsShardShed.Value()

	c1, err := mr.DialPeer(tc.addrs["solo"], time.Second, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := mr.DialPeer(tc.addrs["solo"], time.Second, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	paper := shardRequest{Key: ShardKey{Dataset: "paper", B: 4, Metric: "abs"}, Path: "/point", RawQuery: "i=0"}
	if err := c1.Send(frameShardQuery, paper.encode()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let the stalled query take the slot

	ask := func(conn *mr.PeerConn, req shardRequest) shardReply {
		t.Helper()
		if err := conn.Send(frameShardQuery, req.encode()); err != nil {
			t.Fatal(err)
		}
		typ, raw, err := conn.Recv()
		if err != nil || typ != frameShardReply {
			t.Fatalf("recv: typ %d, err %v", typ, err)
		}
		rep, err := decodeShardReply(raw)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := ask(c2, paper)
	if rep.Status != http.StatusOK || rep.DegradedB != 2 {
		t.Fatalf("degraded query: status %d degradedB %d, want 200 with fallback to 2", rep.Status, rep.DegradedB)
	}
	alpha := shardRequest{Key: ShardKey{Dataset: "alpha", B: 4, Metric: "abs"}, Path: "/point", RawQuery: "i=0"}
	if rep := ask(c2, alpha); rep.Status != http.StatusServiceUnavailable {
		t.Fatalf("no-coarser query: status %d, want 503 shed", rep.Status)
	}
	typ, raw, err := c1.Recv()
	if err != nil || typ != frameShardReply {
		t.Fatalf("stalled query: typ %d, err %v", typ, err)
	}
	if rep, err := decodeShardReply(raw); err != nil || rep.Status != http.StatusOK {
		t.Fatalf("stalled query finished with %d (err %v)", rep.Status, err)
	}
	if d := obsShardDegraded.Value() - degraded; d != 1 {
		t.Errorf("serve_shard_degraded_total grew by %d, want 1", d)
	}
	if d := obsShardShed.Value() - shed; d != 1 {
		t.Errorf("serve_shard_shed_total grew by %d, want 1", d)
	}
}

// TestShardStoreRoundTrip pins the store layout: key→file→key is the
// identity, the guarantee trailer survives, and plain trailerless DWS1
// files load with guarantee 0.
func TestShardStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	syn, maxAbs, err := greedy.SynopsisAbs(paperData, 3)
	if err != nil {
		t.Fatal(err)
	}
	key := ShardKey{Dataset: "round_trip-1", B: 3, Metric: "abs"}
	if err := WriteShard(dir, key, syn, maxAbs); err != nil {
		t.Fatal(err)
	}
	st := DirStore{Dir: dir}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys() = %v, want [%v]", keys, key)
	}
	sh, err := st.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if sh.MaxAbs != maxAbs || sh.Syn.N != syn.N || sh.Syn.Size() != syn.Size() {
		t.Fatalf("loaded shard differs: maxAbs %v vs %v", sh.MaxAbs, maxAbs)
	}
	// A guarantee-less shard (older tooling) loads with MaxAbs 0.
	bare := ShardKey{Dataset: "bare", B: 3, Metric: "abs"}
	if err := WriteShard(dir, bare, syn, 0); err != nil {
		t.Fatal(err)
	}
	sh, err = st.Load(bare)
	if err != nil {
		t.Fatal(err)
	}
	if sh.MaxAbs != 0 {
		t.Fatalf("bare shard guarantee %v, want 0", sh.MaxAbs)
	}
	if _, err := st.Load(ShardKey{Dataset: "../evil", B: 1, Metric: "abs"}); err == nil {
		t.Fatal("path-escaping dataset name was accepted")
	}
	if _, err := st.Load(ShardKey{Dataset: "missing", B: 9, Metric: "abs"}); err == nil {
		t.Fatal("missing shard loaded")
	}
}

// TestShardWireRoundTrip pins the request/reply codecs, including the
// truncation checks a hostile or corrupted payload hits.
func TestShardWireRoundTrip(t *testing.T) {
	req := shardRequest{
		Key:      ShardKey{Dataset: "paper", B: 4, Metric: "abs"},
		Path:     "/range",
		RawQuery: "lo=1&hi=6&dataset=paper",
		Epoch:    7,
	}
	got, err := decodeShardRequest(req.encode())
	if err != nil || got != req {
		t.Fatalf("request round trip: %+v, err %v", got, err)
	}
	rep := shardReply{Status: 200, DegradedB: 2, Node: "east", Role: "replica-1", Epoch: 7, Body: []byte(`{"x":1}`)}
	back, err := decodeShardReply(rep.encode())
	if err != nil || back.Status != rep.Status || back.DegradedB != rep.DegradedB ||
		back.Node != rep.Node || back.Role != rep.Role || back.Epoch != rep.Epoch ||
		string(back.Body) != string(rep.Body) {
		t.Fatalf("reply round trip: %+v, err %v", back, err)
	}
	for cut := 0; cut < len(rep.encode()); cut++ {
		if _, err := decodeShardReply(rep.encode()[:cut]); err == nil && cut < len(rep.encode())-len(rep.Body) {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := decodeShardRequest([]byte{0xff}); err == nil {
		t.Fatal("garbage request decoded")
	}

	// Membership control codec: prepares carry the full member list, naks
	// their reason; truncations must never decode cleanly.
	ctl := epochCtl{Kind: epochCtlPrepare, Mem: NewMembership(3, "west", "east", "north"), Count: 12, Err: "why"}
	cback, err := decodeEpochCtl(ctl.encode())
	if err != nil || cback.Kind != ctl.Kind || cback.Mem.Epoch != ctl.Mem.Epoch ||
		len(cback.Mem.Members) != 3 || cback.Mem.Members[0] != "east" ||
		cback.Count != ctl.Count || cback.Err != ctl.Err {
		t.Fatalf("epoch control round trip: %+v, err %v", cback, err)
	}
	for cut := 0; cut < len(ctl.encode()); cut++ {
		if _, err := decodeEpochCtl(ctl.encode()[:cut]); err == nil {
			t.Fatalf("epoch control truncation at %d decoded cleanly", cut)
		}
	}
}

// BenchmarkRingOwners guards against accidentally quadratic lookups.
func BenchmarkRingOwners(b *testing.B) {
	r := NewRing(128, "a", "b", "c", "d", "e", "f")
	k := ShardKey{Dataset: "paper", B: 4, Metric: "abs"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owners(k, 2)
	}
}
