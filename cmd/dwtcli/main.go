// Command dwtcli builds and queries wavelet synopses under maximum-error
// metrics from the command line.
//
// Build a synopsis and report its errors:
//
//	dwtcli -in data.bin -algo dgreedyabs -budget 4096 -out synopsis.csv
//
// Answer a range-sum query against a saved synopsis:
//
//	dwtcli -synopsis synopsis.csv -n 1048576 -query 100:200
//
// Supported algorithms: conventional, greedyabs, greedyrel, indirecthaar,
// dgreedyabs, dgreedyrel, dindirecthaar, con, sendv, sendcoef, hwtopk.
//
// With -store DIR -dataset NAME the built synopsis is also published
// into a serve-tier shard store (keyed dataset/b<budget>/<metric>, with
// its measured max-abs guarantee), ready for dwserve -node to own:
//
//	dwtcli -in data.bin -algo dgreedyabs -budget 256 \
//	       -store /var/lib/dw/shards -dataset nyct
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dwmaxerr"
	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/errtree"
	"dwmaxerr/internal/serve"
	"dwmaxerr/internal/synopsis"
)

func main() {
	var (
		in       = flag.String("in", "", "input dataset (binary float64 by default)")
		csvIn    = flag.Bool("csv", false, "input is CSV (one value per line)")
		algoName = flag.String("algo", "dgreedyabs", "thresholding algorithm")
		budget   = flag.Int("budget", 0, "synopsis size B (default N/8)")
		delta    = flag.Float64("delta", 1, "DP quantization step δ (indirecthaar family)")
		sanity   = flag.Float64("sanity", 1, "relative-error sanity bound S")
		subtree  = flag.Int("subtree", 0, "sub-tree leaves per worker (power of two; 0 = auto)")
		outPath  = flag.String("out", "", "write the synopsis as 'index,value' CSV")
		synPath  = flag.String("synopsis", "", "load a synopsis CSV instead of building one")
		nFlag    = flag.Int("n", 0, "data vector length (required with -synopsis)")
		query    = flag.String("query", "", "range-sum query 'lo:hi' or point query 'i'")
		dump     = flag.Bool("dump", false, "print the error tree with retention tags (small inputs)")
		trace    = flag.String("trace", "", "write the build's span tree as Chrome trace-event JSON to this path")
		chaosFl  = flag.String("chaos", "", "arm the fault injector: 'seed,point:fault[=dur][@prob][#nth][xmax];...'")
		ckDir    = flag.String("checkpoint", "", "checkpoint directory: record sub-results there and resume a killed build (scope one dir to one dataset)")
		storeFl  = flag.String("store", "", "publish the synopsis into this serve-tier shard store directory (requires -dataset)")
		dsName   = flag.String("dataset", "", "dataset name for the shard key (with -store)")
		metricFl = flag.String("metric", "", "metric name for the shard key (default: the algorithm name)")
	)
	flag.Parse()

	if *chaosFl != "" {
		if err := chaos.EnableSpec(*chaosFl); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chaos armed: %s\n", *chaosFl)
	}

	if *synPath != "" {
		if err := runQuery(*synPath, *nFlag, *query); err != nil {
			fatal(err)
		}
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("-in is required (or -synopsis to query)"))
	}
	data, err := loadData(*in, *csvIn)
	if err != nil {
		fatal(err)
	}
	padded, origLen := dwmaxerr.Pad(data)
	if origLen != len(padded) {
		fmt.Fprintf(os.Stderr, "padded %d values to %d (power of two)\n", origLen, len(padded))
	}
	b := *budget
	if b == 0 {
		b = len(padded) / 8
	}
	if *algoName == "haarplus" {
		t0 := time.Now()
		sol, maxErr, err := dwmaxerr.BuildHaarPlus(padded, b, *delta)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("algorithm   haarplus (Haar+ dictionary)\n")
		fmt.Printf("values      %d\n", len(padded))
		fmt.Printf("budget      %d (retained %d Haar+ terms)\n", b, sol.Size)
		fmt.Printf("build time  %v\n", time.Since(t0).Round(time.Millisecond))
		fmt.Printf("max_abs     %.6g\n", maxErr)
		return
	}
	algo, err := dwmaxerr.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	var tracer *dwmaxerr.Tracer
	var root *dwmaxerr.Span
	if *trace != "" {
		tracer = dwmaxerr.NewTracer()
		root = tracer.Start("dwtcli:" + string(algo))
	}
	var store dwmaxerr.CheckpointStore
	if *ckDir != "" {
		store, err = dwmaxerr.NewFileCheckpoint(*ckDir)
		if err != nil {
			fatal(err)
		}
	}
	t0 := time.Now()
	res, err := dwmaxerr.Build(padded, algo, dwmaxerr.Options{
		Budget:        b,
		Delta:         *delta,
		Sanity:        *sanity,
		SubtreeLeaves: *subtree,
		Trace:         root,
		Checkpoint:    store,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0)
	if *trace != "" {
		root.End()
		if err := tracer.WriteChromeTraceFile(*trace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *trace)
	}
	errs, err := dwmaxerr.Evaluate(res.Synopsis, padded, *sanity)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algorithm   %s\n", algo)
	fmt.Printf("values      %d\n", len(padded))
	fmt.Printf("budget      %d (retained %d)\n", b, res.Synopsis.Size())
	fmt.Printf("build time  %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("max_abs     %.6g\n", errs.MaxAbs)
	fmt.Printf("max_rel     %.6g (sanity %g)\n", errs.MaxRel, *sanity)
	fmt.Printf("L2          %.6g\n", errs.L2)
	if len(res.Jobs) > 0 {
		var bytes int64
		for _, j := range res.Jobs {
			bytes += j.ShuffleBytes
		}
		fmt.Printf("jobs        %d (shuffled %d bytes)\n", len(res.Jobs), bytes)
	}
	if *outPath != "" {
		if err := saveSynopsis(*outPath, res.Synopsis); err != nil {
			fatal(err)
		}
		fmt.Printf("synopsis    written to %s\n", *outPath)
	}
	if *storeFl != "" {
		if *dsName == "" {
			fatal(fmt.Errorf("-dataset is required with -store"))
		}
		metric := *metricFl
		if metric == "" {
			metric = string(algo)
		}
		key := serve.ShardKey{Dataset: *dsName, B: b, Metric: metric}
		if err := serve.WriteShard(*storeFl, key, res.Synopsis, errs.MaxAbs); err != nil {
			fatal(err)
		}
		fmt.Printf("shard       %s published to %s\n", key, *storeFl)
	}
	if *query != "" {
		if err := answer(res.Synopsis, *query); err != nil {
			fatal(err)
		}
	}
	if *dump {
		if err := dumpTree(padded, res.Synopsis); err != nil {
			fatal(err)
		}
	}
}

// dumpTree prints the error tree with retained coefficients tagged.
func dumpTree(data []float64, s *dwmaxerr.Synopsis) error {
	tr, err := errtree.FromData(data)
	if err != nil {
		return err
	}
	retained := map[int]bool{}
	for _, term := range s.Terms {
		retained[term.Index] = true
	}
	return errtree.Dump(os.Stdout, tr, data, retained, 127)
}

func loadData(path string, csv bool) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if csv {
		return dataset.ReadCSV(f)
	}
	return dataset.ReadBinary(f)
}

func saveSynopsis(path string, s *dwmaxerr.Synopsis) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadSynopsis(path string, n int) (*dwmaxerr.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return synopsis.ReadCSV(f, n)
}

func runQuery(synPath string, n int, query string) error {
	if n < 1 {
		return fmt.Errorf("-n (data length) is required with -synopsis")
	}
	if query == "" {
		return fmt.Errorf("-query is required with -synopsis")
	}
	s, err := loadSynopsis(synPath, n)
	if err != nil {
		return err
	}
	return answer(s, query)
}

func answer(s *dwmaxerr.Synopsis, query string) error {
	ev := dwmaxerr.NewEvaluator(s)
	if lo, hi, ok := strings.Cut(query, ":"); ok {
		l, err1 := strconv.Atoi(lo)
		h, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || l < 0 || h >= s.N || l > h {
			return fmt.Errorf("bad range query %q (want lo:hi within [0,%d))", query, s.N)
		}
		fmt.Printf("sum(%d:%d) ≈ %.6g\n", l, h, ev.RangeSum(l, h))
		return nil
	}
	i, err := strconv.Atoi(query)
	if err != nil || i < 0 || i >= s.N {
		return fmt.Errorf("bad point query %q (want index in [0,%d))", query, s.N)
	}
	fmt.Printf("d[%d] ≈ %.6g\n", i, ev.Point(i))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwtcli:", err)
	os.Exit(1)
}
