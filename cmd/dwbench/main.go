// Command dwbench regenerates the tables and figures of the paper's
// evaluation section on synthetic stand-in datasets.
//
//	dwbench -exp all            # every experiment at default (laptop) scale
//	dwbench -exp fig8 -scale 2  # Figure 8 with 4x larger inputs
//	dwbench -list               # available experiments
//
// Default sizes are scaled down from the paper's cluster-sized inputs;
// -scale shifts every size by powers of two. See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"dwmaxerr/internal/experiments"
	"dwmaxerr/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment name or 'all'")
		scale     = flag.Int("scale", 0, "shift all dataset sizes by 2^scale")
		seed      = flag.Int64("seed", 0, "random seed (0 = fixed default)")
		quick     = flag.Bool("quick", false, "tiny smoke-test sizes")
		list      = flag.Bool("list", false, "list experiments and exit")
		jsonPath  = flag.String("json", "", "write machine-readable results to this path")
		tracePath = flag.String("trace", "", "write the run's span tree as Chrome trace-event JSON to this path")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return
	}
	cfg := experiments.Config{Out: os.Stdout, Scale: *scale, Seed: *seed, Quick: *quick}
	if *jsonPath != "" {
		cfg.Collect = &experiments.Collector{}
	}
	var tracer *obs.Tracer
	var root *obs.Span
	if *tracePath != "" {
		tracer = obs.NewTracer()
		root = tracer.Start("dwbench:" + *exp)
		cfg.Trace = root
	}
	if err := experiments.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dwbench:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		if err := cfg.Collect.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "dwbench: write json:", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		root.End()
		if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "dwbench: write trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dwbench: trace written to %s\n", *tracePath)
	}
}
