// Command dwserve answers approximate queries over a wavelet synopsis via
// HTTP — a tiny AQP frontend. Build a synopsis first, then serve it:
//
//	dwtcli -in nyct.bin -algo dgreedyabs -out syn.csv     # or WriteSynopsis
//	dwserve -synopsis syn.bin -listen :8080 -maxabs 706.5
//
//	curl 'localhost:8080/range?lo=1000&hi=2000'
//	{"lo":1000,"hi":2000,"count":1001,"sum":412031.5,"avg":411.6,
//	 "sum_lo":-295043.9,"sum_hi":1119107.0,"per_value_guarantee":706.5}
//
// The synopsis file is the binary format of WriteSynopsis (dwtcli's CSV is
// also accepted with -csv -n).
//
// With -ingest-window the server is streaming instead: no synopsis file,
// values arrive over POST /ingest and queries answer against a live
// sliding-window synopsis with epoch-bounded staleness:
//
//	dwserve -ingest-window 4096 -ingest-budget 256 \
//	        -ingest-checkpoint /var/lib/dwserve/ck -listen :8080
//
//	curl -XPOST localhost:8080/ingest -d '{"values":[5,5,0,26]}'
//	{"accepted":4,"seen":4,"durable":0,"epoch":0}
//
// -ingest-checkpoint persists completed blocks; a restarted server
// resumes from them and /info reports "durable", the stream position the
// producer must replay from.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/ingest"
	"dwmaxerr/internal/obs"
	"dwmaxerr/internal/serve"
	"dwmaxerr/internal/synopsis"
)

func main() {
	var (
		path   = flag.String("synopsis", "", "synopsis file (binary format)")
		csv    = flag.Bool("csv", false, "synopsis file is 'index,value' CSV (requires -n)")
		n      = flag.Int("n", 0, "data vector length (CSV input only)")
		maxAbs = flag.Float64("maxabs", 0, "per-value max-abs guarantee of the synopsis (0 = none)")
		listen = flag.String("listen", "127.0.0.1:8080", "listen address")
		maxInF = flag.Int("max-inflight", 0, "concurrent query cap; excess answered 503 + Retry-After (0 = unlimited)")
		qTO    = flag.Duration("query-timeout", 0, "per-query deadline; slower queries answered 503 (0 = none)")

		ingWindow = flag.Int("ingest-window", 0, "streaming mode: sliding-window size in values (power of two; replaces -synopsis)")
		ingBlock  = flag.Int("ingest-block", 0, "ingest block size in values (power of two; 0 = window/8)")
		ingBudget = flag.Int("ingest-budget", 0, "coefficients retained in the streaming synopsis (0 = window/16, min 1)")
		ingCkDir  = flag.String("ingest-checkpoint", "", "directory for block checkpoints; a restarted server resumes from it")
		ingName   = flag.String("ingest-name", "stream", "stream name inside the checkpoint keyspace")
	)
	flag.Parse()
	lim := serve.Limits{MaxInFlight: *maxInF, QueryTimeout: *qTO}

	var srv *serve.Server
	var syn *synopsis.Synopsis
	switch {
	case *ingWindow > 0:
		if *path != "" {
			fatal(fmt.Errorf("-synopsis and -ingest-window are mutually exclusive"))
		}
		budget := *ingBudget
		if budget == 0 {
			budget = *ingWindow / 16
			if budget < 1 {
				budget = 1
			}
		}
		cfg := ingest.Config{Window: *ingWindow, Block: *ingBlock, Budget: budget, Name: *ingName}
		if *ingCkDir != "" {
			store, err := dist.NewFileCheckpoint(*ingCkDir)
			if err != nil {
				fatal(err)
			}
			cfg.Store = store
		}
		ing, err := ingest.New(cfg)
		if err != nil {
			fatal(err)
		}
		defer ing.Close()
		if srv, err = serve.NewIngest(ing, lim); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dwserve: streaming, window %d budget %d (durable from %d) on http://%s\n",
			*ingWindow, budget, ing.Durable(), *listen)
	default:
		if *path == "" {
			fatal(fmt.Errorf("one of -synopsis or -ingest-window is required"))
		}
		var err error
		if syn, err = load(*path, *csv, *n); err != nil {
			fatal(err)
		}
		if srv, err = serve.NewLimited(syn, *maxAbs, lim); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dwserve: %d-term synopsis over %d values on http://%s\n",
			syn.Size(), syn.N, *listen)
	}
	// Query endpoints plus the process debug surface: /debug/vars exposes
	// the serve_* query counters, /debug/pprof the profiler.
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	obs.Mount(mux, obs.Default)
	server := &http.Server{Addr: *listen, Handler: mux}
	// Drain in-flight queries on SIGINT/SIGTERM instead of dropping them.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "dwserve: signal received, draining")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- server.Shutdown(ctx)
	}()
	if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-done; err != nil {
		fatal(err)
	}
}

func load(path string, csv bool, n int) (*synopsis.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !csv {
		return synopsis.Read(f)
	}
	if n < 1 {
		return nil, fmt.Errorf("-n is required with -csv")
	}
	return synopsis.ReadCSV(f, n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwserve:", err)
	os.Exit(1)
}
