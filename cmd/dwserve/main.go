// Command dwserve answers approximate queries over a wavelet synopsis via
// HTTP — a tiny AQP frontend. Build a synopsis first, then serve it:
//
//	dwtcli -in nyct.bin -algo dgreedyabs -out syn.csv     # or WriteSynopsis
//	dwserve -synopsis syn.bin -listen :8080 -maxabs 706.5
//
//	curl 'localhost:8080/range?lo=1000&hi=2000'
//	{"lo":1000,"hi":2000,"count":1001,"sum":412031.5,"avg":411.6,
//	 "sum_lo":-295043.9,"sum_hi":1119107.0,"per_value_guarantee":706.5}
//
// The synopsis file is the binary format of WriteSynopsis (dwtcli's CSV is
// also accepted with -csv -n).
//
// With -ingest-window the server is streaming instead: no synopsis file,
// values arrive over POST /ingest and queries answer against a live
// sliding-window synopsis with epoch-bounded staleness:
//
//	dwserve -ingest-window 4096 -ingest-budget 256 \
//	        -ingest-checkpoint /var/lib/dwserve/ck -listen :8080
//
//	curl -XPOST localhost:8080/ingest -d '{"values":[5,5,0,26]}'
//	{"accepted":4,"seen":4,"durable":0,"epoch":0}
//
// -ingest-checkpoint persists completed blocks; a restarted server
// resumes from them and /info reports "durable", the stream position the
// producer must replay from.
//
// The sharded serve tier runs the same binary in two more modes. A node
// answers shard queries over the peer transport for the shards a
// consistent-hash ring assigns it:
//
//	dwserve -node alpha -nodes alpha,beta -store /var/lib/dw/shards \
//	        -shard-listen 127.0.0.1:9001
//
// and a router fronts the cluster with the ordinary HTTP query API,
// failing over between replicas:
//
//	dwserve -route -peers alpha=127.0.0.1:9001,beta=127.0.0.1:9002 \
//	        -dataset nyct -b 256 -metric dgreedyabs -listen :8080
//
//	curl 'localhost:8080/point?i=7&dataset=nyct'
//
// Every node and the router must agree on the member NAMES (and
// -replicas / -vnodes): shard placement is a pure function of that
// list, so there is no placement coordination to run or get wrong.
//
// Membership is live. The router's admin plane grows and shrinks the
// cluster without restarts — each change is one ring-epoch bump, with
// shards warmed on their new owners before any query routes to them:
//
//	curl -XPOST 'localhost:8080/admin/join?name=gamma&addr=127.0.0.1:9003'
//	curl -XPOST 'localhost:8080/admin/drain?name=beta'
//	curl 'localhost:8080/admin/membership'
//	{"epoch":2,"members":["alpha","gamma"]}
//
// With -heartbeat plus -detect-misses the router also demotes dead
// nodes automatically (flap-damped by -detect-damp).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/ingest"
	"dwmaxerr/internal/obs"
	"dwmaxerr/internal/serve"
	"dwmaxerr/internal/synopsis"
)

func main() {
	var (
		path   = flag.String("synopsis", "", "synopsis file (binary format)")
		csv    = flag.Bool("csv", false, "synopsis file is 'index,value' CSV (requires -n)")
		n      = flag.Int("n", 0, "data vector length (CSV input only)")
		maxAbs = flag.Float64("maxabs", 0, "per-value max-abs guarantee of the synopsis (0 = none)")
		listen = flag.String("listen", "127.0.0.1:8080", "listen address")
		maxInF = flag.Int("max-inflight", 0, "concurrent query cap; excess answered 503 + Retry-After (0 = unlimited)")
		qTO    = flag.Duration("query-timeout", 0, "per-query deadline; slower queries answered 503 (0 = none)")

		ingWindow = flag.Int("ingest-window", 0, "streaming mode: sliding-window size in values (power of two; replaces -synopsis)")
		ingBlock  = flag.Int("ingest-block", 0, "ingest block size in values (power of two; 0 = window/8)")
		ingBudget = flag.Int("ingest-budget", 0, "coefficients retained in the streaming synopsis (0 = window/16, min 1)")
		ingCkDir  = flag.String("ingest-checkpoint", "", "directory for block checkpoints; a restarted server resumes from it")
		ingName   = flag.String("ingest-name", "stream", "stream name inside the checkpoint keyspace")

		nodeName    = flag.String("node", "", "cluster mode: run as the named shard node")
		nodeList    = flag.String("nodes", "", "cluster membership, comma-separated names (node mode)")
		shardListen = flag.String("shard-listen", "127.0.0.1:0", "shard-query listener address (node mode)")
		storeDir    = flag.String("store", "", "shard store directory (node mode)")
		cacheShards = flag.Int("cache-shards", 0, "warm-cache capacity in shards (node mode; 0 = 64)")
		route       = flag.Bool("route", false, "cluster mode: run as the query router")
		peersFlag   = flag.String("peers", "", "router peers, comma-separated name=addr pairs")
		replicas    = flag.Int("replicas", 2, "ownership factor R (node and router mode)")
		vnodes      = flag.Int("vnodes", 0, "ring points per member (0 = default; must match cluster-wide)")
		dataset     = flag.String("dataset", "", "router: default dataset for requests that omit ?dataset=")
		budget      = flag.Int("b", 0, "router: default synopsis budget for requests that omit ?b=")
		metric      = flag.String("metric", "", "router: default metric for requests that omit ?metric=")
		retryBase   = flag.Duration("retry-base", 0, "router: peer redial backoff base (0 = 50ms)")
		retryCap    = flag.Duration("retry-cap", 0, "router: peer redial backoff cap (0 = 5s)")
		heartbeat   = flag.Duration("heartbeat", 0, "router: peer heartbeat interval (0 = off)")
		detMisses   = flag.Int("detect-misses", 0, "router: demote a peer after this many missed heartbeats (0 = detector off)")
		detDamp     = flag.Duration("detect-damp", 0, "router: suppress detector demotions for this long after any membership change")
		seed        = flag.Int64("seed", 1, "router: backoff jitter seed")
		tracePath   = flag.String("trace", "", "router: write routing spans as Chrome trace-event JSON on shutdown")
		chaosFl     = flag.String("chaos", "", "arm the fault injector: 'seed,point:fault[=dur][@prob][#nth][xmax];...'")
	)
	flag.Parse()
	if err := chaos.EnableSpec(*chaosFl); err != nil {
		fatal(err)
	}
	lim := serve.Limits{MaxInFlight: *maxInF, QueryTimeout: *qTO}
	if *nodeName != "" && *route {
		fatal(fmt.Errorf("-node and -route are mutually exclusive"))
	}
	if *nodeName != "" {
		runNode(*nodeName, *nodeList, *storeDir, *shardListen, *listen, *replicas, *vnodes, *cacheShards, *maxInF)
		return
	}
	if *route {
		runRouter(*peersFlag, *listen, *replicas, *vnodes, *dataset, *budget, *metric,
			*retryBase, *retryCap, *heartbeat, *detMisses, *detDamp, *seed, *tracePath)
		return
	}

	var srv *serve.Server
	var syn *synopsis.Synopsis
	switch {
	case *ingWindow > 0:
		if *path != "" {
			fatal(fmt.Errorf("-synopsis and -ingest-window are mutually exclusive"))
		}
		budget := *ingBudget
		if budget == 0 {
			budget = *ingWindow / 16
			if budget < 1 {
				budget = 1
			}
		}
		cfg := ingest.Config{Window: *ingWindow, Block: *ingBlock, Budget: budget, Name: *ingName}
		if *ingCkDir != "" {
			store, err := dist.NewFileCheckpoint(*ingCkDir)
			if err != nil {
				fatal(err)
			}
			cfg.Store = store
		}
		ing, err := ingest.New(cfg)
		if err != nil {
			fatal(err)
		}
		defer ing.Close()
		if srv, err = serve.NewIngest(ing, lim); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dwserve: streaming, window %d budget %d (durable from %d) on http://%s\n",
			*ingWindow, budget, ing.Durable(), *listen)
	default:
		if *path == "" {
			fatal(fmt.Errorf("one of -synopsis or -ingest-window is required"))
		}
		var err error
		if syn, err = load(*path, *csv, *n); err != nil {
			fatal(err)
		}
		if srv, err = serve.NewLimited(syn, *maxAbs, lim); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dwserve: %d-term synopsis over %d values on http://%s\n",
			syn.Size(), syn.N, *listen)
	}
	// Query endpoints plus the process debug surface: /debug/vars exposes
	// the serve_* query counters, /debug/pprof the profiler.
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	obs.Mount(mux, obs.Default)
	server := &http.Server{Addr: *listen, Handler: mux}
	// Drain in-flight queries on SIGINT/SIGTERM instead of dropping them.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "dwserve: signal received, draining")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- server.Shutdown(ctx)
	}()
	if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-done; err != nil {
		fatal(err)
	}
}

// runNode serves shard queries over the peer transport and exposes
// per-node metrics over a plain HTTP listener.
func runNode(name, nodeList, storeDir, shardListen, metricsListen string, replicas, vnodes, cacheShards, maxInFlight int) {
	if storeDir == "" {
		fatal(fmt.Errorf("-store is required in node mode"))
	}
	members := splitList(nodeList)
	if len(members) == 0 {
		fatal(fmt.Errorf("-nodes is required in node mode"))
	}
	node, err := serve.NewNode(serve.NodeConfig{
		Name: name, Nodes: members, Replicas: replicas, Vnodes: vnodes,
		Store: serve.DirStore{Dir: storeDir}, CacheShards: cacheShards, MaxInFlight: maxInFlight,
	})
	if err != nil {
		fatal(err)
	}
	warmed, err := node.Warm()
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", shardListen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dwserve: node %s of %v (replicas %d), %d shards warm, shard listener on %s\n",
		name, members, replicas, warmed, ln.Addr())
	mux := http.NewServeMux()
	obs.Mount(mux, obs.Default)
	mln, err := net.Listen("tcp", metricsListen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dwserve: metrics on http://%s/debug/vars\n", mln.Addr())
	go http.Serve(mln, mux)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "dwserve: signal received, shutting node down")
		node.Close()
	}()
	if err := node.Serve(ln); err != nil {
		fatal(err)
	}
}

// runRouter fronts the cluster with the HTTP query API — including the
// membership admin plane (POST /admin/join, POST /admin/drain, GET
// /admin/membership); /debug/vars and /debug/pprof share the listener.
func runRouter(peersFlag, listen string, replicas, vnodes int, dataset string, b int, metric string,
	retryBase, retryCap, heartbeat time.Duration, detMisses int, detDamp time.Duration,
	seed int64, tracePath string) {
	var peers []serve.Peer
	for _, spec := range splitList(peersFlag) {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("-peers entry %q: want name=addr", spec))
		}
		peers = append(peers, serve.Peer{Name: name, Addr: addr})
	}
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer()
	}
	rt, err := serve.NewRouter(serve.RouterConfig{
		Peers: peers, Replicas: replicas, Vnodes: vnodes,
		Dataset: dataset, B: b, Metric: metric,
		RetryBase: retryBase, RetryCap: retryCap, Heartbeat: heartbeat,
		DetectMisses: detMisses, DampWindow: detDamp,
		Seed: seed, Tracer: tracer,
	})
	if err != nil {
		fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", rt)
	obs.Mount(mux, obs.Default)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dwserve: router over %d peers (replicas %d) on http://%s\n",
		len(peers), replicas, ln.Addr())
	fmt.Fprintf(os.Stderr, "dwserve: metrics on http://%s/debug/vars\n", ln.Addr())
	server := &http.Server{Handler: mux}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "dwserve: signal received, draining")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- server.Shutdown(ctx)
	}()
	if err := server.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-done; err != nil {
		fatal(err)
	}
	rt.Close()
	if tracePath != "" {
		if err := tracer.WriteChromeTraceFile(tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dwserve: trace written to %s\n", tracePath)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func load(path string, csv bool, n int) (*synopsis.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !csv {
		return synopsis.Read(f)
	}
	if n < 1 {
		return nil, fmt.Errorf("-n is required with -csv")
	}
	return synopsis.ReadCSV(f, n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwserve:", err)
	os.Exit(1)
}
