// Command dwserve answers approximate queries over a wavelet synopsis via
// HTTP — a tiny AQP frontend. Build a synopsis first, then serve it:
//
//	dwtcli -in nyct.bin -algo dgreedyabs -out syn.csv     # or WriteSynopsis
//	dwserve -synopsis syn.bin -listen :8080 -maxabs 706.5
//
//	curl 'localhost:8080/range?lo=1000&hi=2000'
//	{"lo":1000,"hi":2000,"count":1001,"sum":412031.5,"avg":411.6,
//	 "sum_lo":-295043.9,"sum_hi":1119107.0,"per_value_guarantee":706.5}
//
// The synopsis file is the binary format of WriteSynopsis (dwtcli's CSV is
// also accepted with -csv -n).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dwmaxerr/internal/obs"
	"dwmaxerr/internal/serve"
	"dwmaxerr/internal/synopsis"
)

func main() {
	var (
		path   = flag.String("synopsis", "", "synopsis file (binary format)")
		csv    = flag.Bool("csv", false, "synopsis file is 'index,value' CSV (requires -n)")
		n      = flag.Int("n", 0, "data vector length (CSV input only)")
		maxAbs = flag.Float64("maxabs", 0, "per-value max-abs guarantee of the synopsis (0 = none)")
		listen = flag.String("listen", "127.0.0.1:8080", "listen address")
		maxInF = flag.Int("max-inflight", 0, "concurrent query cap; excess answered 503 + Retry-After (0 = unlimited)")
		qTO    = flag.Duration("query-timeout", 0, "per-query deadline; slower queries answered 503 (0 = none)")
	)
	flag.Parse()
	if *path == "" {
		fatal(fmt.Errorf("-synopsis is required"))
	}
	syn, err := load(*path, *csv, *n)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.NewLimited(syn, *maxAbs, serve.Limits{
		MaxInFlight:  *maxInF,
		QueryTimeout: *qTO,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dwserve: %d-term synopsis over %d values on http://%s\n",
		syn.Size(), syn.N, *listen)
	// Query endpoints plus the process debug surface: /debug/vars exposes
	// the serve_* query counters, /debug/pprof the profiler.
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	obs.Mount(mux, obs.Default)
	server := &http.Server{Addr: *listen, Handler: mux}
	// Drain in-flight queries on SIGINT/SIGTERM instead of dropping them.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "dwserve: signal received, draining")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- server.Shutdown(ctx)
	}()
	if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-done; err != nil {
		fatal(err)
	}
}

func load(path string, csv bool, n int) (*synopsis.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !csv {
		return synopsis.Read(f)
	}
	if n < 1 {
		return nil, fmt.Errorf("-n is required with -csv")
	}
	return synopsis.ReadCSV(f, n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwserve:", err)
	os.Exit(1)
}
