// End-to-end tests for the sharded serve tier over real processes:
// dwtcli publishes shards into a store, dwserve -node processes own them
// by consistent hash, and a dwserve -route process fronts the cluster.
// Skipped under -short (they compile binaries and open sockets).
package cmd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"dwmaxerr/internal/serve"
)

var (
	shardAddrRE  = regexp.MustCompile(`shard listener on ([0-9.:]+)`)
	routerAddrRE = regexp.MustCompile(`router over \d+ peers \(replicas \d+\) on http://([0-9.:]+)`)
)

// awaitAll scans lines until every regex has matched once, returning the
// first submatch of each in order, then keeps draining so the child
// never blocks on a full pipe.
func awaitAll(t *testing.T, r io.Reader, what string, res ...*regexp.Regexp) []string {
	t.Helper()
	found := make(chan []string, 1)
	go func() {
		out := make([]string, len(res))
		remaining := len(res)
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			for i, re := range res {
				if out[i] != "" {
					continue
				}
				if m := re.FindStringSubmatch(sc.Text()); m != nil {
					out[i] = m[1]
					remaining--
				}
			}
			if remaining == 0 {
				found <- out
				for sc.Scan() {
				}
				return
			}
		}
	}()
	select {
	case v := <-found:
		return v
	case <-time.After(15 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return nil
	}
}

// publishShards runs dwtcli -store once per key, exercising the publish
// path the serve tier loads from.
func publishShards(t *testing.T, dwtcli, dataPath, storeDir string, keys []serve.ShardKey) {
	t.Helper()
	for _, k := range keys {
		cmd := exec.Command(dwtcli,
			"-in", dataPath, "-algo", "greedyabs",
			"-budget", strconv.Itoa(k.B),
			"-store", storeDir, "-dataset", k.Dataset, "-metric", k.Metric)
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("dwtcli -store (%s): %v\n%s", k, err, b)
		}
		if !strings.Contains(string(b), "shard       "+k.String()) {
			t.Fatalf("dwtcli did not report publishing %s:\n%s", k, b)
		}
	}
}

// serveNode is one dwserve -node child process.
type serveNode struct {
	name      string
	cmd       *exec.Cmd
	shardAddr string
	metrics   string
}

func startServeNode(t *testing.T, bin, name, nodes, store string, replicas int, shardListen string) *serveNode {
	t.Helper()
	cmd := exec.Command(bin,
		"-node", name, "-nodes", nodes, "-store", store,
		"-replicas", strconv.Itoa(replicas),
		"-shard-listen", shardListen, "-listen", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	proc := cmd
	t.Cleanup(func() { proc.Process.Kill(); proc.Wait() })
	addrs := awaitAll(t, stderr, "node "+name+" listeners", shardAddrRE, metricsAddrRE)
	return &serveNode{name: name, cmd: cmd, shardAddr: addrs[0], metrics: addrs[1]}
}

func startServeRouter(t *testing.T, bin string, peers []string, replicas int, extra ...string) string {
	t.Helper()
	args := append([]string{
		"-route", "-peers", strings.Join(peers, ","),
		"-replicas", strconv.Itoa(replicas), "-listen", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	proc := cmd
	t.Cleanup(func() { proc.Process.Kill(); proc.Wait() })
	return awaitAll(t, stderr, "router listener", routerAddrRE)[0]
}

// adminPost hits a router admin endpoint and decodes the JSON reply.
func adminPost(t *testing.T, url string) (int, serve.Membership) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var mem serve.Membership
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &mem); err != nil {
			t.Fatalf("POST %s: bad membership JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode, mem
}

func getMembership(t *testing.T, routerAddr string) serve.Membership {
	t.Helper()
	status, _, body := routerGet(t, "http://"+routerAddr+"/admin/membership")
	if status != http.StatusOK {
		t.Fatalf("GET /admin/membership: status %d: %s", status, body)
	}
	var mem serve.Membership
	if err := json.Unmarshal(body, &mem); err != nil {
		t.Fatalf("bad membership JSON %q: %v", body, err)
	}
	return mem
}

func routerGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func shardQueryURL(routerAddr string, k serve.ShardKey) string {
	return fmt.Sprintf("http://%s/point?i=3&dataset=%s&b=%d&metric=%s",
		routerAddr, k.Dataset, k.B, k.Metric)
}

// awaitStatus polls a router query until it answers the wanted status —
// covering the window where the router is still backing off from a dead
// or restarting peer.
func awaitStatus(t *testing.T, url string, want int) (http.Header, []byte) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, hdr, body := routerGet(t, url)
		if status == want {
			return hdr, body
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: status %d, want %d (body %s)", url, status, want, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServeClusterShardPlacement runs a 3-node sharded cluster as real
// processes behind a real router and proves, by scraping each node's
// /debug/vars, that queries land exactly where an independently
// computed ring says they must. It then kills one node, restarts it on
// the same address, and checks the router reconnects and the node
// rewarms its shard cache from the store.
func TestServeClusterShardPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	dir := t.TempDir()
	dwtcli := buildCmd(t, dir, "dwtcli")
	dwserve := buildCmd(t, dir, "dwserve")
	dataPath, _ := writeDataset(t, dir, 512)

	keys := []serve.ShardKey{
		{Dataset: "taxi", B: 16, Metric: "greedyabs"},
		{Dataset: "taxi", B: 32, Metric: "greedyabs"},
		{Dataset: "taxi", B: 64, Metric: "greedyabs"},
		{Dataset: "light", B: 16, Metric: "greedyabs"},
		{Dataset: "light", B: 32, Metric: "greedyabs"},
		{Dataset: "light", B: 64, Metric: "greedyabs"},
	}
	storeDir := t.TempDir()
	publishShards(t, dwtcli, dataPath, storeDir, keys)

	// The test's own view of placement: same member list, same defaults.
	names := []string{"n1", "n2", "n3"}
	ring := serve.NewRing(0, names...)
	owned := map[string]int{}
	for _, k := range keys {
		owned[ring.Owner(k)]++
	}

	nodes := map[string]*serveNode{}
	var peers []string
	for _, name := range names {
		n := startServeNode(t, dwserve, name, strings.Join(names, ","), storeDir, 1, "127.0.0.1:0")
		nodes[name] = n
		peers = append(peers, name+"="+n.shardAddr)
	}
	routerAddr := startServeRouter(t, dwserve, peers, 1)

	// One query per key; every answer must come from the ring owner.
	for _, k := range keys {
		status, hdr, body := routerGet(t, shardQueryURL(routerAddr, k))
		if status != http.StatusOK {
			t.Fatalf("query %s: status %d: %s", k, status, body)
		}
		if got, want := hdr.Get("X-Dwserve-Node"), ring.Owner(k); got != want {
			t.Errorf("query %s answered by %q, ring owner is %q", k, got, want)
		}
	}

	// Per-node metrics must agree with the locally computed placement:
	// each node warmed and answered exactly its owned keys, and no query
	// ever reached a non-owner.
	for _, name := range names {
		snap, err := scrapeVars(nodes[name].metrics)
		if err != nil {
			t.Fatalf("node %s: %v", name, err)
		}
		if got := snap.Counters["serve_shard_queries"]; got != int64(owned[name]) {
			t.Errorf("node %s answered %d queries, owns %d keys", name, got, owned[name])
		}
		if got := snap.Counters["serve_shard_not_owned"]; got != 0 {
			t.Errorf("node %s rejected %d stray queries, want 0", name, got)
		}
		if got := snap.Gauges["serve_shard_warm"]; got != int64(owned[name]) {
			t.Errorf("node %s has %d shards warm, owns %d", name, got, owned[name])
		}
	}

	// Kill the owner of keys[0] and restart it on the same address; the
	// router must reconnect once its backoff expires, and the reborn
	// node must rewarm from the store.
	victim := ring.Owner(keys[0])
	old := nodes[victim]
	old.cmd.Process.Kill()
	old.cmd.Wait()
	status, _, _ := routerGet(t, shardQueryURL(routerAddr, keys[0]))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("query against the dead owner answered %d, want 503", status)
	}
	reborn := startServeNode(t, dwserve, victim, strings.Join(names, ","), storeDir, 1, old.shardAddr)
	hdr, _ := awaitStatus(t, shardQueryURL(routerAddr, keys[0]), http.StatusOK)
	if got := hdr.Get("X-Dwserve-Node"); got != victim {
		t.Errorf("post-restart query answered by %q, want %q", got, victim)
	}
	snap, err := scrapeVars(reborn.metrics)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Gauges["serve_shard_warm"]; got != int64(owned[victim]) {
		t.Errorf("restarted node has %d shards warm, want %d rewarmed from the store", got, owned[victim])
	}
	if got := snap.Counters["serve_shard_queries"]; got < 1 {
		t.Error("restarted node answered no queries")
	}
}

// TestServeClusterJoinDrain drives the admin plane over real processes:
// a two-node cluster grows to three via POST /admin/join (the joiner
// starts knowing only itself and is cut over by the router's two-phase
// prepare/commit), then shrinks back via POST /admin/drain. Every epoch
// bump must be visible in /admin/membership, in the X-Dwserve-Epoch
// response header, and in the joiner's own /debug/vars — and routing
// must agree with an independently computed ring at every epoch.
func TestServeClusterJoinDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	dir := t.TempDir()
	dwtcli := buildCmd(t, dir, "dwtcli")
	dwserve := buildCmd(t, dir, "dwserve")
	dataPath, _ := writeDataset(t, dir, 512)

	keys := []serve.ShardKey{
		{Dataset: "taxi", B: 16, Metric: "greedyabs"},
		{Dataset: "taxi", B: 32, Metric: "greedyabs"},
		{Dataset: "taxi", B: 64, Metric: "greedyabs"},
		{Dataset: "light", B: 16, Metric: "greedyabs"},
		{Dataset: "light", B: 32, Metric: "greedyabs"},
		{Dataset: "light", B: 64, Metric: "greedyabs"},
	}
	storeDir := t.TempDir()
	publishShards(t, dwtcli, dataPath, storeDir, keys)

	names := []string{"n1", "n2"}
	var peers []string
	for _, name := range names {
		n := startServeNode(t, dwserve, name, strings.Join(names, ","), storeDir, 2, "127.0.0.1:0")
		peers = append(peers, name+"="+n.shardAddr)
	}
	routerAddr := startServeRouter(t, dwserve, peers, 2,
		"-heartbeat", "50ms", "-detect-misses", "5", "-detect-damp", "500ms")
	admin := "http://" + routerAddr + "/admin/"

	if mem := getMembership(t, routerAddr); mem.Epoch != 0 || len(mem.Members) != 2 {
		t.Fatalf("initial membership %+v, want epoch 0 over n1,n2", mem)
	}
	for _, k := range keys {
		hdr, _ := awaitStatus(t, shardQueryURL(routerAddr, k), http.StatusOK)
		if got := hdr.Get("X-Dwserve-Epoch"); got != "0" {
			t.Errorf("pre-join query %s under epoch %q, want 0", k, got)
		}
	}

	// The joiner boots knowing only itself, so it warms every published
	// shard; the join's commit must then evict the ones the merged ring
	// does not hand it.
	joiner := startServeNode(t, dwserve, "n3", "n3", storeDir, 2, "127.0.0.1:0")
	if status, _ := adminPost(t, admin+"join?name=n3&addr="+joiner.shardAddr); status != http.StatusOK {
		t.Fatalf("join: status %d", status)
	}
	mem := getMembership(t, routerAddr)
	if mem.Epoch != 1 || !mem.Contains("n3") || len(mem.Members) != 3 {
		t.Fatalf("post-join membership %+v, want epoch 1 over n1,n2,n3", mem)
	}
	if status, _ := adminPost(t, admin+"join?name=n3&addr="+joiner.shardAddr); status != http.StatusConflict {
		t.Errorf("duplicate join answered %d, want 409", status)
	}

	// Routing now follows the three-node ring, under epoch 1, with the
	// joiner answering as primary for its share.
	ring3 := serve.NewRing(0, "n1", "n2", "n3")
	joinerOwns, joinerPrimary := 0, 0
	for _, k := range keys {
		owners := ring3.Owners(k, 2)
		for _, o := range owners {
			if o == "n3" {
				joinerOwns++
			}
		}
		if owners[0] == "n3" {
			joinerPrimary++
		}
		status, hdr, body := routerGet(t, shardQueryURL(routerAddr, k))
		if status != http.StatusOK {
			t.Fatalf("post-join query %s: status %d: %s", k, status, body)
		}
		if got := hdr.Get("X-Dwserve-Node"); got != owners[0] {
			t.Errorf("post-join query %s answered by %q, ring primary is %q", k, got, owners[0])
		}
		if got := hdr.Get("X-Dwserve-Epoch"); got != "1" {
			t.Errorf("post-join query %s under epoch %q, want 1", k, got)
		}
	}
	if joinerPrimary == 0 {
		t.Error("joiner is primary for no published key; widen the key set so the assertion bites")
	}
	snap, err := scrapeVars(joiner.metrics)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Gauges["serve_epoch"]; got != 1 {
		t.Errorf("joiner settled at epoch %d, want 1", got)
	}
	if got := snap.Gauges["serve_shard_warm"]; got != int64(joinerOwns) {
		t.Errorf("joiner holds %d warm shards, ring hands it %d", got, joinerOwns)
	}
	if got := snap.Counters["serve_rebalance_evicted_total"]; got != int64(len(keys)-joinerOwns) {
		t.Errorf("joiner evicted %d shards on commit, want %d", got, len(keys)-joinerOwns)
	}
	if got := snap.Counters["serve_shard_not_owned"]; got != 0 {
		t.Errorf("joiner counted %d misroutes, want 0", got)
	}

	// Drain the joiner: one more epoch, the two survivors reabsorb its
	// shards, and every key still answers.
	if status, _ := adminPost(t, admin+"drain?name=n3"); status != http.StatusOK {
		t.Fatalf("drain: status %d", status)
	}
	mem = getMembership(t, routerAddr)
	if mem.Epoch != 2 || mem.Contains("n3") || len(mem.Members) != 2 {
		t.Fatalf("post-drain membership %+v, want epoch 2 over n1,n2", mem)
	}
	if status, _ := adminPost(t, admin+"drain?name=nope"); status != http.StatusConflict {
		t.Errorf("drain of unknown member answered %d, want 409", status)
	}
	ring2 := serve.NewRing(0, "n1", "n2")
	for _, k := range keys {
		status, hdr, body := routerGet(t, shardQueryURL(routerAddr, k))
		if status != http.StatusOK {
			t.Fatalf("post-drain query %s: status %d: %s", k, status, body)
		}
		if got, want := hdr.Get("X-Dwserve-Node"), ring2.Owner(k); got != want {
			t.Errorf("post-drain query %s answered by %q, ring primary is %q", k, got, want)
		}
		if got := hdr.Get("X-Dwserve-Epoch"); got != "2" {
			t.Errorf("post-drain query %s under epoch %q, want 2", k, got)
		}
	}
}

// TestServeClusterFailover kills the primary of an R=2 shard and checks
// the router fails over to the surviving replica without the client
// ever seeing an error.
func TestServeClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	dir := t.TempDir()
	dwtcli := buildCmd(t, dir, "dwtcli")
	dwserve := buildCmd(t, dir, "dwserve")
	dataPath, _ := writeDataset(t, dir, 512)

	key := serve.ShardKey{Dataset: "taxi", B: 32, Metric: "greedyabs"}
	storeDir := t.TempDir()
	publishShards(t, dwtcli, dataPath, storeDir, []serve.ShardKey{key})

	names := []string{"east", "west"}
	owners := serve.NewRing(0, names...).Owners(key, 2)
	nodes := map[string]*serveNode{}
	var peers []string
	for _, name := range names {
		n := startServeNode(t, dwserve, name, strings.Join(names, ","), storeDir, 2, "127.0.0.1:0")
		nodes[name] = n
		peers = append(peers, name+"="+n.shardAddr)
	}
	routerAddr := startServeRouter(t, dwserve, peers, 2)
	url := shardQueryURL(routerAddr, key)

	status, hdr, before := routerGet(t, url)
	if status != http.StatusOK {
		t.Fatalf("pre-kill query: status %d: %s", status, before)
	}
	if got := hdr.Get("X-Dwserve-Node"); got != owners[0] {
		t.Fatalf("pre-kill query answered by %q, want primary %q", got, owners[0])
	}
	if got := hdr.Get("X-Dwserve-Role"); got != "primary" {
		t.Fatalf("pre-kill role %q, want primary", got)
	}

	primary := nodes[owners[0]]
	primary.cmd.Process.Kill()
	primary.cmd.Wait()

	// Every post-kill query must still answer — first by failing over
	// mid-connection, then by skipping the known-dead primary — with a
	// payload identical to the primary's (replicas hold the same shard).
	for i := 0; i < 5; i++ {
		hdr, body := awaitStatus(t, url, http.StatusOK)
		if got := hdr.Get("X-Dwserve-Node"); got != owners[1] {
			t.Fatalf("post-kill query %d answered by %q, want replica %q", i, got, owners[1])
		}
		if got := hdr.Get("X-Dwserve-Role"); got != "replica-1" {
			t.Fatalf("post-kill query %d role %q, want replica-1", i, got)
		}
		if string(body) != string(before) {
			t.Fatalf("failover changed the answer:\n  primary %s\n  replica %s", before, body)
		}
	}

	// The router's own metrics (it shares the query listener) recorded
	// the failover.
	snap, err := scrapeVars(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["serve_failover_total"]; got < 1 {
		t.Errorf("router recorded %d failovers, want >= 1", got)
	}
	if got := snap.Counters["serve_route_queries"]; got < 6 {
		t.Errorf("router recorded %d queries, want >= 6", got)
	}
}
